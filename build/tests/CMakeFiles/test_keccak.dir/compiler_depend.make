# Empty compiler generated dependencies file for test_keccak.
# This may be replaced when dependencies are built.
