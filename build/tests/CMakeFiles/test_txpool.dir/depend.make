# Empty dependencies file for test_txpool.
# This may be replaced when dependencies are built.
