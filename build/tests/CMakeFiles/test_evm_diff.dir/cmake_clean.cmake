file(REMOVE_RECURSE
  "CMakeFiles/test_evm_diff.dir/test_evm_diff.cpp.o"
  "CMakeFiles/test_evm_diff.dir/test_evm_diff.cpp.o.d"
  "test_evm_diff"
  "test_evm_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evm_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
