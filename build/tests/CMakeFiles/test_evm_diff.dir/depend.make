# Empty dependencies file for test_evm_diff.
# This may be replaced when dependencies are built.
