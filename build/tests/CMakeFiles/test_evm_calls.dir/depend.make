# Empty dependencies file for test_evm_calls.
# This may be replaced when dependencies are built.
