file(REMOVE_RECURSE
  "CMakeFiles/test_evm_calls.dir/test_evm_calls.cpp.o"
  "CMakeFiles/test_evm_calls.dir/test_evm_calls.cpp.o.d"
  "test_evm_calls"
  "test_evm_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evm_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
