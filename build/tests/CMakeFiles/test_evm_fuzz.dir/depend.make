# Empty dependencies file for test_evm_fuzz.
# This may be replaced when dependencies are built.
