file(REMOVE_RECURSE
  "CMakeFiles/test_evm_fuzz.dir/test_evm_fuzz.cpp.o"
  "CMakeFiles/test_evm_fuzz.dir/test_evm_fuzz.cpp.o.d"
  "test_evm_fuzz"
  "test_evm_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evm_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
