file(REMOVE_RECURSE
  "CMakeFiles/test_occ_baseline.dir/test_occ_baseline.cpp.o"
  "CMakeFiles/test_occ_baseline.dir/test_occ_baseline.cpp.o.d"
  "test_occ_baseline"
  "test_occ_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occ_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
