# Empty compiler generated dependencies file for test_proposer.
# This may be replaced when dependencies are built.
