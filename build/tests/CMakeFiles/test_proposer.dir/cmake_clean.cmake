file(REMOVE_RECURSE
  "CMakeFiles/test_proposer.dir/test_proposer.cpp.o"
  "CMakeFiles/test_proposer.dir/test_proposer.cpp.o.d"
  "test_proposer"
  "test_proposer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proposer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
