
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_proposer.cpp" "tests/CMakeFiles/test_proposer.dir/test_proposer.cpp.o" "gcc" "tests/CMakeFiles/test_proposer.dir/test_proposer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/txpool/CMakeFiles/bp_txpool.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/bp_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/bp_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/bp_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bp_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/bp_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
