file(REMOVE_RECURSE
  "CMakeFiles/bp_rlp.dir/rlp.cpp.o"
  "CMakeFiles/bp_rlp.dir/rlp.cpp.o.d"
  "libbp_rlp.a"
  "libbp_rlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_rlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
