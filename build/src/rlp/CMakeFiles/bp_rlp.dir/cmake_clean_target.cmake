file(REMOVE_RECURSE
  "libbp_rlp.a"
)
