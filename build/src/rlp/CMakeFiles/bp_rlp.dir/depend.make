# Empty dependencies file for bp_rlp.
# This may be replaced when dependencies are built.
