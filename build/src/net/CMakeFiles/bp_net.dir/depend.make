# Empty dependencies file for bp_net.
# This may be replaced when dependencies are built.
