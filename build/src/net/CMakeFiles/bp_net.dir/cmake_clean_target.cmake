file(REMOVE_RECURSE
  "libbp_net.a"
)
