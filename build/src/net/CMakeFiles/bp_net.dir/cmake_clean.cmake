file(REMOVE_RECURSE
  "CMakeFiles/bp_net.dir/consensus_sim.cpp.o"
  "CMakeFiles/bp_net.dir/consensus_sim.cpp.o.d"
  "CMakeFiles/bp_net.dir/network.cpp.o"
  "CMakeFiles/bp_net.dir/network.cpp.o.d"
  "libbp_net.a"
  "libbp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
