file(REMOVE_RECURSE
  "CMakeFiles/bp_sched.dir/dag.cpp.o"
  "CMakeFiles/bp_sched.dir/dag.cpp.o.d"
  "CMakeFiles/bp_sched.dir/depgraph.cpp.o"
  "CMakeFiles/bp_sched.dir/depgraph.cpp.o.d"
  "libbp_sched.a"
  "libbp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
