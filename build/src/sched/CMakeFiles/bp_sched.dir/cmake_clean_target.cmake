file(REMOVE_RECURSE
  "libbp_sched.a"
)
