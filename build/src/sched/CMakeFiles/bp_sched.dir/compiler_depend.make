# Empty compiler generated dependencies file for bp_sched.
# This may be replaced when dependencies are built.
