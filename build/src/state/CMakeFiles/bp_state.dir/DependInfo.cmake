
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/state/exec_buffer.cpp" "src/state/CMakeFiles/bp_state.dir/exec_buffer.cpp.o" "gcc" "src/state/CMakeFiles/bp_state.dir/exec_buffer.cpp.o.d"
  "/root/repo/src/state/versioned_state.cpp" "src/state/CMakeFiles/bp_state.dir/versioned_state.cpp.o" "gcc" "src/state/CMakeFiles/bp_state.dir/versioned_state.cpp.o.d"
  "/root/repo/src/state/world_state.cpp" "src/state/CMakeFiles/bp_state.dir/world_state.cpp.o" "gcc" "src/state/CMakeFiles/bp_state.dir/world_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trie/CMakeFiles/bp_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/bp_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
