file(REMOVE_RECURSE
  "CMakeFiles/bp_state.dir/exec_buffer.cpp.o"
  "CMakeFiles/bp_state.dir/exec_buffer.cpp.o.d"
  "CMakeFiles/bp_state.dir/versioned_state.cpp.o"
  "CMakeFiles/bp_state.dir/versioned_state.cpp.o.d"
  "CMakeFiles/bp_state.dir/world_state.cpp.o"
  "CMakeFiles/bp_state.dir/world_state.cpp.o.d"
  "libbp_state.a"
  "libbp_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
