# Empty compiler generated dependencies file for bp_state.
# This may be replaced when dependencies are built.
