file(REMOVE_RECURSE
  "libbp_state.a"
)
