file(REMOVE_RECURSE
  "libbp_crypto.a"
)
