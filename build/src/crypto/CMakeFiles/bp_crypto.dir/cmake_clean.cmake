file(REMOVE_RECURSE
  "CMakeFiles/bp_crypto.dir/keccak.cpp.o"
  "CMakeFiles/bp_crypto.dir/keccak.cpp.o.d"
  "libbp_crypto.a"
  "libbp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
