# Empty dependencies file for bp_crypto.
# This may be replaced when dependencies are built.
