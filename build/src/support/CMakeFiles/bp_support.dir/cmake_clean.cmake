file(REMOVE_RECURSE
  "CMakeFiles/bp_support.dir/rng.cpp.o"
  "CMakeFiles/bp_support.dir/rng.cpp.o.d"
  "CMakeFiles/bp_support.dir/thread_pool.cpp.o"
  "CMakeFiles/bp_support.dir/thread_pool.cpp.o.d"
  "libbp_support.a"
  "libbp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
