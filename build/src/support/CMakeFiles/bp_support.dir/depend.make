# Empty dependencies file for bp_support.
# This may be replaced when dependencies are built.
