file(REMOVE_RECURSE
  "libbp_support.a"
)
