file(REMOVE_RECURSE
  "libbp_types.a"
)
