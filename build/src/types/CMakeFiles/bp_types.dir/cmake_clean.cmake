file(REMOVE_RECURSE
  "CMakeFiles/bp_types.dir/address.cpp.o"
  "CMakeFiles/bp_types.dir/address.cpp.o.d"
  "CMakeFiles/bp_types.dir/u256.cpp.o"
  "CMakeFiles/bp_types.dir/u256.cpp.o.d"
  "libbp_types.a"
  "libbp_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
