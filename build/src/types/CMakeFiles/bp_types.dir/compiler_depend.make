# Empty compiler generated dependencies file for bp_types.
# This may be replaced when dependencies are built.
