
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/address.cpp" "src/types/CMakeFiles/bp_types.dir/address.cpp.o" "gcc" "src/types/CMakeFiles/bp_types.dir/address.cpp.o.d"
  "/root/repo/src/types/u256.cpp" "src/types/CMakeFiles/bp_types.dir/u256.cpp.o" "gcc" "src/types/CMakeFiles/bp_types.dir/u256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
