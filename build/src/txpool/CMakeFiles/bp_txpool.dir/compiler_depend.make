# Empty compiler generated dependencies file for bp_txpool.
# This may be replaced when dependencies are built.
