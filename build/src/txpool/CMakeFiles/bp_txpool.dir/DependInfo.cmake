
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txpool/txpool.cpp" "src/txpool/CMakeFiles/bp_txpool.dir/txpool.cpp.o" "gcc" "src/txpool/CMakeFiles/bp_txpool.dir/txpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/bp_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/bp_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/bp_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bp_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/bp_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
