file(REMOVE_RECURSE
  "CMakeFiles/bp_txpool.dir/txpool.cpp.o"
  "CMakeFiles/bp_txpool.dir/txpool.cpp.o.d"
  "libbp_txpool.a"
  "libbp_txpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_txpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
