file(REMOVE_RECURSE
  "libbp_txpool.a"
)
