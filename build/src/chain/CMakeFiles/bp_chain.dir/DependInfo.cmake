
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/archive.cpp" "src/chain/CMakeFiles/bp_chain.dir/archive.cpp.o" "gcc" "src/chain/CMakeFiles/bp_chain.dir/archive.cpp.o.d"
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/bp_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/bp_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/bp_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/bp_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/codec.cpp" "src/chain/CMakeFiles/bp_chain.dir/codec.cpp.o" "gcc" "src/chain/CMakeFiles/bp_chain.dir/codec.cpp.o.d"
  "/root/repo/src/chain/receipt.cpp" "src/chain/CMakeFiles/bp_chain.dir/receipt.cpp.o" "gcc" "src/chain/CMakeFiles/bp_chain.dir/receipt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/state/CMakeFiles/bp_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bp_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/rlp/CMakeFiles/bp_rlp.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/bp_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
