file(REMOVE_RECURSE
  "CMakeFiles/bp_chain.dir/archive.cpp.o"
  "CMakeFiles/bp_chain.dir/archive.cpp.o.d"
  "CMakeFiles/bp_chain.dir/block.cpp.o"
  "CMakeFiles/bp_chain.dir/block.cpp.o.d"
  "CMakeFiles/bp_chain.dir/blockchain.cpp.o"
  "CMakeFiles/bp_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/bp_chain.dir/codec.cpp.o"
  "CMakeFiles/bp_chain.dir/codec.cpp.o.d"
  "CMakeFiles/bp_chain.dir/receipt.cpp.o"
  "CMakeFiles/bp_chain.dir/receipt.cpp.o.d"
  "libbp_chain.a"
  "libbp_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
