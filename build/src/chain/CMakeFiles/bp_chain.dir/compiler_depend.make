# Empty compiler generated dependencies file for bp_chain.
# This may be replaced when dependencies are built.
