file(REMOVE_RECURSE
  "libbp_chain.a"
)
