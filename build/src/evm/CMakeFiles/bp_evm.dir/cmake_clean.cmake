file(REMOVE_RECURSE
  "CMakeFiles/bp_evm.dir/assembler.cpp.o"
  "CMakeFiles/bp_evm.dir/assembler.cpp.o.d"
  "CMakeFiles/bp_evm.dir/interpreter.cpp.o"
  "CMakeFiles/bp_evm.dir/interpreter.cpp.o.d"
  "CMakeFiles/bp_evm.dir/state_transition.cpp.o"
  "CMakeFiles/bp_evm.dir/state_transition.cpp.o.d"
  "libbp_evm.a"
  "libbp_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
