# Empty compiler generated dependencies file for bp_evm.
# This may be replaced when dependencies are built.
