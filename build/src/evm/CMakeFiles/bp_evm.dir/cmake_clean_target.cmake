file(REMOVE_RECURSE
  "libbp_evm.a"
)
