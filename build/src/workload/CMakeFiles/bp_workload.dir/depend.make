# Empty dependencies file for bp_workload.
# This may be replaced when dependencies are built.
