# Empty compiler generated dependencies file for bp_workload.
# This may be replaced when dependencies are built.
