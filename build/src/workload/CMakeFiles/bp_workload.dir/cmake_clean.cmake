file(REMOVE_RECURSE
  "CMakeFiles/bp_workload.dir/contracts.cpp.o"
  "CMakeFiles/bp_workload.dir/contracts.cpp.o.d"
  "CMakeFiles/bp_workload.dir/generator.cpp.o"
  "CMakeFiles/bp_workload.dir/generator.cpp.o.d"
  "libbp_workload.a"
  "libbp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
