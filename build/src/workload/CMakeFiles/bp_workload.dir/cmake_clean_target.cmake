file(REMOVE_RECURSE
  "libbp_workload.a"
)
