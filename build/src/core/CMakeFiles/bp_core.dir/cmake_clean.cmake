file(REMOVE_RECURSE
  "CMakeFiles/bp_core.dir/occ_baseline.cpp.o"
  "CMakeFiles/bp_core.dir/occ_baseline.cpp.o.d"
  "CMakeFiles/bp_core.dir/pipeline.cpp.o"
  "CMakeFiles/bp_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/bp_core.dir/proposer.cpp.o"
  "CMakeFiles/bp_core.dir/proposer.cpp.o.d"
  "CMakeFiles/bp_core.dir/serial_executor.cpp.o"
  "CMakeFiles/bp_core.dir/serial_executor.cpp.o.d"
  "CMakeFiles/bp_core.dir/validator.cpp.o"
  "CMakeFiles/bp_core.dir/validator.cpp.o.d"
  "libbp_core.a"
  "libbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
