file(REMOVE_RECURSE
  "libbp_trie.a"
)
