# Empty compiler generated dependencies file for bp_trie.
# This may be replaced when dependencies are built.
