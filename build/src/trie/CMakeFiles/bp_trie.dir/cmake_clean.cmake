file(REMOVE_RECURSE
  "CMakeFiles/bp_trie.dir/mpt.cpp.o"
  "CMakeFiles/bp_trie.dir/mpt.cpp.o.d"
  "CMakeFiles/bp_trie.dir/proof.cpp.o"
  "CMakeFiles/bp_trie.dir/proof.cpp.o.d"
  "libbp_trie.a"
  "libbp_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
