file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hotspot.dir/bench_fig8_hotspot.cpp.o"
  "CMakeFiles/bench_fig8_hotspot.dir/bench_fig8_hotspot.cpp.o.d"
  "bench_fig8_hotspot"
  "bench_fig8_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
