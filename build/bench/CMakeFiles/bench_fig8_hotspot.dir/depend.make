# Empty dependencies file for bench_fig8_hotspot.
# This may be replaced when dependencies are built.
