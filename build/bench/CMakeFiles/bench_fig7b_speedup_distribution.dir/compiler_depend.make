# Empty compiler generated dependencies file for bench_fig7b_speedup_distribution.
# This may be replaced when dependencies are built.
