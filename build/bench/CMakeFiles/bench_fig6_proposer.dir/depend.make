# Empty dependencies file for bench_fig6_proposer.
# This may be replaced when dependencies are built.
