file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_proposer.dir/bench_fig6_proposer.cpp.o"
  "CMakeFiles/bench_fig6_proposer.dir/bench_fig6_proposer.cpp.o.d"
  "bench_fig6_proposer"
  "bench_fig6_proposer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_proposer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
