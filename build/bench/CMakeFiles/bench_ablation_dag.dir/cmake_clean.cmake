file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dag.dir/bench_ablation_dag.cpp.o"
  "CMakeFiles/bench_ablation_dag.dir/bench_ablation_dag.cpp.o.d"
  "bench_ablation_dag"
  "bench_ablation_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
