file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_multiblock.dir/bench_fig9_multiblock.cpp.o"
  "CMakeFiles/bench_fig9_multiblock.dir/bench_fig9_multiblock.cpp.o.d"
  "bench_fig9_multiblock"
  "bench_fig9_multiblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multiblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
