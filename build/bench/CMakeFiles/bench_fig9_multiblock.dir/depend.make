# Empty dependencies file for bench_fig9_multiblock.
# This may be replaced when dependencies are built.
