file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_validator_scalability.dir/bench_fig7a_validator_scalability.cpp.o"
  "CMakeFiles/bench_fig7a_validator_scalability.dir/bench_fig7a_validator_scalability.cpp.o.d"
  "bench_fig7a_validator_scalability"
  "bench_fig7a_validator_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_validator_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
