file(REMOVE_RECURSE
  "CMakeFiles/defi_hotspot.dir/defi_hotspot.cpp.o"
  "CMakeFiles/defi_hotspot.dir/defi_hotspot.cpp.o.d"
  "defi_hotspot"
  "defi_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defi_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
