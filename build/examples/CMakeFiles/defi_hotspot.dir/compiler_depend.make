# Empty compiler generated dependencies file for defi_hotspot.
# This may be replaced when dependencies are built.
