file(REMOVE_RECURSE
  "CMakeFiles/contract_playground.dir/contract_playground.cpp.o"
  "CMakeFiles/contract_playground.dir/contract_playground.cpp.o.d"
  "contract_playground"
  "contract_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
