# Empty dependencies file for contract_playground.
# This may be replaced when dependencies are built.
