# Empty compiler generated dependencies file for bpctl.
# This may be replaced when dependencies are built.
