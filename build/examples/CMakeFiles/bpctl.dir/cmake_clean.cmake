file(REMOVE_RECURSE
  "CMakeFiles/bpctl.dir/bpctl.cpp.o"
  "CMakeFiles/bpctl.dir/bpctl.cpp.o.d"
  "bpctl"
  "bpctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
