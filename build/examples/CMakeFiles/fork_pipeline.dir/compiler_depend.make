# Empty compiler generated dependencies file for fork_pipeline.
# This may be replaced when dependencies are built.
