file(REMOVE_RECURSE
  "CMakeFiles/fork_pipeline.dir/fork_pipeline.cpp.o"
  "CMakeFiles/fork_pipeline.dir/fork_pipeline.cpp.o.d"
  "fork_pipeline"
  "fork_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
