// Ablation — gas-weighted LPT vs naive round-robin subgraph assignment
// (DESIGN.md §4; paper §4.3: "the scheduler assigns conflict-free jobs to
// threads that consume less gas").
//
// The validator's makespan is fully determined by the subgraph->thread
// assignment, so both policies are evaluated analytically on the same
// dependency graphs: LPT assigns heaviest-first to the least-loaded
// thread; round-robin ignores weights entirely.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 20;

std::uint64_t round_robin_makespan(const sched::DependencyGraph& graph,
                                   std::size_t threads) {
  std::vector<std::uint64_t> load(threads, 0);
  std::size_t next = 0;
  for (const auto& sg : graph.subgraphs) {
    load[next] += sg.total_gas;
    next = (next + 1) % threads;
  }
  std::uint64_t makespan = 0;
  for (const auto l : load) makespan = std::max(makespan, l);
  return makespan;
}

std::uint64_t lpt_makespan(const sched::DependencyGraph& graph,
                           std::size_t threads) {
  const auto plan = sched::lpt_schedule(graph, threads);
  std::uint64_t makespan = 0;
  for (const auto l : plan.load) makespan = std::max(makespan, l);
  return makespan;
}

void run() {
  print_header("Ablation: LPT vs round-robin subgraph scheduling",
               "(supports §4.3's gas-based heaviest-first policy)");

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xAB2;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  std::printf("%8s %14s %14s %12s\n", "threads", "LPT-speedup",
              "RR-speedup", "LPT-gain");
  for (const std::size_t threads : {2u, 4u, 8u, 16u}) {
    workload::WorkloadGenerator g2(wc);
    double lpt_sum = 0, rr_sum = 0;
    for (int b = 0; b < kBlocks; ++b) {
      core::SerialOptions so;
      const auto txs = g2.next_block();
      const auto serial =
          core::execute_serial(genesis, ctx_for(1), std::span(txs), so);
      const auto graph = sched::build_dependency_graph(
          serial.exec.profile, sched::Granularity::kAccount);
      const std::uint64_t total = graph.total_gas();
      lpt_sum += vtime::speedup(total, lpt_makespan(graph, threads));
      rr_sum += vtime::speedup(total, round_robin_makespan(graph, threads));
    }
    std::printf("%8zu %14.2f %14.2f %11.1f%%\n", threads, lpt_sum / kBlocks,
                rr_sum / kBlocks,
                (lpt_sum / rr_sum - 1.0) * 100.0);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
