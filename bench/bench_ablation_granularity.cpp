// Ablation — conflict-detection granularity (DESIGN.md §4, decision 1).
//
// The paper's validator coarsens conflicts to the ACCOUNT level (§4.3);
// the reserve table in the proposer works on exact keys.  This ablation
// quantifies what account-level coarsening costs the validator: exact
// storage-cell keys split some subgraphs (two txs touching different slots
// of one contract no longer conflict), shrinking the critical path and
// raising the attainable speedup.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 12;

void run() {
  print_header("Ablation: account-level vs key-level conflict granularity",
               "(not in paper — quantifies §4.3's account-level choice)");

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xAB1;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  ThreadPool workers(1);
  std::printf("%12s %14s %14s %16s\n", "granularity", "avg-subgraphs",
              "avg-ratio", "avg-speedup@16");
  for (const auto granularity :
       {sched::Granularity::kAccount, sched::Granularity::kKey}) {
    workload::WorkloadGenerator g2(wc);
    double subgraphs = 0, ratio = 0, speedup = 0;
    for (int b = 0; b < kBlocks; ++b) {
      const HonestBlock hb = build_honest_block(
          genesis, g2.next_block(), static_cast<std::uint64_t>(b) + 1);
      core::ValidatorConfig vc;
      vc.threads = 16;
      vc.granularity = granularity;
      const auto out = core::BlockValidator(vc).validate(
          genesis, hb.bundle.block, hb.bundle.profile, workers);
      if (!out.valid) {
        std::printf("VALIDATION FAILED: %s\n", out.reject_reason.c_str());
        return;
      }
      subgraphs += static_cast<double>(out.stats.subgraphs);
      ratio += out.stats.largest_subgraph_ratio;
      speedup += out.stats.virtual_speedup();
    }
    std::printf("%12s %14.1f %14.3f %16.2f\n",
                granularity == sched::Granularity::kAccount ? "account"
                                                            : "key",
                subgraphs / kBlocks, ratio / kBlocks, speedup / kBlocks);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
