// Node-store bench: the paged on-disk backend's four cost centers.
//
//  1. Append throughput — put() + periodic commit_root barriers (the write
//     side the CommitPipeline rides).
//  2. Cold vs warm trie reads over a state LARGER than the node cache —
//     repeated from_root passes with Zipf-skewed key reads (each pass
//     models one block's traversals from a fresh root; hot accounts recur,
//     the tail doesn't), run once from an empty cache (cold) and once at
//     steady state (warm).  The budget is half the state's node bytes, so
//     the tail cannot fit and the hit rate is strictly under 100%, yet the
//     hot paths stay resident and the warm run must beat the cold one:
//     that pairing is the read-through cache doing its job on a state it
//     cannot hold, and --smoke gates on it (exit 1).
//  3. Hit rate vs cache size — the same read pattern swept across cache
//     budgets from state/8 to 2x state.
//  4. Compaction — live ratio, reclaimed bytes, and the pause of a full
//     compact() over an overwrite-heavy history.
//
// Emits BENCH_db.json.  `--smoke` shrinks sizes for CI and turns the
// invariants above into exit-code gates.
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "db/paged_node_store.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "trie/mpt.hpp"
#include "trie/node_cache.hpp"

namespace blockpilot::bench {
namespace {

namespace fs = std::filesystem;
using trie::Bytes;
using trie::MerklePatriciaTrie;

struct Sizes {
  std::size_t append_nodes;   // experiment 1
  std::size_t state_keys;     // experiments 2+3
  std::size_t rewrite_blocks;  // experiment 4
};

Bytes random_bytes(Xoshiro256& rng, std::size_t len) {
  Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

// ---- experiment 1: append throughput ----
struct AppendResult {
  std::size_t nodes = 0;
  std::uint64_t payload_bytes = 0;
  double wall_ms = 0.0;
  double barrier_ms = 0.0;  // time inside commit_root (fsync cost)
  std::size_t barriers = 0;
};

AppendResult run_append(const std::string& dir, std::size_t nodes) {
  db::PagedNodeStore::Options opts;
  std::unique_ptr<db::PagedNodeStore> store;
  db::Status st = db::PagedNodeStore::open(dir, opts, store);
  if (!st.ok()) {
    std::printf("append: open failed: %s\n", st.message.c_str());
    return {};
  }
  Xoshiro256 rng(0xA99E);
  AppendResult out;
  out.nodes = nodes;
  Stopwatch wall;
  Hash256 h;
  for (std::size_t i = 0; i < nodes; ++i) {
    std::memcpy(h.bytes.data(), &i, sizeof(i));
    h.bytes[31] = 0xA1;
    const Bytes enc = random_bytes(rng, rng.range(64, 192));
    out.payload_bytes += enc.size();
    (void)store->put(h, std::span(enc));
    if ((i + 1) % 4096 == 0) {
      Stopwatch bsw;
      (void)store->commit_root(h, i);
      out.barrier_ms += bsw.elapsed_ms();
      ++out.barriers;
    }
  }
  out.wall_ms = wall.elapsed_ms();
  return out;
}

// ---- shared state for the read experiments ----
struct BenchState {
  std::unique_ptr<db::PagedNodeStore> store;
  Hash256 root;
  std::size_t keys = 0;
  std::uint64_t node_bytes = 0;
  std::uint64_t nodes = 0;
};

BenchState build_state(const std::string& dir, std::size_t keys) {
  BenchState bs;
  db::PagedNodeStore::Options opts;
  db::Status st = db::PagedNodeStore::open(dir, opts, bs.store);
  if (!st.ok()) {
    std::printf("state: open failed: %s\n", st.message.c_str());
    return bs;
  }
  MerklePatriciaTrie t;
  Xoshiro256 rng(0x57A7E);
  for (std::size_t k = 0; k < keys; ++k) {
    std::uint8_t key[8];
    std::memcpy(key, &k, sizeof(k));
    const Bytes value = random_bytes(rng, rng.range(40, 120));
    t.put(std::span<const std::uint8_t>(key, sizeof(key)), std::span(value));
  }
  bs.root = t.root_hash();
  t.persist_nodes(*bs.store);
  (void)bs.store->commit_root(bs.root, 1);
  bs.keys = keys;
  bs.node_bytes = bs.store->stats().node_bytes;
  bs.nodes = bs.store->stats().nodes;
  return bs;
}

/// One run: several passes, each a fresh from_root (all stubs cold in the
/// trie object) plus a batch of Zipf-skewed key reads.  A node loads at
/// most once per pass — through the cache when it can — so hot spines
/// recur across passes while tail leaves appear rarely: exactly the
/// access shape block processing puts on the account trie.
double run_read_passes(const BenchState& bs) {
  constexpr std::size_t kPasses = 8;
  Stopwatch sw;
  Xoshiro256 rng(0x2EAD);
  const ZipfSampler zipf(bs.keys, 0.9);
  const std::size_t reads_per_pass = bs.keys / 2;
  std::size_t found = 0, reads = 0;
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    MerklePatriciaTrie t = MerklePatriciaTrie::from_root(bs.root, *bs.store);
    for (std::size_t r = 0; r < reads_per_pass; ++r) {
      const std::uint64_t k = zipf(rng);
      std::uint8_t key[8];
      std::memcpy(key, &k, sizeof(k));
      ++reads;
      if (t.get(std::span<const std::uint8_t>(key, sizeof(key)))) ++found;
    }
  }
  if (found != reads) std::printf("reads lost keys: %zu/%zu\n", found, reads);
  return sw.elapsed_ms();
}

// ---- experiment 2: cold vs warm with cache smaller than state ----
struct ColdWarm {
  std::size_t cache_capacity = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double hit_rate = 0.0;  // warm-pass stub loads served by the cache
  std::uint64_t warm_loads = 0;
};

ColdWarm run_cold_warm(const BenchState& bs) {
  auto& cache = trie::NodeCache::global();
  ColdWarm out;
  out.cache_capacity = static_cast<std::size_t>(bs.node_bytes / 2);
  cache.set_capacity(out.cache_capacity);
  constexpr int kRepeats = 3;
  for (int rep = 0; rep < kRepeats; ++rep) {
    cache.clear();  // cold: the run starts with every load hitting the store
    const double cold = run_read_passes(bs);
    const auto before = cache.stats();
    const double warm = run_read_passes(bs);  // steady state: hot set resident
    const auto after = cache.stats();
    if (rep == 0 || cold < out.cold_ms) out.cold_ms = cold;
    if (rep == 0 || warm < out.warm_ms) out.warm_ms = warm;
    const std::uint64_t hits = after.load_hits - before.load_hits;
    const std::uint64_t misses = after.load_misses - before.load_misses;
    out.warm_loads = hits + misses;
    out.hit_rate = out.warm_loads > 0
                       ? static_cast<double>(hits) /
                             static_cast<double>(out.warm_loads)
                       : 0.0;
  }
  return out;
}

// ---- experiment 3: hit rate vs cache size sweep ----
struct SweepPoint {
  std::size_t capacity = 0;
  double hit_rate = 0.0;
  double warm_ms = 0.0;
};

std::vector<SweepPoint> run_sweep(const BenchState& bs) {
  auto& cache = trie::NodeCache::global();
  std::vector<SweepPoint> points;
  for (const double frac : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    SweepPoint p;
    p.capacity = static_cast<std::size_t>(static_cast<double>(bs.node_bytes) *
                                          frac);
    cache.set_capacity(p.capacity);
    cache.clear();
    (void)run_read_passes(bs);  // populate
    const auto before = cache.stats();
    p.warm_ms = run_read_passes(bs);
    const auto after = cache.stats();
    const std::uint64_t hits = after.load_hits - before.load_hits;
    const std::uint64_t loads =
        hits + (after.load_misses - before.load_misses);
    p.hit_rate = loads > 0
                     ? static_cast<double>(hits) / static_cast<double>(loads)
                     : 0.0;
    points.push_back(p);
  }
  return points;
}

// ---- experiment 4: compaction over an overwrite-heavy history ----
struct CompactionResult {
  double live_ratio_before = 0.0;
  std::uint64_t file_bytes_before = 0;
  std::uint64_t file_bytes_after = 0;
  double compact_ms = 0.0;
  double avg_barrier_ms = 0.0;
  bool root_survives = false;
};

CompactionResult run_compaction(const std::string& dir, std::size_t blocks) {
  db::PagedNodeStore::Options opts;
  opts.retained_roots = 4;
  std::unique_ptr<db::PagedNodeStore> store;
  db::Status st = db::PagedNodeStore::open(dir, opts, store);
  CompactionResult out;
  if (!st.ok()) {
    std::printf("compaction: open failed: %s\n", st.message.c_str());
    return out;
  }
  MerklePatriciaTrie t;
  Xoshiro256 rng(0xC0DE);
  Hash256 root;
  double barrier_total = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t k = rng.below(256);  // tiny keyspace: dead history
      std::uint8_t key[8];
      std::memcpy(key, &k, sizeof(k));
      const Bytes value = random_bytes(rng, 60);
      t.put(std::span<const std::uint8_t>(key, sizeof(key)), std::span(value));
    }
    root = t.root_hash();
    t.persist_nodes(*store);
    Stopwatch bsw;
    (void)store->commit_root(root, b);
    barrier_total += bsw.elapsed_ms();
  }
  out.avg_barrier_ms = barrier_total / static_cast<double>(blocks);
  out.live_ratio_before = store->live_ratio();
  out.file_bytes_before = store->stats().file_bytes;
  Stopwatch sw;
  st = store->compact();
  out.compact_ms = sw.elapsed_ms();
  if (!st.ok()) std::printf("compact failed: %s\n", st.message.c_str());
  out.file_bytes_after = store->stats().file_bytes;
  trie::NodeCache::global().clear();
  MerklePatriciaTrie reloaded = MerklePatriciaTrie::from_root(root, *store);
  out.root_survives = reloaded.root_hash() == root;
  return out;
}

int run(bool smoke) {
  print_header("Paged node store: append, read-through cache, compaction",
               "disk-backed state keeps the sealing path append-only");
  const Sizes sz = smoke ? Sizes{20'000, 5'000, 200}
                         : Sizes{200'000, 30'000, 1'000};

  char tmpl[] = "/tmp/bpdb_bench_XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  if (made == nullptr) {
    std::printf("mkdtemp failed\n");
    return 1;
  }
  const std::string base = made;
  fs::create_directories(base + "/append");
  fs::create_directories(base + "/state");
  fs::create_directories(base + "/compact");

  const std::size_t default_capacity = trie::NodeCache::global().capacity();
  int failures = 0;

  const AppendResult app = run_append(base + "/append", sz.append_nodes);
  const double appends_per_s =
      app.wall_ms > 0 ? 1000.0 * static_cast<double>(app.nodes) / app.wall_ms
                      : 0.0;
  std::printf("append: %zu nodes (%.1f MiB) in %.1f ms -> %.0f nodes/s, "
              "%zu barriers costing %.2f ms total\n",
              app.nodes,
              static_cast<double>(app.payload_bytes) / (1024.0 * 1024.0),
              app.wall_ms, appends_per_s, app.barriers, app.barrier_ms);
  if (appends_per_s <= 0) ++failures;

  const BenchState bs = build_state(base + "/state", sz.state_keys);
  std::printf("state: %zu keys -> %" PRIu64 " nodes, %.1f MiB node bytes\n",
              bs.keys, bs.nodes,
              static_cast<double>(bs.node_bytes) / (1024.0 * 1024.0));

  const ColdWarm cw = run_cold_warm(bs);
  std::printf("cold/warm (cache %.1f MiB = state/2): %.1f ms cold, %.1f ms "
              "warm, hit rate %.1f%% over %" PRIu64 " loads\n",
              static_cast<double>(cw.cache_capacity) / (1024.0 * 1024.0),
              cw.cold_ms, cw.warm_ms, 100.0 * cw.hit_rate, cw.warm_loads);
  if (!(cw.warm_ms < cw.cold_ms)) {
    std::printf("GATE FAILED: warm scan (%.2f ms) not below cold (%.2f ms)\n",
                cw.warm_ms, cw.cold_ms);
    ++failures;
  }
  if (!(cw.hit_rate > 0.0 && cw.hit_rate < 1.0)) {
    std::printf("GATE FAILED: hit rate %.4f outside (0,1) — the state must "
                "be larger than the cache\n",
                cw.hit_rate);
    ++failures;
  }

  const std::vector<SweepPoint> sweep = run_sweep(bs);
  std::printf("%14s %10s %10s\n", "cache-bytes", "hit-rate", "warm-ms");
  for (const SweepPoint& p : sweep)
    std::printf("%14zu %9.1f%% %10.1f\n", p.capacity, 100.0 * p.hit_rate,
                p.warm_ms);

  const CompactionResult comp = run_compaction(base + "/compact",
                                               sz.rewrite_blocks);
  std::printf("compaction: live ratio %.3f, %.1f -> %.1f MiB in %.1f ms "
              "(avg commit_root barrier %.3f ms); root survives: %s\n",
              comp.live_ratio_before,
              static_cast<double>(comp.file_bytes_before) / (1024.0 * 1024.0),
              static_cast<double>(comp.file_bytes_after) / (1024.0 * 1024.0),
              comp.compact_ms, comp.avg_barrier_ms,
              comp.root_survives ? "yes" : "NO");
  if (!comp.root_survives ||
      comp.file_bytes_after >= comp.file_bytes_before) {
    std::printf("GATE FAILED: compaction must shrink the file and keep the "
                "root reconstructible\n");
    ++failures;
  }

  trie::NodeCache::global().set_capacity(default_capacity);
  trie::NodeCache::global().clear();

  FILE* f = std::fopen("BENCH_db.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"append\": {\"nodes\": %zu, \"payload_bytes\": %" PRIu64
                 ", \"wall_ms\": %.3f, \"nodes_per_s\": %.0f, \"barriers\": "
                 "%zu, \"barrier_ms\": %.3f},\n",
                 app.nodes, app.payload_bytes, app.wall_ms, appends_per_s,
                 app.barriers, app.barrier_ms);
    std::fprintf(f,
                 "  \"state\": {\"keys\": %zu, \"nodes\": %" PRIu64
                 ", \"node_bytes\": %" PRIu64 "},\n",
                 bs.keys, bs.nodes, bs.node_bytes);
    std::fprintf(f,
                 "  \"cold_warm\": {\"cache_capacity\": %zu, \"cold_ms\": "
                 "%.3f, \"warm_ms\": %.3f, \"hit_rate\": %.4f, "
                 "\"warm_loads\": %" PRIu64 "},\n",
                 cw.cache_capacity, cw.cold_ms, cw.warm_ms, cw.hit_rate,
                 cw.warm_loads);
    std::fprintf(f, "  \"hit_rate_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i)
      std::fprintf(f,
                   "    {\"capacity\": %zu, \"hit_rate\": %.4f, \"warm_ms\": "
                   "%.3f}%s\n",
                   sweep[i].capacity, sweep[i].hit_rate, sweep[i].warm_ms,
                   i + 1 < sweep.size() ? "," : "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"compaction\": {\"live_ratio\": %.4f, "
                 "\"file_bytes_before\": %" PRIu64 ", \"file_bytes_after\": "
                 "%" PRIu64 ", \"compact_ms\": %.3f, \"avg_barrier_ms\": "
                 "%.4f, \"root_survives\": %s},\n",
                 comp.live_ratio_before, comp.file_bytes_before,
                 comp.file_bytes_after, comp.compact_ms, comp.avg_barrier_ms,
                 comp.root_survives ? "true" : "false");
    std::fprintf(f, "  \"gates_failed\": %d\n}\n", failures);
    std::fclose(f);
    std::printf("wrote BENCH_db.json\n");
  }

  fs::remove_all(base);  // leave no page files behind (ci.sh checks)
  if (failures > 0) {
    std::printf("%d gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace blockpilot::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  return blockpilot::bench::run(smoke);
}
