// Figure 6 — Evaluation of Proposer.
//
// Paper: OCC-WSI proposers average 1.82x / 2.60x / 3.56x / 4.89x speedup at
// 2 / 4 / 8 / 16 threads; 99.7 % of blocks are accelerated; speedup rises
// steadily with threads (good scalability), and proposers beat validators
// because they only need *a* serializable schedule, not a specific one.
//
// This bench proposes a stream of mainnet-like blocks with the OCC-WSI
// engine at each thread count and reports the average virtual speedup, the
// accelerated-block fraction, and the per-thread-count histogram.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 30;

void run() {
  print_header("Figure 6: proposer OCC-WSI scalability",
               "avg speedup 1.82/2.60/3.56/4.89 @ 2/4/8/16 threads; "
               "99.7% of blocks accelerated");

  ThreadPool workers(1);  // virtual-time mode needs no host threads
  std::printf("%8s %12s %14s %10s %10s\n", "threads", "avg-speedup",
              "accelerated%", "aborts/bk", "wall-ms/bk");

  for (const std::size_t threads : {2u, 4u, 8u, 16u}) {
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 0xF16;  // same stream for every thread count
    workload::WorkloadGenerator gen(wc);
    const state::WorldState genesis = gen.genesis();

    SpeedupHistogram hist;
    std::uint64_t aborts = 0;
    double wall = 0;
    for (int b = 0; b < kBlocks; ++b) {
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::ProposerConfig cfg;
      cfg.threads = threads;
      core::OccWsiProposer proposer(cfg);
      const core::ProposedBlock blk = proposer.propose(
          genesis, ctx_for(static_cast<std::uint64_t>(b) + 1), pool, workers);
      hist.add(blk.stats.virtual_speedup());
      aborts += blk.stats.aborts;
      wall += blk.stats.wall_ms;
    }
    std::printf("%8zu %12.2f %13.1f%% %10.1f %10.1f\n", threads,
                hist.average(), hist.accelerated_fraction() * 100.0,
                static_cast<double>(aborts) / kBlocks, wall / kBlocks);
    char label[64];
    std::snprintf(label, sizeof(label), "  %zu-thread", threads);
    hist.print(label);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
