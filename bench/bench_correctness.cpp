// §5.2 — Correctness validation (the paper's 10M-block replay, scaled).
//
// Paper: replaying blocks, the prototype always produced MPT state roots
// identical to the canonical chain ("Two world states are considered
// identical only if their MPT roots are the same").
//
// Here: a chain of generated blocks is built by the OCC-WSI proposer; at
// every height the serial oracle, the scheduled parallel validator, the
// two-phase OCC baseline and the pipeline must all reproduce the
// proposer's state root bit-for-bit.  Any divergence aborts with a diff.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr std::uint64_t kHeights = 30;

void run() {
  print_header("Correctness replay (§5.2 analogue)",
               "all engines produce identical MPT roots at every height");

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0x52;
  wc.txs_per_block = 60;  // keep the full sweep CI-friendly
  workload::WorkloadGenerator gen(wc);

  auto state = std::make_shared<state::WorldState>(gen.genesis());
  ThreadPool workers(4);
  core::ProposerConfig pc;
  pc.threads = 8;
  core::OccWsiProposer proposer(pc);
  core::ValidatorConfig vc;
  vc.threads = 8;

  std::uint64_t txs_total = 0;
  std::uint64_t roots_checked = 0;
  for (std::uint64_t height = 1; height <= kHeights; ++height) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());
    const core::ProposedBlock blk =
        proposer.propose(*state, ctx_for(height), pool, workers);
    txs_total += blk.block.transactions.size();

    // Oracle 1: serial replay.
    core::SerialOptions so;
    so.drop_unincludable = false;
    const auto serial = core::execute_serial(
        *state, ctx_for(height), std::span(blk.block.transactions), so);
    if (!serial.ok ||
        serial.exec.state_root != blk.block.header.state_root) {
      std::printf("DIVERGENCE: serial oracle at height %llu\n",
                  static_cast<unsigned long long>(height));
      return;
    }

    // Oracle 2: scheduled parallel validator.
    const auto validated = core::BlockValidator(vc).validate(
        *state, blk.block, blk.profile, workers);
    if (!validated.valid) {
      std::printf("DIVERGENCE: validator at height %llu: %s\n",
                  static_cast<unsigned long long>(height),
                  validated.reject_reason.c_str());
      return;
    }

    // Oracle 3: two-phase OCC baseline.
    const auto occ =
        core::TwoPhaseOcc(vc).validate(*state, blk.block, workers);
    if (!occ.valid) {
      std::printf("DIVERGENCE: two-phase OCC at height %llu: %s\n",
                  static_cast<unsigned long long>(height),
                  occ.reject_reason.c_str());
      return;
    }

    // Oracle 4: pipeline (single-height path).
    core::PipelineConfig plc;
    plc.workers = 8;
    const std::vector<core::BlockBundle> bundle = {{blk.block, blk.profile}};
    const auto piped = core::ValidatorPipeline(plc).process_height(
        *state, std::span(bundle), workers);
    if (!piped.all_valid()) {
      std::printf("DIVERGENCE: pipeline at height %llu\n",
                  static_cast<unsigned long long>(height));
      return;
    }

    roots_checked += 4;
    state = validated.exec.post_state;
  }

  std::printf("heights: %llu   transactions: %llu   root checks: %llu   "
              "divergences: 0\n",
              static_cast<unsigned long long>(kHeights),
              static_cast<unsigned long long>(txs_total),
              static_cast<unsigned long long>(roots_checked));
  std::printf("RESULT: all engines agree on every state root (PASS)\n");
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
