// Ablation — state prefetching (paper §5.4).
//
// The paper's single-block evaluation enables geth's prefetcher "to reduce
// the I/O impact in executing transactions and prefetch all required
// storage slots to memory".  This ablation measures what that buys: with
// prefetching off, every first-touch state read stalls a worker on the
// backing store, lengthening the critical path — hotspot subgraphs suffer
// most because their serial chains accumulate every stall.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 12;

void run() {
  print_header("Ablation: profile-driven state prefetching (§5.4)",
               "paper enables geth prefetching for all validator results");

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xAB3;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  std::vector<HonestBlock> blocks;
  for (int b = 0; b < kBlocks; ++b)
    blocks.push_back(build_honest_block(
        genesis, gen.next_block(), static_cast<std::uint64_t>(b) + 1));

  ThreadPool workers(1);
  std::printf("%8s %18s %18s %10s\n", "threads", "prefetch-on",
              "prefetch-off", "benefit");
  for (const std::size_t threads : {2u, 4u, 8u, 16u}) {
    double on_sum = 0, off_sum = 0;
    for (const HonestBlock& hb : blocks) {
      core::ValidatorConfig vc;
      vc.threads = threads;
      vc.prefetch = true;
      const auto on = core::BlockValidator(vc).validate(
          genesis, hb.bundle.block, hb.bundle.profile, workers);
      vc.prefetch = false;
      const auto off = core::BlockValidator(vc).validate(
          genesis, hb.bundle.block, hb.bundle.profile, workers);
      if (!on.valid || !off.valid) {
        std::printf("VALIDATION FAILED\n");
        return;
      }
      on_sum += on.stats.virtual_speedup();
      off_sum += off.stats.virtual_speedup();
    }
    std::printf("%8zu %18.2f %18.2f %9.1f%%\n", threads, on_sum / kBlocks,
                off_sum / kBlocks, (on_sum / off_sum - 1.0) * 100.0);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
