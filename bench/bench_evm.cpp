// EVM interpreter bench: the per-code-hash CodeAnalysis cache + block
// -dispatch fast path against the frozen per-op reference interpreter.
//
//  1. Interpreter throughput — a compute-heavy loop contract (arithmetic,
//     memory, hashing; the profile where dispatch and per-op gas accounting
//     dominate) executed by both interpreters with a warm analysis cache.
//     Reports Mops (million executed EVM ops per second) per side and the
//     fast/reference speedup.
//  2. Analysis-cache dynamics under preset_mainnet — blocks executed
//     serially through a fresh private cache: analysis build time, build
//     count, and the hit rate of the first block vs steady state.
//  3. Per-profile block-execution latency — serial block execution wall
//     time per workload preset (mainnet / low / high conflict / NFT drop),
//     fast vs reference, on warm caches.
//
// Emits BENCH_evm.json.  `--smoke` shrinks iteration counts and turns the
// invariants into exit-code gates: fast/reference speedup >= 1.0 on the
// compute contract, steady-state hit rate >= 99 %.
#include <cinttypes>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "evm/assembler.hpp"
#include "evm/code_analysis.hpp"
#include "support/stopwatch.hpp"
#include "workload/generator.hpp"

namespace blockpilot::bench {
namespace {

using evm::Assembler;
using evm::CodeAnalysisCache;
using evm::Op;

// ---- experiment 1: interpreter throughput ----

/// Compute-heavy contract: `loop_iters` turns of arithmetic, shifts,
/// bit-mixing and memory traffic; returns the accumulator.  ~37 executed
/// ops per turn, all cheap — so dispatch overhead and per-op gas/stack
/// accounting dominate, which is exactly what the fast interpreter
/// eliminates.  Deliberately no SHA3/storage: keccak and trie I/O cost
/// the same on both paths and would only dilute the measurement.
evm::Bytes compute_contract(std::size_t loop_iters) {
  Assembler a;
  a.push(0).push(0).op(Op::MSTORE);                // mem[0] = accumulator
  a.push(U256{loop_iters}).push(0x20).op(Op::MSTORE);  // mem[0x20] = counter
  a.label("loop");
  a.push(0x20).op(Op::MLOAD);                      // counter
  a.op(Op::ISZERO);
  a.push_label("done").op(Op::JUMPI);
  // acc' = ((acc << 3) + ((acc >> 5) ^ (acc & 0xff))) + counter*3 + 1
  a.push(0).op(Op::MLOAD);                         // [acc]
  a.op(Op::DUP1);                                  // [acc acc]
  a.push(3).op(Op::SHL);                           // [acc acc<<3]
  a.op(Op::SWAP1);                                 // [acc<<3 acc]
  a.op(Op::DUP1);                                  // [acc<<3 acc acc]
  a.push(5).op(Op::SHR);                           // [acc<<3 acc acc>>5]
  a.op(Op::SWAP1);                                 // [acc<<3 acc>>5 acc]
  a.push(0xff).op(Op::AND);                        // [acc<<3 acc>>5 acc&ff]
  a.op(Op::XOR);                                   // [acc<<3 mix]
  a.op(Op::ADD);                                   // [sum]
  a.push(0x20).op(Op::MLOAD);                      // [sum counter]
  a.push(3).op(Op::MUL);                           // [sum counter*3]
  a.op(Op::ADD);
  a.push(1).op(Op::ADD);                           // [acc']
  a.push(0).op(Op::MSTORE);                        // store acc
  a.push(1).push(0x20).op(Op::MLOAD).op(Op::SUB);  // counter - 1
  a.push(0x20).op(Op::MSTORE);
  a.push_label("loop").op(Op::JUMP);
  a.label("done");
  a.push(0x20).push(0).op(Op::RETURN);
  return a.assemble();
}

struct ThroughputResult {
  double ref_ms = 0.0;
  double fast_ms = 0.0;
  double ref_mops = 0.0;
  double fast_mops = 0.0;
  double speedup = 0.0;
  std::uint64_t ops_per_run = 0;
  bool identical = true;  // status/gas/output agree between the two paths
};

ThroughputResult run_throughput(std::size_t loop_iters, std::size_t repeats) {
  state::WorldState ws;
  const Address contract = Address::from_id(0xC0DE);
  const Address caller = Address::from_id(1);
  ws.set_code(contract, compute_contract(loop_iters));

  CodeAnalysisCache cache;
  evm::BlockContext block = ctx_for(1);
  block.analysis_cache = &cache;

  auto execute = [&](bool reference, evm::CallResult* out) {
    const state::WorldStateView view(ws);
    state::ExecBuffer buffer(view);
    evm::TxContext tx;
    tx.origin = caller;
    tx.gas_price = U256{1};
    tx.block = &block;
    tx.analysis_cache = &cache;
    tx.use_reference_interpreter = reference;
    evm::Message msg;
    msg.caller = caller;
    msg.to = contract;
    msg.gas = 300'000'000;
    const evm::CallResult r = evm::execute_call(buffer, tx, msg);
    if (out != nullptr) *out = r;
  };

  ThroughputResult out;
  // Instruction count per run, from the loop body's shape (~37 executed
  // ops per turn + prologue/epilogue) — good enough for Mops scaling.
  out.ops_per_run = static_cast<std::uint64_t>(loop_iters) * 37 + 16;

  // Warm both paths (and the analysis cache) once, and check identity.
  evm::CallResult ref_r, fast_r;
  execute(true, &ref_r);
  execute(false, &fast_r);
  out.identical = ref_r.status == fast_r.status &&
                  ref_r.gas_left == fast_r.gas_left &&
                  ref_r.output == fast_r.output &&
                  ref_r.status == evm::Status::kSuccess;

  Stopwatch ref_sw;
  for (std::size_t i = 0; i < repeats; ++i) execute(true, nullptr);
  out.ref_ms = ref_sw.elapsed_ms();

  Stopwatch fast_sw;
  for (std::size_t i = 0; i < repeats; ++i) execute(false, nullptr);
  out.fast_ms = fast_sw.elapsed_ms();

  const std::uint64_t ops = out.ops_per_run;

  const double total_ops =
      static_cast<double>(ops) * static_cast<double>(repeats);
  out.ref_mops = total_ops / (out.ref_ms * 1e3);
  out.fast_mops = total_ops / (out.fast_ms * 1e3);
  out.speedup = out.ref_ms / out.fast_ms;
  return out;
}

// ---- experiment 2: cache dynamics under the mainnet workload ----

struct CacheResult {
  double first_block_hit_rate = 0.0;
  double steady_hit_rate = 0.0;  // blocks after the first
  std::uint64_t builds = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  double analysis_build_ms = 0.0;  // rebuild-everything wall time
};

CacheResult run_cache_dynamics(std::size_t blocks) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  state::WorldState ws = gen.genesis();

  CodeAnalysisCache cache;
  core::SerialOptions opts;
  opts.analysis_cache = &cache;

  CacheResult out;
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto txs = gen.next_block();
    const auto r =
        core::execute_serial(ws, ctx_for(b + 1), std::span(txs), opts);
    ws = *r.exec.post_state;
    if (b == 0) {
      out.first_block_hit_rate = cache.stats().hit_rate();
      cache.reset_stats();
    }
  }
  const auto s = cache.stats();
  out.steady_hit_rate = s.hit_rate();
  out.entries = s.entries;
  out.bytes = s.bytes;
  out.builds = s.builds;

  // Re-analyze every cached contract from scratch to price the work the
  // cache saves per hit.
  std::vector<std::pair<Hash256, std::shared_ptr<const state::Bytes>>> codes;
  for (std::size_t i = 0; i < gen.config().num_tokens; ++i) {
    const Address a = gen.token(i);
    if (auto c = ws.code(a)) codes.emplace_back(ws.code_hash(a), c);
  }
  for (std::size_t i = 0; i < gen.config().num_dex; ++i) {
    const Address a = gen.dex(i);
    if (auto c = ws.code(a)) codes.emplace_back(ws.code_hash(a), c);
  }
  Stopwatch sw;
  for (int rep = 0; rep < 50; ++rep)
    for (const auto& [h, c] : codes) (void)evm::analyze_code(std::span(*c), h);
  out.analysis_build_ms = sw.elapsed_ms() / 50.0;
  return out;
}

// ---- experiment 3: per-profile block latency ----

struct ProfileResult {
  std::string name;
  double ref_ms_per_block = 0.0;
  double fast_ms_per_block = 0.0;
  double speedup = 0.0;
  bool roots_match = true;
};

ProfileResult run_profile(const char* name, workload::WorkloadConfig cfg,
                          std::size_t blocks) {
  ProfileResult out;
  out.name = name;
  workload::WorkloadGenerator gen(cfg);
  const state::WorldState genesis = gen.genesis();

  // Pre-generate the block stream so both sides execute identical input.
  std::vector<std::vector<chain::Transaction>> stream;
  for (std::size_t b = 0; b < blocks; ++b) stream.push_back(gen.next_block());

  CodeAnalysisCache cache;
  auto run_side = [&](bool reference, double* ms_out) {
    state::WorldState ws = genesis;
    core::SerialOptions opts;
    opts.analysis_cache = &cache;
    Hash256 root;
    Stopwatch sw;
    for (std::size_t b = 0; b < stream.size(); ++b) {
      evm::BlockContext ctx = ctx_for(b + 1);
      ctx.use_reference_interpreter = reference;
      const auto r =
          core::execute_serial(ws, ctx, std::span(stream[b]), opts);
      ws = *r.exec.post_state;
      root = r.exec.state_root;
    }
    *ms_out = sw.elapsed_ms() / static_cast<double>(stream.size());
    return root;
  };

  double ref_ms = 0.0, fast_ms = 0.0;
  const Hash256 ref_root = run_side(true, &ref_ms);
  const Hash256 fast_root = run_side(false, &fast_ms);
  out.ref_ms_per_block = ref_ms;
  out.fast_ms_per_block = fast_ms;
  out.speedup = ref_ms / fast_ms;
  out.roots_match = ref_root == fast_root;
  return out;
}

int run(bool smoke) {
  print_header("EVM interpreter: CodeAnalysis cache + block dispatch",
               "per-code analysis shared across proposer/validator frames");

  const std::size_t loop_iters = smoke ? 2'000 : 20'000;
  const std::size_t repeats = smoke ? 20 : 100;
  const std::size_t cache_blocks = smoke ? 8 : 32;
  const std::size_t profile_blocks = smoke ? 4 : 16;

  int failures = 0;

  // 1. Throughput.
  const ThroughputResult tp = run_throughput(loop_iters, repeats);
  std::printf("\n[throughput] compute contract, %zu loop iters x %zu runs\n",
              loop_iters, repeats);
  std::printf("  reference: %8.2f ms  (%6.2f Mops)\n", tp.ref_ms, tp.ref_mops);
  std::printf("  fast:      %8.2f ms  (%6.2f Mops)\n", tp.fast_ms,
              tp.fast_mops);
  std::printf("  speedup:   %.2fx   bit-identical: %s\n", tp.speedup,
              tp.identical ? "yes" : "NO");
  if (!tp.identical) {
    std::printf("  GATE FAILED: fast path diverged from reference\n");
    ++failures;
  }
  if (smoke && tp.speedup < 1.0) {
    std::printf("  GATE FAILED: speedup %.2fx < 1.0x\n", tp.speedup);
    ++failures;
  }

  // 2. Cache dynamics.
  const CacheResult cd = run_cache_dynamics(cache_blocks);
  std::printf("\n[cache] preset_mainnet, %zu blocks, private cache\n",
              cache_blocks);
  std::printf("  first-block hit rate:  %6.2f %%\n",
              cd.first_block_hit_rate * 100.0);
  std::printf("  steady-state hit rate: %6.2f %%\n",
              cd.steady_hit_rate * 100.0);
  std::printf("  builds: %" PRIu64 "   entries: %zu   bytes: %zu\n",
              cd.builds, cd.entries, cd.bytes);
  std::printf("  full re-analysis of workload contracts: %.3f ms\n",
              cd.analysis_build_ms);
  if (smoke && cd.steady_hit_rate < 0.99) {
    std::printf("  GATE FAILED: steady-state hit rate %.4f < 0.99\n",
                cd.steady_hit_rate);
    ++failures;
  }

  // 3. Per-profile latency.
  std::vector<ProfileResult> profiles;
  profiles.push_back(run_profile("mainnet", workload::preset_mainnet(),
                                 profile_blocks));
  profiles.push_back(run_profile("low_conflict",
                                 workload::preset_low_conflict(),
                                 profile_blocks));
  profiles.push_back(run_profile("high_conflict",
                                 workload::preset_high_conflict(),
                                 profile_blocks));
  profiles.push_back(run_profile("nft_drop", workload::preset_nft_drop(),
                                 profile_blocks));
  std::printf("\n[profiles] serial block execution, %zu blocks each\n",
              profile_blocks);
  std::printf("  %-14s %12s %12s %9s %6s\n", "profile", "ref ms/blk",
              "fast ms/blk", "speedup", "root");
  for (const auto& p : profiles) {
    std::printf("  %-14s %12.3f %12.3f %8.2fx %6s\n", p.name.c_str(),
                p.ref_ms_per_block, p.fast_ms_per_block, p.speedup,
                p.roots_match ? "ok" : "SKEW");
    if (!p.roots_match) {
      std::printf("  GATE FAILED: %s state root diverged\n", p.name.c_str());
      ++failures;
    }
  }

  FILE* f = std::fopen("BENCH_evm.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"throughput\": {\"loop_iters\": %zu, \"repeats\": %zu, "
                 "\"ref_ms\": %.3f, \"fast_ms\": %.3f, \"ref_mops\": %.3f, "
                 "\"fast_mops\": %.3f, \"speedup\": %.3f, \"identical\": "
                 "%s},\n",
                 loop_iters, repeats, tp.ref_ms, tp.fast_ms, tp.ref_mops,
                 tp.fast_mops, tp.speedup, tp.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"cache\": {\"blocks\": %zu, \"first_block_hit_rate\": "
                 "%.4f, \"steady_hit_rate\": %.4f, \"builds\": %" PRIu64
                 ", \"entries\": %zu, \"bytes\": %zu, "
                 "\"analysis_build_ms\": %.4f},\n",
                 cache_blocks, cd.first_block_hit_rate, cd.steady_hit_rate,
                 cd.builds, cd.entries, cd.bytes, cd.analysis_build_ms);
    std::fprintf(f, "  \"profiles\": [\n");
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const auto& p = profiles[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ref_ms_per_block\": %.4f, "
                   "\"fast_ms_per_block\": %.4f, \"speedup\": %.3f, "
                   "\"roots_match\": %s}%s\n",
                   p.name.c_str(), p.ref_ms_per_block, p.fast_ms_per_block,
                   p.speedup, p.roots_match ? "true" : "false",
                   i + 1 < profiles.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"gates_failed\": %d\n}\n", failures);
    std::fclose(f);
    std::printf("\nwrote BENCH_evm.json\n");
  }

  if (failures > 0) {
    std::printf("%d gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace blockpilot::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  return blockpilot::bench::run(smoke);
}
