// State-commitment bench: incremental MPT roots + the async commit pipeline.
//
// Two experiments over the fig-9 multi-block workload (preset_mainnet,
// ~132-tx blocks, chained heights):
//
//  1. Root recomputation — after applying one block's writes, time
//     state_root() (incremental: only dirty paths re-hash) against
//     state_root_full_rebuild() (the seed implementation: every trie node
//     rebuilt and re-hashed).  The paper's §5.2 root-equality check pays
//     this cost on every block, so the ratio is the direct win.
//
//  2. Pipeline overlap — propose a chain of blocks with header sealing on
//     the CommitPipeline vs inline.  Stopwatch phases per height show block
//     N's commitment running during block N+1's execution; the JSON records
//     both walls and the tail wait.
//
//  3. Copy under commit — a pool thread runs a heavyweight state_root()
//     (the in-flight commit) while the main thread keeps taking
//     finalize-time WorldState copies of the same object.  The seed
//     implementation held commit_mu_ across the whole computation, so
//     every copy stalled for the full commit; with the snapshot-based
//     phase split a copy only contends for the short collect/install
//     critical sections.  The worst copy latency vs the commit wall is
//     the evidence.
//
// Emits BENCH_commit.json (machine-readable) plus a stdout summary.
//  4. Paged-store rider — the same overlapped chain with a PagedNodeStore
//     attached to the pipeline, so every seal also appends the block's
//     dirty trie nodes to disk.  The appends ride the commit future, off
//     the sealing path: the overlapped wall must stay within ~5% of the
//     store-less run, and the JSON records the regression alongside the
//     persist totals.
#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench_common.hpp"
#include "commit/commit_pipeline.hpp"
#include "db/paged_node_store.hpp"
#include "support/stopwatch.hpp"
#include "trie/node_cache.hpp"

namespace blockpilot::bench {
namespace {

constexpr std::size_t kHeights = 8;

struct RootSample {
  std::size_t txs = 0;
  double incremental_ms = 0.0;
  double full_rebuild_ms = 0.0;
};

struct OverlapSample {
  std::size_t txs = 0;
  double exec_ms = 0.0;     // propose wall (execution + assembly)
  double commit_ms = 0.0;   // root hashing on the commit pool
  double persist_ms = 0.0;  // node-store appends riding the seal (exp. 4)
  std::size_t nodes_appended = 0;
};

// ---- experiment 1: incremental vs full-rebuild root recomputation ----
std::vector<RootSample> run_root_recompute(double* oracle_mismatch) {
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xF19;
  workload::WorkloadGenerator gen(wc);

  // Chain of honest blocks; each block's profile carries its write sets.
  std::vector<HonestBlock> chain;
  const state::WorldState genesis = gen.genesis();
  const state::WorldState* parent = &genesis;
  for (std::size_t h = 1; h <= kHeights; ++h) {
    chain.push_back(build_honest_block(*parent, gen.next_block(), h));
    parent = chain.back().post_state.get();
  }

  state::WorldState running = genesis;
  (void)running.state_root();  // commit the baseline

  std::vector<RootSample> samples;
  *oracle_mismatch = 0;
  for (const HonestBlock& hb : chain) {
    // Replay the block as raw write sets (value-identical to the honest
    // execution for commitment purposes).
    for (const chain::TxProfile& tx : hb.bundle.profile.txs)
      for (const auto& [key, value] : tx.writes) running.set(key, value);

    RootSample s;
    s.txs = hb.bundle.profile.size();
    Stopwatch sw;
    const Hash256 incremental = running.state_root();
    s.incremental_ms = sw.elapsed_ms();
    sw.reset();
    const Hash256 oracle = running.state_root_full_rebuild();
    s.full_rebuild_ms = sw.elapsed_ms();
    if (incremental != oracle) *oracle_mismatch += 1;
    samples.push_back(s);
  }
  return samples;
}

// ---- experiment 2: async seal overlap across a proposed chain ----
std::vector<OverlapSample> run_overlap_once(commit::CommitPipeline* pipe,
                                            double* wall_out,
                                            double* tail_out) {
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xF19;
  workload::WorkloadGenerator gen(wc);
  state::WorldState genesis = gen.genesis();
  // A live node starts from a parent whose commitment is final: commit the
  // genesis root outside the timed region so height 1 doesn't pay the
  // one-off whole-state build in either mode.
  (void)genesis.state_root();

  core::ProposerConfig cfg;
  cfg.threads = 4;
  cfg.commit_pipeline = pipe;
  core::OccWsiProposer proposer(cfg);

  std::vector<OverlapSample> samples;
  std::vector<core::ProposedBlock> blocks;
  Stopwatch wall;
  const state::WorldState* parent = &genesis;
  for (std::size_t h = 1; h <= kHeights; ++h) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());
    Stopwatch sw;
    blocks.push_back(proposer.propose_virtual(*parent, ctx_for(h), pool));
    OverlapSample s;
    s.txs = blocks.back().block.transactions.size();
    s.exec_ms = sw.elapsed_ms();  // inline mode: includes sealing
    samples.push_back(s);
    parent = blocks.back().post_state.get();
  }
  // Overlap window closes here: settle every pending seal.
  Stopwatch tail;
  for (std::size_t h = 0; h < blocks.size(); ++h) {
    blocks[h].await_seal();
    if (blocks[h].commit.valid()) {
      const commit::CommitResult& r = blocks[h].commit.get();
      samples[h].commit_ms = r.commit_ms;
      samples[h].persist_ms = r.persist_ms;
      samples[h].nodes_appended = r.nodes_appended;
    }
  }
  *tail_out = tail.elapsed_ms();
  *wall_out = wall.elapsed_ms();
  return samples;
}

// ---- experiment 3: finalize-time copies racing an in-flight commit ----
struct CopyUnderCommit {
  double commit_ms = 0.0;         // wall of the in-flight state_root()
  double copy_idle_ms = 0.0;      // best-of-3 copy with no commit running
  double copy_worst_ms = 0.0;     // worst copy taken while commit in flight
  double copy_mean_ms = 0.0;
  std::size_t copies = 0;         // copies completed before the commit did
  bool roots_agree = false;       // mid-commit snapshot == oracle root
};

CopyUnderCommit run_copy_under_commit() {
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xF19;
  workload::WorkloadGenerator gen(wc);

  // Heavyweight commit: genesis is never rooted, and every block's writes
  // pile onto the dirty set, so the pool thread's state_root() builds the
  // entire trie in one go.
  state::WorldState running = gen.genesis();
  {
    std::shared_ptr<state::WorldState> keep;
    const state::WorldState* parent = &running;
    for (std::size_t h = 1; h <= kHeights; ++h) {
      const HonestBlock hb = build_honest_block(*parent, gen.next_block(), h);
      for (const chain::TxProfile& tx : hb.bundle.profile.txs)
        for (const auto& [key, value] : tx.writes) running.set(key, value);
      keep = hb.post_state;
      parent = keep.get();
    }
  }

  CopyUnderCommit out;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    const state::WorldState idle_copy(running);
    const double ms = sw.elapsed_ms();
    if (rep == 0 || ms < out.copy_idle_ms) out.copy_idle_ms = ms;
  }

  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> done{false};
  pool.submit([&running, &started, &done, &out] {
    started.store(true, std::memory_order_release);
    Stopwatch sw;
    (void)running.state_root();
    out.commit_ms = sw.elapsed_ms();
    done.store(true, std::memory_order_release);
  });
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<state::WorldState> snapshots;
  double total = 0;
  while (!done.load(std::memory_order_acquire)) {
    Stopwatch sw;
    snapshots.emplace_back(running);
    const double ms = sw.elapsed_ms();
    total += ms;
    if (ms > out.copy_worst_ms) out.copy_worst_ms = ms;
  }
  pool.wait_idle();
  out.copies = snapshots.size();
  out.copy_mean_ms = out.copies > 0 ? total / out.copies : 0.0;

  // A copy taken mid-commit is logically identical to the source: its own
  // root must land on the same hash the committed source settled on.
  if (!snapshots.empty())
    out.roots_agree = snapshots.back().state_root() == running.state_root();
  return out;
}

// Scheduler noise dominates single-digit-ms walls (especially on low-core
// boxes where the commit pool time-slices against the proposer), so take
// the best of a few repeats per mode.
constexpr int kOverlapRepeats = 3;

std::vector<OverlapSample> run_overlap(commit::CommitPipeline* pipe,
                                       double* wall_out, double* tail_out) {
  std::vector<OverlapSample> best;
  double best_wall = 0, best_tail = 0;
  for (int rep = 0; rep < kOverlapRepeats; ++rep) {
    double w = 0, t = 0;
    std::vector<OverlapSample> s = run_overlap_once(pipe, &w, &t);
    if (rep == 0 || w < best_wall) {
      best = std::move(s);
      best_wall = w;
      best_tail = t;
    }
  }
  *wall_out = best_wall;
  *tail_out = best_tail;
  return best;
}

void run() {
  print_header("State commitment: incremental MPT + async commit pipeline",
               "root check moves off the critical path (§5.2 overlap)");

  trie::NodeCache::global().clear();
  trie::NodeCache::global().reset_stats();

  double mismatches = 0;
  const std::vector<RootSample> roots = run_root_recompute(&mismatches);
  const trie::NodeCache::Stats cache = trie::NodeCache::global().stats();

  double incr_total = 0, full_total = 0;
  std::printf("%8s %6s %16s %16s %10s\n", "height", "txs", "incremental-ms",
              "full-rebuild-ms", "speedup");
  for (std::size_t h = 0; h < roots.size(); ++h) {
    const RootSample& s = roots[h];
    incr_total += s.incremental_ms;
    full_total += s.full_rebuild_ms;
    std::printf("%8zu %6zu %16.3f %16.3f %9.1fx\n", h + 1, s.txs,
                s.incremental_ms, s.full_rebuild_ms,
                s.incremental_ms > 0 ? s.full_rebuild_ms / s.incremental_ms
                                     : 0.0);
  }
  const double speedup = incr_total > 0 ? full_total / incr_total : 0.0;
  std::printf("root recompute: %.3f ms incremental vs %.3f ms full "
              "(%.1fx), oracle mismatches: %.0f\n",
              incr_total, full_total, speedup, mismatches);
  std::printf("node cache: %" PRIu64 " hits / %" PRIu64 " misses / %" PRIu64
              " evictions, %zu entries, %zu / %zu bytes (CLOCK)\n",
              cache.hits, cache.misses, cache.evictions, cache.entries,
              cache.bytes, cache.capacity);

  // Overlap experiment: inline sealing vs commit-pipeline sealing.
  double serial_wall = 0, serial_tail = 0;
  const auto serial = run_overlap(nullptr, &serial_wall, &serial_tail);

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  double async_wall = 0, async_tail = 0;
  const auto overlapped = run_overlap(&pipe, &async_wall, &async_tail);

  std::printf("\n%8s %6s %14s %14s %14s\n", "height", "txs", "serial-ms",
              "async-exec-ms", "commit-ms");
  for (std::size_t h = 0; h < overlapped.size(); ++h) {
    std::printf("%8zu %6zu %14.2f %14.2f %14.2f\n", h + 1, overlapped[h].txs,
                serial[h].exec_ms, overlapped[h].exec_ms,
                overlapped[h].commit_ms);
  }
  double commit_total = 0;
  for (const OverlapSample& s : overlapped) commit_total += s.commit_ms;
  std::printf("pipeline wall: %.2f ms inline-seal vs %.2f ms overlapped "
              "(tail wait %.2f ms, saved %.2f ms)\n",
              serial_wall, async_wall, async_tail, serial_wall - async_wall);

  // Experiment 4: the same overlapped chain, now with the paged node store
  // attached — every seal also appends the block's dirty nodes to disk.
  // Walls on a time-sliced box are noisy, so the comparison is PAIRED:
  // store-less and store-attached runs alternate in one process and each
  // side keeps its best of five, which squeezes scheduler noise out of the
  // delta the <= 5% criterion is about.
  char store_dir[] = "/tmp/bpdb_commit_XXXXXX";
  double plain_wall = 0, store_wall = 0, persist_total = 0;
  double sealing_regression_pct = 0;
  std::size_t nodes_appended_total = 0;
  std::uint64_t store_file_bytes = 0;
  bool store_ok = ::mkdtemp(store_dir) != nullptr;
  if (store_ok) {
    std::unique_ptr<db::PagedNodeStore> store;
    store_ok = db::PagedNodeStore::open(store_dir, {}, store).ok();
    if (store_ok) {
      commit::CommitPipeline store_pipe(&commit_pool);
      store_pipe.set_node_store(store.get());
      constexpr int kPairedRepeats = 5;
      for (int rep = 0; rep < kPairedRepeats; ++rep) {
        double w = 0, t = 0;
        (void)run_overlap_once(&pipe, &w, &t);
        if (rep == 0 || w < plain_wall) plain_wall = w;
        const auto rode = run_overlap_once(&store_pipe, &w, &t);
        if (rep == 0 || w < store_wall) store_wall = w;
        for (const OverlapSample& s : rode) persist_total += s.persist_ms;
      }
      // The repeats re-propose the same chain, so only the first pass
      // appends new nodes (dedup after); count appends store-wide.
      nodes_appended_total = static_cast<std::size_t>(store->stats().puts);
      store_file_bytes = store->stats().file_bytes;
      sealing_regression_pct =
          plain_wall > 0 ? 100.0 * (store_wall - plain_wall) / plain_wall
                         : 0.0;
      std::printf("\npaged-store rider (paired best-of-%d): %.2f ms "
                  "overlapped wall with disk appends vs %.2f ms without "
                  "(%+.1f%%, criterion <= 5%%)\n",
                  kPairedRepeats, store_wall, plain_wall,
                  sealing_regression_pct);
      std::printf("  %zu nodes appended (%.2f ms persist riding the seals "
                  "across all repeats, %.1f KiB on disk)\n",
                  nodes_appended_total, persist_total,
                  static_cast<double>(store_file_bytes) / 1024.0);
    }
    std::filesystem::remove_all(store_dir);
  }
  if (!store_ok) std::printf("paged-store rider: store setup failed\n");
  std::printf("commitment hashing: %.2f ms total, %.2f ms hidden under "
              "execution (%.0f%%) on %u hardware threads\n",
              commit_total, commit_total - async_tail,
              commit_total > 0
                  ? 100.0 * (commit_total - async_tail) / commit_total
                  : 0.0,
              std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() < 2)
    std::printf("note: single hardware thread -- overlapped wall cannot beat "
                "inline (no parallelism); overlap evidence is the hidden/tail "
                "split above\n");

  // Copy-under-commit experiment: the finalize path must not stall.
  const CopyUnderCommit cuc = run_copy_under_commit();
  std::printf("\ncopy under in-flight commit: %zu copies completed during a "
              "%.2f ms commit\n",
              cuc.copies, cuc.commit_ms);
  std::printf("  copy latency: %.3f ms idle, %.3f ms mean / %.3f ms worst "
              "while committing (commit would have blocked each for up to "
              "%.2f ms pre-snapshot)\n",
              cuc.copy_idle_ms, cuc.copy_mean_ms, cuc.copy_worst_ms,
              cuc.commit_ms);
  std::printf("  mid-commit snapshot root agrees with committed source: %s\n",
              cuc.roots_agree ? "yes" : (cuc.copies ? "NO" : "n/a"));

  // ---- machine-readable record ----
  FILE* f = std::fopen("BENCH_commit.json", "w");
  if (f == nullptr) {
    std::printf("cannot write BENCH_commit.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"workload\": \"preset_mainnet fig9 seed=0xF19\",\n");
  std::fprintf(f, "  \"heights\": %zu,\n", kHeights);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"root_recompute\": {\n    \"per_block\": [\n");
  for (std::size_t h = 0; h < roots.size(); ++h) {
    std::fprintf(f,
                 "      {\"height\": %zu, \"txs\": %zu, \"incremental_ms\": "
                 "%.4f, \"full_rebuild_ms\": %.4f}%s\n",
                 h + 1, roots[h].txs, roots[h].incremental_ms,
                 roots[h].full_rebuild_ms, h + 1 < roots.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"incremental_total_ms\": %.4f,\n", incr_total);
  std::fprintf(f, "    \"full_rebuild_total_ms\": %.4f,\n", full_total);
  std::fprintf(f, "    \"speedup\": %.2f,\n", speedup);
  std::fprintf(f, "    \"oracle_mismatches\": %.0f\n  },\n", mismatches);
  std::fprintf(f,
               "  \"node_cache\": {\"policy\": \"clock\", \"hits\": %" PRIu64
               ", \"misses\": %" PRIu64 ", \"evictions\": %" PRIu64
               ", \"entries\": %zu, \"bytes\": %zu, \"capacity_bytes\": "
               "%zu},\n",
               cache.hits, cache.misses, cache.evictions, cache.entries,
               cache.bytes, cache.capacity);
  std::fprintf(f, "  \"overlap\": {\n    \"phases\": [\n");
  for (std::size_t h = 0; h < overlapped.size(); ++h) {
    std::fprintf(f,
                 "      {\"height\": %zu, \"txs\": %zu, \"serial_ms\": %.4f, "
                 "\"async_exec_ms\": %.4f, \"commit_ms\": %.4f}%s\n",
                 h + 1, overlapped[h].txs, serial[h].exec_ms,
                 overlapped[h].exec_ms, overlapped[h].commit_ms,
                 h + 1 < overlapped.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"serial_wall_ms\": %.4f,\n", serial_wall);
  std::fprintf(f, "    \"overlapped_wall_ms\": %.4f,\n", async_wall);
  std::fprintf(f, "    \"commit_total_ms\": %.4f,\n", commit_total);
  std::fprintf(f, "    \"commit_tail_wait_ms\": %.4f,\n", async_tail);
  std::fprintf(f, "    \"commit_hidden_ms\": %.4f,\n",
               commit_total - async_tail);
  std::fprintf(f, "    \"saved_ms\": %.4f\n  },\n",
               serial_wall - async_wall);
  std::fprintf(f, "  \"paged_store_rider\": {\n");
  std::fprintf(f, "    \"wall_ms\": %.4f,\n", store_wall);
  std::fprintf(f, "    \"storeless_wall_ms\": %.4f,\n", plain_wall);
  std::fprintf(f, "    \"sealing_regression_pct\": %.2f,\n",
               sealing_regression_pct);
  std::fprintf(f, "    \"criterion\": \"<= 5 pct\",\n");
  std::fprintf(f, "    \"persist_total_ms\": %.4f,\n", persist_total);
  std::fprintf(f, "    \"nodes_appended\": %zu,\n", nodes_appended_total);
  std::fprintf(f, "    \"file_bytes\": %" PRIu64 "\n  },\n",
               store_file_bytes);
  std::fprintf(f, "  \"copy_under_commit\": {\n");
  std::fprintf(f, "    \"commit_ms\": %.4f,\n", cuc.commit_ms);
  std::fprintf(f, "    \"copies_during_commit\": %zu,\n", cuc.copies);
  std::fprintf(f, "    \"copy_idle_ms\": %.4f,\n", cuc.copy_idle_ms);
  std::fprintf(f, "    \"copy_mean_ms\": %.4f,\n", cuc.copy_mean_ms);
  std::fprintf(f, "    \"copy_worst_ms\": %.4f,\n", cuc.copy_worst_ms);
  std::fprintf(f, "    \"roots_agree\": %s\n  }\n}\n",
               cuc.roots_agree ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_commit.json\n");
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
