// Shared utilities for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation section (§5) and prints the corresponding rows/series.
// See EXPERIMENTS.md for paper-vs-measured values.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/blockpilot.hpp"

namespace blockpilot::bench {

inline evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

/// An honest (serially built) block plus its profile — what a proposer
/// broadcasts and a validator receives.
struct HonestBlock {
  core::BlockBundle bundle;
  std::shared_ptr<state::WorldState> post_state;
};

inline HonestBlock build_honest_block(const state::WorldState& pre,
                                      const std::vector<chain::Transaction>& txs,
                                      std::uint64_t height) {
  core::SerialOptions opts;
  const core::SerialResult r =
      core::execute_serial(pre, ctx_for(height), std::span(txs), opts);
  HonestBlock out;
  out.bundle.block = core::seal_block(ctx_for(height), r.exec, r.included);
  out.bundle.profile = r.exec.profile;
  out.post_state = r.exec.post_state;
  return out;
}

/// Fixed-bucket speedup histogram (the form of Fig. 6 / Fig. 7b).
class SpeedupHistogram {
 public:
  void add(double speedup) {
    samples_.push_back(speedup);
    if (speedup > 1.0) ++accelerated_;
  }

  double average() const {
    if (samples_.empty()) return 0.0;
    double sum = 0;
    for (const double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double accelerated_fraction() const {
    return samples_.empty()
               ? 0.0
               : static_cast<double>(accelerated_) /
                     static_cast<double>(samples_.size());
  }

  /// Prints bucket counts: [0,1) [1,2) ... [7,8) [8,inf).
  void print(const char* label) const {
    std::vector<int> buckets(9, 0);
    for (const double s : samples_) {
      const int b = s >= 8.0 ? 8 : static_cast<int>(s);
      ++buckets[static_cast<std::size_t>(std::max(0, b))];
    }
    std::printf("%s histogram (n=%zu):", label, samples_.size());
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (b == 8)
        std::printf("  [8,inf): %d", buckets[b]);
      else
        std::printf("  [%zu,%zu): %d", b, b + 1, buckets[b]);
    }
    std::printf("\n");
  }

  std::size_t size() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  std::size_t accelerated_ = 0;
};

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==========================================================\n");
}

}  // namespace blockpilot::bench
