// Ablation — subgraph-serial scheduling (paper §4.3) vs per-transaction
// dependency-DAG scheduling (extension).
//
// The paper serializes whole conflict subgraphs on single threads; the DAG
// only serializes true happens-before chains, so hub-and-spoke conflict
// patterns (a hotspot contract read by many otherwise-independent
// transactions) regain parallelism.  This bench quantifies the headroom the
// simpler subgraph scheduler leaves on the table — and thereby also shows
// why the paper's approach is attractive: at mainnet-like conflict levels
// most of the gap only opens beyond ~8 threads.
#include "bench_common.hpp"

#include "sched/dag.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 20;

void run() {
  print_header("Ablation: subgraph-LPT (paper) vs dependency-DAG schedule",
               "(extension beyond the paper)");

  for (const char* preset_name : {"mainnet", "high-conflict"}) {
    workload::WorkloadConfig wc = std::string(preset_name) == "mainnet"
                                      ? workload::preset_mainnet()
                                      : workload::preset_high_conflict();
    wc.seed = 0xAB4;
    workload::WorkloadGenerator gen(wc);
    const state::WorldState genesis = gen.genesis();

    std::printf("-- %s workload --\n", preset_name);
    std::printf("%8s %18s %14s %10s\n", "threads", "subgraph-speedup",
                "dag-speedup", "headroom");
    // Collect the per-block schedules once.
    std::vector<sched::DependencyGraph> graphs;
    std::vector<sched::TxDag> dags;
    std::vector<std::uint64_t> totals;
    for (int b = 0; b < kBlocks; ++b) {
      core::SerialOptions so;
      const auto txs = gen.next_block();
      const auto serial =
          core::execute_serial(genesis, ctx_for(1), std::span(txs), so);
      graphs.push_back(sched::build_dependency_graph(
          serial.exec.profile, sched::Granularity::kAccount));
      dags.push_back(sched::build_tx_dag(serial.exec.profile,
                                         sched::Granularity::kAccount));
      totals.push_back(graphs.back().total_gas());
    }

    for (const std::size_t threads : {2u, 4u, 8u, 16u}) {
      double sub_sum = 0, dag_sum = 0;
      for (int b = 0; b < kBlocks; ++b) {
        const auto plan = sched::lpt_schedule(graphs[static_cast<std::size_t>(b)], threads);
        std::uint64_t sub_makespan = 0;
        for (const auto load : plan.load)
          sub_makespan = std::max(sub_makespan, load);
        sub_sum += vtime::speedup(totals[static_cast<std::size_t>(b)], sub_makespan);
        dag_sum += vtime::speedup(
            totals[static_cast<std::size_t>(b)],
            sched::dag_makespan(dags[static_cast<std::size_t>(b)], threads));
      }
      std::printf("%8zu %18.2f %14.2f %9.1f%%\n", threads, sub_sum / kBlocks,
                  dag_sum / kBlocks, (dag_sum / sub_sum - 1.0) * 100.0);
    }
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
