// Settle latency / throughput vs speculation depth (§5.2 overlap).
//
// Sweeps the event-driven consensus loop over speculation_depth ∈
// {0, 1, 2, 4, 8} on an identical single-proposer workload and reports the
// average virtual settle latency, round latency, makespan, and parked-
// proposal stall per depth, with the pre-refactor post-hoc settle pass
// (run_batch_reference) as the baseline row.
//
// The commitment throughput (commit_gas_per_us) is calibrated from two
// depth-0 probe runs so the per-height commitment cost c lands near
// 6× the per-height advance time `adv`: the window then still binds at
// depth 4 (c > 4·adv), which is the regime where every step of the sweep
// strictly shrinks the settle latency — the property this bench asserts
// (exit 1 on violation).  All quantities are virtual-time, so the sweep is
// deterministic for a fixed workload seed.
//
// A second sweep holds depth at 8 and raises the link's seeded drop rate
// through 20%, pricing the quorum/timeout machinery: settle latency,
// timeout count, retransmissions, and re-proposals per loss rate, with a
// liveness gate (full chain settles at every rate; exit 1 on violation).
//
// The engine section runs the same loop under every proposer engine
// (OCC-WSI, Block-STM, adaptive) and every validator engine (subgraph-LPT,
// Block-STM, adaptive), with three exit-1 gates: every run settles the
// full chain, the validator engines agree on every canonical root (the
// consensus-level face of the engine-differential matrix), and the
// adaptive proposer lands within 5% of the best fixed engine's settle
// latency.  A regime-flip pair (default vs dex-heavy workload, both under
// kAdaptive) demonstrates the per-block pick actually moving.
//
// Emits BENCH_consensus.json (machine-readable) plus a stdout table.
// `--smoke` runs only the engine section and its gates (CI budget); it
// does not rewrite BENCH_consensus.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/consensus_sim.hpp"

namespace {

using blockpilot::net::ConsensusSim;
using blockpilot::net::ConsensusSimConfig;
using blockpilot::net::ConsensusSimResult;

ConsensusSimConfig base_config() {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.proposers_per_round = 1;  // forkless: the pure depth/latency signal
  cfg.validator_nodes = 3;
  cfg.rounds = 12;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;
  cfg.workload.seed = 0xC0456ULL;
  cfg.workload.txs_per_block = 40;
  // Fast links so commitment, not gossip, dominates the settle path.
  cfg.link.base_latency_us = 1'000;
  return cfg;
}

ConsensusSimResult run_at(const ConsensusSimConfig& base, std::size_t depth,
                          std::uint64_t gas_per_us) {
  ConsensusSimConfig cfg = base;
  cfg.speculation_depth = depth;
  cfg.commit_gas_per_us = gas_per_us;
  ConsensusSimResult r = ConsensusSim(cfg).run();
  if (!r.safety_held) {
    std::printf("FATAL: safety violation in bench run: %s\n",
                r.violation.c_str());
    std::exit(1);
  }
  return r;
}

double tx_per_s(const ConsensusSimResult& r) {
  if (r.makespan_us == 0) return 0.0;
  return static_cast<double>(r.total_txs) * 1e6 /
         static_cast<double>(r.makespan_us);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const ConsensusSimConfig base = base_config();

  // --- Calibration: two depth-0 probes isolate `adv` (per-height advance
  // with free commitment) and the gas folded per height.
  const std::uint64_t kDefaultGas = base.commit_gas_per_us;
  const ConsensusSimResult probe_free =
      run_at(base, 0, 1'000'000'000);  // c ≈ 0
  const ConsensusSimResult probe_paid = run_at(base, 0, kDefaultGas);
  const std::uint64_t adv_us = probe_free.makespan_us / base.rounds;
  const std::uint64_t paid_c_us =
      (probe_paid.makespan_us - probe_free.makespan_us) / base.rounds;
  const std::uint64_t gas_per_height = paid_c_us * kDefaultGas;
  std::uint64_t cal_gas_per_us =
      gas_per_height / std::max<std::uint64_t>(1, 6 * adv_us);
  if (cal_gas_per_us == 0) cal_gas_per_us = 1;
  const std::uint64_t target_c_us = gas_per_height / cal_gas_per_us;

  std::printf("calibration: adv=%llu us/height, gas=%llu/height, "
              "commit_gas_per_us=%llu -> c=%llu us (%.2fx adv)\n",
              (unsigned long long)adv_us, (unsigned long long)gas_per_height,
              (unsigned long long)cal_gas_per_us,
              (unsigned long long)target_c_us,
              static_cast<double>(target_c_us) / static_cast<double>(adv_us));

  // --- Baseline: the old round-batch algorithm + post-hoc settle pass.
  ConsensusSimResult batch;
  if (!smoke) {
    ConsensusSimConfig batch_cfg = base;
    batch_cfg.commit_gas_per_us = cal_gas_per_us;
    batch = ConsensusSim(batch_cfg).run_batch_reference();
  }

  // --- Sweep.
  const std::size_t kDepths[] = {0, 1, 2, 4, 8};
  std::vector<ConsensusSimResult> sweep;
  if (!smoke)
    for (const std::size_t d : kDepths)
      sweep.push_back(run_at(base, d, cal_gas_per_us));

  // --- Loss sweep: quorum liveness vs message loss at depth 8.  Each run
  // layers a seeded drop rate under the same workload; the vote timeout is
  // tight enough that every lost vote round-trips through the retransmit
  // machinery, so the settle-latency delta prices the fault tolerance.
  const std::uint32_t kDropPerMille[] = {0, 10, 50, 100, 200};
  std::vector<ConsensusSimResult> loss;
  if (!smoke) {
    for (const std::uint32_t drop : kDropPerMille) {
      ConsensusSimConfig cfg = base;
      cfg.speculation_depth = 8;
      cfg.commit_gas_per_us = cal_gas_per_us;
      // Above the fault-free round latency (with margin): a deadline only
      // fires when a message was actually lost, so drop=0 must stay
      // timeout-free.
      cfg.vote_timeout_us = 150'000;
      cfg.link.faults.drop_per_mille = drop;
      cfg.link.faults.seed = 0x10577EEDULL;
      ConsensusSimResult r = ConsensusSim(cfg).run();
      if (!r.safety_held) {
        std::printf("FATAL: safety violation at drop=%u per mille: %s\n",
                    drop, r.violation.c_str());
        return 1;
      }
      loss.push_back(std::move(r));
    }
  }

  // --- Proposer-engine compare: the same consensus loop under each
  // execution engine (all virtual-time twins — the sim's internal worker
  // pool is sized for the DES engines).  The engines serialize conflicts
  // differently, so blocks legitimately differ; the gates are per-run
  // safety, full settlement, and the adaptive engine landing within 5% of
  // the best fixed engine's settle latency (cross-engine root exactness
  // lives in bench_versioned_state's regime map and the validator section
  // below).
  const blockpilot::core::ScheduleMode kEngineModes[] = {
      blockpilot::core::ScheduleMode::kVirtualTime,
      blockpilot::core::ScheduleMode::kBlockStm,
      blockpilot::core::ScheduleMode::kAdaptive};
  const char* kEngineNames[] = {"occ-wsi", "block-stm", "adaptive"};
  std::vector<ConsensusSimResult> engines;
  for (const auto mode : kEngineModes) {
    ConsensusSimConfig cfg = base;
    cfg.speculation_depth = 2;
    cfg.commit_gas_per_us = cal_gas_per_us;
    cfg.proposer_mode = mode;
    ConsensusSimResult r = ConsensusSim(cfg).run();
    if (!r.safety_held) {
      std::printf("FATAL: safety violation under %s proposer: %s\n",
                  kEngineNames[engines.size()], r.violation.c_str());
      return 1;
    }
    engines.push_back(std::move(r));
  }
  bool engines_settled = true;
  for (const auto& r : engines)
    if (r.settled_height != base.rounds) engines_settled = false;
  const double best_fixed_settle_ms =
      std::min(engines[0].avg_settle_latency_ms(),
               engines[1].avg_settle_latency_ms());
  const bool adaptive_within =
      engines[2].avg_settle_latency_ms() <= best_fixed_settle_ms * 1.05;

  // --- Validator-engine compare: OCC-WSI proposer, every validator replay
  // discipline.  The proposal stream is identical across runs, so beyond
  // settlement the gate is bit-equality of every canonical root — the
  // consensus-level face of the engine-differential matrix.
  const blockpilot::core::ValidatorEngine kValidatorEngines[] = {
      blockpilot::core::ValidatorEngine::kSubgraphLpt,
      blockpilot::core::ValidatorEngine::kBlockStm,
      blockpilot::core::ValidatorEngine::kAdaptive};
  const char* kValidatorNames[] = {"subgraph-lpt", "block-stm", "adaptive"};
  std::vector<ConsensusSimResult> vengines;
  for (const auto engine : kValidatorEngines) {
    ConsensusSimConfig cfg = base;
    cfg.speculation_depth = 2;
    cfg.commit_gas_per_us = cal_gas_per_us;
    cfg.validator_engine = engine;
    ConsensusSimResult r = ConsensusSim(cfg).run();
    if (!r.safety_held) {
      std::printf("FATAL: safety violation under %s validator: %s\n",
                  kValidatorNames[vengines.size()], r.violation.c_str());
      return 1;
    }
    vengines.push_back(std::move(r));
  }
  bool vengines_settled = true;
  bool vroots_agree = true;
  for (const auto& r : vengines) {
    if (r.settled_height != base.rounds) vengines_settled = false;
    for (std::size_t h = 0; h < r.rounds.size() && vroots_agree; ++h)
      if (r.rounds[h].canonical_root != vengines[0].rounds[h].canonical_root)
        vroots_agree = false;
  }

  // --- Regime flip: the adaptive proposer run above (default workload,
  // conflict ratio below the threshold) vs the same loop on a dex-heavy
  // workload that pushes past it.  The per-engine block counts must move.
  ConsensusSimConfig dex_cfg = base;
  dex_cfg.speculation_depth = 2;
  dex_cfg.commit_gas_per_us = cal_gas_per_us;
  dex_cfg.proposer_mode = blockpilot::core::ScheduleMode::kAdaptive;
  dex_cfg.workload.dex_fraction = 0.85;
  dex_cfg.workload.token_fraction = 0.10;
  dex_cfg.workload.contract_zipf_s = 2.2;
  const ConsensusSimResult dex = ConsensusSim(dex_cfg).run();
  if (!dex.safety_held) {
    std::printf("FATAL: safety violation in dex-heavy adaptive run: %s\n",
                dex.violation.c_str());
    return 1;
  }
  const ConsensusSimResult& adaptive_base = engines[2];
  const bool regime_flip = dex.blocks_stm > 0 && adaptive_base.blocks_occ > 0 &&
                           dex.blocks_stm > adaptive_base.blocks_stm &&
                           dex.settled_height == base.rounds;

  if (!smoke) {
    std::printf("\n%-14s %16s %16s %14s %14s %12s\n", "mode",
                "settle-lat(ms)", "round-lat(ms)", "makespan(ms)",
                "stall(ms)", "tx/s");
    std::printf("%-14s %16.2f %16.2f %14.2f %14.2f %12.0f\n", "batch-ref",
                batch.avg_settle_latency_ms(), batch.avg_round_latency_ms(),
                batch.makespan_us / 1000.0, batch.settle_stall_us / 1000.0,
                tx_per_s(batch));
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      char label[32];
      std::snprintf(label, sizeof label, "depth=%zu", kDepths[i]);
      std::printf("%-14s %16.2f %16.2f %14.2f %14.2f %12.0f\n", label,
                  sweep[i].avg_settle_latency_ms(),
                  sweep[i].avg_round_latency_ms(),
                  sweep[i].makespan_us / 1000.0,
                  sweep[i].settle_stall_us / 1000.0, tx_per_s(sweep[i]));
    }
  }

  std::printf("\n%-14s %16s %16s %14s %12s %10s %10s\n", "proposer",
              "settle-lat(ms)", "round-lat(ms)", "makespan(ms)", "tx/s",
              "occ-blks", "stm-blks");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    std::printf("%-14s %16.2f %16.2f %14.2f %12.0f %10llu %10llu\n",
                kEngineNames[i], engines[i].avg_settle_latency_ms(),
                engines[i].avg_round_latency_ms(),
                engines[i].makespan_us / 1000.0, tx_per_s(engines[i]),
                (unsigned long long)engines[i].blocks_occ,
                (unsigned long long)engines[i].blocks_stm);
  }
  std::printf("%-14s %16.2f %16.2f %14.2f %12.0f %10llu %10llu\n",
              "adaptive-dex", dex.avg_settle_latency_ms(),
              dex.avg_round_latency_ms(), dex.makespan_us / 1000.0,
              tx_per_s(dex), (unsigned long long)dex.blocks_occ,
              (unsigned long long)dex.blocks_stm);

  std::printf("\n%-14s %16s %16s %14s %12s\n", "validator",
              "settle-lat(ms)", "round-lat(ms)", "makespan(ms)", "tx/s");
  for (std::size_t i = 0; i < vengines.size(); ++i) {
    std::printf("%-14s %16.2f %16.2f %14.2f %12.0f\n", kValidatorNames[i],
                vengines[i].avg_settle_latency_ms(),
                vengines[i].avg_round_latency_ms(),
                vengines[i].makespan_us / 1000.0, tx_per_s(vengines[i]));
  }

  if (!smoke) {
    std::printf("\n%-14s %16s %12s %12s %12s %12s\n", "loss",
                "settle-lat(ms)", "timeouts", "retransmits", "reproposals",
                "dropped");
    for (std::size_t i = 0; i < loss.size(); ++i) {
      char label[32];
      std::snprintf(label, sizeof label, "drop=%.1f%%",
                    kDropPerMille[i] / 10.0);
      std::printf("%-14s %16.2f %12llu %12llu %12llu %12llu\n", label,
                  loss[i].avg_settle_latency_ms(),
                  (unsigned long long)loss[i].vote_timeouts,
                  (unsigned long long)loss[i].vote_retransmits,
                  (unsigned long long)loss[i].quorum_reproposals,
                  (unsigned long long)loss[i].messages_dropped);
    }
  }

  // Liveness gate: up to 20% loss the quorum machinery must still settle
  // the full chain, and the fault-free run must neither drop nor time out.
  bool loss_liveness = true;
  for (const auto& r : loss)
    if (r.settled_height != base.rounds || r.quorum_failures != 0)
      loss_liveness = false;
  if (!loss.empty() &&
      (loss[0].messages_dropped != 0 || loss[0].vote_timeouts != 0))
    loss_liveness = false;

  bool strictly_decreasing = true;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].avg_settle_latency_ms() >=
        sweep[i - 1].avg_settle_latency_ms())
      strictly_decreasing = false;
  }
  // Depth 0 must not beat the settle pass it re-slices, and every settled
  // root must agree across the whole sweep (same workload, same chain).
  bool roots_agree = true;
  for (const auto& r : sweep) {
    if (r.settled_height != base.rounds) roots_agree = false;
    for (std::size_t h = 0; h < r.rounds.size() && roots_agree; ++h)
      if (r.rounds[h].canonical_root != sweep[0].rounds[h].canonical_root)
        roots_agree = false;
  }

  if (smoke) {
    // Engine-section gates only; the committed BENCH_consensus.json keeps
    // its full-run data.
    if (!engines_settled || !vengines_settled) {
      std::printf("FAIL: an engine run did not settle the full chain\n");
      return 1;
    }
    if (!vroots_agree) {
      std::printf("FAIL: validator engines disagree on a canonical root\n");
      return 1;
    }
    if (!adaptive_within) {
      std::printf(
          "FAIL: adaptive settle latency %.2f ms exceeds best fixed engine "
          "%.2f ms by more than 5%%\n",
          engines[2].avg_settle_latency_ms(), best_fixed_settle_ms);
      return 1;
    }
    if (!regime_flip) {
      std::printf(
          "FAIL: regime flip not demonstrated (base occ=%llu stm=%llu, "
          "dex-heavy occ=%llu stm=%llu)\n",
          (unsigned long long)adaptive_base.blocks_occ,
          (unsigned long long)adaptive_base.blocks_stm,
          (unsigned long long)dex.blocks_occ,
          (unsigned long long)dex.blocks_stm);
      return 1;
    }
    std::printf(
        "smoke gates passed: engines settled, validator roots agree, "
        "adaptive within 5%% of best fixed, regime flip demonstrated\n");
    return 0;
  }

  FILE* f = std::fopen("BENCH_consensus.json", "w");
  if (f == nullptr) {
    std::printf("cannot write BENCH_consensus.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": \"preset_mainnet txs=%llu seed=0x%llX\",\n"
               "  \"rounds\": %llu,\n  \"validators\": %zu,\n",
               (unsigned long long)base.workload.txs_per_block,
               (unsigned long long)base.workload.seed,
               (unsigned long long)base.rounds, base.validator_nodes);
  std::fprintf(f,
               "  \"calibration\": {\"adv_us\": %llu, \"gas_per_height\": "
               "%llu, \"commit_gas_per_us\": %llu, \"commit_cost_us\": "
               "%llu},\n",
               (unsigned long long)adv_us, (unsigned long long)gas_per_height,
               (unsigned long long)cal_gas_per_us,
               (unsigned long long)target_c_us);
  std::fprintf(f,
               "  \"batch_reference\": {\"settle_latency_ms\": %.4f, "
               "\"round_latency_ms\": %.4f, \"makespan_ms\": %.4f, "
               "\"throughput_tx_s\": %.1f},\n",
               batch.avg_settle_latency_ms(), batch.avg_round_latency_ms(),
               batch.makespan_us / 1000.0, tx_per_s(batch));
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    std::fprintf(f,
                 "    {\"depth\": %zu, \"settle_latency_ms\": %.4f, "
                 "\"round_latency_ms\": %.4f, \"makespan_ms\": %.4f, "
                 "\"stall_ms\": %.4f, \"throughput_tx_s\": %.1f, "
                 "\"speculative_votes\": %llu, \"seeds_adopted\": %llu}%s\n",
                 kDepths[i], r.avg_settle_latency_ms(),
                 r.avg_round_latency_ms(), r.makespan_us / 1000.0,
                 r.settle_stall_us / 1000.0, tx_per_s(r),
                 (unsigned long long)r.speculative_votes,
                 (unsigned long long)r.seeds_adopted,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"engine_compare\": [\n");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const auto& r = engines[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"depth\": 2, "
                 "\"settle_latency_ms\": %.4f, \"round_latency_ms\": %.4f, "
                 "\"makespan_ms\": %.4f, \"throughput_tx_s\": %.1f, "
                 "\"settled_height\": %llu, \"blocks_occ\": %llu, "
                 "\"blocks_stm\": %llu}%s\n",
                 kEngineNames[i], r.avg_settle_latency_ms(),
                 r.avg_round_latency_ms(), r.makespan_us / 1000.0,
                 tx_per_s(r), (unsigned long long)r.settled_height,
                 (unsigned long long)r.blocks_occ,
                 (unsigned long long)r.blocks_stm,
                 i + 1 < engines.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"engine_compare_settled\": %s,\n",
               engines_settled ? "true" : "false");
  std::fprintf(f, "  \"validator_engine_compare\": [\n");
  for (std::size_t i = 0; i < vengines.size(); ++i) {
    const auto& r = vengines[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"depth\": 2, "
                 "\"settle_latency_ms\": %.4f, \"round_latency_ms\": %.4f, "
                 "\"makespan_ms\": %.4f, \"throughput_tx_s\": %.1f, "
                 "\"settled_height\": %llu}%s\n",
                 kValidatorNames[i], r.avg_settle_latency_ms(),
                 r.avg_round_latency_ms(), r.makespan_us / 1000.0,
                 tx_per_s(r), (unsigned long long)r.settled_height,
                 i + 1 < vengines.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"validator_engines_settled\": %s,\n",
               vengines_settled ? "true" : "false");
  std::fprintf(f, "  \"validator_roots_agree\": %s,\n",
               vroots_agree ? "true" : "false");
  std::fprintf(f,
               "  \"adaptive_gate\": {\"adaptive_settle_ms\": %.4f, "
               "\"best_fixed_settle_ms\": %.4f, \"within_5pct\": %s},\n",
               engines[2].avg_settle_latency_ms(), best_fixed_settle_ms,
               adaptive_within ? "true" : "false");
  std::fprintf(f,
               "  \"regime_flip\": {\"base_blocks_occ\": %llu, "
               "\"base_blocks_stm\": %llu, \"dex_blocks_occ\": %llu, "
               "\"dex_blocks_stm\": %llu, \"dex_settle_latency_ms\": %.4f, "
               "\"flipped\": %s},\n",
               (unsigned long long)adaptive_base.blocks_occ,
               (unsigned long long)adaptive_base.blocks_stm,
               (unsigned long long)dex.blocks_occ,
               (unsigned long long)dex.blocks_stm,
               dex.avg_settle_latency_ms(), regime_flip ? "true" : "false");
  std::fprintf(f, "  \"loss_sweep\": [\n");
  for (std::size_t i = 0; i < loss.size(); ++i) {
    const auto& r = loss[i];
    std::fprintf(f,
                 "    {\"drop_per_mille\": %u, \"settle_latency_ms\": %.4f, "
                 "\"round_latency_ms\": %.4f, \"makespan_ms\": %.4f, "
                 "\"vote_timeouts\": %llu, \"vote_retransmits\": %llu, "
                 "\"quorum_reproposals\": %llu, \"messages_dropped\": "
                 "%llu}%s\n",
                 kDropPerMille[i], r.avg_settle_latency_ms(),
                 r.avg_round_latency_ms(), r.makespan_us / 1000.0,
                 (unsigned long long)r.vote_timeouts,
                 (unsigned long long)r.vote_retransmits,
                 (unsigned long long)r.quorum_reproposals,
                 (unsigned long long)r.messages_dropped,
                 i + 1 < loss.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"loss_sweep_liveness_held\": %s,\n",
               loss_liveness ? "true" : "false");
  std::fprintf(f, "  \"roots_agree_across_depths\": %s,\n",
               roots_agree ? "true" : "false");
  std::fprintf(f, "  \"settle_latency_strictly_decreasing\": %s\n",
               strictly_decreasing ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_consensus.json\n");

  if (!roots_agree) {
    std::printf("FAIL: canonical roots diverge across depths\n");
    return 1;
  }
  if (!strictly_decreasing) {
    std::printf("FAIL: settle latency not strictly decreasing with depth\n");
    return 1;
  }
  if (!loss_liveness) {
    std::printf("FAIL: quorum liveness lost within the 20%% loss sweep\n");
    return 1;
  }
  if (!engines_settled || !vengines_settled) {
    std::printf("FAIL: an engine-compare run did not settle the full chain\n");
    return 1;
  }
  if (!vroots_agree) {
    std::printf("FAIL: validator engines disagree on a canonical root\n");
    return 1;
  }
  if (!adaptive_within) {
    std::printf(
        "FAIL: adaptive settle latency %.2f ms exceeds best fixed engine "
        "%.2f ms by more than 5%%\n",
        engines[2].avg_settle_latency_ms(), best_fixed_settle_ms);
    return 1;
  }
  if (!regime_flip) {
    std::printf("FAIL: adaptive regime flip not demonstrated\n");
    return 1;
  }
  std::printf(
      "PASS: settle latency strictly decreasing with depth; quorum "
      "liveness held through %.0f%% loss; validator engines root-identical; "
      "adaptive within 5%% of best fixed engine\n",
      kDropPerMille[std::size(kDropPerMille) - 1] / 10.0);
  return 0;
}
