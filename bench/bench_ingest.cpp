// Live-ingestion steady state: NodeDriver under the traffic firehose.
//
// Drives the full admission front -> proposer -> commit pipeline loop with
// host-thread workers across the four burst profiles and reports, per
// profile:
//   * steady-state committed throughput (tx/s, wall clock),
//   * pool occupancy over time (block-boundary samples, downsampled),
//   * admission-to-settle latency (p50/p90/p99/max),
//   * admission outcome counters (accepted/replaced/evicted/rejections).
//
// --smoke runs a shortened sweep and exit(1)s if any run violates the
// ingestion invariants: pool conservation, zero duplicate (sender, nonce)
// commits, a non-starved proposer (strictly bounded empty-block fraction),
// and a populated latency distribution.
//
// Emits BENCH_ingest.json (machine-readable) plus a stdout table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/node_driver.hpp"

namespace {

using blockpilot::core::NodeDriver;
using blockpilot::core::NodeDriverConfig;
using blockpilot::core::NodeDriverResult;
namespace workload = blockpilot::workload;

std::vector<workload::TrafficProfile> profiles() {
  return {workload::traffic_steady(), workload::traffic_bursty(),
          workload::traffic_nonce_storm(), workload::traffic_fee_frenzy()};
}

// Two regimes per profile.  Uncongested: service capacity (96 tx/block)
// exceeds the arrival rate, so the pool drains every interval and latency
// is pure pipeline depth.  Overload: arrivals outrun a 48-tx block against
// a 512-slot pool, so occupancy pins at the cap and the
// eviction/re-submission machinery carries the steady state — the regime
// the 500-block soak's liveness result is about.
NodeDriverConfig config_for(const workload::TrafficProfile& profile,
                            bool smoke, bool overload) {
  NodeDriverConfig cfg;
  cfg.profile = profile;
  cfg.seed = 0xF12E'0BEEULL;
  cfg.proposer.mode = blockpilot::core::ScheduleMode::kHostThreads;
  cfg.proposer.threads = 4;
  cfg.proposer.max_txs = overload ? 48 : 96;
  cfg.pool.max_txs = overload ? 512 : 2048;
  cfg.pool.max_bytes = cfg.pool.max_txs * 256;
  cfg.pool.enforce_nonce_order = true;
  cfg.pool.replace_bump_percent = profile.replace_bump_percent;
  cfg.blocks = smoke ? 64 : (overload ? 128 : 256);
  cfg.ticks_per_block = 2;
  cfg.speculation_depth = 2;
  return cfg;
}

/// Downsample the per-block occupancy series to at most `points` samples so
/// the JSON stays readable at any block count.
std::vector<std::size_t> downsample(const std::vector<std::size_t>& series,
                                    std::size_t points) {
  if (series.size() <= points) return series;
  std::vector<std::size_t> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i)
    out.push_back(series[i * (series.size() - 1) / (points - 1)]);
  return out;
}

struct ProfileRow {
  std::string name;
  NodeDriverResult r;
  std::vector<std::size_t> occupancy;
};

bool gates_hold(const ProfileRow& row, std::string& why) {
  const NodeDriverResult& r = row.r;
  if (!r.conserved) {
    why = row.name + ": pool conservation violated";
    return false;
  }
  if (r.duplicate_commits != 0) {
    why = row.name + ": duplicate (sender, nonce) commit";
    return false;
  }
  if (r.txs_committed == 0) {
    why = row.name + ": nothing committed";
    return false;
  }
  // Host-thread scheduling jitters block composition, so the bound is
  // looser than the deterministic soak's; a starved proposer still trips it
  // (the pre-backpressure stranding bug emptied >80% of blocks).
  if (r.empty_blocks * 4 > r.blocks) {
    why = row.name + ": >25% empty blocks (" +
          std::to_string(r.empty_blocks) + "/" + std::to_string(r.blocks) +
          ")";
    return false;
  }
  if (r.admit_to_settle.samples == 0) {
    why = row.name + ": no admission-to-settle samples";
    return false;
  }
  return true;
}

void emit_rows(FILE* f, const char* key, const std::vector<ProfileRow>& sweep,
               bool trailing_comma) {
  std::fprintf(f, "  \"%s\": [\n", key);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ProfileRow& row = sweep[i];
    const NodeDriverResult& r = row.r;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"blocks\": %llu, \"txs_committed\": %llu, "
        "\"tx_per_s\": %.1f, \"empty_blocks\": %llu, \"aborts\": %llu, "
        "\"not_ready\": %llu,\n",
        row.name.c_str(), static_cast<unsigned long long>(r.blocks),
        static_cast<unsigned long long>(r.txs_committed), r.tx_per_s,
        static_cast<unsigned long long>(r.empty_blocks),
        static_cast<unsigned long long>(r.aborts),
        static_cast<unsigned long long>(r.not_ready));
    std::fprintf(
        f,
        "     \"admit_to_settle_us\": {\"p50\": %.1f, \"p90\": %.1f, "
        "\"p99\": %.1f, \"max\": %.1f, \"samples\": %zu},\n",
        r.admit_to_settle.p50_us, r.admit_to_settle.p90_us,
        r.admit_to_settle.p99_us, r.admit_to_settle.max_us,
        r.admit_to_settle.samples);
    std::fprintf(
        f,
        "     \"pool\": {\"accepted\": %llu, \"replaced\": %llu, "
        "\"evicted\": %llu, \"stale_dropped\": %llu, \"underpriced\": %llu, "
        "\"pool_full\": %llu, \"nonce_too_low\": %llu, \"duplicate\": "
        "%llu},\n",
        static_cast<unsigned long long>(r.pool_stats.accepted),
        static_cast<unsigned long long>(r.pool_stats.replaced),
        static_cast<unsigned long long>(r.pool_stats.evicted),
        static_cast<unsigned long long>(r.pool_stats.stale_dropped),
        static_cast<unsigned long long>(r.pool_stats.rejected_underpriced),
        static_cast<unsigned long long>(r.pool_stats.rejected_pool_full),
        static_cast<unsigned long long>(r.pool_stats.rejected_nonce_too_low),
        static_cast<unsigned long long>(r.pool_stats.rejected_duplicate));
    std::fprintf(f, "     \"occupancy\": [");
    for (std::size_t j = 0; j < row.occupancy.size(); ++j)
      std::fprintf(f, "%s%zu", j ? ", " : "", row.occupancy[j]);
    std::fprintf(f,
                 "],\n     \"conserved\": %s, \"duplicate_commits\": "
                 "%llu}%s\n",
                 r.conserved ? "true" : "false",
                 static_cast<unsigned long long>(r.duplicate_commits),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::vector<ProfileRow> rows;          // uncongested sweep
  std::vector<ProfileRow> overload_rows;
  std::printf("%-14s %-12s %10s %9s %9s %10s %10s %10s\n", "profile",
              "regime", "tx/s", "blocks", "empty", "p50_us", "p99_us",
              "evicted");
  for (const bool overload : {false, true}) {
    for (const workload::TrafficProfile& p : profiles()) {
      const NodeDriverConfig cfg = config_for(p, smoke, overload);
      ProfileRow row;
      row.name = p.name;
      row.r = NodeDriver(cfg).run();
      row.occupancy = downsample(row.r.occupancy, 32);
      std::printf("%-14s %-12s %10.1f %9llu %9llu %10.1f %10.1f %10llu\n",
                  row.name.c_str(), overload ? "overload" : "uncongested",
                  row.r.tx_per_s,
                  static_cast<unsigned long long>(row.r.blocks),
                  static_cast<unsigned long long>(row.r.empty_blocks),
                  row.r.admit_to_settle.p50_us, row.r.admit_to_settle.p99_us,
                  static_cast<unsigned long long>(row.r.pool_stats.evicted));
      (overload ? overload_rows : rows).push_back(std::move(row));
    }
  }

  FILE* f = std::fopen("BENCH_ingest.json", "w");
  if (!f) {
    std::printf("cannot write BENCH_ingest.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  emit_rows(f, "uncongested", rows, /*trailing_comma=*/true);
  emit_rows(f, "overload", overload_rows, /*trailing_comma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_ingest.json\n");

  if (smoke) {
    for (const std::vector<ProfileRow>* sweep : {&rows, &overload_rows}) {
      for (const ProfileRow& row : *sweep) {
        std::string why;
        if (!gates_hold(row, why)) {
          std::printf("SMOKE GATE FAILED: %s\n", why.c_str());
          return 1;
        }
      }
    }
    std::printf("smoke gates passed (%zu runs)\n",
                rows.size() + overload_rows.size());
  }
  return 0;
}
