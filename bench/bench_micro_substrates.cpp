// Micro-benchmarks of the substrate layers (google-benchmark).
//
// Not a paper figure — these quantify the building blocks so regressions
// in the substrate (hashing, trie, EVM dispatch) are visible independently
// of the concurrency-control results.
#include <benchmark/benchmark.h>

#include "core/blockpilot.hpp"
#include "evm/assembler.hpp"
#include "workload/contracts.hpp"

namespace blockpilot {
namespace {

void BM_Keccak32(benchmark::State& state) {
  std::vector<std::uint8_t> data(32, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256(std::span(data)));
  }
}
BENCHMARK(BM_Keccak32);

void BM_Keccak1K(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256(std::span(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Keccak1K);

void BM_U256Mul(benchmark::State& state) {
  U256 a = U256::from_hex("0x123456789abcdef0fedcba987654321011223344556677");
  const U256 b = U256::from_hex("0xdeadbeefcafebabe0123456789abcdef");
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_U256Mul);

void BM_U256Div(benchmark::State& state) {
  const U256 a = ~U256{};
  const U256 b = U256::from_hex("0x123456789abcdef0fedcba9876543210aabbccdd");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a / b);
  }
}
BENCHMARK(BM_U256Div);

void BM_RlpEncodeTx(benchmark::State& state) {
  chain::Transaction tx;
  tx.from = Address::from_id(1);
  tx.to = Address::from_id(2);
  tx.nonce = 42;
  tx.gas_price = U256{100};
  tx.gas_limit = 21000;
  tx.value = U256{123456789};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.rlp_encode());
  }
}
BENCHMARK(BM_RlpEncodeTx);

void BM_TrieInsertAndRoot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    trie::MerklePatriciaTrie t;
    for (std::size_t i = 0; i < n; ++i) {
      const U256 key{i * 2654435761u};
      const auto kb = key.to_be_bytes();
      t.put(std::span(kb), std::span(kb).subspan(0, 8));
    }
    benchmark::DoNotOptimize(t.root_hash());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TrieInsertAndRoot)->Arg(16)->Arg(128)->Arg(1024);

void BM_EvmNativeTransfer(benchmark::State& state) {
  state::WorldState ws;
  const Address alice = Address::from_id(1), bob = Address::from_id(2);
  ws.set(state::StateKey::balance(alice), U256{1} .shl(96));
  evm::BlockContext block;
  block.coinbase = Address::from_id(0xFEE);
  chain::Transaction tx;
  tx.from = alice;
  tx.to = bob;
  tx.value = U256{1};
  tx.gas_limit = 25'000;
  tx.gas_price = U256{1};
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    tx.nonce = nonce++;
    const state::WorldStateView view(ws);
    state::ExecBuffer buffer(view);
    const auto r = evm::execute_transaction(buffer, block, tx);
    benchmark::DoNotOptimize(r);
    for (const auto& [key, value] : buffer.write_set()) ws.set(key, value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvmNativeTransfer);

void BM_EvmTokenTransfer(benchmark::State& state) {
  state::WorldState ws;
  const Address alice = Address::from_id(1), bob = Address::from_id(2);
  const Address token = Address::from_id(0x70);
  ws.set(state::StateKey::balance(alice), U256{1}.shl(96));
  ws.set_code(token, workload::token_contract());
  ws.set(state::StateKey::storage(token, alice.to_u256()), U256{1}.shl(96));
  evm::BlockContext block;
  block.coinbase = Address::from_id(0xFEE);
  chain::Transaction tx;
  tx.from = alice;
  tx.to = token;
  tx.data = workload::token_transfer_calldata(bob, U256{1});
  tx.gas_limit = 120'000;
  tx.gas_price = U256{1};
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    tx.nonce = nonce++;
    const state::WorldStateView view(ws);
    state::ExecBuffer buffer(view);
    const auto r = evm::execute_transaction(buffer, block, tx);
    benchmark::DoNotOptimize(r);
    for (const auto& [key, value] : buffer.write_set()) ws.set(key, value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvmTokenTransfer);

void BM_DependencyGraphBuild(benchmark::State& state) {
  workload::WorkloadConfig wc = workload::preset_mainnet();
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();
  evm::BlockContext ctx;
  ctx.coinbase = Address::from_id(0xFEE);
  const auto txs = gen.next_batch(132);
  const auto serial = core::execute_serial(genesis, ctx, std::span(txs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::build_dependency_graph(
        serial.exec.profile, sched::Granularity::kAccount));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 132);
}
BENCHMARK(BM_DependencyGraphBuild);

}  // namespace
}  // namespace blockpilot

BENCHMARK_MAIN();
