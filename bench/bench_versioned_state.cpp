// Microbenchmark: sharded lock-minimal VersionedState vs the pre-change
// single-lock store (one shared_mutex guarding one unordered_map).
//
// Phases:
//  1. snapshot-read throughput at 1/2/4/8/16 executor threads, both stores
//     (the OCC-WSI hot path: executor threads reading a frozen snapshot);
//  2. reserve-table validation scans: latest_version under the global lock
//     vs the stamp-table newer_than fast path;
//  3. reads racing one committer (the proposer steady state);
//  4. the Fig. 6 proposer curve (virtual-time mode, wall-clock per block)
//     against the pre-change numbers measured on this host;
//  5. differential gate: virtual-time proposer blocks at 1..16 threads must
//     be bit-identical (state root, tx root = block order, abort count) to
//     the pre-change implementation's captured output;
//  6. engine regime map: OCC-WSI vs Block-STM virtual speedup at 8 threads
//     over the workload's largest-subgraph ratio, with cross-engine
//     exactness flags (OCC serializable; Block-STM bit-identical to the
//     serial pop-order oracle) gated in --smoke.
//
// Usage:
//   bench_versioned_state            # full run, prints JSON to stdout
//   bench_versioned_state --smoke    # CI perf-smoke: small sizes, exits
//                                    # non-zero on regression sentinel or
//                                    # differential mismatch
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <shared_mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "state/versioned_state.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::bench {
namespace {

using state::ReadCache;
using state::StateKey;
using state::VersionedState;
using state::WorldState;

// ---------------------------------------------------------------------------
// Pre-change baseline: the exact store this PR replaced.  Kept here (not in
// src/) so the comparison survives future refactors of the real store.

class SingleLockStore {
 public:
  explicit SingleLockStore(const WorldState& base) noexcept : base_(base) {}

  U256 read_at(const StateKey& key, std::uint64_t snapshot_version) const {
    {
      std::shared_lock lk(mu_);
      const auto it = versions_.find(key);
      if (it != versions_.end()) {
        const auto& chain = it->second;
        for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
          if (rit->first <= snapshot_version) return rit->second;
        }
      }
    }
    return base_.get(key);
  }

  std::uint64_t latest_version(const StateKey& key) const {
    std::shared_lock lk(mu_);
    const auto it = versions_.find(key);
    if (it == versions_.end() || it->second.empty()) return 0;
    return it->second.back().first;
  }

  bool newer_than(const StateKey& key, std::uint64_t snapshot) const {
    return latest_version(key) > snapshot;
  }

  void commit(const std::vector<std::pair<StateKey, U256>>& write_set,
              std::uint64_t version) {
    std::unique_lock lk(mu_);
    for (const auto& [key, value] : write_set) {
      versions_[key].emplace_back(version, value);
    }
    committed_version_ = version;
  }

  std::uint64_t committed_version() const {
    std::shared_lock lk(mu_);
    return committed_version_;
  }

 private:
  const WorldState& base_;
  mutable std::shared_mutex mu_;
  std::unordered_map<StateKey, std::vector<std::pair<std::uint64_t, U256>>>
      versions_;
  std::uint64_t committed_version_ = 0;
};

// ---------------------------------------------------------------------------
// Workload: a universe of keys, a fraction of which carry version chains
// (recently written this block), the rest served from base state — the mix
// an executor thread sees mid-block.

struct Universe {
  std::vector<StateKey> keys;  // all probe-able keys
  WorldState base;
  std::uint64_t committed = 0;
  std::vector<std::vector<std::pair<StateKey, U256>>> commits;  // per version
};

Universe make_universe(std::size_t accounts, std::size_t slots_per,
                       std::size_t versions, std::size_t writes_per_version) {
  Universe u;
  Xoshiro256 rng(0xBEEF);
  for (std::size_t a = 0; a < accounts; ++a) {
    const Address addr = Address::from_id(a + 1);
    u.base.set(StateKey::balance(addr), U256{1'000'000});
    u.keys.push_back(StateKey::balance(addr));
    for (std::size_t s = 0; s < slots_per; ++s) {
      const StateKey k = StateKey::storage(addr, U256{s});
      u.base.set(k, U256{a * 100 + s});
      u.keys.push_back(k);
    }
  }
  // Version chains concentrate on a hot subset (zipf-ish: low indices).
  // Keys must be unique within one write set: a committed version touches
  // each key at most once (chain versions are strictly increasing).
  for (std::size_t v = 1; v <= versions; ++v) {
    std::vector<std::pair<StateKey, U256>> ws;
    std::unordered_map<StateKey, bool> seen;
    while (ws.size() < writes_per_version) {
      const std::size_t hot = rng.below(std::max<std::size_t>(
          1, u.keys.size() / 8));  // hottest 12.5% of keys
      if (!seen.try_emplace(u.keys[hot], true).second) continue;
      ws.emplace_back(u.keys[hot], U256{v * 1000 + ws.size()});
    }
    u.commits.push_back(std::move(ws));
  }
  u.committed = versions;
  return u;
}

template <typename Store>
void commit_all(Store& store, const Universe& u) {
  for (std::size_t v = 0; v < u.commits.size(); ++v)
    store.commit(u.commits[v], v + 1);
}

/// Aggregate snapshot-read throughput: `threads` readers each issue `ops`
/// reads of zipf-popular universe keys at the committed snapshot — the
/// executor hot path.  For the sharded store this goes through the
/// per-thread ReadCache exactly as the reworked proposer does (SnapshotView
/// carries one per executor thread); the single-lock baseline reads the way
/// the pre-change proposer did (raw locked lookup, no memoization layer —
/// none existed).  Returns Mops/s.
template <typename Store>
double read_throughput(const Store& store, const Universe& u,
                       const ZipfSampler& zipf, std::size_t threads,
                       std::size_t ops) {
  std::atomic<bool> go{false};
  std::atomic<std::size_t> ready{0};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::jthread> readers;
  const std::uint64_t snap = store.committed_version();
  for (std::size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      // Sample the key sequence up front so the timed region measures the
      // store, not the zipf sampler's inverse-CDF binary search.
      Xoshiro256 rng(0x5EED + t);
      std::vector<std::uint32_t> idx(ops);
      for (auto& x : idx) x = static_cast<std::uint32_t>(zipf(rng));
      ReadCache cache;
      // Steady-state warm-up: one untimed pass brings the store's buckets
      // and the per-thread ReadCache to their mid-block state for both
      // store kinds before the clock starts.
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(ops, 10'000); ++i) {
        const StateKey& key = u.keys[idx[i]];
        if constexpr (std::is_same_v<Store, VersionedState>) {
          acc += store.read_at(key, snap, cache).low64();
        } else {
          acc += store.read_at(key, snap).low64();
        }
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < ops; ++i) {
        const StateKey& key = u.keys[idx[i]];
        if constexpr (std::is_same_v<Store, VersionedState>) {
          acc += store.read_at(key, snap, cache).low64();
        } else {
          acc += store.read_at(key, snap).low64();
        }
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  readers.clear();  // join
  const double ms = sw.elapsed_ms();
  if (sink.load() == 0) std::printf("# impossible: zero sink\n");
  return static_cast<double>(threads * ops) / (ms * 1e3);  // Mops/s
}

/// Executor hot-path throughput: the per-key sequence an OCC-WSI executor
/// actually performs — one snapshot read when the transaction executes plus
/// one reserve-table check (`newer_than`) when its read set is validated.
/// Sharded store: cached read + lock-free stamp check.  Single-lock store:
/// two locked lookups (exactly the pre-change proposer).  Returns M key-ops/s
/// (one read+validate pair = one op).
template <typename Store>
double hot_path_throughput(const Store& store, const Universe& u,
                           const ZipfSampler& zipf, std::size_t threads,
                           std::size_t ops) {
  std::atomic<bool> go{false};
  std::atomic<std::size_t> ready{0};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::jthread> workers;
  const std::uint64_t snap = store.committed_version();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0xB0DE + t);
      std::vector<std::uint32_t> idx(ops);
      for (auto& x : idx) x = static_cast<std::uint32_t>(zipf(rng));
      ReadCache cache;
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(ops, 10'000); ++i) {
        const StateKey& key = u.keys[idx[i]];
        if constexpr (std::is_same_v<Store, VersionedState>) {
          acc += store.read_at(key, snap, cache).low64();
        } else {
          acc += store.read_at(key, snap).low64();
        }
        acc += store.newer_than(key, snap) ? 1 : 0;
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < ops; ++i) {
        const StateKey& key = u.keys[idx[i]];
        if constexpr (std::is_same_v<Store, VersionedState>) {
          acc += store.read_at(key, snap, cache).low64();
        } else {
          acc += store.read_at(key, snap).low64();
        }
        acc += store.newer_than(key, snap) ? 1 : 0;
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  workers.clear();  // join
  const double ms = sw.elapsed_ms();
  if (sink.load() == 0) std::printf("# impossible: zero sink\n");
  return static_cast<double>(threads * ops) / (ms * 1e3);
}

/// Validation-scan throughput: WSI read-set checks (`newer_than`) against
/// clean (unwritten) keys — the common validate-pass case.  Returns Mops/s.
template <typename Store>
double validate_throughput(const Store& store, const Universe& u,
                           std::size_t threads, std::size_t ops) {
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> stale_count{0};
  std::vector<std::jthread> scanners;
  const std::uint64_t snap = store.committed_version();  // nothing is newer
  for (std::size_t t = 0; t < threads; ++t) {
    scanners.emplace_back([&, t] {
      Xoshiro256 rng(0xA11E + t);
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t stale = 0;
      for (std::size_t i = 0; i < ops; ++i) {
        const StateKey& key = u.keys[rng.below(u.keys.size())];
        stale += store.newer_than(key, snap) ? 1 : 0;
      }
      stale_count.fetch_add(stale, std::memory_order_relaxed);
    });
  }
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  scanners.clear();
  const double ms = sw.elapsed_ms();
  if (stale_count.load() != 0) std::printf("# impossible: stale on snapshot\n");
  return static_cast<double>(threads * ops) / (ms * 1e3);
}

/// Readers racing one continuously-active committer — the proposer steady
/// state (in OCC-WSI the commit section is always live while executor
/// threads read their snapshots).  Returns aggregate reader Mops/s.  This is
/// where the single lock hurts most: every commit takes the one exclusive
/// lock and stalls all readers (catastrophically so if the writer is
/// preempted while holding it), while the sharded store pins one stripe at a
/// time and stamp-guided readers skip locking entirely.
template <typename Store>
double mixed_throughput(Store& store, const Universe& u,
                        const ZipfSampler& zipf, std::size_t threads,
                        std::size_t ops,
                        const std::vector<std::vector<std::pair<StateKey, U256>>>&
                            extra_commits) {
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::atomic<std::size_t> ready{0};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::jthread> readers;
  for (std::size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(0xFACE + t);
      std::vector<std::uint32_t> idx(ops);
      for (auto& x : idx) x = static_cast<std::uint32_t>(zipf(rng));
      ReadCache cache;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < ops; ++i) {
        const std::uint64_t snap = store.committed_version();
        const StateKey& key = u.keys[idx[i]];
        if constexpr (std::is_same_v<Store, VersionedState>) {
          acc += store.read_at(key, snap, cache).low64();
        } else {
          acc += store.read_at(key, snap).low64();
        }
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }
  std::jthread committer([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    std::uint64_t v = store.committed_version();
    std::size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      store.commit(extra_commits[i], ++v);
      i = (i + 1) % extra_commits.size();
    }
  });
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  readers.clear();  // join readers
  const double ms = sw.elapsed_ms();
  done.store(true, std::memory_order_release);
  return static_cast<double>(threads * ops) / (ms * 1e3);
}

// ---------------------------------------------------------------------------
// Differential gate: reference proposer output on this workload
// (preset_mainnet, seed 0xD1FF, 4 blocks).  Virtual-time mode is
// deterministic, so any divergence in values, abort decisions, or commit
// order shows up here as a root/abort mismatch.  Last recaptured
// (--capture-differential) after the txpool admission-front rework: the
// push_back() fix that preserves a retry's admission seq legitimately
// reordered equal-price retries (state roots were unchanged throughout).

struct ExpectedBlock {
  const char* state_root;
  const char* tx_root;
  std::uint64_t aborts;
};

constexpr const char* kRoot0 =
    "0xe0fee82415bc97fec60ee3a88d74f2a17c6b786f14a3163b26584bfa658cebe8";
constexpr const char* kRoot1 =
    "0xf704b83a14e2337da79fc51941444b1a0c92c3621c2782c56867154454880f55";
constexpr const char* kRoot2 =
    "0x39e31f289bf113ec6f9d81a080fd8a6d4317a6337803efd858637d4f6a7cfb02";
constexpr const char* kRoot3 =
    "0xf5091aecee9e820452e0ea5645e03706fb3a2e1cf151f84962b0c11cfe476e6d";

struct ExpectedRun {
  std::size_t threads;
  ExpectedBlock blocks[4];
};

constexpr ExpectedRun kExpected[] = {
    {1,
     {{kRoot0, "0xd41cb711bbab83b6f351eb742e77565f6a0adee88b51912ed7a0a941039f58cc", 0},
      {kRoot1, "0x842eeb3259a2217334cb470958bd9fe5436041c74b0defa1effaf4f0df531c6b", 0},
      {kRoot2, "0x6a1a789b0d5bb4416440bf24ad106afb8f7caad5ff7bb30c36c002e1e0915ac0", 0},
      {kRoot3, "0x4ccd9ef0f499fea30093047c546af138e379aee6a81b67c78988eafea09a14e6", 0}}},
    {2,
     {{kRoot0, "0xcdcdee6a00176c15ab193e6b8b66535876259dfd44a02f28c402defa5bb775cf", 18},
      {kRoot1, "0xcdf79abfa8e1824f179ce2b1249ddf71fb12911cc51c21945e267d1236153966", 2},
      {kRoot2, "0xed1983059d049eeeabf9ae2ac4d2cae351da30984cdf362037567ed11a46405c", 8},
      {kRoot3, "0xdf7d05b452d703be5ac2ef05013c44391a3e20b74c470a36f0273f8c8758df09", 12}}},
    {4,
     {{kRoot0, "0xd91f99762ae3937dbdd58cbaeab40023f71d92cf02bb59cf9740084cb09c1f68", 60},
      {kRoot1, "0x5330168ee6801b71805c7484ac410e7b52e43e86115e6bbb38d302b40c0880b9", 17},
      {kRoot2, "0x98fc85ac878b5eee7b1cc37ed74352321e07bd1ff37a96f412ffb7b958a585bc", 21},
      {kRoot3, "0x4c3a542026fbc76e282886703a84fb212938ce3aa6acab4e108773e4d6f610a6", 45}}},
    {8,
     {{kRoot0, "0xc08473ad0a43c9f240051f476bd3df4d28965dc1c15f0d5ca2b9ec3b3c281196", 183},
      {kRoot1, "0x30c79648561d76a9caa66afe1b9861fa462676bfa415cf0548bcd7997cf14725", 44},
      {kRoot2, "0xdf78d9b27e72216ddb01b0bf09f1c26df88de60412cb7403978839aaf88b2ae1", 80},
      {kRoot3, "0x66c6297e76fce8e817d3ef5889981c50af72ac9a7c49f05c5bce5141dfd74375", 126}}},
    {16,
     {{kRoot0, "0x68c45379b3cba11d45c82d963608a3b8a3cea7b6eefde880380c5857b76f5a5b", 405},
      {kRoot1, "0xaffc6fc260ce511def2a85d8443068e736b3a514916bfafa894c812c74b4e176", 88},
      {kRoot2, "0x4871a8b2e012621cb83a93bd272b60682958067c9cc83c5724bac85ab6b8a469", 164},
      {kRoot3, "0x4826e01dcb9dfcff0e9a314a9261e46146b1ad870676fcfa311963fe5487d002", 254}}},
};

// Re-emits the kExpected table from the CURRENT implementation
// (--capture-differential).  Run after an intentional behavior change —
// e.g. a pool ordering fix that legitimately alters retry order and block
// composition — and paste the output over the constants above.
void capture_differential() {
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 0xD1FF;
    workload::WorkloadGenerator gen(wc);
    const WorldState genesis = gen.genesis();
    ThreadPool workers(1);
    std::printf("    {%zu,\n", threads);
    for (int b = 0; b < 4; ++b) {
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::ProposerConfig cfg;
      cfg.threads = threads;
      core::OccWsiProposer proposer(cfg);
      core::ProposedBlock blk = proposer.propose(
          genesis, ctx_for(static_cast<std::uint64_t>(b) + 1), pool, workers);
      blk.await_seal();
      std::printf("     %s{\"%s\", \"%s\", %llu}%s\n", b == 0 ? "{" : " ",
                  blk.block.header.state_root.to_hex().c_str(),
                  blk.block.header.tx_root.to_hex().c_str(),
                  static_cast<unsigned long long>(blk.stats.aborts),
                  b == 3 ? "}}," : ",");
    }
  }
}

bool run_differential(bool smoke, std::string& detail) {
  bool ok = true;
  for (const ExpectedRun& run : kExpected) {
    if (smoke && run.threads != 4) continue;  // one config keeps smoke fast
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 0xD1FF;
    workload::WorkloadGenerator gen(wc);
    const WorldState genesis = gen.genesis();
    ThreadPool workers(1);
    for (int b = 0; b < 4; ++b) {
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::ProposerConfig cfg;
      cfg.threads = run.threads;
      core::OccWsiProposer proposer(cfg);
      core::ProposedBlock blk = proposer.propose(
          genesis, ctx_for(static_cast<std::uint64_t>(b) + 1), pool, workers);
      blk.await_seal();
      const ExpectedBlock& exp = run.blocks[b];
      if (blk.block.header.state_root.to_hex() != exp.state_root ||
          blk.block.header.tx_root.to_hex() != exp.tx_root ||
          blk.stats.aborts != exp.aborts) {
        ok = false;
        detail += "mismatch threads=" + std::to_string(run.threads) +
                  " block=" + std::to_string(b) + "; ";
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Regime map: OCC-WSI vs Block-STM virtual speedup over the workload's
// conflict structure (largest dependency subgraph as a fraction of the
// block).  OCC pays a serialized commit section but re-orders around
// conflicts; Block-STM pins the preset order and pays re-executions — the
// crossover between the two engines is the map this phase publishes.
// Every point also carries the cross-engine exactness flags the CI smoke
// gates on: the OCC block must replay serially to its own root, and the
// Block-STM block must be bit-identical (txs, state root, receipts) to the
// serial execution of its candidates in pool pop order.

struct RegimePoint {
  std::string name;
  double subgraph_ratio = 0;
  double occ_speedup = 0;
  double stm_speedup = 0;
  std::uint64_t occ_aborts = 0;
  std::uint64_t stm_aborts = 0;
  bool occ_serializable = true;
  bool stm_exact = true;
};

RegimePoint run_regime_point(const char* name,
                             const workload::WorkloadConfig& preset,
                             int blocks) {
  workload::WorkloadConfig wc = preset;
  wc.seed = 0x4E61;
  workload::WorkloadGenerator gen(wc);
  const WorldState genesis = gen.genesis();
  ThreadPool workers(1);

  RegimePoint pt;
  pt.name = name;
  double ratio_sum = 0, occ_sum = 0, stm_sum = 0;
  for (int b = 0; b < blocks; ++b) {
    const std::uint64_t height = static_cast<std::uint64_t>(b) + 1;
    const std::vector<chain::Transaction> batch = gen.next_block();
    core::ProposerConfig pcfg;  // defaults = the engines' selection budget

    // Serial pop-order oracle (mirrors Block-STM candidate selection:
    // reserve by gas_limit) + the batch's conflict structure.
    std::vector<chain::Transaction> pop_order;
    {
      txpool::TxPool pool;
      pool.add_all(batch);
      std::uint64_t reserved = 0;
      while (auto tx = pool.pop()) {
        if (reserved + tx->gas_limit > pcfg.block_gas_limit) break;
        reserved += tx->gas_limit;
        pop_order.push_back(std::move(*tx));
      }
    }
    core::SerialOptions sopts;
    sopts.block_gas_limit = pcfg.block_gas_limit;
    const core::SerialResult oracle = core::execute_serial(
        genesis, ctx_for(height), std::span(pop_order), sopts);
    const sched::DependencyGraph graph = sched::build_dependency_graph(
        oracle.exec.profile, sched::Granularity::kAccount);
    ratio_sum += graph.largest_subgraph_ratio();

    const auto propose = [&](core::ScheduleMode mode) {
      txpool::TxPool pool;
      pool.add_all(batch);
      core::ProposerConfig cfg;
      cfg.mode = mode;
      cfg.threads = 8;
      core::BlockProposer proposer(cfg);
      core::ProposedBlock blk =
          proposer.propose(genesis, ctx_for(height), pool, workers);
      blk.await_seal();
      return blk;
    };
    const core::ProposedBlock occ = propose(core::ScheduleMode::kVirtualTime);
    const core::ProposedBlock stm = propose(core::ScheduleMode::kBlockStm);
    occ_sum += occ.stats.virtual_speedup();
    stm_sum += stm.stats.virtual_speedup();
    pt.occ_aborts += occ.stats.aborts;
    pt.stm_aborts += stm.stats.aborts;

    // OCC serializability: its block replayed in block order reaches the
    // same root.
    core::SerialOptions ropts;
    ropts.drop_unincludable = false;
    const core::SerialResult replay = core::execute_serial(
        genesis, ctx_for(height), std::span(occ.block.transactions), ropts);
    if (!replay.ok || replay.exec.state_root != occ.block.header.state_root)
      pt.occ_serializable = false;

    // Block-STM exactness: bit-identical to the pop-order oracle.
    if (stm.block.transactions != oracle.included ||
        stm.block.header.state_root != oracle.exec.state_root ||
        stm.block.header.gas_used != oracle.exec.gas_used ||
        chain::receipts_root(stm.receipts) !=
            chain::receipts_root(oracle.exec.receipts))
      pt.stm_exact = false;
  }
  pt.subgraph_ratio = ratio_sum / blocks;
  pt.occ_speedup = occ_sum / blocks;
  pt.stm_speedup = stm_sum / blocks;
  return pt;
}

std::vector<RegimePoint> run_regime_map(bool smoke) {
  workload::WorkloadConfig dex_heavy = workload::preset_mainnet();
  dex_heavy.dex_fraction = 0.6;
  dex_heavy.token_fraction = 0.3;
  const int blocks = smoke ? 2 : 8;
  return {
      run_regime_point("low_conflict", workload::preset_low_conflict(),
                       blocks),
      run_regime_point("mainnet", workload::preset_mainnet(), blocks),
      run_regime_point("mainnet_dex_heavy", dex_heavy, blocks),
      run_regime_point("high_conflict", workload::preset_high_conflict(),
                       blocks),
  };
}

// Pre-change Fig. 6 numbers measured on this host (bench_fig6_proposer,
// 30 blocks, preset_mainnet seed 0xF16) immediately before the rework.
struct Fig6Before {
  std::size_t threads;
  double wall_ms_per_block;
  double avg_speedup;
};
constexpr Fig6Before kFig6Before[] = {
    {2, 83.4, 1.76}, {4, 83.0, 2.92}, {8, 85.6, 3.86}, {16, 88.7, 4.19}};

struct Fig6After {
  std::size_t threads;
  double wall_ms_per_block;
  double avg_speedup;
};

std::vector<Fig6After> run_fig6(int blocks) {
  std::vector<Fig6After> out;
  ThreadPool workers(1);
  for (const std::size_t threads : {2u, 4u, 8u, 16u}) {
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 0xF16;
    workload::WorkloadGenerator gen(wc);
    const WorldState genesis = gen.genesis();
    SpeedupHistogram hist;
    double wall = 0;
    for (int b = 0; b < blocks; ++b) {
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::ProposerConfig cfg;
      cfg.threads = threads;
      core::OccWsiProposer proposer(cfg);
      const core::ProposedBlock blk = proposer.propose(
          genesis, ctx_for(static_cast<std::uint64_t>(b) + 1), pool, workers);
      hist.add(blk.stats.virtual_speedup());
      wall += blk.stats.wall_ms;
    }
    out.push_back({threads, wall / blocks, hist.average()});
  }
  return out;
}

void run(bool smoke) {
  // Measure the Fig. 6 curve first, before the microbench phases touch the
  // heap: the pre-change reference numbers were captured in a fresh process
  // running only the proposer, and this keeps the comparison like-for-like
  // (same 30-block protocol as bench_fig6_proposer).
  const std::vector<Fig6After> fig6 =
      smoke ? std::vector<Fig6After>{} : run_fig6(30);

  const std::size_t accounts = smoke ? 256 : 1024;
  const std::size_t slots_per = 4;
  const std::size_t versions = smoke ? 64 : 256;
  const std::size_t writes_per = 8;
  const std::size_t total_ops = smoke ? 400'000 : 1'600'000;

  Universe u = make_universe(accounts, slots_per, versions, writes_per);
  // Heavy-tailed key popularity, as in the paper's workload model.
  const ZipfSampler zipf(u.keys.size(), 0.99);
  SingleLockStore single(u.base);
  VersionedState sharded(u.base);
  commit_all(single, u);
  commit_all(sharded, u);

  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};

  std::printf("{\n");
  std::printf("  \"workload\": {\"accounts\": %zu, \"slots_per_account\": %zu, "
              "\"keys\": %zu, \"versions\": %zu, \"writes_per_version\": %zu, "
              "\"hardware_concurrency\": %u},\n",
              accounts, slots_per, u.keys.size(), versions, writes_per,
              std::thread::hardware_concurrency());

  // -- phase 1: snapshot-read throughput --------------------------------
  double single_at_8 = 0, sharded_at_8 = 0;
  std::printf("  \"snapshot_read_throughput\": [\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t t = thread_counts[i];
    const std::size_t ops = total_ops / t;
    const double mops_single = read_throughput(single, u, zipf, t, ops);
    const double mops_sharded = read_throughput(sharded, u, zipf, t, ops);
    if (t == 8) {
      single_at_8 = mops_single;
      sharded_at_8 = mops_sharded;
    }
    std::printf("    {\"threads\": %zu, \"single_lock_mops\": %.2f, "
                "\"sharded_mops\": %.2f, \"speedup\": %.2f}%s\n",
                t, mops_single, mops_sharded, mops_sharded / mops_single,
                i + 1 < thread_counts.size() ? "," : "");
  }
  std::printf("  ],\n");

  // -- phase 1b: executor hot-path op (read + validate) -----------------
  double hot_single_at_1 = 0, hot_sharded_at_1 = 0;
  double hot_single_at_8 = 0, hot_sharded_at_8 = 0;
  std::printf("  \"executor_hot_path\": [\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t t = thread_counts[i];
    const std::size_t ops = total_ops / t;
    const double mops_single = hot_path_throughput(single, u, zipf, t, ops);
    const double mops_sharded = hot_path_throughput(sharded, u, zipf, t, ops);
    if (t == 1) {
      hot_single_at_1 = mops_single;
      hot_sharded_at_1 = mops_sharded;
    }
    if (t == 8) {
      hot_single_at_8 = mops_single;
      hot_sharded_at_8 = mops_sharded;
    }
    std::printf("    {\"threads\": %zu, \"single_lock_mops\": %.2f, "
                "\"sharded_mops\": %.2f, \"speedup\": %.2f}%s\n",
                t, mops_single, mops_sharded, mops_sharded / mops_single,
                i + 1 < thread_counts.size() ? "," : "");
  }
  std::printf("  ],\n");

  // -- phase 2: reserve-table validation scans --------------------------
  std::printf("  \"validation_scan\": [\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t t = thread_counts[i];
    const std::size_t ops = total_ops / t;
    const double mops_single = validate_throughput(single, u, t, ops);
    const double mops_sharded = validate_throughput(sharded, u, t, ops);
    std::printf("    {\"threads\": %zu, \"single_lock_mops\": %.2f, "
                "\"sharded_mops\": %.2f, \"speedup\": %.2f}%s\n",
                t, mops_single, mops_sharded, mops_sharded / mops_single,
                i + 1 < thread_counts.size() ? "," : "");
  }
  std::printf("  ],\n");

  // -- phase 3: readers racing one continuously-active committer --------
  // The proposer's actual operating condition (the commit section is live
  // for the whole block), and the acceptance metric for this PR: aggregate
  // snapshot-read throughput at 8 executor threads, sharded vs single-lock.
  double mixed_single_at_8 = 0, mixed_sharded_at_8 = 0;
  {
    Xoshiro256 rng(0x0DD5);
    std::vector<std::vector<std::pair<StateKey, U256>>> extra;
    for (std::size_t v = 0; v < 64u; ++v) {
      std::vector<std::pair<StateKey, U256>> ws;
      std::unordered_map<StateKey, bool> seen;
      while (ws.size() < writes_per) {
        const std::size_t i = rng.below(u.keys.size());
        if (!seen.try_emplace(u.keys[i], true).second) continue;
        ws.emplace_back(u.keys[i], U256{v + ws.size()});
      }
      extra.push_back(std::move(ws));
    }
    std::printf("  \"read_under_commit\": [\n");
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      const std::size_t t = thread_counts[i];
      const std::size_t ops = total_ops / t / 2;
      // Fresh stores per store-kind so chain lengths match across kinds.
      Universe u2 = make_universe(accounts, slots_per, versions, writes_per);
      SingleLockStore single2(u2.base);
      VersionedState sharded2(u2.base);
      commit_all(single2, u2);
      commit_all(sharded2, u2);
      const double mops_single =
          mixed_throughput(single2, u2, zipf, t, ops, extra);
      const double mops_sharded =
          mixed_throughput(sharded2, u2, zipf, t, ops, extra);
      if (t == 8) {
        mixed_single_at_8 = mops_single;
        mixed_sharded_at_8 = mops_sharded;
      }
      std::printf("    {\"threads\": %zu, \"single_lock_mops\": %.2f, "
                  "\"sharded_mops\": %.2f, \"speedup\": %.2f}%s\n",
                  t, mops_single, mops_sharded, mops_sharded / mops_single,
                  i + 1 < thread_counts.size() ? "," : "");
    }
    std::printf("  ],\n");
  }

  // -- phase 4: Fig. 6 proposer curve (measured up front) ---------------
  if (!smoke) {
    const std::vector<Fig6After>& after = fig6;
    std::printf("  \"fig6_proposer\": [\n");
    for (std::size_t i = 0; i < after.size(); ++i) {
      const Fig6Before& before = kFig6Before[i];
      std::printf("    {\"threads\": %zu, \"before_wall_ms_per_block\": %.1f, "
                  "\"after_wall_ms_per_block\": %.1f, "
                  "\"wall_speedup\": %.2f, \"avg_virtual_speedup\": %.2f}%s\n",
                  after[i].threads, before.wall_ms_per_block,
                  after[i].wall_ms_per_block,
                  before.wall_ms_per_block / after[i].wall_ms_per_block,
                  after[i].avg_speedup, i + 1 < after.size() ? "," : "");
    }
    std::printf("  ],\n");
  }

  // -- phase 5: differential gate ---------------------------------------
  std::string detail;
  const bool identical = run_differential(smoke, detail);
  std::printf("  \"differential\": {\"bit_identical\": %s, \"configs\": "
              "\"preset_mainnet seed=0xD1FF, 4 blocks x threads %s\", "
              "\"detail\": \"%s\"},\n",
              identical ? "true" : "false", smoke ? "{4}" : "{1,2,4,8,16}",
              detail.c_str());

  // -- phase 6: engine regime map (OCC-WSI vs Block-STM, 8 threads) ------
  const std::vector<RegimePoint> regime = run_regime_map(smoke);
  bool regime_exact = true;
  bool regime_nonzero = true;
  std::printf("  \"regime_map\": {\"threads\": 8, \"x\": "
              "\"largest_subgraph_ratio\", \"y\": \"virtual_speedup\", "
              "\"points\": [\n");
  for (std::size_t i = 0; i < regime.size(); ++i) {
    const RegimePoint& p = regime[i];
    regime_exact = regime_exact && p.occ_serializable && p.stm_exact;
    regime_nonzero =
        regime_nonzero && p.occ_speedup > 0.0 && p.stm_speedup > 0.0;
    std::printf("    {\"workload\": \"%s\", \"largest_subgraph_ratio\": %.3f, "
                "\"occ_wsi_speedup\": %.2f, \"block_stm_speedup\": %.2f, "
                "\"occ_aborts\": %llu, \"stm_aborts\": %llu, "
                "\"occ_serializable\": %s, "
                "\"stm_matches_serial_pop_order\": %s}%s\n",
                p.name.c_str(), p.subgraph_ratio, p.occ_speedup, p.stm_speedup,
                static_cast<unsigned long long>(p.occ_aborts),
                static_cast<unsigned long long>(p.stm_aborts),
                p.occ_serializable ? "true" : "false",
                p.stm_exact ? "true" : "false",
                i + 1 < regime.size() ? "," : "");
  }
  std::printf("  ]},\n");

  // Acceptance metrics.  The executor hot-path op (snapshot read + WSI
  // validation of that key) is what the rework moved off locks.  Note on
  // thread counts: on a single-core host, >1 "threads" measures time-sliced
  // interference rather than parallel scaling (the per-thread ReadCaches
  // fight over one core's L2, and the shared_mutex is never truly
  // contended, which flatters the single-lock baseline); the 1-thread
  // figure is the clean per-op comparison there, and the 8-thread gap
  // widens on real multi-core hardware where the single lock's cache-line
  // ping-pong dominates.
  std::printf("  \"acceptance\": {\"hot_path_speedup_at_1_thread\": %.2f, "
              "\"hot_path_speedup_at_8_threads\": %.2f, "
              "\"read_under_commit_speedup_at_8_threads\": %.2f, "
              "\"uncontended_read_speedup_at_8_threads\": %.2f, "
              "\"target\": 3.0, \"single_core_host\": %s}\n",
              hot_sharded_at_1 / hot_single_at_1,
              hot_sharded_at_8 / hot_single_at_8,
              mixed_sharded_at_8 / mixed_single_at_8,
              sharded_at_8 / single_at_8,
              std::thread::hardware_concurrency() <= 1 ? "true" : "false");
  std::printf("}\n");

  // Sentinels for the CI perf-smoke gate.
  if (!identical) {
    std::fprintf(stderr, "DIFFERENTIAL MISMATCH: %s\n", detail.c_str());
    std::exit(1);
  }
  if (regime.size() < 4 || !regime_exact || !regime_nonzero) {
    std::fprintf(stderr,
                 "REGIME-MAP GATE: points=%zu exact=%d nonzero=%d (need >=4 "
                 "points, every OCC block serializable, every Block-STM "
                 "block bit-identical to its serial pop-order oracle, "
                 "nonzero speedups)\n",
                 regime.size(), regime_exact ? 1 : 0, regime_nonzero ? 1 : 0);
    std::exit(1);
  }
  if (hot_sharded_at_8 < hot_single_at_8 ||
      mixed_sharded_at_8 < mixed_single_at_8 || sharded_at_8 < single_at_8) {
    std::fprintf(stderr,
                 "PERF-SMOKE REGRESSION: sharded store below single-lock at "
                 "8 threads (hot-path %.2f vs %.2f, under-commit %.2f vs "
                 "%.2f, uncontended %.2f vs %.2f Mops/s)\n",
                 hot_sharded_at_8, hot_single_at_8, mixed_sharded_at_8,
                 mixed_single_at_8, sharded_at_8, single_at_8);
    std::exit(1);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--capture-differential") == 0) {
    blockpilot::bench::capture_differential();
    return 0;
  }
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  blockpilot::bench::run(smoke);
  return 0;
}
