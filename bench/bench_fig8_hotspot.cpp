// Figure 8 — Effects of the hotspot problem.
//
// Paper: as the largest conflict subgraph's share of a block grows, the
// 16-thread speedup falls sharply — >4x when the largest subgraph is ~10 %
// of the block, near 1x when a single subgraph spans the block.  The
// mainnet average largest-subgraph ratio is 27.5 %.
//
// This bench sweeps the workload's hotspot intensity so generated blocks
// cover the whole ratio axis, buckets blocks by measured ratio, and prints
// the mean 16-thread speedup per bucket — plus the calibration row
// checking the mainnet preset against the 27.5 % figure.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

void run() {
  print_header("Figure 8: speedup vs largest-subgraph ratio @16 threads",
               ">4x near 10% ratio, ~1x at 100%; mainnet average 27.5%");

  ThreadPool workers(1);

  // Sweep hotspot regimes to populate every ratio bucket.
  struct Sweep {
    double dex;
    std::size_t num_dex;
  };
  const Sweep sweeps[] = {{0.00, 1}, {0.05, 1}, {0.10, 1}, {0.20, 1},
                          {0.30, 1}, {0.45, 1}, {0.60, 1}, {0.80, 1},
                          {0.95, 1}, {0.30, 4}, {0.50, 2}};

  struct Bucket {
    double speedup_sum = 0;
    int count = 0;
  };
  std::vector<Bucket> buckets(10);  // ratio deciles

  for (const Sweep& sweep : sweeps) {
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 0xF18 + static_cast<std::uint64_t>(sweep.dex * 100);
    wc.dex_fraction = sweep.dex;
    wc.num_dex = sweep.num_dex;
    wc.token_fraction = std::min(0.42, 1.0 - sweep.dex);
    workload::WorkloadGenerator gen(wc);
    const state::WorldState genesis = gen.genesis();

    for (int b = 0; b < 6; ++b) {
      const HonestBlock hb = build_honest_block(
          genesis, gen.next_block(), static_cast<std::uint64_t>(b) + 1);
      core::ValidatorConfig vc;
      vc.threads = 16;
      const auto out = core::BlockValidator(vc).validate(
          genesis, hb.bundle.block, hb.bundle.profile, workers);
      if (!out.valid) {
        std::printf("VALIDATION FAILED: %s\n", out.reject_reason.c_str());
        return;
      }
      const double ratio = out.stats.largest_subgraph_ratio;
      auto idx = static_cast<std::size_t>(ratio * 10.0);
      if (idx >= buckets.size()) idx = buckets.size() - 1;
      buckets[idx].speedup_sum += out.stats.virtual_speedup();
      ++buckets[idx].count;
    }
  }

  std::printf("%22s %8s %12s\n", "largest-subgraph", "blocks", "avg-speedup");
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].count == 0) continue;
    std::printf("      [%3zu%%, %3zu%%)      %8d %12.2f\n", i * 10,
                (i + 1) * 10, buckets[i].count,
                buckets[i].speedup_sum / buckets[i].count);
  }

  // Calibration row (§5.5): the mainnet preset's average ratio.
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  const state::WorldState genesis = gen.genesis();
  double ratio_sum = 0;
  constexpr int kCalBlocks = 12;
  for (int b = 0; b < kCalBlocks; ++b) {
    core::SerialOptions opts;
    const auto txs = gen.next_block();
    const auto serial =
        core::execute_serial(genesis, ctx_for(1), std::span(txs), opts);
    const auto graph = sched::build_dependency_graph(
        serial.exec.profile, sched::Granularity::kAccount);
    ratio_sum += graph.largest_subgraph_ratio();
  }
  std::printf("mainnet-preset avg largest-subgraph ratio: %.3f  (paper: 0.275)\n",
              ratio_sum / kCalBlocks);
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
