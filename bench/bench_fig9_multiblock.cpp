// Figure 9 — Multi-block evaluation of the validator pipeline.
//
// Paper: with 16 worker threads, processing 1..8 same-height blocks
// concurrently, the aggregate speedup rises from ~3.2x (1 block) to a peak
// of 7.72x at 4 blocks, then dips slightly toward 8 blocks as workers
// shift between block contexts and communication costs grow.
//
// Methodology matches §5.6: "we simulated executing multiple blocks at the
// same height by concurrently executing a block multiple times".
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocksPerPoint = 6;

void run() {
  print_header("Figure 9: multi-block pipeline @16 workers",
               "speedup rises 1->4 blocks (peak 7.72x), dips slightly 4->8");

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xF19;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  std::vector<HonestBlock> base_blocks;
  for (int b = 0; b < kBlocksPerPoint; ++b)
    base_blocks.push_back(build_honest_block(
        genesis, gen.next_block(), 1));

  ThreadPool workers(4);
  std::printf("%8s %12s %16s\n", "blocks", "avg-speedup", "vs-single-block");
  double single = 0;
  for (const std::size_t concurrent : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    double sum = 0;
    for (const HonestBlock& hb : base_blocks) {
      // The same block replicated `concurrent` times at one height.
      std::vector<core::BlockBundle> siblings(concurrent, hb.bundle);
      core::PipelineConfig pc;
      pc.workers = 16;
      core::ValidatorPipeline pipeline(pc);
      const auto result =
          pipeline.process_height(genesis, std::span(siblings), workers);
      if (!result.all_valid()) {
        std::printf("PIPELINE VALIDATION FAILED\n");
        return;
      }
      sum += result.stats.virtual_speedup();
    }
    const double avg = sum / kBlocksPerPoint;
    if (concurrent == 1) single = avg;
    std::printf("%8zu %12.2f %15.2fx\n", concurrent, avg,
                single > 0 ? avg / single : 0.0);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
