// Figure 7(b) — Speedup distribution of single-block validation at 16
// worker threads.
//
// Paper: 99.8 % of executed blocks are accelerated; the distribution has a
// body in the 2-4x range with a tail of hotspot-bound blocks near 1x.
#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 40;

void run() {
  print_header("Figure 7(b): validator speedup distribution @16 threads",
               "99.8% of blocks accelerated; hotspot blocks stay near 1x");

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xF7B;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  ThreadPool workers(1);
  SpeedupHistogram hist;
  double ratio_sum = 0;
  for (int b = 0; b < kBlocks; ++b) {
    const HonestBlock hb = build_honest_block(
        genesis, gen.next_block(), static_cast<std::uint64_t>(b) + 1);
    core::ValidatorConfig vc;
    vc.threads = 16;
    const auto out = core::BlockValidator(vc).validate(
        genesis, hb.bundle.block, hb.bundle.profile, workers);
    if (!out.valid) {
      std::printf("VALIDATION FAILED: %s\n", out.reject_reason.c_str());
      return;
    }
    hist.add(out.stats.virtual_speedup());
    ratio_sum += out.stats.largest_subgraph_ratio;
  }

  std::printf("blocks: %zu   avg speedup: %.2f   accelerated: %.1f%%   "
              "avg largest-subgraph ratio: %.3f\n",
              hist.size(), hist.average(),
              hist.accelerated_fraction() * 100.0, ratio_sum / kBlocks);
  hist.print("  16-thread validator");
}

}  // namespace
}  // namespace blockpilot::bench

int main() { blockpilot::bench::run(); }
