// Figure 7(a) — Single-block validator scalability, BlockPilot vs OCC.
//
// Paper: the scheduled validator averages 1.7x / 2.5x / 3.03x / 3.18x at
// 2 / 4 / 8 / 16 threads, scales well up to ~6 threads and flattens after
// (hotspot critical paths bind), and beats the two-phase OCC baseline
// overall.
//
// `--engine lpt|stm|stm-host` selects the replay discipline for the
// BlockPilot column (default lpt, the paper's subgraph-LPT schedule; stm
// runs the Block-STM validator's discrete-event twin over the same blocks;
// stm-host runs it on real pool threads).  Every engine accepts every
// honest block, so the column only changes in virtual speedup.  Note the
// host twin's lane attribution follows the OS scheduler: on hosts with
// fewer cores than lanes its reported speedup collapses toward 1.0 — the
// DES twin is the meaningful scalability surface.
#include <cstring>

#include "bench_common.hpp"

namespace blockpilot::bench {
namespace {

constexpr int kBlocks = 15;

void run(core::ValidatorEngine engine) {
  const char* engine_name =
      engine == core::ValidatorEngine::kBlockStm       ? "block-stm"
      : engine == core::ValidatorEngine::kBlockStmHost ? "block-stm-host"
                                                       : "subgraph-lpt";
  print_header("Figure 7(a): validator single-block scalability",
               "BlockPilot 1.7/2.5/3.03/3.18 @ 2/4/8/16 threads; knee ~6 "
               "threads; BlockPilot > OCC");
  std::printf("validator engine: %s\n", engine_name);

  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xF7A;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  // Pre-build the block set once; every engine/thread-count replays it.
  std::vector<HonestBlock> blocks;
  for (int b = 0; b < kBlocks; ++b)
    blocks.push_back(build_honest_block(
        genesis, gen.next_block(), static_cast<std::uint64_t>(b) + 1));

  ThreadPool workers(16);
  std::printf("%8s %18s %14s\n", "threads", "BlockPilot-speedup",
              "OCC-speedup");
  for (const std::size_t threads : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    double bp_sum = 0, occ_sum = 0;
    for (const HonestBlock& hb : blocks) {
      core::ValidatorConfig vc;
      vc.threads = threads;
      vc.engine = engine;
      const auto bp = core::BlockValidator(vc).validate(
          genesis, hb.bundle.block, hb.bundle.profile, workers);
      if (!bp.valid) {
        std::printf("VALIDATION FAILED: %s\n", bp.reject_reason.c_str());
        return;
      }
      bp_sum += bp.stats.virtual_speedup();

      const auto occ =
          core::TwoPhaseOcc(vc).validate(genesis, hb.bundle.block, workers);
      if (!occ.valid) {
        std::printf("OCC VALIDATION FAILED: %s\n", occ.reject_reason.c_str());
        return;
      }
      occ_sum += occ.stats.virtual_speedup();
    }
    std::printf("%8zu %18.2f %14.2f\n", threads, bp_sum / kBlocks,
                occ_sum / kBlocks);
  }
}

}  // namespace
}  // namespace blockpilot::bench

int main(int argc, char** argv) {
  blockpilot::core::ValidatorEngine engine =
      blockpilot::core::ValidatorEngine::kSubgraphLpt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "stm") == 0) {
        engine = blockpilot::core::ValidatorEngine::kBlockStm;
      } else if (std::strcmp(argv[i], "stm-host") == 0) {
        engine = blockpilot::core::ValidatorEngine::kBlockStmHost;
      } else if (std::strcmp(argv[i], "lpt") != 0) {
        std::printf("usage: %s [--engine lpt|stm|stm-host]\n", argv[0]);
        return 2;
      }
    }
  }
  blockpilot::bench::run(engine);
}
