#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + test suite), the commit-labeled
# tests — including the concurrency stress layer — and the ingest-labeled
# admission/soak tests under ThreadSanitizer,
# and the net-labeled consensus-loop tests (event-driven nodes, fork-choice
# fuzz, and the quorum/fault matrix — loss, duplication, partitions,
# Byzantine leaders) under both ThreadSanitizer and AddressSanitizer.
# The fuzz and the fault matrix detect sanitizer builds at compile time
# and trim their scenario sweeps so these gates stay within CI budget.
# The evm-labeled suites (interpreter differential, code-analysis cache)
# run under ThreadSanitizer to catch races on the shared per-code-hash
# analysis cache, and bench_evm --smoke gates fast-vs-reference
# bit-identity plus cache hit-rate floors.
# The stm-labeled suites (Block-STM scheduler, multi-version memory, the
# cross-engine differential, and the host-threads hammer) run in the
# default build and again under ThreadSanitizer (the tsan-stm preset).
# The db-labeled crash/recovery suites additionally run under combined
# ASan+UBSan (the asan-db preset), and every db gate is followed by a
# tmpdir hygiene check: tests and benches must remove their page files.
#
#   ./ci.sh            # tier-1 + perf-smoke + tsan commit/stress + tsan/asan net + asan-db
#   ./ci.sh --tier1    # tier-1 only (fast path)
#   JOBS=8 ./ci.sh     # override parallelism
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

# Page-store tests and benches create /tmp/bpdb_* scratch dirs and must
# remove them (crash-simulation paths included).  A leak here means a
# teardown bug, so fail the gate rather than fill the CI disk.
hygiene_check() {
  local leaked
  leaked="$(find /tmp -maxdepth 1 -name 'bpdb_*' -print 2>/dev/null || true)"
  if [[ -n "${leaked}" ]]; then
    echo "==> hygiene: leaked page-store scratch dirs after $1:" >&2
    echo "${leaked}" >&2
    exit 1
  fi
}

echo "==> tier-1: configure + build (RelWithDebInfo)"
cmake --preset default >/dev/null
cmake --build --preset default -j "${JOBS}"

echo "==> tier-1: full test suite"
ctest --preset default -j "${JOBS}"

if [[ "${1:-}" == "--tier1" ]]; then
  echo "==> tier-1 only: done"
  exit 0
fi

echo "==> perf-smoke: bench_versioned_state --smoke (sharded-store + engine gates)"
# Fails on crash, on the regression sentinel (sharded store slower than the
# embedded single-lock baseline), on a differential mismatch (proposed
# blocks not bit-identical to the pre-change capture), or on the regime-map
# gate (fewer than 4 largest-subgraph-ratio points, an OCC block that does
# not replay serially to its own root, a Block-STM block not bit-identical
# to its serial pop-order oracle, or a zero cross-engine speedup).
# Time-capped so a livelocked store cannot hang CI.
timeout 120 ./build/bench/bench_versioned_state --smoke

echo "==> perf-smoke: bench_db --smoke (paged-store gates)"
# Fails on crash or on any db gate: warm-cache replay not faster than the
# cold run, cache hit rate not strictly inside (0, 100)% with the cache
# capped below the working set, compaction losing the durable root, or a
# recovery mismatch.  Also exercises the bench's own scratch-dir cleanup.
timeout 180 ./build/bench/bench_db --smoke
hygiene_check "bench_db"

echo "==> perf-smoke: bench_ingest --smoke (live-ingestion gates)"
# Drives the NodeDriver firehose across all four traffic profiles with
# host-thread workers.  Fails on crash or on any ingestion gate: pool
# conservation violated, a (sender, nonce) slot committed twice, a starved
# proposer (>25% empty blocks — the stranded-ladder failure mode), or an
# empty admission-to-settle latency distribution.
timeout 300 ./build/bench/bench_ingest --smoke

echo "==> perf-smoke: bench_consensus --smoke (engine matrix + adaptive gates)"
# Engine section only: every proposer engine (OCC-WSI, Block-STM, adaptive)
# and every validator engine (subgraph-LPT, Block-STM, adaptive) must settle
# the full chain, the validator engines must agree on every canonical root,
# the adaptive proposer must land within 5% of the best fixed engine's
# settle latency, and the dex-heavy regime flip must actually flip the
# per-block pick.  Does not rewrite the committed BENCH_consensus.json.
timeout 120 ./build/bench/bench_consensus --smoke

echo "==> perf-smoke: bench_evm --smoke (interpreter + analysis-cache gates)"
# Fails on crash or on any evm gate: fast and reference interpreters not
# bit-identical on the compute contract, the analysis-backed dispatch not at
# least as fast as the reference switch, steady-state analysis-cache hit rate
# below 99% under the mainnet profile, or a per-profile state-root mismatch
# between the two interpreters.
timeout 180 ./build/bench/bench_evm --smoke

echo "==> tsan: configure + build (BLOCKPILOT_SANITIZE=thread)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}"

echo "==> tsan: commit-labeled tests (includes the stress label)"
ctest --preset tsan-commit

echo "==> tsan: ingest-labeled tests (admission front, concurrent submit-vs-pop soak)"
ctest --preset tsan-ingest

echo "==> tsan: net-labeled tests (consensus loop, fork-choice fuzz, fault matrix)"
ctest --preset tsan-net

echo "==> tsan: evm-labeled tests (interpreter differential, shared analysis cache)"
ctest --preset tsan-evm

echo "==> tsan: stm-labeled tests (Block-STM scheduler + multi-version memory under real threads)"
ctest --preset tsan-stm

echo "==> tsan: engine-differential matrix (proposer x validator engines, adaptive selection)"
ctest --preset tsan-engine-matrix

echo "==> asan: configure + build (BLOCKPILOT_SANITIZE=address)"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"

echo "==> asan: net-labeled tests (consensus loop, fork-choice fuzz, fault matrix)"
ctest --preset asan-net

echo "==> asan-db: configure + build (BLOCKPILOT_SANITIZE=address,undefined)"
cmake --preset asan-db >/dev/null
cmake --build --preset asan-db -j "${JOBS}"

echo "==> asan-db: db-labeled tests (page codecs, torn-write recovery, differential fuzz)"
ctest --preset asan-db
hygiene_check "asan-db tests"

echo "==> ci: all gates passed"
