// Whole-network simulation: proposer nodes, validator nodes, gossip,
// forks, uncles and consensus — the paper's Figure 1 scenario end-to-end.
//
// Three proposers race (two fire per round, so every height forks), five
// validators gossip the announcements, validate all siblings through their
// pipelines, vote, and advance the canonical chain.  The simulation checks
// consensus safety (identical state roots on every replica) each round and
// reports end-to-end round latency in virtual time.
//
//   ./build/examples/network_sim
#include <cstdio>

#include "net/consensus_sim.hpp"

using namespace blockpilot;

int main() {
  net::ConsensusSimConfig cfg;
  cfg.proposer_nodes = 3;
  cfg.validator_nodes = 5;
  cfg.proposers_per_round = 2;  // deliberate forks every round
  cfg.rounds = 5;
  cfg.workload.seed = 404;
  cfg.proposer_threads = 8;
  cfg.validator_workers = 16;

  std::printf("network: %zu proposers, %zu validators, %zu proposals/round, "
              "%llu rounds\n\n",
              cfg.proposer_nodes, cfg.validator_nodes,
              cfg.proposers_per_round,
              static_cast<unsigned long long>(cfg.rounds));

  net::ConsensusSim sim(cfg);
  const net::ConsensusSimResult result = sim.run();

  if (!result.safety_held) {
    std::printf("CONSENSUS SAFETY VIOLATED: %s\n", result.violation.c_str());
    return 1;
  }

  std::printf("%7s %9s %7s %7s %12s  %s\n", "height", "siblings", "valid",
              "uncles", "latency(ms)", "canonical root");
  for (const auto& round : result.rounds) {
    std::printf("%7llu %9zu %7zu %7zu %12.1f  %.18s...\n",
                static_cast<unsigned long long>(round.height),
                round.siblings, round.valid_siblings, round.uncles,
                static_cast<double>(round.round_latency_us) / 1000.0,
                round.canonical_root.to_hex().c_str());
  }

  std::printf("\nsafety: every validator replica agreed on every root\n");
  std::printf("totals: %llu canonical txs, %llu uncles, %.2f MB gossiped, "
              "avg round latency %.1f ms\n",
              static_cast<unsigned long long>(result.total_txs),
              static_cast<unsigned long long>(result.total_uncles),
              static_cast<double>(result.bytes_gossiped) / 1e6,
              result.avg_round_latency_ms());
  return 0;
}
