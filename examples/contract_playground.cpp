// Contract playground: write EVM bytecode with the assembler, deploy it,
// execute transactions against it, and watch the read/write sets that
// drive BlockPilot's concurrency control.
//
// Demonstrates the lower layers of the public API on their own: the
// assembler, the interpreter, per-transaction ExecBuffers, and how a
// transaction's conflict keys come directly from its execution trace.
//
//   ./build/examples/contract_playground
#include <cstdio>

#include "core/blockpilot.hpp"
#include "evm/assembler.hpp"

using namespace blockpilot;
using evm::Op;

int main() {
  // ---- a tiny "voting" contract, hand-assembled --------------------------
  // calldata word 0 = candidate id; tally lives at slot = candidate id;
  // total turnout at slot 0xffff.
  evm::Assembler assembler;
  assembler.push(0).op(Op::CALLDATALOAD);           // [candidate]
  assembler.op(Op::DUP1).op(Op::SLOAD);             // [votes, candidate]
  assembler.push(1).op(Op::ADD);                    // [votes+1, candidate]
  assembler.op(Op::SWAP1).op(Op::SSTORE);           // tally[candidate]++
  assembler.push(0xffff).op(Op::SLOAD);             // [turnout]
  assembler.push(1).op(Op::ADD);
  assembler.push(0xffff).op(Op::SSTORE);            // turnout++
  assembler.op(Op::STOP);
  const auto code = assembler.assemble();

  std::printf("=== contract disassembly ===\n%s\n",
              evm::disassemble(std::span(code)).c_str());

  // ---- deploy and fund ----------------------------------------------------
  state::WorldState ws;
  const Address ballot = Address::from_id(0xB0117);
  const Address alice = Address::from_id(0xA11CE);
  const Address bob = Address::from_id(0xB0B);
  ws.set_code(ballot, code);
  ws.set(state::StateKey::balance(alice), U256{1'000'000'000});
  ws.set(state::StateKey::balance(bob), U256{1'000'000'000});

  evm::BlockContext block;
  block.number = 1;
  block.coinbase = Address::from_id(0xFEE);

  // ---- two voters, two transactions --------------------------------------
  auto vote = [&](const Address& voter, std::uint64_t candidate,
                  std::uint64_t nonce) {
    chain::Transaction tx;
    tx.from = voter;
    tx.to = ballot;
    tx.nonce = nonce;
    tx.gas_limit = 200'000;
    tx.gas_price = U256{1};
    const U256 word{candidate};
    const auto be = word.to_be_bytes();
    tx.data.assign(be.begin(), be.end());

    const state::WorldStateView view(ws);
    state::ExecBuffer buffer(view);
    const evm::TxExecResult r = evm::execute_transaction(buffer, block, tx);
    std::printf("%s votes for candidate %llu: status=%s gas=%llu\n",
                voter.to_hex().c_str(),
                static_cast<unsigned long long>(candidate),
                r.status == evm::TxStatus::kIncluded ? "included" : "failed",
                static_cast<unsigned long long>(r.gas_used));

    // The conflict keys BlockPilot would use for this transaction:
    std::printf("  reads:\n");
    for (const auto& key : buffer.sorted_read_keys())
      std::printf("    %s\n", key.to_string().c_str());
    std::printf("  writes:\n");
    for (const auto& [key, value] : buffer.write_set())
      std::printf("    %s = %s\n", key.to_string().c_str(),
                  value.to_hex().c_str());

    for (const auto& [key, value] : buffer.write_set()) ws.set(key, value);
  };

  vote(alice, 1, 0);
  vote(bob, 2, 0);
  vote(alice, 1, 1);

  // ---- inspect final tallies ---------------------------------------------
  std::printf("\ncandidate 1: %s votes\n",
              ws.get(state::StateKey::storage(ballot, U256{1})).to_hex().c_str());
  std::printf("candidate 2: %s votes\n",
              ws.get(state::StateKey::storage(ballot, U256{2})).to_hex().c_str());
  std::printf("turnout:     %s\n",
              ws.get(state::StateKey::storage(ballot, U256{0xffff})).to_hex().c_str());
  std::printf("state root:  %s\n", ws.state_root().to_hex().c_str());

  std::printf(
      "\nNote the shared `turnout` slot: every vote writes it, so ALL votes\n"
      "conflict at slot level — a one-slot design decision that would chain\n"
      "an entire block, exactly the hotspot anti-pattern of §5.5.\n");
  return 0;
}
