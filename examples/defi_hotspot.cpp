// DeFi hotspot walkthrough — the scenario that motivates §5.5.
//
// A single Uniswap-style pool absorbs a growing share of each block's
// transactions.  As the hotspot share rises, every swap chains on the
// pool's reserve slots, the largest conflict subgraph swells, and parallel
// speedup collapses toward serial — exactly Figure 8's phenomenon, shown
// here end-to-end on live blocks.
//
//   ./build/examples/defi_hotspot
#include <cstdio>

#include "core/blockpilot.hpp"

using namespace blockpilot;

namespace {

evm::BlockContext make_ctx() {
  evm::BlockContext ctx;
  ctx.number = 1;
  ctx.timestamp = 1'700'000'000;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

}  // namespace

int main() {
  std::printf("DeFi hotspot demo: one AMM pool, growing swap share\n");
  std::printf("%12s %10s %12s %14s %16s\n", "swap-share", "txs",
              "subgraphs", "largest-sub%", "speedup@16thr");

  ThreadPool workers(4);
  for (const double share : {0.0, 0.10, 0.25, 0.50, 0.75, 0.95}) {
    workload::WorkloadConfig config = workload::preset_mainnet();
    config.seed = 7;
    config.num_dex = 1;  // ONE pool: every swap conflicts with every swap
    config.dex_fraction = share;
    config.token_fraction = std::min(0.42, 1.0 - share);
    workload::WorkloadGenerator gen(config);
    const state::WorldState genesis = gen.genesis();

    // Build an honest block serially, then watch the validator schedule it.
    const auto txs = gen.next_batch(120);
    const core::SerialResult serial =
        core::execute_serial(genesis, make_ctx(), std::span(txs));
    const chain::Block block =
        core::seal_block(make_ctx(), serial.exec, serial.included);

    core::ValidatorConfig vcfg;
    vcfg.threads = 16;
    core::BlockValidator validator(vcfg);
    const auto outcome =
        validator.validate(genesis, block, serial.exec.profile, workers);
    if (!outcome.valid) {
      std::printf("unexpected rejection: %s\n", outcome.reject_reason.c_str());
      return 1;
    }

    std::printf("%11.0f%% %10zu %12zu %13.1f%% %15.2fx\n", share * 100.0,
                block.transactions.size(), outcome.stats.subgraphs,
                outcome.stats.largest_subgraph_ratio * 100.0,
                outcome.stats.virtual_speedup());
  }

  std::printf(
      "\nTakeaway: contract developers have no incentive to avoid storage\n"
      "bottlenecks under serial EVMs (§5.5) — but under BlockPilot the\n"
      "hotspot pool visibly throttles the whole block's throughput.\n");
  return 0;
}
