// bpctl: command-line driver for BlockPilot experiments.
//
//   bpctl chain  [--heights N] [--threads T] [--preset NAME] [--txs N]
//       run a propose -> validate -> commit chain, print per-height stats
//   bpctl sweep  [--blocks N] [--preset NAME]
//       thread-count sweep for proposer and validator on one workload
//   bpctl export --out FILE [--heights N] [--preset NAME]
//       build a chain and archive it to FILE
//   bpctl import --in FILE [--preset NAME]
//       replay an archive into a fresh node and verify every block
//
// Presets: mainnet (default), low, high, nft.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "chain/archive.hpp"
#include "core/blockpilot.hpp"

using namespace blockpilot;

namespace {

struct Options {
  std::string command;
  std::uint64_t heights = 5;
  std::size_t threads = 8;
  std::size_t txs = 0;  // 0 = preset default
  int blocks = 10;
  std::string preset = "mainnet";
  std::string file;
};

workload::WorkloadConfig preset_by_name(const std::string& name) {
  if (name == "low") return workload::preset_low_conflict();
  if (name == "high") return workload::preset_high_conflict();
  if (name == "nft") return workload::preset_nft_drop();
  return workload::preset_mainnet();
}

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--heights") {
      opt.heights = std::stoull(value);
    } else if (flag == "--threads") {
      opt.threads = std::stoul(value);
    } else if (flag == "--txs") {
      opt.txs = std::stoul(value);
    } else if (flag == "--blocks") {
      opt.blocks = std::stoi(value);
    } else if (flag == "--preset") {
      opt.preset = value;
    } else if (flag == "--out" || flag == "--in") {
      opt.file = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

workload::WorkloadGenerator make_generator(const Options& opt) {
  workload::WorkloadConfig wc = preset_by_name(opt.preset);
  if (opt.txs != 0) wc.txs_per_block = opt.txs;
  return workload::WorkloadGenerator(wc);
}

int cmd_chain(const Options& opt) {
  auto gen = make_generator(opt);
  chain::Blockchain chain(gen.genesis());
  ThreadPool workers(4);
  core::ProposerConfig pc;
  pc.threads = opt.threads;
  core::OccWsiProposer proposer(pc);
  core::ValidatorConfig vc;
  vc.threads = opt.threads;
  core::BlockValidator validator(vc);

  std::printf("%7s %5s %9s %8s %10s %10s  %s\n", "height", "txs", "gas(M)",
              "aborts", "prop-spdp", "val-spdp", "state root");
  for (std::uint64_t h = 1; h <= opt.heights; ++h) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());
    core::ProposedBlock blk =
        proposer.propose(*chain.head_state(), ctx_for(h), pool, workers);
    blk.block.header.parent_hash = chain.head().header.hash();

    const auto outcome = validator.validate(*chain.head_state(), blk.block,
                                            blk.profile, workers);
    if (!outcome.valid) {
      std::printf("height %llu REJECTED: %s\n",
                  static_cast<unsigned long long>(h),
                  outcome.reject_reason.c_str());
      return 1;
    }
    chain.commit_block(blk.block, outcome.exec.post_state,
                       outcome.exec.receipts);
    std::printf("%7llu %5zu %9.2f %8llu %9.2fx %9.2fx  %.18s...\n",
                static_cast<unsigned long long>(h),
                blk.block.transactions.size(),
                static_cast<double>(blk.block.header.gas_used) / 1e6,
                static_cast<unsigned long long>(blk.stats.aborts),
                blk.stats.virtual_speedup(),
                outcome.stats.virtual_speedup(),
                blk.block.header.state_root.to_hex().c_str());
  }
  std::printf("done: height %llu, %zu blocks stored\n",
              static_cast<unsigned long long>(chain.height()),
              chain.block_count());
  return 0;
}

int cmd_sweep(const Options& opt) {
  auto gen = make_generator(opt);
  const state::WorldState genesis = gen.genesis();
  ThreadPool workers(1);

  // Pre-build honest blocks for validator runs.
  std::vector<core::BlockBundle> bundles;
  std::vector<std::vector<chain::Transaction>> batches;
  for (int b = 0; b < opt.blocks; ++b) {
    const auto txs = gen.next_block();
    const auto serial = core::execute_serial(genesis, ctx_for(1), std::span(txs));
    core::BlockBundle bundle;
    bundle.block = core::seal_block(ctx_for(1), serial.exec, serial.included);
    bundle.profile = serial.exec.profile;
    bundles.push_back(std::move(bundle));
    batches.push_back(txs);
  }

  std::printf("preset=%s blocks=%d\n", opt.preset.c_str(), opt.blocks);
  std::printf("%8s %14s %14s\n", "threads", "proposer", "validator");
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    double prop = 0, val = 0;
    for (int b = 0; b < opt.blocks; ++b) {
      txpool::TxPool pool;
      pool.add_all(batches[static_cast<std::size_t>(b)]);
      core::ProposerConfig pc;
      pc.threads = threads;
      const auto blk = core::OccWsiProposer(pc).propose(genesis, ctx_for(1),
                                                        pool, workers);
      prop += blk.stats.virtual_speedup();

      core::ValidatorConfig vc;
      vc.threads = threads;
      const auto& bundle = bundles[static_cast<std::size_t>(b)];
      const auto outcome = core::BlockValidator(vc).validate(
          genesis, bundle.block, bundle.profile, workers);
      if (!outcome.valid) {
        std::printf("validation failed: %s\n", outcome.reject_reason.c_str());
        return 1;
      }
      val += outcome.stats.virtual_speedup();
    }
    std::printf("%8zu %13.2fx %13.2fx\n", threads, prop / opt.blocks,
                val / opt.blocks);
  }
  return 0;
}

int cmd_export(const Options& opt) {
  if (opt.file.empty()) {
    std::fprintf(stderr, "export needs --out FILE\n");
    return 2;
  }
  std::ofstream out(opt.file, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", opt.file.c_str());
    return 2;
  }
  auto gen = make_generator(opt);
  chain::Blockchain chain(gen.genesis());
  ThreadPool workers(4);
  core::ProposerConfig pc;
  pc.threads = opt.threads;
  core::OccWsiProposer proposer(pc);
  chain::BlockArchiveWriter writer(out);

  for (std::uint64_t h = 1; h <= opt.heights; ++h) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());
    core::ProposedBlock blk =
        proposer.propose(*chain.head_state(), ctx_for(h), pool, workers);
    blk.block.header.parent_hash = chain.head().header.hash();
    writer.append({blk.block, blk.profile});
    chain.commit_block(blk.block, blk.post_state, blk.receipts);
  }
  std::printf("exported %zu blocks to %s (head root %s)\n", writer.entries(),
              opt.file.c_str(),
              chain.head().header.state_root.to_hex().c_str());
  return 0;
}

int cmd_import(const Options& opt) {
  if (opt.file.empty()) {
    std::fprintf(stderr, "import needs --in FILE\n");
    return 2;
  }
  std::ifstream in(opt.file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.file.c_str());
    return 2;
  }
  auto gen = make_generator(opt);
  chain::Blockchain chain(gen.genesis());
  ThreadPool workers(4);
  core::ValidatorConfig vc;
  vc.threads = opt.threads;
  core::BlockValidator validator(vc);

  chain::BlockArchiveReader reader(in);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s is not a BlockPilot archive\n",
                 opt.file.c_str());
    return 2;
  }
  std::size_t imported = 0;
  while (auto ann = reader.next()) {
    const auto outcome = validator.validate(*chain.head_state(), ann->block,
                                            ann->profile, workers);
    if (!outcome.valid) {
      std::printf("block %zu INVALID: %s\n", imported,
                  outcome.reject_reason.c_str());
      return 1;
    }
    chain.commit_block(ann->block, outcome.exec.post_state,
                       outcome.exec.receipts);
    ++imported;
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "archive corrupted after %zu blocks\n", imported);
    return 1;
  }
  std::printf("imported and validated %zu blocks; head root %s\n", imported,
              chain.head().header.state_root.to_hex().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: bpctl chain|sweep|export|import [flags]\n"
                 "  --heights N --threads T --txs N --blocks N\n"
                 "  --preset mainnet|low|high|nft --out FILE --in FILE\n");
    return 2;
  }
  if (opt.command == "chain") return cmd_chain(opt);
  if (opt.command == "sweep") return cmd_sweep(opt);
  if (opt.command == "export") return cmd_export(opt);
  if (opt.command == "import") return cmd_import(opt);
  std::fprintf(stderr, "unknown command: %s\n", opt.command.c_str());
  return 2;
}
