// Fork-heavy validation with the multi-block pipeline (§3.4, §4.3, Fig. 5).
//
// In a Byzantine network, several proposers produce sibling blocks at the
// same height; validators must validate all of them (uncle blocks still
// earn rewards and secure the chain).  This example:
//   * runs three independent proposers at each height (forks!);
//   * validates all siblings concurrently through the pipeline;
//   * commits every valid sibling, follows the canonical branch, and
//     reports the pipeline's aggregate speedup vs one-at-a-time validation.
//
//   ./build/examples/fork_pipeline
#include <cstdio>

#include "core/blockpilot.hpp"

using namespace blockpilot;

namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

}  // namespace

int main() {
  constexpr std::size_t kProposers = 3;
  constexpr std::uint64_t kHeights = 4;

  workload::WorkloadConfig config = workload::preset_mainnet();
  config.seed = 99;
  config.txs_per_block = 80;
  workload::WorkloadGenerator gen(config);
  chain::Blockchain chain(gen.genesis());
  ThreadPool workers(4);

  core::ProposerConfig pcfg;
  pcfg.threads = 8;
  core::PipelineConfig plcfg;
  plcfg.workers = 16;

  for (std::uint64_t height = 1; height <= kHeights; ++height) {
    const auto parent_hash = chain.head().header.hash();
    const auto parent_state = chain.head_state();

    // ---- kProposers competing proposers (each drains its own mempool
    // view; in a real network they see different pending sets) ----
    std::vector<core::BlockBundle> siblings;
    for (std::size_t p = 0; p < kProposers; ++p) {
      txpool::TxPool pool;
      pool.add_all(gen.next_block());  // distinct tx sets per proposer
      core::OccWsiProposer proposer(pcfg);
      core::ProposedBlock blk =
          proposer.propose(*parent_state, ctx_for(height), pool, workers);
      blk.block.header.parent_hash = parent_hash;
      siblings.push_back({std::move(blk.block), std::move(blk.profile)});
    }

    // ---- validate ALL siblings concurrently through the pipeline ----
    core::ValidatorPipeline pipeline(plcfg);
    const core::PipelineResult result =
        pipeline.process_height(*parent_state, std::span(siblings), workers);

    std::size_t valid = 0;
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      const auto& outcome = result.outcomes[i];
      if (!outcome.valid) {
        std::printf("  height %llu sibling %zu REJECTED: %s\n",
                    static_cast<unsigned long long>(height), i,
                    outcome.reject_reason.c_str());
        continue;
      }
      ++valid;
      chain.commit_block(siblings[i].block, outcome.exec.post_state);
    }
    std::printf("height %llu: %zu/%zu siblings valid, pipeline speedup "
                "%.2fx over serial validation of all forks\n",
                static_cast<unsigned long long>(height), valid,
                siblings.size(), result.stats.virtual_speedup());
  }

  std::printf("\nfinal chain height: %llu   blocks stored (incl. uncles): "
              "%zu   head root: %s\n",
              static_cast<unsigned long long>(chain.height()),
              chain.block_count() - 1,
              chain.head().header.state_root.to_hex().c_str());
  return 0;
}
