// Quickstart: the full BlockPilot lifecycle in ~100 lines.
//
//   1. create a genesis world state and fund accounts;
//   2. submit transactions to the pending pool;
//   3. PROPOSE a block with the parallel OCC-WSI engine (Algorithm 1);
//   4. VALIDATE it with the scheduled parallel validator (Algorithm 2);
//   5. COMMIT it to the chain and inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/blockpilot.hpp"

using namespace blockpilot;

int main() {
  // ---- 1. genesis -------------------------------------------------------
  // The workload generator doubles as a convenient genesis builder: funded
  // externally-owned accounts plus deployed token/DEX contracts.
  workload::WorkloadConfig config = workload::preset_mainnet();
  config.seed = 2026;
  workload::WorkloadGenerator gen(config);
  chain::Blockchain chain(gen.genesis());
  std::printf("genesis root: %s\n",
              chain.genesis().header.state_root.to_hex().c_str());

  // ---- 2. pending transactions ------------------------------------------
  txpool::TxPool pool;
  pool.add_all(gen.next_block());  // a mainnet-like batch (~132 txs)
  std::printf("pending pool: %zu transactions\n", pool.size());

  // ---- 3. propose in parallel (OCC-WSI) ----------------------------------
  evm::BlockContext ctx;
  ctx.number = 1;
  ctx.timestamp = 1'700'000'000;
  ctx.coinbase = Address::from_id(0xC0FFEE);

  ThreadPool workers(4);
  core::ProposerConfig pcfg;
  pcfg.threads = 8;  // 8 virtual workers (deterministic virtual-time mode)
  core::OccWsiProposer proposer(pcfg);
  core::ProposedBlock proposed =
      proposer.propose(*chain.head_state(), ctx, pool, workers);
  proposed.block.header.parent_hash = chain.head().header.hash();

  std::printf("proposed block #%llu: %zu txs, %llu gas, %llu aborts, "
              "proposer speedup %.2fx\n",
              static_cast<unsigned long long>(proposed.block.header.number),
              proposed.block.transactions.size(),
              static_cast<unsigned long long>(proposed.block.header.gas_used),
              static_cast<unsigned long long>(proposed.stats.aborts),
              proposed.stats.virtual_speedup());

  // ---- 4. validate in parallel (dependency-graph schedule) ---------------
  core::ValidatorConfig vcfg;
  vcfg.threads = 8;
  core::BlockValidator validator(vcfg);
  const core::ValidationOutcome outcome = validator.validate(
      *chain.head_state(), proposed.block, proposed.profile, workers);

  if (!outcome.valid) {
    std::printf("block REJECTED: %s\n", outcome.reject_reason.c_str());
    return 1;
  }
  std::printf("block validated: %zu subgraphs, largest %.0f%% of block, "
              "validator speedup %.2fx\n",
              outcome.stats.subgraphs,
              outcome.stats.largest_subgraph_ratio * 100.0,
              outcome.stats.virtual_speedup());

  // ---- 5. commit (with receipts, so logs stay queryable) -----------------
  chain.commit_block(proposed.block, outcome.exec.post_state,
                     outcome.exec.receipts);
  std::printf("chain height: %llu, head root: %s\n",
              static_cast<unsigned long long>(chain.height()),
              chain.head().header.state_root.to_hex().c_str());

  // Receipts are available per transaction.
  std::size_t reverted = 0;
  for (const auto& receipt : outcome.exec.receipts)
    if (!receipt.success) ++reverted;
  std::printf("receipts: %zu ok, %zu reverted\n",
              outcome.exec.receipts.size() - reverted, reverted);
  return 0;
}
