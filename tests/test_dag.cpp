#include "sched/dag.hpp"

#include <gtest/gtest.h>

#include "core/blockpilot.hpp"

namespace blockpilot::sched {
namespace {

using chain::BlockProfile;
using chain::TxProfile;
using state::StateKey;

const Address kA = Address::from_id(1);
const Address kB = Address::from_id(2);
const Address kC = Address::from_id(3);

TxProfile rw(const std::vector<Address>& reads,
             const std::vector<Address>& writes, std::uint64_t gas_amount) {
  TxProfile p;
  for (const auto& a : reads) p.reads.push_back(StateKey::balance(a));
  for (const auto& a : writes)
    p.writes.emplace_back(StateKey::balance(a), U256{1});
  p.gas_used = gas_amount;
  return p;
}

TEST(TxDag, RawDependency) {
  BlockProfile profile;
  profile.txs = {rw({}, {kA}, 10), rw({kA}, {}, 10)};  // write then read
  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  EXPECT_TRUE(dag.preds[0].empty());
  EXPECT_EQ(dag.preds[1], (std::vector<std::size_t>{0}));
}

TEST(TxDag, WawDependency) {
  BlockProfile profile;
  profile.txs = {rw({}, {kA}, 10), rw({}, {kA}, 10)};
  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  EXPECT_EQ(dag.preds[1], (std::vector<std::size_t>{0}));
}

TEST(TxDag, WarDependency) {
  BlockProfile profile;
  profile.txs = {rw({kA}, {}, 10), rw({}, {kA}, 10)};  // read then write
  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  EXPECT_EQ(dag.preds[1], (std::vector<std::size_t>{0}));
}

TEST(TxDag, ReadersDoNotDependOnEachOther) {
  BlockProfile profile;
  profile.txs = {rw({}, {kA}, 10), rw({kA}, {}, 10), rw({kA}, {}, 10)};
  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  // Both readers depend on the writer but not on each other.
  EXPECT_EQ(dag.preds[1], (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.preds[2], (std::vector<std::size_t>{0}));
}

TEST(TxDag, WriterWaitsForAllReaders) {
  BlockProfile profile;
  profile.txs = {rw({}, {kA}, 10), rw({kA}, {}, 10), rw({kA}, {}, 10),
                 rw({}, {kA}, 10)};
  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  // WAR edges to both readers plus the (transitively redundant but correct)
  // WAW edge to the previous writer.
  EXPECT_EQ(dag.preds[3], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TxDag, CriticalPathIsChainLength) {
  BlockProfile profile;
  // A chain of 4 writes to kA (100 gas each) + one independent tx.
  for (int i = 0; i < 4; ++i) profile.txs.push_back(rw({}, {kA}, 100));
  profile.txs.push_back(rw({}, {kB}, 50));
  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  EXPECT_EQ(dag.critical_path_gas(), 400u);
}

TEST(TxDag, DagIsFinerThanSubgraphs) {
  // Star pattern: one hub writer, then many readers of the hub, each also
  // writing its own account.  Subgraph scheduling chains ALL of them (one
  // component); the DAG lets the readers run in parallel after the hub.
  BlockProfile profile;
  profile.txs.push_back(rw({}, {kA}, 100));  // hub
  for (std::uint64_t i = 0; i < 8; ++i) {
    profile.txs.push_back(
        rw({kA}, {Address::from_id(100 + i)}, 100));  // fan-out
  }

  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.subgraphs.size(), 1u);  // one component: serial chain
  EXPECT_EQ(graph.critical_path_gas(), 900u);

  const TxDag dag = build_tx_dag(profile, Granularity::kAccount);
  EXPECT_EQ(dag.critical_path_gas(), 200u);  // hub + one reader level
  EXPECT_EQ(dag_makespan(dag, 8), 200u);
  EXPECT_EQ(dag_makespan(dag, 4), 300u);  // 8 readers over 4 workers
  EXPECT_EQ(dag_makespan(dag, 1), 900u);  // degenerates to serial
}

TEST(TxDag, MakespanBounds) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  const state::WorldState genesis = gen.genesis();
  evm::BlockContext ctx;
  ctx.coinbase = Address::from_id(0xFEE);
  const auto txs = gen.next_batch(80);
  const auto serial = core::execute_serial(genesis, ctx, std::span(txs));

  const TxDag dag =
      build_tx_dag(serial.exec.profile, Granularity::kAccount);
  const auto graph =
      build_dependency_graph(serial.exec.profile, Granularity::kAccount);

  std::uint64_t total = 0;
  for (const auto g : dag.gas) total += g;

  for (const std::size_t workers : {1u, 2u, 4u, 8u, 16u}) {
    const std::uint64_t m = dag_makespan(dag, workers);
    EXPECT_GE(m, dag.critical_path_gas());
    EXPECT_GE(m, total / workers);
    EXPECT_LE(m, total);
  }
  // The DAG's critical path can never exceed the subgraph critical path
  // (DAG chains are paths inside components).
  EXPECT_LE(dag.critical_path_gas(), graph.critical_path_gas());
  // One worker degenerates to serial execution exactly.
  EXPECT_EQ(dag_makespan(dag, 1), total);
}

}  // namespace
}  // namespace blockpilot::sched
