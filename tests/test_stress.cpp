// Concurrency stress tests for the commit subsystem and its supporting
// primitives.  Registered under the `stress` ctest label (and `commit`, so
// the tsan-commit preset picks them up): the interesting assertions here
// are the ones ThreadSanitizer makes — copies taken while commits are in
// flight, concurrent rooters sharing persistent tries and seed cells, and
// producer/consumer hammering of ThreadPool / MpmcQueue.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "commit/commit_pipeline.hpp"
#include "state/versioned_state.hpp"
#include "state/world_state.hpp"
#include "support/mpmc_queue.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace blockpilot {
namespace {

using state::StateKey;
using state::WorldState;

Address addr_of(std::uint64_t id) { return Address::from_id(id); }

void random_writes(Xoshiro256& rng, WorldState& ws, int count) {
  for (int i = 0; i < count; ++i) {
    const Address addr = addr_of(1 + rng() % 48);
    switch (rng() % 6) {
      case 0:
        ws.set(StateKey::balance(addr), U256{rng() % 500});
        break;
      case 1:
        ws.set(StateKey::nonce(addr), U256{rng() % 32});
        break;
      default: {
        const U256 val = (rng() % 5 == 0) ? U256{} : U256{rng() % 10'000};
        ws.set(StateKey::storage(addr, U256{rng() % 12}), val);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WorldState: copy / commit overlap

TEST(StressWorldState, CopiesTakenDuringInFlightCommitStayCorrect) {
  // One thread computes the root (the in-flight commit) while the main
  // thread repeatedly copies the same state and a second thread roots it
  // again concurrently.  Every copy must produce the oracle root.
  Xoshiro256 rng(0xAB1E);
  WorldState ws;
  random_writes(rng, ws, 256);
  const Hash256 oracle = ws.state_root_full_rebuild();

  for (int round = 0; round < 4; ++round) {
    random_writes(rng, ws, 64);
    const Hash256 expect = ws.state_root_full_rebuild();

    std::vector<WorldState> copies;
    {
      std::jthread rooter1([&ws] { (void)ws.state_root(); });
      std::jthread rooter2([&ws] { (void)ws.state_root(); });
      for (int c = 0; c < 6; ++c) copies.emplace_back(ws);
    }  // join rooters

    EXPECT_EQ(ws.state_root(), expect) << "round " << round;
    for (auto& copy : copies)
      EXPECT_EQ(copy.state_root(), expect) << "round " << round;
  }
  (void)oracle;
}

TEST(StressWorldState, ConcurrentRootersAgreeOnOneObject) {
  Xoshiro256 rng(0xCAFE);
  WorldState ws;
  for (int round = 0; round < 6; ++round) {
    random_writes(rng, ws, 96);
    const Hash256 expect = ws.state_root_full_rebuild();
    std::vector<Hash256> roots(4);
    {
      std::vector<std::jthread> rooters;
      for (std::size_t t = 0; t < roots.size(); ++t)
        rooters.emplace_back([&ws, &roots, t] { roots[t] = ws.state_root(); });
    }
    for (const Hash256& r : roots) EXPECT_EQ(r, expect) << "round " << round;
  }
}

TEST(StressWorldState, ForksCommittingConcurrentlyShareSeeds) {
  // Fresh accounts with pending storage writes are forked, and both forks
  // commit at the same time: the seed cells' fill-once / adopt-many path
  // runs under real contention.  Roots must match the oracle either way.
  Xoshiro256 rng(0x5EED);
  WorldState head;
  random_writes(rng, head, 64);
  for (int round = 0; round < 6; ++round) {
    // Touch a batch of brand-new accounts so both forks see them fresh.
    for (std::uint64_t i = 0; i < 6; ++i) {
      const Address fresh = addr_of(1000 + round * 16 + i);
      head.set(StateKey::storage(fresh, U256{i}), U256{round * 100 + i + 1});
      head.set(StateKey::balance(fresh), U256{1});
    }
    WorldState a = head;
    WorldState b = head;
    Hash256 ra, rb;
    {
      std::jthread ta([&a, &ra] { ra = a.state_root(); });
      std::jthread tb([&b, &rb] { rb = b.state_root(); });
    }
    EXPECT_EQ(ra, rb) << "round " << round;
    EXPECT_EQ(ra, head.state_root_full_rebuild()) << "round " << round;
    random_writes(rng, head, 24);
    head = (round % 2) ? std::move(a) : std::move(b);
    random_writes(rng, head, 24);
  }
  EXPECT_EQ(head.state_root(), head.state_root_full_rebuild());
}

TEST(StressWorldState, CommitPipelineOverlapsCopiesAndSubmissions) {
  // Chained submissions through a real pool while the main thread keeps
  // copying the just-submitted (immutable) states.
  ThreadPool pool(2);
  commit::CommitPipeline pipe(&pool);
  Xoshiro256 rng(0xF10);

  auto parent = std::make_shared<const WorldState>();
  std::vector<commit::CommitHandle> handles;
  std::vector<Hash256> oracles;
  for (int h = 0; h < 8; ++h) {
    auto next = std::make_shared<WorldState>(*parent);
    random_writes(rng, *next, 48);
    std::shared_ptr<const WorldState> sealed = std::move(next);
    handles.push_back(pipe.submit(sealed));
    oracles.push_back(sealed->state_root_full_rebuild());
    // Copy while the pipeline may still be hashing this very state.
    const WorldState snapshot(*sealed);
    EXPECT_EQ(snapshot.state_root_full_rebuild(), oracles.back());
    parent = std::move(sealed);
  }
  for (std::size_t h = 0; h < handles.size(); ++h) {
    const auto& res = handles[h].get();
    EXPECT_EQ(res.state_root, oracles[h]) << "height " << h;
    if (h > 0) EXPECT_GT(res.sequence, handles[h - 1].get().sequence);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool / MpmcQueue hammering

TEST(StressSupport, ThreadPoolHammerFromManyProducers) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kProducers = 8;
  constexpr int kTasksEach = 500;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &sum, p] {
        for (int t = 0; t < kTasksEach; ++t)
          pool.submit([&sum, p, t] {
            sum.fetch_add(static_cast<std::uint64_t>(p) * kTasksEach + t + 1,
                          std::memory_order_relaxed);
          });
      });
    }
  }  // join producers
  pool.wait_idle();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kTasksEach;
  EXPECT_EQ(sum.load(), kTotal * (kTotal + 1) / 2);
}

TEST(StressSupport, ThreadPoolNestedSubmissionsDrain) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  for (int t = 0; t < 64; ++t) {
    pool.submit([&pool, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 128);
}

TEST(StressSupport, MpmcQueueConservesItemsUnderContention) {
  MpmcQueue<std::uint64_t> queue(64);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kItemsEach = 2000;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};

  std::vector<std::jthread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &consumed_sum, &consumed_count] {
      while (auto item = queue.pop()) {
        consumed_sum.fetch_add(*item, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, p] {
        for (std::uint64_t i = 0; i < kItemsEach; ++i)
          ASSERT_TRUE(queue.push(p * kItemsEach + i + 1));
      });
    }
  }  // join producers
  queue.close();
  consumers.clear();  // join consumers

  constexpr std::uint64_t kTotal = kProducers * kItemsEach;
  EXPECT_EQ(consumed_count.load(), kTotal);
  EXPECT_EQ(consumed_sum.load(), kTotal * (kTotal + 1) / 2);
}

TEST(StressSupport, MpmcQueueMixedPopAndTryPop) {
  MpmcQueue<int> queue(16);
  std::atomic<int> got{0};
  std::vector<std::jthread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&queue, &got, c] {
      for (;;) {
        if (c == 0) {
          // One consumer spins on try_pop to exercise the non-blocking path.
          if (auto item = queue.try_pop()) {
            got.fetch_add(1, std::memory_order_relaxed);
          } else if (queue.closed() && queue.size() == 0) {
            return;
          } else {
            std::this_thread::yield();
          }
        } else {
          auto item = queue.pop();
          if (!item.has_value()) return;
          got.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 3000; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  consumers.clear();
  EXPECT_EQ(got.load(), 3000);
}

// ---------------------------------------------------------------------------
// Sharded VersionedState: lock-free read/validation paths racing commits

TEST(StressVersionedState, SnapshotReadersRacingCommitterSeeOracleValues) {
  // N reader threads hammer snapshot reads (through per-thread ReadCaches,
  // like proposer executors) while one committer appends versions.  Each
  // reader pins the snapshot it loaded and every value it observes must
  // equal the serial oracle's value at that snapshot — regardless of how
  // far the committer has advanced.  Under TSan this also proves the
  // stamp-table fast paths and stripe publication order are race-free.
  constexpr std::uint64_t kVersions = 200;
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kKeys = 96;

  state::WorldState base;
  std::vector<StateKey> keys;
  for (std::size_t a = 0; a < kKeys / 2; ++a) {
    keys.push_back(StateKey::balance(addr_of(a + 1)));
    keys.push_back(StateKey::storage(addr_of(a + 1), U256{a}));
  }
  for (std::size_t i = 0; i < keys.size(); ++i)
    base.set(keys[i], U256{i + 1000});

  // Pre-build the commit schedule and the oracle: value_at[v][i] is the
  // serial value of keys[i] after versions 1..v applied in order.
  Xoshiro256 rng(0x57AE55);
  std::vector<std::vector<std::pair<StateKey, U256>>> schedule;
  std::vector<std::vector<U256>> value_at(kVersions + 1);
  value_at[0].resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    value_at[0][i] = base.get(keys[i]);
  for (std::uint64_t v = 1; v <= kVersions; ++v) {
    value_at[v] = value_at[v - 1];
    std::vector<std::pair<StateKey, U256>> ws;
    std::vector<bool> used(keys.size(), false);
    while (ws.size() < 3) {
      const std::size_t i = rng.below(keys.size());
      if (used[i]) continue;
      used[i] = true;
      const U256 val{v * 1'000'000 + i};
      ws.emplace_back(keys[i], val);
      value_at[v][i] = val;
    }
    schedule.push_back(std::move(ws));
  }

  state::VersionedState vs(base);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rd(0xFEED + r);
      state::ReadCache cache;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t snap = vs.committed_version();
        for (int probe = 0; probe < 16; ++probe) {
          const std::size_t i = rd.below(keys.size());
          const U256 got = vs.read_at(keys[i], snap, cache);
          ASSERT_EQ(got, value_at[snap][i])
              << "key " << i << " at snapshot " << snap;
          // Validation-path check, negative direction only (a racing commit
          // may legitimately raise the stamp at any moment): `now` is loaded
          // BEFORE the scan, so if newer_than finds no version above `snap`,
          // no version in (snap, now] touched the key and the oracle values
          // must agree.
          const std::uint64_t now = vs.committed_version();
          if (!vs.newer_than(keys[i], snap)) {
            ASSERT_EQ(value_at[now][i], value_at[snap][i]);
          }
        }
      }
    });
  }

  for (std::uint64_t v = 1; v <= kVersions; ++v) {
    vs.commit(schedule[v - 1], v);
    if (v % 32 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  readers.clear();

  // Quiescent cross-check: final snapshot equals the oracle everywhere.
  state::ReadCache cache;
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(vs.read_at(keys[i], kVersions, cache), value_at[kVersions][i]);
}

}  // namespace
}  // namespace blockpilot
