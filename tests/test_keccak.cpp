#include "crypto/keccak.hpp"

#include <gtest/gtest.h>

#include "types/address.hpp"

namespace blockpilot::crypto {
namespace {

std::string hex(const Digest& d) {
  return blockpilot::hex_encode(std::span(d));
}

TEST(Keccak, EmptyInput) {
  // The canonical Keccak-256("") digest — also Ethereum's empty code hash.
  EXPECT_EQ(hex(keccak256("")),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, Abc) {
  EXPECT_EQ(hex(keccak256("abc")),
            "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak, QuickBrownFox) {
  EXPECT_EQ(hex(keccak256("The quick brown fox jumps over the lazy dog")),
            "0x4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15");
}

TEST(Keccak, EmptyRlpString) {
  // keccak256(0x80): the canonical empty-MPT root.
  const std::uint8_t byte = 0x80;
  EXPECT_EQ(hex(keccak256(std::span(&byte, 1))),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(Keccak, IncrementalMatchesOneShot) {
  const std::string payload(1000, 'x');
  Keccak256 h;
  // Feed in awkward chunk sizes crossing the 136-byte rate boundary.
  std::size_t pos = 0;
  for (const std::size_t chunk : {1ul, 7ul, 135ul, 136ul, 137ul, 500ul}) {
    const std::size_t take = std::min(chunk, payload.size() - pos);
    h.update(std::span(reinterpret_cast<const std::uint8_t*>(payload.data()) + pos,
                       take));
    pos += take;
  }
  h.update(std::span(reinterpret_cast<const std::uint8_t*>(payload.data()) + pos,
                     payload.size() - pos));
  EXPECT_EQ(h.finalize(), keccak256(payload));
}

TEST(Keccak, FinalizeResetsState) {
  Keccak256 h;
  h.update(std::span(reinterpret_cast<const std::uint8_t*>("abc"), 3));
  (void)h.finalize();
  EXPECT_EQ(h.finalize(), keccak256(""));  // fresh state after finalize
}

TEST(Keccak, RateBoundaryLengths) {
  // Exactly rate-sized and rate+-1 inputs exercise the padding edge cases.
  for (const std::size_t len : {135ul, 136ul, 137ul, 271ul, 272ul, 273ul}) {
    const std::string payload(len, 'q');
    Keccak256 h;
    h.update(std::span(reinterpret_cast<const std::uint8_t*>(payload.data()),
                       payload.size()));
    EXPECT_EQ(h.finalize(), keccak256(payload)) << "len=" << len;
  }
}

TEST(Keccak, DistinctInputsDistinctDigests) {
  EXPECT_NE(keccak256("a"), keccak256("b"));
  EXPECT_NE(keccak256(""), keccak256(std::string(1, '\0')));
}

}  // namespace
}  // namespace blockpilot::crypto
