#include "trie/mpt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "support/rng.hpp"

namespace blockpilot::trie {
namespace {

Bytes bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::span<const std::uint8_t> span_of(const Bytes& b) { return std::span(b); }

void put_str(MerklePatriciaTrie& t, std::string_view k, std::string_view v) {
  const Bytes kb = bytes(k), vb = bytes(v);
  t.put(std::span(kb), std::span(vb));
}

TEST(HexPrefix, EncodingRules) {
  // Yellow-paper examples: even extension, odd extension, even leaf, odd leaf.
  EXPECT_EQ(hex_prefix_encode(std::vector<std::uint8_t>{1, 2, 3, 4, 5}, false),
            (Bytes{0x11, 0x23, 0x45}));
  EXPECT_EQ(hex_prefix_encode(std::vector<std::uint8_t>{0, 1, 2, 3, 4, 5}, false),
            (Bytes{0x00, 0x01, 0x23, 0x45}));
  EXPECT_EQ(hex_prefix_encode(std::vector<std::uint8_t>{0xf, 1, 0xc, 0xb, 8},
                              true),
            (Bytes{0x3f, 0x1c, 0xb8}));
  EXPECT_EQ(hex_prefix_encode(std::vector<std::uint8_t>{0, 0xf, 1, 0xc, 0xb, 8},
                              true),
            (Bytes{0x20, 0x0f, 0x1c, 0xb8}));
}

TEST(Trie, EmptyRootIsCanonical) {
  MerklePatriciaTrie t;
  EXPECT_EQ(t.root_hash().to_hex(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trie, CanonicalFourKeyVector) {
  // The classic MPT example from the Ethereum wiki / reference tests.
  MerklePatriciaTrie t;
  put_str(t, "do", "verb");
  put_str(t, "dog", "puppy");
  put_str(t, "doge", "coin");
  put_str(t, "horse", "stallion");
  EXPECT_EQ(t.root_hash().to_hex(),
            "0x5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84");
}

TEST(Trie, GetReturnsStoredValues) {
  MerklePatriciaTrie t;
  put_str(t, "do", "verb");
  put_str(t, "dog", "puppy");
  put_str(t, "doge", "coin");
  const Bytes key = bytes("dog");
  const auto got = t.get(std::span(key));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes("puppy"));
  const Bytes missing = bytes("cat");
  EXPECT_FALSE(t.get(std::span(missing)).has_value());
  // Prefix of a stored key is not itself stored.
  const Bytes prefix = bytes("dogs");
  EXPECT_FALSE(t.get(std::span(prefix)).has_value());
}

TEST(Trie, OverwriteChangesRoot) {
  MerklePatriciaTrie t;
  put_str(t, "key", "value1");
  const Hash256 r1 = t.root_hash();
  put_str(t, "key", "value2");
  const Hash256 r2 = t.root_hash();
  EXPECT_NE(r1, r2);
  EXPECT_EQ(t.size(), 1u);
  put_str(t, "key", "value1");
  EXPECT_EQ(t.root_hash(), r1);
}

TEST(Trie, InsertionOrderIndependence) {
  const std::vector<std::pair<std::string, std::string>> kvs = {
      {"do", "verb"},   {"dog", "puppy"},     {"doge", "coin"},
      {"horse", "stallion"}, {"dodge", "car"}, {"dot", "point"},
      {"a", "1"},       {"ab", "2"},          {"abc", "3"},
  };
  MerklePatriciaTrie forward, backward, shuffled;
  for (const auto& [k, v] : kvs) put_str(forward, k, v);
  for (auto it = kvs.rbegin(); it != kvs.rend(); ++it)
    put_str(backward, it->first, it->second);
  std::vector<std::size_t> order(kvs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Xoshiro256 rng(99);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  for (const std::size_t i : order) put_str(shuffled, kvs[i].first, kvs[i].second);

  EXPECT_EQ(forward.root_hash(), backward.root_hash());
  EXPECT_EQ(forward.root_hash(), shuffled.root_hash());
}

TEST(Trie, EraseRestoresPriorRoot) {
  MerklePatriciaTrie t;
  put_str(t, "do", "verb");
  put_str(t, "dog", "puppy");
  const Hash256 before = t.root_hash();
  put_str(t, "doge", "coin");
  EXPECT_NE(t.root_hash(), before);
  const Bytes key = bytes("doge");
  t.erase(std::span(key));
  EXPECT_EQ(t.root_hash(), before);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Trie, EraseToEmpty) {
  MerklePatriciaTrie t;
  put_str(t, "alpha", "1");
  put_str(t, "beta", "2");
  const Bytes a = bytes("alpha"), b = bytes("beta");
  t.erase(std::span(a));
  t.erase(std::span(b));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.root_hash(), MerklePatriciaTrie::empty_root());
}

TEST(Trie, EmptyValueMeansErase) {
  MerklePatriciaTrie t;
  put_str(t, "k", "v");
  const Bytes key = bytes("k");
  t.put(std::span(key), std::span<const std::uint8_t>{});
  EXPECT_TRUE(t.empty());
}

TEST(Trie, EraseMissingKeyIsNoop) {
  MerklePatriciaTrie t;
  put_str(t, "abc", "1");
  const Hash256 before = t.root_hash();
  for (const char* missing : {"ab", "abcd", "xyz", ""}) {
    const Bytes key = bytes(missing);
    t.erase(std::span(key));
  }
  EXPECT_EQ(t.root_hash(), before);
}

TEST(Trie, CopySemantics) {
  MerklePatriciaTrie a;
  put_str(a, "one", "1");
  put_str(a, "two", "2");
  MerklePatriciaTrie b = a;  // persistent copy (shares structure)
  put_str(b, "three", "3");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  const Bytes key = bytes("three");
  EXPECT_FALSE(a.get(std::span(key)).has_value());
  EXPECT_TRUE(b.get(std::span(key)).has_value());
}

TEST(SecureTrie, HashedKeysStillRoundTrip) {
  SecureTrie st;
  const Bytes key = bytes("account-key");
  const Bytes value = bytes("account-value");
  st.put(span_of(key), span_of(value));
  const auto got = st.get(span_of(key));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, value);
  EXPECT_NE(st.root_hash(), MerklePatriciaTrie::empty_root());
}

// Property sweep: the trie must agree with std::map under random workloads
// and be history-independent (root depends only on final contents).
class TrieFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieFuzzTest, MatchesReferenceMap) {
  Xoshiro256 rng(GetParam());
  MerklePatriciaTrie t;
  std::map<Bytes, Bytes> reference;

  for (int iter = 0; iter < 600; ++iter) {
    Bytes key(rng.below(6) + 1, 0);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(4));  // dense
    if (rng.chance(0.7)) {
      Bytes value(rng.below(40) + 1, 0);
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.below(256));
      t.put(std::span(key), std::span(value));
      reference[key] = value;
    } else {
      t.erase(std::span(key));
      reference.erase(key);
    }
  }

  EXPECT_EQ(t.size(), reference.size());
  for (const auto& [k, v] : reference) {
    const auto got = t.get(std::span(k));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }

  // History independence: rebuilding from the final map gives the same root.
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : reference) rebuilt.put(std::span(k), std::span(v));
  EXPECT_EQ(t.root_hash(), rebuilt.root_hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieFuzzTest,
                         ::testing::Values(5u, 17u, 23u, 71u, 1234u));

// ---- incremental-hashing regressions (persistent tries + node-ref memos) --

TEST(TrieIncremental, DirtyPathRegression) {
  // Write, commit (hash), overwrite the same slot with its old value,
  // commit again: the root must equal that of a trie never touched after
  // the first write.  Catches stale node-ref memos on the rewritten path.
  MerklePatriciaTrie t;
  put_str(t, "do", "verb");
  put_str(t, "dog", "puppy");
  put_str(t, "horse", "stallion");
  const Hash256 committed = t.root_hash();

  put_str(t, "dog", "cat");      // dirty the path...
  (void)t.root_hash();           // ...commit the wrong value...
  put_str(t, "dog", "puppy");    // ...restore the original...
  EXPECT_EQ(t.root_hash(), committed);  // ...root must round-trip exactly.
}

TEST(TrieIncremental, SharedStructureKeepsRootsIndependent) {
  MerklePatriciaTrie a;
  put_str(a, "alpha", "1");
  put_str(a, "beta", "2");
  put_str(a, "gamma", "3");
  const Hash256 root_a = a.root_hash();

  MerklePatriciaTrie b = a;         // shares every node with a
  EXPECT_EQ(b.root_hash(), root_a);  // memoized refs carry over

  put_str(b, "beta", "22");         // path-copies the beta spine only
  const Hash256 root_b = b.root_hash();
  EXPECT_NE(root_b, root_a);
  EXPECT_EQ(a.root_hash(), root_a);  // a's nodes were never touched

  // Mutating a after the copy diverged must not disturb b either.
  const Bytes gamma = bytes("gamma");
  a.erase(std::span(gamma));
  EXPECT_EQ(b.root_hash(), root_b);

  // Both sides still equal from-scratch rebuilds of their contents.
  MerklePatriciaTrie a2, b2;
  put_str(a2, "alpha", "1");
  put_str(a2, "beta", "2");
  put_str(b2, "alpha", "1");
  put_str(b2, "beta", "22");
  put_str(b2, "gamma", "3");
  EXPECT_EQ(a.root_hash(), a2.root_hash());
  EXPECT_EQ(b.root_hash(), b2.root_hash());
}

TEST(TrieIncremental, ForkedCopiesFuzzMatchReferenceMaps) {
  // Persistent-structure fuzz: a lineage of forked copies mutated in
  // divergent directions, hashed in interleaved order, must each agree with
  // a cold rebuild of its own reference map — shared spines never leak
  // writes between forks, no matter which fork is committed first.
  Xoshiro256 rng(0xF0F0);
  constexpr int kRounds = 24;
  constexpr int kForks = 4;

  MerklePatriciaTrie base;
  std::map<Bytes, Bytes> base_ref;
  for (int i = 0; i < 80; ++i) {
    Bytes key(rng.below(5) + 1, 0);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(4));
    Bytes value(rng.below(40) + 1, 0);
    for (auto& b : value) b = static_cast<std::uint8_t>(rng.below(256));
    base.put(std::span(key), std::span(value));
    base_ref[key] = value;
  }

  for (int round = 0; round < kRounds; ++round) {
    std::vector<MerklePatriciaTrie> forks(kForks, base);  // all share nodes
    std::vector<std::map<Bytes, Bytes>> refs(kForks, base_ref);
    for (int f = 0; f < kForks; ++f) {
      for (int op = 0; op < 30; ++op) {
        Bytes key(rng.below(5) + 1, 0);
        for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(4));
        if (rng.chance(0.7)) {
          Bytes value(rng.below(40) + 1, 0);
          for (auto& b : value) b = static_cast<std::uint8_t>(rng.below(256));
          forks[f].put(std::span(key), std::span(value));
          refs[f][key] = value;
        } else {
          forks[f].erase(std::span(key));
          refs[f].erase(key);
        }
        // Interleave hashing so sibling forks alternately memoize refs in
        // nodes the others still share.
        if (rng.chance(0.2)) (void)forks[f].root_hash();
      }
    }
    for (int f = 0; f < kForks; ++f) {
      MerklePatriciaTrie cold;
      for (const auto& [k, v] : refs[f]) cold.put(std::span(k), std::span(v));
      ASSERT_EQ(forks[f].root_hash(), cold.root_hash())
          << "round " << round << " fork " << f;
    }
    const std::size_t keep = rng.below(kForks);
    base = std::move(forks[keep]);
    base_ref = std::move(refs[keep]);
  }
}

TEST(TrieIncremental, InterleavedHashingMatchesColdRebuild) {
  // Hash after every mutation (maximally exercising memo invalidation) and
  // compare against a cold trie built once from the same final contents.
  Xoshiro256 rng(99);
  MerklePatriciaTrie warm;
  std::map<Bytes, Bytes> reference;
  for (int iter = 0; iter < 200; ++iter) {
    Bytes key(rng.below(5) + 1, 0);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(4));
    if (rng.chance(0.75)) {
      Bytes value(rng.below(48) + 1, 0);
      for (auto& b : value) b = static_cast<std::uint8_t>(rng.below(256));
      warm.put(std::span(key), std::span(value));
      reference[key] = value;
    } else {
      warm.erase(std::span(key));
      reference.erase(key);
    }
    const Hash256 incremental = warm.root_hash();
    if (iter % 20 == 19) {
      MerklePatriciaTrie cold;
      for (const auto& [k, v] : reference) cold.put(std::span(k), std::span(v));
      ASSERT_EQ(incremental, cold.root_hash()) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace blockpilot::trie
