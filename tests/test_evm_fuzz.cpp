// EVM robustness fuzzing: arbitrary byte strings executed as contracts
// must terminate within their gas budget with a well-defined status, never
// crash, never corrupt the write buffer across a revert, and never return
// more gas than they were given.
#include <gtest/gtest.h>

#include "evm/interpreter.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/rng.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::StateKey;
using state::WorldState;
using state::WorldStateView;

class EvmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmFuzz, RandomBytecodeIsContained) {
  Xoshiro256 rng(GetParam());
  WorldState ws;
  const Address caller = Address::from_id(1);
  const Address contract = Address::from_id(2);
  ws.set(StateKey::balance(caller), U256{1'000'000});

  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);

  for (int iter = 0; iter < 300; ++iter) {
    Bytes code(rng.below(200) + 1, 0);
    for (auto& b : code) b = static_cast<std::uint8_t>(rng.below(256));
    ws.set_code(contract, code);

    Bytes calldata(rng.below(96), 0);
    for (auto& b : calldata) b = static_cast<std::uint8_t>(rng.below(256));

    const WorldStateView view(ws);
    ExecBuffer buffer(view);
    TxContext tx;
    tx.origin = caller;
    tx.gas_price = U256{1};
    tx.block = &block;

    Message msg;
    msg.caller = caller;
    msg.to = contract;
    msg.value = U256{rng.below(100)};
    msg.data = std::move(calldata);
    msg.gas = 100'000;

    const CallResult result = execute_call(buffer, tx, msg);

    // Status is one of the defined outcomes and gas is conserved.
    EXPECT_TRUE(result.status == Status::kSuccess ||
                result.status == Status::kRevert ||
                result.status == Status::kOutOfGas ||
                result.status == Status::kInvalid);
    EXPECT_LE(result.gas_left, msg.gas);

    // Failed executions must leave no writes behind (checkpoint revert),
    // except the value transfer which belongs to the frame only on success.
    if (result.status != Status::kSuccess) {
      EXPECT_TRUE(buffer.write_set().empty());
    }
    // Failed executions surface no logs.
    if (result.status != Status::kSuccess) EXPECT_TRUE(result.logs.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmFuzz,
                         ::testing::Values(0x5eedu, 0xfeedu, 0xbeefu,
                                           0xcafeu, 12345u));

// Structured fuzz: random but *valid-prefix* programs built from a
// restricted opcode alphabet exercise deep interpreter paths (storage,
// memory, flow) more than uniform bytes do.
class EvmStructuredFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmStructuredFuzz, StorageOpsAreConsistent) {
  Xoshiro256 rng(GetParam());
  WorldState ws;
  const Address contract = Address::from_id(7);
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);

  for (int iter = 0; iter < 100; ++iter) {
    // Program: a random sequence of "PUSH v, PUSH k, SSTORE" triples
    // followed by STOP.  The final write set must equal the last value
    // written per slot.
    std::unordered_map<std::uint64_t, std::uint64_t> expected;
    Bytes code;
    const std::size_t ops = rng.below(20) + 1;
    for (std::size_t i = 0; i < ops; ++i) {
      const std::uint64_t slot = rng.below(4);
      const std::uint64_t value = rng.below(250) + 1;
      code.push_back(0x60);  // PUSH1 value
      code.push_back(static_cast<std::uint8_t>(value));
      code.push_back(0x60);  // PUSH1 slot
      code.push_back(static_cast<std::uint8_t>(slot));
      code.push_back(0x55);  // SSTORE
      expected[slot] = value;
    }
    code.push_back(0x00);  // STOP
    ws.set_code(contract, code);

    const WorldStateView view(ws);
    ExecBuffer buffer(view);
    TxContext tx;
    tx.origin = Address::from_id(1);
    tx.gas_price = U256{1};
    tx.block = &block;
    Message msg;
    msg.caller = tx.origin;
    msg.to = contract;
    msg.gas = 10'000'000;

    const CallResult result = execute_call(buffer, tx, msg);
    ASSERT_EQ(result.status, Status::kSuccess);

    const auto writes = buffer.write_set();
    ASSERT_EQ(writes.size(), expected.size());
    for (const auto& [key, value] : writes) {
      ASSERT_EQ(key.addr, contract);
      EXPECT_EQ(value, U256{expected.at(key.slot.low64())});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmStructuredFuzz,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace blockpilot::evm
