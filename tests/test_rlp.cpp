#include "rlp/rlp.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace blockpilot::rlp {
namespace {

std::string hex(const Bytes& b) {
  return blockpilot::hex_encode(std::span(b));
}

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Canonical vectors from the Ethereum RLP specification.
TEST(Rlp, SpecVectors) {
  Encoder dog;
  dog.add("dog");
  EXPECT_EQ(hex(dog.take()), "0x83646f67");

  Encoder list;
  list.begin_list().add("cat").add("dog").end_list();
  EXPECT_EQ(hex(list.take()), "0xc88363617483646f67");

  Encoder empty;
  empty.add("");
  EXPECT_EQ(hex(empty.take()), "0x80");

  Encoder zero;
  zero.add(std::uint64_t{0});
  EXPECT_EQ(hex(zero.take()), "0x80");  // integer 0 == empty string

  Encoder fifteen;
  fifteen.add(std::uint64_t{15});
  EXPECT_EQ(hex(fifteen.take()), "0x0f");

  Encoder k1024;
  k1024.add(std::uint64_t{1024});
  EXPECT_EQ(hex(k1024.take()), "0x820400");

  Encoder empty_list;
  empty_list.begin_list().end_list();
  EXPECT_EQ(hex(empty_list.take()), "0xc0");

  // Set-theoretic nesting: [ [], [[]], [ [], [[]] ] ].
  Encoder nested;
  nested.begin_list()
      .begin_list().end_list()
      .begin_list().begin_list().end_list().end_list()
      .begin_list()
          .begin_list().end_list()
          .begin_list().begin_list().end_list().end_list()
      .end_list()
      .end_list();
  EXPECT_EQ(hex(nested.take()), "0xc7c0c1c0c3c0c1c0");
}

TEST(Rlp, LongString) {
  // 56 bytes crosses the short/long string boundary: 0xb8 prefix.
  const std::string lorem =
      "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  ASSERT_EQ(lorem.size(), 56u);
  Encoder enc;
  enc.add(lorem);
  const Bytes out = enc.take();
  EXPECT_EQ(out[0], 0xb8);
  EXPECT_EQ(out[1], 56);
  EXPECT_EQ(out.size(), 58u);
}

TEST(Rlp, BoundaryLengths) {
  for (const std::size_t len : {0ul, 1ul, 55ul, 56ul, 255ul, 256ul, 1000ul}) {
    const std::string payload(len, 'z');
    Encoder enc;
    enc.add(payload);
    const Bytes encoded = enc.take();
    const Item item = decode(std::span(encoded));
    EXPECT_FALSE(item.is_list);
    EXPECT_EQ(item.str, str_bytes(payload)) << "len=" << len;
  }
}

TEST(Rlp, SingleByteBelow0x80EncodesItself) {
  for (unsigned b = 0; b < 0x80; ++b) {
    const std::uint8_t byte = static_cast<std::uint8_t>(b);
    Encoder enc;
    enc.add(std::span(&byte, 1));
    const Bytes out = enc.take();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], byte);
  }
}

TEST(Rlp, IntegerRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 255ull, 256ull, 0xffffffffull,
        0xdeadbeefcafebabeull}) {
    const Bytes encoded = encode(v);
    const Item item = decode(std::span(encoded));
    EXPECT_EQ(item.as_u64(), v);
  }
}

TEST(Rlp, U256RoundTrip) {
  const U256 big = U256::from_hex(
      "0xffeeddccbbaa99887766554433221100ffeeddccbbaa998877665544332211");
  const Bytes encoded = encode(big);
  EXPECT_EQ(decode(std::span(encoded)).as_u256(), big);
}

TEST(Rlp, NestedListDecode) {
  Encoder enc;
  enc.begin_list()
      .add("hello")
      .begin_list().add(std::uint64_t{1}).add(std::uint64_t{2}).end_list()
      .add(std::uint64_t{3})
      .end_list();
  const Bytes encoded = enc.take();
  const Item item = decode(std::span(encoded));
  ASSERT_TRUE(item.is_list);
  ASSERT_EQ(item.list.size(), 3u);
  EXPECT_EQ(item.list[0].str, str_bytes("hello"));
  ASSERT_TRUE(item.list[1].is_list);
  EXPECT_EQ(item.list[1].list[0].as_u64(), 1u);
  EXPECT_EQ(item.list[1].list[1].as_u64(), 2u);
  EXPECT_EQ(item.list[2].as_u64(), 3u);
}

TEST(Rlp, AddressAndHashRoundTrip) {
  const Address addr = Address::from_id(0xabcdef);
  const Hash256 h = Hash256::of(std::span<const std::uint8_t>{});
  Encoder enc;
  enc.begin_list().add(addr).add(h).end_list();
  const Bytes encoded = enc.take();
  const Item item = decode(std::span(encoded));
  EXPECT_EQ(item.list[0].as_address(), addr);
  EXPECT_EQ(item.list[1].as_hash(), h);
}

// Property sweep: random nested structures must round-trip.
class RlpFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RlpFuzzTest, RandomStringListsRoundTrip) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t count = rng.below(8);
    std::vector<Bytes> strings;
    Encoder enc;
    enc.begin_list();
    for (std::size_t i = 0; i < count; ++i) {
      Bytes s(rng.below(120), 0);
      for (auto& b : s) b = static_cast<std::uint8_t>(rng.below(256));
      enc.add(std::span(s));
      strings.push_back(std::move(s));
    }
    enc.end_list();
    const Bytes encoded = enc.take();
    const Item item = decode(std::span(encoded));
    ASSERT_TRUE(item.is_list);
    ASSERT_EQ(item.list.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(item.list[i].str, strings[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlpFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace blockpilot::rlp
