// End-to-end integration: the full BlockPilot lifecycle over a growing
// chain, with every engine agreeing on every state root — the in-repo
// analogue of the paper's §5.2 correctness validation.
#include <gtest/gtest.h>

#include "core/blockpilot.hpp"

namespace blockpilot::core {
namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

TEST(Integration, ProposeValidateCommitChain) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  chain::Blockchain chain(gen.genesis());
  ThreadPool workers(8);

  ProposerConfig pc;
  pc.threads = 4;
  OccWsiProposer proposer(pc);
  ValidatorConfig vc;
  vc.threads = 4;
  BlockValidator validator(vc);

  for (std::uint64_t height = 1; height <= 8; ++height) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());

    const auto parent_state = chain.head_state();
    ProposedBlock proposed =
        proposer.propose(*parent_state, ctx_for(height), pool, workers);
    proposed.block.header.parent_hash = chain.head().header.hash();

    const auto outcome = validator.validate(*parent_state, proposed.block,
                                            proposed.profile, workers);
    ASSERT_TRUE(outcome.valid)
        << "height " << height << ": " << outcome.reject_reason;

    chain.commit_block(proposed.block, outcome.exec.post_state);
    EXPECT_EQ(chain.height(), height);
  }
  EXPECT_EQ(chain.block_count(), 9u);  // genesis + 8
}

TEST(Integration, AllEnginesAgreeOnRoots) {
  // Serial, scheduled validator, two-phase OCC and the pipeline must all
  // reach the same root for the same block — across conflict regimes.
  for (const int preset : {0, 1, 2}) {
    workload::WorkloadConfig wc = preset == 0   ? workload::preset_mainnet()
                                  : preset == 1 ? workload::preset_low_conflict()
                                                : workload::preset_high_conflict();
    wc.seed = 9000 + static_cast<std::uint64_t>(preset);
    workload::WorkloadGenerator gen(wc);
    const state::WorldState genesis = gen.genesis();
    const auto txs = gen.next_batch(80);

    const SerialResult serial =
        execute_serial(genesis, ctx_for(1), std::span(txs));
    const chain::Block block =
        seal_block(ctx_for(1), serial.exec, serial.included);

    ThreadPool workers(8);

    ValidatorConfig vc;
    vc.threads = 8;
    const auto scheduled = BlockValidator(vc).validate(
        genesis, block, serial.exec.profile, workers);
    ASSERT_TRUE(scheduled.valid) << scheduled.reject_reason;
    EXPECT_EQ(scheduled.exec.state_root, serial.exec.state_root);

    const auto occ = TwoPhaseOcc(vc).validate(genesis, block, workers);
    ASSERT_TRUE(occ.valid) << occ.reject_reason;
    EXPECT_EQ(occ.exec.state_root, serial.exec.state_root);

    PipelineConfig pc;
    pc.workers = 8;
    const std::vector<BlockBundle> bundle = {{block, serial.exec.profile}};
    const auto piped = ValidatorPipeline(pc).process_height(
        genesis, std::span(bundle), workers);
    ASSERT_TRUE(piped.all_valid());
    EXPECT_EQ(piped.outcomes[0].exec.state_root, serial.exec.state_root);
  }
}

TEST(Integration, LongChainCorrectnessReplay) {
  // §5.2 analogue (scaled to CI): a longer chain where each block is built
  // by the parallel proposer and replayed by the parallel validator; the
  // serial oracle must agree at every height.
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.txs_per_block = 40;
  wc.seed = 31415;
  workload::WorkloadGenerator gen(wc);

  auto state = std::make_shared<state::WorldState>(gen.genesis());
  ThreadPool workers(6);
  ProposerConfig pc;
  pc.threads = 6;
  OccWsiProposer proposer(pc);
  ValidatorConfig vc;
  vc.threads = 6;
  BlockValidator validator(vc);

  for (std::uint64_t height = 1; height <= 25; ++height) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());
    const ProposedBlock proposed =
        proposer.propose(*state, ctx_for(height), pool, workers);

    // Oracle: serial replay of the block body.
    SerialOptions opts;
    opts.drop_unincludable = false;
    const SerialResult oracle = execute_serial(
        *state, ctx_for(height), std::span(proposed.block.transactions), opts);
    ASSERT_TRUE(oracle.ok) << "height " << height;
    ASSERT_EQ(oracle.exec.state_root, proposed.block.header.state_root)
        << "proposer diverged from serial at height " << height;

    // Parallel validator agrees too.
    const auto outcome = validator.validate(*state, proposed.block,
                                            proposed.profile, workers);
    ASSERT_TRUE(outcome.valid)
        << "height " << height << ": " << outcome.reject_reason;
    state = outcome.exec.post_state;
  }
}

TEST(Integration, ForkCommitAndCanonicalSwitch) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  chain::Blockchain chain(gen.genesis());
  ThreadPool workers(4);

  // Two sibling proposals at height 1.
  auto make_block = [&](std::uint64_t seed_offset) {
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 100 + seed_offset;
    workload::WorkloadGenerator g(wc);
    txpool::TxPool pool;
    pool.add_all(g.next_batch(20));
    ProposerConfig pcfg;
    pcfg.threads = 2;
    OccWsiProposer p(pcfg);
    ProposedBlock blk =
        p.propose(*chain.head_state(), ctx_for(1), pool, workers);
    blk.block.header.parent_hash = chain.genesis_hash();
    return blk;
  };
  ProposedBlock a = make_block(1);
  ProposedBlock b = make_block(2);
  ASSERT_NE(a.block.header.hash(), b.block.header.hash());

  chain.commit_block(a.block, a.post_state);
  chain.commit_block(b.block, b.post_state);
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.block_count(), 3u);
  // Both forks' states are retrievable (uncle handling, §3.4).
  EXPECT_NE(chain.state_of(a.block.header.hash()), nullptr);
  EXPECT_NE(chain.state_of(b.block.header.hash()), nullptr);
}

TEST(Integration, TokenConservationAcrossParallelExecution) {
  // Conservation law: the sum of all token balances for a given token
  // contract is invariant under transfers — a deep end-to-end check that
  // parallel execution loses no writes.
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.dex_fraction = 0.0;  // only native + token transfers
  wc.token_fraction = 1.0;
  wc.num_tokens = 2;
  workload::WorkloadGenerator gen(wc);
  const state::WorldState genesis = gen.genesis();

  auto token_supply = [&](const state::WorldState& ws, const Address& token) {
    U256 sum;
    for (std::size_t i = 0; i < gen.config().num_eoa; ++i) {
      sum += ws.get(state::StateKey::storage(token, gen.eoa(i).to_u256()));
    }
    return sum;
  };
  const U256 supply0 = token_supply(genesis, gen.token(0));
  const U256 supply1 = token_supply(genesis, gen.token(1));

  txpool::TxPool pool;
  pool.add_all(gen.next_batch(150));
  ThreadPool workers(8);
  ProposerConfig pc;
  pc.threads = 8;
  const ProposedBlock blk =
      OccWsiProposer(pc).propose(genesis, ctx_for(1), pool, workers);
  ASSERT_GT(blk.block.transactions.size(), 100u);

  EXPECT_EQ(token_supply(*blk.post_state, gen.token(0)), supply0);
  EXPECT_EQ(token_supply(*blk.post_state, gen.token(1)), supply1);
}

}  // namespace
}  // namespace blockpilot::core
