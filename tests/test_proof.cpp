#include "trie/proof.hpp"

#include <gtest/gtest.h>

#include "rlp/rlp.hpp"
#include "state/world_state.hpp"
#include "support/rng.hpp"

namespace blockpilot::trie {
namespace {

Bytes bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

struct ProofFixture : ::testing::Test {
  MerklePatriciaTrie trie;
  Hash256 root;

  void SetUp() override {
    for (const auto& [k, v] : std::vector<std::pair<std::string, std::string>>{
             {"do", "verb"},
             {"dog", "puppy"},
             {"doge", "coin"},
             {"horse", "stallion"},
             {"dodge", "car"}}) {
      const Bytes kb = bytes(k), vb = bytes(v);
      trie.put(std::span(kb), std::span(vb));
    }
    root = trie.root_hash();
  }

  ProofVerdict round_trip(std::string_view key) {
    const Bytes kb = bytes(key);
    const Proof proof = prove(trie, std::span(kb));
    return verify_proof(root, std::span(kb), proof);
  }
};

TEST_F(ProofFixture, MembershipProofsVerify) {
  for (const auto& [k, v] : std::vector<std::pair<std::string, std::string>>{
           {"do", "verb"}, {"dog", "puppy"}, {"doge", "coin"},
           {"horse", "stallion"}, {"dodge", "car"}}) {
    const ProofVerdict verdict = round_trip(k);
    EXPECT_TRUE(verdict.ok) << k;
    ASSERT_TRUE(verdict.value.has_value()) << k;
    EXPECT_EQ(*verdict.value, bytes(v)) << k;
  }
}

TEST_F(ProofFixture, AbsenceProofsVerify) {
  for (const char* missing : {"cat", "dogs", "d", "dodgeball", "zebra"}) {
    const ProofVerdict verdict = round_trip(missing);
    EXPECT_TRUE(verdict.ok) << missing;
    EXPECT_FALSE(verdict.value.has_value()) << missing;
  }
}

TEST_F(ProofFixture, WrongRootRejected) {
  const Bytes kb = bytes("dog");
  const Proof proof = prove(trie, std::span(kb));
  Hash256 bad_root = root;
  bad_root.bytes[0] ^= 1;
  EXPECT_FALSE(verify_proof(bad_root, std::span(kb), proof).ok);
}

TEST_F(ProofFixture, TamperedNodeRejected) {
  const Bytes kb = bytes("dog");
  Proof proof = prove(trie, std::span(kb));
  ASSERT_FALSE(proof.nodes.empty());
  proof.nodes.back()[0] ^= 0x01;
  const ProofVerdict verdict = verify_proof(root, std::span(kb), proof);
  EXPECT_TRUE(!verdict.ok || !verdict.value.has_value());
}

TEST_F(ProofFixture, ProofForOtherKeyDoesNotProveThisKey) {
  const Bytes dog = bytes("dog");
  const Bytes horse = bytes("horse");
  const Proof dog_proof = prove(trie, std::span(dog));
  const ProofVerdict verdict =
      verify_proof(root, std::span(horse), dog_proof);
  // The dog proof cannot demonstrate horse's membership.
  EXPECT_FALSE(verdict.ok && verdict.value.has_value());
}

TEST_F(ProofFixture, TruncatedProofRejected) {
  const Bytes kb = bytes("dog");
  Proof proof = prove(trie, std::span(kb));
  ASSERT_GT(proof.nodes.size(), 1u);
  proof.nodes.pop_back();
  const ProofVerdict verdict = verify_proof(root, std::span(kb), proof);
  EXPECT_FALSE(verdict.ok && verdict.value.has_value());
}

TEST(Proof, EmptyTrieAbsence) {
  MerklePatriciaTrie trie;
  const Bytes kb = bytes("anything");
  const Proof proof = prove(trie, std::span(kb));
  EXPECT_TRUE(proof.nodes.empty());
  const ProofVerdict verdict =
      verify_proof(trie.root_hash(), std::span(kb), proof);
  EXPECT_TRUE(verdict.ok);
  EXPECT_FALSE(verdict.value.has_value());
}

TEST(Proof, SingleEntryTrie) {
  MerklePatriciaTrie trie;
  const Bytes k = bytes("solo"), v = bytes("value");
  trie.put(std::span(k), std::span(v));
  const Proof proof = prove(trie, std::span(k));
  const ProofVerdict verdict =
      verify_proof(trie.root_hash(), std::span(k), proof);
  EXPECT_TRUE(verdict.ok);
  ASSERT_TRUE(verdict.value.has_value());
  EXPECT_EQ(*verdict.value, v);
}

TEST(Proof, WorldStateAccountProof) {
  // End-to-end: prove an account's balance cell out of a world-state-sized
  // secure-trie-like structure (raw MPT here; SecureTrie hashes keys, so we
  // prove over the hashed key exactly as a light client would).
  MerklePatriciaTrie accounts;
  Xoshiro256 rng(4242);
  for (int i = 0; i < 500; ++i) {
    const U256 key{rng()};
    const auto kb = key.to_be_bytes();
    const U256 value{rng()};
    const auto enc = rlp::encode(value);
    accounts.put(std::span(kb), std::span(enc));
  }
  const U256 target{0xDEADBEEFu};
  const auto target_bytes = target.to_be_bytes();
  const auto enc = rlp::encode(U256{777});
  accounts.put(std::span(target_bytes), std::span(enc));

  const Hash256 root = accounts.root_hash();
  const Proof proof = prove(accounts, std::span(target_bytes));
  const ProofVerdict verdict =
      verify_proof(root, std::span(target_bytes), proof);
  ASSERT_TRUE(verdict.ok);
  ASSERT_TRUE(verdict.value.has_value());
  EXPECT_EQ(rlp::decode(std::span(*verdict.value)).as_u256(), U256{777});
  // Proof is logarithmic, not linear, in the trie size.
  EXPECT_LT(proof.nodes.size(), 12u);
}

// Property sweep: proofs for every key (and some absent keys) of random
// tries must verify against the root.
class ProofFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProofFuzz, AllKeysProvable) {
  Xoshiro256 rng(GetParam());
  MerklePatriciaTrie trie;
  std::vector<Bytes> keys;
  for (int i = 0; i < 120; ++i) {
    Bytes key(rng.below(5) + 1, 0);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(8));
    Bytes value(rng.below(50) + 1, 0);
    for (auto& b : value) b = static_cast<std::uint8_t>(rng.below(256));
    trie.put(std::span(key), std::span(value));
    keys.push_back(std::move(key));
  }
  const Hash256 root = trie.root_hash();

  for (const Bytes& key : keys) {
    const Proof proof = prove(trie, std::span(key));
    const ProofVerdict verdict = verify_proof(root, std::span(key), proof);
    EXPECT_TRUE(verdict.ok);
    ASSERT_TRUE(verdict.value.has_value());
    EXPECT_EQ(*verdict.value, *trie.get(std::span(key)));
  }
  for (int i = 0; i < 40; ++i) {
    Bytes key(rng.below(6) + 1, 0);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(16));
    if (trie.get(std::span(key)).has_value()) continue;
    const Proof proof = prove(trie, std::span(key));
    const ProofVerdict verdict = verify_proof(root, std::span(key), proof);
    EXPECT_TRUE(verdict.ok);
    EXPECT_FALSE(verdict.value.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofFuzz,
                         ::testing::Values(3u, 1337u, 99991u));

}  // namespace
}  // namespace blockpilot::trie
