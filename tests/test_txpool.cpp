#include <gtest/gtest.h>

#include <thread>

#include "txpool/txpool.hpp"

namespace blockpilot::txpool {
namespace {

chain::Transaction make_tx(std::uint64_t price, std::uint64_t nonce = 0) {
  chain::Transaction tx;
  tx.from = Address::from_id(1);
  tx.to = Address::from_id(2);
  tx.gas_price = U256{price};
  tx.nonce = nonce;
  tx.gas_limit = 21000;
  return tx;
}

TEST(TxPool, PopsByGasPriceDescending) {
  TxPool pool;
  pool.add(make_tx(10));
  pool.add(make_tx(50));
  pool.add(make_tx(30));
  EXPECT_EQ(pool.pop()->gas_price, U256{50});
  EXPECT_EQ(pool.pop()->gas_price, U256{30});
  EXPECT_EQ(pool.pop()->gas_price, U256{10});
  EXPECT_EQ(pool.pop(), std::nullopt);
}

TEST(TxPool, EqualPricesFifo) {
  TxPool pool;
  pool.add(make_tx(10, 0));
  pool.add(make_tx(10, 1));
  pool.add(make_tx(10, 2));
  EXPECT_EQ(pool.pop()->nonce, 0u);
  EXPECT_EQ(pool.pop()->nonce, 1u);
  EXPECT_EQ(pool.pop()->nonce, 2u);
}

TEST(TxPool, PushBackReenters) {
  TxPool pool;
  pool.add(make_tx(10));
  auto tx = pool.pop();
  ASSERT_TRUE(tx.has_value());
  EXPECT_TRUE(pool.empty());
  pool.push_back(std::move(*tx));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.pop().has_value());
}

TEST(TxPool, DeferredReenterOnProgress) {
  TxPool pool;
  pool.add(make_tx(10, 1));
  auto tx = pool.pop();
  pool.defer(std::move(*tx));
  EXPECT_EQ(pool.size(), 1u);
  pool.progress();
  EXPECT_TRUE(pool.pop().has_value());
}

TEST(TxPool, DeferredStayParkedUntilProgress) {
  TxPool pool;
  pool.add(make_tx(10, 1));
  pool.defer(std::move(*pool.pop()));
  // Without progress(), pop() must NOT surface the deferred entry — a
  // worker would otherwise spin pop->defer->pop with no commit in between.
  EXPECT_EQ(pool.pop(), std::nullopt);
  EXPECT_EQ(pool.size(), 1u);  // but it still counts as pending work
  pool.progress();
  EXPECT_TRUE(pool.pop().has_value());
}

TEST(TxPool, AddAllBulkInsert) {
  TxPool pool;
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < 10; ++i) txs.push_back(make_tx(10 + i));
  pool.add_all(std::move(txs));
  EXPECT_EQ(pool.size(), 10u);
  EXPECT_EQ(pool.pop()->gas_price, U256{19});
}

TEST(TxPool, ConcurrentPopsDrainExactly) {
  TxPool pool;
  constexpr int kTxs = 2000;
  for (int i = 0; i < kTxs; ++i)
    pool.add(make_tx(static_cast<std::uint64_t>(i % 97)));
  std::atomic<int> popped{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (pool.pop().has_value()) popped.fetch_add(1);
    });
  }
  threads.clear();
  EXPECT_EQ(popped.load(), kTxs);
  EXPECT_TRUE(pool.empty());
}

}  // namespace
}  // namespace blockpilot::txpool
