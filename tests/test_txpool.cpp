#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "support/rng.hpp"
#include "txpool/txpool.hpp"

namespace blockpilot::txpool {
namespace {

chain::Transaction make_tx(std::uint64_t sender_id, std::uint64_t nonce,
                           std::uint64_t price, std::size_t data_size = 0) {
  chain::Transaction tx;
  tx.from = Address::from_id(0x1000 + sender_id);
  tx.to = Address::from_id(2);
  tx.gas_price = U256{price};
  tx.nonce = nonce;
  tx.gas_limit = 21000;
  tx.data.assign(data_size, 0xab);
  return tx;
}

// ---- legacy heap semantics (enforce_nonce_order off, no caps) ----

TEST(TxPool, PopsByGasPriceDescending) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  pool.add(make_tx(1, 1, 50));
  pool.add(make_tx(1, 2, 30));
  EXPECT_EQ(pool.pop()->gas_price, U256{50});
  EXPECT_EQ(pool.pop()->gas_price, U256{30});
  EXPECT_EQ(pool.pop()->gas_price, U256{10});
  EXPECT_EQ(pool.pop(), std::nullopt);
}

TEST(TxPool, EqualPricesFifo) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  pool.add(make_tx(1, 1, 10));
  pool.add(make_tx(1, 2, 10));
  EXPECT_EQ(pool.pop()->nonce, 0u);
  EXPECT_EQ(pool.pop()->nonce, 1u);
  EXPECT_EQ(pool.pop()->nonce, 2u);
}

TEST(TxPool, PushBackReenters) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  auto tx = pool.pop();
  ASSERT_TRUE(tx.has_value());
  EXPECT_TRUE(pool.empty());
  pool.push_back(std::move(*tx));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.pop().has_value());
}

TEST(TxPool, DeferredReenterOnProgress) {
  TxPool pool;
  pool.add(make_tx(1, 1, 10));
  auto tx = pool.pop();
  pool.defer(std::move(*tx));
  EXPECT_EQ(pool.size(), 1u);
  pool.progress();
  EXPECT_TRUE(pool.pop().has_value());
}

TEST(TxPool, DeferredStayParkedUntilProgress) {
  TxPool pool;
  pool.add(make_tx(1, 1, 10));
  pool.defer(std::move(*pool.pop()));
  // Without progress(), pop() must NOT surface the deferred entry — a
  // worker would otherwise spin pop->defer->pop with no commit in between.
  EXPECT_EQ(pool.pop(), std::nullopt);
  EXPECT_EQ(pool.size(), 1u);  // but it still counts as pending work
  pool.progress();
  EXPECT_TRUE(pool.pop().has_value());
}

TEST(TxPool, AddAllBulkInsert) {
  TxPool pool;
  std::vector<chain::Transaction> txs;
  for (std::uint64_t i = 0; i < 10; ++i)
    txs.push_back(make_tx(1, i, 10 + i));
  EXPECT_EQ(pool.add_all(std::move(txs)), 10u);
  EXPECT_EQ(pool.size(), 10u);
  EXPECT_EQ(pool.pop()->gas_price, U256{19});
}

TEST(TxPool, ConcurrentPopsDrainExactly) {
  TxPool pool;
  constexpr std::uint64_t kTxs = 2000;
  for (std::uint64_t i = 0; i < kTxs; ++i)
    pool.add(make_tx(i % 50, i / 50, i % 97 + 1));
  std::atomic<int> popped{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (pool.pop().has_value()) popped.fetch_add(1);
    });
  }
  threads.clear();
  EXPECT_EQ(popped.load(), static_cast<int>(kTxs));
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.in_flight(), kTxs);  // nothing acknowledged yet
}

// ---- satellite regression: push_back keeps the original seq ----

TEST(TxPool, PushBackPreservesAdmissionOrder) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));  // A: seq 0
  pool.add(make_tx(2, 0, 10));  // B: seq 1, same price
  auto a = pool.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->from, Address::from_id(0x1001));
  // A aborts and retries.  With its original seq it must still outrank B;
  // a fresh seq would send it to the back of the equal-price tiebreak.
  pool.push_back(std::move(*a));
  auto again = pool.pop();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->from, Address::from_id(0x1001));
  EXPECT_EQ(pool.pop()->from, Address::from_id(0x1002));
}

TEST(TxPool, DeferPreservesAdmissionOrder) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  pool.add(make_tx(2, 0, 10));
  auto a = pool.pop();
  pool.defer(std::move(*a));
  pool.progress();
  EXPECT_EQ(pool.pop()->from, Address::from_id(0x1001));
}

// ---- admission outcomes ----

TEST(TxPoolAdmission, DuplicateRejected) {
  TxPool pool;
  EXPECT_EQ(pool.add(make_tx(1, 0, 10)).outcome, AdmissionOutcome::kAccepted);
  EXPECT_EQ(pool.add(make_tx(1, 0, 10)).outcome,
            AdmissionOutcome::kRejectedDuplicate);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPoolAdmission, InFlightSlotNotReplaceable) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  auto tx = pool.pop();
  // The slot is mid-execution: even a huge bump must not land, because the
  // original may still commit.
  EXPECT_EQ(pool.add(make_tx(1, 0, 1000)).outcome,
            AdmissionOutcome::kRejectedDuplicate);
  pool.push_back(std::move(*tx));
  EXPECT_EQ(pool.pop()->gas_price, U256{10});
}

TEST(TxPoolAdmission, ReplaceByFeeThreshold) {
  TxPoolConfig cfg;
  cfg.replace_bump_percent = 10;
  TxPool pool(cfg);
  pool.add(make_tx(1, 0, 100));
  // 109 < 100 * 1.10: underpriced.
  EXPECT_EQ(pool.add(make_tx(1, 0, 109)).outcome,
            AdmissionOutcome::kRejectedUnderpriced);
  // 110 >= 100 * 1.10: replaces.
  EXPECT_EQ(pool.add(make_tx(1, 0, 110)).outcome,
            AdmissionOutcome::kReplaced);
  EXPECT_EQ(pool.size(), 1u);
  // Atomicity: the displaced transaction is never observable again.
  EXPECT_EQ(pool.pop()->gas_price, U256{110});
  EXPECT_EQ(pool.pop(), std::nullopt);
  const TxPoolStats st = pool.stats();
  EXPECT_EQ(st.replaced, 1u);
  EXPECT_EQ(st.rejected_underpriced, 1u);
  EXPECT_TRUE(st.conserved());
}

TEST(TxPoolAdmission, NonceTooLowAfterCommit) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  auto tx = pool.pop();
  pool.committed(tx->from, tx->nonce);
  EXPECT_EQ(pool.add(make_tx(1, 0, 500)).outcome,
            AdmissionOutcome::kRejectedNonceTooLow);
  EXPECT_EQ(pool.add(make_tx(1, 1, 10)).outcome, AdmissionOutcome::kAccepted);
  EXPECT_TRUE(pool.stats().conserved());
}

TEST(TxPoolAdmission, NoteSenderNonceDropsStaleResidents) {
  TxPool pool;
  pool.add(make_tx(1, 0, 10));
  pool.add(make_tx(1, 1, 10));
  pool.add(make_tx(1, 5, 10));
  pool.note_sender_nonce(Address::from_id(0x1001), 2);
  EXPECT_EQ(pool.size(), 1u);  // only nonce 5 survives
  const TxPoolStats st = pool.stats();
  EXPECT_EQ(st.stale_dropped, 2u);
  EXPECT_TRUE(st.conserved());
  EXPECT_EQ(pool.pop()->nonce, 5u);
}

TEST(TxPoolAdmission, PoolFullEvictsLowestFee) {
  TxPoolConfig cfg;
  cfg.max_txs = 2;
  TxPool pool(cfg);
  pool.add(make_tx(1, 0, 10));
  pool.add(make_tx(2, 0, 20));
  // Outranks the price-10 resident: admitted, victim evicted.
  const AdmissionResult r = pool.add(make_tx(3, 0, 30));
  EXPECT_EQ(r.outcome, AdmissionOutcome::kAccepted);
  EXPECT_EQ(r.evicted, 1u);
  EXPECT_EQ(pool.size(), 2u);
  // Outranks nothing: rejected, pool untouched.
  EXPECT_EQ(pool.add(make_tx(4, 0, 5)).outcome,
            AdmissionOutcome::kRejectedPoolFull);
  EXPECT_EQ(pool.pop()->gas_price, U256{30});
  EXPECT_EQ(pool.pop()->gas_price, U256{20});
  EXPECT_EQ(pool.pop(), std::nullopt);
  EXPECT_TRUE(pool.stats().conserved());
}

TEST(TxPoolAdmission, EqualPriceEvictionPrefersNewest) {
  TxPoolConfig cfg;
  cfg.max_txs = 2;
  TxPool pool(cfg);
  pool.add(make_tx(1, 0, 10));  // older
  pool.add(make_tx(2, 0, 10));  // newer -> the victim
  EXPECT_EQ(pool.add(make_tx(3, 0, 30)).outcome, AdmissionOutcome::kAccepted);
  EXPECT_EQ(pool.pop()->gas_price, U256{30});
  EXPECT_EQ(pool.pop()->from, Address::from_id(0x1001));
}

TEST(TxPoolAdmission, ByteCapRespected) {
  TxPoolConfig cfg;
  cfg.max_bytes = 3 * (96 + 100);
  TxPool pool(cfg);
  for (std::uint64_t i = 0; i < 8; ++i)
    pool.add(make_tx(i, 0, 10 + i, 100));
  const TxPoolStats st = pool.stats();
  EXPECT_LE(st.occupancy_bytes, cfg.max_bytes);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_TRUE(st.conserved());
}

// ---- nonce-order gating (the ingestion front's configuration) ----

TEST(TxPoolNonceOrder, QueuedUntilGapFills) {
  TxPoolConfig cfg;
  cfg.enforce_nonce_order = true;
  TxPool pool(cfg);
  const Address sender = Address::from_id(0x1001);
  pool.note_sender_nonce(sender, 0);
  pool.add(make_tx(1, 2, 99));
  EXPECT_EQ(pool.pop(), std::nullopt);  // gap at nonce 0: queued
  EXPECT_EQ(pool.stats().queued, 1u);
  pool.add(make_tx(1, 0, 10));
  EXPECT_EQ(pool.pop()->nonce, 0u);
  EXPECT_EQ(pool.pop(), std::nullopt);  // gap at nonce 1 remains
  pool.add(make_tx(1, 1, 10));
  EXPECT_EQ(pool.pop()->nonce, 1u);
  EXPECT_EQ(pool.pop()->nonce, 2u);
  EXPECT_TRUE(pool.stats().conserved());
}

TEST(TxPoolNonceOrder, PerSenderMonotonePopsUnderShuffledArrivals) {
  // Property: whatever the arrival order, popped nonces are strictly
  // increasing per sender (no push_back in this scenario).
  Xoshiro256 rng(0xbeef);
  for (int round = 0; round < 20; ++round) {
    TxPoolConfig cfg;
    cfg.enforce_nonce_order = true;
    TxPool pool(cfg);
    constexpr std::uint64_t kSenders = 6;
    constexpr std::uint64_t kNonces = 12;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> arrivals;
    for (std::uint64_t s = 0; s < kSenders; ++s) {
      pool.note_sender_nonce(Address::from_id(0x1000 + s), 0);
      for (std::uint64_t n = 0; n < kNonces; ++n) arrivals.emplace_back(s, n);
    }
    for (std::size_t i = arrivals.size() - 1; i > 0; --i)
      std::swap(arrivals[i], arrivals[rng.below(i + 1)]);

    std::unordered_map<Address, std::uint64_t> next_expected;
    std::size_t popped = 0;
    std::size_t fed = 0;
    while (popped < kSenders * kNonces) {
      // Interleave feeding and draining randomly.
      if (fed < arrivals.size() && (rng.chance(0.5) || pool.empty())) {
        const auto [s, n] = arrivals[fed++];
        EXPECT_TRUE(pool.add(make_tx(s, n, rng.range(1, 100))).admitted());
        continue;
      }
      auto tx = pool.pop();
      if (!tx.has_value()) continue;
      std::uint64_t& expected = next_expected[tx->from];
      EXPECT_EQ(tx->nonce, expected) << "non-monotone pop";
      ++expected;
      ++popped;
    }
    EXPECT_TRUE(pool.empty());
    EXPECT_TRUE(pool.stats().conserved());
  }
}

// ---- randomized interleavings: caps + conservation + determinism ----

TEST(TxPoolFuzz, CapacityNeverExceededUnderInterleavings) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed);
    TxPoolConfig cfg;
    cfg.max_txs = 24;
    cfg.max_bytes = 24 * 140;
    TxPool pool(cfg);
    std::vector<chain::Transaction> held;  // popped, not yet returned
    for (int op = 0; op < 2000; ++op) {
      const double roll = rng.uniform01();
      if (roll < 0.55) {
        pool.add(make_tx(rng.below(10), rng.below(40), rng.range(1, 500),
                         rng.below(60)));
      } else if (roll < 0.8) {
        auto tx = pool.pop();
        if (tx.has_value()) held.push_back(std::move(*tx));
      } else if (roll < 0.9 && !held.empty()) {
        pool.push_back(std::move(held.back()));
        held.pop_back();
      } else if (!held.empty()) {
        const auto tx = std::move(held.back());
        held.pop_back();
        if (rng.chance(0.5))
          pool.committed(tx.from, tx.nonce);
        else
          pool.dropped(tx.from, tx.nonce);
      }
      // Caps bound *admission*; returning in-flight residents may overshoot
      // transiently, so only assert the cap when nothing is held out.
      if (held.empty()) {
        EXPECT_LE(pool.size(), cfg.max_txs);
      }
      EXPECT_TRUE(pool.stats().conserved()) << "op " << op << " seed " << seed;
    }
  }
}

TEST(TxPoolFuzz, AddOnlyNeverExceedsCaps) {
  Xoshiro256 rng(7);
  TxPoolConfig cfg;
  cfg.max_txs = 16;
  cfg.max_bytes = 16 * 120;
  TxPool pool(cfg);
  // Unique slots (replacements are byte-cap-exempt and tested separately).
  for (std::uint64_t op = 0; op < 3000; ++op) {
    pool.add(make_tx(op % 64, op / 64, rng.range(1, 300), rng.below(50)));
    EXPECT_LE(pool.size(), cfg.max_txs);
    EXPECT_LE(pool.stats().occupancy_bytes, cfg.max_bytes);
  }
  EXPECT_TRUE(pool.stats().conserved());
}

TEST(TxPoolFuzz, PopOrderDeterministicUnderIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    TxPoolConfig cfg;
    cfg.max_txs = 32;
    cfg.enforce_nonce_order = true;
    TxPool pool(cfg);
    std::vector<std::pair<Address, std::uint64_t>> popped;
    for (int op = 0; op < 1500; ++op) {
      if (rng.chance(0.6)) {
        pool.add(make_tx(rng.below(8), rng.below(24), rng.range(1, 200)));
      } else {
        auto tx = pool.pop();
        if (tx.has_value()) {
          popped.emplace_back(tx->from, tx->nonce);
          pool.committed(tx->from, tx->nonce);
        }
      }
    }
    return popped;
  };
  for (std::uint64_t seed = 11; seed < 14; ++seed) {
    const auto a = run(seed);
    const auto b = run(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_FALSE(a.empty());
  }
}

TEST(TxPoolFuzz, StatsAccountEveryOutcome) {
  Xoshiro256 rng(99);
  TxPoolConfig cfg;
  cfg.max_txs = 12;
  cfg.replace_bump_percent = 10;
  TxPool pool(cfg);
  std::uint64_t attempts = 0;
  for (int op = 0; op < 4000; ++op) {
    ++attempts;
    pool.add(make_tx(rng.below(4), rng.below(6), rng.range(1, 50)));
    if (rng.chance(0.2)) {
      auto tx = pool.pop();
      if (tx.has_value()) pool.committed(tx->from, tx->nonce);
    }
  }
  const TxPoolStats st = pool.stats();
  // Every admission attempt lands in exactly one outcome bucket.
  EXPECT_EQ(attempts, st.accepted + st.rejected_underpriced +
                          st.rejected_nonce_too_low + st.rejected_pool_full +
                          st.rejected_duplicate);
  EXPECT_TRUE(st.conserved());
  EXPECT_GT(st.replaced, 0u);
  EXPECT_GT(st.rejected_underpriced, 0u);
  EXPECT_GT(st.rejected_nonce_too_low, 0u);
}

}  // namespace
}  // namespace blockpilot::txpool
