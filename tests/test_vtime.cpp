// Virtual-time bookkeeping and transaction-envelope edge cases.
#include <gtest/gtest.h>

#include <thread>

#include "evm/gas.hpp"
#include "evm/state_transition.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot {
namespace {

TEST(WorkLedger, ConcurrentAddsAreLossless) {
  vtime::WorkLedger ledger(4);
  std::vector<std::jthread> threads;
  for (std::size_t w = 0; w < 4; ++w) {
    threads.emplace_back([&ledger, w] {
      for (int i = 0; i < 10'000; ++i) ledger.add(w, 3);
    });
  }
  threads.clear();
  for (std::size_t w = 0; w < 4; ++w) EXPECT_EQ(ledger.clock(w), 30'000u);
  EXPECT_EQ(ledger.total(), 120'000u);
  EXPECT_EQ(ledger.makespan(), 30'000u);
}

TEST(CostModel, DefaultsAreGasScaled) {
  // Overheads must stay small relative to a plain transfer (21000 gas) so
  // they perturb rather than dominate the schedules.
  const vtime::CostModel costs;
  EXPECT_LT(costs.commit_cost, evm::gas::kTxIntrinsic / 4);
  EXPECT_LT(costs.apply_cost, evm::gas::kTxIntrinsic / 4);
  EXPECT_LT(costs.dispatch_cost, costs.commit_cost);
  // Block-level costs are of block scale, not transaction scale.
  EXPECT_GT(costs.block_switch_cost, evm::gas::kTxIntrinsic);
  EXPECT_GT(costs.block_fixed_cost, costs.block_switch_cost / 2);
}

// ---- state-transition envelope edges ----

struct EnvelopeFixture : ::testing::Test {
  state::WorldState ws;
  evm::BlockContext block;
  chain::Transaction tx;

  EnvelopeFixture() {
    block.coinbase = Address::from_id(0xFEE);
    tx.from = Address::from_id(1);
    tx.to = Address::from_id(2);
    tx.gas_limit = 21'000;
    tx.gas_price = U256{3};
  }

  evm::TxExecResult run() {
    const state::WorldStateView view(ws);
    state::ExecBuffer buffer(view);
    const auto r = evm::execute_transaction(buffer, block, tx);
    if (r.status == evm::TxStatus::kIncluded)
      for (const auto& [key, value] : buffer.write_set()) ws.set(key, value);
    return r;
  }
};

TEST_F(EnvelopeFixture, ExactBalanceSucceeds) {
  // Balance == value + gas_limit * price exactly: must be includable.
  tx.value = U256{500};
  ws.set(state::StateKey::balance(tx.from),
         tx.value + tx.gas_price * U256{tx.gas_limit});
  const auto r = run();
  ASSERT_EQ(r.status, evm::TxStatus::kIncluded);
  // Transfer used all gas == intrinsic; sender ends at zero.
  EXPECT_EQ(ws.get(state::StateKey::balance(tx.from)), U256{});
  EXPECT_EQ(ws.get(state::StateKey::balance(tx.to)), U256{500});
}

TEST_F(EnvelopeFixture, OneWeiShortFails) {
  tx.value = U256{500};
  ws.set(state::StateKey::balance(tx.from),
         tx.value + tx.gas_price * U256{tx.gas_limit} - U256{1});
  EXPECT_EQ(run().status, evm::TxStatus::kInvalid);
}

TEST_F(EnvelopeFixture, ZeroValueZeroPriceTransfer) {
  ws.set(state::StateKey::balance(tx.from), U256{1});
  tx.gas_price = U256{};
  tx.value = U256{};
  const auto r = run();
  ASSERT_EQ(r.status, evm::TxStatus::kIncluded);
  EXPECT_EQ(r.fee(), U256{});
  EXPECT_EQ(ws.get(state::StateKey::nonce(tx.from)), U256{1});
}

TEST_F(EnvelopeFixture, SelfTransferPreservesBalanceMinusFees) {
  tx.to = tx.from;
  tx.value = U256{1000};
  ws.set(state::StateKey::balance(tx.from), U256{1'000'000});
  const auto r = run();
  ASSERT_EQ(r.status, evm::TxStatus::kIncluded);
  EXPECT_EQ(ws.get(state::StateKey::balance(tx.from)),
            U256{1'000'000} - r.fee());
}

TEST_F(EnvelopeFixture, GasLimitAboveBlockLimitInvalid) {
  ws.set(state::StateKey::balance(tx.from), ~U256{}.shr(1));
  tx.gas_limit = block.gas_limit + 1;
  EXPECT_EQ(run().status, evm::TxStatus::kInvalid);
}

TEST_F(EnvelopeFixture, IntrinsicGasExactlyAtLimit) {
  ws.set(state::StateKey::balance(tx.from), U256{1'000'000});
  tx.data = {0x01};  // intrinsic 21016
  tx.gas_limit = evm::intrinsic_gas(tx);
  const auto r = run();
  ASSERT_EQ(r.status, evm::TxStatus::kIncluded);
  EXPECT_EQ(r.gas_used, tx.gas_limit);  // nothing left for the call: fine,
                                        // target has no code
}

}  // namespace
}  // namespace blockpilot
