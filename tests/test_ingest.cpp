// End-to-end ingestion soak: NodeDriver under the deterministic traffic
// firehose.
//
// The acceptance surface of the live-ingestion tentpole:
//  * a 64-scenario (seed x profile) fuzz sweep asserting the conservation
//    invariant — every admitted transaction is committed, evicted, dropped,
//    replaced, stale-dropped, or still resident — and that no (sender,
//    nonce) slot ever commits twice;
//  * bit-stable re-runs: identical (profile, seed) produces identical block
//    hash sequences and final state roots (kVirtualTime keeps wall clock
//    out of state evolution);
//  * a >= 500-block sustained firehose run (the ROADMAP's "node serving
//    heavy traffic" north star, scaled to CI);
//  * concurrent submit-vs-pop: a feeder thread races admissions against
//    host-thread proposer workers — the TSan configuration (stress label).
//
// Sweeps trim under sanitizers like the net fuzz does: the tool's value is
// in the interleavings it explores, not the scenario count.
#include <gtest/gtest.h>

#include <set>

#include "core/node_driver.hpp"

#if defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

namespace blockpilot::core {
namespace {

std::vector<workload::TrafficProfile> all_profiles() {
  auto shrink = [](workload::TrafficProfile p) {
    p.base.num_eoa = 240;  // small sender universe: denser slot collisions
    return p;
  };
  return {shrink(workload::traffic_steady()),
          shrink(workload::traffic_bursty()),
          shrink(workload::traffic_nonce_storm()),
          shrink(workload::traffic_fee_frenzy())};
}

NodeDriverConfig soak_config(const workload::TrafficProfile& profile,
                             std::uint64_t seed) {
  NodeDriverConfig cfg;
  cfg.profile = profile;
  cfg.seed = seed;
  cfg.proposer.mode = ScheduleMode::kVirtualTime;
  cfg.proposer.threads = 4;
  cfg.proposer.max_txs = 48;  // fixed-size blocks keep the pool pressured
  cfg.pool.max_txs = 512;
  cfg.pool.max_bytes = 512 * 200;
  cfg.pool.enforce_nonce_order = true;
  cfg.pool.replace_bump_percent = profile.replace_bump_percent;
  cfg.blocks = kSanitized ? 6 : 12;
  cfg.ticks_per_block = 2;
  cfg.speculation_depth = 2;
  return cfg;
}

void assert_invariants(const NodeDriverResult& r, const char* what) {
  EXPECT_TRUE(r.conserved)
      << what << ": accepted=" << r.pool_stats.accepted
      << " committed=" << r.pool_stats.committed
      << " dropped=" << r.pool_stats.dropped
      << " evicted=" << r.pool_stats.evicted
      << " replaced=" << r.pool_stats.replaced
      << " stale=" << r.pool_stats.stale_dropped
      << " pending=" << r.pool_stats.pending
      << " queued=" << r.pool_stats.queued
      << " deferred=" << r.pool_stats.deferred
      << " in_flight=" << r.pool_stats.in_flight;
  EXPECT_EQ(r.duplicate_commits, 0u) << what;
  EXPECT_EQ(r.pool_stats.in_flight, 0u) << what;
  EXPECT_GT(r.txs_committed, 0u) << what;
}

TEST(IngestSoak, ConservationAcrossSixtyFourScenarios) {
  const auto profiles = all_profiles();
  const std::uint64_t seeds_per_profile = kSanitized ? 3 : 16;
  std::uint64_t scenarios = 0;
  for (const auto& profile : profiles) {
    for (std::uint64_t s = 0; s < seeds_per_profile; ++s) {
      const std::uint64_t seed = 0xA11CE + s * 7919;
      NodeDriver driver(soak_config(profile, seed));
      const NodeDriverResult r = driver.run();
      assert_invariants(
          r, (profile.name + "/" + std::to_string(seed)).c_str());
      ++scenarios;
    }
  }
  EXPECT_EQ(scenarios, seeds_per_profile * profiles.size());
}

TEST(IngestSoak, BitStableRerun) {
  for (const auto& profile : all_profiles()) {
    NodeDriver a(soak_config(profile, 0xD0D0));
    NodeDriver b(soak_config(profile, 0xD0D0));
    const NodeDriverResult ra = a.run();
    const NodeDriverResult rb = b.run();
    EXPECT_EQ(ra.block_hashes, rb.block_hashes) << profile.name;
    EXPECT_EQ(ra.final_state_root, rb.final_state_root) << profile.name;
    EXPECT_EQ(ra.txs_committed, rb.txs_committed) << profile.name;
    EXPECT_EQ(ra.pool_stats.accepted, rb.pool_stats.accepted) << profile.name;
    EXPECT_EQ(ra.pool_stats.evicted, rb.pool_stats.evicted) << profile.name;
    EXPECT_EQ(ra.occupancy, rb.occupancy) << profile.name;
    // A different seed must actually steer the run somewhere else.
    NodeDriver c(soak_config(profile, 0xD0D1));
    EXPECT_NE(ra.block_hashes, c.run().block_hashes) << profile.name;
  }
}

TEST(IngestSoak, SustainedFirehoseFiveHundredBlocks) {
  NodeDriverConfig cfg = soak_config(all_profiles()[0], 0xF1EE);
  cfg.blocks = kSanitized ? 64 : 500;
  cfg.proposer.threads = 4;
  const NodeDriverResult r = NodeDriver(cfg).run();
  assert_invariants(r, "sustained");
  EXPECT_EQ(r.blocks, cfg.blocks);
  EXPECT_EQ(r.block_hashes.size(), cfg.blocks);
  // The firehose outpaces fixed-size blocks, so the node must stay busy:
  // the overwhelming majority of blocks carry transactions.
  EXPECT_LT(r.empty_blocks, cfg.blocks / 10 + 1);
  EXPECT_GT(r.admit_to_settle.samples, 0u);
  EXPECT_GE(r.admit_to_settle.p99_us, r.admit_to_settle.p50_us);
}

TEST(IngestSoak, ConcurrentSubmitVsPop) {
  // Host-thread proposer workers pop while a feeder thread keeps adding:
  // genuine concurrency over the pool's whole surface (add / pop /
  // push_back / defer / committed racing).  Determinism does not hold here;
  // conservation and no-duplication must.
  const auto profiles = all_profiles();
  const std::uint64_t rounds = kSanitized ? 2 : 6;
  for (std::uint64_t s = 0; s < rounds; ++s) {
    NodeDriverConfig cfg =
        soak_config(profiles[s % profiles.size()], 0xC0C0 + s);
    cfg.proposer.mode = ScheduleMode::kHostThreads;
    cfg.proposer.threads = 4;
    cfg.concurrent_submission = true;
    cfg.blocks = kSanitized ? 4 : 8;
    const NodeDriverResult r = NodeDriver(cfg).run();
    assert_invariants(r, "concurrent");
  }
}

// The pipeline's backpressure knob must actually bound speculation: with
// depth 0 every block settles before the next proposes, and the chain the
// node builds is still exactly the deterministic one.
TEST(IngestSoak, SpeculationDepthZeroStillDeterministic) {
  NodeDriverConfig cfg = soak_config(all_profiles()[1], 0xABCD);
  cfg.speculation_depth = 0;
  NodeDriverConfig deep = cfg;
  deep.speculation_depth = 4;
  const NodeDriverResult r0 = NodeDriver(cfg).run();
  const NodeDriverResult r4 = NodeDriver(deep).run();
  assert_invariants(r0, "depth0");
  // Speculation depth affects settle timing, never block contents.
  EXPECT_EQ(r0.block_hashes, r4.block_hashes);
}

}  // namespace
}  // namespace blockpilot::core
