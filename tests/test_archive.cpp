#include "chain/archive.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/blockpilot.hpp"

namespace blockpilot::chain {
namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

TEST(Archive, EmptyArchiveRoundTrip) {
  std::stringstream stream;
  BlockArchiveWriter writer(stream);
  EXPECT_EQ(writer.entries(), 0u);
  BlockArchiveReader reader(stream);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.next(), std::nullopt);
}

TEST(Archive, BadMagicRejected) {
  std::stringstream stream;
  stream << "NOTANARCHIVE";
  BlockArchiveReader reader(stream);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.next(), std::nullopt);
}

TEST(Archive, TruncatedEntryFlagsError) {
  std::stringstream stream;
  {
    BlockArchiveWriter writer(stream);
    BlockAnnouncement ann;
    ann.block.header.number = 1;
    writer.append(ann);
  }
  std::string data = stream.str();
  data.resize(data.size() - 3);  // cut into the payload
  std::stringstream truncated(data);
  BlockArchiveReader reader(truncated);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_FALSE(reader.ok());
}

TEST(Archive, ExportReplayIntoFreshNode) {
  // A proposing node builds a chain and archives every announcement; a
  // fresh validating node replays the archive from genesis and must arrive
  // at the identical head — the export/import sync story.
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 0xA7C;
  wc.txs_per_block = 40;
  workload::WorkloadGenerator gen(wc);

  std::stringstream archive_stream;
  Hash256 producer_head_root;
  {
    BlockArchiveWriter writer(archive_stream);
    chain::Blockchain chain(gen.genesis());
    ThreadPool workers(4);
    core::ProposerConfig pc;
    pc.threads = 4;
    core::OccWsiProposer proposer(pc);

    for (std::uint64_t height = 1; height <= 6; ++height) {
      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      core::ProposedBlock blk =
          proposer.propose(*chain.head_state(), ctx_for(height), pool, workers);
      blk.block.header.parent_hash = chain.head().header.hash();
      writer.append({blk.block, blk.profile});
      chain.commit_block(blk.block, blk.post_state, blk.receipts);
    }
    producer_head_root = chain.head().header.state_root;
    EXPECT_EQ(writer.entries(), 6u);
  }

  // Fresh node: same genesis, no prior knowledge of the blocks.
  workload::WorkloadGenerator gen2(wc);  // independent instance
  chain::Blockchain replica(gen2.genesis());
  ThreadPool workers(4);
  core::ValidatorConfig vc;
  vc.threads = 4;
  core::BlockValidator validator(vc);

  BlockArchiveReader reader(archive_stream);
  ASSERT_TRUE(reader.ok());
  std::size_t replayed = 0;
  while (auto ann = reader.next()) {
    const auto outcome = validator.validate(*replica.head_state(), ann->block,
                                            ann->profile, workers);
    ASSERT_TRUE(outcome.valid)
        << "replay failed at entry " << replayed << ": "
        << outcome.reject_reason;
    replica.commit_block(ann->block, outcome.exec.post_state,
                         outcome.exec.receipts);
    ++replayed;
  }
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(replayed, 6u);
  EXPECT_EQ(replica.height(), 6u);
  EXPECT_EQ(replica.head().header.state_root, producer_head_root);
}

}  // namespace
}  // namespace blockpilot::chain
