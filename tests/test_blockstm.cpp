// Block-STM engine tests (docs/blockstm.md): the multi-version memory, the
// collaborative scheduler, and the central exactness property — a Block-STM
// block is bit-identical to serially executing the same candidates in their
// pool pop order.  The host-threads cases double as the `tsan-stm` hammer.
#include <gtest/gtest.h>

#include "core/blockpilot.hpp"
#include "sched/blockstm_scheduler.hpp"
#include "state/versioned_state.hpp"

namespace blockpilot::core {
namespace {

using sched::BlockStmScheduler;
using state::MvMemory;
using state::MvView;
using state::StateKey;
using state::WorldState;
using Task = BlockStmScheduler::Task;

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

// ---- MvMemory -------------------------------------------------------------

struct MvMemoryFixture : ::testing::Test {
  WorldState base;
  Address acct = Address::from_id(7);
  StateKey key = StateKey::balance(acct);

  MvMemoryFixture() { base.set(key, U256{1000}); }
};

TEST_F(MvMemoryFixture, ReadsHighestLowerWriter) {
  MvMemory mv(base, 8);
  mv.record(2, 0, {{key, U256{200}}});
  mv.record(5, 0, {{key, U256{500}}});

  // txn 1 sees no lower writer: pre-block state.
  auto r = mv.read(key, 1);
  EXPECT_EQ(r.kind, MvMemory::ReadKind::kBase);
  EXPECT_EQ(r.value, U256{1000});

  // txn 4 sees txn 2 (highest writer below it), not txn 5.
  r = mv.read(key, 4);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kOk);
  EXPECT_EQ(r.value, U256{200});
  EXPECT_EQ(r.version.txn, 2u);
  EXPECT_EQ(r.version.incarnation, 0u);

  r = mv.read(key, 7);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kOk);
  EXPECT_EQ(r.value, U256{500});
  EXPECT_EQ(r.version.txn, 5u);

  // A transaction never reads its own entry.
  r = mv.read(key, 5);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kOk);
  EXPECT_EQ(r.version.txn, 2u);
}

TEST_F(MvMemoryFixture, EstimateMarksAbortedFootprint) {
  MvMemory mv(base, 4);
  mv.record(1, 0, {{key, U256{111}}});
  mv.convert_to_estimates(1);

  auto r = mv.read(key, 3);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kEstimate);
  EXPECT_EQ(r.version.txn, 1u);

  // The next incarnation's write clears the marker and bumps the version.
  mv.record(1, 1, {{key, U256{112}}});
  r = mv.read(key, 3);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kOk);
  EXPECT_EQ(r.value, U256{112});
  EXPECT_EQ(r.version.incarnation, 1u);
}

TEST_F(MvMemoryFixture, RecordDiffsWriteSetsAcrossIncarnations) {
  MvMemory mv(base, 4);
  const StateKey other = StateKey::nonce(acct);

  EXPECT_TRUE(mv.record(1, 0, {{key, U256{1}}, {other, U256{2}}}));
  // Same locations rewritten: no new location.
  EXPECT_FALSE(mv.record(1, 1, {{key, U256{3}}, {other, U256{4}}}));
  // Shrunk write set: `other` must disappear from the memory.
  EXPECT_FALSE(mv.record(1, 2, {{key, U256{5}}}));
  EXPECT_EQ(mv.read(other, 3).kind, MvMemory::ReadKind::kBase);
  // Writing it again is a new location for incarnation 3.
  EXPECT_TRUE(mv.record(1, 3, {{key, U256{6}}, {other, U256{7}}}));
}

TEST_F(MvMemoryFixture, FlattenMaterializesLastWriter) {
  MvMemory mv(base, 4);
  mv.record(0, 0, {{key, U256{10}}});
  mv.record(2, 1, {{key, U256{30}}});

  WorldState out = base;
  mv.flatten_into(out);
  EXPECT_EQ(out.get(key), U256{30});
}

TEST_F(MvMemoryFixture, ViewLogsVersionsAndMemoizes) {
  MvMemory mv(base, 4);
  mv.record(0, 0, {{key, U256{42}}});

  MvView view(mv);
  view.begin(2);
  EXPECT_EQ(view.read(key), U256{42});
  EXPECT_EQ(view.read(key), U256{42});  // memoized
  ASSERT_EQ(view.read_log().size(), 1u);
  EXPECT_EQ(view.read_log()[0].version.txn, 0u);

  // Lower txn re-executes underneath: the memo keeps this incarnation's
  // reads repeatable (validation catches the change, not the execution).
  mv.record(0, 1, {{key, U256{43}}});
  EXPECT_EQ(view.read(key), U256{42});

  const StateKey other = StateKey::nonce(acct);
  view.begin(1);  // re-arm clears the memo and the log
  EXPECT_EQ(view.read(other), base.get(other));
  ASSERT_EQ(view.read_log().size(), 1u);
  EXPECT_EQ(view.read_log()[0].version.txn, MvMemory::Version::kBase);
  EXPECT_FALSE(view.blocked());
}

// ---- BlockStmScheduler ----------------------------------------------------

/// next_task() may return kNone while the validation counter burns through
/// still-executing transactions (finish_execution re-covers them); real
/// workers just retry.  Spin a few times for the expected kind.
Task claim(BlockStmScheduler& s, Task::Kind kind, int spins = 16) {
  for (int i = 0; i < spins; ++i) {
    Task t = s.next_task();
    if (t.kind == kind) return t;
    EXPECT_FALSE(t) << "unexpected task of the other kind";
  }
  return {};
}

TEST(BlockStmScheduler, HandsOutExecutionsInPresetOrder) {
  BlockStmScheduler s(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    Task t = claim(s, Task::Kind::kExecute);
    ASSERT_TRUE(t);
    EXPECT_EQ(t.txn, i);
    EXPECT_EQ(t.incarnation, 0u);
  }
  EXPECT_FALSE(s.next_task());  // everything claimed, nothing validatable yet
  EXPECT_FALSE(s.done());
}

TEST(BlockStmScheduler, CleanPathExecutesValidatesCompletes) {
  BlockStmScheduler s(2);
  Task e0 = claim(s, Task::Kind::kExecute);
  Task e1 = claim(s, Task::Kind::kExecute);
  ASSERT_TRUE(e0 && e1);

  // The validation counter already burned past txn 0 while claiming txn 1
  // (it re-checks on finish), so txn 0's revalidation comes back directly;
  // txn 1's is still covered by the counter and comes from next_task().
  Task v0 = s.finish_execution(e0.txn, e0.incarnation, false);
  ASSERT_EQ(v0.kind, Task::Kind::kValidate);
  EXPECT_EQ(v0.txn, 0u);
  EXPECT_FALSE(s.finish_execution(e1.txn, e1.incarnation, false));
  Task v1 = claim(s, Task::Kind::kValidate);
  ASSERT_TRUE(v1);
  EXPECT_EQ(v1.txn, 1u);

  EXPECT_FALSE(s.finish_validation(v0.txn, v0.incarnation, false));
  EXPECT_EQ(s.stable_prefix(), 1u);
  EXPECT_FALSE(s.finish_validation(v1.txn, v1.incarnation, false));
  EXPECT_EQ(s.stable_prefix(), 2u);
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.aborts(), 0u);
}

TEST(BlockStmScheduler, AbortSchedulesReexecutionAndWave) {
  BlockStmScheduler s(3);
  Task e0 = claim(s, Task::Kind::kExecute);
  Task e1 = claim(s, Task::Kind::kExecute);
  Task e2 = claim(s, Task::Kind::kExecute);
  ASSERT_TRUE(e0 && e1 && e2);
  Task v0 = s.finish_execution(e0.txn, e0.incarnation, false);
  Task v1 = s.finish_execution(e1.txn, e1.incarnation, false);
  ASSERT_TRUE(v0 && v1);
  EXPECT_FALSE(s.finish_execution(e2.txn, e2.incarnation, false));
  Task v2 = claim(s, Task::Kind::kValidate);
  ASSERT_TRUE(v2);
  EXPECT_EQ(v2.txn, 2u);

  EXPECT_FALSE(s.finish_validation(v0.txn, v0.incarnation, false));
  EXPECT_FALSE(s.finish_validation(v2.txn, v2.incarnation, false));

  // txn 1 fails validation: abort, incarnation 1 becomes the follow-up.
  ASSERT_TRUE(s.try_validation_abort(1, 0));
  EXPECT_FALSE(s.try_validation_abort(1, 0));  // idempotent-once
  Task re = s.finish_validation(1, 0, true);
  ASSERT_EQ(re.kind, Task::Kind::kExecute);
  EXPECT_EQ(re.txn, 1u);
  EXPECT_EQ(re.incarnation, 1u);
  EXPECT_EQ(s.aborts(), 1u);
  EXPECT_EQ(s.stable_prefix(), 1u);  // txn 0 stays stable

  // The re-execution writes a new location: no direct revalidation task —
  // the lowered wave counter re-covers txn 1 and the already-validated
  // txn 2 through next_task().
  EXPECT_FALSE(s.finish_execution(1, 1, /*wrote_new_location=*/true));
  Task v1b = claim(s, Task::Kind::kValidate);
  ASSERT_TRUE(v1b);
  EXPECT_EQ(v1b.txn, 1u);
  EXPECT_EQ(v1b.incarnation, 1u);
  EXPECT_FALSE(s.finish_validation(v1b.txn, v1b.incarnation, false));

  Task v2b = claim(s, Task::Kind::kValidate);
  ASSERT_TRUE(v2b);
  EXPECT_EQ(v2b.txn, 2u);
  EXPECT_FALSE(s.finish_validation(v2b.txn, v2b.incarnation, false));
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.stable_prefix(), 3u);
}

TEST(BlockStmScheduler, DependencySuspendsAndResumes) {
  BlockStmScheduler s(2);
  Task e0 = claim(s, Task::Kind::kExecute);
  Task e1 = claim(s, Task::Kind::kExecute);
  ASSERT_TRUE(e0 && e1);

  // txn 1 read txn 0's ESTIMATE: park it on txn 0.
  ASSERT_TRUE(s.add_dependency(1, 0));
  EXPECT_FALSE(s.next_task());  // suspended, not claimable

  // txn 0 finishing resumes txn 1 (same incarnation re-issued).
  Task v0 = s.finish_execution(0, 0, false);
  ASSERT_EQ(v0.kind, Task::Kind::kValidate);
  Task e1b = claim(s, Task::Kind::kExecute);
  ASSERT_TRUE(e1b);
  EXPECT_EQ(e1b.txn, 1u);
  EXPECT_EQ(e1b.incarnation, 0u);

  // Racing the other way: blocking txn already executed -> caller retries.
  EXPECT_FALSE(s.add_dependency(1, 0));

  Task v1 = s.finish_execution(1, 0, false);
  EXPECT_FALSE(s.finish_validation(v0.txn, v0.incarnation, false));
  EXPECT_FALSE(s.finish_validation(v1.txn, v1.incarnation, false));
  EXPECT_TRUE(s.done());
}

// ---- cross-engine differential -------------------------------------------

ProposedBlock propose_mode(const WorldState& pre,
                           std::vector<chain::Transaction> txs,
                           ScheduleMode mode, std::size_t threads,
                           std::uint64_t gas_limit = 30'000'000,
                           std::size_t max_txs = 0) {
  txpool::TxPool pool;
  pool.add_all(std::move(txs));
  ProposerConfig cfg;
  cfg.mode = mode;
  cfg.threads = threads;
  cfg.block_gas_limit = gas_limit;
  cfg.max_txs = max_txs;
  BlockProposer proposer(cfg);
  ThreadPool workers(std::max<std::size_t>(threads, 1));
  return proposer.propose(pre, ctx_for(1), pool, workers);
}

/// The differential's serial oracle: drain a fresh pool holding the same
/// transactions to reconstruct the preset (pop) order, then execute it
/// serially with the same budget.  Block-STM's candidate selection reserves
/// by gas_limit, so the serial gas gate can never drop a candidate — the
/// Block-STM block must equal this execution bit for bit.
void expect_matches_serial_pop_order(const WorldState& pre,
                                     const std::vector<chain::Transaction>& txs,
                                     const ProposedBlock& block,
                                     std::uint64_t gas_limit = 30'000'000,
                                     std::size_t max_txs = 0) {
  txpool::TxPool pool;
  pool.add_all(txs);
  std::vector<chain::Transaction> pop_order;
  std::uint64_t reserved = 0;
  while (max_txs == 0 || pop_order.size() < max_txs) {
    auto tx = pool.pop();
    if (!tx) break;
    if (reserved + tx->gas_limit > gas_limit) break;
    reserved += tx->gas_limit;
    pop_order.push_back(std::move(*tx));
  }

  SerialOptions opts;
  opts.block_gas_limit = gas_limit;
  opts.drop_unincludable = true;
  const SerialResult oracle =
      execute_serial(pre, ctx_for(1), std::span(pop_order), opts);
  ASSERT_TRUE(oracle.ok);

  EXPECT_EQ(block.block.transactions, oracle.included);
  EXPECT_EQ(block.block.header.state_root, oracle.exec.state_root);
  EXPECT_EQ(block.block.header.gas_used, oracle.exec.gas_used);
  EXPECT_EQ(chain::receipts_root(block.receipts),
            chain::receipts_root(oracle.exec.receipts));
  EXPECT_EQ(block.post_state->state_root(), oracle.exec.state_root);
}

TEST(BlockStmDifferential, MatchesSerialPopOrderAcrossPresets) {
  const workload::WorkloadConfig presets[] = {
      workload::preset_low_conflict(), workload::preset_mainnet(),
      workload::preset_high_conflict(), workload::preset_nft_drop()};
  for (std::size_t p = 0; p < std::size(presets); ++p) {
    for (std::uint64_t seed : {0x5eedull, 0xf00dull}) {
      workload::WorkloadConfig cfg = presets[p];
      cfg.seed = seed;
      workload::WorkloadGenerator gen(cfg);
      const WorldState genesis = gen.genesis();
      const auto txs = gen.next_batch(120);

      const ProposedBlock block =
          propose_mode(genesis, txs, ScheduleMode::kBlockStm, 8);
      ASSERT_GT(block.block.transactions.size(), 0u)
          << "preset " << p << " seed " << seed;
      expect_matches_serial_pop_order(genesis, txs, block);
    }
  }
}

TEST(BlockStmDifferential, VirtualModeIsDeterministic) {
  workload::WorkloadGenerator gen(workload::preset_high_conflict());
  const WorldState genesis = gen.genesis();
  const auto txs = gen.next_batch(100);

  const ProposedBlock a =
      propose_mode(genesis, txs, ScheduleMode::kBlockStm, 8);
  const ProposedBlock b =
      propose_mode(genesis, txs, ScheduleMode::kBlockStm, 8);
  EXPECT_EQ(a.block.header.hash(), b.block.header.hash());
  EXPECT_EQ(a.stats.vtime_makespan, b.stats.vtime_makespan);
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
}

TEST(BlockStmDifferential, HostThreadsMatchesVirtualBlock) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  const WorldState genesis = gen.genesis();
  const auto txs = gen.next_batch(100);

  const ProposedBlock vt =
      propose_mode(genesis, txs, ScheduleMode::kBlockStm, 8);
  const ProposedBlock host =
      propose_mode(genesis, txs, ScheduleMode::kBlockStmHost, 8);
  // Same preset order, same semantics: identical block regardless of the
  // realization (DES worker model vs real threads).
  EXPECT_EQ(vt.block.header.hash(), host.block.header.hash());
  EXPECT_EQ(chain::receipts_root(vt.receipts),
            chain::receipts_root(host.receipts));
}

TEST(BlockStmDifferential, AgreesWithOccWsiOnDisjointTransfers) {
  // The engines serialize differently (OCC re-pops after aborts; Block-STM
  // pins the preset order), so root equality is only guaranteed when the
  // transactions commute: disjoint native transfers.  Both engines must
  // include every transaction and land on the same root.
  workload::WorkloadGenerator gen(workload::preset_low_conflict());
  const WorldState genesis = gen.genesis();
  std::vector<chain::Transaction> txs;
  for (std::size_t i = 0; i < 100; ++i) {
    chain::Transaction tx;
    tx.from = gen.eoa(i);
    tx.to = gen.eoa(1000 + i);
    tx.nonce = 0;
    tx.value = U256{100 + i};
    tx.gas_limit = 25'000;
    tx.gas_price = U256{40};
    txs.push_back(std::move(tx));
  }

  const ProposedBlock stm =
      propose_mode(genesis, txs, ScheduleMode::kBlockStm, 8);
  const ProposedBlock occ =
      propose_mode(genesis, txs, ScheduleMode::kVirtualTime, 8);
  ASSERT_EQ(stm.block.transactions.size(), txs.size());
  ASSERT_EQ(occ.block.transactions.size(), txs.size());
  EXPECT_EQ(stm.block.header.state_root, occ.block.header.state_root);
  EXPECT_EQ(stm.block.header.gas_used, occ.block.header.gas_used);
}

TEST(BlockStmDifferential, RespectsGasBudgetAndMaxTxs) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  const WorldState genesis = gen.genesis();
  const auto txs = gen.next_batch(60);

  // max_txs cut.
  const ProposedBlock capped =
      propose_mode(genesis, txs, ScheduleMode::kBlockStm, 4, 30'000'000, 10);
  EXPECT_EQ(capped.block.transactions.size(), 10u);
  expect_matches_serial_pop_order(genesis, txs, capped, 30'000'000, 10);

  // Tight gas budget: candidate selection reserves by gas_limit, the block
  // must stay within it and still match the oracle on the same prefix.
  const std::uint64_t tight = 400'000;
  const ProposedBlock small =
      propose_mode(genesis, txs, ScheduleMode::kBlockStm, 4, tight);
  ASSERT_GT(small.block.transactions.size(), 0u);
  EXPECT_LT(small.block.transactions.size(), txs.size());
  EXPECT_LE(small.block.header.gas_used, tight);
  expect_matches_serial_pop_order(genesis, txs, small, tight);
}

// ---- host-threads hammer (the tsan-stm gate) ------------------------------

TEST(BlockStmHammer, HighConflictHostThreads) {
  workload::WorkloadGenerator gen(workload::preset_high_conflict());
  WorldState tip = gen.genesis();
  for (std::uint64_t h = 1; h <= 3; ++h) {
    const auto txs = gen.next_batch(150);
    const ProposedBlock block =
        propose_mode(tip, txs, ScheduleMode::kBlockStmHost, 8);
    ASSERT_GT(block.block.transactions.size(), 0u);

    SerialOptions opts;
    opts.drop_unincludable = false;
    const SerialResult replay = execute_serial(
        tip, ctx_for(1), std::span(block.block.transactions), opts);
    ASSERT_TRUE(replay.ok);
    EXPECT_EQ(replay.exec.state_root, block.block.header.state_root)
        << "height " << h;
    tip = *block.post_state;
  }
}

// ---- driver integration ---------------------------------------------------

TEST(BlockStmDriver, NodeDriverConservesPool) {
  NodeDriverConfig cfg;
  cfg.blocks = 6;
  cfg.ticks_per_block = 4;
  cfg.proposer.mode = ScheduleMode::kBlockStm;
  cfg.proposer.threads = 4;
  NodeDriver driver(cfg);
  const NodeDriverResult res = driver.run();
  EXPECT_TRUE(res.conserved);
  EXPECT_GT(res.txs_committed, 0u);
  EXPECT_EQ(res.duplicate_commits, 0u);
}

}  // namespace
}  // namespace blockpilot::core
