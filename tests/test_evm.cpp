#include <gtest/gtest.h>

#include "evm/assembler.hpp"
#include "evm/gas.hpp"
#include "evm/interpreter.hpp"
#include "evm/state_transition.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "workload/contracts.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::StateKey;
using state::WorldState;
using state::WorldStateView;
using workload::Bytes;

const Address kCaller = Address::from_id(0xAAAA);
const Address kContract = Address::from_id(0xCCCC);
const Address kCoinbase = Address::from_id(0xFEE);

/// Deploys `code` at kContract and executes a message call against it.
struct Runner {
  WorldState ws;
  BlockContext block;

  Runner() {
    block.number = 7;
    block.timestamp = 1234567;
    block.coinbase = kCoinbase;
    ws.set(StateKey::balance(kCaller), U256{1'000'000'000});
  }

  CallResult run(const Bytes& code, Bytes calldata = {},
                 const U256& value = U256{},
                 std::uint64_t gas_budget = 1'000'000) {
    ws.set_code(kContract, code);
    view.emplace(ws);
    buffer.emplace(*view);
    TxContext tx;
    tx.origin = kCaller;
    tx.gas_price = U256{1};
    tx.block = &block;
    Message msg;
    msg.caller = kCaller;
    msg.to = kContract;
    msg.value = value;
    msg.data = std::move(calldata);
    msg.gas = gas_budget;
    return execute_call(*buffer, tx, msg);
  }

  U256 returned_word(const CallResult& r) const {
    return U256::from_be_bytes(std::span(r.output));
  }

  std::optional<WorldStateView> view;
  std::optional<ExecBuffer> buffer;
};

Bytes return_top_of_stack_suffix() {
  // Stores the stack top at memory 0 and returns 32 bytes.
  Assembler a;
  a.push(0).op(Op::MSTORE);
  a.push(0x20).push(0).op(Op::RETURN);
  return a.assemble();
}

Bytes program_returning(Assembler& a) {
  Bytes code = a.assemble();
  const Bytes suffix = return_top_of_stack_suffix();
  code.insert(code.end(), suffix.begin(), suffix.end());
  return code;
}

TEST(Interpreter, ArithmeticPrograms) {
  struct Case {
    std::uint64_t a, b;
    Op op;
    U256 expect;
  };
  const Case cases[] = {
      {3, 4, Op::ADD, U256{7}},
      {10, 4, Op::SUB, U256{6}},   // note: operands pushed b-then-a
      {6, 7, Op::MUL, U256{42}},
      {42, 5, Op::DIV, U256{8}},
      {42, 5, Op::MOD, U256{2}},
      {2, 10, Op::EXP, U256{1024}},
  };
  for (const Case& c : cases) {
    Runner r;
    Assembler a;
    // Push so that the SECOND push is the top (first operand popped).
    a.push(c.b).push(c.a).op(c.op);
    const CallResult res = r.run(program_returning(a));
    ASSERT_EQ(res.status, Status::kSuccess) << op_name(static_cast<std::uint8_t>(c.op));
    EXPECT_EQ(r.returned_word(res), c.expect)
        << op_name(static_cast<std::uint8_t>(c.op));
  }
}

TEST(Interpreter, ComparisonAndBitwise) {
  Runner r;
  Assembler a;
  // (5 < 9) -> 1
  a.push(9).push(5).op(Op::LT);
  const CallResult res = r.run(program_returning(a));
  EXPECT_EQ(r.returned_word(res), U256{1});

  Runner r2;
  Assembler a2;
  a2.push(0x0f).push(0x3c).op(Op::AND);
  EXPECT_EQ(r2.returned_word(r2.run(program_returning(a2))), U256{0x0c});

  Runner r3;
  Assembler a3;
  a3.push(0).op(Op::ISZERO);
  EXPECT_EQ(r3.returned_word(r3.run(program_returning(a3))), U256{1});
}

TEST(Interpreter, Sha3OfMemory) {
  Runner r;
  Assembler a;
  // keccak256 of 32 zero bytes (memory starts zeroed after expansion).
  a.push(32).push(0).op(Op::SHA3);
  const CallResult res = r.run(program_returning(a));
  ASSERT_EQ(res.status, Status::kSuccess);
  const std::array<std::uint8_t, 32> zeros{};
  const crypto::Digest digest = crypto::keccak256(std::span(zeros));
  EXPECT_EQ(r.returned_word(res), U256::from_be_bytes(std::span(digest)));
}

TEST(Interpreter, EnvironmentOpcodes) {
  Runner r;
  Assembler a;
  a.op(Op::CALLER);
  EXPECT_EQ(r.returned_word(r.run(program_returning(a))), kCaller.to_u256());

  Runner r2;
  Assembler a2;
  a2.op(Op::ADDRESS);
  EXPECT_EQ(r2.returned_word(r2.run(program_returning(a2))),
            kContract.to_u256());

  Runner r3;
  Assembler a3;
  a3.op(Op::NUMBER);
  EXPECT_EQ(r3.returned_word(r3.run(program_returning(a3))), U256{7});

  Runner r4;
  Assembler a4;
  a4.op(Op::CALLVALUE);
  EXPECT_EQ(r4.returned_word(r4.run(program_returning(a4), {}, U256{55})),
            U256{55});
}

TEST(Interpreter, CalldataAccess) {
  Runner r;
  Assembler a;
  a.push(0).op(Op::CALLDATALOAD);
  Bytes calldata(32, 0);
  calldata[31] = 0x2a;
  EXPECT_EQ(r.returned_word(r.run(program_returning(a), calldata)), U256{42});

  // Past-the-end loads are zero-padded.
  Runner r2;
  Assembler a2;
  a2.push(100).op(Op::CALLDATALOAD);
  EXPECT_EQ(r2.returned_word(r2.run(program_returning(a2), calldata)),
            U256{});

  Runner r3;
  Assembler a3;
  a3.op(Op::CALLDATASIZE);
  EXPECT_EQ(r3.returned_word(r3.run(program_returning(a3), calldata)),
            U256{32});
}

TEST(Interpreter, StorageRoundTrip) {
  Runner r;
  Assembler a;
  a.push(123).push(5).op(Op::SSTORE);  // slot 5 = 123
  a.push(5).op(Op::SLOAD);
  const CallResult res = r.run(program_returning(a));
  ASSERT_EQ(res.status, Status::kSuccess);
  EXPECT_EQ(r.returned_word(res), U256{123});
  // The write landed in the buffer's write set.
  bool found = false;
  for (const auto& [key, value] : r.buffer->write_set()) {
    if (key == StateKey::storage(kContract, U256{5})) {
      found = true;
      EXPECT_EQ(value, U256{123});
    }
  }
  EXPECT_TRUE(found);
}

TEST(Interpreter, JumpAndConditional) {
  Runner r;
  Assembler a;
  // if (1) x = 7 else x = 9 — via JUMPI over the else branch.
  a.push(1);
  a.push_label("then").op(Op::JUMPI);
  a.push(9);
  a.push_label("end").op(Op::JUMP);
  a.label("then");
  a.push(7);
  a.label("end");
  EXPECT_EQ(r.returned_word(r.run(program_returning(a))), U256{7});
}

TEST(Interpreter, InvalidJumpFails) {
  Runner r;
  Assembler a;
  a.push(3).op(Op::JUMP);  // 3 is not a JUMPDEST
  a.op(Op::STOP);
  const CallResult res = r.run(a.assemble());
  EXPECT_EQ(res.status, Status::kInvalid);
  EXPECT_EQ(res.gas_left, 0u);  // exceptional halt consumes the frame gas
}

TEST(Interpreter, JumpIntoPushDataFails) {
  Runner r;
  Assembler a;
  // PUSH2 0x5b5b embeds fake JUMPDEST bytes inside immediate data.
  a.push(U256{0x5b5b});
  a.push(1).op(Op::JUMP);  // offset 1 is inside the push immediate
  const CallResult res = r.run(a.assemble());
  EXPECT_EQ(res.status, Status::kInvalid);
}

TEST(Interpreter, StackUnderflowFails) {
  Runner r;
  Assembler a;
  a.op(Op::ADD);  // nothing on the stack
  EXPECT_EQ(r.run(a.assemble()).status, Status::kInvalid);
}

TEST(Interpreter, OutOfGasHalts) {
  Runner r;
  Assembler a;
  a.label("loop");
  a.push_label("loop").op(Op::JUMP);
  const CallResult res = r.run(a.assemble(), {}, U256{}, 10'000);
  EXPECT_EQ(res.status, Status::kOutOfGas);
  EXPECT_EQ(res.gas_left, 0u);
}

TEST(Interpreter, RevertKeepsGasRollsBackState) {
  Runner r;
  Assembler a;
  a.push(99).push(1).op(Op::SSTORE);
  a.push(0).push(0).op(Op::REVERT);
  const CallResult res = r.run(a.assemble());
  EXPECT_EQ(res.status, Status::kRevert);
  EXPECT_GT(res.gas_left, 0u);
  EXPECT_TRUE(r.buffer->write_set().empty());  // SSTORE rolled back
}

TEST(Interpreter, LogsRecorded) {
  Runner r;
  Assembler a;
  // LOG1 with topic 0xbeef over empty data.
  a.push(0xbeef);                 // topic
  a.push(0).push(0);              // len, offset -> stack [offset, len, topic]
  a.op(Op::LOG1);
  a.op(Op::STOP);
  const CallResult res = r.run(a.assemble());
  ASSERT_EQ(res.status, Status::kSuccess);
  ASSERT_EQ(res.logs.size(), 1u);
  EXPECT_EQ(res.logs[0].address, kContract);
  ASSERT_EQ(res.logs[0].topics.size(), 1u);
  EXPECT_EQ(res.logs[0].topics[0], U256{0xbeef});
}

TEST(Interpreter, MemoryExpansionChargesGas) {
  Runner r1, r2;
  Assembler small, large;
  small.push(1).push(0).op(Op::MSTORE);
  small.op(Op::STOP);
  large.push(1).push(100'000).op(Op::MSTORE);
  large.op(Op::STOP);
  const CallResult rs = r1.run(small.assemble());
  const CallResult rl = r2.run(large.assemble());
  ASSERT_EQ(rs.status, Status::kSuccess);
  ASSERT_EQ(rl.status, Status::kSuccess);
  EXPECT_GT(rs.gas_left, rl.gas_left);
}

TEST(Interpreter, WarmColdStorageGas) {
  Runner r;
  Assembler a;
  a.push(5).op(Op::SLOAD).op(Op::POP);   // cold
  a.push(5).op(Op::SLOAD).op(Op::POP);   // warm
  a.op(Op::STOP);
  const std::uint64_t budget = 100'000;
  const CallResult res = r.run(a.assemble(), {}, U256{}, budget);
  ASSERT_EQ(res.status, Status::kSuccess);
  const std::uint64_t used = budget - res.gas_left;
  // 2x PUSH (3 each) + 2x POP (2 each) + cold SLOAD + warm SLOAD.
  EXPECT_EQ(used, 2 * gas::kVeryLow + 2 * gas::kBase + gas::kColdSload +
                      gas::kWarmAccess);
}

TEST(Interpreter, ValueTransferViaCallFrame) {
  Runner r;
  // Empty callee: pure value transfer.
  const CallResult res = r.run({}, {}, U256{500});
  ASSERT_EQ(res.status, Status::kSuccess);
  EXPECT_EQ(r.buffer->read(StateKey::balance(kContract)), U256{500});
  EXPECT_EQ(r.buffer->read(StateKey::balance(kCaller)),
            U256{1'000'000'000 - 500});
}

TEST(Interpreter, InnerCallRevertIsContained) {
  // Contract A stores 1 to slot 0, CALLs an address with no code (success),
  // then CALLs a reverting contract; A's own storage write must survive.
  const Address reverting = Address::from_id(0xBAD);
  Runner r;
  r.ws.set_code(reverting, [] {
    Assembler a;
    a.push(7).push(7).op(Op::SSTORE);  // a write that must be rolled back
    a.push(0).push(0).op(Op::REVERT);
    return a.assemble();
  }());

  Assembler a;
  a.push(1).push(0).op(Op::SSTORE);
  // CALL(gas=50000, to=reverting, value=0, in=0/0, out=0/0)
  a.push(0).push(0).push(0).push(0).push(0);
  a.push(reverting);
  a.push(50'000);
  a.op(Op::CALL);
  // Leave the CALL status (0) as the return value.
  const CallResult res = r.run(program_returning(a));
  ASSERT_EQ(res.status, Status::kSuccess);
  EXPECT_EQ(r.returned_word(res), U256{0});  // inner call failed
  // Outer write survived; inner write rolled back.
  const auto writes = r.buffer->write_set();
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].first, StateKey::storage(kContract, U256{0}));
}

TEST(Interpreter, NestedCallReturnsData) {
  const Address callee = Address::from_id(0xCA11EE);
  Runner r;
  r.ws.set_code(callee, [] {
    Assembler a;
    a.push(1234).push(0).op(Op::MSTORE);
    a.push(0x20).push(0).op(Op::RETURN);
    return a.assemble();
  }());

  Assembler a;
  // CALL with out region [0, 32); then MLOAD 0 and return it.
  a.push(0x20).push(0).push(0).push(0).push(0);  // outLen outOff inLen inOff value
  // stack must be: gas, to, value, inOff, inLen, outOff, outLen (top first)
  // Rebuild in correct order:
  Assembler b;
  b.push(0x20);        // outLen
  b.push(0);           // outOff
  b.push(0);           // inLen
  b.push(0);           // inOff
  b.push(0);           // value
  b.push(callee);      // to
  b.push(100'000);     // gas  (top)
  b.op(Op::CALL);
  b.op(Op::POP);       // drop status
  b.push(0).op(Op::MLOAD);
  const Bytes code = program_returning(b);
  const CallResult res = r.run(code);
  ASSERT_EQ(res.status, Status::kSuccess);
  EXPECT_EQ(r.returned_word(res), U256{1234});
}

TEST(Interpreter, CallDepthLimit) {
  // Self-recursive contract: CALL(self) until depth limit; must terminate.
  Runner r;
  Assembler a;
  a.push(0).push(0).push(0).push(0).push(0);
  a.push(kContract);
  a.op(Op::GAS);  // forward everything available
  a.op(Op::CALL);
  a.op(Op::STOP);
  const CallResult res = r.run(a.assemble(), {}, U256{}, 5'000'000);
  EXPECT_EQ(res.status, Status::kSuccess);  // bottoms out at depth cap / gas
}

// ---- workload contracts ----

TEST(WorkloadContracts, TokenTransferMovesBalances) {
  const Address token = Address::from_id(0x70);
  const Address to = Address::from_id(0xB0B);
  Runner r;
  r.ws.set_code(token, workload::token_contract());
  r.ws.set(StateKey::storage(token, kCaller.to_u256()), U256{1000});

  TxContext tx;
  tx.origin = kCaller;
  tx.gas_price = U256{1};
  tx.block = &r.block;
  const WorldStateView view(r.ws);
  ExecBuffer buffer(view);
  Message msg;
  msg.caller = kCaller;
  msg.to = token;
  msg.data = workload::token_transfer_calldata(to, U256{300});
  msg.gas = 1'000'000;
  const CallResult res = execute_call(buffer, tx, msg);
  ASSERT_EQ(res.status, Status::kSuccess);
  EXPECT_EQ(buffer.read(StateKey::storage(token, kCaller.to_u256())),
            U256{700});
  EXPECT_EQ(buffer.read(StateKey::storage(token, to.to_u256())), U256{300});
}

TEST(WorkloadContracts, TokenTransferInsufficientReverts) {
  const Address token = Address::from_id(0x70);
  const Address to = Address::from_id(0xB0B);
  Runner r;
  r.ws.set_code(token, workload::token_contract());
  r.ws.set(StateKey::storage(token, kCaller.to_u256()), U256{100});

  TxContext tx;
  tx.origin = kCaller;
  tx.gas_price = U256{1};
  tx.block = &r.block;
  const WorldStateView view(r.ws);
  ExecBuffer buffer(view);
  Message msg;
  msg.caller = kCaller;
  msg.to = token;
  msg.data = workload::token_transfer_calldata(to, U256{300});
  msg.gas = 1'000'000;
  const CallResult res = execute_call(buffer, tx, msg);
  EXPECT_EQ(res.status, Status::kRevert);
  EXPECT_TRUE(buffer.write_set().empty());
}

TEST(WorkloadContracts, DexSwapUpdatesReserves) {
  const Address dex = Address::from_id(0xDE);
  Runner r;
  r.ws.set_code(dex, workload::dex_contract());
  r.ws.set(StateKey::storage(dex, U256{0}), U256{1'000'000});
  r.ws.set(StateKey::storage(dex, U256{1}), U256{2'000'000});

  TxContext tx;
  tx.origin = kCaller;
  tx.gas_price = U256{1};
  tx.block = &r.block;
  const WorldStateView view(r.ws);
  ExecBuffer buffer(view);
  Message msg;
  msg.caller = kCaller;
  msg.to = dex;
  msg.data = workload::dex_swap_calldata(U256{10'000});
  msg.gas = 1'000'000;
  const CallResult res = execute_call(buffer, tx, msg);
  ASSERT_EQ(res.status, Status::kSuccess);

  // out = in*r1/(r0+in) = 10000*2000000/1010000 = 19801.
  const U256 expected_out{19'801};
  EXPECT_EQ(U256::from_be_bytes(std::span(res.output)), expected_out);
  EXPECT_EQ(buffer.read(StateKey::storage(dex, U256{0})), U256{1'010'000});
  EXPECT_EQ(buffer.read(StateKey::storage(dex, U256{1})),
            U256{2'000'000} - expected_out);
  EXPECT_EQ(buffer.read(StateKey::storage(dex, kCaller.to_u256())),
            expected_out);
}

TEST(WorkloadContracts, CounterIncrements) {
  const Address counter = Address::from_id(0xC0);
  Runner r;
  r.ws.set_code(counter, workload::counter_contract());

  TxContext tx;
  tx.origin = kCaller;
  tx.gas_price = U256{1};
  tx.block = &r.block;
  const WorldStateView view(r.ws);
  ExecBuffer buffer(view);
  for (int i = 0; i < 3; ++i) {
    Message msg;
    msg.caller = kCaller;
    msg.to = counter;
    msg.gas = 100'000;
    ASSERT_EQ(execute_call(buffer, tx, msg).status, Status::kSuccess);
  }
  EXPECT_EQ(buffer.read(StateKey::storage(counter, U256{0})), U256{3});
}

// ---- transaction-level state transition ----

struct TransitionFixture : ::testing::Test {
  WorldState ws;
  BlockContext block;
  chain::Transaction tx;

  TransitionFixture() {
    block.coinbase = kCoinbase;
    block.number = 1;
    ws.set(StateKey::balance(kCaller), U256{10'000'000});
    tx.from = kCaller;
    tx.to = Address::from_id(0xB0B);
    tx.nonce = 0;
    tx.gas_price = U256{2};
    tx.gas_limit = 50'000;
    tx.value = U256{1000};
  }

  TxExecResult run() {
    const WorldStateView view(ws);
    ExecBuffer buffer(view);
    const TxExecResult r = execute_transaction(buffer, block, tx);
    if (r.status == TxStatus::kIncluded) {
      for (const auto& [key, value] : buffer.write_set()) ws.set(key, value);
    }
    return r;
  }
};

TEST_F(TransitionFixture, PlainTransfer) {
  const TxExecResult r = run();
  ASSERT_EQ(r.status, TxStatus::kIncluded);
  EXPECT_EQ(r.gas_used, gas::kTxIntrinsic);
  EXPECT_EQ(ws.get(StateKey::balance(tx.to)), U256{1000});
  EXPECT_EQ(ws.get(StateKey::nonce(kCaller)), U256{1});
  // Sender paid value + gas_used * price (escrow refunded).
  EXPECT_EQ(ws.get(StateKey::balance(kCaller)),
            U256{10'000'000} - U256{1000} -
                U256{2} * U256{gas::kTxIntrinsic});
  EXPECT_EQ(r.fee(), U256{2} * U256{gas::kTxIntrinsic});
}

TEST_F(TransitionFixture, NonceGapIsNotReady) {
  tx.nonce = 5;
  EXPECT_EQ(run().status, TxStatus::kNotReady);
  EXPECT_EQ(ws.get(StateKey::nonce(kCaller)), U256{});  // untouched
}

TEST_F(TransitionFixture, StaleNonceIsInvalid) {
  ws.set(StateKey::nonce(kCaller), U256{3});
  tx.nonce = 2;
  EXPECT_EQ(run().status, TxStatus::kInvalid);
}

TEST_F(TransitionFixture, InsufficientFundsIsInvalid) {
  tx.value = U256{999'999'999};
  EXPECT_EQ(run().status, TxStatus::kInvalid);
}

TEST_F(TransitionFixture, GasLimitBelowIntrinsicIsInvalid) {
  tx.gas_limit = 20'000;
  EXPECT_EQ(run().status, TxStatus::kInvalid);
}

TEST_F(TransitionFixture, CalldataCostsIntrinsicGas) {
  tx.data = Bytes{0, 0, 1, 2};  // 2 zero + 2 non-zero bytes
  tx.to = Address::from_id(0x1234);  // no code: call is a no-op
  const TxExecResult r = run();
  ASSERT_EQ(r.status, TxStatus::kIncluded);
  EXPECT_EQ(r.gas_used, gas::kTxIntrinsic + 2 * gas::kTxDataZero +
                            2 * gas::kTxDataNonZero);
}

TEST_F(TransitionFixture, RevertedCallStillChargesFees) {
  const Address reverter = Address::from_id(0xBAD);
  ws.set_code(reverter, [] {
    Assembler a;
    a.push(0).push(0).op(Op::REVERT);
    return a.assemble();
  }());
  tx.to = reverter;
  tx.value = U256{1000};
  const TxExecResult r = run();
  ASSERT_EQ(r.status, TxStatus::kIncluded);
  EXPECT_EQ(r.vm_status, Status::kRevert);
  // Value transfer rolled back, but nonce bumped and gas charged.
  EXPECT_EQ(ws.get(StateKey::balance(reverter)), U256{});
  EXPECT_EQ(ws.get(StateKey::nonce(kCaller)), U256{1});
  EXPECT_GT(r.gas_used, 0u);
}

TEST(Assembler, DisassemblerRoundTrip) {
  Assembler a;
  a.push(0x1234).op(Op::DUP1).op(Op::POP).label("x").push_label("x").op(
      Op::JUMP);
  const auto code = a.assemble();
  const std::string text = disassemble(std::span(code));
  EXPECT_NE(text.find("PUSH2 0x1234"), std::string::npos);
  EXPECT_NE(text.find("JUMPDEST"), std::string::npos);
  EXPECT_NE(text.find("JUMP"), std::string::npos);
}

}  // namespace
}  // namespace blockpilot::evm
