#include <gtest/gtest.h>

#include "sched/depgraph.hpp"
#include "sched/union_find.hpp"

namespace blockpilot::sched {
namespace {

using chain::BlockProfile;
using chain::TxProfile;
using state::StateKey;

const Address kA = Address::from_id(1);
const Address kB = Address::from_id(2);
const Address kC = Address::from_id(3);
const Address kD = Address::from_id(4);
const Address kHot = Address::from_id(99);

TxProfile reader(const Address& addr, std::uint64_t gas_amount) {
  TxProfile p;
  p.reads.push_back(StateKey::balance(addr));
  p.gas_used = gas_amount;
  return p;
}

TxProfile writer(const Address& addr, std::uint64_t gas_amount) {
  TxProfile p;
  p.writes.emplace_back(StateKey::balance(addr), U256{1});
  p.gas_used = gas_amount;
  return p;
}

TxProfile transfer(const Address& from, const Address& to,
                   std::uint64_t gas_amount) {
  TxProfile p;
  p.reads.push_back(StateKey::balance(from));
  p.reads.push_back(StateKey::balance(to));
  p.writes.emplace_back(StateKey::balance(from), U256{1});
  p.writes.emplace_back(StateKey::balance(to), U256{2});
  p.gas_used = gas_amount;
  return p;
}

TEST(UnionFind, BasicOperations) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.connected(0, 1));
  uf.unite(0, 1);
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_TRUE(uf.connected(2, 3));
  EXPECT_FALSE(uf.connected(1, 2));
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_EQ(uf.component_size(0), 4u);
  EXPECT_EQ(uf.component_size(4), 1u);
}

TEST(DepGraph, IndependentTxsAreSeparateSubgraphs) {
  BlockProfile profile;
  profile.txs = {transfer(kA, kB, 100), transfer(kC, kD, 100)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.subgraphs.size(), 2u);
  EXPECT_DOUBLE_EQ(graph.largest_subgraph_ratio(), 0.5);
}

TEST(DepGraph, SharedWriteKeyUnites) {
  BlockProfile profile;
  profile.txs = {transfer(kA, kHot, 100), transfer(kB, kHot, 100),
                 transfer(kC, kD, 100)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  ASSERT_EQ(graph.subgraphs.size(), 2u);
  // The hot-recipient pair forms the larger subgraph.
  EXPECT_EQ(graph.subgraphs[0].tx_indices, (std::vector<std::size_t>{0, 1}));
}

TEST(DepGraph, ReadOnlySharingDoesNotConflict) {
  BlockProfile profile;
  profile.txs = {reader(kHot, 50), reader(kHot, 50), reader(kHot, 50)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.subgraphs.size(), 3u);  // RR sharing is harmless
}

TEST(DepGraph, ReadWriteConflictUnites) {
  BlockProfile profile;
  profile.txs = {reader(kHot, 50), writer(kHot, 50)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.subgraphs.size(), 1u);
}

TEST(DepGraph, WriteWriteConflictUnites) {
  BlockProfile profile;
  profile.txs = {writer(kHot, 50), writer(kHot, 50)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.subgraphs.size(), 1u);
}

TEST(DepGraph, TransitiveChainsMerge) {
  // A-B, B-C, C-D: one chain even though A and D never touch directly.
  BlockProfile profile;
  profile.txs = {transfer(kA, kB, 10), transfer(kB, kC, 10),
                 transfer(kC, kD, 10)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.subgraphs.size(), 1u);
  EXPECT_DOUBLE_EQ(graph.largest_subgraph_ratio(), 1.0);
}

TEST(DepGraph, AccountVsKeyGranularity) {
  // Two txs write different storage slots of the same contract: at account
  // granularity they conflict, at key granularity they do not.
  TxProfile t1, t2;
  t1.writes.emplace_back(StateKey::storage(kHot, U256{1}), U256{7});
  t1.gas_used = 10;
  t2.writes.emplace_back(StateKey::storage(kHot, U256{2}), U256{8});
  t2.gas_used = 10;
  BlockProfile profile;
  profile.txs = {t1, t2};

  EXPECT_EQ(build_dependency_graph(profile, Granularity::kAccount)
                .subgraphs.size(),
            1u);
  EXPECT_EQ(build_dependency_graph(profile, Granularity::kKey)
                .subgraphs.size(),
            2u);
}

TEST(DepGraph, SubgraphsPreserveBlockOrder) {
  BlockProfile profile;
  profile.txs = {transfer(kA, kHot, 10), transfer(kC, kD, 10),
                 transfer(kB, kHot, 10), transfer(kHot, kA, 10)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  for (const auto& sg : graph.subgraphs) {
    EXPECT_TRUE(std::is_sorted(sg.tx_indices.begin(), sg.tx_indices.end()));
  }
}

TEST(DepGraph, StatsComputation) {
  BlockProfile profile;
  profile.txs = {transfer(kA, kB, 300), transfer(kA, kC, 200),
                 transfer(kD, kD, 100)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_EQ(graph.total_gas(), 600u);
  EXPECT_EQ(graph.critical_path_gas(), 500u);  // the A-chain
  EXPECT_NEAR(graph.largest_subgraph_ratio(), 2.0 / 3.0, 1e-9);
}

TEST(DepGraph, EmptyBlock) {
  BlockProfile profile;
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  EXPECT_TRUE(graph.subgraphs.empty());
  EXPECT_EQ(graph.largest_subgraph_ratio(), 0.0);
  EXPECT_EQ(graph.critical_path_gas(), 0u);
}

TEST(LptSchedule, BalancesLoad) {
  BlockProfile profile;
  // Six independent txs with descending gas.
  for (std::uint64_t g : {600u, 500u, 400u, 300u, 200u, 100u}) {
    profile.txs.push_back(
        transfer(Address::from_id(1000 + g), Address::from_id(2000 + g), g));
  }
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  const auto plan = lpt_schedule(graph, 2);
  ASSERT_EQ(plan.load.size(), 2u);
  // LPT on {600,500,400,300,200,100} over 2 workers: loads 1100/1000.
  EXPECT_EQ(std::max(plan.load[0], plan.load[1]), 1100u);
  EXPECT_EQ(plan.load[0] + plan.load[1], 2100u);
}

TEST(LptSchedule, InThreadBlockOrder) {
  BlockProfile profile;
  profile.txs = {transfer(kA, kB, 10), transfer(kC, kD, 20),
                 transfer(kA, kC, 30)};  // merges everything via kC? no: A-B, C-D, A-C -> all one? A-C unites {0,2} and {1} via C-D? tx1 touches C,D; tx2 touches A,C -> C shared and written: all three unite.
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  const auto plan = lpt_schedule(graph, 4);
  for (const auto& bucket : plan.per_thread)
    EXPECT_TRUE(std::is_sorted(bucket.begin(), bucket.end()));
}

TEST(LptSchedule, MoreThreadsThanSubgraphs) {
  BlockProfile profile;
  profile.txs = {transfer(kA, kB, 10)};
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  const auto plan = lpt_schedule(graph, 8);
  std::size_t populated = 0;
  for (const auto& bucket : plan.per_thread)
    if (!bucket.empty()) ++populated;
  EXPECT_EQ(populated, 1u);
}

// Property sweep: every tx appears exactly once across the plan.
class LptPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LptPropertyTest, PlanIsAPartition) {
  const std::size_t threads = GetParam();
  BlockProfile profile;
  for (std::size_t i = 0; i < 40; ++i) {
    profile.txs.push_back(transfer(Address::from_id(i % 7),
                                   Address::from_id(100 + i % 11),
                                   10 * (i + 1)));
  }
  const auto graph = build_dependency_graph(profile, Granularity::kAccount);
  const auto plan = lpt_schedule(graph, threads);
  std::vector<int> seen(profile.txs.size(), 0);
  for (const auto& bucket : plan.per_thread)
    for (const std::size_t i : bucket) ++seen[i];
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "tx " << i;
  // Load bookkeeping matches subgraph gas.
  std::uint64_t total = 0;
  for (const auto l : plan.load) total += l;
  EXPECT_EQ(total, graph.total_gas());
}

INSTANTIATE_TEST_SUITE_P(Threads, LptPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

}  // namespace
}  // namespace blockpilot::sched
