#include <gtest/gtest.h>

#include <unordered_map>

#include "core/blockpilot.hpp"
#include "evm/assembler.hpp"
#include "workload/contracts.hpp"

namespace blockpilot::workload {
namespace {

evm::BlockContext make_ctx() {
  evm::BlockContext ctx;
  ctx.number = 1;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

TEST(Generator, DeterministicFromSeed) {
  WorkloadConfig cfg = preset_mainnet();
  cfg.seed = 123;
  WorkloadGenerator a(cfg), b(cfg);
  const auto batch_a = a.next_batch(50);
  const auto batch_b = b.next_batch(50);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i)
    EXPECT_EQ(batch_a[i].hash(), batch_b[i].hash());
  EXPECT_EQ(a.genesis().state_root(), b.genesis().state_root());
}

TEST(Generator, DifferentSeedsDiffer) {
  WorkloadConfig a_cfg = preset_mainnet(), b_cfg = preset_mainnet();
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const auto a = WorkloadGenerator(a_cfg).next_batch(20);
  const auto b = WorkloadGenerator(b_cfg).next_batch(20);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i].hash() == b[i].hash())) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, NoncesAreConsecutivePerSender) {
  WorkloadConfig cfg = preset_mainnet();
  cfg.seed = 9;
  WorkloadGenerator gen(cfg);
  std::unordered_map<Address, std::uint64_t> expected;
  for (int block = 0; block < 3; ++block) {
    for (const auto& tx : gen.next_block()) {
      const auto it = expected.find(tx.from);
      const std::uint64_t want = it == expected.end() ? 0 : it->second;
      EXPECT_EQ(tx.nonce, want);
      expected[tx.from] = want + 1;
    }
  }
}

TEST(Generator, BatchSizeExact) {
  WorkloadGenerator gen(preset_mainnet());
  EXPECT_EQ(gen.next_batch(7).size(), 7u);
  EXPECT_EQ(gen.next_batch(133).size(), 133u);
  EXPECT_TRUE(gen.next_batch(0).empty());
}

TEST(Generator, BlockSizeJitterWithinBounds) {
  WorkloadConfig cfg = preset_mainnet();
  cfg.txs_per_block = 100;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 10; ++i) {
    const auto block = gen.next_block();
    EXPECT_GE(block.size(), 60u);
    EXPECT_LE(block.size(), 140u);
  }
}

TEST(Generator, AllGeneratedBlocksExecuteFully) {
  for (auto preset : {preset_mainnet(), preset_low_conflict(),
                      preset_high_conflict(), preset_nft_drop()}) {
    preset.seed = 777;
    WorkloadGenerator gen(preset);
    const state::WorldState genesis = gen.genesis();
    const auto txs = gen.next_batch(80);
    core::SerialOptions opts;
    opts.drop_unincludable = false;
    const auto result =
        core::execute_serial(genesis, make_ctx(), std::span(txs), opts);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.included.size(), 80u);
    // Everything the generator emits must actually succeed in the VM —
    // a reverting workload would silently weaken every benchmark.
    for (const auto& receipt : result.exec.receipts)
      EXPECT_TRUE(receipt.success);
  }
}

TEST(Generator, AirdropEmitsNonceBursts) {
  WorkloadConfig cfg;
  cfg.seed = 31;
  cfg.token_fraction = 0.0;
  cfg.dex_fraction = 0.0;
  cfg.nft_fraction = 0.0;
  cfg.airdrop_fraction = 1.0;
  cfg.airdrop_burst = 5;
  WorkloadGenerator gen(cfg);
  const auto txs = gen.next_batch(20);
  ASSERT_EQ(txs.size(), 20u);
  // Bursts of 5 consecutive-nonce txs from one sender.
  for (std::size_t i = 0; i + 1 < txs.size(); ++i) {
    if (txs[i].from == txs[i + 1].from)
      EXPECT_EQ(txs[i + 1].nonce, txs[i].nonce + 1);
  }
}

TEST(NftContract, SequentialMints) {
  state::WorldState ws;
  const Address collection = Address::from_id(0xF7);
  const Address alice = Address::from_id(0xA11CE);
  const Address bob = Address::from_id(0xB0B);
  ws.set_code(collection, nft_contract());

  evm::BlockContext block = make_ctx();
  evm::TxContext tx;
  tx.origin = alice;
  tx.gas_price = U256{1};
  tx.block = &block;

  const state::WorldStateView view(ws);
  state::ExecBuffer buffer(view);
  auto mint = [&](const Address& who) {
    evm::Message msg;
    msg.caller = who;
    msg.to = collection;
    msg.gas = 200'000;
    const auto r = evm::execute_call(buffer, tx, msg);
    EXPECT_EQ(r.status, evm::Status::kSuccess);
    return U256::from_be_bytes(std::span(r.output));
  };

  EXPECT_EQ(mint(alice), U256{0});
  EXPECT_EQ(mint(bob), U256{1});
  EXPECT_EQ(mint(alice), U256{2});
  // Ownership records.
  const U256 base = U256{1}.shl(128);
  EXPECT_EQ(buffer.read(state::StateKey::storage(collection, base + U256{0})),
            alice.to_u256());
  EXPECT_EQ(buffer.read(state::StateKey::storage(collection, base + U256{1})),
            bob.to_u256());
  EXPECT_EQ(buffer.read(state::StateKey::storage(collection, U256{0})),
            U256{3});
}

TEST(NftDrop, MintsFormOneHotspotSubgraph) {
  // All mints on one collection share the counter slot: at any granularity
  // they chain into one subgraph.
  WorkloadConfig cfg;
  cfg.seed = 55;
  cfg.token_fraction = 0.0;
  cfg.dex_fraction = 0.0;
  cfg.nft_fraction = 1.0;
  WorkloadGenerator gen(cfg);
  const state::WorldState genesis = gen.genesis();
  const auto txs = gen.next_batch(30);
  const auto serial = core::execute_serial(genesis, make_ctx(), std::span(txs));
  const auto graph = sched::build_dependency_graph(
      serial.exec.profile, sched::Granularity::kKey);
  // With 3 collections, at most 3 subgraphs (plus none others).
  EXPECT_LE(graph.subgraphs.size(), WorkloadGenerator::kNftCollections);
}

TEST(NftDrop, PresetIsSerializableUnderOcc) {
  WorkloadConfig cfg = preset_nft_drop();
  cfg.seed = 66;
  WorkloadGenerator gen(cfg);
  const state::WorldState genesis = gen.genesis();
  txpool::TxPool pool;
  pool.add_all(gen.next_batch(60));
  core::ProposerConfig pc;
  pc.threads = 8;
  ThreadPool workers(1);
  const auto blk =
      core::OccWsiProposer(pc).propose(genesis, make_ctx(), pool, workers);
  ASSERT_GT(blk.block.transactions.size(), 0u);

  core::SerialOptions opts;
  opts.drop_unincludable = false;
  const auto replay = core::execute_serial(
      genesis, make_ctx(), std::span(blk.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.exec.state_root, blk.block.header.state_root);
}

TEST(Contracts, BytecodeIsNonTrivial) {
  EXPECT_GT(token_contract().size(), 20u);
  EXPECT_GT(dex_contract().size(), 30u);
  EXPECT_GT(nft_contract().size(), 15u);
  EXPECT_GT(counter_contract().size(), 5u);
}

}  // namespace
}  // namespace blockpilot::workload
