#include "types/u256.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace blockpilot {
namespace {

const U256 kMax = ~U256{};  // 2^256 - 1

TEST(U256, BasicConstructionAndHex) {
  EXPECT_TRUE(U256{}.is_zero());
  EXPECT_EQ(U256{42}.low64(), 42u);
  EXPECT_EQ(U256{0}.to_hex(), "0x0");
  EXPECT_EQ(U256{255}.to_hex(), "0xff");
  EXPECT_EQ(U256::from_hex("0xff"), U256{255});
  EXPECT_EQ(U256::from_hex("deadbeef"), U256{0xdeadbeefULL});
  const U256 big = U256::from_hex(
      "0x123456789abcdef0fedcba9876543210aaaabbbbccccddddeeeeffff00001111");
  EXPECT_EQ(big.to_hex(),
            "0x123456789abcdef0fedcba9876543210aaaabbbbccccddddeeeeffff00001111");
}

TEST(U256, BytesRoundTrip) {
  const U256 v = U256::from_hex(
      "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
  const auto be = v.to_be_bytes();
  EXPECT_EQ(be[0], 0x01);
  EXPECT_EQ(be[31], 0x20);
  EXPECT_EQ(U256::from_be_bytes(std::span(be)), v);
}

TEST(U256, AdditionWraps) {
  EXPECT_EQ(U256{1} + U256{2}, U256{3});
  EXPECT_EQ(kMax + U256{1}, U256{});
  // Carry propagation across limbs.
  const U256 low_all_ones{0, 0, 0, ~0ULL};
  EXPECT_EQ(low_all_ones + U256{1}, U256(0, 0, 1, 0));
}

TEST(U256, SubtractionWraps) {
  EXPECT_EQ(U256{5} - U256{3}, U256{2});
  EXPECT_EQ(U256{} - U256{1}, kMax);
  EXPECT_EQ(U256(0, 0, 1, 0) - U256{1}, U256(0, 0, 0, ~0ULL));
}

TEST(U256, Multiplication) {
  EXPECT_EQ(U256{7} * U256{6}, U256{42});
  EXPECT_EQ(U256{1ULL << 32} * U256{1ULL << 32}, U256(0, 0, 1, 0));
  EXPECT_EQ(kMax * kMax, U256{1});  // (-1)^2 == 1 mod 2^256
}

TEST(U256, DivisionAndModulo) {
  EXPECT_EQ(U256{42} / U256{6}, U256{7});
  EXPECT_EQ(U256{43} % U256{6}, U256{1});
  EXPECT_EQ(U256{42} / U256{}, U256{});  // EVM: x/0 == 0
  EXPECT_EQ(U256{42} % U256{}, U256{});  // EVM: x%0 == 0
  // 128-bit+ divisor path.
  const U256 num = U256::from_hex("0x100000000000000000000000000000000");
  const U256 den = U256::from_hex("0x10000000000000000");
  EXPECT_EQ(num / den, den);
  EXPECT_EQ(num % den, U256{});
}

TEST(U256, SignedOps) {
  const U256 minus_one = kMax;
  const U256 minus_seven = U256{7}.negate();
  EXPECT_TRUE(minus_one.negative());
  EXPECT_EQ(U256::sdiv(minus_seven, U256{2}), U256{3}.negate());
  EXPECT_EQ(U256::sdiv(U256{7}, U256{2}.negate()), U256{3}.negate());
  EXPECT_EQ(U256::sdiv(minus_seven, U256{2}.negate()), U256{3});
  EXPECT_EQ(U256::smod(minus_seven, U256{3}), U256{1}.negate());
  EXPECT_EQ(U256::smod(U256{7}, U256{3}.negate()), U256{1});
  EXPECT_TRUE(U256::signed_less(minus_one, U256{0}));
  EXPECT_TRUE(U256::signed_less(minus_one, U256{1}));
  EXPECT_FALSE(U256::signed_less(U256{1}, minus_one));
  // INT_MIN / -1 == INT_MIN (EVM SDIV overflow rule).
  const U256 int_min = U256{1}.shl(255);
  EXPECT_EQ(U256::sdiv(int_min, minus_one), int_min);
}

TEST(U256, Shifts) {
  EXPECT_EQ(U256{1}.shl(4), U256{16});
  EXPECT_EQ(U256{16}.shr(4), U256{1});
  EXPECT_EQ(U256{1}.shl(255).to_hex(),
            "0x8000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(U256{1}.shl(256), U256{});
  EXPECT_EQ(kMax.shr(255), U256{1});
  EXPECT_EQ(kMax.shr(256), U256{});
  // Arithmetic shift preserves the sign.
  EXPECT_EQ(kMax.sar(8), kMax);
  EXPECT_EQ(U256{256}.sar(4), U256{16});
}

TEST(U256, AddmodMulmod) {
  EXPECT_EQ(U256::addmod(U256{10}, U256{10}, U256{8}), U256{4});
  EXPECT_EQ(U256::mulmod(U256{10}, U256{10}, U256{8}), U256{4});
  EXPECT_EQ(U256::addmod(U256{1}, U256{2}, U256{}), U256{});
  EXPECT_EQ(U256::mulmod(U256{1}, U256{2}, U256{}), U256{});
  // 512-bit intermediate correctness: (2^255)*2 mod (2^256-1) == 1.
  EXPECT_EQ(U256::mulmod(U256{1}.shl(255), U256{2}, kMax), U256{1});
  // ADDMOD with wrap: max + max mod max == 0.
  EXPECT_EQ(U256::addmod(kMax, kMax, kMax), U256{});
}

TEST(U256, Exp) {
  EXPECT_EQ(U256::exp(U256{2}, U256{10}), U256{1024});
  EXPECT_EQ(U256::exp(U256{0}, U256{0}), U256{1});  // EVM: 0^0 == 1
  EXPECT_EQ(U256::exp(U256{3}, U256{0}), U256{1});
  EXPECT_EQ(U256::exp(U256{2}, U256{256}), U256{});  // wraps to zero
  EXPECT_EQ(U256::exp(U256{10}, U256{18}),
            U256{1'000'000'000'000'000'000ULL});
}

TEST(U256, SignextendAndByte) {
  EXPECT_EQ(U256::signextend(U256{0}, U256{0xff}), kMax);
  EXPECT_EQ(U256::signextend(U256{0}, U256{0x7f}), U256{0x7f});
  EXPECT_EQ(U256::signextend(U256{1}, U256{0x80ff}), ~U256{0x7f00});
  EXPECT_EQ(U256::signextend(U256{31}, kMax), kMax);
  EXPECT_EQ(U256::signextend(U256{100}, U256{5}), U256{5});

  EXPECT_EQ(U256::byte(U256{31}, U256{0xab}), U256{0xab});
  EXPECT_EQ(U256::byte(U256{30}, U256{0xabcd}), U256{0xab});
  EXPECT_EQ(U256::byte(U256{0}, U256{0xab}), U256{});
  EXPECT_EQ(U256::byte(U256{32}, kMax), U256{});
}

TEST(U256, Comparisons) {
  EXPECT_LT(U256{1}, U256{2});
  EXPECT_LT(U256{2}, U256(0, 0, 1, 0));
  EXPECT_GT(kMax, U256{0});
  EXPECT_EQ(U256{7}, U256{7});
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256{}.bit_length(), 0);
  EXPECT_EQ(U256{1}.bit_length(), 1);
  EXPECT_EQ(U256{255}.bit_length(), 8);
  EXPECT_EQ(U256{256}.bit_length(), 9);
  EXPECT_EQ(kMax.bit_length(), 256);
  EXPECT_EQ(U256{1}.shl(200).bit_length(), 201);
}

// Property sweep: random (a, b) pairs must satisfy ring identities.
class U256PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U256PropertyTest, RingIdentities) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const U256 a(rng(), rng(), rng(), rng());
    const U256 b(rng(), rng(), rng(), rng());
    // a + b - b == a
    EXPECT_EQ(a + b - b, a);
    // a * 1 == a; a * 0 == 0
    EXPECT_EQ(a * U256{1}, a);
    EXPECT_EQ(a * U256{}, U256{});
    // commutativity
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    // division identity: a == (a/b)*b + a%b  (b != 0)
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b + (a % b), a);
      EXPECT_LT(a % b, b);
    }
    // shl/shr consistency for small shifts
    const unsigned s = static_cast<unsigned>(rng.below(64)) + 1;
    EXPECT_EQ(a.shl(s).shr(s), a & (kMax.shr(s)));
    // double negation
    EXPECT_EQ(a.negate().negate(), a);
    // De Morgan
    EXPECT_EQ(~(a & b), (~a | ~b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 31337u));

// Property sweep: divmod against 64-bit reference arithmetic.
class U256SmallDivTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U256SmallDivTest, MatchesNativeUint64) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng() | 1;  // non-zero
    EXPECT_EQ(U256{a} / U256{b}, U256{a / b});
    EXPECT_EQ(U256{a} % U256{b}, U256{a % b});
    // 64-bit addition wraps earlier than 256-bit; compare the low limb only.
    EXPECT_EQ((U256{a} + U256{b}).low64(), a + b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256SmallDivTest,
                         ::testing::Values(7u, 1234u, 999983u));

}  // namespace
}  // namespace blockpilot
