// Two-phase OCC baseline tests: value-validated speculative execution must
// reach the exact serial state.
#include <gtest/gtest.h>

#include "core/blockpilot.hpp"

namespace blockpilot::core {
namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

chain::Block honest_block(const state::WorldState& genesis,
                          const std::vector<chain::Transaction>& txs) {
  const SerialResult r = execute_serial(genesis, ctx_for(1), std::span(txs));
  return seal_block(ctx_for(1), r.exec, r.included);
}

TEST(TwoPhaseOcc, ValidatesLowConflictBlock) {
  workload::WorkloadGenerator gen(workload::preset_low_conflict());
  state::WorldState genesis = gen.genesis();
  const auto block = honest_block(genesis, gen.next_batch(60));

  ValidatorConfig cfg;
  cfg.threads = 4;
  TwoPhaseOcc occ(cfg);
  ThreadPool workers(4);
  const auto outcome = occ.validate(genesis, block, workers);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, block.header.state_root);
  // Low-conflict workloads re-execute very little.
  EXPECT_LT(outcome.stats.reexecuted, block.transactions.size() / 2);
}

TEST(TwoPhaseOcc, ValidatesHighConflictBlock) {
  workload::WorkloadGenerator gen(workload::preset_high_conflict());
  state::WorldState genesis = gen.genesis();
  const auto block = honest_block(genesis, gen.next_batch(60));

  ValidatorConfig cfg;
  cfg.threads = 8;
  TwoPhaseOcc occ(cfg);
  ThreadPool workers(8);
  const auto outcome = occ.validate(genesis, block, workers);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, block.header.state_root);
  // Hotspot chains force most transactions through the serial phase.
  EXPECT_GT(outcome.stats.reexecuted, block.transactions.size() / 4);
}

TEST(TwoPhaseOcc, RejectsTamperedRoot) {
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  state::WorldState genesis = gen.genesis();
  auto block = honest_block(genesis, gen.next_batch(30));
  block.header.state_root.bytes[5] ^= 1;

  ValidatorConfig cfg;
  cfg.threads = 4;
  TwoPhaseOcc occ(cfg);
  ThreadPool workers(4);
  EXPECT_FALSE(occ.validate(genesis, block, workers).valid);
}

TEST(TwoPhaseOcc, MoreConflictsMoreSerialWork) {
  // The baseline's defining weakness: its serial tail grows with conflicts,
  // so BlockPilot's scheduler should win on hotspot blocks (Fig. 7a).
  ValidatorConfig cfg;
  cfg.threads = 16;

  workload::WorkloadGenerator low(workload::preset_low_conflict());
  state::WorldState gl = low.genesis();
  const auto bl = honest_block(gl, low.next_batch(100));
  ThreadPool workers(16);
  TwoPhaseOcc occ(cfg);
  const auto low_out = occ.validate(gl, bl, workers);

  workload::WorkloadGenerator high(workload::preset_high_conflict());
  state::WorldState gh = high.genesis();
  const auto bh = honest_block(gh, high.next_batch(100));
  const auto high_out = occ.validate(gh, bh, workers);

  ASSERT_TRUE(low_out.valid);
  ASSERT_TRUE(high_out.valid);
  EXPECT_LT(high_out.stats.virtual_speedup(), low_out.stats.virtual_speedup());
}

class OccSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OccSweep, RootEqualityAcrossThreadCounts) {
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 4242;
  workload::WorkloadGenerator gen(wc);
  state::WorldState genesis = gen.genesis();
  const auto block = honest_block(genesis, gen.next_batch(80));

  ValidatorConfig cfg;
  cfg.threads = GetParam();
  TwoPhaseOcc occ(cfg);
  ThreadPool workers(GetParam());
  const auto outcome = occ.validate(genesis, block, workers);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
}

INSTANTIATE_TEST_SUITE_P(Threads, OccSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

}  // namespace
}  // namespace blockpilot::core
