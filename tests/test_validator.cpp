// Validator tests (paper §4.3/§4.4, Algorithm 2): scheduled parallel replay
// must accept exactly the blocks whose re-execution matches the profile and
// header, and reject tampered ones.
#include <gtest/gtest.h>

#include "core/blockpilot.hpp"

namespace blockpilot::core {
namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

struct ValidatorFixture : ::testing::Test {
  workload::WorkloadGenerator gen{workload::preset_mainnet()};
  state::WorldState genesis = gen.genesis();

  /// Builds an honest block with the serial reference proposer.
  BlockBundle honest_block(std::size_t txs, std::uint64_t height = 1) {
    const SerialResult r = execute_serial(genesis, ctx_for(height),
                                          std::span(batch(txs)));
    BlockBundle bundle;
    bundle.block = seal_block(ctx_for(height), r.exec, r.included);
    bundle.profile = r.exec.profile;
    return bundle;
  }

  const std::vector<chain::Transaction>& batch(std::size_t n) {
    if (cached_.size() != n) cached_ = gen.next_batch(n);
    return cached_;
  }

  ValidationOutcome validate(
      const BlockBundle& bundle, std::size_t threads,
      ValidatorEngine engine = ValidatorEngine::kSubgraphLpt) {
    ValidatorConfig cfg;
    cfg.threads = threads;
    cfg.engine = engine;
    BlockValidator validator(cfg);
    ThreadPool workers(threads);
    return validator.validate(genesis, bundle.block, bundle.profile, workers);
  }

 private:
  std::vector<chain::Transaction> cached_;
};

TEST_F(ValidatorFixture, AcceptsHonestBlockSingleThread) {
  const auto bundle = honest_block(50);
  const auto outcome = validate(bundle, 1);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
}

TEST_F(ValidatorFixture, AcceptsHonestBlockParallel) {
  const auto bundle = honest_block(100);
  for (const std::size_t threads : {2u, 4u, 8u, 16u}) {
    const auto outcome = validate(bundle, threads);
    EXPECT_TRUE(outcome.valid)
        << "threads=" << threads << ": " << outcome.reject_reason;
    EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
    EXPECT_EQ(outcome.exec.receipts.size(), bundle.block.transactions.size());
  }
}

TEST_F(ValidatorFixture, RejectsTamperedStateRoot) {
  auto bundle = honest_block(30);
  bundle.block.header.state_root.bytes[0] ^= 0xff;
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
  EXPECT_EQ(outcome.reject_reason, "state root mismatch");
}

TEST_F(ValidatorFixture, RejectsTamperedGasUsed) {
  auto bundle = honest_block(30);
  bundle.block.header.gas_used += 1;
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
}

TEST_F(ValidatorFixture, RejectsTamperedProfileReadSet) {
  auto bundle = honest_block(30);
  // Fabricate an extra read in some profile entry: the observed set will
  // not match (§4.4's honest-proposer check).
  bundle.profile.txs[5].reads.push_back(
      state::StateKey::balance(Address::from_id(0xDEAD)));
  std::sort(bundle.profile.txs[5].reads.begin(),
            bundle.profile.txs[5].reads.end(), state::state_key_less);
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
  EXPECT_NE(outcome.reject_reason.find("read-set mismatch"),
            std::string::npos);
}

TEST_F(ValidatorFixture, RejectsTamperedProfileWriteValue) {
  auto bundle = honest_block(30);
  ASSERT_FALSE(bundle.profile.txs[3].writes.empty());
  bundle.profile.txs[3].writes[0].second += U256{1};
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
}

TEST_F(ValidatorFixture, RejectsTamperedProfileGas) {
  auto bundle = honest_block(30);
  bundle.profile.txs[7].gas_used += 1;
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
  // Either the gas check or (if rescheduled differently) a downstream check
  // fires; the reason must mention a mismatch.
  EXPECT_NE(outcome.reject_reason.find("mismatch"), std::string::npos);
}

TEST_F(ValidatorFixture, RejectsTamperedTransactionValue) {
  auto bundle = honest_block(30);
  bundle.block.transactions[4].value += U256{1};
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
}

TEST_F(ValidatorFixture, RejectsTamperedReceiptsRoot) {
  auto bundle = honest_block(30);
  bundle.block.header.receipts_root.bytes[3] ^= 0x10;
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
  EXPECT_EQ(outcome.reject_reason, "receipts root mismatch");
}

TEST_F(ValidatorFixture, RejectsTamperedLogsBloom) {
  auto bundle = honest_block(30);
  // Poison the bloom with an address no log mentions.
  chain::Bloom tampered = bundle.block.header.logs_bloom;
  const Address ghost = Address::from_id(0x60057);
  tampered.add(std::span(ghost.bytes));
  if (tampered == bundle.block.header.logs_bloom) GTEST_SKIP();
  bundle.block.header.logs_bloom = tampered;
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
  EXPECT_EQ(outcome.reject_reason, "logs bloom mismatch");
}

TEST_F(ValidatorFixture, PrefetchOffStillValidatesButSlower) {
  const auto bundle = honest_block(80);
  ValidatorConfig on_cfg;
  on_cfg.threads = 8;
  ValidatorConfig off_cfg = on_cfg;
  off_cfg.prefetch = false;
  ThreadPool workers(8);
  const auto on =
      BlockValidator(on_cfg).validate(genesis, bundle.block, bundle.profile, workers);
  const auto off = BlockValidator(off_cfg).validate(genesis, bundle.block,
                                                    bundle.profile, workers);
  ASSERT_TRUE(on.valid) << on.reject_reason;
  ASSERT_TRUE(off.valid) << off.reject_reason;
  EXPECT_EQ(on.exec.state_root, off.exec.state_root);
  EXPECT_GT(on.stats.virtual_speedup(), off.stats.virtual_speedup());
}

TEST_F(ValidatorFixture, RejectsProfileSizeMismatch) {
  auto bundle = honest_block(10);
  bundle.profile.txs.pop_back();
  const auto outcome = validate(bundle, 4);
  EXPECT_FALSE(outcome.valid);
  EXPECT_EQ(outcome.reject_reason, "profile size mismatch");
}

TEST_F(ValidatorFixture, EmptyBlockValidates) {
  const auto bundle = honest_block(0);
  const auto outcome = validate(bundle, 4);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
}

TEST_F(ValidatorFixture, StatsExposeScheduleShape) {
  const auto bundle = honest_block(120);
  const auto outcome = validate(bundle, 8);
  ASSERT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_GT(outcome.stats.subgraphs, 1u);
  EXPECT_GT(outcome.stats.largest_subgraph_ratio, 0.0);
  EXPECT_LE(outcome.stats.largest_subgraph_ratio, 1.0);
  EXPECT_GT(outcome.stats.critical_path_gas, 0u);
  EXPECT_GE(outcome.stats.virtual_speedup(), 1.0);
}

TEST_F(ValidatorFixture, KeyGranularityAlsoValidates) {
  const auto bundle = honest_block(60);
  ValidatorConfig cfg;
  cfg.threads = 4;
  cfg.granularity = sched::Granularity::kKey;
  BlockValidator validator(cfg);
  ThreadPool workers(4);
  const auto outcome =
      validator.validate(genesis, bundle.block, bundle.profile, workers);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
}

TEST_F(ValidatorFixture, ValidatesOccWsiProposedBlock) {
  // End-to-end handshake: OCC-WSI proposer -> scheduled validator.
  txpool::TxPool pool;
  pool.add_all(gen.next_batch(90));
  ProposerConfig pc;
  pc.threads = 4;
  OccWsiProposer proposer(pc);
  ThreadPool workers(8);
  const ProposedBlock proposed =
      proposer.propose(genesis, ctx_for(1), pool, workers);

  ValidatorConfig vc;
  vc.threads = 8;
  BlockValidator validator(vc);
  const auto outcome =
      validator.validate(genesis, proposed.block, proposed.profile, workers);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, proposed.block.header.state_root);
}

// ---- Block-STM validator engine (docs/blockstm.md §8) ---------------------
// The cross-engine identity itself (verdicts/roots/gas/receipts bit-equal
// across the full proposer x validator matrix) is gated in
// test_engine_matrix.cpp; these cover the engine knob on this fixture.

TEST_F(ValidatorFixture, BlockStmAcceptsHonestBlockAcrossThreads) {
  const auto bundle = honest_block(100);
  for (const ValidatorEngine engine :
       {ValidatorEngine::kBlockStm, ValidatorEngine::kBlockStmHost}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const auto outcome = validate(bundle, threads, engine);
      EXPECT_TRUE(outcome.valid)
          << "threads=" << threads << ": " << outcome.reject_reason;
      EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
      EXPECT_EQ(outcome.exec.receipts.size(),
                bundle.block.transactions.size());
      EXPECT_EQ(outcome.stats.engine_used, engine);
      // Honest profile -> the pre-seeded estimates route every dependency
      // through suspension; nothing aborts and no validation wave fires.
      // Holds for both twins: suspension count varies with scheduling,
      // aborts/waves do not.
      EXPECT_EQ(outcome.stats.stm_aborts, 0u) << "threads=" << threads;
      EXPECT_EQ(outcome.stats.stm_validation_waves, 0u)
          << "threads=" << threads;
    }
  }
}

TEST_F(ValidatorFixture, BlockStmVirtualMakespanIsReproducibleAndScales) {
  // The DES twin's virtual makespan must be a pure function of (block,
  // threads) — bit-equal on repeat runs regardless of host scheduling —
  // and adding virtual workers must never lengthen the replay.
  const auto bundle = honest_block(100);
  std::uint64_t prev_makespan = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto a = validate(bundle, threads, ValidatorEngine::kBlockStm);
    const auto b = validate(bundle, threads, ValidatorEngine::kBlockStm);
    ASSERT_TRUE(a.valid) << a.reject_reason;
    EXPECT_EQ(a.stats.vtime_makespan, b.stats.vtime_makespan)
        << "threads=" << threads;
    EXPECT_EQ(a.stats.stm_suspensions, b.stats.stm_suspensions)
        << "threads=" << threads;
    if (prev_makespan != 0) {
      EXPECT_LE(a.stats.vtime_makespan, prev_makespan)
          << "threads=" << threads;
    }
    prev_makespan = a.stats.vtime_makespan;
  }
}

TEST_F(ValidatorFixture, BlockStmRejectsTamperedStateRoot) {
  auto bundle = honest_block(30);
  bundle.block.header.state_root.bytes[0] ^= 0xff;
  for (const ValidatorEngine engine :
       {ValidatorEngine::kBlockStm, ValidatorEngine::kBlockStmHost}) {
    const auto outcome = validate(bundle, 4, engine);
    EXPECT_FALSE(outcome.valid);
    EXPECT_EQ(outcome.reject_reason, "state root mismatch");
  }
}

TEST_F(ValidatorFixture, BlockStmRejectsTamperedProfileReadSet) {
  auto bundle = honest_block(30);
  bundle.profile.txs[5].reads.push_back(
      state::StateKey::balance(Address::from_id(0xDEAD)));
  std::sort(bundle.profile.txs[5].reads.begin(),
            bundle.profile.txs[5].reads.end(), state::state_key_less);
  const auto outcome = validate(bundle, 4, ValidatorEngine::kBlockStm);
  EXPECT_FALSE(outcome.valid);
  EXPECT_NE(outcome.reject_reason.find("read-set mismatch"),
            std::string::npos);
}

TEST_F(ValidatorFixture, BlockStmRejectsProfileSizeMismatch) {
  auto bundle = honest_block(10);
  bundle.profile.txs.pop_back();
  const auto outcome = validate(bundle, 4, ValidatorEngine::kBlockStm);
  EXPECT_FALSE(outcome.valid);
  EXPECT_EQ(outcome.reject_reason, "profile size mismatch");
}

TEST_F(ValidatorFixture, BlockStmEmptyBlockValidates) {
  const auto bundle = honest_block(0);
  const auto outcome = validate(bundle, 4, ValidatorEngine::kBlockStm);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
}

TEST_F(ValidatorFixture, AdaptiveResolvesToAFixedEngine) {
  const auto bundle = honest_block(60);
  const auto outcome = validate(bundle, 4, ValidatorEngine::kAdaptive);
  ASSERT_TRUE(outcome.valid) << outcome.reject_reason;
  EXPECT_NE(outcome.stats.engine_used, ValidatorEngine::kAdaptive);
  // preset_mainnet sits below the regime-map threshold (~27.5 % largest
  // subgraph vs 33 %), so the stateless per-block pick stays on the oracle.
  EXPECT_EQ(outcome.stats.engine_used, ValidatorEngine::kSubgraphLpt)
      << "ratio=" << outcome.stats.largest_subgraph_ratio;
}

// Sweep: honest blocks across conflict regimes and thread counts validate
// with identical roots.
struct VParam {
  std::size_t threads;
  int preset;
};

class ValidatorSweep : public ::testing::TestWithParam<VParam> {};

TEST_P(ValidatorSweep, HonestBlocksValidate) {
  const auto [threads, preset] = GetParam();
  workload::WorkloadConfig cfg = preset == 0   ? workload::preset_mainnet()
                                 : preset == 1 ? workload::preset_low_conflict()
                                               : workload::preset_high_conflict();
  cfg.seed = 555 + static_cast<std::uint64_t>(preset);
  workload::WorkloadGenerator gen(cfg);
  state::WorldState genesis = gen.genesis();
  const auto txs = gen.next_batch(70);
  const SerialResult r = execute_serial(genesis, ctx_for(1), std::span(txs));
  const chain::Block block = seal_block(ctx_for(1), r.exec, r.included);

  ValidatorConfig vc;
  vc.threads = threads;
  BlockValidator validator(vc);
  ThreadPool workers(threads);
  const auto outcome =
      validator.validate(genesis, block, r.exec.profile, workers);
  EXPECT_TRUE(outcome.valid) << outcome.reject_reason;
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByRegime, ValidatorSweep,
    ::testing::Values(VParam{1, 0}, VParam{2, 0}, VParam{4, 0}, VParam{8, 0},
                      VParam{16, 0}, VParam{4, 1}, VParam{4, 2},
                      VParam{16, 2}));

}  // namespace
}  // namespace blockpilot::core
