// The `db` suite: the persistent node store's crash, corruption, and
// differential guarantees.
//
//   * PageFile round-trips, jumbo spans, torn-tail recovery;
//   * PagedNodeStore recovery to the last durable root after a simulated
//     kill (destruction without sync + physically torn file tail);
//   * checksum corruption surfaces as ErrorCode::kCorruptPage, never UB;
//   * 512-block differential fuzz: a never-persisted reference trie, an
//     InMemoryNodeStore lineage, and a PagedNodeStore lineage stay
//     bit-identical at every root — including across a crash + recovery +
//     replay restart at block 256;
//   * compaction preserves every live node and reclaims dead bytes;
//   * chain-level parity: a chain running on the paged store (with a
//     restart mid-run) commits the same roots and the same abort decisions
//     as a store-less chain;
//   * NodeCache counters stay monotone and consistent under concurrency.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/blockpilot.hpp"
#include "db/node_store.hpp"
#include "db/page_file.hpp"
#include "db/paged_node_store.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trie/mpt.hpp"
#include "trie/node_cache.hpp"

namespace blockpilot {
namespace {

namespace fs = std::filesystem;
using db::ErrorCode;
using db::PageFile;
using db::PageRef;
using db::Status;
using trie::Bytes;
using trie::MerklePatriciaTrie;

/// Self-deleting scratch directory for one test.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/bpdb_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

Bytes random_bytes(Xoshiro256& rng, std::size_t len) {
  Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

Hash256 hash_from(std::uint64_t x) {
  Hash256 h;
  std::memcpy(h.bytes.data(), &x, sizeof(x));
  return h;
}

/// Appends `n` garbage bytes to a file — the physically torn tail a crash
/// mid-pwrite leaves behind.
void tear_tail(const std::string& file, std::size_t n) {
  const int fd = ::open(file.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  std::vector<std::uint8_t> junk(n, 0x5a);
  ASSERT_EQ(::write(fd, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  ::close(fd);
}

/// Flips one byte at `offset` in a file (in-place corruption).
void flip_byte(const std::string& file, off_t offset) {
  const int fd = ::open(file.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  std::uint8_t b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
  b ^= 0xff;
  ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
  ::close(fd);
}

// ---------------------------------------------------------------- PageFile

TEST(PageFile, RoundTripsOrdinaryAndJumboRecords) {
  TempDir dir;
  const std::string path = dir.path + "/nodes.1.bpdb";
  PageFile::Options opts;
  opts.page_size = 256;  // small pages force sealing and jumbo spans

  std::unique_ptr<PageFile> file;
  ASSERT_TRUE(PageFile::open(path, opts, UINT64_MAX, file).ok());

  Xoshiro256 rng(42);
  std::vector<std::pair<PageRef, Bytes>> written;
  for (int i = 0; i < 200; ++i) {
    // Mix tiny records, page-filling records, and jumbo (multi-page) ones.
    const std::size_t len = i % 17 == 0 ? rng.range(300, 2000)  // jumbo
                                        : rng.range(1, 180);
    Bytes rec = random_bytes(rng, len);
    PageRef ref;
    ASSERT_TRUE(file->append(std::span(rec), ref).ok());
    written.emplace_back(ref, std::move(rec));
    if (i % 31 == 0) ASSERT_TRUE(file->sync().ok());
  }
  // Reads must work before AND after the final sync (partial-page reads).
  for (const auto& [ref, expect] : written) {
    Bytes got;
    ASSERT_TRUE(file->read(ref, got).ok());
    EXPECT_EQ(got, expect);
  }
  ASSERT_TRUE(file->sync().ok());

  // Reopen trusting the whole file and re-verify through scan.
  file.reset();
  ASSERT_TRUE(PageFile::open(path, opts, UINT64_MAX, file).ok());
  std::size_t seen = 0;
  ASSERT_TRUE(file
                  ->scan([&](const PageRef& ref,
                             std::span<const std::uint8_t> rec) -> Status {
                    EXPECT_EQ(written[seen].first, ref);
                    EXPECT_TRUE(std::equal(rec.begin(), rec.end(),
                                           written[seen].second.begin(),
                                           written[seen].second.end()));
                    ++seen;
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(seen, written.size());
}

TEST(PageFile, TruncatesUntrustedTailOnOpen) {
  TempDir dir;
  const std::string path = dir.path + "/nodes.1.bpdb";
  PageFile::Options opts;
  opts.page_size = 256;

  std::unique_ptr<PageFile> file;
  ASSERT_TRUE(PageFile::open(path, opts, UINT64_MAX, file).ok());
  Xoshiro256 rng(7);
  Bytes rec = random_bytes(rng, 100);
  PageRef ref;
  ASSERT_TRUE(file->append(std::span(rec), ref).ok());
  ASSERT_TRUE(file->sync().ok());
  const std::uint64_t durable = file->sealed_pages();
  // More appends that never sync, then a "crash".
  for (int i = 0; i < 20; ++i) {
    Bytes extra = random_bytes(rng, 150);
    PageRef r2;
    ASSERT_TRUE(file->append(std::span(extra), r2).ok());
  }
  file.reset();  // destructor does NOT sync — models the kill
  tear_tail(path, 97);

  // Recovery trusts only the durable prefix.
  ASSERT_TRUE(PageFile::open(path, opts, durable, file).ok());
  EXPECT_EQ(file->sealed_pages(), durable);
  Bytes got;
  ASSERT_TRUE(file->read(ref, got).ok());
  EXPECT_EQ(got, rec);
  EXPECT_EQ(fs::file_size(path), durable * opts.page_size);
}

// ---------------------------------------------------------- PagedNodeStore

TEST(PagedNodeStore, KillAfterNAppendsRecoversToDurableRoot) {
  // For several kill points N: commit a durable batch, append N more nodes
  // without a barrier, kill (no sync) + tear the tail, reopen.  Every
  // durable node must survive; the store must report the durable root.
  for (const int kills : {0, 1, 5, 40}) {
    TempDir dir;
    db::PagedNodeStore::Options opts;
    opts.page_size = 256;
    std::unique_ptr<db::PagedNodeStore> store;
    ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());

    Xoshiro256 rng(1000 + static_cast<std::uint64_t>(kills));
    std::vector<std::pair<Hash256, Bytes>> durable_nodes;
    for (int i = 0; i < 30; ++i) {
      const Hash256 h = hash_from(rng());
      Bytes enc = random_bytes(rng, rng.range(10, 400));
      ASSERT_TRUE(store->put(h, std::span(enc)).ok());
      durable_nodes.emplace_back(h, std::move(enc));
    }
    const Hash256 root = durable_nodes.back().first;
    ASSERT_TRUE(store->commit_root(root, 7).ok());

    for (int i = 0; i < kills; ++i) {
      const Hash256 h = hash_from(rng());
      Bytes enc = random_bytes(rng, rng.range(10, 400));
      ASSERT_TRUE(store->put(h, std::span(enc)).ok());
    }
    const std::string data_path = store->data_file_path();
    store.reset();  // kill: no sync, no manifest write
    tear_tail(data_path, 123);

    ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());
    EXPECT_EQ(store->durable_root(), root);
    EXPECT_EQ(store->durable_height(), 7u);
    EXPECT_EQ(store->stats().recovered_nodes, durable_nodes.size());
    for (const auto& [h, enc] : durable_nodes) {
      std::vector<std::uint8_t> got;
      ASSERT_TRUE(store->get(h, got).ok());
      EXPECT_EQ(got, enc);
    }
    ASSERT_TRUE(store->verify_all_pages().ok());
  }
}

TEST(PagedNodeStore, ChecksumCorruptionIsATypedError) {
  TempDir dir;
  db::PagedNodeStore::Options opts;
  opts.page_size = 256;
  std::unique_ptr<db::PagedNodeStore> store;
  ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());

  Xoshiro256 rng(99);
  Hash256 root;
  for (int i = 0; i < 20; ++i) {
    root = hash_from(rng());
    Bytes enc = random_bytes(rng, 100);
    ASSERT_TRUE(store->put(root, std::span(enc)).ok());
  }
  ASSERT_TRUE(store->commit_root(root, 1).ok());
  const std::string data_path = store->data_file_path();

  // Read-path detection: corrupt a sealed page under a live store.
  flip_byte(data_path, static_cast<off_t>(opts.page_size) + 60);
  bool saw_corrupt = false;
  std::vector<std::uint8_t> out;
  Xoshiro256 replay(99);
  for (int i = 0; i < 20; ++i) {
    const Hash256 h = hash_from(replay());
    (void)random_bytes(replay, 100);  // keep the streams aligned
    const Status st = store->get(h, out);
    if (!st.ok()) {
      EXPECT_EQ(st.code, ErrorCode::kCorruptPage) << st.message;
      saw_corrupt = true;
    }
  }
  EXPECT_TRUE(saw_corrupt);

  // Open-path detection: recovery scans every trusted page.
  store.reset();
  const Status st = db::PagedNodeStore::open(dir.path, opts, store);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code, ErrorCode::kCorruptPage) << st.message;
}

TEST(PagedNodeStore, RejectsGarbageManifest) {
  TempDir dir;
  {
    std::unique_ptr<db::PagedNodeStore> store;
    ASSERT_TRUE(db::PagedNodeStore::open(dir.path, {}, store).ok());
    const Bytes tiny{1, 2, 3};
    ASSERT_TRUE(store->put(hash_from(1), std::span(tiny)).ok());
    ASSERT_TRUE(store->commit_root(hash_from(1), 1).ok());
  }
  // Trash both manifest slots.
  const std::string manifest = dir.path + "/MANIFEST.bpdb";
  for (off_t off : {0, 128}) flip_byte(manifest, off);
  std::unique_ptr<db::PagedNodeStore> store;
  const Status st = db::PagedNodeStore::open(dir.path, {}, store);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code, ErrorCode::kBadManifest);
}

TEST(NodeStore, DedupAndMissSemanticsMatchAcrossBackends) {
  TempDir dir;
  db::InMemoryNodeStore mem;
  std::unique_ptr<db::PagedNodeStore> paged;
  ASSERT_TRUE(db::PagedNodeStore::open(dir.path, {}, paged).ok());

  const Hash256 h = hash_from(0xabc);
  const Bytes enc{1, 2, 3, 4};
  for (db::NodeStore* s : {static_cast<db::NodeStore*>(&mem),
                           static_cast<db::NodeStore*>(paged.get())}) {
    EXPECT_FALSE(s->contains(h));
    std::vector<std::uint8_t> out;
    EXPECT_EQ(s->get(h, out).code, ErrorCode::kNotFound);
    ASSERT_TRUE(s->put(h, std::span(enc)).ok());
    ASSERT_TRUE(s->put(h, std::span(enc)).ok());  // idempotent
    EXPECT_TRUE(s->contains(h));
    ASSERT_TRUE(s->get(h, out).ok());
    EXPECT_EQ(out, enc);
    const auto st = s->stats();
    EXPECT_EQ(st.puts, 1u);
    EXPECT_EQ(st.dup_puts, 1u);
    EXPECT_EQ(st.get_misses, 1u);
    EXPECT_EQ(st.nodes, 1u);
  }
}

TEST(AsyncReader, IssueAndWarmOverThreadPool) {
  db::InMemoryNodeStore store;
  Xoshiro256 rng(5);
  std::vector<Hash256> hashes;
  for (int i = 0; i < 64; ++i) {
    const Hash256 h = hash_from(rng());
    const Bytes enc = random_bytes(rng, 50);
    ASSERT_TRUE(store.put(h, std::span(enc)).ok());
    hashes.push_back(h);
  }
  ThreadPool pool(4);
  db::AsyncReader reader(store, &pool);
  // Issue-then-await tickets.
  std::vector<std::future<db::ReadResult>> futs;
  for (const Hash256& h : hashes) futs.push_back(reader.issue(h));
  for (auto& f : futs) EXPECT_TRUE(f.get().status.ok());
  EXPECT_EQ(reader.issue(hash_from(0xdead)).get().status.code,
            ErrorCode::kNotFound);
  // Fire-and-forget warm-up.
  std::atomic<std::size_t> warmed{0};
  EXPECT_EQ(reader.warm(std::span(hashes),
                        [&](std::span<const std::uint8_t>) { ++warmed; }),
            hashes.size());
  pool.wait_idle();
  EXPECT_EQ(warmed.load(), hashes.size());
}

// ------------------------------------------------- 512-block differential

/// Deterministic per-block op stream so a crash can replay exactly.
void apply_block_ops(MerklePatriciaTrie& t, std::uint64_t block) {
  Xoshiro256 rng(block * 7919 + 17);
  for (int op = 0; op < 24; ++op) {
    const std::uint64_t k = rng.below(2048);
    std::uint8_t key[8];
    std::memcpy(key, &k, sizeof(k));
    if (rng.chance(0.25)) {
      t.erase(std::span<const std::uint8_t>(key, sizeof(key)));
    } else {
      const Bytes value = random_bytes(rng, rng.range(1, 80));
      t.put(std::span<const std::uint8_t>(key, sizeof(key)), std::span(value));
    }
  }
}

TEST(DbDifferential, TrieRoots512BlocksWithCrashAt256) {
  TempDir dir;
  db::InMemoryNodeStore mem;
  db::PagedNodeStore::Options opts;
  opts.page_size = 512;
  opts.retained_roots = 8;
  std::unique_ptr<db::PagedNodeStore> paged;
  ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, paged).ok());

  const auto load_stats_before = trie::NodeCache::global().stats();

  MerklePatriciaTrie ref;        // never persisted: the oracle
  MerklePatriciaTrie mem_trie;   // persists into / reloads from memory
  MerklePatriciaTrie paged_trie;  // persists into / reloads from disk
  Hash256 prev_root = MerklePatriciaTrie::empty_root();

  for (std::uint64_t block = 0; block < 512; ++block) {
    if (block == 256) {
      // Crash: drop the disk lineage mid-flight (no final barrier for the
      // in-progress block), tear the file, recover, replay from the last
      // durable root.  The durable root is block 255's.
      paged_trie = MerklePatriciaTrie();
      const std::string data_path = paged->data_file_path();
      paged.reset();
      tear_tail(data_path, 345);
      ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, paged).ok());
      ASSERT_EQ(paged->durable_root(), prev_root);
      ASSERT_EQ(paged->durable_height(), 255u);
      ASSERT_GT(paged->stats().recovered_nodes, 0u);
      trie::NodeCache::global().clear();  // a restarted process is cold
      paged_trie = MerklePatriciaTrie::from_root(prev_root, *paged);
    }

    apply_block_ops(ref, block);
    apply_block_ops(mem_trie, block);
    apply_block_ops(paged_trie, block);

    const Hash256 root = ref.root_hash();
    ASSERT_EQ(mem_trie.root_hash(), root) << "mem diverged at " << block;
    ASSERT_EQ(paged_trie.root_hash(), root) << "paged diverged at " << block;

    mem_trie.persist_nodes(mem);
    ASSERT_TRUE(mem.commit_root(root, block).ok());
    paged_trie.persist_nodes(*paged);
    ASSERT_TRUE(paged->commit_root(root, block).ok());
    prev_root = root;

    // Periodically reopen both lineages from their roots (forcing the
    // stub/load path) and drop the cache (forcing actual store reads).
    if (block % 16 == 15) trie::NodeCache::global().clear();
    if (block % 8 == 7) {
      mem_trie = MerklePatriciaTrie::from_root(root, mem);
      paged_trie = MerklePatriciaTrie::from_root(root, *paged);
      ASSERT_EQ(mem_trie.root_hash(), root);
      ASSERT_EQ(paged_trie.root_hash(), root);
      ASSERT_EQ(mem_trie.get(std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>("\0\0\0\0\0\0\0\0"),
                    8)),
                paged_trie.get(std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>("\0\0\0\0\0\0\0\0"),
                    8)));
    }
  }

  // Final full-content check: every key readable through both lineages.
  mem_trie = MerklePatriciaTrie::from_root(prev_root, mem);
  paged_trie = MerklePatriciaTrie::from_root(prev_root, *paged);
  for (std::uint64_t k = 0; k < 2048; ++k) {
    std::uint8_t key[8];
    std::memcpy(key, &k, sizeof(k));
    const auto a = ref.get(std::span<const std::uint8_t>(key, sizeof(key)));
    const auto b = mem_trie.get(std::span<const std::uint8_t>(key, sizeof(key)));
    const auto c =
        paged_trie.get(std::span<const std::uint8_t>(key, sizeof(key)));
    ASSERT_EQ(a, b) << "key " << k;
    ASSERT_EQ(a, c) << "key " << k;
  }

  // The run must actually have exercised the read-through path.
  const auto load_stats_after = trie::NodeCache::global().stats();
  EXPECT_GT(load_stats_after.load_hits + load_stats_after.load_misses,
            load_stats_before.load_hits + load_stats_before.load_misses);
  ASSERT_TRUE(paged->verify_all_pages().ok());
}

// -------------------------------------------------------------- compaction

TEST(PagedNodeStore, CompactionKeepsLiveSetAndReclaimsDeadBytes) {
  TempDir dir;
  db::PagedNodeStore::Options opts;
  opts.page_size = 512;
  opts.retained_roots = 4;
  std::unique_ptr<db::PagedNodeStore> store;
  ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());

  // Overwrite a tiny keyspace again and again: almost every old node dies.
  MerklePatriciaTrie t;
  Hash256 root;
  Xoshiro256 rng(31337);
  for (std::uint64_t block = 0; block < 120; ++block) {
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t k = rng.below(64);
      std::uint8_t key[8];
      std::memcpy(key, &k, sizeof(k));
      const Bytes value = random_bytes(rng, 40);
      t.put(std::span<const std::uint8_t>(key, sizeof(key)), std::span(value));
    }
    root = t.root_hash();
    t.persist_nodes(*store);
    ASSERT_TRUE(store->commit_root(root, block).ok());
  }

  const auto before = store->stats();
  const std::uint64_t seq_before = store->file_seq();
  const std::string old_path = store->data_file_path();
  EXPECT_LT(store->live_ratio(), 0.5);  // most of the file is dead history

  ASSERT_TRUE(store->compact().ok());

  const auto after = store->stats();
  EXPECT_EQ(store->file_seq(), seq_before + 1);
  EXPECT_FALSE(fs::exists(old_path));
  EXPECT_TRUE(fs::exists(store->data_file_path()));
  EXPECT_LT(after.file_bytes, before.file_bytes);
  EXPECT_EQ(after.compactions, 1u);
  EXPECT_GT(after.compacted_bytes, 0u);
  EXPECT_EQ(store->durable_root(), root);
  ASSERT_TRUE(store->verify_all_pages().ok());

  // Every retained root must still fully reconstruct.
  trie::NodeCache::global().clear();
  MerklePatriciaTrie reloaded = MerklePatriciaTrie::from_root(root, *store);
  EXPECT_EQ(reloaded.root_hash(), root);
  for (std::uint64_t k = 0; k < 64; ++k) {
    std::uint8_t key[8];
    std::memcpy(key, &k, sizeof(k));
    EXPECT_EQ(reloaded.get(std::span<const std::uint8_t>(key, sizeof(key))),
              t.get(std::span<const std::uint8_t>(key, sizeof(key))));
  }

  // And the compacted store survives a restart.
  store.reset();
  ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());
  EXPECT_EQ(store->durable_root(), root);
  trie::NodeCache::global().clear();
  reloaded = MerklePatriciaTrie::from_root(root, *store);
  EXPECT_EQ(reloaded.root_hash(), root);
}

// ------------------------------------------------------- chain-level parity

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

struct ChainRun {
  std::vector<Hash256> roots;
  std::vector<std::uint64_t> aborts;
};

TEST(DbChainParity, PagedStoreWithRestartMatchesStorelessChain) {
  constexpr std::uint64_t kBlocks = 24;
  constexpr std::uint64_t kRestartAt = 12;

  // The proposer is deterministic, so two runs over the same workload seed
  // must agree block-by-block on roots AND abort decisions — with or
  // without a store attached, and across a store restart.
  ChainRun baseline, stored;
  TempDir dir;
  for (const bool with_store : {false, true}) {
    workload::WorkloadConfig wc = workload::preset_mainnet();
    wc.seed = 4242;
    workload::WorkloadGenerator gen(wc);
    chain::Blockchain chain(gen.genesis());
    ThreadPool workers(4);

    db::PagedNodeStore::Options opts;
    opts.page_size = 4096;
    std::unique_ptr<db::PagedNodeStore> store;
    if (with_store) {
      ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());
      chain.attach_node_store(store.get());
    }

    core::ProposerConfig pc;
    pc.threads = 4;
    core::OccWsiProposer proposer(pc);
    ChainRun& run = with_store ? stored : baseline;

    for (std::uint64_t height = 1; height <= kBlocks; ++height) {
      if (with_store && height == kRestartAt) {
        // Simulated crash + recovery restart mid-run: the recovered store
        // must hold the durable root the chain last finalized, and the
        // chain must keep committing into it afterwards.
        chain.attach_node_store(nullptr);
        const Hash256 durable_before = chain.head().header.state_root;
        const std::string data_path = store->data_file_path();
        store.reset();
        tear_tail(data_path, 200);
        ASSERT_TRUE(db::PagedNodeStore::open(dir.path, opts, store).ok());
        ASSERT_EQ(store->durable_root(), durable_before);
        ASSERT_EQ(store->durable_height(), height - 1);
        // The finalized account trie must reconstruct from disk.
        trie::NodeCache::global().clear();
        trie::SecureTrie accounts =
            trie::SecureTrie::from_root(durable_before, *store);
        ASSERT_EQ(accounts.root_hash(), durable_before);
        chain.attach_node_store(store.get());
      }

      txpool::TxPool pool;
      pool.add_all(gen.next_block());
      const auto parent_state = chain.head_state();
      core::ProposedBlock proposed =
          proposer.propose(*parent_state, ctx_for(height), pool, workers);
      proposed.block.header.parent_hash = chain.head().header.hash();
      chain.commit_block(proposed.block, proposed.post_state,
                         std::move(proposed.receipts));
      run.roots.push_back(proposed.block.header.state_root);
      run.aborts.push_back(proposed.stats.aborts);
    }
  }

  ASSERT_EQ(baseline.roots.size(), stored.roots.size());
  for (std::size_t i = 0; i < baseline.roots.size(); ++i) {
    EXPECT_EQ(baseline.roots[i], stored.roots[i]) << "root at block " << i;
    EXPECT_EQ(baseline.aborts[i], stored.aborts[i]) << "aborts at block " << i;
  }
}

// ------------------------------------------------------ NodeCache counters

TEST(NodeCacheCounters, MonotoneAndConsistentUnderConcurrentReaders) {
  trie::NodeCache cache(8 * 1024);  // small: forces churn + jumbo bypass
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 4000;

  // A shared pool of encodings: mostly small (cachable, re-used so hits
  // occur; far more than the budget holds, so shards churn), a few jumbo
  // (entry_bytes() over the per-shard budget: always bypassed).
  std::vector<Bytes> encodings;
  {
    Xoshiro256 rng(2024);
    for (int i = 0; i < 128; ++i)
      encodings.push_back(random_bytes(rng, rng.range(8, 64)));
    for (int i = 0; i < 4; ++i) encodings.push_back(random_bytes(rng, 4096));
  }

  // `calls` counts hash_of calls and is incremented BEFORE each call, so a
  // concurrent stats() sample always sees hits + misses <= calls.
  std::atomic<std::uint64_t> calls{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(500 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kCallsPerThread; ++i) {
        const Bytes& enc = encodings[rng.below(encodings.size())];
        calls.fetch_add(1, std::memory_order_relaxed);
        const Hash256 h = cache.hash_of(std::span(enc));
        if (i % 7 == 0) {
          // Reverse lookups must agree with the forward mapping.
          const auto back = cache.encoding_of(h);
          if (back.has_value()) {
            calls.fetch_add(1, std::memory_order_relaxed);
            EXPECT_EQ(cache.hash_of(std::span(*back)), h);
          }
        }
      }
    });
  }

  // Sample stats concurrently: every counter must be monotone, the byte
  // accounting must stay within the configured budget, and counter sums
  // must never outrun issued calls.
  trie::NodeCache::Stats last;
  while (calls.load(std::memory_order_relaxed) <
         static_cast<std::uint64_t>(kThreads) * kCallsPerThread) {
    const auto s = cache.stats();
    EXPECT_GE(s.hits, last.hits);
    EXPECT_GE(s.misses, last.misses);
    EXPECT_GE(s.evictions, last.evictions);
    EXPECT_GE(s.rejected, last.rejected);
    EXPECT_GE(s.bypassed, last.bypassed);
    EXPECT_LE(s.bytes, s.capacity);
    EXPECT_LE(s.hits + s.misses, calls.load(std::memory_order_relaxed));
    last = s;
    std::this_thread::yield();
  }
  for (auto& w : workers) w.join();

  // At rest: every hash_of call was exactly one hit or one miss (cap > 0),
  // and every jumbo call also counted a bypass.
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, calls.load());
  EXPECT_GT(s.bypassed, 0u);        // the jumbo encodings bypassed
  EXPECT_LE(s.bypassed, s.misses);  // a jumbo bypass is also a miss
  EXPECT_GT(s.hits, 0u);
  // The working set is ~4x the budget, so full shards had to either evict
  // (admission won) or reject (TinyLFU kept the victim) on misses.
  EXPECT_GT(s.evictions + s.rejected, 0u);
}

}  // namespace
}  // namespace blockpilot
