#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "chain/blockchain.hpp"
#include "chain/codec.hpp"
#include "core/serial_executor.hpp"
#include "workload/generator.hpp"

namespace blockpilot::chain {
namespace {

Transaction sample_tx(std::uint64_t nonce) {
  Transaction tx;
  tx.nonce = nonce;
  tx.gas_price = U256{100 + nonce};
  tx.gas_limit = 21000;
  tx.from = Address::from_id(1);
  tx.to = Address::from_id(2);
  tx.value = U256{12345};
  tx.data = {0xde, 0xad, 0x00, 0xbe, 0xef};
  return tx;
}

TEST(Transaction, HashIsStableAndSensitive) {
  const Transaction a = sample_tx(0);
  Transaction b = sample_tx(0);
  EXPECT_EQ(a.hash(), b.hash());
  b.value += U256{1};
  EXPECT_NE(a.hash(), b.hash());
  Transaction c = sample_tx(1);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(BlockHeader, HashCoversAllFields) {
  BlockHeader h;
  h.number = 5;
  const Hash256 base = h.hash();
  BlockHeader h2 = h;
  h2.gas_used = 1;
  EXPECT_NE(base, h2.hash());
  BlockHeader h3 = h;
  h3.state_root.bytes[31] = 1;
  EXPECT_NE(base, h3.hash());
  BlockHeader h4 = h;
  h4.parent_hash.bytes[0] = 1;
  EXPECT_NE(base, h4.hash());
}

TEST(TransactionsRoot, EmptyAndOrderSensitivity) {
  EXPECT_EQ(transactions_root({}).to_hex(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
  const std::vector<Transaction> ab = {sample_tx(0), sample_tx(1)};
  const std::vector<Transaction> ba = {sample_tx(1), sample_tx(0)};
  EXPECT_NE(transactions_root(ab), transactions_root(ba));
  EXPECT_EQ(transactions_root(ab), transactions_root(ab));
}

TEST(Blockchain, GenesisAndCommit) {
  state::WorldState genesis_state;
  genesis_state.set(state::StateKey::balance(Address::from_id(7)), U256{9});
  Blockchain chain(genesis_state);
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.genesis().header.state_root, genesis_state.state_root());

  Block b1;
  b1.header.number = 1;
  b1.header.parent_hash = chain.genesis_hash();
  auto post = std::make_shared<state::WorldState>(genesis_state);
  post->set(state::StateKey::balance(Address::from_id(8)), U256{1});
  b1.header.state_root = post->state_root();
  const Hash256 b1_hash = b1.header.hash();
  chain.commit_block(b1, post);

  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.head().header.hash(), b1_hash);
  EXPECT_NE(chain.block_by_hash(b1_hash), nullptr);
  EXPECT_EQ(chain.block_by_hash(Hash256{}), nullptr);
  EXPECT_EQ(chain.state_of(b1_hash)->state_root(), b1.header.state_root);
}

TEST(Blockchain, CanonicalBlockWalk) {
  Blockchain chain(state::WorldState{});
  auto state = std::make_shared<state::WorldState>();
  Hash256 parent = chain.genesis_hash();
  std::vector<Hash256> hashes = {parent};
  for (std::uint64_t h = 1; h <= 4; ++h) {
    Block b;
    b.header.number = h;
    b.header.timestamp = h;
    b.header.parent_hash = parent;
    parent = b.header.hash();
    hashes.push_back(parent);
    chain.commit_block(std::move(b), state);
  }
  for (std::uint64_t h = 0; h <= 4; ++h) {
    const Block* blk = chain.canonical_block_at(h);
    ASSERT_NE(blk, nullptr) << h;
    EXPECT_EQ(blk->header.number, h);
    EXPECT_EQ(blk->header.hash(), hashes[h]);
  }
  EXPECT_EQ(chain.canonical_block_at(5), nullptr);
}

TEST(Blockchain, ReceiptsStoredAndRetrievable) {
  Blockchain chain(state::WorldState{});
  Block b;
  b.header.number = 1;
  b.header.parent_hash = chain.genesis_hash();
  const Hash256 h = b.header.hash();
  std::vector<Receipt> receipts(3);
  receipts[1].gas_used = 777;
  chain.commit_block(std::move(b), std::make_shared<state::WorldState>(),
                     receipts);
  const auto* stored = chain.receipts_of(h);
  ASSERT_NE(stored, nullptr);
  ASSERT_EQ(stored->size(), 3u);
  EXPECT_EQ((*stored)[1].gas_used, 777u);
  EXPECT_EQ(chain.receipts_of(chain.genesis_hash()), nullptr);
}

TEST(Blockchain, SiblingForksKeepHeadStable) {
  Blockchain chain(state::WorldState{});
  auto state = std::make_shared<state::WorldState>();

  Block a, b;
  a.header.number = 1;
  a.header.timestamp = 1;
  a.header.parent_hash = chain.genesis_hash();
  b.header.number = 1;
  b.header.timestamp = 2;  // distinct hash
  b.header.parent_hash = chain.genesis_hash();

  chain.commit_block(a, state);
  const Hash256 head_after_a = chain.head().header.hash();
  chain.commit_block(b, state);
  // Same height: head does not reorg to the sibling.
  EXPECT_EQ(chain.head().header.hash(), head_after_a);
  EXPECT_EQ(chain.block_count(), 3u);
}

// ---- receipts, blooms ----

evm::LogRecord sample_log(std::uint64_t addr_id, std::uint64_t topic) {
  evm::LogRecord log;
  log.address = Address::from_id(addr_id);
  log.topics.push_back(U256{topic});
  log.data = {1, 2, 3};
  return log;
}

TEST(Bloom, AddedItemsMayBeContained) {
  Bloom b;
  const Address addr = Address::from_id(77);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.may_contain(std::span(addr.bytes)));
  b.add(std::span(addr.bytes));
  EXPECT_TRUE(b.may_contain(std::span(addr.bytes)));
  EXPECT_FALSE(b.empty());
}

TEST(Bloom, AbsentItemsUsuallyRejected) {
  Bloom b;
  const Address present = Address::from_id(1);
  b.add(std::span(present.bytes));
  int false_positives = 0;
  for (std::uint64_t i = 100; i < 400; ++i) {
    const Address absent = Address::from_id(i);
    if (b.may_contain(std::span(absent.bytes))) ++false_positives;
  }
  // 3 bits of 2048 set: false-positive rate must be tiny.
  EXPECT_LT(false_positives, 3);
}

TEST(Bloom, MergeIsUnion) {
  Bloom a, b;
  const Address x = Address::from_id(1), y = Address::from_id(2);
  a.add(std::span(x.bytes));
  b.add(std::span(y.bytes));
  a.merge(b);
  EXPECT_TRUE(a.may_contain(std::span(x.bytes)));
  EXPECT_TRUE(a.may_contain(std::span(y.bytes)));
}

TEST(Bloom, FromBytesRoundTrip) {
  Bloom b;
  const Address x = Address::from_id(42);
  b.add(std::span(x.bytes));
  const Bloom back = Bloom::from_bytes(std::span(b.bytes()));
  EXPECT_EQ(b, back);
}

TEST(Receipt, BloomCoversLogAddressAndTopics) {
  Receipt r;
  r.logs.push_back(sample_log(9, 0xbeef));
  const Bloom b = r.bloom();
  const Address logger = Address::from_id(9);
  EXPECT_TRUE(b.may_contain(std::span(logger.bytes)));
  const auto topic = U256{0xbeef}.to_be_bytes();
  EXPECT_TRUE(b.may_contain(std::span(topic)));
}

TEST(Receipt, RootSensitiveToContent) {
  Receipt a;
  a.success = true;
  a.gas_used = 21000;
  a.cumulative_gas = 21000;
  Receipt b = a;
  EXPECT_EQ(receipts_root({a}), receipts_root({b}));
  b.success = false;
  EXPECT_NE(receipts_root({a}), receipts_root({b}));
  Receipt c = a;
  c.logs.push_back(sample_log(1, 2));
  EXPECT_NE(receipts_root({a}), receipts_root({c}));
  EXPECT_EQ(receipts_root({}).to_hex(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(Receipt, BlockBloomIsUnionOfReceipts) {
  Receipt a, b;
  a.logs.push_back(sample_log(1, 10));
  b.logs.push_back(sample_log(2, 20));
  const Bloom combined = block_bloom({a, b});
  const Address one = Address::from_id(1), two = Address::from_id(2);
  EXPECT_TRUE(combined.may_contain(std::span(one.bytes)));
  EXPECT_TRUE(combined.may_contain(std::span(two.bytes)));
}

// ---- log filtering over the chain ----

TEST(FilterLogs, FindsTokenTransfersByAddressAndTopic) {
  // Build a two-block chain whose token transfers emit LOG2 events, then
  // query them back through the bloom-accelerated filter.
  workload::WorkloadConfig wc = workload::preset_mainnet();
  wc.seed = 808;
  wc.dex_fraction = 0.0;  // token transfers only emit logs
  wc.token_fraction = 0.8;
  workload::WorkloadGenerator gen(wc);
  Blockchain chain(gen.genesis());

  evm::BlockContext ctx;
  ctx.coinbase = Address::from_id(0xFEE);
  std::size_t expected_logs = 0;
  auto parent_state = chain.head_state();
  for (std::uint64_t h = 1; h <= 2; ++h) {
    ctx.number = h;
    const auto txs = gen.next_batch(40);
    const auto r = core::execute_serial(*parent_state, ctx, std::span(txs));
    Block block = core::seal_block(ctx, r.exec, r.included);
    block.header.parent_hash = chain.head().header.hash();
    for (const auto& receipt : r.exec.receipts)
      expected_logs += receipt.logs.size();
    chain.commit_block(std::move(block), r.exec.post_state, r.exec.receipts);
    parent_state = chain.head_state();
  }
  ASSERT_GT(expected_logs, 0u);

  // All logs from the hottest token contract.
  LogQuery by_address;
  by_address.address = gen.token(0);
  const auto token_logs = filter_logs(chain, by_address);
  for (const auto& match : token_logs)
    EXPECT_EQ(match.log.address, gen.token(0));

  // Unfiltered query returns every log.
  const auto all = filter_logs(chain, LogQuery{});
  EXPECT_EQ(all.size(), expected_logs);
  EXPECT_LE(token_logs.size(), all.size());

  // Topic query: logs where some specific account was sender or receiver.
  ASSERT_FALSE(all.empty());
  const U256 some_topic = all.front().log.topics.front();
  LogQuery by_topic;
  by_topic.topic = some_topic;
  const auto topic_logs = filter_logs(chain, by_topic);
  EXPECT_FALSE(topic_logs.empty());
  for (const auto& match : topic_logs) {
    bool hit = false;
    for (const auto& topic : match.log.topics)
      if (topic == some_topic) hit = true;
    EXPECT_TRUE(hit);
  }

  // Height range restriction.
  LogQuery only_h2;
  only_h2.from_height = 2;
  for (const auto& match : filter_logs(chain, only_h2))
    EXPECT_EQ(match.height, 2u);

  // An address nobody logged: bloom short-circuits to zero matches.
  LogQuery ghost;
  ghost.address = Address::from_id(0xDEADDEAD);
  EXPECT_TRUE(filter_logs(chain, ghost).empty());
}

// ---- wire codec ----

TEST(Codec, TransactionRoundTrip) {
  const Transaction tx = sample_tx(3);
  const Bytes wire = tx.rlp_encode();
  const Transaction back = decode_transaction(rlp::decode(std::span(wire)));
  EXPECT_EQ(back.nonce, tx.nonce);
  EXPECT_EQ(back.gas_price, tx.gas_price);
  EXPECT_EQ(back.gas_limit, tx.gas_limit);
  EXPECT_EQ(back.from, tx.from);
  EXPECT_EQ(back.to, tx.to);
  EXPECT_EQ(back.value, tx.value);
  EXPECT_EQ(back.data, tx.data);
  EXPECT_EQ(back.hash(), tx.hash());
}

TEST(Codec, BlockRoundTrip) {
  Block block;
  block.header.number = 42;
  block.header.gas_used = 123456;
  block.header.coinbase = Address::from_id(0xFEE);
  block.header.timestamp = 999;
  for (std::uint64_t i = 0; i < 5; ++i)
    block.transactions.push_back(sample_tx(i));
  block.header.tx_root = transactions_root(block.transactions);

  const Bytes wire = encode_block(block);
  const Block back = decode_block(std::span(wire));
  EXPECT_EQ(back.header.hash(), block.header.hash());
  ASSERT_EQ(back.transactions.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(back.transactions[i].hash(), block.transactions[i].hash());
  EXPECT_EQ(transactions_root(back.transactions), block.header.tx_root);
}

TEST(Codec, ProfileRoundTrip) {
  BlockProfile profile;
  TxProfile t1;
  t1.reads.push_back(state::StateKey::balance(Address::from_id(1)));
  t1.reads.push_back(state::StateKey::storage(Address::from_id(2), U256{7}));
  t1.writes.emplace_back(state::StateKey::nonce(Address::from_id(1)),
                         U256{5});
  t1.writes.emplace_back(
      state::StateKey::storage(Address::from_id(2), U256{7}), U256{0xabc});
  t1.gas_used = 54321;
  profile.txs.push_back(t1);
  profile.txs.push_back(TxProfile{});  // empty profile entry is legal

  const Bytes wire = encode_profile(profile);
  const BlockProfile back = decode_profile(std::span(wire));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.txs[0].reads, profile.txs[0].reads);
  EXPECT_EQ(back.txs[0].writes, profile.txs[0].writes);
  EXPECT_EQ(back.txs[0].gas_used, 54321u);
  EXPECT_TRUE(back.txs[1].reads.empty());
  EXPECT_TRUE(back.txs[1].writes.empty());
}

TEST(Codec, AnnouncementRoundTripOnRealBlock) {
  // A real proposer output survives the wire intact — what validators in
  // the network substrate actually consume.
  workload::WorkloadGenerator gen(workload::preset_mainnet());
  const state::WorldState genesis = gen.genesis();
  evm::BlockContext ctx;
  ctx.number = 1;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  const auto txs = gen.next_batch(40);
  const core::SerialResult serial =
      core::execute_serial(genesis, ctx, std::span(txs));

  BlockAnnouncement ann;
  ann.block.header.number = 1;
  ann.block.header.coinbase = ctx.coinbase;
  ann.block.header.gas_used = serial.exec.gas_used;
  ann.block.header.state_root = serial.exec.state_root;
  ann.block.header.tx_root = transactions_root(serial.included);
  ann.block.transactions = serial.included;
  ann.profile = serial.exec.profile;

  const Bytes wire = encode_announcement(ann);
  const BlockAnnouncement back = decode_announcement(std::span(wire));
  EXPECT_EQ(back.block.header.hash(), ann.block.header.hash());
  ASSERT_EQ(back.profile.size(), ann.profile.size());
  for (std::size_t i = 0; i < ann.profile.size(); ++i) {
    EXPECT_EQ(back.profile.txs[i].reads, ann.profile.txs[i].reads);
    EXPECT_EQ(back.profile.txs[i].writes, ann.profile.txs[i].writes);
    EXPECT_EQ(back.profile.txs[i].gas_used, ann.profile.txs[i].gas_used);
  }
}

}  // namespace
}  // namespace blockpilot::chain
