#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "support/mpmc_queue.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Xoshiro256 a2(42), c2(43);
  EXPECT_NE(a2(), c2());
}

TEST(Xoshiro, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Xoshiro256 rng(11);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 20);  // rank 0 well above uniform share
}

TEST(Zipf, ZeroSkewIsUniformish) {
  Xoshiro256 rng(13);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  for (const int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksExecutedCounterIsExact) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.tasks_executed(), 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 250; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_executed(), 250u);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_executed(), 251u);
}

TEST(ThreadPool, WorkerIndexIsStableAndBounded) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::size_t> seen;
  for (int i = 0; i < 60; ++i) {
    pool.submit([&] {
      const std::size_t idx = ThreadPool::worker_index();
      std::scoped_lock lk(mu);
      seen.insert(idx);
    });
  }
  pool.wait_idle();
  EXPECT_LE(seen.size(), 3u);
  for (const auto idx : seen) EXPECT_LT(idx, 3u);
  EXPECT_EQ(ThreadPool::worker_index(), SIZE_MAX);  // non-pool thread
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(MpmcQueue, CloseDrainsThenEnds) {
  MpmcQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, ProducersConsumersAgree) {
  MpmcQueue<int> q(64);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::jthread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  threads.clear();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  long long expect = 0;
  for (int i = 0; i < total; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(WorkLedger, TracksPerWorkerClocks) {
  vtime::WorkLedger ledger(3);
  ledger.add(0, 100);
  ledger.add(1, 250);
  ledger.add(1, 50);
  ledger.add(2, 10);
  EXPECT_EQ(ledger.clock(0), 100u);
  EXPECT_EQ(ledger.clock(1), 300u);
  EXPECT_EQ(ledger.makespan(), 300u);
  EXPECT_EQ(ledger.total(), 410u);
  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
}

TEST(WorkLedger, SpeedupHelper) {
  EXPECT_DOUBLE_EQ(vtime::speedup(1000, 250), 4.0);
  EXPECT_DOUBLE_EQ(vtime::speedup(1000, 0), 1.0);
}

}  // namespace
}  // namespace blockpilot
