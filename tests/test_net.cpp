#include <gtest/gtest.h>

#include "net/consensus_sim.hpp"
#include "net/network.hpp"
#include "support/rng.hpp"

namespace blockpilot::net {
namespace {

TEST(SimNetwork, PointToPointDelivery) {
  SimNetwork net(3);
  net.send(0, 1, 1000, {1, 2, 3});
  ASSERT_FALSE(net.idle());
  const auto msg = net.next_delivery();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0u);
  EXPECT_EQ(msg->to, 1u);
  EXPECT_GT(msg->deliver_time_us, msg->send_time_us);
  EXPECT_EQ(msg->payload, (Bytes{1, 2, 3}));
  EXPECT_TRUE(net.idle());
}

TEST(SimNetwork, BroadcastReachesEveryoneButSender) {
  SimNetwork net(4);
  net.broadcast(2, 0, {9});
  std::vector<NodeId> receivers;
  while (auto msg = net.next_delivery()) receivers.push_back(msg->to);
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{0, 1, 3}));
}

TEST(SimNetwork, DeliveryOrderedByTime) {
  LinkModel link;
  link.base_latency_us = 100;
  link.bytes_per_us = 1;
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(500, 0));   // delivers at 600
  net.send(0, 1, 200, Bytes(10, 0));  // delivers at 310
  const auto first = net.next_delivery();
  const auto second = net.next_delivery();
  EXPECT_EQ(first->deliver_time_us, 310u);
  EXPECT_EQ(second->deliver_time_us, 600u);
}

TEST(SimNetwork, LargerPayloadsTakeLonger) {
  LinkModel link;
  EXPECT_GT(link.transit_time(1'000'000), link.transit_time(100));
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(1'000'000, 0));
  net.send(0, 1, 0, Bytes(100, 0));
  EXPECT_EQ(net.bytes_sent(), 1'000'100u);
}

TEST(SimNetwork, JitterIsBoundedAndSeedDeterministic) {
  LinkModel link;
  link.base_latency_us = 1'000;
  link.bytes_per_us = 1'000;
  link.jitter_us = 500;
  link.jitter_seed = 42;

  auto deliveries = [&](std::uint64_t seed) {
    LinkModel l = link;
    l.jitter_seed = seed;
    SimNetwork net(3, l);
    for (int i = 0; i < 16; ++i) net.broadcast(0, 0, Bytes(100, 0));
    std::vector<std::uint64_t> times;
    while (auto msg = net.next_delivery()) {
      const std::uint64_t floor = l.transit_time(100);
      EXPECT_GE(msg->deliver_time_us, floor);
      EXPECT_LE(msg->deliver_time_us, floor + l.jitter_us);
      times.push_back(msg->deliver_time_us);
    }
    return times;
  };

  const auto a = deliveries(42);
  const auto b = deliveries(42);
  const auto c = deliveries(43);
  EXPECT_EQ(a, b);   // same seed -> bit-identical schedule
  EXPECT_NE(a, c);   // different seed -> different shuffle
}

TEST(ConsensusSim, SingleProposerChainAdvances) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.total_uncles, 0u);
  EXPECT_GT(result.total_txs, 0u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.valid_siblings, 1u);
    EXPECT_GT(round.round_latency_us, 0u);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }
}

TEST(ConsensusSim, ForkedRoundsStaySafe) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 3;
  cfg.validator_nodes = 4;
  cfg.proposers_per_round = 2;  // every round forks
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.total_uncles, 3u);  // one uncle per forked round
  EXPECT_GT(result.bytes_gossiped, 0u);
}

TEST(ConsensusSim, DeterministicAcrossRuns) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 2;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  const auto a = ConsensusSim(cfg).run();
  const auto b = ConsensusSim(cfg).run();
  ASSERT_TRUE(a.safety_held && b.safety_held);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].canonical_root, b.rounds[i].canonical_root);
    EXPECT_EQ(a.rounds[i].round_latency_us, b.rounds[i].round_latency_us);
    EXPECT_EQ(a.rounds[i].txs, b.rounds[i].txs);
  }
  EXPECT_EQ(a.bytes_gossiped, b.bytes_gossiped);
}

TEST(ConsensusSim, SpeculativeRunSettlesCleanAndMatchesInline) {
  // Honest run through the commit pipelines: every provisional vote must
  // survive the settle pass, the whole chain settles, and the canonical
  // roots are bit-identical to a fully inline (synchronous-commit) run.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;

  cfg.commit_threads = 2;  // async sealing + speculative validation
  const auto async_run = ConsensusSim(cfg).run();
  ASSERT_TRUE(async_run.safety_held) << async_run.violation;
  EXPECT_EQ(async_run.revoked_votes, 0u);
  EXPECT_EQ(async_run.settled_height, cfg.rounds);
  ASSERT_EQ(async_run.rounds.size(), cfg.rounds);
  for (const auto& round : async_run.rounds) {
    EXPECT_TRUE(round.settled);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }

  cfg.commit_threads = 0;  // degraded mode: inline seal + inline root check
  const auto inline_run = ConsensusSim(cfg).run();
  ASSERT_TRUE(inline_run.safety_held) << inline_run.violation;
  EXPECT_EQ(inline_run.speculative_votes, 0u);  // nothing pends inline
  ASSERT_EQ(inline_run.rounds.size(), cfg.rounds);
  for (std::size_t i = 0; i < cfg.rounds; ++i) {
    EXPECT_EQ(async_run.rounds[i].canonical_root,
              inline_run.rounds[i].canonical_root);
    EXPECT_EQ(async_run.rounds[i].txs, inline_run.rounds[i].txs);
  }
}

TEST(ConsensusSim, LateRootMismatchCascadesVoteRevocation) {
  // A Byzantine proposer set tampers with the sealed roots at height 2.
  // The blocks re-execute cleanly, so every validator casts a provisional
  // vote for one of them; the lie is only discovered when the commitments
  // settle.  With every leader lying there is no fork-choice survivor: the
  // votes at height 2 are revoked, the speculative suffix dies, and the
  // settled chain truncates at 1.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.byzantine_height = 2;
  cfg.workload.txs_per_block = 20;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto result = ConsensusSim(cfg).run();
  // Safety holds: the honest validators *agree* on detection + revocation.
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 4u);

  EXPECT_TRUE(result.rounds[0].settled);
  EXPECT_FALSE(result.rounds[0].canonical_root.is_zero());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(result.rounds[i].settled) << "height " << i + 1;
    EXPECT_TRUE(result.rounds[i].canonical_root.is_zero());
    EXPECT_EQ(result.rounds[i].txs, 0u);
  }
  EXPECT_EQ(result.settled_height, 1u);
  EXPECT_EQ(result.fork_choices, 0u);  // no honest sibling to adopt
  // Height 2's votes are revoked for certain; heights 3 and 4 only lose
  // votes they managed to cast before the settlement caught the lie (the
  // live loop kills the suffix as soon as height 2 fails, unlike the batch
  // driver which always voted every height first).
  EXPECT_GE(result.revoked_votes, 1u * cfg.validator_nodes);
  EXPECT_LE(result.revoked_votes, 3u * cfg.validator_nodes);
  EXPECT_EQ(result.total_txs, result.rounds[0].txs);
}

TEST(ConsensusSim, BatchReferenceCascadeIsExact) {
  // The pre-refactor round-batch driver votes every height before its
  // post-hoc settle pass, so the cascade bookkeeping is exact: heights 2,
  // 3, 4 each lose all validator votes.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.byzantine_height = 2;
  cfg.workload.txs_per_block = 20;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto result = ConsensusSim(cfg).run_batch_reference();
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 4u);
  EXPECT_TRUE(result.rounds[0].settled);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_FALSE(result.rounds[i].settled) << "height " << i + 1;
  EXPECT_EQ(result.settled_height, 1u);
  EXPECT_EQ(result.revoked_votes, 3u * cfg.validator_nodes);
  EXPECT_EQ(result.total_txs, result.rounds[0].txs);
}

TEST(ConsensusSim, DepthZeroSingleProposerMatchesBatchReference) {
  // Lock-step degraded mode: speculation_depth = 0 with a single proposer
  // must settle canonical roots bit-identical to the pre-refactor batch
  // algorithm (same workload draws, same per-height execution, same
  // settlement decisions) — the refactor's semantic anchor.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.speculation_depth = 0;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto live = ConsensusSim(cfg).run();
  const auto batch = ConsensusSim(cfg).run_batch_reference();
  ASSERT_TRUE(live.safety_held) << live.violation;
  ASSERT_TRUE(batch.safety_held) << batch.violation;
  ASSERT_EQ(live.rounds.size(), batch.rounds.size());
  EXPECT_EQ(live.settled_height, batch.settled_height);
  EXPECT_EQ(live.total_txs, batch.total_txs);
  for (std::size_t i = 0; i < live.rounds.size(); ++i) {
    EXPECT_EQ(live.rounds[i].settled, batch.rounds[i].settled);
    EXPECT_EQ(live.rounds[i].canonical_root, batch.rounds[i].canonical_root)
        << "height " << i + 1;
    EXPECT_EQ(live.rounds[i].txs, batch.rounds[i].txs);
  }
}

TEST(ConsensusSim, ForkChoiceAdoptsHonestSurvivor) {
  // One of two leaders lies at height 2.  Whether the (hash-min) vote
  // lands on the lie is decided by the block hashes, so sweep workload
  // seeds: every run must keep safety and settle the full chain — either
  // the vote dodged the lie (the tampered sibling is just an invalid
  // uncle) or settlement revoked it and fork-choice adopted the honest
  // survivor, truncating and re-proposing the speculative suffix.  At
  // least one seed must exercise the fork-choice path.
  std::uint64_t fork_choices_seen = 0;
  for (std::uint64_t seed : {0x5eedULL, 0xACEULL, 0xBEEFULL, 0xF00DULL}) {
    ConsensusSimConfig cfg;
    cfg.proposer_nodes = 2;
    cfg.validator_nodes = 3;
    cfg.proposers_per_round = 2;
    cfg.rounds = 3;
    cfg.byzantine_height = 2;
    cfg.byzantine_proposers = 1;
    cfg.workload.seed = seed;
    cfg.workload.txs_per_block = 15;
    cfg.proposer_threads = 4;
    cfg.validator_workers = 8;
    cfg.commit_threads = 2;

    const auto result = ConsensusSim(cfg).run();
    ASSERT_TRUE(result.safety_held) << result.violation;
    EXPECT_EQ(result.settled_height, cfg.rounds) << "seed " << seed;
    for (const auto& round : result.rounds) {
      EXPECT_TRUE(round.settled);
      EXPECT_FALSE(round.canonical_root.is_zero());
    }
    // The lie never settles: height 2 keeps exactly one valid sibling.
    EXPECT_EQ(result.rounds[1].valid_siblings, 1u);
    if (result.fork_choices > 0) {
      EXPECT_GE(result.revoked_votes, cfg.validator_nodes);
    } else {
      EXPECT_EQ(result.revoked_votes, 0u);
    }
    fork_choices_seen += result.fork_choices;
  }
  EXPECT_GT(fork_choices_seen, 0u);
}

TEST(ConsensusSim, BlockSeedSharingAcrossSiblingValidators) {
  // With block-hash-keyed seed sharing on, the first validator to commit a
  // block builds each dirty account's storage fold and later siblings of
  // the SAME block adopt it.  A single commit thread serializes the
  // validators' commitments, so adoption is guaranteed; roots must be
  // unchanged vs a run with sharing disabled.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 1;

  const auto shared = ConsensusSim(cfg).run();
  ASSERT_TRUE(shared.safety_held) << shared.violation;
  EXPECT_GT(shared.seeds_built, 0u);
  EXPECT_GT(shared.seeds_adopted, 0u);

  cfg.share_block_seeds = false;
  const auto solo = ConsensusSim(cfg).run();
  ASSERT_TRUE(solo.safety_held) << solo.violation;
  EXPECT_EQ(solo.seeds_built, 0u);
  EXPECT_EQ(solo.seeds_adopted, 0u);
  ASSERT_EQ(shared.rounds.size(), solo.rounds.size());
  for (std::size_t i = 0; i < shared.rounds.size(); ++i)
    EXPECT_EQ(shared.rounds[i].canonical_root, solo.rounds[i].canonical_root);
}

TEST(ConsensusSim, BoundedSpeculationParksProposals) {
  // Depth 0 must stall every proposal behind the previous settlement;
  // a wide window hides the whole commitment tail.  Same workload, so the
  // settled chain is identical — only the virtual schedule differs.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 2;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  cfg.speculation_depth = 0;
  const auto tight = ConsensusSim(cfg).run();
  cfg.speculation_depth = 8;
  const auto wide = ConsensusSim(cfg).run();
  ASSERT_TRUE(tight.safety_held && wide.safety_held);
  EXPECT_GT(tight.settle_stall_us, 0u);
  EXPECT_EQ(wide.settle_stall_us, 0u);  // window of 9 never fills in 4 rounds
  EXPECT_GT(tight.makespan_us, wide.makespan_us);
  ASSERT_EQ(tight.rounds.size(), wide.rounds.size());
  for (std::size_t i = 0; i < tight.rounds.size(); ++i)
    EXPECT_EQ(tight.rounds[i].canonical_root, wide.rounds[i].canonical_root);
}

// Scenario count for the seeded fork-choice fuzz.  Every scenario runs the
// full DiCE loop with real execution, so the sweep is trimmed under TSan
// (each run is ~10x slower there and the tool's value is in the schedules
// it explores, not the scenario count).
#if defined(__SANITIZE_THREAD__)
constexpr std::uint64_t kFuzzScenarios = 48;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr std::uint64_t kFuzzScenarios = 48;
#else
constexpr std::uint64_t kFuzzScenarios = 256;
#endif
#else
constexpr std::uint64_t kFuzzScenarios = 256;
#endif

TEST(ConsensusSim, ForkChoiceFuzz) {
  // Seeded scenario sweep over the whole configuration surface: node
  // counts, fork width, speculation depth, commit threading, delivery
  // jitter, and Byzantine leader subsets.  The agreement invariant — all
  // honest nodes settle byte-identical chains — is enforced inside the
  // simulation (vote unanimity, settlement unanimity, fork-choice
  // agreement, replica root agreement all flip safety_held), so every
  // scenario must simply report safety intact, plus the structural
  // invariants per scenario kind.  Single-proposer scenarios additionally
  // pin the live loop to the batch reference's settled roots.
  std::uint64_t fork_choices_total = 0;
  std::uint64_t revocations_total = 0;
  for (std::uint64_t scenario = 0; scenario < kFuzzScenarios; ++scenario) {
    std::uint64_t st = 0xF0C5'0000ULL + scenario * 0x9e3779b97f4a7c15ULL;
    auto draw = [&st]() { return splitmix64(st); };

    ConsensusSimConfig cfg;
    cfg.validator_nodes = 2 + draw() % 2;      // 2-3
    cfg.proposers_per_round = 1 + draw() % 2;  // 1-2
    cfg.proposer_nodes = cfg.proposers_per_round + draw() % 2;
    cfg.rounds = 2 + draw() % 3;               // 2-4
    cfg.speculation_depth = draw() % 4;        // 0-3
    cfg.commit_threads = draw() % 3;           // 0-2
    cfg.proposer_threads = 2;
    cfg.validator_workers = 4;
    cfg.workload.seed = 0x5eed ^ (scenario * 0x9e37ULL);
    cfg.workload.txs_per_block = 4 + draw() % 6;
    cfg.workload.num_eoa = 128;  // small genesis keeps the sweep fast
    cfg.workload.num_tokens = 4;
    cfg.workload.num_dex = 2;
    if (draw() % 2) {
      cfg.link.jitter_us = 20'000;
      cfg.link.jitter_seed = draw();
    }
    const bool byzantine = draw() % 3 == 0;
    if (byzantine) {
      cfg.byzantine_height = 1 + draw() % cfg.rounds;
      cfg.byzantine_proposers = 1 + draw() % cfg.proposers_per_round;
      // Inline commits catch a tampered root at validation time, which is
      // a liveness failure (no votable block), not the revocation path
      // under test.
      cfg.commit_threads = 1 + draw() % 2;
    }

    const auto result = ConsensusSim(cfg).run();
    ASSERT_TRUE(result.safety_held)
        << "scenario " << scenario << ": " << result.violation;
    ASSERT_EQ(result.rounds.size(), cfg.rounds) << "scenario " << scenario;
    fork_choices_total += result.fork_choices;
    revocations_total += result.revoked_votes;

    if (!byzantine) {
      EXPECT_EQ(result.settled_height, cfg.rounds) << "scenario " << scenario;
      EXPECT_EQ(result.revoked_votes, 0u) << "scenario " << scenario;
      EXPECT_EQ(result.fork_choices, 0u) << "scenario " << scenario;
      for (const auto& round : result.rounds)
        EXPECT_TRUE(round.settled) << "scenario " << scenario;
    } else if (cfg.byzantine_proposers < cfg.proposers_per_round) {
      // An honest sibling always exists: the chain must settle end to end,
      // via fork-choice when the vote landed on the lie.
      EXPECT_EQ(result.settled_height, cfg.rounds) << "scenario " << scenario;
      if (result.fork_choices > 0)
        EXPECT_GE(result.revoked_votes, cfg.validator_nodes);
      else
        EXPECT_EQ(result.revoked_votes, 0u) << "scenario " << scenario;
    } else {
      // Every leader lied: the chain truncates just below the lie.
      EXPECT_EQ(result.settled_height, cfg.byzantine_height - 1)
          << "scenario " << scenario;
      EXPECT_GE(result.revoked_votes, cfg.validator_nodes)
          << "scenario " << scenario;
      EXPECT_EQ(result.fork_choices, 0u) << "scenario " << scenario;
    }

    if (cfg.proposers_per_round == 1) {
      // Degenerate fork width: the live loop must settle exactly the
      // batch reference's chain, whatever the depth/jitter/threading.
      const auto batch = ConsensusSim(cfg).run_batch_reference();
      ASSERT_TRUE(batch.safety_held)
          << "scenario " << scenario << ": " << batch.violation;
      ASSERT_EQ(result.rounds.size(), batch.rounds.size());
      EXPECT_EQ(result.settled_height, batch.settled_height)
          << "scenario " << scenario;
      for (std::size_t i = 0; i < result.rounds.size(); ++i) {
        EXPECT_EQ(result.rounds[i].settled, batch.rounds[i].settled)
            << "scenario " << scenario << " height " << i + 1;
        EXPECT_EQ(result.rounds[i].canonical_root,
                  batch.rounds[i].canonical_root)
            << "scenario " << scenario << " height " << i + 1;
        EXPECT_EQ(result.rounds[i].txs, batch.rounds[i].txs);
      }
    }

    if (scenario % 32 == 0) {
      // Spot-check bit-stability: the virtual schedule and settled chain
      // must be identical on a re-run of the same scenario.
      const auto again = ConsensusSim(cfg).run();
      ASSERT_TRUE(again.safety_held) << again.violation;
      EXPECT_EQ(again.settled_height, result.settled_height);
      EXPECT_EQ(again.makespan_us, result.makespan_us);
      ASSERT_EQ(again.rounds.size(), result.rounds.size());
      for (std::size_t i = 0; i < result.rounds.size(); ++i) {
        EXPECT_EQ(again.rounds[i].canonical_root,
                  result.rounds[i].canonical_root);
        EXPECT_EQ(again.rounds[i].round_latency_us,
                  result.rounds[i].round_latency_us);
        EXPECT_EQ(again.rounds[i].settle_latency_us,
                  result.rounds[i].settle_latency_us);
      }
    }
  }
  // The sweep must actually exercise the paths it exists to cover.
  EXPECT_GT(fork_choices_total + revocations_total, 0u);
}

}  // namespace
}  // namespace blockpilot::net
