#include <gtest/gtest.h>

#include "net/consensus_sim.hpp"
#include "net/network.hpp"
#include "support/rng.hpp"

namespace blockpilot::net {
namespace {

TEST(SimNetwork, PointToPointDelivery) {
  SimNetwork net(3);
  net.send(0, 1, 1000, {1, 2, 3});
  ASSERT_FALSE(net.idle());
  const auto msg = net.next_delivery();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0u);
  EXPECT_EQ(msg->to, 1u);
  EXPECT_GT(msg->deliver_time_us, msg->send_time_us);
  EXPECT_EQ(msg->payload, (Bytes{1, 2, 3}));
  EXPECT_TRUE(net.idle());
}

TEST(SimNetwork, BroadcastReachesEveryoneButSender) {
  SimNetwork net(4);
  net.broadcast(2, 0, {9});
  std::vector<NodeId> receivers;
  while (auto msg = net.next_delivery()) receivers.push_back(msg->to);
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{0, 1, 3}));
}

TEST(SimNetwork, DeliveryOrderedByTime) {
  LinkModel link;
  link.base_latency_us = 100;
  link.bytes_per_us = 1;
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(500, 0));   // delivers at 600
  net.send(0, 1, 200, Bytes(10, 0));  // delivers at 310
  const auto first = net.next_delivery();
  const auto second = net.next_delivery();
  EXPECT_EQ(first->deliver_time_us, 310u);
  EXPECT_EQ(second->deliver_time_us, 600u);
}

TEST(SimNetwork, LargerPayloadsTakeLonger) {
  LinkModel link;
  EXPECT_GT(link.transit_time(1'000'000), link.transit_time(100));
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(1'000'000, 0));
  net.send(0, 1, 0, Bytes(100, 0));
  EXPECT_EQ(net.bytes_sent(), 1'000'100u);
}

TEST(SimNetwork, JitterIsBoundedAndSeedDeterministic) {
  LinkModel link;
  link.base_latency_us = 1'000;
  link.bytes_per_us = 1'000;
  link.jitter_us = 500;
  link.jitter_seed = 42;

  auto deliveries = [&](std::uint64_t seed) {
    LinkModel l = link;
    l.jitter_seed = seed;
    SimNetwork net(3, l);
    for (int i = 0; i < 16; ++i) net.broadcast(0, 0, Bytes(100, 0));
    std::vector<std::uint64_t> times;
    while (auto msg = net.next_delivery()) {
      const std::uint64_t floor = l.transit_time(100);
      EXPECT_GE(msg->deliver_time_us, floor);
      EXPECT_LE(msg->deliver_time_us, floor + l.jitter_us);
      times.push_back(msg->deliver_time_us);
    }
    return times;
  };

  const auto a = deliveries(42);
  const auto b = deliveries(42);
  const auto c = deliveries(43);
  EXPECT_EQ(a, b);   // same seed -> bit-identical schedule
  EXPECT_NE(a, c);   // different seed -> different shuffle
}

TEST(ConsensusSim, SingleProposerChainAdvances) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.total_uncles, 0u);
  EXPECT_GT(result.total_txs, 0u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.valid_siblings, 1u);
    EXPECT_GT(round.round_latency_us, 0u);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }
}

TEST(ConsensusSim, ForkedRoundsStaySafe) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 3;
  cfg.validator_nodes = 4;
  cfg.proposers_per_round = 2;  // every round forks
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.total_uncles, 3u);  // one uncle per forked round
  EXPECT_GT(result.bytes_gossiped, 0u);
}

TEST(ConsensusSim, DeterministicAcrossRuns) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 2;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  const auto a = ConsensusSim(cfg).run();
  const auto b = ConsensusSim(cfg).run();
  ASSERT_TRUE(a.safety_held && b.safety_held);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].canonical_root, b.rounds[i].canonical_root);
    EXPECT_EQ(a.rounds[i].round_latency_us, b.rounds[i].round_latency_us);
    EXPECT_EQ(a.rounds[i].txs, b.rounds[i].txs);
  }
  EXPECT_EQ(a.bytes_gossiped, b.bytes_gossiped);
}

TEST(ConsensusSim, SpeculativeRunSettlesCleanAndMatchesInline) {
  // Honest run through the commit pipelines: every provisional vote must
  // survive the settle pass, the whole chain settles, and the canonical
  // roots are bit-identical to a fully inline (synchronous-commit) run.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;

  cfg.commit_threads = 2;  // async sealing + speculative validation
  const auto async_run = ConsensusSim(cfg).run();
  ASSERT_TRUE(async_run.safety_held) << async_run.violation;
  EXPECT_EQ(async_run.revoked_votes, 0u);
  EXPECT_EQ(async_run.settled_height, cfg.rounds);
  ASSERT_EQ(async_run.rounds.size(), cfg.rounds);
  for (const auto& round : async_run.rounds) {
    EXPECT_TRUE(round.settled);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }

  cfg.commit_threads = 0;  // degraded mode: inline seal + inline root check
  const auto inline_run = ConsensusSim(cfg).run();
  ASSERT_TRUE(inline_run.safety_held) << inline_run.violation;
  EXPECT_EQ(inline_run.speculative_votes, 0u);  // nothing pends inline
  ASSERT_EQ(inline_run.rounds.size(), cfg.rounds);
  for (std::size_t i = 0; i < cfg.rounds; ++i) {
    EXPECT_EQ(async_run.rounds[i].canonical_root,
              inline_run.rounds[i].canonical_root);
    EXPECT_EQ(async_run.rounds[i].txs, inline_run.rounds[i].txs);
  }
}

TEST(ConsensusSim, LateRootMismatchCascadesVoteRevocation) {
  // A Byzantine proposer set tampers with the sealed roots at height 2.
  // The blocks re-execute cleanly, so every validator casts a provisional
  // vote for one of them; the lie is only discovered when the commitments
  // settle.  With every leader lying there is no fork-choice survivor: the
  // votes at height 2 are revoked, the speculative suffix dies, and the
  // settled chain truncates at 1.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.byzantine_height = 2;
  cfg.workload.txs_per_block = 20;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto result = ConsensusSim(cfg).run();
  // Safety holds: the honest validators *agree* on detection + revocation.
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 4u);

  EXPECT_TRUE(result.rounds[0].settled);
  EXPECT_FALSE(result.rounds[0].canonical_root.is_zero());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(result.rounds[i].settled) << "height " << i + 1;
    EXPECT_TRUE(result.rounds[i].canonical_root.is_zero());
    EXPECT_EQ(result.rounds[i].txs, 0u);
  }
  EXPECT_EQ(result.settled_height, 1u);
  EXPECT_EQ(result.fork_choices, 0u);  // no honest sibling to adopt
  // Height 2's votes are revoked for certain; heights 3 and 4 only lose
  // votes they managed to cast before the settlement caught the lie (the
  // live loop kills the suffix as soon as height 2 fails, unlike the batch
  // driver which always voted every height first).
  EXPECT_GE(result.revoked_votes, 1u * cfg.validator_nodes);
  EXPECT_LE(result.revoked_votes, 3u * cfg.validator_nodes);
  EXPECT_EQ(result.total_txs, result.rounds[0].txs);
}

TEST(ConsensusSim, BatchReferenceCascadeIsExact) {
  // The pre-refactor round-batch driver votes every height before its
  // post-hoc settle pass, so the cascade bookkeeping is exact: heights 2,
  // 3, 4 each lose all validator votes.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.byzantine_height = 2;
  cfg.workload.txs_per_block = 20;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto result = ConsensusSim(cfg).run_batch_reference();
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 4u);
  EXPECT_TRUE(result.rounds[0].settled);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_FALSE(result.rounds[i].settled) << "height " << i + 1;
  EXPECT_EQ(result.settled_height, 1u);
  EXPECT_EQ(result.revoked_votes, 3u * cfg.validator_nodes);
  EXPECT_EQ(result.total_txs, result.rounds[0].txs);
}

TEST(ConsensusSim, DepthZeroSingleProposerMatchesBatchReference) {
  // Lock-step degraded mode: speculation_depth = 0 with a single proposer
  // must settle canonical roots bit-identical to the pre-refactor batch
  // algorithm (same workload draws, same per-height execution, same
  // settlement decisions) — the refactor's semantic anchor.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.speculation_depth = 0;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto live = ConsensusSim(cfg).run();
  const auto batch = ConsensusSim(cfg).run_batch_reference();
  ASSERT_TRUE(live.safety_held) << live.violation;
  ASSERT_TRUE(batch.safety_held) << batch.violation;
  ASSERT_EQ(live.rounds.size(), batch.rounds.size());
  EXPECT_EQ(live.settled_height, batch.settled_height);
  EXPECT_EQ(live.total_txs, batch.total_txs);
  for (std::size_t i = 0; i < live.rounds.size(); ++i) {
    EXPECT_EQ(live.rounds[i].settled, batch.rounds[i].settled);
    EXPECT_EQ(live.rounds[i].canonical_root, batch.rounds[i].canonical_root)
        << "height " << i + 1;
    EXPECT_EQ(live.rounds[i].txs, batch.rounds[i].txs);
  }
}

TEST(ConsensusSim, ForkChoiceAdoptsHonestSurvivor) {
  // One of two leaders lies at height 2.  Whether the (hash-min) vote
  // lands on the lie is decided by the block hashes, so sweep workload
  // seeds: every run must keep safety and settle the full chain — either
  // the vote dodged the lie (the tampered sibling is just an invalid
  // uncle) or settlement revoked it and fork-choice adopted the honest
  // survivor, truncating and re-proposing the speculative suffix.  At
  // least one seed must exercise the fork-choice path.
  std::uint64_t fork_choices_seen = 0;
  for (std::uint64_t seed : {0x5eedULL, 0xACEULL, 0xBEEFULL, 0xF00DULL}) {
    ConsensusSimConfig cfg;
    cfg.proposer_nodes = 2;
    cfg.validator_nodes = 3;
    cfg.proposers_per_round = 2;
    cfg.rounds = 3;
    cfg.byzantine_height = 2;
    cfg.byzantine_proposers = 1;
    cfg.workload.seed = seed;
    cfg.workload.txs_per_block = 15;
    cfg.proposer_threads = 4;
    cfg.validator_workers = 8;
    cfg.commit_threads = 2;

    const auto result = ConsensusSim(cfg).run();
    ASSERT_TRUE(result.safety_held) << result.violation;
    EXPECT_EQ(result.settled_height, cfg.rounds) << "seed " << seed;
    for (const auto& round : result.rounds) {
      EXPECT_TRUE(round.settled);
      EXPECT_FALSE(round.canonical_root.is_zero());
    }
    // The lie never settles: height 2 keeps exactly one valid sibling.
    EXPECT_EQ(result.rounds[1].valid_siblings, 1u);
    if (result.fork_choices > 0) {
      EXPECT_GE(result.revoked_votes, cfg.validator_nodes);
    } else {
      EXPECT_EQ(result.revoked_votes, 0u);
    }
    fork_choices_seen += result.fork_choices;
  }
  EXPECT_GT(fork_choices_seen, 0u);
}

TEST(ConsensusSim, BlockSeedSharingAcrossSiblingValidators) {
  // With block-hash-keyed seed sharing on, the first validator to commit a
  // block builds each dirty account's storage fold and later siblings of
  // the SAME block adopt it.  A single commit thread serializes the
  // validators' commitments, so adoption is guaranteed; roots must be
  // unchanged vs a run with sharing disabled.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 1;

  const auto shared = ConsensusSim(cfg).run();
  ASSERT_TRUE(shared.safety_held) << shared.violation;
  EXPECT_GT(shared.seeds_built, 0u);
  EXPECT_GT(shared.seeds_adopted, 0u);

  cfg.share_block_seeds = false;
  const auto solo = ConsensusSim(cfg).run();
  ASSERT_TRUE(solo.safety_held) << solo.violation;
  EXPECT_EQ(solo.seeds_built, 0u);
  EXPECT_EQ(solo.seeds_adopted, 0u);
  ASSERT_EQ(shared.rounds.size(), solo.rounds.size());
  for (std::size_t i = 0; i < shared.rounds.size(); ++i)
    EXPECT_EQ(shared.rounds[i].canonical_root, solo.rounds[i].canonical_root);
}

TEST(ConsensusSim, BoundedSpeculationParksProposals) {
  // Depth 0 must stall every proposal behind the previous settlement;
  // a wide window hides the whole commitment tail.  Same workload, so the
  // settled chain is identical — only the virtual schedule differs.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 2;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  cfg.speculation_depth = 0;
  const auto tight = ConsensusSim(cfg).run();
  cfg.speculation_depth = 8;
  const auto wide = ConsensusSim(cfg).run();
  ASSERT_TRUE(tight.safety_held && wide.safety_held);
  EXPECT_GT(tight.settle_stall_us, 0u);
  EXPECT_EQ(wide.settle_stall_us, 0u);  // window of 9 never fills in 4 rounds
  EXPECT_GT(tight.makespan_us, wide.makespan_us);
  ASSERT_EQ(tight.rounds.size(), wide.rounds.size());
  for (std::size_t i = 0; i < tight.rounds.size(); ++i)
    EXPECT_EQ(tight.rounds[i].canonical_root, wide.rounds[i].canonical_root);
}

// Scenario count for the seeded fork-choice fuzz.  Every scenario runs the
// full DiCE loop with real execution, so the sweep is trimmed under TSan
// (each run is ~10x slower there and the tool's value is in the schedules
// it explores, not the scenario count).
#if defined(__SANITIZE_THREAD__)
constexpr std::uint64_t kFuzzScenarios = 48;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr std::uint64_t kFuzzScenarios = 48;
#else
constexpr std::uint64_t kFuzzScenarios = 256;
#endif
#else
constexpr std::uint64_t kFuzzScenarios = 256;
#endif

TEST(ConsensusSim, ForkChoiceFuzz) {
  // Seeded scenario sweep over the whole configuration surface: node
  // counts, fork width, speculation depth, commit threading, delivery
  // jitter, and Byzantine leader subsets.  The agreement invariant — all
  // honest nodes settle byte-identical chains — is enforced inside the
  // simulation (vote unanimity, settlement unanimity, fork-choice
  // agreement, replica root agreement all flip safety_held), so every
  // scenario must simply report safety intact, plus the structural
  // invariants per scenario kind.  Single-proposer scenarios additionally
  // pin the live loop to the batch reference's settled roots.
  std::uint64_t fork_choices_total = 0;
  std::uint64_t revocations_total = 0;
  for (std::uint64_t scenario = 0; scenario < kFuzzScenarios; ++scenario) {
    std::uint64_t st = 0xF0C5'0000ULL + scenario * 0x9e3779b97f4a7c15ULL;
    auto draw = [&st]() { return splitmix64(st); };

    ConsensusSimConfig cfg;
    cfg.validator_nodes = 2 + draw() % 2;      // 2-3
    cfg.proposers_per_round = 1 + draw() % 2;  // 1-2
    cfg.proposer_nodes = cfg.proposers_per_round + draw() % 2;
    cfg.rounds = 2 + draw() % 3;               // 2-4
    cfg.speculation_depth = draw() % 4;        // 0-3
    cfg.commit_threads = draw() % 3;           // 0-2
    cfg.proposer_threads = 2;
    cfg.validator_workers = 4;
    cfg.workload.seed = 0x5eed ^ (scenario * 0x9e37ULL);
    cfg.workload.txs_per_block = 4 + draw() % 6;
    cfg.workload.num_eoa = 128;  // small genesis keeps the sweep fast
    cfg.workload.num_tokens = 4;
    cfg.workload.num_dex = 2;
    if (draw() % 2) {
      cfg.link.jitter_us = 20'000;
      cfg.link.jitter_seed = draw();
    }
    const bool byzantine = draw() % 3 == 0;
    if (byzantine) {
      cfg.byzantine_height = 1 + draw() % cfg.rounds;
      cfg.byzantine_proposers = 1 + draw() % cfg.proposers_per_round;
      // Inline commits catch a tampered root at validation time, which is
      // a liveness failure (no votable block), not the revocation path
      // under test.
      cfg.commit_threads = 1 + draw() % 2;
    }

    const auto result = ConsensusSim(cfg).run();
    ASSERT_TRUE(result.safety_held)
        << "scenario " << scenario << ": " << result.violation;
    ASSERT_EQ(result.rounds.size(), cfg.rounds) << "scenario " << scenario;
    fork_choices_total += result.fork_choices;
    revocations_total += result.revoked_votes;

    if (!byzantine) {
      EXPECT_EQ(result.settled_height, cfg.rounds) << "scenario " << scenario;
      EXPECT_EQ(result.revoked_votes, 0u) << "scenario " << scenario;
      EXPECT_EQ(result.fork_choices, 0u) << "scenario " << scenario;
      for (const auto& round : result.rounds)
        EXPECT_TRUE(round.settled) << "scenario " << scenario;
    } else if (cfg.byzantine_proposers < cfg.proposers_per_round) {
      // An honest sibling always exists: the chain must settle end to end,
      // via fork-choice when the vote landed on the lie.
      EXPECT_EQ(result.settled_height, cfg.rounds) << "scenario " << scenario;
      if (result.fork_choices > 0)
        EXPECT_GE(result.revoked_votes, cfg.validator_nodes);
      else
        EXPECT_EQ(result.revoked_votes, 0u) << "scenario " << scenario;
    } else {
      // Every leader lied: the chain truncates just below the lie.
      EXPECT_EQ(result.settled_height, cfg.byzantine_height - 1)
          << "scenario " << scenario;
      EXPECT_GE(result.revoked_votes, cfg.validator_nodes)
          << "scenario " << scenario;
      EXPECT_EQ(result.fork_choices, 0u) << "scenario " << scenario;
    }

    if (cfg.proposers_per_round == 1) {
      // Degenerate fork width: the live loop must settle exactly the
      // batch reference's chain, whatever the depth/jitter/threading.
      const auto batch = ConsensusSim(cfg).run_batch_reference();
      ASSERT_TRUE(batch.safety_held)
          << "scenario " << scenario << ": " << batch.violation;
      ASSERT_EQ(result.rounds.size(), batch.rounds.size());
      EXPECT_EQ(result.settled_height, batch.settled_height)
          << "scenario " << scenario;
      for (std::size_t i = 0; i < result.rounds.size(); ++i) {
        EXPECT_EQ(result.rounds[i].settled, batch.rounds[i].settled)
            << "scenario " << scenario << " height " << i + 1;
        EXPECT_EQ(result.rounds[i].canonical_root,
                  batch.rounds[i].canonical_root)
            << "scenario " << scenario << " height " << i + 1;
        EXPECT_EQ(result.rounds[i].txs, batch.rounds[i].txs);
      }
    }

    if (scenario % 32 == 0) {
      // Spot-check bit-stability: the virtual schedule and settled chain
      // must be identical on a re-run of the same scenario.
      const auto again = ConsensusSim(cfg).run();
      ASSERT_TRUE(again.safety_held) << again.violation;
      EXPECT_EQ(again.settled_height, result.settled_height);
      EXPECT_EQ(again.makespan_us, result.makespan_us);
      ASSERT_EQ(again.rounds.size(), result.rounds.size());
      for (std::size_t i = 0; i < result.rounds.size(); ++i) {
        EXPECT_EQ(again.rounds[i].canonical_root,
                  result.rounds[i].canonical_root);
        EXPECT_EQ(again.rounds[i].round_latency_us,
                  result.rounds[i].round_latency_us);
        EXPECT_EQ(again.rounds[i].settle_latency_us,
                  result.rounds[i].settle_latency_us);
      }
    }
  }
  // The sweep must actually exercise the paths it exists to cover.
  EXPECT_GT(fork_choices_total + revocations_total, 0u);
}

// ---------------------------------------------------------------------------
// Fault plan: SimNetwork-level unit tests
// ---------------------------------------------------------------------------

TEST(SimNetworkFaults, DropRateEatsMessagesDeterministically) {
  LinkModel link;
  link.faults.seed = 7;
  link.faults.drop_per_mille = 1000;  // everything is lost
  SimNetwork net(2, link);
  for (int i = 0; i < 8; ++i) net.send(0, 1, 0, Bytes(10, 0));
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.fault_stats().dropped, 8u);
  EXPECT_EQ(net.bytes_sent(), 80u);  // wire bytes are spent before the loss

  auto survivors = [](std::uint64_t seed) {
    LinkModel l;
    l.faults.seed = seed;
    l.faults.drop_per_mille = 300;
    SimNetwork n(2, l);
    std::vector<int> alive;
    for (int i = 0; i < 64; ++i) {
      n.send(0, 1, static_cast<std::uint64_t>(i), Bytes(1, std::uint8_t(i)));
    }
    while (auto msg = n.next_delivery()) alive.push_back(msg->payload[0]);
    return alive;
  };
  const auto a = survivors(11);
  const auto b = survivors(11);
  const auto c = survivors(12);
  EXPECT_LT(a.size(), 64u);  // some losses at 30%
  EXPECT_GT(a.size(), 0u);   // but not all
  EXPECT_EQ(a, b);           // same seed -> same loss pattern
  EXPECT_NE(a, c);           // different seed -> different pattern
}

TEST(SimNetworkFaults, DuplicationDeliversTrailingSecondCopy) {
  LinkModel link;
  link.faults.duplicate_per_mille = 1000;
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes{42});
  const auto first = net.next_delivery();
  const auto second = net.next_delivery();
  ASSERT_TRUE(first && second);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(first->payload, second->payload);
  EXPECT_GT(second->deliver_time_us, first->deliver_time_us);
  EXPECT_EQ(net.fault_stats().duplicated, 1u);
}

TEST(SimNetworkFaults, ReorderBurstLeapfrogsLaterTraffic) {
  LinkModel link;
  link.base_latency_us = 100;
  link.bytes_per_us = 1000;
  link.faults.reorder_per_mille = 1000;
  link.faults.reorder_burst_us = 10'000;
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes{1});  // bursted: delivers at ~10'100
  LinkModel clean;
  clean.base_latency_us = 100;
  clean.bytes_per_us = 1000;
  SimNetwork ref(2, clean);
  ref.send(0, 1, 0, Bytes{1});
  EXPECT_EQ(net.next_delivery()->deliver_time_us,
            ref.next_delivery()->deliver_time_us + 10'000);
  EXPECT_EQ(net.fault_stats().reordered, 1u);
}

TEST(SimNetworkFaults, PartitionFiltersCrossGroupUntilHeal) {
  LinkModel link;
  PartitionWindow pw;
  pw.start_us = 100;
  pw.heal_us = 200;
  pw.group_mask = 0b100;  // node 2 alone vs nodes 0,1
  link.faults.partitions.push_back(pw);
  SimNetwork net(3, link);

  net.send(0, 2, 150, Bytes{1});  // cross-group inside the window: eaten
  net.send(2, 0, 150, Bytes{2});  // both directions
  net.send(0, 1, 150, Bytes{3});  // same group: passes
  net.send(0, 2, 50, Bytes{4});   // before the split: passes
  net.send(0, 2, 200, Bytes{5});  // at heal (exclusive bound): passes
  std::vector<int> delivered;
  while (auto msg = net.next_delivery()) delivered.push_back(msg->payload[0]);
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(net.fault_stats().partitioned, 2u);
}

// ---------------------------------------------------------------------------
// Quorum arithmetic and the timeout/backoff state machine
// ---------------------------------------------------------------------------

TEST(ConsensusQuorum, QuorumSizeAndVoteDeadline) {
  // Auto mode: 2f+1 of n with f = floor((n-1)/3).
  EXPECT_EQ(ConsensusSim::quorum_size(1, 0), 1u);
  EXPECT_EQ(ConsensusSim::quorum_size(3, 0), 3u);   // f=0
  EXPECT_EQ(ConsensusSim::quorum_size(4, 0), 3u);   // f=1 -> 2f+1
  EXPECT_EQ(ConsensusSim::quorum_size(7, 0), 5u);   // f=2
  EXPECT_EQ(ConsensusSim::quorum_size(10, 0), 7u);  // f=3
  // Explicit values clamp to [1, n].
  EXPECT_EQ(ConsensusSim::quorum_size(4, 4), 4u);  // unanimity mode
  EXPECT_EQ(ConsensusSim::quorum_size(4, 9), 4u);
  EXPECT_EQ(ConsensusSim::quorum_size(4, 2), 2u);

  // Deadlines back off exponentially and cumulatively from the propose
  // time: T, 3T, 7T, 15T, ... — each retry doubles the wait since the
  // previous deadline, and the chain is strictly ordered.
  const std::uint64_t base = 1'000'000, T = 500;
  EXPECT_EQ(ConsensusSim::vote_deadline(base, T, 0), base + T);
  EXPECT_EQ(ConsensusSim::vote_deadline(base, T, 1), base + 3 * T);
  EXPECT_EQ(ConsensusSim::vote_deadline(base, T, 2), base + 7 * T);
  std::uint64_t prev_gap = 0;
  for (std::size_t r = 0; r + 1 < 8; ++r) {
    const std::uint64_t gap = ConsensusSim::vote_deadline(base, T, r + 1) -
                              ConsensusSim::vote_deadline(base, T, r);
    EXPECT_GT(gap, prev_gap);          // strictly growing spacing
    EXPECT_EQ(gap, (2ull << r) * T);   // exactly doubling
    prev_gap = gap;
  }
}

namespace {
// Small-genesis config the adversarial tests share: four validators so the
// BFT quorum (3 of 4) is strictly below unanimity.
ConsensusSimConfig adversarial_base() {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 4;
  cfg.proposers_per_round = 1;
  cfg.rounds = 3;
  cfg.proposer_threads = 2;
  cfg.validator_workers = 4;
  cfg.commit_threads = 1;
  cfg.workload.txs_per_block = 6;
  cfg.workload.num_eoa = 128;
  cfg.workload.num_tokens = 4;
  cfg.workload.num_dex = 2;
  cfg.vote_timeout_us = 200'000;
  return cfg;
}
}  // namespace

TEST(ConsensusQuorum, VoteTimeoutRetransmitsUnderLoss) {
  // 20% loss on every link: announcements and votes both go missing, and
  // only the deadline-driven retransmission keeps the chain live.
  ConsensusSimConfig cfg = adversarial_base();
  cfg.link.faults.seed = 0xBEEF;
  cfg.link.faults.drop_per_mille = 200;
  const auto result = ConsensusSim(cfg).run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.settled_height, cfg.rounds);
  EXPECT_EQ(result.quorum_failures, 0u);
  EXPECT_GT(result.messages_dropped, 0u);
  EXPECT_GT(result.vote_timeouts, 0u);
  EXPECT_GT(result.vote_retransmits, 0u);
  for (const auto& round : result.rounds) EXPECT_TRUE(round.settled);
}

TEST(ConsensusQuorum, RetryExhaustionParksAndReproposes) {
  // One validator is permanently cut off from everyone.  The other three
  // reach quorum among themselves but the chain-wide vote phase can never
  // complete, so every validator eventually burns its retry budget, the
  // height re-proposes, and after max_propose_attempts the run declares
  // liveness lost — with safety intact and nothing settled.
  ConsensusSimConfig cfg = adversarial_base();
  cfg.rounds = 2;
  cfg.vote_retry_budget = 2;
  cfg.max_propose_attempts = 3;
  PartitionWindow pw;
  pw.start_us = 0;
  pw.heal_us = UINT64_MAX;  // never heals
  pw.group_mask = 1ull << (cfg.proposer_nodes + cfg.validator_nodes - 1);
  cfg.link.faults.partitions.push_back(pw);

  const auto result = ConsensusSim(cfg).run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.settled_height, 0u);
  EXPECT_EQ(result.quorum_failures, 1u);
  EXPECT_EQ(result.quorum_reproposals, cfg.max_propose_attempts - 1);
  EXPECT_EQ(result.rounds[0].attempts, cfg.max_propose_attempts);
  EXPECT_FALSE(result.rounds[0].settled);
  EXPECT_GT(result.messages_partitioned, 0u);
  EXPECT_GT(result.vote_timeouts, 0u);
}

TEST(ConsensusQuorum, PartitionHealRestoresQuorumLiveness) {
  // Same topology, but the partition heals inside the backoff window: the
  // isolated validator's re-pull and its peers' vote rebroadcasts land
  // after the heal, quorum completes, and every height settles.
  ConsensusSimConfig cfg = adversarial_base();
  PartitionWindow pw;
  pw.start_us = 0;
  pw.heal_us = 1'000'000;  // within the 200ms * (2^5 - 1) backoff coverage
  pw.group_mask = 1ull << (cfg.proposer_nodes + cfg.validator_nodes - 1);
  cfg.link.faults.partitions.push_back(pw);

  const auto result = ConsensusSim(cfg).run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.settled_height, cfg.rounds);
  EXPECT_EQ(result.quorum_failures, 0u);
  EXPECT_GT(result.messages_partitioned, 0u);
  EXPECT_GT(result.vote_timeouts, 0u);
  EXPECT_GT(result.vote_retransmits, 0u);
  for (const auto& round : result.rounds) {
    EXPECT_TRUE(round.settled);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }
}

TEST(ConsensusQuorum, ZeroFaultUnanimityMatchesBatchReference) {
  // Differential gate for the quorum refactor itself: zero faults plus
  // quorum_votes == n at depth 0 must settle the exact canonical chain of
  // the frozen pre-quorum batch algorithm, bit for bit.
  ConsensusSimConfig cfg = adversarial_base();
  cfg.speculation_depth = 0;
  cfg.quorum_votes = cfg.validator_nodes;  // explicit unanimity
  cfg.vote_timeout_us = 60'000'000;  // no deadline can fire in a clean run
  const auto live = ConsensusSim(cfg).run();
  const auto batch = ConsensusSim(cfg).run_batch_reference();
  ASSERT_TRUE(live.safety_held) << live.violation;
  ASSERT_TRUE(batch.safety_held) << batch.violation;
  ASSERT_EQ(live.rounds.size(), batch.rounds.size());
  EXPECT_EQ(live.settled_height, batch.settled_height);
  EXPECT_EQ(live.total_txs, batch.total_txs);
  for (std::size_t i = 0; i < live.rounds.size(); ++i) {
    EXPECT_TRUE(live.rounds[i].settled);
    EXPECT_EQ(live.rounds[i].canonical_root, batch.rounds[i].canonical_root)
        << "height " << i + 1;
    EXPECT_EQ(live.rounds[i].txs, batch.rounds[i].txs);
    EXPECT_EQ(live.rounds[i].attempts, 1u);
  }
  EXPECT_EQ(live.vote_timeouts + live.quorum_reproposals, 0u);
}

TEST(ConsensusQuorum, InlineDetectionReproposesInsteadOfAsserting) {
  // Inline commitments expose a tampered root at validation time, so when
  // EVERY leader of a height lies no validator can vote at all.  The old
  // loop asserted here; the quorum loop times out, re-proposes with fresh
  // honest leaders, and the chain settles end to end.
  ConsensusSimConfig cfg = adversarial_base();
  cfg.commit_threads = 0;  // inline: root checks at push time
  cfg.byzantine_height = 2;
  cfg.byzantine_proposers = SIZE_MAX;  // every leader tampers
  cfg.vote_retry_budget = 1;           // fail fast to the re-proposal
  const auto result = ConsensusSim(cfg).run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.settled_height, cfg.rounds);
  EXPECT_GE(result.quorum_reproposals, 1u);
  EXPECT_EQ(result.rounds[1].attempts, 2u);  // height 2 needed a retry
  for (const auto& round : result.rounds) EXPECT_TRUE(round.settled);
}

// ---------------------------------------------------------------------------
// Fault matrix: {loss, duplication, partition} x depth x Byzantine leaders
// ---------------------------------------------------------------------------

// Every cell runs the full DiCE loop with real execution; the sweep is
// trimmed under sanitizers the same way the fork-choice fuzz is.
#if defined(__SANITIZE_THREAD__)
constexpr bool kFaultMatrixTrimmed = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kFaultMatrixTrimmed = true;
#else
constexpr bool kFaultMatrixTrimmed = false;
#endif
#else
constexpr bool kFaultMatrixTrimmed = false;
#endif

TEST(ConsensusQuorum, FaultMatrix) {
  // The acceptance surface of the quorum/fault tentpole: at up to 20% loss
  // with duplication, a healing partition, and up to f Byzantine proposers,
  // all honest nodes settle identical roots at every height (enforced
  // in-sim via safety_held), the chain reaches full height, and each
  // (seed, scenario) re-runs bit-stably.
  struct FaultArm {
    const char* name;
    std::uint32_t drop_per_mille;
    std::uint32_t duplicate_per_mille;
    bool partition;
  };
  const FaultArm arms[] = {
      {"clean", 0, 0, false},
      {"drop1pct", 10, 0, false},
      {"drop5pct", 50, 0, false},
      {"drop20pct", 200, 0, false},
      {"dup10pct", 0, 100, false},
      {"drop5+dup5", 50, 50, false},
      {"partition-heal", 0, 0, true},
  };
  const std::size_t depths[] = {0, 2, 8};
  const std::size_t byz_counts[] = {0, 1};  // f = 1 for n = 4 validators

  std::size_t cell = 0;
  for (const FaultArm& arm : arms) {
    for (const std::size_t depth : depths) {
      for (const std::size_t byz : byz_counts) {
        ++cell;
        if (kFaultMatrixTrimmed && cell % 3 != 1) continue;

        ConsensusSimConfig cfg = adversarial_base();
        cfg.proposers_per_round = 2;  // forked rounds: quorum meets uncles
        cfg.speculation_depth = depth;
        cfg.workload.txs_per_block = 4;
        cfg.link.faults.seed = 0xFA17 + cell;
        cfg.link.faults.drop_per_mille = arm.drop_per_mille;
        cfg.link.faults.duplicate_per_mille = arm.duplicate_per_mille;
        if (arm.partition) {
          PartitionWindow pw;
          pw.start_us = 0;
          pw.heal_us = 800'000;
          pw.group_mask =
              1ull << (cfg.proposer_nodes + cfg.validator_nodes - 1);
          cfg.link.faults.partitions.push_back(pw);
        }
        if (byz > 0) {
          cfg.byzantine_height = 2;
          cfg.byzantine_proposers = byz;  // honest sibling survives
        }
        SCOPED_TRACE(std::string(arm.name) + " depth=" +
                     std::to_string(depth) + " byz=" + std::to_string(byz));

        const auto result = ConsensusSim(cfg).run();
        ASSERT_TRUE(result.safety_held) << result.violation;
        // Recoverable faults: quorum liveness must hold to full height.
        EXPECT_EQ(result.settled_height, cfg.rounds);
        EXPECT_EQ(result.quorum_failures, 0u);
        for (const auto& round : result.rounds) {
          EXPECT_TRUE(round.settled);
          EXPECT_FALSE(round.canonical_root.is_zero());
        }
        if (arm.drop_per_mille > 0) EXPECT_GT(result.messages_dropped, 0u);
        if (arm.duplicate_per_mille > 0)
          EXPECT_GT(result.messages_duplicated, 0u);
        if (arm.partition) EXPECT_GT(result.messages_partitioned, 0u);
        // Byzantine arms may or may not trigger revocation (the vote lands
        // on the hash-min sibling, which can be the honest one) — safety
        // and full-height liveness above are the real assertions.

        if (cell % 5 == 1) {
          // Bit-stability: the same (seed, scenario) replays identically —
          // roots, schedule, and every fault/retry counter.
          const auto again = ConsensusSim(cfg).run();
          ASSERT_TRUE(again.safety_held) << again.violation;
          EXPECT_EQ(again.makespan_us, result.makespan_us);
          EXPECT_EQ(again.vote_timeouts, result.vote_timeouts);
          EXPECT_EQ(again.vote_retransmits, result.vote_retransmits);
          EXPECT_EQ(again.messages_dropped, result.messages_dropped);
          ASSERT_EQ(again.rounds.size(), result.rounds.size());
          for (std::size_t i = 0; i < result.rounds.size(); ++i) {
            EXPECT_EQ(again.rounds[i].canonical_root,
                      result.rounds[i].canonical_root);
            EXPECT_EQ(again.rounds[i].settle_latency_us,
                      result.rounds[i].settle_latency_us);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace blockpilot::net
