#include <gtest/gtest.h>

#include "net/consensus_sim.hpp"
#include "net/network.hpp"

namespace blockpilot::net {
namespace {

TEST(SimNetwork, PointToPointDelivery) {
  SimNetwork net(3);
  net.send(0, 1, 1000, {1, 2, 3});
  ASSERT_FALSE(net.idle());
  const auto msg = net.next_delivery();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0u);
  EXPECT_EQ(msg->to, 1u);
  EXPECT_GT(msg->deliver_time_us, msg->send_time_us);
  EXPECT_EQ(msg->payload, (Bytes{1, 2, 3}));
  EXPECT_TRUE(net.idle());
}

TEST(SimNetwork, BroadcastReachesEveryoneButSender) {
  SimNetwork net(4);
  net.broadcast(2, 0, {9});
  std::vector<NodeId> receivers;
  while (auto msg = net.next_delivery()) receivers.push_back(msg->to);
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{0, 1, 3}));
}

TEST(SimNetwork, DeliveryOrderedByTime) {
  LinkModel link;
  link.base_latency_us = 100;
  link.bytes_per_us = 1;
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(500, 0));   // delivers at 600
  net.send(0, 1, 200, Bytes(10, 0));  // delivers at 310
  const auto first = net.next_delivery();
  const auto second = net.next_delivery();
  EXPECT_EQ(first->deliver_time_us, 310u);
  EXPECT_EQ(second->deliver_time_us, 600u);
}

TEST(SimNetwork, LargerPayloadsTakeLonger) {
  LinkModel link;
  EXPECT_GT(link.transit_time(1'000'000), link.transit_time(100));
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(1'000'000, 0));
  net.send(0, 1, 0, Bytes(100, 0));
  EXPECT_EQ(net.bytes_sent(), 1'000'100u);
}

TEST(ConsensusSim, SingleProposerChainAdvances) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.total_uncles, 0u);
  EXPECT_GT(result.total_txs, 0u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.valid_siblings, 1u);
    EXPECT_GT(round.round_latency_us, 0u);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }
}

TEST(ConsensusSim, ForkedRoundsStaySafe) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 3;
  cfg.validator_nodes = 4;
  cfg.proposers_per_round = 2;  // every round forks
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.total_uncles, 3u);  // one uncle per forked round
  EXPECT_GT(result.bytes_gossiped, 0u);
}

TEST(ConsensusSim, DeterministicAcrossRuns) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 2;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  const auto a = ConsensusSim(cfg).run();
  const auto b = ConsensusSim(cfg).run();
  ASSERT_TRUE(a.safety_held && b.safety_held);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].canonical_root, b.rounds[i].canonical_root);
    EXPECT_EQ(a.rounds[i].round_latency_us, b.rounds[i].round_latency_us);
    EXPECT_EQ(a.rounds[i].txs, b.rounds[i].txs);
  }
  EXPECT_EQ(a.bytes_gossiped, b.bytes_gossiped);
}

}  // namespace
}  // namespace blockpilot::net
