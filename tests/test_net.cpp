#include <gtest/gtest.h>

#include "net/consensus_sim.hpp"
#include "net/network.hpp"

namespace blockpilot::net {
namespace {

TEST(SimNetwork, PointToPointDelivery) {
  SimNetwork net(3);
  net.send(0, 1, 1000, {1, 2, 3});
  ASSERT_FALSE(net.idle());
  const auto msg = net.next_delivery();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0u);
  EXPECT_EQ(msg->to, 1u);
  EXPECT_GT(msg->deliver_time_us, msg->send_time_us);
  EXPECT_EQ(msg->payload, (Bytes{1, 2, 3}));
  EXPECT_TRUE(net.idle());
}

TEST(SimNetwork, BroadcastReachesEveryoneButSender) {
  SimNetwork net(4);
  net.broadcast(2, 0, {9});
  std::vector<NodeId> receivers;
  while (auto msg = net.next_delivery()) receivers.push_back(msg->to);
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{0, 1, 3}));
}

TEST(SimNetwork, DeliveryOrderedByTime) {
  LinkModel link;
  link.base_latency_us = 100;
  link.bytes_per_us = 1;
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(500, 0));   // delivers at 600
  net.send(0, 1, 200, Bytes(10, 0));  // delivers at 310
  const auto first = net.next_delivery();
  const auto second = net.next_delivery();
  EXPECT_EQ(first->deliver_time_us, 310u);
  EXPECT_EQ(second->deliver_time_us, 600u);
}

TEST(SimNetwork, LargerPayloadsTakeLonger) {
  LinkModel link;
  EXPECT_GT(link.transit_time(1'000'000), link.transit_time(100));
  SimNetwork net(2, link);
  net.send(0, 1, 0, Bytes(1'000'000, 0));
  net.send(0, 1, 0, Bytes(100, 0));
  EXPECT_EQ(net.bytes_sent(), 1'000'100u);
}

TEST(ConsensusSim, SingleProposerChainAdvances) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.total_uncles, 0u);
  EXPECT_GT(result.total_txs, 0u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.valid_siblings, 1u);
    EXPECT_GT(round.round_latency_us, 0u);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }
}

TEST(ConsensusSim, ForkedRoundsStaySafe) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 3;
  cfg.validator_nodes = 4;
  cfg.proposers_per_round = 2;  // every round forks
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 30;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  ConsensusSim sim(cfg);
  const auto result = sim.run();
  ASSERT_TRUE(result.safety_held) << result.violation;
  EXPECT_EQ(result.total_uncles, 3u);  // one uncle per forked round
  EXPECT_GT(result.bytes_gossiped, 0u);
}

TEST(ConsensusSim, DeterministicAcrossRuns) {
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 2;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  const auto a = ConsensusSim(cfg).run();
  const auto b = ConsensusSim(cfg).run();
  ASSERT_TRUE(a.safety_held && b.safety_held);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].canonical_root, b.rounds[i].canonical_root);
    EXPECT_EQ(a.rounds[i].round_latency_us, b.rounds[i].round_latency_us);
    EXPECT_EQ(a.rounds[i].txs, b.rounds[i].txs);
  }
  EXPECT_EQ(a.bytes_gossiped, b.bytes_gossiped);
}

TEST(ConsensusSim, SpeculativeRunSettlesCleanAndMatchesInline) {
  // Honest run through the commit pipelines: every provisional vote must
  // survive the settle pass, the whole chain settles, and the canonical
  // roots are bit-identical to a fully inline (synchronous-commit) run.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 2;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 2;
  cfg.rounds = 3;
  cfg.workload.txs_per_block = 25;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;

  cfg.commit_threads = 2;  // async sealing + speculative validation
  const auto async_run = ConsensusSim(cfg).run();
  ASSERT_TRUE(async_run.safety_held) << async_run.violation;
  EXPECT_EQ(async_run.revoked_votes, 0u);
  EXPECT_EQ(async_run.settled_height, cfg.rounds);
  ASSERT_EQ(async_run.rounds.size(), cfg.rounds);
  for (const auto& round : async_run.rounds) {
    EXPECT_TRUE(round.settled);
    EXPECT_FALSE(round.canonical_root.is_zero());
  }

  cfg.commit_threads = 0;  // degraded mode: inline seal + inline root check
  const auto inline_run = ConsensusSim(cfg).run();
  ASSERT_TRUE(inline_run.safety_held) << inline_run.violation;
  EXPECT_EQ(inline_run.speculative_votes, 0u);  // nothing pends inline
  ASSERT_EQ(inline_run.rounds.size(), cfg.rounds);
  for (std::size_t i = 0; i < cfg.rounds; ++i) {
    EXPECT_EQ(async_run.rounds[i].canonical_root,
              inline_run.rounds[i].canonical_root);
    EXPECT_EQ(async_run.rounds[i].txs, inline_run.rounds[i].txs);
  }
}

TEST(ConsensusSim, LateRootMismatchCascadesVoteRevocation) {
  // A Byzantine proposer set tampers with the sealed roots at height 2.
  // The blocks re-execute cleanly, so every validator casts a provisional
  // vote for one of them; the lie is only discovered when the commitments
  // settle.  The settle pass must revoke the votes at height 2 AND cascade
  // the revocation to every descendant round (their executions consumed a
  // state that was never committed), truncating the settled chain at 1.
  ConsensusSimConfig cfg;
  cfg.proposer_nodes = 1;
  cfg.validator_nodes = 3;
  cfg.proposers_per_round = 1;
  cfg.rounds = 4;
  cfg.byzantine_height = 2;
  cfg.workload.txs_per_block = 20;
  cfg.proposer_threads = 4;
  cfg.validator_workers = 8;
  cfg.commit_threads = 2;

  const auto result = ConsensusSim(cfg).run();
  // Safety holds: the honest validators *agree* on detection + revocation.
  ASSERT_TRUE(result.safety_held) << result.violation;
  ASSERT_EQ(result.rounds.size(), 4u);

  EXPECT_TRUE(result.rounds[0].settled);
  EXPECT_FALSE(result.rounds[0].canonical_root.is_zero());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(result.rounds[i].settled) << "height " << i + 1;
    EXPECT_TRUE(result.rounds[i].canonical_root.is_zero());
    EXPECT_EQ(result.rounds[i].txs, 0u);
  }
  EXPECT_EQ(result.settled_height, 1u);
  // Heights 2, 3, 4 each lose all validator votes.
  EXPECT_EQ(result.revoked_votes, 3u * cfg.validator_nodes);
  EXPECT_EQ(result.total_txs, result.rounds[0].txs);
}

}  // namespace
}  // namespace blockpilot::net
