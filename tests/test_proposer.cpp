// OCC-WSI proposer tests (paper Algorithm 1).
//
// The central property: a proposed block must be SERIALIZABLE — replaying
// its transactions serially, in block order, from the same pre-state must
// reproduce the proposer's post-state root exactly.
#include <gtest/gtest.h>

#include "core/blockpilot.hpp"

namespace blockpilot::core {
namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

struct ProposerFixture : ::testing::Test {
  workload::WorkloadGenerator gen{workload::preset_mainnet()};
  state::WorldState genesis = gen.genesis();

  ProposedBlock propose(std::vector<chain::Transaction> txs,
                        std::size_t threads) {
    txpool::TxPool pool;
    pool.add_all(std::move(txs));
    ProposerConfig cfg;
    cfg.threads = threads;
    OccWsiProposer proposer(cfg);
    ThreadPool workers(std::max<std::size_t>(threads, 1));
    return proposer.propose(genesis, ctx_for(1), pool, workers);
  }
};

TEST_F(ProposerFixture, SingleThreadIncludesEverything) {
  const auto block = propose(gen.next_batch(40), 1);
  EXPECT_EQ(block.stats.committed, 40u);
  EXPECT_EQ(block.block.transactions.size(), 40u);
  EXPECT_EQ(block.profile.size(), 40u);
  EXPECT_GT(block.stats.serial_gas, 0u);
}

TEST_F(ProposerFixture, ParallelBlockIsSerializable) {
  const auto block = propose(gen.next_batch(100), 8);
  ASSERT_GT(block.block.transactions.size(), 0u);

  // Serial replay in block order must reach the identical state root.
  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult replay = execute_serial(
      genesis, ctx_for(1), std::span(block.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.exec.state_root, block.block.header.state_root);
  EXPECT_EQ(replay.exec.gas_used, block.block.header.gas_used);
}

TEST_F(ProposerFixture, ProfileMatchesSerialReplay) {
  const auto block = propose(gen.next_batch(60), 4);
  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult replay = execute_serial(
      genesis, ctx_for(1), std::span(block.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  ASSERT_EQ(replay.exec.profile.size(), block.profile.size());
  for (std::size_t i = 0; i < block.profile.size(); ++i) {
    EXPECT_EQ(replay.exec.profile.txs[i].gas_used,
              block.profile.txs[i].gas_used)
        << "tx " << i;
    EXPECT_EQ(replay.exec.profile.txs[i].reads, block.profile.txs[i].reads)
        << "tx " << i;
    EXPECT_EQ(replay.exec.profile.txs[i].writes, block.profile.txs[i].writes)
        << "tx " << i;
  }
}

TEST_F(ProposerFixture, SameSenderNoncesStayOrdered) {
  // Five transactions from one sender must commit in nonce order even when
  // executed by competing threads.
  std::vector<chain::Transaction> txs;
  const Address sender = gen.eoa(0);
  for (std::uint64_t n = 0; n < 5; ++n) {
    chain::Transaction tx;
    tx.from = sender;
    tx.to = gen.eoa(n + 1);
    tx.nonce = n;
    tx.value = U256{100};
    tx.gas_limit = 25'000;
    tx.gas_price = U256{50 - n};  // descending price tempts reordering
    txs.push_back(tx);
  }
  const auto block = propose(std::move(txs), 4);
  ASSERT_EQ(block.block.transactions.size(), 5u);
  for (std::uint64_t n = 0; n < 5; ++n)
    EXPECT_EQ(block.block.transactions[n].nonce, n);
}

TEST_F(ProposerFixture, GasLimitBoundsBlock) {
  txpool::TxPool pool;
  pool.add_all(gen.next_batch(100));
  ProposerConfig cfg;
  cfg.threads = 4;
  cfg.block_gas_limit = 500'000;  // room for only a handful of txs
  OccWsiProposer proposer(cfg);
  ThreadPool workers(4);
  const auto block = proposer.propose(genesis, ctx_for(1), pool, workers);
  EXPECT_LE(block.block.header.gas_used, cfg.block_gas_limit);
  EXPECT_GT(block.block.transactions.size(), 0u);
  EXPECT_LT(block.block.transactions.size(), 100u);
  EXPECT_FALSE(pool.empty());  // leftovers stay pooled for the next block
}

TEST_F(ProposerFixture, MaxTxCapRespected) {
  txpool::TxPool pool;
  pool.add_all(gen.next_batch(50));
  ProposerConfig cfg;
  cfg.threads = 2;
  cfg.max_txs = 10;
  OccWsiProposer proposer(cfg);
  ThreadPool workers(2);
  const auto block = proposer.propose(genesis, ctx_for(1), pool, workers);
  EXPECT_EQ(block.block.transactions.size(), 10u);
}

TEST_F(ProposerFixture, HighContentionStillSerializable) {
  // All transactions hammer one DEX: worst-case WSI abort pressure.
  workload::WorkloadGenerator hot(workload::preset_high_conflict());
  state::WorldState hot_genesis = hot.genesis();
  txpool::TxPool pool;
  pool.add_all(hot.next_batch(60));
  ProposerConfig cfg;
  cfg.threads = 8;
  OccWsiProposer proposer(cfg);
  ThreadPool workers(8);
  const auto block = proposer.propose(hot_genesis, ctx_for(1), pool, workers);
  ASSERT_GT(block.block.transactions.size(), 0u);

  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult replay = execute_serial(
      hot_genesis, ctx_for(1), std::span(block.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.exec.state_root, block.block.header.state_root);
}

TEST_F(ProposerFixture, EmptyPoolYieldsEmptyBlock) {
  const auto block = propose({}, 4);
  EXPECT_TRUE(block.block.transactions.empty());
  EXPECT_EQ(block.block.header.gas_used, 0u);
  EXPECT_EQ(block.block.header.state_root, genesis.state_root());
}

TEST_F(ProposerFixture, StatsAreCoherent) {
  const auto block = propose(gen.next_batch(80), 8);
  EXPECT_EQ(block.stats.committed, block.block.transactions.size());
  EXPECT_EQ(block.stats.serial_gas, block.block.header.gas_used);
  EXPECT_GT(block.stats.vtime_makespan, 0u);
  EXPECT_GE(block.stats.virtual_speedup(), 1.0);
}

TEST_F(ProposerFixture, LongAirdropNonceChainsCommitInOrder) {
  // Airdrop bursts create 20-deep same-sender nonce chains; with 16
  // virtual workers racing, the deferral path must still commit every
  // transaction, in per-sender nonce order.
  workload::WorkloadConfig wc;
  wc.seed = 0xA1D;
  wc.token_fraction = 0.0;
  wc.dex_fraction = 0.0;
  wc.nft_fraction = 0.0;
  wc.airdrop_fraction = 1.0;
  wc.airdrop_burst = 20;
  workload::WorkloadGenerator airdrop_gen(wc);
  state::WorldState airdrop_genesis = airdrop_gen.genesis();

  txpool::TxPool pool;
  pool.add_all(airdrop_gen.next_batch(100));
  ProposerConfig cfg;
  cfg.threads = 16;
  OccWsiProposer proposer(cfg);
  ThreadPool workers(1);
  const auto block =
      proposer.propose(airdrop_genesis, ctx_for(1), pool, workers);
  EXPECT_EQ(block.block.transactions.size(), 100u);
  EXPECT_EQ(block.stats.dropped, 0u);

  std::unordered_map<Address, std::uint64_t> next;
  for (const auto& tx : block.block.transactions) {
    const auto it = next.find(tx.from);
    const std::uint64_t want = it == next.end() ? 0 : it->second;
    EXPECT_EQ(tx.nonce, want) << "sender " << tx.from.to_hex();
    next[tx.from] = want + 1;
  }

  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult replay = execute_serial(
      airdrop_genesis, ctx_for(1), std::span(block.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.exec.state_root, block.block.header.state_root);
}

TEST_F(ProposerFixture, HostThreadsModeAlsoSerializable) {
  // The real-thread realization (genuine concurrency, host-dependent
  // scheduling) must produce serializable blocks too — thread-safety of
  // the versioned store, pool, and commit section under actual races.
  txpool::TxPool pool;
  pool.add_all(gen.next_batch(80));
  ProposerConfig cfg;
  cfg.threads = 4;
  cfg.mode = ScheduleMode::kHostThreads;
  OccWsiProposer proposer(cfg);
  ThreadPool workers(4);
  const auto block = proposer.propose(genesis, ctx_for(1), pool, workers);
  ASSERT_EQ(block.block.transactions.size(), 80u);

  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult replay = execute_serial(
      genesis, ctx_for(1), std::span(block.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.exec.state_root, block.block.header.state_root);
}

TEST_F(ProposerFixture, VirtualModeIsDeterministic) {
  // Identical inputs -> bit-identical blocks, independent of host load:
  // the property that makes the DES mode the figure-generating engine.
  auto run_once = [&] {
    workload::WorkloadGenerator g(workload::preset_mainnet());
    state::WorldState genesis_state = g.genesis();
    txpool::TxPool pool;
    pool.add_all(g.next_batch(60));
    ProposerConfig cfg;
    cfg.threads = 8;
    OccWsiProposer proposer(cfg);
    ThreadPool workers(1);
    return proposer.propose(genesis_state, ctx_for(1), pool, workers);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.block.header.hash(), b.block.header.hash());
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
  EXPECT_EQ(a.stats.vtime_makespan, b.stats.vtime_makespan);
  ASSERT_EQ(a.block.transactions.size(), b.block.transactions.size());
  for (std::size_t i = 0; i < a.block.transactions.size(); ++i)
    EXPECT_EQ(a.block.transactions[i].hash(), b.block.transactions[i].hash());
}

// Property sweep: serializability must hold across thread counts and
// conflict regimes.
struct SweepParam {
  std::size_t threads;
  int preset;  // 0 = mainnet, 1 = low conflict, 2 = high conflict
};

class ProposerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProposerSweep, SerializableUnderAllRegimes) {
  const auto [threads, preset] = GetParam();
  workload::WorkloadConfig cfg = preset == 0   ? workload::preset_mainnet()
                                 : preset == 1 ? workload::preset_low_conflict()
                                               : workload::preset_high_conflict();
  cfg.seed = 77 + static_cast<std::uint64_t>(preset) * 1000 + threads;
  workload::WorkloadGenerator gen(cfg);
  state::WorldState genesis = gen.genesis();

  txpool::TxPool pool;
  pool.add_all(gen.next_batch(64));
  ProposerConfig pc;
  pc.threads = threads;
  OccWsiProposer proposer(pc);
  ThreadPool workers(threads);
  const auto block = proposer.propose(genesis, ctx_for(1), pool, workers);

  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult replay = execute_serial(
      genesis, ctx_for(1), std::span(block.block.transactions), opts);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.exec.state_root, block.block.header.state_root);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByRegime, ProposerSweep,
    ::testing::Values(SweepParam{1, 0}, SweepParam{2, 0}, SweepParam{4, 0},
                      SweepParam{8, 0}, SweepParam{2, 1}, SweepParam{8, 1},
                      SweepParam{2, 2}, SweepParam{4, 2}, SweepParam{8, 2}));

}  // namespace
}  // namespace blockpilot::core
