// CodeAnalysis + CodeAnalysisCache unit, regression and concurrency tests.
//
// The regression half pins the fix for the old per-frame rederivation bug:
// before the cache, every call frame re-ran the jumpdest scan, so a
// transaction making N inner CALLs to one contract analyzed the same code
// N+1 times.  analysis_build_count() must now rise exactly once per
// distinct code hash per cache, no matter how many frames execute it.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "evm/assembler.hpp"
#include "evm/code_analysis.hpp"
#include "evm/gas.hpp"
#include "evm/interpreter.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/rng.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::StateKey;
using state::WorldState;
using state::WorldStateView;

Bytes bytes_of(std::initializer_list<int> xs) {
  Bytes out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

std::shared_ptr<const CodeAnalysis> analyze(const Bytes& code) {
  return analyze_code(std::span(code), Hash256::of(std::span(code)));
}

// ---------------------------------------------------------------------------
// Analysis structure
// ---------------------------------------------------------------------------

TEST(CodeAnalysis, JumpdestBitmapSkipsPushImmediates) {
  // PUSH1 0x5b; JUMPDEST; STOP — the immediate 0x5b at pc 1 is data.
  const Bytes code = bytes_of({0x60, 0x5b, 0x5b, 0x00});
  const auto an = analyze(code);
  EXPECT_FALSE(an->is_jumpdest(0));
  EXPECT_FALSE(an->is_jumpdest(1));  // PUSH immediate, not an instruction
  EXPECT_TRUE(an->is_jumpdest(2));
  EXPECT_FALSE(an->is_jumpdest(3));
  EXPECT_FALSE(an->is_jumpdest(4));   // out of range
  EXPECT_FALSE(an->is_jumpdest(~0ull));
}

TEST(CodeAnalysis, PushImmediatesPredecoded) {
  Assembler a;
  a.push(U256{0xdeadbeefull}).push(U256{7}).op(Op::ADD).op(Op::STOP);
  const Bytes code = a.assemble();
  const auto an = analyze(code);
  ASSERT_EQ(an->immediates.size(), 2u);
  EXPECT_EQ(an->immediates[an->imm_index[0]], U256{0xdeadbeefull});
}

TEST(CodeAnalysis, TruncatedPushDecodesLikeInterpreter) {
  // PUSH3 with only one immediate byte present: the interpreter assembles
  // the value from the declared width with missing bytes as zero — 0xAB
  // lands in the high byte of a 3-byte field: 0xAB0000.
  const Bytes code = bytes_of({0x62, 0xAB});
  const auto an = analyze(code);
  ASSERT_EQ(an->immediates.size(), 1u);
  EXPECT_EQ(an->immediates[an->imm_index[0]], U256{0xAB0000u});
}

TEST(CodeAnalysis, BlocksSplitAtJumpdestAndTerminators) {
  // ADD-block | JUMPDEST-block | after-JUMP block.
  //   pc 0: PUSH1 1, pc 2: PUSH1 2, pc 4: ADD, pc 5: STOP   <- block 1
  //   pc 6: JUMPDEST, pc 7: STOP                             <- block 2
  const Bytes code = bytes_of({0x60, 1, 0x60, 2, 0x01, 0x00, 0x5b, 0x00});
  const auto an = analyze(code);
  ASSERT_EQ(an->blocks.size(), 2u);
  EXPECT_NE(an->block_at[0], 0u);
  EXPECT_EQ(an->block_at[2], 0u);  // mid-block
  EXPECT_EQ(an->block_at[4], 0u);
  EXPECT_NE(an->block_at[6], 0u);  // JUMPDEST entry

  const auto& b0 = an->blocks[an->block_at[0] - 1];
  EXPECT_EQ(b0.static_gas, 2 * gas::kVeryLow + gas::kVeryLow + 0);  // 2 PUSH + ADD + STOP
  EXPECT_EQ(b0.stack_required, 0u);
  EXPECT_EQ(b0.stack_max_growth, 2u);

  const auto& b1 = an->blocks[an->block_at[6] - 1];
  EXPECT_EQ(b1.static_gas, gas::kJumpdest);
}

TEST(CodeAnalysis, StackRequiredTracksDeepestOperandReach) {
  // SWAP2 needs 3 operands; following ADD consumes two and nets -1.
  const Bytes code = bytes_of({0x91, 0x01, 0x00});  // SWAP2 ADD STOP
  const auto an = analyze(code);
  ASSERT_EQ(an->blocks.size(), 1u);
  EXPECT_EQ(an->blocks[0].stack_required, 3u);
  EXPECT_EQ(an->blocks[0].stack_max_growth, 0u);
}

TEST(CodeAnalysis, TrailingGasIsSuffixSumWithinBlock) {
  // PUSH1 a (3), PUSH1 b (3), ADD (3), STOP (0).
  const Bytes code = bytes_of({0x60, 1, 0x60, 2, 0x01, 0x00});
  const auto an = analyze(code);
  EXPECT_EQ(an->trailing_gas[0], 2 * gas::kVeryLow);  // ADD + PUSH after pc 0
  EXPECT_EQ(an->trailing_gas[2], gas::kVeryLow);      // just ADD
  EXPECT_EQ(an->trailing_gas[4], 0u);                 // ADD is last-charged
  EXPECT_EQ(an->trailing_gas[5], 0u);                 // STOP terminator
}

TEST(CodeAnalysis, GasAndCallFamilyTerminateBlocks) {
  // GAS observes gas_left, so nothing may be pre-charged past it.
  const Bytes code = bytes_of({0x5a, 0x60, 1, 0x00});  // GAS PUSH1 STOP
  const auto an = analyze(code);
  ASSERT_EQ(an->blocks.size(), 2u);
  EXPECT_NE(an->block_at[0], 0u);
  EXPECT_NE(an->block_at[1], 0u);  // block starts right after GAS
  EXPECT_EQ(an->trailing_gas[0], 0u);
}

// ---------------------------------------------------------------------------
// Cache behavior
// ---------------------------------------------------------------------------

TEST(CodeAnalysisCache, HitMissAndInvalidate) {
  CodeAnalysisCache cache;
  const Bytes code = bytes_of({0x60, 1, 0x00});
  const Hash256 h = Hash256::of(std::span(code));

  const auto a1 = cache.get(h, std::span(code));
  const auto a2 = cache.get(h, std::span(code));
  EXPECT_EQ(a1.get(), a2.get());  // shared, not rebuilt

  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);

  cache.invalidate(h);
  s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.invalidations, 1u);

  const auto a3 = cache.get(h, std::span(code));
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_TRUE(a3 != nullptr);
}

TEST(CodeAnalysisCache, EvictsOldestWhenOverCapacity) {
  CodeAnalysisCache cache(/*capacity_bytes=*/4096);  // 512 B per shard
  Xoshiro256 rng(42);
  for (int i = 0; i < 64; ++i) {
    Bytes code(64, 0);
    for (auto& b : code) b = static_cast<std::uint8_t>(rng.below(256));
    cache.get(Hash256::of(std::span(code)), std::span(code));
  }
  const auto s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LT(s.entries, 64u);
  // Each shard retains at least its newest entry.
  EXPECT_GE(s.entries, 1u);
}

// ---------------------------------------------------------------------------
// Regression: one analysis per code hash per process, not per frame
// ---------------------------------------------------------------------------

TEST(CodeAnalysisCache, InnerCallFramesShareOneAnalysis) {
  WorldState ws;
  const Address caller = Address::from_id(1);
  const Address outer = Address::from_id(2);
  const Address inner = Address::from_id(3);
  ws.set(StateKey::balance(caller), U256{1'000'000});

  // inner: SSTORE(0, 1); STOP
  Assembler bi;
  bi.push(1).push(0).op(Op::SSTORE).op(Op::STOP);
  ws.set_code(inner, bi.assemble());

  // outer: CALL(inner) x4, POP each success flag, STOP.
  Assembler bo;
  for (int i = 0; i < 4; ++i) {
    bo.push(0).push(0).push(0).push(0).push(0);  // out_len..in_off, value
    bo.push(inner).push(50'000).op(Op::CALL).op(Op::POP);
  }
  bo.op(Op::STOP);
  ws.set_code(outer, bo.assemble());

  CodeAnalysisCache cache;
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);
  block.analysis_cache = &cache;

  const std::uint64_t before = analysis_build_count();
  for (int run = 0; run < 3; ++run) {  // repeated transactions, same cache
    const WorldStateView view(ws);
    ExecBuffer buffer(view);
    TxContext tx;
    tx.origin = caller;
    tx.gas_price = U256{1};
    tx.block = &block;
    tx.analysis_cache = &cache;

    Message msg;
    msg.caller = caller;
    msg.to = outer;
    msg.gas = 1'000'000;
    const CallResult r = execute_call(buffer, tx, msg);
    ASSERT_EQ(static_cast<int>(r.status),
              static_cast<int>(Status::kSuccess));
  }

  // 3 transactions x (1 outer frame + 4 inner frames) executed, but only
  // two distinct codes exist: exactly two analyses built, ever.
  EXPECT_EQ(analysis_build_count() - before, 2u);
  const auto s = cache.stats();
  EXPECT_EQ(s.builds, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 3u * 5u - 2u);
}

// ---------------------------------------------------------------------------
// Concurrency: one shared cache hammered from 8 executors with concurrent
// invalidation (runs under the tsan-evm preset).
// ---------------------------------------------------------------------------

TEST(CodeAnalysisCache, ConcurrentGetAndInvalidate) {
  CodeAnalysisCache cache(/*capacity_bytes=*/64 << 10);  // force evictions too

  // A pool of distinct codes (distinct first PUSH immediate => distinct
  // hashes) shared by all threads.
  struct Entry {
    Bytes code;
    Hash256 hash;
  };
  std::vector<Entry> pool;
  for (int i = 0; i < 32; ++i) {
    Assembler a;
    a.push(U256{static_cast<std::uint64_t>(i) + 1}).push(0).op(Op::SSTORE);
    a.op(Op::STOP);
    Entry e;
    e.code = a.assemble();
    e.hash = Hash256::of(std::span(e.code));
    pool.push_back(std::move(e));
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kItersPerThread; ++i) {
        const Entry& e = pool[rng.below(pool.size())];
        if (rng.below(16) == 0) {
          // set_code-style redeployment hygiene racing the readers.
          cache.invalidate(e.hash);
        } else {
          const auto an = cache.get(e.hash, std::span(e.code));
          ASSERT_TRUE(an != nullptr);
          // The returned analysis must be internally consistent even if
          // the entry is concurrently invalidated (shared_ptr pins it).
          ASSERT_EQ(an->code_size, e.code.size());
          ASSERT_FALSE(an->blocks.empty());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = cache.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GE(s.builds, s.entries);  // every resident entry was built here
  EXPECT_LE(s.entries, pool.size());
}

// ---------------------------------------------------------------------------
// Executor-level: a private cache wired through SerialOptions-style
// BlockContext reaches the interpreter (global cache untouched).
// ---------------------------------------------------------------------------

TEST(CodeAnalysisCache, BlockContextKnobRoutesToPrivateCache) {
  WorldState ws;
  const Address contract = Address::from_id(5);
  Assembler a;
  a.push(3).push(4).op(Op::ADD).push(0).op(Op::MSTORE);
  a.push(0x20).push(0).op(Op::RETURN);
  ws.set_code(contract, a.assemble());

  CodeAnalysisCache cache;
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);
  block.analysis_cache = &cache;

  const WorldStateView view(ws);
  ExecBuffer buffer(view);
  TxContext tx;
  tx.origin = Address::from_id(1);
  tx.gas_price = U256{1};
  tx.block = &block;
  tx.analysis_cache = &cache;

  Message msg;
  msg.caller = tx.origin;
  msg.to = contract;
  msg.gas = 100'000;
  const CallResult r = execute_call(buffer, tx, msg);
  ASSERT_EQ(static_cast<int>(r.status), static_cast<int>(Status::kSuccess));
  EXPECT_EQ(U256::from_be_bytes(std::span(r.output)), U256{7});
  EXPECT_EQ(cache.stats().misses, 1u);  // resolved through *this* cache
}

}  // namespace
}  // namespace blockpilot::evm
