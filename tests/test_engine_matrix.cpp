// Engine-differential matrix (docs/blockstm.md §8): the gate for the
// Block-STM validator and the adaptive per-block engine selection.
//
// The acceptance surface:
//  * {OCC-WSI, Block-STM} proposer x {subgraph-LPT, Block-STM} validator
//    over the four workload presets, a seed sweep, and {1, 2, 8} threads —
//    verdicts, state roots, gas, and receipts must be bit-identical across
//    every cell (the two validators accept exactly the same blocks because
//    both reduce to "serial preset-order execution matches profile+header");
//  * Byzantine-tampered blocks are rejected identically by both validators;
//  * ESTIMATE pre-seeding is strictly a scheduling hint: stale seed sets
//    (extra keys never written, missing keys actually written, or no seeds
//    at all) degrade to extra suspensions/validation waves, never to a
//    different verdict or root;
//  * adaptive selection is bit-reproducible: seeded NodeDriver re-runs pick
//    the same engine at every height, and a regime flip (low-conflict vs
//    dex-heavy traffic) actually flips the pick.
//
// Sweeps trim under sanitizers like the ingest soak does: the tool's value
// is in the interleavings it explores, not the scenario count.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/blockpilot.hpp"
#include "core/node_driver.hpp"
#include "state/versioned_state.hpp"

#if defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

namespace blockpilot::core {
namespace {

using state::MvMemory;
using state::StateKey;

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

struct NamedWorkload {
  const char* name;
  workload::WorkloadConfig cfg;
};

std::vector<NamedWorkload> matrix_workloads() {
  return {{"mainnet", workload::preset_mainnet()},
          {"low-conflict", workload::preset_low_conflict()},
          {"high-conflict", workload::preset_high_conflict()},
          {"nft-drop", workload::preset_nft_drop()}};
}

ProposedBlock propose_with(ScheduleMode mode, const state::WorldState& pre,
                           std::vector<chain::Transaction> txs) {
  txpool::TxPool pool;
  pool.add_all(std::move(txs));
  ProposerConfig pc;
  pc.mode = mode;
  pc.threads = 4;
  OccWsiProposer proposer(pc);
  ThreadPool workers(1);  // virtual-time engines never touch the pool
  return proposer.propose(pre, ctx_for(1), pool, workers);
}

ValidationOutcome validate_with(ValidatorEngine engine, std::size_t threads,
                                const state::WorldState& pre,
                                const BlockBundle& bundle) {
  ValidatorConfig vc;
  vc.engine = engine;
  vc.threads = threads;
  ThreadPool workers(std::max<std::size_t>(threads, 1));
  return BlockValidator(vc).validate(pre, bundle.block, bundle.profile,
                                     workers);
}

/// The cross-engine identity the matrix gates: same verdict, and on accept
/// the same root, gas, and bit-identical receipts.
void expect_identical(const ValidationOutcome& lpt,
                      const ValidationOutcome& stm, const char* what) {
  ASSERT_EQ(lpt.valid, stm.valid)
      << what << ": lpt='" << lpt.reject_reason << "' stm='"
      << stm.reject_reason << "'";
  if (!lpt.valid) return;
  EXPECT_EQ(lpt.exec.state_root, stm.exec.state_root) << what;
  EXPECT_EQ(lpt.exec.gas_used, stm.exec.gas_used) << what;
  ASSERT_EQ(lpt.exec.receipts.size(), stm.exec.receipts.size()) << what;
  EXPECT_EQ(chain::receipts_root(lpt.exec.receipts),
            chain::receipts_root(stm.exec.receipts))
      << what;
  for (std::size_t i = 0; i < lpt.exec.receipts.size(); ++i) {
    EXPECT_EQ(lpt.exec.receipts[i].success, stm.exec.receipts[i].success)
        << what << " tx " << i;
    EXPECT_EQ(lpt.exec.receipts[i].gas_used, stm.exec.receipts[i].gas_used)
        << what << " tx " << i;
  }
}

// ---- the 2x2 engine matrix ------------------------------------------------

TEST(EngineMatrix, ProposerByValidatorAcrossRegimesSeedsAndThreads) {
  const std::uint64_t seeds = kSanitized ? 2 : 8;
  const std::vector<std::size_t> thread_counts =
      kSanitized ? std::vector<std::size_t>{2}
                 : std::vector<std::size_t>{1, 2, 8};
  const ScheduleMode proposers[] = {ScheduleMode::kVirtualTime,
                                    ScheduleMode::kBlockStm};
  std::size_t cells = 0;
  for (const NamedWorkload& wl : matrix_workloads()) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      workload::WorkloadConfig cfg = wl.cfg;
      cfg.seed = 0xE17 + s * 6151;
      cfg.txs_per_block = 48;
      workload::WorkloadGenerator gen(cfg);
      const state::WorldState genesis = gen.genesis();
      const auto txs = gen.next_block();
      for (const ScheduleMode pmode : proposers) {
        const ProposedBlock blk = propose_with(pmode, genesis, txs);
        BlockBundle bundle;
        bundle.block = blk.block;
        bundle.profile = blk.profile;
        for (const std::size_t threads : thread_counts) {
          const std::string what =
              std::string(wl.name) + "/seed" + std::to_string(s) +
              (pmode == ScheduleMode::kBlockStm ? "/stm-proposer" :
                                                  "/occ-proposer") +
              "/t" + std::to_string(threads);
          const auto lpt = validate_with(ValidatorEngine::kSubgraphLpt,
                                         threads, genesis, bundle);
          const auto stm = validate_with(ValidatorEngine::kBlockStm, threads,
                                         genesis, bundle);
          const auto host = validate_with(ValidatorEngine::kBlockStmHost,
                                          threads, genesis, bundle);
          EXPECT_TRUE(lpt.valid) << what << ": " << lpt.reject_reason;
          expect_identical(lpt, stm, what.c_str());
          expect_identical(lpt, host, what.c_str());
          EXPECT_EQ(stm.exec.state_root, bundle.block.header.state_root)
              << what;
          EXPECT_EQ(lpt.stats.engine_used, ValidatorEngine::kSubgraphLpt);
          EXPECT_EQ(stm.stats.engine_used, ValidatorEngine::kBlockStm);
          EXPECT_EQ(host.stats.engine_used, ValidatorEngine::kBlockStmHost);
          ++cells;
        }
      }
    }
  }
  EXPECT_EQ(cells, matrix_workloads().size() * seeds * 2 *
                       thread_counts.size());
}

// ---- Byzantine tampering: identical rejection -----------------------------

struct TamperedMatrix : ::testing::Test {
  workload::WorkloadGenerator gen{workload::preset_mainnet()};
  state::WorldState genesis = gen.genesis();

  BlockBundle honest(std::size_t txs) {
    const SerialResult r =
        execute_serial(genesis, ctx_for(1), std::span(batch_ = gen.next_batch(txs)));
    BlockBundle bundle;
    bundle.block = seal_block(ctx_for(1), r.exec, r.included);
    bundle.profile = r.exec.profile;
    return bundle;
  }

  /// Both validators must reject; when `same_reason`, with the same string
  /// (scheduling-dependent tampers may trip different checks first).
  void expect_both_reject(const BlockBundle& bundle, const char* what,
                          bool same_reason = true) {
    const auto lpt =
        validate_with(ValidatorEngine::kSubgraphLpt, 4, genesis, bundle);
    const auto stm =
        validate_with(ValidatorEngine::kBlockStm, 4, genesis, bundle);
    const auto host =
        validate_with(ValidatorEngine::kBlockStmHost, 4, genesis, bundle);
    EXPECT_FALSE(lpt.valid) << what;
    EXPECT_FALSE(stm.valid) << what;
    EXPECT_FALSE(host.valid) << what;
    if (same_reason) {
      EXPECT_EQ(lpt.reject_reason, stm.reject_reason) << what;
      EXPECT_EQ(lpt.reject_reason, host.reject_reason) << what;
    }
  }

 private:
  std::vector<chain::Transaction> batch_;
};

TEST_F(TamperedMatrix, StateRoot) {
  auto b = honest(40);
  b.block.header.state_root.bytes[0] ^= 0xA5;
  expect_both_reject(b, "state root");
}

TEST_F(TamperedMatrix, GasUsed) {
  auto b = honest(40);
  b.block.header.gas_used += 1;
  expect_both_reject(b, "gas used");
}

TEST_F(TamperedMatrix, ReceiptsRoot) {
  auto b = honest(40);
  b.block.header.receipts_root.bytes[7] ^= 0x42;
  expect_both_reject(b, "receipts root");
}

TEST_F(TamperedMatrix, ProfileSize) {
  auto b = honest(20);
  b.profile.txs.pop_back();
  expect_both_reject(b, "profile size");
}

TEST_F(TamperedMatrix, ProfileReadSet) {
  auto b = honest(40);
  b.profile.txs[5].reads.push_back(
      state::StateKey::balance(Address::from_id(0xDEAD)));
  std::sort(b.profile.txs[5].reads.begin(), b.profile.txs[5].reads.end(),
            state::state_key_less);
  expect_both_reject(b, "profile read set");
}

TEST_F(TamperedMatrix, ProfileWriteValue) {
  auto b = honest(40);
  ASSERT_FALSE(b.profile.txs[3].writes.empty());
  b.profile.txs[3].writes[0].second += U256{1};
  // A lying write value steers the two schedulers differently before the
  // write-set check fires, so only the verdict is gated.
  expect_both_reject(b, "profile write value", /*same_reason=*/false);
}

TEST_F(TamperedMatrix, TransactionBody) {
  auto b = honest(40);
  b.block.transactions[4].value += U256{1};
  expect_both_reject(b, "transaction body", /*same_reason=*/false);
}

// ---- ESTIMATE pre-seeding -------------------------------------------------

TEST(EstimateSeeding, SeedsReadAsEstimatesAndRealWritesReplaceThem) {
  state::WorldState base;
  const Address acct = Address::from_id(7);
  const StateKey key = StateKey::balance(acct);
  const StateKey stale = StateKey::nonce(acct);
  base.set(key, U256{1000});

  MvMemory mv(base, 4);
  mv.seed_estimates(1, {{key, U256{0}}, {stale, U256{0}}});

  // Higher transactions see the seeded footprint as ESTIMATE (suspend), not
  // as a value.
  auto r = mv.read(key, 3);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kEstimate);
  EXPECT_EQ(r.version.txn, 1u);
  EXPECT_EQ(mv.read(stale, 2).kind, MvMemory::ReadKind::kEstimate);

  // The first real record is incarnation 0 too: seeded keys it writes are
  // replaced, seeded keys it does not write are erased (write-set shrink),
  // and the record reports no new location (no validation wave).
  EXPECT_FALSE(mv.record(1, 0, {{key, U256{900}}}));
  r = mv.read(key, 3);
  ASSERT_EQ(r.kind, MvMemory::ReadKind::kOk);
  EXPECT_EQ(r.value, U256{900});
  EXPECT_EQ(mv.read(stale, 2).kind, MvMemory::ReadKind::kBase);
}

TEST(EstimateSeeding, MissingSeedKeyIsANewLocation) {
  state::WorldState base;
  const Address acct = Address::from_id(9);
  const StateKey seeded = StateKey::balance(acct);
  const StateKey unseeded = StateKey::nonce(acct);

  MvMemory mv(base, 4);
  mv.seed_estimates(2, {{seeded, U256{0}}});
  // A write the profile did not announce is a genuinely new location: the
  // record must report it so the scheduler re-validates higher readers.
  EXPECT_TRUE(mv.record(2, 0, {{seeded, U256{1}}, {unseeded, U256{2}}}));
}

TEST(EstimateSeeding, StaleSeedsNeverChangeTheVerdict) {
  workload::WorkloadConfig cfg = workload::preset_high_conflict();
  cfg.seed = 0x5EED5;
  cfg.txs_per_block = 48;
  workload::WorkloadGenerator gen(cfg);
  const state::WorldState genesis = gen.genesis();
  const auto txs = gen.next_block();
  const SerialResult r = execute_serial(genesis, ctx_for(1), std::span(txs));
  BlockBundle bundle;
  bundle.block = seal_block(ctx_for(1), r.exec, r.included);
  bundle.profile = r.exec.profile;

  ThreadPool workers(4);
  ValidatorConfig vc;
  vc.engine = ValidatorEngine::kBlockStm;
  vc.threads = 4;
  const auto honest =
      BlockValidator(vc).validate(genesis, bundle.block, bundle.profile,
                                  workers);
  ASSERT_TRUE(honest.valid) << honest.reject_reason;

  // Stale profile: extra keys never written + every third tx's write set
  // dropped entirely (keys actually written but never seeded).
  chain::BlockProfile stale = bundle.profile;
  for (std::size_t i = 0; i < stale.txs.size(); ++i) {
    if (i % 3 == 0) {
      stale.txs[i].writes.clear();
    } else {
      stale.txs[i].writes.emplace_back(
          StateKey::balance(Address::from_id(0xABCDE0 + i)), U256{1});
    }
  }
  ValidatorConfig stale_vc = vc;
  stale_vc.stm_seed_override = &stale;
  const auto degraded = BlockValidator(stale_vc).validate(
      genesis, bundle.block, bundle.profile, workers);
  ASSERT_TRUE(degraded.valid) << degraded.reject_reason;
  EXPECT_EQ(degraded.exec.state_root, honest.exec.state_root);
  EXPECT_EQ(degraded.exec.gas_used, honest.exec.gas_used);
  EXPECT_EQ(chain::receipts_root(degraded.exec.receipts),
            chain::receipts_root(honest.exec.receipts));
  // The stale seeds cost replay dynamics, not correctness: the degraded run
  // can only do more re-validation work than the honestly-seeded one.
  EXPECT_GE(degraded.stats.stm_validation_waves + degraded.stats.stm_aborts,
            honest.stats.stm_validation_waves + honest.stats.stm_aborts);

  // No seeds at all (empty profile override) — the pure Block-STM regime —
  // must also converge to the same result.
  chain::BlockProfile none;
  ValidatorConfig bare_vc = vc;
  bare_vc.stm_seed_override = &none;
  const auto bare = BlockValidator(bare_vc).validate(
      genesis, bundle.block, bundle.profile, workers);
  ASSERT_TRUE(bare.valid) << bare.reject_reason;
  EXPECT_EQ(bare.exec.state_root, honest.exec.state_root);
}

// ---- adaptive selection ---------------------------------------------------

TEST(AdaptiveSelection, ProposerFlipsWithTheConflictRegime) {
  // Dex-heavy stream: the first proposal runs OCC-WSI (cold signal), then
  // the measured largest-subgraph ratio crosses the threshold and every
  // subsequent proposal runs Block-STM.
  workload::WorkloadConfig hot = workload::preset_high_conflict();
  hot.seed = 0xF11F;
  hot.txs_per_block = 48;
  workload::WorkloadGenerator gen(hot);
  const state::WorldState genesis = gen.genesis();

  ProposerConfig pc;
  pc.mode = ScheduleMode::kAdaptive;
  pc.threads = 4;
  OccWsiProposer proposer(pc);
  ThreadPool workers(1);

  auto tip = std::make_shared<const state::WorldState>(genesis);
  std::vector<ScheduleMode> picks;
  double last_ratio = 0.0;
  for (std::uint64_t h = 1; h <= 3; ++h) {
    txpool::TxPool pool;
    pool.add_all(gen.next_block());
    ProposedBlock blk = proposer.propose(*tip, ctx_for(h), pool, workers);
    picks.push_back(blk.stats.engine_used);
    last_ratio = blk.stats.largest_subgraph_ratio;
    tip = blk.post_state;
  }
  ASSERT_GT(last_ratio, kAdaptiveStmThreshold)
      << "preset_high_conflict no longer exceeds the adaptive threshold";
  EXPECT_EQ(picks[0], ScheduleMode::kVirtualTime);  // cold signal
  EXPECT_EQ(picks[1], ScheduleMode::kBlockStm);
  EXPECT_EQ(picks[2], ScheduleMode::kBlockStm);

  // Low-conflict stream: the signal never crosses, every pick stays OCC.
  workload::WorkloadConfig cold = workload::preset_low_conflict();
  cold.seed = 0xF11F;
  cold.txs_per_block = 48;
  workload::WorkloadGenerator cold_gen(cold);
  const state::WorldState cold_genesis = cold_gen.genesis();
  OccWsiProposer cold_proposer(pc);
  auto cold_tip = std::make_shared<const state::WorldState>(cold_genesis);
  for (std::uint64_t h = 1; h <= 3; ++h) {
    txpool::TxPool pool;
    pool.add_all(cold_gen.next_block());
    ProposedBlock blk =
        cold_proposer.propose(*cold_tip, ctx_for(h), pool, workers);
    EXPECT_EQ(blk.stats.engine_used, ScheduleMode::kVirtualTime)
        << "height " << h
        << " ratio=" << blk.stats.largest_subgraph_ratio;
    cold_tip = blk.post_state;
  }
}

TEST(AdaptiveSelection, ValidatorResolvesFromTheBlocksOwnProfile) {
  // High-conflict block -> Block-STM replay; low-conflict -> subgraph-LPT.
  for (const bool hot : {true, false}) {
    workload::WorkloadConfig cfg = hot ? workload::preset_high_conflict()
                                       : workload::preset_low_conflict();
    cfg.seed = 0xADA7;
    cfg.txs_per_block = 48;
    workload::WorkloadGenerator gen(cfg);
    const state::WorldState genesis = gen.genesis();
    const auto txs = gen.next_block();
    const SerialResult r = execute_serial(genesis, ctx_for(1), std::span(txs));
    BlockBundle bundle;
    bundle.block = seal_block(ctx_for(1), r.exec, r.included);
    bundle.profile = r.exec.profile;

    const auto outcome =
        validate_with(ValidatorEngine::kAdaptive, 4, genesis, bundle);
    ASSERT_TRUE(outcome.valid) << outcome.reject_reason;
    EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
    EXPECT_EQ(outcome.stats.engine_used, hot ? ValidatorEngine::kBlockStm
                                             : ValidatorEngine::kSubgraphLpt)
        << (hot ? "high" : "low")
        << "-conflict ratio=" << outcome.stats.largest_subgraph_ratio;
  }
}

NodeDriverConfig adaptive_config(const workload::TrafficProfile& profile,
                                 std::uint64_t seed) {
  NodeDriverConfig cfg;
  cfg.profile = profile;
  cfg.seed = seed;
  cfg.proposer.mode = ScheduleMode::kAdaptive;
  cfg.proposer.threads = 4;
  cfg.proposer.max_txs = 48;
  cfg.pool.max_txs = 512;
  cfg.pool.max_bytes = 512 * 200;
  cfg.pool.enforce_nonce_order = true;
  cfg.blocks = kSanitized ? 4 : 8;
  cfg.ticks_per_block = 2;
  return cfg;
}

TEST(AdaptiveSelection, NodeDriverRunsAreBitStablePerSeed) {
  // The determinism fuzz: seeded adaptive runs must re-pick the same engine
  // at every height and rebuild the same chain, across a steady profile and
  // a dex-heavy one (the engine mix differs between the two).
  workload::TrafficProfile steady = workload::traffic_steady();
  workload::TrafficProfile dexheavy = workload::traffic_steady();
  dexheavy.name = "dex-heavy";
  dexheavy.base.dex_fraction = 0.85;
  dexheavy.base.token_fraction = 0.10;
  dexheavy.base.contract_zipf_s = 2.2;

  const std::uint64_t seeds = kSanitized ? 4 : 32;
  std::size_t stm_blocks = 0, occ_blocks = 0;
  for (const auto& profile : {steady, dexheavy}) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 0xADA + s * 7919;
      NodeDriver a(adaptive_config(profile, seed));
      NodeDriver b(adaptive_config(profile, seed));
      const NodeDriverResult ra = a.run();
      const NodeDriverResult rb = b.run();
      EXPECT_EQ(ra.engine_by_height, rb.engine_by_height)
          << profile.name << "/" << seed;
      EXPECT_EQ(ra.block_hashes, rb.block_hashes)
          << profile.name << "/" << seed;
      EXPECT_EQ(ra.final_state_root, rb.final_state_root)
          << profile.name << "/" << seed;
      for (const ScheduleMode m : ra.engine_by_height)
        (m == ScheduleMode::kBlockStm ? stm_blocks : occ_blocks) += 1;
    }
  }
  // The sweep must actually exercise both engines (the dex-heavy profile
  // pushes past the threshold; steady stays below).
  EXPECT_GT(stm_blocks, 0u);
  EXPECT_GT(occ_blocks, 0u);
}

}  // namespace
}  // namespace blockpilot::core
