// Multi-block pipeline tests (paper §4.3 Fig. 5, §5.6).
#include <gtest/gtest.h>

#include "commit/commit_pipeline.hpp"
#include "core/blockpilot.hpp"

namespace blockpilot::core {
namespace {

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

BlockBundle bundle_from(const state::WorldState& pre,
                        const std::vector<chain::Transaction>& txs,
                        std::uint64_t height) {
  const SerialResult r = execute_serial(pre, ctx_for(height), std::span(txs));
  BlockBundle b;
  b.block = seal_block(ctx_for(height), r.exec, r.included);
  b.profile = r.exec.profile;
  return b;
}

struct PipelineFixture : ::testing::Test {
  workload::WorkloadGenerator gen{workload::preset_mainnet()};
  state::WorldState genesis = gen.genesis();
};

TEST_F(PipelineFixture, SingleBlockHeight) {
  const std::vector<BlockBundle> siblings = {
      bundle_from(genesis, gen.next_batch(50), 1)};
  PipelineConfig cfg;
  cfg.workers = 8;
  ValidatorPipeline pipeline(cfg);
  ThreadPool workers(8);
  const auto result =
      pipeline.process_height(genesis, std::span(siblings), workers);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.all_valid()) << result.outcomes[0].reject_reason;
  EXPECT_GT(result.stats.virtual_speedup(), 1.0);
}

TEST_F(PipelineFixture, SiblingForksAllValidate) {
  // Four different blocks at the same height (distinct tx sets) — the fork
  // scenario of Fig. 1 / §3.4.
  std::vector<BlockBundle> siblings;
  for (int i = 0; i < 4; ++i)
    siblings.push_back(bundle_from(genesis, gen.next_batch(40), 1));

  PipelineConfig cfg;
  cfg.workers = 8;
  ValidatorPipeline pipeline(cfg);
  ThreadPool workers(8);
  const auto result =
      pipeline.process_height(genesis, std::span(siblings), workers);
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (const auto& o : result.outcomes)
    EXPECT_TRUE(o.valid) << o.reject_reason;
  EXPECT_EQ(result.stats.blocks, 4u);
}

TEST_F(PipelineFixture, ConcurrentAndSequentialAgree) {
  std::vector<BlockBundle> siblings;
  for (int i = 0; i < 3; ++i)
    siblings.push_back(bundle_from(genesis, gen.next_batch(30), 1));

  PipelineConfig seq_cfg;
  seq_cfg.workers = 4;
  seq_cfg.concurrent_blocks = false;
  PipelineConfig par_cfg = seq_cfg;
  par_cfg.concurrent_blocks = true;

  ThreadPool workers(4);
  const auto seq = ValidatorPipeline(seq_cfg).process_height(
      genesis, std::span(siblings), workers);
  const auto par = ValidatorPipeline(par_cfg).process_height(
      genesis, std::span(siblings), workers);

  ASSERT_EQ(seq.outcomes.size(), par.outcomes.size());
  for (std::size_t i = 0; i < seq.outcomes.size(); ++i) {
    EXPECT_EQ(seq.outcomes[i].valid, par.outcomes[i].valid);
    if (seq.outcomes[i].valid) {
      EXPECT_EQ(seq.outcomes[i].exec.state_root,
                par.outcomes[i].exec.state_root);
    }
  }
  // The virtual-time model is schedule-derived, not wall-clock-derived, so
  // it is identical for both modes.
  EXPECT_EQ(seq.stats.vtime_makespan, par.stats.vtime_makespan);
}

TEST_F(PipelineFixture, ChainedHeightsThreadState) {
  // Height 1 then height 2 on top of height 1's post state.
  const BlockBundle b1 = bundle_from(genesis, gen.next_batch(30), 1);
  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult r1 = execute_serial(genesis, ctx_for(1),
                                         std::span(b1.block.transactions), opts);
  ASSERT_TRUE(r1.ok);
  const BlockBundle b2 =
      bundle_from(*r1.exec.post_state, gen.next_batch(30), 2);

  const std::vector<std::vector<BlockBundle>> heights = {{b1}, {b2}};
  PipelineConfig cfg;
  cfg.workers = 4;
  ValidatorPipeline pipeline(cfg);
  ThreadPool workers(4);
  const auto result =
      pipeline.process_chain(genesis, std::span(heights), workers);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_TRUE(result.outcomes[0].valid) << result.outcomes[0].reject_reason;
  EXPECT_TRUE(result.outcomes[1].valid) << result.outcomes[1].reject_reason;
  EXPECT_EQ(result.stats.blocks, 2u);
}

TEST_F(PipelineFixture, InvalidSiblingDoesNotPoisonOthers) {
  std::vector<BlockBundle> siblings;
  siblings.push_back(bundle_from(genesis, gen.next_batch(20), 1));
  siblings.push_back(bundle_from(genesis, gen.next_batch(20), 1));
  siblings[1].block.header.state_root.bytes[0] ^= 0x55;  // corrupt fork

  PipelineConfig cfg;
  cfg.workers = 4;
  ValidatorPipeline pipeline(cfg);
  ThreadPool workers(4);
  const auto result =
      pipeline.process_height(genesis, std::span(siblings), workers);
  EXPECT_TRUE(result.outcomes[0].valid);
  EXPECT_FALSE(result.outcomes[1].valid);
}

TEST_F(PipelineFixture, ChainSessionMatchesProcessChain) {
  // Height-granular push/settle over the same chain must reproduce the
  // batch entry point bit-for-bit: depth-0 operation is the old settle
  // pass, just re-sliced.
  const BlockBundle b1 = bundle_from(genesis, gen.next_batch(30), 1);
  SerialOptions opts;
  opts.drop_unincludable = false;
  const SerialResult r1 = execute_serial(genesis, ctx_for(1),
                                         std::span(b1.block.transactions), opts);
  ASSERT_TRUE(r1.ok);
  const BlockBundle b2 =
      bundle_from(*r1.exec.post_state, gen.next_batch(30), 2);
  const std::vector<std::vector<BlockBundle>> heights = {{b1}, {b2}};

  PipelineConfig cfg;
  cfg.workers = 4;
  ThreadPool workers(4);
  const auto batch =
      ValidatorPipeline(cfg).process_chain(genesis, std::span(heights), workers);

  ChainSession session(cfg, genesis);
  for (const auto& siblings : heights) {
    ASSERT_EQ(session.push_height(std::span(siblings), workers), 0u);
    EXPECT_TRUE(session.settle_next());
  }

  ASSERT_EQ(batch.outcomes.size(), 2u);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_EQ(session.outcome(h, 0).valid, batch.outcomes[h].valid);
    EXPECT_EQ(session.outcome(h, 0).exec.state_root,
              batch.outcomes[h].exec.state_root);
  }
  EXPECT_EQ(session.tip().state_root(), batch.outcomes[1].exec.state_root);
  EXPECT_EQ(session.stats().vtime_makespan, batch.stats.vtime_makespan);
  EXPECT_EQ(session.stats().blocks, batch.stats.blocks);
}

TEST_F(PipelineFixture, ChainSessionChooseRedirectsTip) {
  std::vector<BlockBundle> siblings;
  for (int i = 0; i < 2; ++i)
    siblings.push_back(bundle_from(genesis, gen.next_batch(25), 1));

  PipelineConfig cfg;
  cfg.workers = 4;
  ThreadPool workers(4);
  ChainSession session(cfg, genesis);
  ASSERT_EQ(session.push_height(std::span(siblings), workers), 0u);

  // A vote for the other sibling re-roots the speculative tip.
  session.choose(0, 1);
  EXPECT_EQ(session.canonical(0), 1u);
  EXPECT_EQ(session.tip().state_root(),
            session.outcome(0, 1).exec.state_root);
}

TEST_F(PipelineFixture, ChainSessionForkChoiceAdoptsSurvivorAndRevokes) {
  // Canonical sibling carries a tampered root; with an async commit pipeline
  // the lie only surfaces at settlement, after a speculative child height
  // was already validated on the doomed tip.
  std::vector<BlockBundle> siblings;
  for (int i = 0; i < 2; ++i)
    siblings.push_back(bundle_from(genesis, gen.next_batch(25), 1));
  siblings[0].block.header.state_root.bytes[0] ^= 0xA5;

  ThreadPool commit_pool(2);
  commit::CommitPipeline commits(&commit_pool);
  PipelineConfig cfg;
  cfg.workers = 4;
  cfg.commit_pipeline = &commits;
  ThreadPool workers(4);
  ChainSession session(cfg, genesis);
  std::vector<std::size_t> revoked;
  session.set_revocation_callback(
      [&](std::size_t h) { revoked.push_back(h); });

  ASSERT_EQ(session.push_height(std::span(siblings), workers), 0u);
  const std::vector<BlockBundle> child = {
      bundle_from(session.tip(), gen.next_batch(25), 2)};
  ASSERT_EQ(session.push_height(std::span(child), workers), 0u);

  EXPECT_FALSE(session.settle_next());
  const std::size_t survivor = session.fork_choice(0);
  ASSERT_EQ(survivor, 1u);  // the honest sibling's root matched its header
  session.adopt_fork(0, survivor);
  EXPECT_EQ(revoked, (std::vector<std::size_t>{1}));  // child height dropped
  EXPECT_EQ(session.height_count(), 1u);
  EXPECT_EQ(session.tip().state_root(),
            session.outcome(0, 1).exec.state_root);

  // The chain resumes on the survivor and settles clean.
  const std::vector<BlockBundle> regrown = {
      bundle_from(session.tip(), gen.next_batch(25), 2)};
  ASSERT_EQ(session.push_height(std::span(regrown), workers), 0u);
  EXPECT_TRUE(session.settle_next());
  EXPECT_EQ(session.settled_count(), 2u);
}

TEST_F(PipelineFixture, ChainSessionCascadeMarksSuffixInvalid) {
  // No-survivor terminal path: the only sibling lied, so every speculative
  // descendant is condemned with the batch cascade's bookkeeping.
  std::vector<BlockBundle> lone = {bundle_from(genesis, gen.next_batch(20), 1)};
  lone[0].block.header.state_root.bytes[0] ^= 0xA5;

  ThreadPool commit_pool(2);
  commit::CommitPipeline commits(&commit_pool);
  PipelineConfig cfg;
  cfg.workers = 4;
  cfg.commit_pipeline = &commits;
  ThreadPool workers(4);
  ChainSession session(cfg, genesis);

  ASSERT_EQ(session.push_height(std::span(lone), workers), 0u);
  const std::vector<BlockBundle> child = {
      bundle_from(session.tip(), gen.next_batch(20), 2)};
  ASSERT_EQ(session.push_height(std::span(child), workers), 0u);

  EXPECT_FALSE(session.settle_next());
  EXPECT_EQ(session.fork_choice(0), SIZE_MAX);
  session.cascade_from(1);
  EXPECT_FALSE(session.outcome(1, 0).valid);
  EXPECT_EQ(session.outcome(1, 0).reject_reason,
            "parent block failed commitment");
  EXPECT_EQ(session.settled_count(), 2u);
}

TEST_F(PipelineFixture, ChainSessionQuorumFlagGatesSettlement) {
  // The quorum bit is the network layer's licence to settle: it starts
  // clear, is per-height, and survives the consensus loop's gate pattern
  // (check has_quorum before settle_next) without deadlocking a height
  // whose votes never arrive.
  PipelineConfig cfg;
  cfg.workers = 4;
  ThreadPool workers(4);
  ChainSession session(cfg, genesis);

  const BlockBundle b1 = bundle_from(genesis, gen.next_batch(20), 1);
  ASSERT_EQ(session.push_height(std::span(&b1, 1), workers), 0u);
  const BlockBundle b2 = bundle_from(session.tip(), gen.next_batch(20), 2);
  ASSERT_EQ(session.push_height(std::span(&b2, 1), workers), 0u);

  EXPECT_FALSE(session.has_quorum(0));
  EXPECT_FALSE(session.has_quorum(1));
  session.mark_quorum(0);
  EXPECT_TRUE(session.has_quorum(0));
  EXPECT_FALSE(session.has_quorum(1));  // per height, not sticky-global

  // Consensus-loop settle gate: only quorate heights settle.
  ASSERT_TRUE(session.can_settle());
  EXPECT_TRUE(session.settle_next());
  EXPECT_EQ(session.settled_count(), 1u);
  EXPECT_EQ(session.unsettled_count(), 1u);

  // Height 1's votes are lost for good: the loop parks it (no settle call)
  // and later re-proposes.  The session neither deadlocks nor double
  // settles — the replacement height settles exactly once.
  EXPECT_FALSE(session.has_quorum(1));
  session.drop_unsettled(1);
  EXPECT_EQ(session.unsettled_count(), 0u);
  EXPECT_FALSE(session.can_settle());

  const BlockBundle b2r = bundle_from(session.tip(), gen.next_batch(20), 2);
  ASSERT_EQ(session.push_height(std::span(&b2r, 1), workers), 0u);
  EXPECT_FALSE(session.has_quorum(1));  // fresh record: flag starts clear
  session.mark_quorum(1);
  EXPECT_TRUE(session.settle_next());
  EXPECT_EQ(session.settled_count(), 2u);
  EXPECT_FALSE(session.can_settle());  // nothing left — callers stop here
}

TEST_F(PipelineFixture, ChainSessionDropUnsettledRewindsTipAndDrainsCommits) {
  // Quorum-miss re-proposal with an async commit pipeline: dropping a
  // speculative suffix abandons pending CommitHandles mid-flight.  The
  // revocations fire ascending, the tip rewinds to the settled prefix, and
  // the pipeline publishes the orphaned submissions instead of wedging.
  ThreadPool commit_pool(2);
  commit::CommitPipeline commits(&commit_pool);
  PipelineConfig cfg;
  cfg.workers = 4;
  cfg.commit_pipeline = &commits;
  ThreadPool workers(4);
  ChainSession session(cfg, genesis);
  std::vector<std::size_t> revoked;
  session.set_revocation_callback(
      [&](std::size_t h) { revoked.push_back(h); });

  const BlockBundle b1 = bundle_from(genesis, gen.next_batch(25), 1);
  ASSERT_EQ(session.push_height(std::span(&b1, 1), workers), 0u);
  session.mark_quorum(0);
  ASSERT_TRUE(session.settle_next());
  const Hash256 settled_tip = session.tip().state_root();

  const BlockBundle b2 = bundle_from(session.tip(), gen.next_batch(25), 2);
  ASSERT_EQ(session.push_height(std::span(&b2, 1), workers), 0u);
  const BlockBundle b3 = bundle_from(session.tip(), gen.next_batch(25), 3);
  ASSERT_EQ(session.push_height(std::span(&b3, 1), workers), 0u);

  session.drop_unsettled(1);  // both unsettled heights go, oldest first
  EXPECT_EQ(revoked, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(session.height_count(), 1u);
  EXPECT_EQ(session.settled_count(), 1u);
  EXPECT_EQ(session.tip().state_root(), settled_tip);

  // Abandoned submissions publish on their own: the pipeline drains to
  // zero pending and its counters balance.
  commits.drain();
  EXPECT_EQ(commits.pending(), 0u);
  EXPECT_EQ(commits.stats().settled, commits.stats().submitted);

  // The chain regrows from the surviving tip and settles clean.
  const BlockBundle b2r = bundle_from(session.tip(), gen.next_batch(25), 2);
  ASSERT_EQ(session.push_height(std::span(&b2r, 1), workers), 0u);
  session.mark_quorum(1);
  EXPECT_TRUE(session.settle_next());
  EXPECT_EQ(session.settled_count(), 2u);
}

TEST(PipelineSim, SingleBlockSingleWorker) {
  const std::uint64_t makespan = simulate_shared_workers(
      {{0, 100}, {0, 200}, {0, 300}}, 1, 50);
  EXPECT_EQ(makespan, 600u);  // same block: no switch cost
}

TEST(PipelineSim, SwitchCostChargedAcrossBlocks) {
  // One worker alternating between blocks pays the switch each time.
  const std::uint64_t makespan = simulate_shared_workers(
      {{0, 100}, {1, 100}, {0, 100}, {1, 100}}, 1, 10);
  // LPT order groups equal costs by block index: 0,0,1,1 -> one switch.
  EXPECT_EQ(makespan, 400u + 10u);
}

TEST(PipelineSim, PerfectSplitAcrossWorkers) {
  const std::uint64_t makespan = simulate_shared_workers(
      {{0, 100}, {1, 100}}, 2, 10);
  EXPECT_EQ(makespan, 100u);  // each worker one block, no switches
}

TEST(PipelineSim, MoreBlocksIncreaseSwitchOverhead) {
  // Fixed total work split over increasingly many blocks on few workers.
  std::vector<PipelineJob> one_block, four_blocks;
  for (int i = 0; i < 16; ++i) {
    one_block.push_back({0, 100});
    four_blocks.push_back({static_cast<std::size_t>(i % 4), 100});
  }
  const auto m1 = simulate_shared_workers(one_block, 2, 50);
  const auto m4 = simulate_shared_workers(four_blocks, 2, 50);
  EXPECT_GT(m4, m1);
}

}  // namespace
}  // namespace blockpilot::core
