#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <unordered_map>
#include <vector>

#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "state/versioned_state.hpp"
#include "state/world_state.hpp"
#include "support/rng.hpp"

namespace blockpilot::state {
namespace {

const Address kAlice = Address::from_id(1);
const Address kBob = Address::from_id(2);

TEST(WorldState, DefaultsAreZero) {
  WorldState ws;
  EXPECT_EQ(ws.get(StateKey::balance(kAlice)), U256{});
  EXPECT_EQ(ws.get(StateKey::nonce(kAlice)), U256{});
  EXPECT_EQ(ws.get(StateKey::storage(kAlice, U256{7})), U256{});
  EXPECT_EQ(ws.code(kAlice), nullptr);
}

TEST(WorldState, SetAndGetRoundTrip) {
  WorldState ws;
  ws.set(StateKey::balance(kAlice), U256{1000});
  ws.set(StateKey::nonce(kAlice), U256{3});
  ws.set(StateKey::storage(kAlice, U256{7}), U256{42});
  EXPECT_EQ(ws.get(StateKey::balance(kAlice)), U256{1000});
  EXPECT_EQ(ws.get(StateKey::nonce(kAlice)), U256{3});
  EXPECT_EQ(ws.get(StateKey::storage(kAlice, U256{7})), U256{42});
}

TEST(WorldState, EmptyStateRootIsEmptyTrieRoot) {
  WorldState ws;
  EXPECT_EQ(ws.state_root().to_hex(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421");
}

TEST(WorldState, RootChangesWithState) {
  WorldState ws;
  const Hash256 empty = ws.state_root();
  ws.set(StateKey::balance(kAlice), U256{1});
  const Hash256 one = ws.state_root();
  EXPECT_NE(empty, one);
  ws.set(StateKey::balance(kBob), U256{2});
  const Hash256 two = ws.state_root();
  EXPECT_NE(one, two);
  // Removing Bob's balance restores the earlier root (empty accounts prune).
  ws.set(StateKey::balance(kBob), U256{});
  EXPECT_EQ(ws.state_root(), one);
}

TEST(WorldState, RootIsContentDeterministic) {
  WorldState a, b;
  a.set(StateKey::balance(kAlice), U256{5});
  a.set(StateKey::storage(kBob, U256{1}), U256{9});
  b.set(StateKey::storage(kBob, U256{1}), U256{9});
  b.set(StateKey::balance(kAlice), U256{5});
  EXPECT_EQ(a.state_root(), b.state_root());
}

TEST(WorldState, ZeroStorageWritePrunes) {
  WorldState ws;
  ws.set(StateKey::storage(kAlice, U256{1}), U256{5});
  const Hash256 with_slot = ws.state_root();
  ws.set(StateKey::storage(kAlice, U256{1}), U256{});
  WorldState fresh;
  EXPECT_EQ(ws.state_root(), fresh.state_root());
  EXPECT_NE(with_slot, ws.state_root());
}

TEST(WorldState, CodeAffectsRoot) {
  WorldState plain, coded;
  plain.set(StateKey::balance(kAlice), U256{1});
  coded.set(StateKey::balance(kAlice), U256{1});
  coded.set_code(kAlice, {0x60, 0x00});
  EXPECT_NE(plain.state_root(), coded.state_root());
}

TEST(StateKey, EqualityAndHash) {
  const StateKey b1 = StateKey::balance(kAlice);
  const StateKey b2 = StateKey::balance(kAlice);
  const StateKey n = StateKey::nonce(kAlice);
  const StateKey s1 = StateKey::storage(kAlice, U256{1});
  const StateKey s2 = StateKey::storage(kAlice, U256{2});
  EXPECT_EQ(b1, b2);
  EXPECT_FALSE(b1 == n);
  EXPECT_FALSE(s1 == s2);
  // Balance/nonce keys ignore the slot field.
  StateKey weird = b1;
  weird.slot = U256{99};
  EXPECT_EQ(weird, b1);
  EXPECT_EQ(std::hash<StateKey>{}(b1), std::hash<StateKey>{}(b2));
}

TEST(StateKeyHash, CachedHashMatchesRecompute) {
  const StateKey s = StateKey::storage(kAlice, U256{12345});
  EXPECT_EQ(s.hash, StateKey::compute_hash(s.addr, s.field, s.slot));
  EXPECT_EQ(std::hash<StateKey>{}(s), s.hash);
  StateKey mutated = s;
  mutated.slot = U256{54321};
  mutated.rehash();
  EXPECT_EQ(mutated.hash,
            StateKey::compute_hash(mutated.addr, mutated.field, mutated.slot));
  EXPECT_NE(mutated.hash, s.hash);
}

TEST(StateKeyHash, SlotIgnoredForAccountFields) {
  // operator== ignores the slot for balance/nonce keys; the hash must too,
  // or equal keys would land in different buckets/stripes.
  StateKey b = StateKey::balance(kAlice);
  b.slot = U256{99};
  b.rehash();
  EXPECT_EQ(b, StateKey::balance(kAlice));
  EXPECT_EQ(b.hash, StateKey::balance(kAlice).hash);
}

TEST(StateKeyHash, SequentialStorageSlotsSpreadAcrossStripes) {
  // The sharded store uses hash & 63 as its stripe index.  Sequential
  // storage slots of one hot contract are the worst realistic case: without
  // an avalanche finalizer they would cluster into a few stripes and
  // serialize the executor threads.
  constexpr std::size_t kStripes = 64;
  constexpr std::size_t kKeys = 4096;  // 64 expected per stripe
  std::array<std::size_t, kStripes> counts{};
  for (std::size_t s = 0; s < kKeys; ++s)
    ++counts[StateKey::storage(kAlice, U256{s}).hash & (kStripes - 1)];
  for (std::size_t i = 0; i < kStripes; ++i) {
    EXPECT_GT(counts[i], 0u) << "stripe " << i << " empty";
    EXPECT_LT(counts[i], 160u) << "stripe " << i << " overloaded";
  }
}

TEST(StateKeyHash, SequentialAccountIdsSpreadAcrossStripes) {
  constexpr std::size_t kStripes = 64;
  constexpr std::size_t kKeys = 2048;  // 32 expected per stripe
  std::array<std::size_t, kStripes> counts{};
  for (std::size_t a = 0; a < kKeys; ++a)
    ++counts[StateKey::balance(Address::from_id(a + 1)).hash & (kStripes - 1)];
  for (std::size_t i = 0; i < kStripes; ++i) {
    EXPECT_GT(counts[i], 0u) << "stripe " << i << " empty";
    EXPECT_LT(counts[i], 112u) << "stripe " << i << " overloaded";
  }
}

TEST(StateKeyHash, SingleBitFlipsAvalanche) {
  // Flipping one input bit should flip ~32 of the 64 output bits.  Checks
  // both address bits and slot bits; guards the stamp-slot bit-slice
  // ((hash >> 6) & 0x3fff) as well as the stripe bits.
  double total_flips = 0;
  std::size_t samples = 0;
  const StateKey base_key = StateKey::storage(kAlice, U256{7});
  for (std::size_t byte = 0; byte < base_key.addr.bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      StateKey flipped = base_key;
      flipped.addr.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      flipped.rehash();
      const int flips = std::popcount(base_key.hash ^ flipped.hash);
      EXPECT_GE(flips, 8) << "byte " << byte << " bit " << bit;
      total_flips += flips;
      ++samples;
    }
  }
  for (int bit = 0; bit < 256; ++bit) {
    std::uint64_t limbs[4] = {0, 0, 0, 0};
    limbs[bit / 64] = 1ULL << (bit % 64);
    StateKey flipped = base_key;
    flipped.slot =
        base_key.slot ^ U256{limbs[3], limbs[2], limbs[1], limbs[0]};
    flipped.rehash();
    const int flips = std::popcount(base_key.hash ^ flipped.hash);
    EXPECT_GE(flips, 8) << "slot bit " << bit;
    total_flips += flips;
    ++samples;
  }
  const double avg = total_flips / static_cast<double>(samples);
  EXPECT_GT(avg, 26.0);
  EXPECT_LT(avg, 38.0);
}

TEST(VersionedState, ReadCacheHitsAndInvalidation) {
  WorldState base;
  base.set(StateKey::balance(kAlice), U256{100});
  VersionedState vs(base);
  const StateKey key = StateKey::balance(kAlice);
  ReadCache cache;

  EXPECT_EQ(vs.read_at(key, 0, cache), U256{100});  // miss, fills cache
  EXPECT_EQ(vs.read_at(key, 0, cache), U256{100});  // hit
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 1u);

  // A commit raises the key's stamp past the cached as_of: the stale entry
  // must be refreshed, not served.
  vs.commit({{key, U256{90}}}, 1);
  EXPECT_EQ(vs.read_at(key, 1, cache), U256{90});
  EXPECT_EQ(cache.misses, 2u);

  // Snapshot isolation through the cache: an older snapshot re-reads the
  // old value even though the cache last saw version 1.
  EXPECT_EQ(vs.read_at(key, 0, cache), U256{100});
  EXPECT_EQ(vs.read_at(key, 1, cache), U256{90});
}

TEST(VersionedState, NewerThanMatchesLatestVersion) {
  // newer_than's stamp fast path is an upper bound + exact fallback; on a
  // quiescent store it must agree with latest_version for every key and
  // snapshot, including keys sharing stamp slots.
  WorldState base;
  VersionedState vs(base);
  Xoshiro256 rng(0x7E57);
  std::vector<StateKey> keys;
  for (std::size_t a = 0; a < 64; ++a) {
    keys.push_back(StateKey::balance(Address::from_id(a + 1)));
    keys.push_back(StateKey::storage(Address::from_id(a + 1), U256{a}));
  }
  for (std::uint64_t v = 1; v <= 40; ++v) {
    std::vector<std::pair<StateKey, U256>> ws;
    std::unordered_map<StateKey, bool> seen;
    while (ws.size() < 4) {
      const StateKey& k = keys[rng.below(keys.size())];
      if (seen.try_emplace(k, true).second) ws.emplace_back(k, U256{v});
    }
    vs.commit(ws, v);
  }
  for (const StateKey& k : keys) {
    const std::uint64_t latest = vs.latest_version(k);
    const std::uint64_t snaps[] = {0,  latest > 0 ? latest - 1 : 0,
                                   latest, latest + 1, 40, 99};
    for (const std::uint64_t snap : snaps) {
      EXPECT_EQ(vs.newer_than(k, snap), latest > snap)
          << k.to_string() << " snap=" << snap << " latest=" << latest;
    }
  }
}

TEST(VersionedState, SnapshotVisibility) {
  WorldState base;
  base.set(StateKey::balance(kAlice), U256{100});
  VersionedState vs(base);
  const StateKey key = StateKey::balance(kAlice);

  EXPECT_EQ(vs.read_at(key, 0), U256{100});
  vs.commit({{key, U256{90}}}, 1);
  vs.commit({{key, U256{80}}}, 2);

  EXPECT_EQ(vs.read_at(key, 0), U256{100});  // old snapshot unaffected
  EXPECT_EQ(vs.read_at(key, 1), U256{90});
  EXPECT_EQ(vs.read_at(key, 2), U256{80});
  EXPECT_EQ(vs.read_at(key, 99), U256{80});  // future snapshot sees latest
  EXPECT_EQ(vs.latest_version(key), 2u);
  EXPECT_EQ(vs.committed_version(), 2u);
}

TEST(VersionedState, LatestVersionZeroForUntouchedKeys) {
  WorldState base;
  VersionedState vs(base);
  EXPECT_EQ(vs.latest_version(StateKey::balance(kBob)), 0u);
}

TEST(VersionedState, FlattenProducesFinalState) {
  WorldState base;
  base.set(StateKey::balance(kAlice), U256{100});
  base.set(StateKey::balance(kBob), U256{50});
  VersionedState vs(base);
  vs.commit({{StateKey::balance(kAlice), U256{70}}}, 1);
  vs.commit({{StateKey::storage(kBob, U256{3}), U256{5}}}, 2);

  WorldState out = base;
  vs.flatten_into(out);
  EXPECT_EQ(out.get(StateKey::balance(kAlice)), U256{70});
  EXPECT_EQ(out.get(StateKey::balance(kBob)), U256{50});
  EXPECT_EQ(out.get(StateKey::storage(kBob, U256{3})), U256{5});
}

TEST(ExecBuffer, ReadThroughAndRecord) {
  WorldState ws;
  ws.set(StateKey::balance(kAlice), U256{10});
  const WorldStateView view(ws);
  ExecBuffer buf(view);

  EXPECT_EQ(buf.read(StateKey::balance(kAlice)), U256{10});
  EXPECT_EQ(buf.read_set().size(), 1u);
  EXPECT_EQ(buf.read_set().at(StateKey::balance(kAlice)), U256{10});

  buf.write(StateKey::balance(kAlice), U256{5});
  EXPECT_EQ(buf.read(StateKey::balance(kAlice)), U256{5});  // own write
  EXPECT_EQ(buf.read_set().size(), 1u);  // own-write read not re-recorded
}

TEST(ExecBuffer, WriteSetIsSortedDeterministically) {
  WorldState ws;
  const WorldStateView view(ws);
  ExecBuffer buf(view);
  buf.write(StateKey::storage(kBob, U256{9}), U256{1});
  buf.write(StateKey::balance(kAlice), U256{2});
  buf.write(StateKey::nonce(kAlice), U256{3});
  const auto ws1 = buf.write_set();
  ASSERT_EQ(ws1.size(), 3u);
  EXPECT_TRUE(state_key_less(ws1[0].first, ws1[1].first));
  EXPECT_TRUE(state_key_less(ws1[1].first, ws1[2].first));
}

TEST(ExecBuffer, CheckpointRevert) {
  WorldState ws;
  ws.set(StateKey::balance(kAlice), U256{10});
  const WorldStateView view(ws);
  ExecBuffer buf(view);

  buf.write(StateKey::balance(kAlice), U256{8});
  const std::size_t cp = buf.checkpoint();
  buf.write(StateKey::balance(kAlice), U256{6});
  buf.write(StateKey::balance(kBob), U256{2});
  buf.revert_to(cp);

  EXPECT_EQ(buf.read(StateKey::balance(kAlice)), U256{8});
  EXPECT_EQ(buf.read(StateKey::balance(kBob)), U256{});
  // The revert removed Bob's write from the write set entirely.
  bool bob_present = false;
  for (const auto& [key, value] : buf.write_set())
    if (key == StateKey::balance(kBob)) bob_present = true;
  EXPECT_FALSE(bob_present);
}

TEST(ExecBuffer, NestedCheckpoints) {
  WorldState ws;
  const WorldStateView view(ws);
  ExecBuffer buf(view);
  const StateKey key = StateKey::storage(kAlice, U256{1});

  buf.write(key, U256{1});
  const std::size_t cp1 = buf.checkpoint();
  buf.write(key, U256{2});
  const std::size_t cp2 = buf.checkpoint();
  buf.write(key, U256{3});
  buf.revert_to(cp2);
  EXPECT_EQ(buf.read(key), U256{2});
  buf.revert_to(cp1);
  EXPECT_EQ(buf.read(key), U256{1});
}

TEST(ExecBuffer, ReadsSurviveRevert) {
  // A reverted frame still observed its reads; they stay conflict-relevant.
  WorldState ws;
  ws.set(StateKey::balance(kBob), U256{77});
  const WorldStateView view(ws);
  ExecBuffer buf(view);
  const std::size_t cp = buf.checkpoint();
  (void)buf.read(StateKey::balance(kBob));
  buf.revert_to(cp);
  EXPECT_EQ(buf.read_set().size(), 1u);
}

TEST(ExecBuffer, ResetClearsEverything) {
  WorldState ws;
  const WorldStateView view(ws);
  ExecBuffer buf(view);
  (void)buf.read(StateKey::balance(kAlice));
  buf.write(StateKey::balance(kBob), U256{1});
  buf.reset();
  EXPECT_TRUE(buf.read_set().empty());
  EXPECT_TRUE(buf.write_set().empty());
}

TEST(BlockSeeds, DirectoryKeysSetsByBlockHash) {
  BlockSeedDirectory dir;
  Hash256 h1{}, h2{};
  h1.bytes[0] = 0x11;
  h2.bytes[0] = 0x22;

  auto s1 = dir.for_block(h1);
  auto s2 = dir.for_block(h2);
  EXPECT_NE(s1.get(), s2.get());
  // Rendezvous: every replica validating the same block gets the same set.
  EXPECT_EQ(dir.for_block(h1).get(), s1.get());
  EXPECT_EQ(dir.stats().blocks, 2u);

  // Cells are per-account and created once.
  auto cell = s1->cell_for(kAlice);
  EXPECT_EQ(s1->cell_for(kAlice).get(), cell.get());
  EXPECT_NE(s1->cell_for(kBob).get(), cell.get());
  EXPECT_EQ(s1->size(), 2u);
  // The same account in a different block's set is a different cell.
  EXPECT_NE(s2->cell_for(kAlice).get(), cell.get());

  dir.clear();
  EXPECT_EQ(dir.stats().blocks, 0u);
}

// Replica post states of one block: identical content, built independently.
WorldState replica_post_state() {
  WorldState ws;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const Address addr = Address::from_id(0xB10C00 + id);
    for (std::uint64_t slot = 0; slot < 8; ++slot)
      ws.set(StateKey::storage(addr, U256{slot}), U256{id * 100 + slot});
  }
  return ws;
}

TEST(BlockSeeds, SiblingReplicasShareStorageFolds) {
  // Deterministic replay makes sibling replicas' post-block slot maps
  // bit-identical, so the first replica to commit publishes each dirty
  // account's storage trie and later replicas adopt it in O(1).
  const Hash256 expected = replica_post_state().state_root();

  auto seeds = std::make_shared<BlockSeedSet>();
  WorldState first = replica_post_state();
  first.adopt_block_seeds(seeds);
  EXPECT_EQ(first.state_root(), expected);  // sharing never changes the root
  EXPECT_GT(seeds->seeds_built.load(), 0u);
  EXPECT_EQ(seeds->seeds_adopted.load(), 0u);

  const std::uint64_t built = seeds->seeds_built.load();
  WorldState second = replica_post_state();
  second.adopt_block_seeds(seeds);
  EXPECT_EQ(second.state_root(), expected);
  EXPECT_EQ(seeds->seeds_built.load(), built);  // nothing re-published
  EXPECT_EQ(seeds->seeds_adopted.load(), built);  // every fold adopted
}

TEST(BlockSeeds, AdoptionIsOneShotPerCommitment) {
  // The set is consumed by the state_root() it was adopted for: later
  // commitments of the same state (or its copies) are a *different* post
  // state and must not rendezvous through stale cells.
  auto seeds = std::make_shared<BlockSeedSet>();
  WorldState ws = replica_post_state();
  ws.adopt_block_seeds(seeds);
  (void)ws.state_root();
  const std::uint64_t built = seeds->seeds_built.load();
  ASSERT_GT(built, 0u);

  // New writes on the committed state: folds rebuild without the set.
  ws.set(StateKey::storage(Address::from_id(0xB10C01), U256{0}), U256{777});
  (void)ws.state_root();
  EXPECT_EQ(seeds->seeds_built.load(), built);
  EXPECT_EQ(seeds->seeds_adopted.load(), 0u);

  // Copies do not inherit a pending adoption: the copy is no longer the
  // submitted post state, so its commitment must not touch the set.
  auto seeds2 = std::make_shared<BlockSeedSet>();
  WorldState fresh = replica_post_state();
  fresh.adopt_block_seeds(seeds2);
  WorldState copy = fresh;
  copy.set(StateKey::balance(kAlice), U256{1});
  (void)copy.state_root();
  EXPECT_EQ(seeds2->seeds_built.load(), 0u);
  EXPECT_EQ(seeds2->seeds_adopted.load(), 0u);
}

TEST(SnapshotView, ReadsAtFixedVersion) {
  WorldState base;
  base.set(StateKey::balance(kAlice), U256{100});
  VersionedState vs(base);
  const SnapshotView snap0(vs, 0);
  vs.commit({{StateKey::balance(kAlice), U256{55}}}, 1);
  const SnapshotView snap1(vs, 1);
  EXPECT_EQ(snap0.read(StateKey::balance(kAlice)), U256{100});
  EXPECT_EQ(snap1.read(StateKey::balance(kAlice)), U256{55});
}

}  // namespace
}  // namespace blockpilot::state
