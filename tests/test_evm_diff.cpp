// Differential testing: every binary/ternary arithmetic, comparison and
// bitwise opcode executed through the interpreter must agree with the U256
// reference implementation for random operands.
#include <gtest/gtest.h>

#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/rng.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::WorldState;
using state::WorldStateView;

const Address kContract = Address::from_id(0xD1FF);

/// Executes code that leaves one word on the stack and returns it.
U256 run_and_return(Assembler& a) {
  a.push(0).op(Op::MSTORE);
  a.push(0x20).push(0).op(Op::RETURN);
  WorldState ws;
  ws.set_code(kContract, a.assemble());
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);
  const WorldStateView view(ws);
  ExecBuffer buffer(view);
  TxContext tx;
  tx.origin = Address::from_id(1);
  tx.gas_price = U256{1};
  tx.block = &block;
  Message msg;
  msg.caller = tx.origin;
  msg.to = kContract;
  msg.gas = 10'000'000;
  const CallResult r = execute_call(buffer, tx, msg);
  EXPECT_EQ(r.status, Status::kSuccess);
  return U256::from_be_bytes(std::span(r.output));
}

U256 eval_binary(Op op, const U256& a, const U256& b) {
  Assembler assembler;
  assembler.push(b).push(a).op(op);  // a on top = first popped
  return run_and_return(assembler);
}

U256 eval_ternary(Op op, const U256& a, const U256& b, const U256& m) {
  Assembler assembler;
  assembler.push(m).push(b).push(a).op(op);
  return run_and_return(assembler);
}

U256 rand_word(Xoshiro256& rng) {
  // Mix full-width and small operands to hit fast paths and edge cases.
  switch (rng.below(4)) {
    case 0: return U256{rng.below(10)};
    case 1: return U256{rng()};
    case 2: return U256(rng(), rng(), 0, rng());
    default: return U256(rng(), rng(), rng(), rng());
  }
}

class EvmDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmDiffTest, BinaryOpsMatchReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const U256 a = rand_word(rng);
    const U256 b = rand_word(rng);

    EXPECT_EQ(eval_binary(Op::ADD, a, b), a + b);
    EXPECT_EQ(eval_binary(Op::SUB, a, b), a - b);
    EXPECT_EQ(eval_binary(Op::MUL, a, b), a * b);
    EXPECT_EQ(eval_binary(Op::DIV, a, b), a / b);
    EXPECT_EQ(eval_binary(Op::MOD, a, b), a % b);
    EXPECT_EQ(eval_binary(Op::SDIV, a, b), U256::sdiv(a, b));
    EXPECT_EQ(eval_binary(Op::SMOD, a, b), U256::smod(a, b));
    EXPECT_EQ(eval_binary(Op::AND, a, b), a & b);
    EXPECT_EQ(eval_binary(Op::OR, a, b), a | b);
    EXPECT_EQ(eval_binary(Op::XOR, a, b), a ^ b);
    EXPECT_EQ(eval_binary(Op::LT, a, b), U256{a < b ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::GT, a, b), U256{a > b ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::SLT, a, b),
              U256{U256::signed_less(a, b) ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::SGT, a, b),
              U256{U256::signed_less(b, a) ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::EQ, a, b), U256{a == b ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::BYTE, a, b), U256::byte(a, b));
    EXPECT_EQ(eval_binary(Op::SIGNEXTEND, a, b), U256::signextend(a, b));
  }
}

TEST_P(EvmDiffTest, ShiftsMatchReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const U256 x = rand_word(rng);
    const U256 shift{rng.below(300)};  // includes >255 overshoot
    const unsigned s = static_cast<unsigned>(shift.low64());
    EXPECT_EQ(eval_binary(Op::SHL, shift, x),
              s < 256 ? x.shl(s) : U256{});
    EXPECT_EQ(eval_binary(Op::SHR, shift, x),
              s < 256 ? x.shr(s) : U256{});
  }
}

TEST_P(EvmDiffTest, TernaryOpsMatchReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const U256 a = rand_word(rng);
    const U256 b = rand_word(rng);
    const U256 m = rand_word(rng);
    EXPECT_EQ(eval_ternary(Op::ADDMOD, a, b, m), U256::addmod(a, b, m));
    EXPECT_EQ(eval_ternary(Op::MULMOD, a, b, m), U256::mulmod(a, b, m));
  }
}

TEST_P(EvmDiffTest, ExpMatchesReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const U256 base = rand_word(rng);
    const U256 exponent{rng.below(1000)};
    EXPECT_EQ(eval_binary(Op::EXP, base, exponent),
              U256::exp(base, exponent));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmDiffTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace blockpilot::evm
