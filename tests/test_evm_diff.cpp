// Differential testing: every binary/ternary arithmetic, comparison and
// bitwise opcode executed through the interpreter must agree with the U256
// reference implementation for random operands.
#include <gtest/gtest.h>

#include "evm/assembler.hpp"
#include "evm/interpreter.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/rng.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::WorldState;
using state::WorldStateView;

const Address kContract = Address::from_id(0xD1FF);

/// Executes code that leaves one word on the stack and returns it.
U256 run_and_return(Assembler& a) {
  a.push(0).op(Op::MSTORE);
  a.push(0x20).push(0).op(Op::RETURN);
  WorldState ws;
  ws.set_code(kContract, a.assemble());
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);
  const WorldStateView view(ws);
  ExecBuffer buffer(view);
  TxContext tx;
  tx.origin = Address::from_id(1);
  tx.gas_price = U256{1};
  tx.block = &block;
  Message msg;
  msg.caller = tx.origin;
  msg.to = kContract;
  msg.gas = 10'000'000;
  const CallResult r = execute_call(buffer, tx, msg);
  EXPECT_EQ(r.status, Status::kSuccess);
  return U256::from_be_bytes(std::span(r.output));
}

U256 eval_binary(Op op, const U256& a, const U256& b) {
  Assembler assembler;
  assembler.push(b).push(a).op(op);  // a on top = first popped
  return run_and_return(assembler);
}

U256 eval_ternary(Op op, const U256& a, const U256& b, const U256& m) {
  Assembler assembler;
  assembler.push(m).push(b).push(a).op(op);
  return run_and_return(assembler);
}

U256 rand_word(Xoshiro256& rng) {
  // Mix full-width and small operands to hit fast paths and edge cases.
  switch (rng.below(4)) {
    case 0: return U256{rng.below(10)};
    case 1: return U256{rng()};
    case 2: return U256(rng(), rng(), 0, rng());
    default: return U256(rng(), rng(), rng(), rng());
  }
}

class EvmDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmDiffTest, BinaryOpsMatchReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const U256 a = rand_word(rng);
    const U256 b = rand_word(rng);

    EXPECT_EQ(eval_binary(Op::ADD, a, b), a + b);
    EXPECT_EQ(eval_binary(Op::SUB, a, b), a - b);
    EXPECT_EQ(eval_binary(Op::MUL, a, b), a * b);
    EXPECT_EQ(eval_binary(Op::DIV, a, b), a / b);
    EXPECT_EQ(eval_binary(Op::MOD, a, b), a % b);
    EXPECT_EQ(eval_binary(Op::SDIV, a, b), U256::sdiv(a, b));
    EXPECT_EQ(eval_binary(Op::SMOD, a, b), U256::smod(a, b));
    EXPECT_EQ(eval_binary(Op::AND, a, b), a & b);
    EXPECT_EQ(eval_binary(Op::OR, a, b), a | b);
    EXPECT_EQ(eval_binary(Op::XOR, a, b), a ^ b);
    EXPECT_EQ(eval_binary(Op::LT, a, b), U256{a < b ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::GT, a, b), U256{a > b ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::SLT, a, b),
              U256{U256::signed_less(a, b) ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::SGT, a, b),
              U256{U256::signed_less(b, a) ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::EQ, a, b), U256{a == b ? 1u : 0u});
    EXPECT_EQ(eval_binary(Op::BYTE, a, b), U256::byte(a, b));
    EXPECT_EQ(eval_binary(Op::SIGNEXTEND, a, b), U256::signextend(a, b));
  }
}

TEST_P(EvmDiffTest, ShiftsMatchReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const U256 x = rand_word(rng);
    const U256 shift{rng.below(300)};  // includes >255 overshoot
    const unsigned s = static_cast<unsigned>(shift.low64());
    EXPECT_EQ(eval_binary(Op::SHL, shift, x),
              s < 256 ? x.shl(s) : U256{});
    EXPECT_EQ(eval_binary(Op::SHR, shift, x),
              s < 256 ? x.shr(s) : U256{});
  }
}

TEST_P(EvmDiffTest, TernaryOpsMatchReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const U256 a = rand_word(rng);
    const U256 b = rand_word(rng);
    const U256 m = rand_word(rng);
    EXPECT_EQ(eval_ternary(Op::ADDMOD, a, b, m), U256::addmod(a, b, m));
    EXPECT_EQ(eval_ternary(Op::MULMOD, a, b, m), U256::mulmod(a, b, m));
  }
}

TEST_P(EvmDiffTest, ExpMatchesReference) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const U256 base = rand_word(rng);
    const U256 exponent{rng.below(1000)};
    EXPECT_EQ(eval_binary(Op::EXP, base, exponent),
              U256::exp(base, exponent));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmDiffTest,
                         ::testing::Values(101u, 202u, 303u));

// ---------------------------------------------------------------------------
// Fast-vs-reference interpreter gate.  The analysis-driven dispatch must be
// bit-identical to the frozen pre-analysis interpreter on every observable:
// status, gas_left, output, logs and the buffer's write set — over the same
// corpora test_evm_fuzz runs (uniform random bytes and structured SSTORE
// programs).  Any divergence in block-level gas pre-charging, the mid-block
// degrade path, or stack pre-checks shows up here as a gas or status skew.
// ---------------------------------------------------------------------------

struct Observed {
  Status status;
  std::uint64_t gas_left;
  Bytes output;
  std::vector<LogRecord> logs;
  std::vector<std::pair<state::StateKey, U256>> writes;
};

bool same_logs(const std::vector<LogRecord>& a,
               const std::vector<LogRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].address == b[i].address) || a[i].topics != b[i].topics ||
        a[i].data != b[i].data)
      return false;
  }
  return true;
}

bool same_writes(const std::vector<std::pair<state::StateKey, U256>>& a,
                 const std::vector<std::pair<state::StateKey, U256>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].first == b[i].first) || a[i].second != b[i].second)
      return false;
  }
  return true;
}

Observed run_once(const WorldState& ws, const BlockContext& block,
                  const Message& msg, bool reference) {
  const WorldStateView view(ws);
  ExecBuffer buffer(view);
  TxContext tx;
  tx.origin = msg.caller;
  tx.gas_price = U256{1};
  tx.block = &block;
  tx.use_reference_interpreter = reference;
  const CallResult r = execute_call(buffer, tx, msg);
  Observed o{r.status, r.gas_left, r.output, r.logs, buffer.write_set()};
  return o;
}

void expect_identical(const WorldState& ws, const BlockContext& block,
                      const Message& msg) {
  const Observed ref = run_once(ws, block, msg, /*reference=*/true);
  const Observed fast = run_once(ws, block, msg, /*reference=*/false);
  ASSERT_EQ(static_cast<int>(fast.status), static_cast<int>(ref.status));
  ASSERT_EQ(fast.gas_left, ref.gas_left);
  ASSERT_EQ(fast.output, ref.output);
  ASSERT_TRUE(same_logs(fast.logs, ref.logs));
  ASSERT_TRUE(same_writes(fast.writes, ref.writes));
}

class EvmInterpreterEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmInterpreterEquivalence, RandomBytecodeBitIdentical) {
  Xoshiro256 rng(GetParam());
  WorldState ws;
  const Address caller = Address::from_id(1);
  const Address contract = Address::from_id(2);
  ws.set(state::StateKey::balance(caller), U256{1'000'000});

  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);

  for (int iter = 0; iter < 300; ++iter) {
    Bytes code(rng.below(200) + 1, 0);
    for (auto& b : code) b = static_cast<std::uint8_t>(rng.below(256));
    ws.set_code(contract, code);

    Bytes calldata(rng.below(96), 0);
    for (auto& b : calldata) b = static_cast<std::uint8_t>(rng.below(256));

    Message msg;
    msg.caller = caller;
    msg.to = contract;
    msg.value = U256{rng.below(100)};
    msg.data = std::move(calldata);
    msg.gas = 100'000;

    expect_identical(ws, block, msg);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmInterpreterEquivalence,
                         ::testing::Values(0x5eedu, 0xfeedu, 0xbeefu,
                                           0xcafeu, 12345u));

class EvmInterpreterEquivalenceStructured
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvmInterpreterEquivalenceStructured, StorageProgramsBitIdentical) {
  Xoshiro256 rng(GetParam());
  WorldState ws;
  const Address contract = Address::from_id(7);
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);

  for (int iter = 0; iter < 100; ++iter) {
    Bytes code;
    const std::size_t ops = rng.below(20) + 1;
    for (std::size_t i = 0; i < ops; ++i) {
      code.push_back(0x60);  // PUSH1 value
      code.push_back(static_cast<std::uint8_t>(rng.below(250) + 1));
      code.push_back(0x60);  // PUSH1 slot
      code.push_back(static_cast<std::uint8_t>(rng.below(4)));
      code.push_back(0x55);  // SSTORE
    }
    code.push_back(0x00);  // STOP
    ws.set_code(contract, code);

    Message msg;
    msg.caller = Address::from_id(1);
    msg.to = contract;
    msg.gas = 10'000'000;

    expect_identical(ws, block, msg);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvmInterpreterEquivalenceStructured,
                         ::testing::Values(1u, 2u, 3u));

// Tight-budget sweep: the same program run at every gas budget from 0 up to
// its full cost pins the degrade path (mid-block OOG points) exactly —
// every budget must fail (or succeed) at the same point with the same
// gas_left in both interpreters.
TEST(EvmInterpreterEquivalence, GasBudgetSweepBitIdentical) {
  WorldState ws;
  const Address contract = Address::from_id(9);
  BlockContext block;
  block.coinbase = Address::from_id(0xFEE);

  // Memory expansion + SHA3 + storage + a loop: plenty of dynamic charges
  // landing mid-block.
  Assembler a;
  a.push(5).push(0).op(Op::MSTORE);                 // mem[0] = 5
  const std::string loop = "loop";
  a.label(loop);
  a.push(0).op(Op::MLOAD);                          // counter
  a.op(Op::ISZERO);
  a.push_label("done").op(Op::JUMPI);
  a.push(64).push(0).op(Op::SHA3);                  // dynamic word cost
  a.push(0).op(Op::SSTORE);                         // storage write
  a.push(1).push(0).op(Op::MLOAD).op(Op::SUB);      // counter - 1
  a.push(0).op(Op::MSTORE);
  a.push_label(loop).op(Op::JUMP);
  a.label("done");
  a.push(0x20).push(0).op(Op::RETURN);
  ws.set_code(contract, a.assemble());

  Message msg;
  msg.caller = Address::from_id(1);
  msg.to = contract;

  // Full-budget run to learn the true cost, then sweep every budget below.
  msg.gas = 1'000'000;
  const Observed full = run_once(ws, block, msg, /*reference=*/true);
  ASSERT_EQ(static_cast<int>(full.status),
            static_cast<int>(Status::kSuccess));
  const std::uint64_t cost = msg.gas - full.gas_left;

  for (std::uint64_t budget = 0; budget <= cost + 2; ++budget) {
    msg.gas = budget;
    expect_identical(ws, block, msg);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "diverged at gas budget " << budget;
      return;
    }
  }
}

}  // namespace
}  // namespace blockpilot::evm
