// Tests for the extended CALL family: DELEGATECALL, STATICCALL, the
// return-data buffer (EIP-211 semantics) and EXTCODE* introspection.
#include <gtest/gtest.h>

#include "crypto/keccak.hpp"
#include "evm/assembler.hpp"
#include "evm/gas.hpp"
#include "evm/interpreter.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"

namespace blockpilot::evm {
namespace {

using state::ExecBuffer;
using state::StateKey;
using state::WorldState;
using state::WorldStateView;

const Address kCaller = Address::from_id(0xAAAA);
const Address kProxy = Address::from_id(0x9997);
const Address kTarget = Address::from_id(0x7A46);

struct CallRunner {
  WorldState ws;
  BlockContext block;

  CallRunner() {
    block.coinbase = Address::from_id(0xFEE);
    ws.set(StateKey::balance(kCaller), U256{1'000'000'000});
  }

  CallResult call(const Address& to, std::uint64_t gas_budget = 2'000'000) {
    view.emplace(ws);
    buffer.emplace(*view);
    TxContext tx;
    tx.origin = kCaller;
    tx.gas_price = U256{1};
    tx.block = &block;
    Message msg;
    msg.caller = kCaller;
    msg.to = to;
    msg.gas = gas_budget;
    return execute_call(*buffer, tx, msg);
  }

  U256 word(const CallResult& r) const {
    return U256::from_be_bytes(std::span(r.output));
  }

  std::optional<WorldStateView> view;
  std::optional<ExecBuffer> buffer;
};

/// callee: stores 77 to slot 1, returns the 32-byte word 0xabcd.
std::vector<std::uint8_t> writer_callee() {
  Assembler a;
  a.push(77).push(1).op(Op::SSTORE);
  a.push(0xabcd).push(0).op(Op::MSTORE);
  a.push(0x20).push(0).op(Op::RETURN);
  return a.assemble();
}

/// Emits a 6-operand call (no value) of `kind` to `target`, output region
/// [0, 32).
void emit_call6(Assembler& a, Op kind, const Address& target,
                std::uint64_t fwd) {
  a.push(0x20);  // outLen
  a.push(0);     // outOff
  a.push(0);     // inLen
  a.push(0);     // inOff
  a.push(target);
  a.push(fwd);
  a.op(kind);
}

/// Emits a 7-operand zero-value CALL with no output region.
void emit_call7_no_out(Assembler& a, const Address& target,
                       std::uint64_t fwd) {
  a.push(0).push(0).push(0).push(0).push(0);  // outLen outOff inLen inOff val
  a.push(target);
  a.push(fwd);
  a.op(Op::CALL);
}

TEST(DelegateCall, RunsTargetCodeInCallerStorage) {
  CallRunner r;
  r.ws.set_code(kTarget, writer_callee());
  Assembler a;
  emit_call6(a, Op::DELEGATECALL, kTarget, 500'000);
  a.op(Op::STOP);
  r.ws.set_code(kProxy, a.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  // The write landed in the PROXY's storage, not the target's.
  EXPECT_EQ(r.buffer->read(StateKey::storage(kProxy, U256{1})), U256{77});
  EXPECT_EQ(r.buffer->read(StateKey::storage(kTarget, U256{1})), U256{});
}

TEST(DelegateCall, PreservesCaller) {
  // Target returns CALLER; proxy delegatecalls it: the observed caller is
  // the ORIGINAL caller, not the proxy.
  CallRunner r;
  Assembler target;
  target.op(Op::CALLER);
  target.push(0).op(Op::MSTORE);
  target.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kTarget, target.assemble());

  Assembler proxy;
  emit_call6(proxy, Op::DELEGATECALL, kTarget, 500'000);
  proxy.op(Op::POP);
  proxy.push(0).op(Op::MLOAD);
  proxy.push(0).op(Op::MSTORE);
  proxy.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, proxy.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(r.word(result), kCaller.to_u256());
}

TEST(StaticCall, ReadsSucceed) {
  CallRunner r;
  r.ws.set(StateKey::storage(kTarget, U256{3}), U256{99});
  Assembler target;
  target.push(3).op(Op::SLOAD);
  target.push(0).op(Op::MSTORE);
  target.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kTarget, target.assemble());

  Assembler outer;
  emit_call6(outer, Op::STATICCALL, kTarget, 500'000);
  outer.op(Op::POP);
  outer.push(0).op(Op::MLOAD);
  outer.push(0).op(Op::MSTORE);
  outer.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, outer.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(r.word(result), U256{99});
}

TEST(StaticCall, WritesAreRejected) {
  CallRunner r;
  r.ws.set_code(kTarget, writer_callee());  // does an SSTORE
  Assembler outer;
  emit_call6(outer, Op::STATICCALL, kTarget, 500'000);
  outer.push(0).op(Op::MSTORE);  // call status -> return word
  outer.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, outer.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(r.word(result), U256{0});  // inner frame died on SSTORE
  EXPECT_EQ(r.buffer->read(StateKey::storage(kTarget, U256{1})), U256{});
}

TEST(StaticCall, StaticnessIsTransitive) {
  // static frame -> plain CALL -> SSTORE must still be rejected.
  const Address middle = Address::from_id(0x3333);
  CallRunner r;
  r.ws.set_code(kTarget, writer_callee());
  Assembler mid;
  mid.push(0).push(0).push(0).push(0).push(0);
  mid.push(kTarget);
  mid.push(400'000);
  mid.op(Op::CALL);               // [status]
  mid.push(0).op(Op::MSTORE);     // mem[0..32) = inner status
  mid.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(middle, mid.assemble());

  Assembler outer;
  emit_call6(outer, Op::STATICCALL, middle, 800'000);
  outer.op(Op::POP);
  outer.push(0).op(Op::MLOAD);    // middle's reported inner status
  outer.push(0).op(Op::MSTORE);
  outer.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, outer.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(r.word(result), U256{0});
  EXPECT_EQ(r.buffer->read(StateKey::storage(kTarget, U256{1})), U256{});
}

TEST(ReturnData, SizeAndCopy) {
  CallRunner r;
  r.ws.set_code(kTarget, writer_callee());  // returns word 0xabcd
  Assembler a;
  emit_call7_no_out(a, kTarget, 500'000);  // no output region
  a.op(Op::POP);
  // Copy the full return buffer to memory 0 via RETURNDATACOPY and return
  // it, after checking RETURNDATASIZE == 32 by storing size at mem 32.
  a.op(Op::RETURNDATASIZE);        // [32]
  a.push(0x20).op(Op::MSTORE);     // mem[32..64) = size
  a.push(0x20);                    // len
  a.push(0);                       // dataOff
  a.push(0);                       // memOff (top)
  a.op(Op::RETURNDATACOPY);
  a.push(0x40).push(0).op(Op::RETURN);  // return mem[0..64)
  r.ws.set_code(kProxy, a.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  ASSERT_EQ(result.output.size(), 64u);
  EXPECT_EQ(U256::from_be_bytes(std::span(result.output).subspan(0, 32)),
            U256{0xabcd});
  EXPECT_EQ(U256::from_be_bytes(std::span(result.output).subspan(32, 32)),
            U256{32});
}

TEST(ReturnData, OutOfBoundsCopyFails) {
  CallRunner r;
  r.ws.set_code(kTarget, writer_callee());
  Assembler a;
  emit_call7_no_out(a, kTarget, 500'000);
  a.op(Op::POP);
  a.push(0x40);  // len 64 > 32 available
  a.push(0);     // dataOff
  a.push(0);     // memOff
  a.op(Op::RETURNDATACOPY);
  a.op(Op::STOP);
  r.ws.set_code(kProxy, a.assemble());
  EXPECT_EQ(r.call(kProxy).status, Status::kInvalid);
}

TEST(ReturnData, EmptyBeforeAnyCall) {
  CallRunner r;
  Assembler a;
  a.op(Op::RETURNDATASIZE);
  a.push(0).op(Op::MSTORE);
  a.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, a.assemble());
  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(r.word(result), U256{0});
}

TEST(ReturnData, RevertDataIsVisible) {
  // A callee that REVERTs with data: the caller sees status 0 but can read
  // the revert payload via returndata (Solidity error propagation shape).
  CallRunner r;
  Assembler target;
  target.push(0xdead).push(0).op(Op::MSTORE);
  target.push(0x20).push(0).op(Op::REVERT);
  r.ws.set_code(kTarget, target.assemble());

  Assembler a;
  emit_call7_no_out(a, kTarget, 500'000);
  a.op(Op::POP);  // status (0)
  a.push(0x20).push(0).push(0).op(Op::RETURNDATACOPY);
  a.push(0x20).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, a.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(r.word(result), U256{0xdead});
}

TEST(ExtCode, SizeAndHash) {
  CallRunner r;
  const auto target_code = writer_callee();
  r.ws.set_code(kTarget, target_code);

  Assembler a;
  a.push(kTarget).op(Op::EXTCODESIZE);  // [size]
  a.push(0).op(Op::MSTORE);
  a.push(kTarget).op(Op::EXTCODEHASH);  // [hash]
  a.push(0x20).op(Op::MSTORE);
  a.push(0x40).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, a.assemble());

  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  ASSERT_EQ(result.output.size(), 64u);
  EXPECT_EQ(U256::from_be_bytes(std::span(result.output).subspan(0, 32)),
            U256{target_code.size()});
  const crypto::Digest expected = crypto::keccak256(std::span(target_code));
  EXPECT_EQ(U256::from_be_bytes(std::span(result.output).subspan(32, 32)),
            U256::from_be_bytes(std::span(expected)));
}

TEST(ExtCode, CodelessAddressIsZero) {
  CallRunner r;
  Assembler a;
  a.push(Address::from_id(0x404)).op(Op::EXTCODEHASH);
  a.push(0).op(Op::MSTORE);
  a.push(Address::from_id(0x404)).op(Op::EXTCODESIZE);
  a.push(0x20).op(Op::MSTORE);
  a.push(0x40).push(0).op(Op::RETURN);
  r.ws.set_code(kProxy, a.assemble());
  const CallResult result = r.call(kProxy);
  ASSERT_EQ(result.status, Status::kSuccess);
  EXPECT_EQ(U256::from_be_bytes(std::span(result.output).subspan(0, 32)),
            U256{});
  EXPECT_EQ(U256::from_be_bytes(std::span(result.output).subspan(32, 32)),
            U256{});
}

}  // namespace
}  // namespace blockpilot::evm
