// Asynchronous state-commitment subsystem tests: incremental WorldState
// roots (differential vs the from-scratch oracle), the hash-consed
// NodeCache, CommitPipeline ordering, and the async integration through
// validator / pipeline / blockchain.
#include <gtest/gtest.h>

#include <random>

#include "commit/commit_pipeline.hpp"
#include "core/blockpilot.hpp"
#include "support/rng.hpp"
#include "trie/node_cache.hpp"

namespace blockpilot {
namespace {

using state::StateKey;
using state::WorldState;

// ---------------------------------------------------------------------------
// NodeCache

TEST(NodeCache, InternsAndCounts) {
  trie::NodeCache cache(4096);
  const std::vector<std::uint8_t> enc = {0x01, 0x02, 0x03, 0x04};
  const Hash256 expected{crypto::keccak256(std::span(enc))};

  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  // Byte accounting: one resident entry, charged encoding + overhead.
  EXPECT_EQ(s.bytes, trie::NodeCache::entry_bytes(enc.size()));
  EXPECT_GE(s.capacity, 4096u);

  // Reverse index resolves the encoding by hash.
  const auto back = cache.encoding_of(expected);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, enc);
}

TEST(NodeCache, ZeroCapacityBypasses) {
  trie::NodeCache cache(0);
  const std::vector<std::uint8_t> enc = {0xaa, 0xbb};
  const Hash256 expected{crypto::keccak256(std::span(enc))};
  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(NodeCache, EvictsWhenFullAndStaysCorrect) {
  // ~1 resident 3-byte entry per shard: every shard is constantly evicting.
  trie::NodeCache cache(8 * trie::NodeCache::entry_bytes(3));
  std::vector<std::vector<std::uint8_t>> encodings;
  for (std::uint8_t i = 0; i < 64; ++i)
    encodings.push_back({i, static_cast<std::uint8_t>(i + 1), 0x7f});

  // Fill far past capacity, then re-query everything: answers must stay
  // bit-identical to plain keccak whether served from cache or recomputed.
  for (int round = 0; round < 2; ++round) {
    for (const auto& enc : encodings) {
      const Hash256 expected{crypto::keccak256(std::span(enc))};
      EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
    }
  }
  const auto s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, s.capacity);
  EXPECT_EQ(s.bytes, s.entries * trie::NodeCache::entry_bytes(3));
}

TEST(NodeCache, ShrinkingCapacityEvicts) {
  trie::NodeCache cache(std::size_t{1} << 20);
  for (std::uint8_t i = 0; i < 100; ++i) {
    const std::vector<std::uint8_t> enc = {i, 0x55,
                                           static_cast<std::uint8_t>(0xff - i)};
    cache.hash_of(std::span(enc));
  }
  EXPECT_EQ(cache.stats().entries, 100u);
  const std::size_t shrunk = 8 * trie::NodeCache::entry_bytes(3);
  cache.set_capacity(shrunk);
  const auto s = cache.stats();
  EXPECT_LE(s.bytes, s.capacity);
  EXPECT_LE(s.entries, 8u);
  EXPECT_GT(s.evictions, 0u);
  // Survivors still answer correctly after the shrink sweep.
  for (std::uint8_t i = 0; i < 100; ++i) {
    const std::vector<std::uint8_t> enc = {i, 0x55,
                                           static_cast<std::uint8_t>(0xff - i)};
    EXPECT_EQ(cache.hash_of(std::span(enc)),
              Hash256{crypto::keccak256(std::span(enc))});
  }
}

// Mirror of NodeCache's internal shard choice (FNV over a 16-byte prefix,
// xor size, mod 8) so the CLOCK tests below can pin all traffic to one
// shard.  Whitebox by design: if the shard function changes, update both.
std::size_t shard_index_of(const std::vector<std::uint8_t>& enc) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::size_t probe = enc.size() < 16 ? enc.size() : 16;
  for (std::size_t i = 0; i < probe; ++i) {
    h ^= enc[i];
    h *= 0x100000001b3ULL;
  }
  h ^= enc.size();
  return h % 8;
}

// 3-byte encodings that all land in shard 0, in generation order.
std::vector<std::vector<std::uint8_t>> shard0_encodings(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::uint32_t seed = 0; out.size() < n; ++seed) {
    std::vector<std::uint8_t> enc = {static_cast<std::uint8_t>(seed),
                                     static_cast<std::uint8_t>(seed >> 8),
                                     static_cast<std::uint8_t>(seed >> 16)};
    if (shard_index_of(enc) == 0) out.push_back(std::move(enc));
  }
  return out;
}

TEST(NodeCache, ClockGivesSecondChanceToHitEntries) {
  // Budget: exactly two 3-byte entries per shard.
  trie::NodeCache cache(8 * 2 * trie::NodeCache::entry_bytes(3));
  const auto encs = shard0_encodings(3);
  const auto& a = encs[0];
  const auto& b = encs[1];
  const auto& c = encs[2];

  cache.hash_of(std::span(a));
  cache.hash_of(std::span(b));  // shard 0 now full: [a, b]
  cache.hash_of(std::span(a));  // sets a's reference bit

  // Inserting c forces one eviction.  The sweep meets a first (referenced:
  // bit cleared, spared) and evicts b — the second chance in action.
  cache.hash_of(std::span(c));
  const auto before = cache.stats();
  cache.hash_of(std::span(a));
  EXPECT_EQ(cache.stats().hits, before.hits + 1);  // a survived
  cache.hash_of(std::span(b));
  EXPECT_EQ(cache.stats().misses, before.misses + 1);  // b did not
}

TEST(NodeCache, ClockDegeneratesToFifoWithoutHits) {
  trie::NodeCache cache(8 * 2 * trie::NodeCache::entry_bytes(3));
  const auto encs = shard0_encodings(3);
  const auto& a = encs[0];
  const auto& b = encs[1];
  const auto& c = encs[2];

  cache.hash_of(std::span(a));
  cache.hash_of(std::span(b));
  cache.hash_of(std::span(c));  // no hits anywhere: evicts a (the oldest)
  const auto before = cache.stats();
  cache.hash_of(std::span(b));
  EXPECT_EQ(cache.stats().hits, before.hits + 1);  // b survived
  cache.hash_of(std::span(a));
  EXPECT_EQ(cache.stats().misses, before.misses + 1);  // a was evicted
}

TEST(NodeCache, JumboEncodingBypassesCache) {
  trie::NodeCache cache(8 * 2 * trie::NodeCache::entry_bytes(3));
  const auto resident = shard0_encodings(1);
  cache.hash_of(std::span(resident[0]));
  const auto before = cache.stats();

  // An encoding whose charge alone exceeds a shard's budget is hashed but
  // never admitted — it must not wipe out the resident entries.
  std::vector<std::uint8_t> jumbo(4096, 0xEE);
  EXPECT_EQ(cache.hash_of(std::span(jumbo)),
            Hash256{crypto::keccak256(std::span(jumbo))});
  const auto after = cache.stats();
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_EQ(after.evictions, before.evictions);
}

TEST(NodeCache, ClockPropertyRandomizedOps) {
  // Property sweep: under random insert/hit traffic with mixed encoding
  // sizes, the byte budget is never exceeded, accounting stays exact, and
  // the counters are consistent with the operation count.
  trie::NodeCache cache(4 * 1024);
  std::mt19937_64 rng(0xC10C);
  std::uint64_t ops = 0;
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 200; ++i) {
    const std::size_t len = 1 + rng() % 200;
    std::vector<std::uint8_t> enc(len);
    for (auto& byte : enc) byte = static_cast<std::uint8_t>(rng());
    pool.push_back(std::move(enc));
  }
  for (int op = 0; op < 3000; ++op) {
    const auto& enc = pool[rng() % pool.size()];
    ++ops;
    ASSERT_EQ(cache.hash_of(std::span(enc)),
              Hash256{crypto::keccak256(std::span(enc))});
    if (op % 64 == 0) {
      const auto s = cache.stats();
      ASSERT_LE(s.bytes, s.capacity);
      ASSERT_LE(s.evictions, s.misses);
    }
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, ops);
  EXPECT_LE(s.bytes, s.capacity);
  EXPECT_GT(s.evictions, 0u);
}

TEST(NodeCache, TinyLfuScanCannotEvictReheatedWorkingSet) {
  // Property: once a working set is hot (re-used often enough to register in
  // the frequency sketch), an arbitrarily long one-shot scan must not push
  // it out — every scan candidate's estimated frequency is below any hot
  // victim's, so admission denies the trade.  All traffic is pinned to
  // shard 0, whose budget holds exactly the working set.
  constexpr std::size_t kWorking = 4;
  constexpr std::size_t kScan = 400;
  trie::NodeCache cache(8 * kWorking * trie::NodeCache::entry_bytes(3));
  const auto encs = shard0_encodings(kWorking + kScan);

  // Heat: enough re-reads to lift the sketch estimate well above a
  // one-shot's, but far below the sketch's aging period.
  for (int round = 0; round < 12; ++round)
    for (std::size_t i = 0; i < kWorking; ++i)
      cache.hash_of(std::span(encs[i]));

  const auto heated = cache.stats();
  EXPECT_EQ(heated.misses, kWorking);
  EXPECT_EQ(heated.rejected, 0u);

  // Scan: every encoding distinct, each seen exactly once.
  for (std::size_t i = kWorking; i < kWorking + kScan; ++i) {
    ASSERT_EQ(cache.hash_of(std::span(encs[i])),
              Hash256{crypto::keccak256(std::span(encs[i]))});
  }

  // Every scan miss was denied admission: no hot entry was traded away.
  const auto scanned = cache.stats();
  EXPECT_EQ(scanned.rejected - heated.rejected, kScan);
  EXPECT_EQ(scanned.evictions, heated.evictions);

  // The working set still answers from cache — zero new misses.
  for (std::size_t i = 0; i < kWorking; ++i)
    cache.hash_of(std::span(encs[i]));
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, scanned.misses);
  EXPECT_EQ(after.hits, scanned.hits + kWorking);

  // Reheat-and-scan again: resistance is not a first-scan fluke.
  for (std::size_t i = kWorking; i < kWorking + kScan; ++i)
    cache.hash_of(std::span(encs[i]));
  for (std::size_t i = 0; i < kWorking; ++i)
    cache.hash_of(std::span(encs[i]));
  EXPECT_EQ(cache.stats().misses, after.misses + kScan);  // scans still miss
}

// ---------------------------------------------------------------------------
// Incremental WorldState commitment vs the from-scratch oracle

Address addr_of(std::uint64_t id) { return Address::from_id(id); }

TEST(IncrementalRoot, MatchesOracleOnBasicFlow) {
  WorldState ws;
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());

  ws.set(StateKey::balance(addr_of(1)), U256{100});
  ws.set(StateKey::nonce(addr_of(1)), U256{7});
  ws.set(StateKey::storage(addr_of(2), U256{1}), U256{42});
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());

  // Memo hit when nothing changed.
  const auto before = ws.commit_stats();
  const Hash256 again = ws.state_root();
  const auto after = ws.commit_stats();
  EXPECT_EQ(again, ws.state_root_full_rebuild());
  EXPECT_EQ(after.root_memo_hits, before.root_memo_hits + 1);
  EXPECT_EQ(after.root_recomputes, before.root_recomputes);
}

TEST(IncrementalRoot, OldValueRewriteRegression) {
  // Write, commit, overwrite the same slot with its old value, commit:
  // the root must equal that of a state which never changed the slot.
  WorldState ws;
  ws.set(StateKey::storage(addr_of(9), U256{5}), U256{1234});
  ws.set(StateKey::balance(addr_of(9)), U256{1});
  const Hash256 committed = ws.state_root();

  ws.set(StateKey::storage(addr_of(9), U256{5}), U256{9999});
  (void)ws.state_root();
  ws.set(StateKey::storage(addr_of(9), U256{5}), U256{1234});
  EXPECT_EQ(ws.state_root(), committed);
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());
}

TEST(IncrementalRoot, EmptyAccountPrunes) {
  WorldState ws;
  ws.set(StateKey::balance(addr_of(3)), U256{50});
  const Hash256 with_account = ws.state_root();

  ws.set(StateKey::balance(addr_of(4)), U256{10});
  (void)ws.state_root();
  // Draining account 4 back to empty must prune it from the trie.
  ws.set(StateKey::balance(addr_of(4)), U256{});
  EXPECT_EQ(ws.state_root(), with_account);
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());

  // Resurrection after pruning rebuilds correctly.
  ws.set(StateKey::balance(addr_of(4)), U256{11});
  ws.set(StateKey::storage(addr_of(4), U256{0}), U256{1});
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());
}

TEST(IncrementalRoot, ZeroStorageWriteErases) {
  WorldState ws;
  ws.set(StateKey::storage(addr_of(5), U256{1}), U256{77});
  ws.set(StateKey::storage(addr_of(5), U256{2}), U256{88});
  ws.set(StateKey::balance(addr_of(5)), U256{1});
  (void)ws.state_root();

  ws.set(StateKey::storage(addr_of(5), U256{2}), U256{});
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());
  EXPECT_EQ(ws.storage_root(addr_of(5)),
            state::storage_root_of(ws.accounts().at(addr_of(5)).storage));
}

TEST(IncrementalRoot, CopiesDivergeIndependently) {
  WorldState a;
  a.set(StateKey::balance(addr_of(1)), U256{100});
  a.set(StateKey::storage(addr_of(1), U256{0}), U256{5});
  const Hash256 root_a = a.state_root();

  WorldState b = a;  // shares trie structure + memos
  EXPECT_EQ(b.state_root(), root_a);

  b.set(StateKey::storage(addr_of(1), U256{0}), U256{6});
  b.set(StateKey::balance(addr_of(2)), U256{1});
  EXPECT_EQ(b.state_root(), b.state_root_full_rebuild());
  EXPECT_NE(b.state_root(), root_a);

  // The original is untouched by the copy's writes.
  EXPECT_EQ(a.state_root(), root_a);
  EXPECT_EQ(a.state_root(), a.state_root_full_rebuild());
}

TEST(IncrementalRoot, DifferentialFuzzAgainstOracle) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdecafULL}) {
    Xoshiro256 rng(seed);
    WorldState ws;
    for (int step = 0; step < 400; ++step) {
      const Address addr = addr_of(rng() % 12);
      switch (rng() % 5) {
        case 0:
          ws.set(StateKey::balance(addr), U256{rng() % 1000});
          break;
        case 1:
          ws.set(StateKey::nonce(addr), U256{rng() % 50});
          break;
        case 2:
          ws.set(StateKey::storage(addr, U256{rng() % 20}), U256{rng() % 256});
          break;
        case 3:  // erase a slot
          ws.set(StateKey::storage(addr, U256{rng() % 20}), U256{});
          break;
        case 4:  // drain an account toward emptiness
          ws.set(StateKey::balance(addr), U256{});
          ws.set(StateKey::nonce(addr), U256{});
          break;
      }
      if (step % 7 == 0)
        ASSERT_EQ(ws.state_root(), ws.state_root_full_rebuild())
            << "seed " << seed << " step " << step;
    }
    EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Shared storage seeds across WorldState copies

TEST(StorageSeeds, FreshAccountAdoptedAcrossCopies) {
  // A fresh account's pending storage writes are shared by two forks; the
  // first fork to commit builds the storage trie once and publishes it
  // through the seed cell, the second adopts it in O(1) instead of
  // re-seeding from the whole slot map.
  WorldState head;
  for (std::uint64_t s = 0; s < 24; ++s)
    head.set(StateKey::storage(addr_of(77), U256{s}), U256{s * s + 1});
  head.set(StateKey::balance(addr_of(77)), U256{5});

  WorldState a = head;  // both forks share the dirty set and the seed cell
  WorldState b = head;
  const auto base = head.commit_stats();

  const Hash256 ra = a.state_root();
  const auto sa = a.commit_stats();
  EXPECT_EQ(sa.seeds_built, base.seeds_built + 1);   // a built + published
  EXPECT_EQ(sa.seeds_adopted, base.seeds_adopted);

  const Hash256 rb = b.state_root();
  const auto sb = b.commit_stats();
  EXPECT_EQ(sb.seeds_adopted, base.seeds_adopted + 1);  // b adopted a's trie
  EXPECT_EQ(sb.accounts_resynced, base.accounts_resynced);  // no rebuild

  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra, a.state_root_full_rebuild());
  EXPECT_EQ(head.state_root(), ra);  // the source itself adopts too
}

TEST(StorageSeeds, PostCopyWriteDetachesFromSeed) {
  // A storage write after the fork must detach the writer from the shared
  // cell — otherwise it would adopt a trie for a slot map it no longer has.
  WorldState head;
  head.set(StateKey::storage(addr_of(88), U256{0}), U256{111});
  head.set(StateKey::storage(addr_of(88), U256{1}), U256{222});

  WorldState a = head;
  WorldState b = head;
  b.set(StateKey::storage(addr_of(88), U256{1}), U256{999});  // detaches b

  const Hash256 ra = a.state_root();  // publishes the {111,222} seed
  const Hash256 rb = b.state_root();  // must NOT adopt it
  EXPECT_NE(ra, rb);
  EXPECT_EQ(ra, a.state_root_full_rebuild());
  EXPECT_EQ(rb, b.state_root_full_rebuild());
  EXPECT_EQ(b.commit_stats().seeds_adopted, 0u);
}

TEST(StorageSeeds, DifferentialFuzzSharedTriesAcrossCopies) {
  // The headline differential fuzz: >= 1000 randomized blocks, each block
  // forking the head into two siblings that commit independently (storage
  // tries and seed cells shared wherever contents allow), every root
  // checked against the from-scratch oracle.
  constexpr int kBlocks = 1024;
  Xoshiro256 rng(0x5EED5);
  std::uint64_t adopted = 0;
  std::uint64_t built = 0;

  const auto random_writes = [&rng](WorldState& ws, std::uint64_t addr_space,
                                    int count) {
    for (int i = 0; i < count; ++i) {
      const Address addr = addr_of(1 + rng() % addr_space);
      switch (rng() % 8) {
        case 0:
          ws.set(StateKey::balance(addr), U256{rng() % 200});
          break;
        case 1:
          ws.set(StateKey::nonce(addr), U256{rng() % 64});
          break;
        case 2:  // drain toward emptiness (prune + later resurrection)
          ws.set(StateKey::balance(addr), U256{});
          ws.set(StateKey::nonce(addr), U256{});
          break;
        default: {
          const U256 slot{rng() % 16};
          const U256 val = (rng() % 4 == 0) ? U256{} : U256{rng() % 100'000};
          ws.set(StateKey::storage(addr, slot), val);
        }
      }
    }
  };

  WorldState head;
  random_writes(head, 16, 48);
  ASSERT_EQ(head.state_root(), head.state_root_full_rebuild());

  for (int block = 0; block < kBlocks; ++block) {
    // A slowly growing address space keeps fresh accounts (and therefore
    // seed builds/adoptions) appearing throughout the run.
    const std::uint64_t addr_space = 16 + block / 64;

    // Pending writes on the head are shared by both forks via seed cells.
    random_writes(head, addr_space, 1 + static_cast<int>(rng() % 6));
    const auto base = head.commit_stats();
    WorldState a = head;
    WorldState b = head;

    // Divergent tails detach the touched accounts from the shared cells.
    if (rng() % 2) random_writes(a, addr_space, 1 + static_cast<int>(rng() % 4));
    if (rng() % 2) random_writes(b, addr_space, 1 + static_cast<int>(rng() % 4));

    const Hash256 ra = a.state_root();
    const Hash256 rb = b.state_root();
    ASSERT_EQ(ra, a.state_root_full_rebuild()) << "block " << block;
    ASSERT_EQ(rb, b.state_root_full_rebuild()) << "block " << block;
    const auto sa = a.commit_stats();
    const auto sb = b.commit_stats();
    built += (sa.seeds_built - base.seeds_built) +
             (sb.seeds_built - base.seeds_built);
    adopted += (sa.seeds_adopted - base.seeds_adopted) +
               (sb.seeds_adopted - base.seeds_adopted);

    head = (rng() % 2) ? std::move(a) : std::move(b);
  }
  // Full oracle check on the surviving lineage.
  ASSERT_EQ(head.state_root(), head.state_root_full_rebuild());
  // The sharing machinery actually engaged during the run.
  EXPECT_GT(built, 0u);
  EXPECT_GT(adopted, 0u);
}

// ---------------------------------------------------------------------------
// CommitPipeline

TEST(CommitPipeline, InlineModeComputesImmediately) {
  commit::CommitPipeline pipe;  // no pool: degraded/sync mode
  auto ws = std::make_shared<WorldState>();
  ws->set(StateKey::balance(addr_of(1)), U256{10});
  const Hash256 expected = ws->state_root_full_rebuild();

  auto handle = pipe.submit(ws);
  ASSERT_TRUE(handle.valid());
  EXPECT_TRUE(handle.ready());
  EXPECT_EQ(handle.get().state_root, expected);
  EXPECT_EQ(pipe.stats().inline_runs, 1u);
}

TEST(CommitPipeline, AsyncComputesOffThread) {
  ThreadPool pool(2);
  commit::CommitPipeline pipe(&pool);
  auto ws = std::make_shared<WorldState>();
  ws->set(StateKey::storage(addr_of(2), U256{3}), U256{99});
  const Hash256 expected = ws->state_root_full_rebuild();

  auto handle = pipe.submit(ws, [] { return Hash256{}; });
  ASSERT_TRUE(handle.valid());
  handle.wait();
  EXPECT_EQ(handle.get().state_root, expected);
  EXPECT_EQ(pipe.stats().submitted, 1u);
  EXPECT_EQ(pipe.stats().inline_runs, 0u);
}

TEST(CommitPipeline, FifoOrderingAcrossSubmissions) {
  // Block N's root must be ready no later than block N+1's: when a later
  // handle resolves, every earlier one has resolved too.
  ThreadPool pool(4);
  commit::CommitPipeline pipe(&pool);

  std::vector<commit::CommitHandle> handles;
  WorldState ws;
  for (std::uint64_t n = 0; n < 8; ++n) {
    ws.set(StateKey::balance(addr_of(n + 1)), U256{n + 1});
    handles.push_back(pipe.submit(std::make_shared<WorldState>(ws)));
  }
  for (std::size_t n = handles.size(); n-- > 0;) {
    handles[n].wait();
    for (std::size_t m = 0; m < n; ++m)
      EXPECT_TRUE(handles[m].ready()) << "handle " << m << " after " << n;
  }
  for (std::size_t n = 0; n < handles.size(); ++n)
    EXPECT_EQ(handles[n].get().sequence, n);
}

TEST(CommitPipeline, SubmitWritesAppliesOnTopOfParent) {
  commit::CommitPipeline pipe;
  WorldState parent;
  parent.set(StateKey::balance(addr_of(1)), U256{100});
  (void)parent.state_root();

  auto handle = pipe.submit_writes(
      parent, {{StateKey::balance(addr_of(1)), U256{90}},
               {StateKey::balance(addr_of(2)), U256{10}}});
  WorldState expected = parent;
  expected.set(StateKey::balance(addr_of(1)), U256{90});
  expected.set(StateKey::balance(addr_of(2)), U256{10});
  EXPECT_EQ(handle.get().state_root, expected.state_root_full_rebuild());
  // Parent unchanged.
  EXPECT_EQ(parent.get(StateKey::balance(addr_of(1))), U256{100});
}

TEST(CommitPipeline, SettleCallbackDeliversResultsInFifoOrder) {
  // The push-style settlement notification the event-driven node loop
  // consumes: one callback per submission, in publication (= FIFO) order,
  // carrying the publishing result.
  ThreadPool pool(4);
  commit::CommitPipeline pipe(&pool);

  std::mutex mu;
  std::vector<std::uint64_t> order;
  std::vector<Hash256> roots;
  WorldState ws;
  std::vector<Hash256> expected;
  for (std::uint64_t n = 0; n < 6; ++n) {
    ws.set(StateKey::balance(addr_of(n + 1)), U256{n + 1});
    expected.push_back(ws.state_root_full_rebuild());
    pipe.submit(std::make_shared<WorldState>(ws), {},
                [&](const commit::CommitResult& r) {
                  std::scoped_lock lk(mu);
                  order.push_back(r.sequence);
                  roots.push_back(r.state_root);
                });
  }
  pipe.drain();

  // drain() implies every callback has finished, not merely started.
  std::scoped_lock lk(mu);
  ASSERT_EQ(order.size(), 6u);
  for (std::uint64_t n = 0; n < 6; ++n) {
    EXPECT_EQ(order[n], n);
    EXPECT_EQ(roots[n], expected[n]);
  }
  EXPECT_EQ(pipe.stats().settled, 6u);
}

TEST(CommitPipeline, SettleCallbackFiresInlineInDegradedMode) {
  commit::CommitPipeline pipe;  // no pool
  bool fired = false;
  auto ws = std::make_shared<WorldState>();
  ws->set(StateKey::nonce(addr_of(7)), U256{1});
  pipe.submit(ws, {}, [&](const commit::CommitResult& r) {
    fired = true;
    EXPECT_EQ(r.sequence, 0u);
  });
  EXPECT_TRUE(fired);  // before submit() returned
  EXPECT_EQ(pipe.pending(), 0u);
}

TEST(CommitPipeline, WaitPendingAtMostEnforcesSpeculationDepth) {
  // One pool thread, first task gated: three commitments pile up in flight,
  // and the depth-backpressure wait only returns once enough have settled.
  ThreadPool pool(1);
  commit::CommitPipeline pipe(&pool);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();

  WorldState ws;
  for (std::uint64_t n = 0; n < 3; ++n) {
    ws.set(StateKey::balance(addr_of(n + 1)), U256{n + 1});
    commit::AuxRootFn aux;
    if (n == 0)
      aux = [opened] {
        opened.wait();
        return Hash256{};
      };
    pipe.submit(std::make_shared<WorldState>(ws), std::move(aux));
  }
  EXPECT_EQ(pipe.pending(), 3u);
  EXPECT_EQ(pipe.stats().max_pending, 3u);

  gate.set_value();
  pipe.wait_pending_at_most(1);
  EXPECT_LE(pipe.pending(), 1u);
  pipe.drain();
  EXPECT_EQ(pipe.pending(), 0u);
  EXPECT_EQ(pipe.stats().settled, 3u);
}

TEST(CommitPipeline, DestructionDrainsAbandonedCommitments) {
  // A revoked speculative suffix drops its CommitHandles without awaiting
  // them.  The pipeline must outlive those orphaned tasks: its destructor
  // drains, and every settlement callback completes before it returns.
  ThreadPool pool(2);
  std::atomic<int> settled{0};
  for (int round = 0; round < 8; ++round) {
    commit::CommitPipeline pipe(&pool);
    WorldState ws;
    for (std::uint64_t n = 0; n < 4; ++n) {
      ws.set(StateKey::storage(addr_of(n + 1), U256{n}), U256{n + 41});
      pipe.submit(std::make_shared<WorldState>(ws), {},
                  [&](const commit::CommitResult&) { ++settled; });
      // Handle intentionally discarded — nobody awaits this commitment.
    }
  }  // ~CommitPipeline drains; destroyed state must not be touched after
  EXPECT_EQ(settled.load(), 8 * 4);
}

// ---------------------------------------------------------------------------
// Async integration: proposer / validator / pipeline / blockchain

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

core::BlockBundle bundle_from(const WorldState& pre,
                              const std::vector<chain::Transaction>& txs,
                              std::uint64_t height) {
  const core::SerialResult r =
      core::execute_serial(pre, ctx_for(height), std::span(txs));
  core::BlockBundle b;
  b.block = core::seal_block(ctx_for(height), r.exec, r.included);
  b.profile = r.exec.profile;
  return b;
}

struct AsyncCommitFixture : ::testing::Test {
  workload::WorkloadGenerator gen{workload::preset_mainnet()};
  WorldState genesis = gen.genesis();
};

TEST_F(AsyncCommitFixture, ProposerAsyncSealMatchesInlineSeal) {
  auto propose = [&](commit::CommitPipeline* cp) {
    workload::WorkloadGenerator local{workload::preset_mainnet()};
    txpool::TxPool pool;
    pool.add_all(local.next_batch(60));
    core::ProposerConfig cfg;
    cfg.threads = 4;
    cfg.commit_pipeline = cp;
    core::OccWsiProposer proposer(cfg);
    return proposer.propose_virtual(genesis, ctx_for(1), pool);
  };

  const auto inline_sealed = propose(nullptr);

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  auto async_sealed = propose(&pipe);
  ASSERT_TRUE(async_sealed.commit.valid());
  EXPECT_EQ(async_sealed.block.header.state_root, Hash256{});
  async_sealed.await_seal();

  EXPECT_EQ(async_sealed.block.header.state_root,
            inline_sealed.block.header.state_root);
  EXPECT_EQ(async_sealed.block.header.receipts_root,
            inline_sealed.block.header.receipts_root);
  EXPECT_EQ(async_sealed.block.header.logs_bloom,
            inline_sealed.block.header.logs_bloom);
}

TEST_F(AsyncCommitFixture, ValidatorAsyncRootCheckAcceptsHonestBlock) {
  const auto bundle = bundle_from(genesis, gen.next_batch(50), 1);

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::ValidatorConfig vc;
  vc.threads = 4;
  vc.commit_pipeline = &pipe;
  core::BlockValidator validator(vc);
  ThreadPool workers(4);
  auto outcome = validator.validate(genesis, bundle.block, bundle.profile,
                                    workers);
  ASSERT_TRUE(outcome.valid) << outcome.reject_reason;  // provisional
  ASSERT_TRUE(outcome.commit.valid());
  EXPECT_TRUE(outcome.await_commit()) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
}

TEST_F(AsyncCommitFixture, ValidatorAsyncRootCheckRejectsTamperedRoot) {
  auto bundle = bundle_from(genesis, gen.next_batch(30), 1);
  bundle.block.header.state_root.bytes[0] ^= 0xff;  // Byzantine header

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::ValidatorConfig vc;
  vc.threads = 2;
  vc.commit_pipeline = &pipe;
  core::BlockValidator validator(vc);
  ThreadPool workers(2);
  auto outcome = validator.validate(genesis, bundle.block, bundle.profile,
                                    workers);
  ASSERT_TRUE(outcome.valid);  // execution-level: provisionally accepted
  EXPECT_FALSE(outcome.await_commit());
  EXPECT_EQ(outcome.reject_reason, "state root mismatch");
}

TEST_F(AsyncCommitFixture, PipelineAsyncMatchesSyncOverChain) {
  // Build a 3-height honest chain.
  std::vector<std::vector<core::BlockBundle>> heights;
  const WorldState* parent = &genesis;
  std::shared_ptr<const WorldState> holder;
  for (std::uint64_t h = 1; h <= 3; ++h) {
    auto bundle = bundle_from(*parent, gen.next_batch(25), h);
    core::SerialOptions opts;
    opts.drop_unincludable = false;
    const auto r = core::execute_serial(
        *parent, ctx_for(h), std::span(bundle.block.transactions), opts);
    ASSERT_TRUE(r.ok);
    holder = r.exec.post_state;
    parent = holder.get();
    heights.push_back({std::move(bundle)});
  }

  core::PipelineConfig sync_cfg;
  sync_cfg.workers = 4;
  core::PipelineConfig async_cfg = sync_cfg;
  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  async_cfg.commit_pipeline = &pipe;

  ThreadPool workers(4);
  const auto sync_result = core::ValidatorPipeline(sync_cfg).process_chain(
      genesis, std::span(heights), workers);
  const auto async_result = core::ValidatorPipeline(async_cfg).process_chain(
      genesis, std::span(heights), workers);

  ASSERT_EQ(sync_result.outcomes.size(), async_result.outcomes.size());
  EXPECT_EQ(async_result.stats.async_commits, 3u);
  for (std::size_t i = 0; i < sync_result.outcomes.size(); ++i) {
    EXPECT_EQ(sync_result.outcomes[i].valid, async_result.outcomes[i].valid)
        << async_result.outcomes[i].reject_reason;
    EXPECT_EQ(sync_result.outcomes[i].exec.state_root,
              async_result.outcomes[i].exec.state_root);
  }
}

TEST_F(AsyncCommitFixture, PipelineCascadesParentCommitFailure) {
  // Height 1's only block carries a tampered state root: execution-valid,
  // commitment-invalid.  The speculatively-validated height 2 must be
  // invalidated by the settle pass.
  auto b1 = bundle_from(genesis, gen.next_batch(20), 1);
  core::SerialOptions opts;
  opts.drop_unincludable = false;
  const auto r1 = core::execute_serial(
      genesis, ctx_for(1), std::span(b1.block.transactions), opts);
  ASSERT_TRUE(r1.ok);
  auto b2 = bundle_from(*r1.exec.post_state, gen.next_batch(20), 2);
  b1.block.header.state_root.bytes[0] ^= 0xff;

  std::vector<std::vector<core::BlockBundle>> heights = {{b1}, {b2}};
  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::PipelineConfig cfg;
  cfg.workers = 4;
  cfg.commit_pipeline = &pipe;
  ThreadPool workers(4);
  const auto result = core::ValidatorPipeline(cfg).process_chain(
      genesis, std::span(heights), workers);

  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_FALSE(result.outcomes[0].valid);
  EXPECT_EQ(result.outcomes[0].reject_reason, "state root mismatch");
  EXPECT_FALSE(result.outcomes[1].valid);
  EXPECT_EQ(result.outcomes[1].reject_reason, "parent block failed commitment");
}

TEST_F(AsyncCommitFixture, BlockchainCommitsFromHandle) {
  chain::Blockchain bc(genesis);

  txpool::TxPool pool;
  pool.add_all(gen.next_batch(40));
  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::ProposerConfig cfg;
  cfg.threads = 4;
  cfg.commit_pipeline = &pipe;
  core::OccWsiProposer proposer(cfg);
  auto proposed = proposer.propose_virtual(*bc.head_state(), ctx_for(1), pool);
  ASSERT_TRUE(proposed.commit.valid());

  proposed.block.header.parent_hash = bc.head().header.hash();
  bc.commit_block(proposed.block, proposed.commit, proposed.receipts);

  EXPECT_EQ(bc.height(), 1u);
  const Hash256 head_root = bc.head().header.state_root;
  EXPECT_EQ(head_root, bc.head_state()->state_root());
  EXPECT_NE(head_root, Hash256{});
}

}  // namespace
}  // namespace blockpilot
