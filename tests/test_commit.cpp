// Asynchronous state-commitment subsystem tests: incremental WorldState
// roots (differential vs the from-scratch oracle), the hash-consed
// NodeCache, CommitPipeline ordering, and the async integration through
// validator / pipeline / blockchain.
#include <gtest/gtest.h>

#include <random>

#include "commit/commit_pipeline.hpp"
#include "core/blockpilot.hpp"
#include "support/rng.hpp"
#include "trie/node_cache.hpp"

namespace blockpilot {
namespace {

using state::StateKey;
using state::WorldState;

// ---------------------------------------------------------------------------
// NodeCache

TEST(NodeCache, InternsAndCounts) {
  trie::NodeCache cache(64);
  const std::vector<std::uint8_t> enc = {0x01, 0x02, 0x03, 0x04};
  const Hash256 expected{crypto::keccak256(std::span(enc))};

  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);

  // Reverse index resolves the encoding by hash.
  const auto back = cache.encoding_of(expected);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, enc);
}

TEST(NodeCache, ZeroCapacityBypasses) {
  trie::NodeCache cache(0);
  const std::vector<std::uint8_t> enc = {0xaa, 0xbb};
  const Hash256 expected{crypto::keccak256(std::span(enc))};
  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(NodeCache, EvictsWhenFullAndStaysCorrect) {
  trie::NodeCache cache(8);  // 1 slot per shard
  std::vector<std::vector<std::uint8_t>> encodings;
  for (std::uint8_t i = 0; i < 64; ++i)
    encodings.push_back({i, static_cast<std::uint8_t>(i + 1), 0x7f});

  // Fill far past capacity, then re-query everything: answers must stay
  // bit-identical to plain keccak whether served from cache or recomputed.
  for (int round = 0; round < 2; ++round) {
    for (const auto& enc : encodings) {
      const Hash256 expected{crypto::keccak256(std::span(enc))};
      EXPECT_EQ(cache.hash_of(std::span(enc)), expected);
    }
  }
  const auto s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, cache.capacity());
}

TEST(NodeCache, ShrinkingCapacityEvicts) {
  trie::NodeCache cache(128);
  for (std::uint8_t i = 0; i < 100; ++i) {
    const std::vector<std::uint8_t> enc = {i, 0x55, static_cast<std::uint8_t>(0xff - i)};
    cache.hash_of(std::span(enc));
  }
  EXPECT_GT(cache.stats().entries, 8u);
  cache.set_capacity(8);
  EXPECT_LE(cache.stats().entries, 8u);
}

// ---------------------------------------------------------------------------
// Incremental WorldState commitment vs the from-scratch oracle

Address addr_of(std::uint64_t id) { return Address::from_id(id); }

TEST(IncrementalRoot, MatchesOracleOnBasicFlow) {
  WorldState ws;
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());

  ws.set(StateKey::balance(addr_of(1)), U256{100});
  ws.set(StateKey::nonce(addr_of(1)), U256{7});
  ws.set(StateKey::storage(addr_of(2), U256{1}), U256{42});
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());

  // Memo hit when nothing changed.
  const auto before = ws.commit_stats();
  const Hash256 again = ws.state_root();
  const auto after = ws.commit_stats();
  EXPECT_EQ(again, ws.state_root_full_rebuild());
  EXPECT_EQ(after.root_memo_hits, before.root_memo_hits + 1);
  EXPECT_EQ(after.root_recomputes, before.root_recomputes);
}

TEST(IncrementalRoot, OldValueRewriteRegression) {
  // Write, commit, overwrite the same slot with its old value, commit:
  // the root must equal that of a state which never changed the slot.
  WorldState ws;
  ws.set(StateKey::storage(addr_of(9), U256{5}), U256{1234});
  ws.set(StateKey::balance(addr_of(9)), U256{1});
  const Hash256 committed = ws.state_root();

  ws.set(StateKey::storage(addr_of(9), U256{5}), U256{9999});
  (void)ws.state_root();
  ws.set(StateKey::storage(addr_of(9), U256{5}), U256{1234});
  EXPECT_EQ(ws.state_root(), committed);
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());
}

TEST(IncrementalRoot, EmptyAccountPrunes) {
  WorldState ws;
  ws.set(StateKey::balance(addr_of(3)), U256{50});
  const Hash256 with_account = ws.state_root();

  ws.set(StateKey::balance(addr_of(4)), U256{10});
  (void)ws.state_root();
  // Draining account 4 back to empty must prune it from the trie.
  ws.set(StateKey::balance(addr_of(4)), U256{});
  EXPECT_EQ(ws.state_root(), with_account);
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());

  // Resurrection after pruning rebuilds correctly.
  ws.set(StateKey::balance(addr_of(4)), U256{11});
  ws.set(StateKey::storage(addr_of(4), U256{0}), U256{1});
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());
}

TEST(IncrementalRoot, ZeroStorageWriteErases) {
  WorldState ws;
  ws.set(StateKey::storage(addr_of(5), U256{1}), U256{77});
  ws.set(StateKey::storage(addr_of(5), U256{2}), U256{88});
  ws.set(StateKey::balance(addr_of(5)), U256{1});
  (void)ws.state_root();

  ws.set(StateKey::storage(addr_of(5), U256{2}), U256{});
  EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild());
  EXPECT_EQ(ws.storage_root(addr_of(5)),
            state::storage_root_of(ws.accounts().at(addr_of(5)).storage));
}

TEST(IncrementalRoot, CopiesDivergeIndependently) {
  WorldState a;
  a.set(StateKey::balance(addr_of(1)), U256{100});
  a.set(StateKey::storage(addr_of(1), U256{0}), U256{5});
  const Hash256 root_a = a.state_root();

  WorldState b = a;  // shares trie structure + memos
  EXPECT_EQ(b.state_root(), root_a);

  b.set(StateKey::storage(addr_of(1), U256{0}), U256{6});
  b.set(StateKey::balance(addr_of(2)), U256{1});
  EXPECT_EQ(b.state_root(), b.state_root_full_rebuild());
  EXPECT_NE(b.state_root(), root_a);

  // The original is untouched by the copy's writes.
  EXPECT_EQ(a.state_root(), root_a);
  EXPECT_EQ(a.state_root(), a.state_root_full_rebuild());
}

TEST(IncrementalRoot, DifferentialFuzzAgainstOracle) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdecafULL}) {
    Xoshiro256 rng(seed);
    WorldState ws;
    for (int step = 0; step < 400; ++step) {
      const Address addr = addr_of(rng() % 12);
      switch (rng() % 5) {
        case 0:
          ws.set(StateKey::balance(addr), U256{rng() % 1000});
          break;
        case 1:
          ws.set(StateKey::nonce(addr), U256{rng() % 50});
          break;
        case 2:
          ws.set(StateKey::storage(addr, U256{rng() % 20}), U256{rng() % 256});
          break;
        case 3:  // erase a slot
          ws.set(StateKey::storage(addr, U256{rng() % 20}), U256{});
          break;
        case 4:  // drain an account toward emptiness
          ws.set(StateKey::balance(addr), U256{});
          ws.set(StateKey::nonce(addr), U256{});
          break;
      }
      if (step % 7 == 0)
        ASSERT_EQ(ws.state_root(), ws.state_root_full_rebuild())
            << "seed " << seed << " step " << step;
    }
    EXPECT_EQ(ws.state_root(), ws.state_root_full_rebuild()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// CommitPipeline

TEST(CommitPipeline, InlineModeComputesImmediately) {
  commit::CommitPipeline pipe;  // no pool: degraded/sync mode
  auto ws = std::make_shared<WorldState>();
  ws->set(StateKey::balance(addr_of(1)), U256{10});
  const Hash256 expected = ws->state_root_full_rebuild();

  auto handle = pipe.submit(ws);
  ASSERT_TRUE(handle.valid());
  EXPECT_TRUE(handle.ready());
  EXPECT_EQ(handle.get().state_root, expected);
  EXPECT_EQ(pipe.stats().inline_runs, 1u);
}

TEST(CommitPipeline, AsyncComputesOffThread) {
  ThreadPool pool(2);
  commit::CommitPipeline pipe(&pool);
  auto ws = std::make_shared<WorldState>();
  ws->set(StateKey::storage(addr_of(2), U256{3}), U256{99});
  const Hash256 expected = ws->state_root_full_rebuild();

  auto handle = pipe.submit(ws, [] { return Hash256{}; });
  ASSERT_TRUE(handle.valid());
  handle.wait();
  EXPECT_EQ(handle.get().state_root, expected);
  EXPECT_EQ(pipe.stats().submitted, 1u);
  EXPECT_EQ(pipe.stats().inline_runs, 0u);
}

TEST(CommitPipeline, FifoOrderingAcrossSubmissions) {
  // Block N's root must be ready no later than block N+1's: when a later
  // handle resolves, every earlier one has resolved too.
  ThreadPool pool(4);
  commit::CommitPipeline pipe(&pool);

  std::vector<commit::CommitHandle> handles;
  WorldState ws;
  for (std::uint64_t n = 0; n < 8; ++n) {
    ws.set(StateKey::balance(addr_of(n + 1)), U256{n + 1});
    handles.push_back(pipe.submit(std::make_shared<WorldState>(ws)));
  }
  for (std::size_t n = handles.size(); n-- > 0;) {
    handles[n].wait();
    for (std::size_t m = 0; m < n; ++m)
      EXPECT_TRUE(handles[m].ready()) << "handle " << m << " after " << n;
  }
  for (std::size_t n = 0; n < handles.size(); ++n)
    EXPECT_EQ(handles[n].get().sequence, n);
}

TEST(CommitPipeline, SubmitWritesAppliesOnTopOfParent) {
  commit::CommitPipeline pipe;
  WorldState parent;
  parent.set(StateKey::balance(addr_of(1)), U256{100});
  (void)parent.state_root();

  auto handle = pipe.submit_writes(
      parent, {{StateKey::balance(addr_of(1)), U256{90}},
               {StateKey::balance(addr_of(2)), U256{10}}});
  WorldState expected = parent;
  expected.set(StateKey::balance(addr_of(1)), U256{90});
  expected.set(StateKey::balance(addr_of(2)), U256{10});
  EXPECT_EQ(handle.get().state_root, expected.state_root_full_rebuild());
  // Parent unchanged.
  EXPECT_EQ(parent.get(StateKey::balance(addr_of(1))), U256{100});
}

// ---------------------------------------------------------------------------
// Async integration: proposer / validator / pipeline / blockchain

evm::BlockContext ctx_for(std::uint64_t height) {
  evm::BlockContext ctx;
  ctx.number = height;
  ctx.timestamp = 1'700'000'000 + height * 12;
  ctx.coinbase = Address::from_id(0xC0FFEE);
  return ctx;
}

core::BlockBundle bundle_from(const WorldState& pre,
                              const std::vector<chain::Transaction>& txs,
                              std::uint64_t height) {
  const core::SerialResult r =
      core::execute_serial(pre, ctx_for(height), std::span(txs));
  core::BlockBundle b;
  b.block = core::seal_block(ctx_for(height), r.exec, r.included);
  b.profile = r.exec.profile;
  return b;
}

struct AsyncCommitFixture : ::testing::Test {
  workload::WorkloadGenerator gen{workload::preset_mainnet()};
  WorldState genesis = gen.genesis();
};

TEST_F(AsyncCommitFixture, ProposerAsyncSealMatchesInlineSeal) {
  auto propose = [&](commit::CommitPipeline* cp) {
    workload::WorkloadGenerator local{workload::preset_mainnet()};
    txpool::TxPool pool;
    pool.add_all(local.next_batch(60));
    core::ProposerConfig cfg;
    cfg.threads = 4;
    cfg.commit_pipeline = cp;
    core::OccWsiProposer proposer(cfg);
    return proposer.propose_virtual(genesis, ctx_for(1), pool);
  };

  const auto inline_sealed = propose(nullptr);

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  auto async_sealed = propose(&pipe);
  ASSERT_TRUE(async_sealed.commit.valid());
  EXPECT_EQ(async_sealed.block.header.state_root, Hash256{});
  async_sealed.await_seal();

  EXPECT_EQ(async_sealed.block.header.state_root,
            inline_sealed.block.header.state_root);
  EXPECT_EQ(async_sealed.block.header.receipts_root,
            inline_sealed.block.header.receipts_root);
  EXPECT_EQ(async_sealed.block.header.logs_bloom,
            inline_sealed.block.header.logs_bloom);
}

TEST_F(AsyncCommitFixture, ValidatorAsyncRootCheckAcceptsHonestBlock) {
  const auto bundle = bundle_from(genesis, gen.next_batch(50), 1);

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::ValidatorConfig vc;
  vc.threads = 4;
  vc.commit_pipeline = &pipe;
  core::BlockValidator validator(vc);
  ThreadPool workers(4);
  auto outcome = validator.validate(genesis, bundle.block, bundle.profile,
                                    workers);
  ASSERT_TRUE(outcome.valid) << outcome.reject_reason;  // provisional
  ASSERT_TRUE(outcome.commit.valid());
  EXPECT_TRUE(outcome.await_commit()) << outcome.reject_reason;
  EXPECT_EQ(outcome.exec.state_root, bundle.block.header.state_root);
}

TEST_F(AsyncCommitFixture, ValidatorAsyncRootCheckRejectsTamperedRoot) {
  auto bundle = bundle_from(genesis, gen.next_batch(30), 1);
  bundle.block.header.state_root.bytes[0] ^= 0xff;  // Byzantine header

  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::ValidatorConfig vc;
  vc.threads = 2;
  vc.commit_pipeline = &pipe;
  core::BlockValidator validator(vc);
  ThreadPool workers(2);
  auto outcome = validator.validate(genesis, bundle.block, bundle.profile,
                                    workers);
  ASSERT_TRUE(outcome.valid);  // execution-level: provisionally accepted
  EXPECT_FALSE(outcome.await_commit());
  EXPECT_EQ(outcome.reject_reason, "state root mismatch");
}

TEST_F(AsyncCommitFixture, PipelineAsyncMatchesSyncOverChain) {
  // Build a 3-height honest chain.
  std::vector<std::vector<core::BlockBundle>> heights;
  const WorldState* parent = &genesis;
  std::shared_ptr<const WorldState> holder;
  for (std::uint64_t h = 1; h <= 3; ++h) {
    auto bundle = bundle_from(*parent, gen.next_batch(25), h);
    core::SerialOptions opts;
    opts.drop_unincludable = false;
    const auto r = core::execute_serial(
        *parent, ctx_for(h), std::span(bundle.block.transactions), opts);
    ASSERT_TRUE(r.ok);
    holder = r.exec.post_state;
    parent = holder.get();
    heights.push_back({std::move(bundle)});
  }

  core::PipelineConfig sync_cfg;
  sync_cfg.workers = 4;
  core::PipelineConfig async_cfg = sync_cfg;
  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  async_cfg.commit_pipeline = &pipe;

  ThreadPool workers(4);
  const auto sync_result = core::ValidatorPipeline(sync_cfg).process_chain(
      genesis, std::span(heights), workers);
  const auto async_result = core::ValidatorPipeline(async_cfg).process_chain(
      genesis, std::span(heights), workers);

  ASSERT_EQ(sync_result.outcomes.size(), async_result.outcomes.size());
  EXPECT_EQ(async_result.stats.async_commits, 3u);
  for (std::size_t i = 0; i < sync_result.outcomes.size(); ++i) {
    EXPECT_EQ(sync_result.outcomes[i].valid, async_result.outcomes[i].valid)
        << async_result.outcomes[i].reject_reason;
    EXPECT_EQ(sync_result.outcomes[i].exec.state_root,
              async_result.outcomes[i].exec.state_root);
  }
}

TEST_F(AsyncCommitFixture, PipelineCascadesParentCommitFailure) {
  // Height 1's only block carries a tampered state root: execution-valid,
  // commitment-invalid.  The speculatively-validated height 2 must be
  // invalidated by the settle pass.
  auto b1 = bundle_from(genesis, gen.next_batch(20), 1);
  core::SerialOptions opts;
  opts.drop_unincludable = false;
  const auto r1 = core::execute_serial(
      genesis, ctx_for(1), std::span(b1.block.transactions), opts);
  ASSERT_TRUE(r1.ok);
  auto b2 = bundle_from(*r1.exec.post_state, gen.next_batch(20), 2);
  b1.block.header.state_root.bytes[0] ^= 0xff;

  std::vector<std::vector<core::BlockBundle>> heights = {{b1}, {b2}};
  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::PipelineConfig cfg;
  cfg.workers = 4;
  cfg.commit_pipeline = &pipe;
  ThreadPool workers(4);
  const auto result = core::ValidatorPipeline(cfg).process_chain(
      genesis, std::span(heights), workers);

  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_FALSE(result.outcomes[0].valid);
  EXPECT_EQ(result.outcomes[0].reject_reason, "state root mismatch");
  EXPECT_FALSE(result.outcomes[1].valid);
  EXPECT_EQ(result.outcomes[1].reject_reason, "parent block failed commitment");
}

TEST_F(AsyncCommitFixture, BlockchainCommitsFromHandle) {
  chain::Blockchain bc(genesis);

  txpool::TxPool pool;
  pool.add_all(gen.next_batch(40));
  ThreadPool commit_pool(2);
  commit::CommitPipeline pipe(&commit_pool);
  core::ProposerConfig cfg;
  cfg.threads = 4;
  cfg.commit_pipeline = &pipe;
  core::OccWsiProposer proposer(cfg);
  auto proposed = proposer.propose_virtual(*bc.head_state(), ctx_for(1), pool);
  ASSERT_TRUE(proposed.commit.valid());

  proposed.block.header.parent_hash = bc.head().header.hash();
  bc.commit_block(proposed.block, proposed.commit, proposed.receipts);

  EXPECT_EQ(bc.height(), 1u);
  const Hash256 head_root = bc.head().header.state_root;
  EXPECT_EQ(head_root, bc.head_state()->state_root());
  EXPECT_NE(head_root, Hash256{});
}

}  // namespace
}  // namespace blockpilot
