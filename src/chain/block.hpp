// Block, BlockHeader and the transactions trie root.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/bloom.hpp"
#include "chain/transaction.hpp"
#include "trie/mpt.hpp"
#include "types/address.hpp"

namespace blockpilot::chain {

struct BlockHeader {
  Hash256 parent_hash;
  std::uint64_t number = 0;
  Address coinbase;
  Hash256 state_root;     // world-state MPT root after executing this block
  Hash256 tx_root;        // transactions trie root
  Hash256 receipts_root;  // receipts trie root
  Bloom logs_bloom;       // union of all receipts' log blooms
  std::uint64_t gas_limit = 30'000'000;
  std::uint64_t gas_used = 0;
  std::uint64_t timestamp = 0;

  Bytes rlp_encode() const;
  Hash256 hash() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Total gas limit of contained transactions (scheduling estimate input).
  std::uint64_t total_gas_limit() const noexcept {
    std::uint64_t g = 0;
    for (const auto& tx : transactions) g += tx.gas_limit;
    return g;
  }
};

/// Ethereum-style transactions trie: rlp(index) -> rlp(tx).
Hash256 transactions_root(const std::vector<Transaction>& txs);

}  // namespace blockpilot::chain
