// Wire codec: RLP serialization for everything a proposer broadcasts.
//
// The paper's proposers "provide execution details like read and write
// sets about their transactions in the block profile and broadcast it into
// the network" (§4.2).  This codec defines that wire format: blocks,
// headers, transactions and block profiles round-trip through canonical
// RLP, so the network substrate (src/net) ships plain byte strings.
#pragma once

#include <vector>

#include "chain/block.hpp"
#include "chain/profile.hpp"

namespace blockpilot::chain {

// -- blocks ---------------------------------------------------------------

/// rlp([header, [tx...]]) where header/tx use their canonical encodings.
Bytes encode_block(const Block& block);
Block decode_block(std::span<const std::uint8_t> wire);

BlockHeader decode_header(const rlp::Item& item);
Transaction decode_transaction(const rlp::Item& item);

// -- block profiles -------------------------------------------------------

/// rlp([[reads, writes, gas] ...]) with
///   reads  = [[addr, field, slot] ...]
///   writes = [[addr, field, slot, value] ...]
Bytes encode_profile(const BlockProfile& profile);
BlockProfile decode_profile(std::span<const std::uint8_t> wire);

// -- combined broadcast unit ----------------------------------------------

/// What a BlockPilot proposer gossips: rlp([block, profile]).
struct BlockAnnouncement {
  Block block;
  BlockProfile profile;
};

Bytes encode_announcement(const BlockAnnouncement& ann);
BlockAnnouncement decode_announcement(std::span<const std::uint8_t> wire);

}  // namespace blockpilot::chain
