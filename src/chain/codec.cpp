#include "chain/codec.hpp"

#include "support/assert.hpp"

namespace blockpilot::chain {
namespace {

using state::Field;
using state::StateKey;

void encode_header_into(rlp::Encoder& enc, const BlockHeader& header) {
  enc.begin_list()
      .add(header.parent_hash)
      .add(U256{header.number})
      .add(header.coinbase)
      .add(header.state_root)
      .add(header.tx_root)
      .add(header.receipts_root)
      .add(std::span(header.logs_bloom.bytes()))
      .add(U256{header.gas_limit})
      .add(U256{header.gas_used})
      .add(U256{header.timestamp})
      .end_list();
}

void encode_tx_into(rlp::Encoder& enc, const Transaction& tx) {
  enc.begin_list()
      .add(U256{tx.nonce})
      .add(tx.gas_price)
      .add(U256{tx.gas_limit})
      .add(tx.from)
      .add(tx.to)
      .add(tx.value)
      .add(std::span(tx.data))
      .end_list();
}

void encode_key_into(rlp::Encoder& enc, const StateKey& key) {
  enc.begin_list()
      .add(key.addr)
      .add(U256{static_cast<std::uint64_t>(key.field)})
      .add(key.field == Field::kStorage ? key.slot : U256{})
      .end_list();
}

StateKey decode_key(const rlp::Item& item) {
  BP_ASSERT(item.is_list && item.list.size() >= 3);
  const std::uint64_t field = item.list[1].as_u64();
  BP_ASSERT_MSG(field <= 2, "unknown state-key field");
  // The converting constructor fills the cached hash.
  return StateKey{item.list[0].as_address(), static_cast<Field>(field),
                  item.list[2].as_u256()};
}

}  // namespace

BlockHeader decode_header(const rlp::Item& item) {
  BP_ASSERT(item.is_list && item.list.size() == 10);
  BlockHeader header;
  header.parent_hash = item.list[0].as_hash();
  header.number = item.list[1].as_u64();
  header.coinbase = item.list[2].as_address();
  header.state_root = item.list[3].as_hash();
  header.tx_root = item.list[4].as_hash();
  header.receipts_root = item.list[5].as_hash();
  BP_ASSERT_MSG(item.list[6].str.size() == Bloom::kBytes,
                "logs bloom must be 256 bytes");
  header.logs_bloom = Bloom::from_bytes(std::span(item.list[6].str));
  header.gas_limit = item.list[7].as_u64();
  header.gas_used = item.list[8].as_u64();
  header.timestamp = item.list[9].as_u64();
  return header;
}

Transaction decode_transaction(const rlp::Item& item) {
  BP_ASSERT(item.is_list && item.list.size() == 7);
  Transaction tx;
  tx.nonce = item.list[0].as_u64();
  tx.gas_price = item.list[1].as_u256();
  tx.gas_limit = item.list[2].as_u64();
  tx.from = item.list[3].as_address();
  tx.to = item.list[4].as_address();
  tx.value = item.list[5].as_u256();
  tx.data = item.list[6].str;
  return tx;
}

Bytes encode_block(const Block& block) {
  rlp::Encoder enc;
  enc.begin_list();
  encode_header_into(enc, block.header);
  enc.begin_list();
  for (const Transaction& tx : block.transactions) encode_tx_into(enc, tx);
  enc.end_list();
  enc.end_list();
  return enc.take();
}

Block decode_block(std::span<const std::uint8_t> wire) {
  const rlp::Item item = rlp::decode(wire);
  BP_ASSERT(item.is_list && item.list.size() == 2);
  Block block;
  block.header = decode_header(item.list[0]);
  BP_ASSERT(item.list[1].is_list);
  block.transactions.reserve(item.list[1].list.size());
  for (const rlp::Item& tx_item : item.list[1].list)
    block.transactions.push_back(decode_transaction(tx_item));
  return block;
}

Bytes encode_profile(const BlockProfile& profile) {
  rlp::Encoder enc;
  enc.begin_list();
  for (const TxProfile& tx : profile.txs) {
    enc.begin_list();
    enc.begin_list();
    for (const StateKey& key : tx.reads) encode_key_into(enc, key);
    enc.end_list();
    enc.begin_list();
    for (const auto& [key, value] : tx.writes) {
      enc.begin_list()
          .add(key.addr)
          .add(U256{static_cast<std::uint64_t>(key.field)})
          .add(key.field == Field::kStorage ? key.slot : U256{})
          .add(value)
          .end_list();
    }
    enc.end_list();
    enc.add(U256{tx.gas_used});
    enc.end_list();
  }
  enc.end_list();
  return enc.take();
}

BlockProfile decode_profile(std::span<const std::uint8_t> wire) {
  const rlp::Item item = rlp::decode(wire);
  BP_ASSERT(item.is_list);
  BlockProfile profile;
  profile.txs.reserve(item.list.size());
  for (const rlp::Item& tx_item : item.list) {
    BP_ASSERT(tx_item.is_list && tx_item.list.size() == 3);
    TxProfile tx;
    for (const rlp::Item& key_item : tx_item.list[0].list)
      tx.reads.push_back(decode_key(key_item));
    for (const rlp::Item& write_item : tx_item.list[1].list) {
      BP_ASSERT(write_item.is_list && write_item.list.size() == 4);
      tx.writes.emplace_back(decode_key(write_item),
                             write_item.list[3].as_u256());
    }
    tx.gas_used = tx_item.list[2].as_u64();
    profile.txs.push_back(std::move(tx));
  }
  return profile;
}

Bytes encode_announcement(const BlockAnnouncement& ann) {
  rlp::Encoder enc;
  enc.begin_list();
  const Bytes block_wire = encode_block(ann.block);
  const Bytes profile_wire = encode_profile(ann.profile);
  enc.add_raw(std::span(block_wire));
  enc.add_raw(std::span(profile_wire));
  enc.end_list();
  return enc.take();
}

BlockAnnouncement decode_announcement(std::span<const std::uint8_t> wire) {
  const rlp::Item item = rlp::decode(wire);
  BP_ASSERT(item.is_list && item.list.size() == 2);
  // Re-encode the sub-items to reuse the span-based decoders.  The two
  // sub-items are lists, so re-encoding them reproduces their wire bytes.
  BlockAnnouncement ann;
  {
    // decode_block expects a full wire buffer; reconstruct it.
    rlp::Encoder enc;
    const rlp::Item& block_item = item.list[0];
    BP_ASSERT(block_item.is_list && block_item.list.size() == 2);
    ann.block.header = decode_header(block_item.list[0]);
    for (const rlp::Item& tx_item : block_item.list[1].list)
      ann.block.transactions.push_back(decode_transaction(tx_item));
  }
  {
    const rlp::Item& profile_item = item.list[1];
    BP_ASSERT(profile_item.is_list);
    for (const rlp::Item& tx_item : profile_item.list) {
      BP_ASSERT(tx_item.is_list && tx_item.list.size() == 3);
      TxProfile tx;
      for (const rlp::Item& key_item : tx_item.list[0].list)
        tx.reads.push_back(decode_key(key_item));
      for (const rlp::Item& write_item : tx_item.list[1].list) {
        BP_ASSERT(write_item.is_list && write_item.list.size() == 4);
        tx.writes.emplace_back(decode_key(write_item),
                               write_item.list[3].as_u256());
      }
      tx.gas_used = tx_item.list[2].as_u64();
      ann.profile.txs.push_back(std::move(tx));
    }
  }
  return ann;
}

}  // namespace blockpilot::chain
