// Per-transaction execution receipt, its RLP encoding, the receipts-trie
// root and the block logs bloom (yellow paper §4.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "chain/bloom.hpp"
#include "evm/interpreter.hpp"
#include "types/address.hpp"

namespace blockpilot::chain {

struct Receipt {
  bool success = false;              // inner call did not revert/fail
  std::uint64_t gas_used = 0;        // this transaction's gas
  std::uint64_t cumulative_gas = 0;  // block-prefix cumulative gas
  std::vector<evm::LogRecord> logs;

  /// Bloom over this receipt's log addresses and topics.
  Bloom bloom() const;

  /// rlp([status, cumulativeGas, bloom, [[addr, [topics], data] ...]]).
  std::vector<std::uint8_t> rlp_encode() const;
};

/// Receipts-trie root: rlp(index) -> rlp(receipt), like the tx trie.
Hash256 receipts_root(const std::vector<Receipt>& receipts);

/// Union of all receipt blooms — the header's logsBloom field.
Bloom block_bloom(const std::vector<Receipt>& receipts);

}  // namespace blockpilot::chain
