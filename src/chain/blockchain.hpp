// Blockchain: the in-memory ledger.
//
// Stores blocks by hash, tracks per-hash post-state (validators at the same
// height may commit sibling blocks — forks — before one branch wins, §3.4),
// and maintains a canonical head.  Thread-safe: the pipeline's commitment
// phase appends from applier context while other stages read parent state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/receipt.hpp"
#include "commit/commit_pipeline.hpp"
#include "state/world_state.hpp"

namespace blockpilot::chain {

class Blockchain {
 public:
  /// Creates a chain whose genesis commits the given world state.
  explicit Blockchain(state::WorldState genesis_state);

  const Block& genesis() const { return *blocks_.at(genesis_hash_); }
  Hash256 genesis_hash() const noexcept { return genesis_hash_; }

  /// Appends a validated block with its post-execution state and (when
  /// available) its receipts.  The parent must already be stored.  Extends
  /// the canonical chain when the block builds on the current head
  /// (longest-chain by height otherwise).
  void commit_block(Block block,
                    std::shared_ptr<const state::WorldState> post_state,
                    std::vector<Receipt> receipts = {});

  /// Asynchronous-commitment variant: blocks on `commit` (the ledger is
  /// where the pipeline's overlap window closes), seals the header's state
  /// root from the result when the proposer left it zero, and asserts
  /// equality when the header already carries one.
  void commit_block(Block block, commit::CommitHandle commit,
                    std::vector<Receipt> receipts = {});

  /// Attaches a node store: every block committed from now on persists its
  /// post state's trie nodes, and blocks that extend the canonical head
  /// additionally pass the commit_root durability barrier (finalization is
  /// the only point where a root is known canonical — speculative siblings
  /// persist nodes but never advance the durable root).  `store` must
  /// outlive the chain; nullptr detaches.
  void attach_node_store(db::NodeStore* store);

  /// Looks up a block by hash.
  const Block* block_by_hash(const Hash256& h) const;

  /// Receipts stored with a block (empty when none were provided).
  const std::vector<Receipt>* receipts_of(const Hash256& h) const;

  /// The canonical block at `height` (walks the head's parent chain);
  /// nullptr when the height exceeds the head.
  const Block* canonical_block_at(std::uint64_t height) const;

  /// Post-execution world state of a stored block.
  std::shared_ptr<const state::WorldState> state_of(const Hash256& h) const;

  /// Canonical head block.
  const Block& head() const;
  std::shared_ptr<const state::WorldState> head_state() const;

  std::uint64_t height() const;
  std::size_t block_count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<Hash256, std::unique_ptr<Block>> blocks_;
  std::unordered_map<Hash256, std::shared_ptr<const state::WorldState>> states_;
  std::unordered_map<Hash256, std::vector<Receipt>> receipts_;
  Hash256 genesis_hash_;
  Hash256 head_hash_;
  db::NodeStore* node_store_ = nullptr;  // guarded by mu_
};

// ---- log queries (eth_getLogs analogue) ----

/// A conjunctive log filter: all present fields must match.
struct LogQuery {
  std::optional<Address> address;   // emitting contract
  std::optional<U256> topic;        // any topic position
  std::uint64_t from_height = 0;
  std::uint64_t to_height = UINT64_MAX;  // inclusive; clamped to head
};

struct LogMatch {
  std::uint64_t height = 0;
  Hash256 block_hash;
  std::size_t tx_index = 0;
  std::size_t log_index = 0;  // within the transaction
  evm::LogRecord log;
};

/// Scans the canonical chain for logs matching `query`, using each block
/// header's logs bloom to skip blocks that definitely contain no match —
/// the standard light-scan pattern the bloom exists for.
std::vector<LogMatch> filter_logs(const Blockchain& chain,
                                  const LogQuery& query);

}  // namespace blockpilot::chain
