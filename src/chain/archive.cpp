#include "chain/archive.hpp"

#include <array>
#include <cstring>

namespace blockpilot::chain {
namespace {

constexpr char kMagic[8] = {'B', 'P', 'A', 'R', 'C', 'H', '0', '1'};

}  // namespace

BlockArchiveWriter::BlockArchiveWriter(std::ostream& out) : out_(out) {
  out_.write(kMagic, sizeof(kMagic));
}

void BlockArchiveWriter::append(const BlockAnnouncement& ann) {
  const Bytes wire = encode_announcement(ann);
  const auto len = static_cast<std::uint32_t>(wire.size());
  std::array<char, 4> prefix;
  for (int i = 0; i < 4; ++i)
    prefix[static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  out_.write(prefix.data(), prefix.size());
  out_.write(reinterpret_cast<const char*>(wire.data()),
             static_cast<std::streamsize>(wire.size()));
  ++entries_;
}

BlockArchiveReader::BlockArchiveReader(std::istream& in) : in_(in) {
  char magic[8];
  in_.read(magic, sizeof(magic));
  ok_ = in_.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

std::optional<BlockAnnouncement> BlockArchiveReader::next() {
  if (!ok_) return std::nullopt;
  std::array<char, 4> prefix;
  in_.read(prefix.data(), prefix.size());
  if (in_.eof()) return std::nullopt;  // clean end of archive
  if (!in_.good()) {
    ok_ = false;
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i)
    len = (len << 8) |
          static_cast<std::uint8_t>(prefix[static_cast<std::size_t>(i)]);
  if (len == 0 || len > (64u << 20)) {  // 64 MiB sanity bound
    ok_ = false;
    return std::nullopt;
  }
  Bytes wire(len);
  in_.read(reinterpret_cast<char*>(wire.data()),
           static_cast<std::streamsize>(len));
  if (!in_.good()) {
    ok_ = false;
    return std::nullopt;
  }
  return decode_announcement(std::span(wire));
}

}  // namespace blockpilot::chain
