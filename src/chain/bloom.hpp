// Ethereum-style 2048-bit logs bloom filter (yellow paper §4.3.1, the M
// function): each indexable item (log address, log topic) sets three bits
// chosen by the low 11 bits of byte pairs 0-1, 2-3 and 4-5 of its
// Keccak-256 digest.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>

#include "crypto/keccak.hpp"

namespace blockpilot::chain {

class Bloom {
 public:
  static constexpr std::size_t kBytes = 256;  // 2048 bits

  constexpr Bloom() noexcept = default;

  /// Sets the three bloom bits for one indexable byte string.
  void add(std::span<const std::uint8_t> item) noexcept {
    const crypto::Digest digest = crypto::keccak256(item);
    for (int pair = 0; pair < 3; ++pair) {
      const std::size_t bit =
          ((static_cast<std::size_t>(digest[static_cast<std::size_t>(pair) * 2])
            << 8) |
           digest[static_cast<std::size_t>(pair) * 2 + 1]) &
          0x7ff;
      bits_[kBytes - 1 - bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }

  /// Conservative membership test: false means definitely absent.
  bool may_contain(std::span<const std::uint8_t> item) const noexcept {
    const crypto::Digest digest = crypto::keccak256(item);
    for (int pair = 0; pair < 3; ++pair) {
      const std::size_t bit =
          ((static_cast<std::size_t>(digest[static_cast<std::size_t>(pair) * 2])
            << 8) |
           digest[static_cast<std::size_t>(pair) * 2 + 1]) &
          0x7ff;
      if ((bits_[kBytes - 1 - bit / 8] &
           static_cast<std::uint8_t>(1u << (bit % 8))) == 0)
        return false;
    }
    return true;
  }

  /// Merges another bloom (block bloom = union of receipt blooms).
  void merge(const Bloom& other) noexcept {
    for (std::size_t i = 0; i < kBytes; ++i) bits_[i] |= other.bits_[i];
  }

  bool empty() const noexcept {
    for (const auto b : bits_)
      if (b != 0) return false;
    return true;
  }

  const std::array<std::uint8_t, kBytes>& bytes() const noexcept {
    return bits_;
  }

  /// Reconstructs a bloom from its 256-byte wire representation.
  static Bloom from_bytes(std::span<const std::uint8_t> raw) noexcept {
    Bloom b;
    if (raw.size() == kBytes)
      std::copy(raw.begin(), raw.end(), b.bits_.begin());
    return b;
  }

  friend bool operator==(const Bloom&, const Bloom&) noexcept = default;

 private:
  std::array<std::uint8_t, kBytes> bits_{};
};

}  // namespace blockpilot::chain
