#include "chain/block.hpp"

#include "rlp/rlp.hpp"

namespace blockpilot::chain {

Bytes BlockHeader::rlp_encode() const {
  rlp::Encoder enc;
  enc.begin_list()
      .add(parent_hash)
      .add(U256{number})
      .add(coinbase)
      .add(state_root)
      .add(tx_root)
      .add(receipts_root)
      .add(std::span(logs_bloom.bytes()))
      .add(U256{gas_limit})
      .add(U256{gas_used})
      .add(U256{timestamp})
      .end_list();
  return enc.take();
}

Hash256 BlockHeader::hash() const {
  const Bytes encoded = rlp_encode();
  return Hash256::of(std::span(encoded));
}

Hash256 transactions_root(const std::vector<Transaction>& txs) {
  trie::MerklePatriciaTrie t;  // index keys are not hashed (yellow paper)
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto key = rlp::encode(static_cast<std::uint64_t>(i));
    const auto value = txs[i].rlp_encode();
    t.put(std::span(key), std::span(value));
  }
  return t.root_hash();
}

}  // namespace blockpilot::chain
