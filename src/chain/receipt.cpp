#include "chain/receipt.hpp"

#include "rlp/rlp.hpp"
#include "trie/mpt.hpp"

namespace blockpilot::chain {

Bloom Receipt::bloom() const {
  Bloom b;
  for (const evm::LogRecord& log : logs) {
    b.add(std::span(log.address.bytes));
    for (const U256& topic : log.topics) {
      const auto be = topic.to_be_bytes();
      b.add(std::span(be));
    }
  }
  return b;
}

std::vector<std::uint8_t> Receipt::rlp_encode() const {
  rlp::Encoder enc;
  enc.begin_list();
  enc.add(U256{success ? 1u : 0u});
  enc.add(U256{cumulative_gas});
  const Bloom b = bloom();
  enc.add(std::span(b.bytes()));
  enc.begin_list();
  for (const evm::LogRecord& log : logs) {
    enc.begin_list();
    enc.add(log.address);
    enc.begin_list();
    for (const U256& topic : log.topics) {
      const auto be = topic.to_be_bytes();
      enc.add(std::span(be));  // topics are full 32-byte words
    }
    enc.end_list();
    enc.add(std::span(log.data));
    enc.end_list();
  }
  enc.end_list();
  enc.end_list();
  return enc.take();
}

Hash256 receipts_root(const std::vector<Receipt>& receipts) {
  trie::MerklePatriciaTrie t;
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    const auto key = rlp::encode(static_cast<std::uint64_t>(i));
    const auto value = receipts[i].rlp_encode();
    t.put(std::span(key), std::span(value));
  }
  return t.root_hash();
}

Bloom block_bloom(const std::vector<Receipt>& receipts) {
  Bloom b;
  for (const Receipt& r : receipts) b.merge(r.bloom());
  return b;
}

}  // namespace blockpilot::chain
