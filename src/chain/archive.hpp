// Block archive: a length-prefixed binary stream of block announcements —
// the persistence/sync substrate (export a chain, replay it into a fresh
// node, as geth's export/import does).
//
// Format: 8-byte magic "BPARCH01", then per entry a 4-byte little-endian
// length followed by the RLP announcement (chain/codec.hpp).
#pragma once

#include <istream>
#include <optional>
#include <ostream>

#include "chain/codec.hpp"

namespace blockpilot::chain {

class BlockArchiveWriter {
 public:
  /// Writes the magic immediately.  The stream must outlive the writer.
  explicit BlockArchiveWriter(std::ostream& out);

  /// Appends one announcement.
  void append(const BlockAnnouncement& ann);

  std::size_t entries() const noexcept { return entries_; }

 private:
  std::ostream& out_;
  std::size_t entries_ = 0;
};

class BlockArchiveReader {
 public:
  /// Verifies the magic; ok() reports whether the stream is a valid archive.
  explicit BlockArchiveReader(std::istream& in);

  bool ok() const noexcept { return ok_; }

  /// Reads the next announcement; nullopt at end-of-stream or on a
  /// malformed entry (ok() turns false for the latter).
  std::optional<BlockAnnouncement> next();

 private:
  std::istream& in_;
  bool ok_ = false;
};

}  // namespace blockpilot::chain
