// Transaction: a signed-transfer abstraction (signatures elided — sender
// recovery is outside this reproduction's scope; `from` is authoritative).
#pragma once

#include <cstdint>
#include <vector>

#include "rlp/rlp.hpp"
#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::chain {

using Bytes = std::vector<std::uint8_t>;

struct Transaction {
  std::uint64_t nonce = 0;
  U256 gas_price;
  std::uint64_t gas_limit = 0;
  Address from;
  Address to;
  U256 value;
  Bytes data;

  friend bool operator==(const Transaction&, const Transaction&) = default;

  /// Canonical RLP encoding [nonce, gasPrice, gasLimit, from, to, value,
  /// data] (the `from` field substitutes for the signature triplet).
  Bytes rlp_encode() const {
    rlp::Encoder enc;
    enc.begin_list()
        .add(U256{nonce})
        .add(gas_price)
        .add(U256{gas_limit})
        .add(from)
        .add(to)
        .add(value)
        .add(std::span(data))
        .end_list();
    return enc.take();
  }

  /// Transaction hash: keccak over the RLP encoding.
  Hash256 hash() const {
    const Bytes encoded = rlp_encode();
    return Hash256::of(std::span(encoded));
  }
};

}  // namespace blockpilot::chain
