#include "chain/blockchain.hpp"

#include "db/node_store.hpp"
#include "support/assert.hpp"

namespace blockpilot::chain {

Blockchain::Blockchain(state::WorldState genesis_state) {
  auto genesis = std::make_unique<Block>();
  genesis->header.number = 0;
  genesis->header.state_root = genesis_state.state_root();
  genesis->header.tx_root = transactions_root({});
  genesis_hash_ = genesis->header.hash();
  head_hash_ = genesis_hash_;
  states_[genesis_hash_] =
      std::make_shared<const state::WorldState>(std::move(genesis_state));
  blocks_[genesis_hash_] = std::move(genesis);
}

void Blockchain::commit_block(
    Block block, std::shared_ptr<const state::WorldState> post_state,
    std::vector<Receipt> receipts) {
  db::NodeStore* store = nullptr;
  std::shared_ptr<const state::WorldState> to_persist;
  bool finalized = false;
  const Hash256 state_root = block.header.state_root;
  const std::uint64_t number = block.header.number;
  {
    std::scoped_lock lk(mu_);
    BP_ASSERT_MSG(blocks_.contains(block.header.parent_hash),
                  "unknown parent block");
    BP_ASSERT(post_state != nullptr);
    const Hash256 h = block.header.hash();
    states_[h] = post_state;
    if (!receipts.empty()) receipts_[h] = std::move(receipts);
    blocks_[h] = std::make_unique<Block>(std::move(block));
    if (number > blocks_.at(head_hash_)->header.number) {
      head_hash_ = h;
      finalized = true;
    }
    store = node_store_;
    if (store != nullptr) to_persist = std::move(post_state);
  }
  // Store I/O runs outside the ledger lock.  Sibling blocks persist their
  // nodes too (usually a no-op after the pipeline already appended them),
  // but only a block that took the head advances the durable root.
  if (store != nullptr) {
    (void)to_persist->persist_commitment(*store);
    if (finalized) {
      const db::Status st = store->commit_root(state_root, number);
      BP_ASSERT_MSG(st.ok(), "node store durability barrier failed");
    }
  }
}

void Blockchain::attach_node_store(db::NodeStore* store) {
  std::scoped_lock lk(mu_);
  node_store_ = store;
}

void Blockchain::commit_block(Block block, commit::CommitHandle commit,
                              std::vector<Receipt> receipts) {
  BP_ASSERT_MSG(commit.valid(), "commit handle not submitted");
  const commit::CommitResult& r = commit.get();
  const Hash256 zero{};
  if (block.header.state_root == zero) {
    block.header.state_root = r.state_root;  // un-sealed proposer header
  } else {
    BP_ASSERT_MSG(block.header.state_root == r.state_root,
                  "async commitment contradicts sealed header");
  }
  commit_block(std::move(block), r.post_state, std::move(receipts));
}

const std::vector<Receipt>* Blockchain::receipts_of(const Hash256& h) const {
  std::scoped_lock lk(mu_);
  const auto it = receipts_.find(h);
  return it == receipts_.end() ? nullptr : &it->second;
}

const Block* Blockchain::canonical_block_at(std::uint64_t height) const {
  std::scoped_lock lk(mu_);
  const Block* cursor = blocks_.at(head_hash_).get();
  if (height > cursor->header.number) return nullptr;
  while (cursor->header.number > height) {
    const auto it = blocks_.find(cursor->header.parent_hash);
    BP_ASSERT_MSG(it != blocks_.end(), "broken parent chain");
    cursor = it->second.get();
  }
  return cursor;
}

const Block* Blockchain::block_by_hash(const Hash256& h) const {
  std::scoped_lock lk(mu_);
  const auto it = blocks_.find(h);
  return it == blocks_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const state::WorldState> Blockchain::state_of(
    const Hash256& h) const {
  std::scoped_lock lk(mu_);
  const auto it = states_.find(h);
  return it == states_.end() ? nullptr : it->second;
}

const Block& Blockchain::head() const {
  std::scoped_lock lk(mu_);
  return *blocks_.at(head_hash_);
}

std::shared_ptr<const state::WorldState> Blockchain::head_state() const {
  std::scoped_lock lk(mu_);
  return states_.at(head_hash_);
}

std::uint64_t Blockchain::height() const {
  std::scoped_lock lk(mu_);
  return blocks_.at(head_hash_)->header.number;
}

std::size_t Blockchain::block_count() const {
  std::scoped_lock lk(mu_);
  return blocks_.size();
}

std::vector<LogMatch> filter_logs(const Blockchain& chain,
                                  const LogQuery& query) {
  std::vector<LogMatch> matches;
  const std::uint64_t head = chain.height();
  const std::uint64_t last = std::min(query.to_height, head);

  for (std::uint64_t h = query.from_height; h <= last; ++h) {
    const Block* block = chain.canonical_block_at(h);
    if (block == nullptr) break;

    // Bloom pre-filter: skip blocks that definitely contain no match.
    if (query.address.has_value() &&
        !block->header.logs_bloom.may_contain(
            std::span(query.address->bytes)))
      continue;
    if (query.topic.has_value()) {
      const auto topic_bytes = query.topic->to_be_bytes();
      if (!block->header.logs_bloom.may_contain(std::span(topic_bytes)))
        continue;
    }

    const std::vector<Receipt>* receipts =
        chain.receipts_of(block->header.hash());
    if (receipts == nullptr) continue;  // no receipts stored for this block

    for (std::size_t tx = 0; tx < receipts->size(); ++tx) {
      const auto& logs = (*receipts)[tx].logs;
      for (std::size_t i = 0; i < logs.size(); ++i) {
        const evm::LogRecord& log = logs[i];
        if (query.address.has_value() && !(log.address == *query.address))
          continue;
        if (query.topic.has_value()) {
          bool topic_hit = false;
          for (const U256& topic : log.topics)
            if (topic == *query.topic) topic_hit = true;
          if (!topic_hit) continue;
        }
        matches.push_back(LogMatch{h, block->header.hash(), tx, i, log});
      }
    }
  }
  return matches;
}

}  // namespace blockpilot::chain
