// BlockProfile: the proposer's broadcast execution details (paper §4.2).
//
// "It is proposed that they provide execution details like read and write
// sets about their transactions in the block profile and broadcast it into
// the network.  This enables validators to validate transactions faster."
//
// One TxProfile per transaction, in block order.  The validator's
// preparation phase builds the dependency graph from these sets, and its
// applier checks each re-executed transaction's observed sets against them
// (Algorithm 2).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "state/state_key.hpp"
#include "types/u256.hpp"

namespace blockpilot::chain {

struct TxProfile {
  /// Keys the transaction read from pre-write state.
  std::vector<state::StateKey> reads;
  /// Keys the transaction wrote with their final values.
  std::vector<std::pair<state::StateKey, U256>> writes;
  /// Gas the proposer measured; the validator's scheduler uses it as the
  /// execution-time estimate (§4.3).
  std::uint64_t gas_used = 0;
};

struct BlockProfile {
  std::vector<TxProfile> txs;

  bool empty() const noexcept { return txs.empty(); }
  std::size_t size() const noexcept { return txs.size(); }
};

}  // namespace blockpilot::chain
