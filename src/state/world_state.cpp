#include "state/world_state.hpp"

#include "crypto/keccak.hpp"
#include "db/node_store.hpp"
#include "rlp/rlp.hpp"
#include "support/assert.hpp"

namespace blockpilot::state {

std::shared_ptr<StorageSeed> BlockSeedSet::cell_for(const Address& addr) {
  std::scoped_lock lk(mu_);
  auto& cell = cells_[addr];
  if (cell == nullptr) cell = std::make_shared<StorageSeed>();
  return cell;
}

std::size_t BlockSeedSet::size() const {
  std::scoped_lock lk(mu_);
  return cells_.size();
}

std::shared_ptr<BlockSeedSet> BlockSeedDirectory::for_block(
    const Hash256& block_hash) {
  std::scoped_lock lk(mu_);
  auto& set = sets_[block_hash];
  if (set == nullptr) set = std::make_shared<BlockSeedSet>();
  return set;
}

BlockSeedDirectory::Stats BlockSeedDirectory::stats() const {
  std::scoped_lock lk(mu_);
  Stats s;
  s.blocks = sets_.size();
  for (const auto& [hash, set] : sets_) {
    s.seeds_built += set->seeds_built.load(std::memory_order_relaxed);
    s.seeds_adopted += set->seeds_adopted.load(std::memory_order_relaxed);
  }
  return s;
}

void BlockSeedDirectory::clear() {
  std::scoped_lock lk(mu_);
  sets_.clear();
}

std::string StateKey::to_string() const {
  switch (field) {
    case Field::kBalance:
      return addr.to_hex() + "/balance";
    case Field::kNonce:
      return addr.to_hex() + "/nonce";
    case Field::kStorage:
      return addr.to_hex() + "/slot:" + slot.to_hex();
  }
  return "?";
}

// Copying shares the persistent tries (O(1) per trie) and carries the memos
// over, so a copied state answers state_root() without re-hashing anything
// the source had already committed.  accounts_ is copied outside the commit
// mutex — it is never mutated concurrently (writes don't race by contract)
// — and the lock-guarded commitment structures are pure memory copies, so a
// copy taken while a commit is in flight waits only for that commit's short
// structural fold, never for its hashing.
WorldState::WorldState(const WorldState& other) {
  accounts_ = other.accounts_;
  std::scoped_lock lk(other.commit_mu_);
  account_trie_ = other.account_trie_;
  commit_ = other.commit_;
  dirty_ = other.dirty_;
  root_memo_ = other.root_memo_;
  root_valid_ = other.root_valid_;
  stats_ = other.stats_;
}

WorldState& WorldState::operator=(const WorldState& other) {
  if (this == &other) return *this;
  accounts_ = other.accounts_;
  std::scoped_lock lk(commit_mu_, other.commit_mu_);
  account_trie_ = other.account_trie_;
  commit_ = other.commit_;
  dirty_ = other.dirty_;
  root_memo_ = other.root_memo_;
  root_valid_ = other.root_valid_;
  stats_ = other.stats_;
  return *this;
}

// Moving is a mutation of the source, which by contract cannot race with
// any other access — no locking needed.
WorldState::WorldState(WorldState&& other) noexcept
    : accounts_(std::move(other.accounts_)),
      account_trie_(std::move(other.account_trie_)),
      commit_(std::move(other.commit_)),
      dirty_(std::move(other.dirty_)),
      root_memo_(other.root_memo_),
      root_valid_(other.root_valid_),
      stats_(other.stats_) {
  other.root_valid_ = false;
}

WorldState& WorldState::operator=(WorldState&& other) noexcept {
  if (this == &other) return *this;
  accounts_ = std::move(other.accounts_);
  account_trie_ = std::move(other.account_trie_);
  commit_ = std::move(other.commit_);
  dirty_ = std::move(other.dirty_);
  root_memo_ = other.root_memo_;
  root_valid_ = other.root_valid_;
  stats_ = other.stats_;
  other.root_valid_ = false;
  return *this;
}

U256 WorldState::get(const StateKey& key) const {
  const auto it = accounts_.find(key.addr);
  if (it == accounts_.end()) return U256{};
  const AccountData& acct = it->second;
  switch (key.field) {
    case Field::kBalance:
      return acct.balance;
    case Field::kNonce:
      return U256{acct.nonce};
    case Field::kStorage: {
      const auto sit = acct.storage.find(key.slot);
      return sit == acct.storage.end() ? U256{} : sit->second;
    }
  }
  return U256{};
}

// A storage write changes the slot map's content-version, so the account
// must leave any seed cell that copies may still share or that was already
// filled.  A still-private, unfilled cell has never been observed by anyone
// else and can absorb consecutive writes from this lineage.
static void refresh_storage_seed(AccountData& acct) {
  auto& cell = acct.storage_seed;
  if (cell != nullptr && cell.use_count() == 1 &&
      !cell->ready.load(std::memory_order_relaxed))
    return;
  cell = std::make_shared<StorageSeed>();
}

void WorldState::set(const StateKey& key, const U256& value) {
  AccountData& acct = account(key.addr);
  switch (key.field) {
    case Field::kBalance:
      acct.balance = value;
      mark_dirty_account(key.addr);
      break;
    case Field::kNonce:
      BP_ASSERT_MSG(value.fits64(), "nonce overflow");
      acct.nonce = value.low64();
      mark_dirty_account(key.addr);
      break;
    case Field::kStorage:
      if (value.is_zero())
        acct.storage.erase(key.slot);
      else
        acct.storage[key.slot] = value;
      refresh_storage_seed(acct);
      mark_dirty_slot(key.addr, key.slot);
      break;
  }
}

std::shared_ptr<const Bytes> WorldState::code(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return nullptr;
  return it->second.code;
}

void WorldState::set_code(const Address& addr, Bytes code) {
  AccountData& acct = account(addr);
  acct.code_hash =
      code.empty() ? Hash256{} : Hash256::of(std::span(code));
  acct.code = std::make_shared<const Bytes>(std::move(code));
  mark_dirty_account(addr);
}

Hash256 WorldState::code_hash(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return Hash256{};
  return it->second.code_hash;
}

Hash256 storage_root_of(const std::unordered_map<U256, U256>& storage) {
  trie::SecureTrie st;
  for (const auto& [slot, value] : storage) {
    if (value.is_zero()) continue;
    const auto key = slot.to_be_bytes();
    const auto encoded = rlp::encode(value);
    st.put(std::span(key), std::span(encoded));
  }
  return st.root_hash();
}

Bytes encode_account(const AccountData& acct, const Hash256& storage_root) {
  // codeHash = keccak(code), keccak("") for code-less accounts.
  Hash256 code_hash;
  if (acct.code != nullptr) {
    code_hash = Hash256{crypto::keccak256(std::span(*acct.code))};
  } else {
    code_hash = Hash256{crypto::keccak256(std::span<const std::uint8_t>{})};
  }
  rlp::Encoder enc;
  enc.begin_list()
      .add(U256{acct.nonce})
      .add(acct.balance)
      .add(storage_root)
      .add(code_hash)
      .end_list();
  return enc.take();
}

// state_root() protocol — every keccak runs outside commit_mu_:
//
//   collect (commit_mu_)   snapshot the dirty set into per-account folds:
//                          persistent copies of the storage tries to apply
//                          slots to, seed cells for fresh accounts, memoized
//                          roots for body-only changes.  No hashing.
//   hash    (unlocked)     build/adopt/apply storage tries, hash their
//                          roots, RLP-encode the accounts.  Reads accounts_
//                          without the lock — writes never race with root
//                          queries by contract, so the maps are stable.
//   install (commit_mu_)   fold results back into commit_ and the account
//                          trie (puts/erases only — the leaf hashes were
//                          already memoized in the hash phase), clear the
//                          dirty set, take a persistent account-trie
//                          snapshot.  No hashing beyond keccak(address).
//   root    (unlocked)     hash the snapshot's root.
//   memo    (commit_mu_)   publish the memo if nothing re-dirtied.
//
// The fold is idempotent — re-seeding a fresh account or re-applying dirty
// slots from the current accounts_ values reproduces the same tries — so a
// copy taken between any two phases (which still sees the dirty set) simply
// re-folds on its own first state_root() and lands on the same root.
// root_mu_ serializes whole computations so two rooters on the same object
// cannot interleave their unlocked phases.
struct WorldState::StorageFold {
  enum class Kind { kPrune, kBuild, kApplySlots, kBodyOnly };

  Address addr;
  Kind kind = Kind::kBodyOnly;
  const AccountData* acct = nullptr;  // stable: no writes during root calls
  std::shared_ptr<StorageSeed> seed;  // kBuild: the account's cell (may be null)
  std::shared_ptr<StorageSeed> block_cell;  // block-level cell (may be null)
  trie::SecureTrie trie;              // working persistent copy
  std::vector<U256> slots;            // kApplySlots: touched slots
  Hash256 storage_root;
  Bytes encoded;                      // account RLP, produced off-lock
  bool adopted = false;               // kBuild: served from a ready seed
  bool published = false;             // this computation filled the account cell
  bool block_adopted = false;         // served from the block cell
  bool block_published = false;       // this computation filled the block cell
};

/// One-time fill of a seed cell (account- or block-level).  Returns whether
/// this call published; a no-op on an already-ready cell.
static bool publish_seed(const std::shared_ptr<StorageSeed>& cell,
                         const trie::SecureTrie& trie, const Hash256& root) {
  if (cell == nullptr) return false;
  std::scoped_lock sl(cell->mu);
  if (cell->ready.load(std::memory_order_relaxed)) return false;
  cell->trie = trie;
  cell->storage_root = root;
  cell->ready.store(true, std::memory_order_release);
  return true;
}

std::vector<WorldState::StorageFold> WorldState::collect_folds_locked() const {
  std::vector<StorageFold> folds;
  folds.reserve(dirty_.size());
  stats_.dirty_accounts += dirty_.size();
  for (const auto& [addr, slots] : dirty_) {
    StorageFold f;
    f.addr = addr;
    const auto ait = accounts_.find(addr);
    if (ait == accounts_.end() || ait->second.empty_account()) {
      // Pruned like post-EIP-161: drop from the commitment (and the memo,
      // so a later resurrection rebuilds — or re-adopts its seed).
      f.kind = StorageFold::Kind::kPrune;
      folds.push_back(std::move(f));
      continue;
    }
    f.acct = &ait->second;
    AccountCommit& cc = commit_[addr];
    if (cc.fresh) {
      f.kind = StorageFold::Kind::kBuild;
      f.seed = ait->second.storage_seed;
    } else if (!slots.empty()) {
      f.kind = StorageFold::Kind::kApplySlots;
      f.trie = cc.storage_trie;  // persistent: puts off-lock path-copy
      f.slots.assign(slots.begin(), slots.end());
    } else {
      f.kind = StorageFold::Kind::kBodyOnly;
      f.storage_root = cc.storage_root;
    }
    // Block-level sharing: folds that would hash (build or apply) rendezvous
    // with sibling replicas of the same block through a per-account cell.
    if (block_seeds_ != nullptr && (f.kind == StorageFold::Kind::kBuild ||
                                    f.kind == StorageFold::Kind::kApplySlots))
      f.block_cell = block_seeds_->cell_for(addr);
    folds.push_back(std::move(f));
  }
  return folds;
}

void WorldState::hash_folds_unlocked(std::vector<StorageFold>& folds) const {
  for (StorageFold& f : folds) {
    switch (f.kind) {
      case StorageFold::Kind::kPrune:
        continue;
      case StorageFold::Kind::kBuild: {
        if (f.seed != nullptr &&
            f.seed->ready.load(std::memory_order_acquire)) {
          // Another lineage already committed this exact slot map (cell
          // identity guarantees content identity): adopt its trie in O(1).
          f.trie = f.seed->trie;
          f.storage_root = f.seed->storage_root;
          f.adopted = true;
        } else if (f.block_cell != nullptr &&
                   f.block_cell->ready.load(std::memory_order_acquire)) {
          // A sibling replica of the same block already built this account's
          // post-block trie (deterministic replay guarantees content
          // identity): adopt it in O(1).
          f.trie = f.block_cell->trie;
          f.storage_root = f.block_cell->storage_root;
          f.adopted = true;
          f.block_adopted = true;
        } else {
          for (const auto& [slot, value] : f.acct->storage) {
            if (value.is_zero()) continue;
            const auto key = slot.to_be_bytes();
            const auto encoded = rlp::encode(value);
            f.trie.put(std::span(key), std::span(encoded));
          }
          f.storage_root = f.trie.root_hash();
        }
        // Cross-publish so whichever cell is still empty serves the next
        // replica (an already-ready cell makes publish_seed a no-op).
        f.published = publish_seed(f.seed, f.trie, f.storage_root);
        f.block_published = publish_seed(f.block_cell, f.trie, f.storage_root);
        break;
      }
      case StorageFold::Kind::kApplySlots: {
        if (f.block_cell != nullptr &&
            f.block_cell->ready.load(std::memory_order_acquire)) {
          // Sibling replica already holds the post-block trie; identical
          // final slot maps make adoption equivalent to re-applying.
          f.trie = f.block_cell->trie;
          f.storage_root = f.block_cell->storage_root;
          f.block_adopted = true;
          break;
        }
        // Only the touched slots; untouched subtrees keep their memoized
        // hashes inside the persistent trie.
        for (const U256& slot : f.slots) {
          const auto key = slot.to_be_bytes();
          const auto sit = f.acct->storage.find(slot);
          if (sit == f.acct->storage.end() || sit->second.is_zero()) {
            f.trie.erase(std::span(key));
          } else {
            const auto encoded = rlp::encode(sit->second);
            f.trie.put(std::span(key), std::span(encoded));
          }
        }
        f.storage_root = f.trie.root_hash();
        f.block_published = publish_seed(f.block_cell, f.trie, f.storage_root);
        break;
      }
      case StorageFold::Kind::kBodyOnly:
        break;
    }
    f.encoded = encode_account(*f.acct, f.storage_root);
  }
}

trie::SecureTrie WorldState::install_folds_locked(
    std::vector<StorageFold>& folds) const {
  for (StorageFold& f : folds) {
    if (f.kind == StorageFold::Kind::kPrune) {
      account_trie_.erase(std::span(f.addr.bytes));
      commit_.erase(f.addr);
      continue;
    }
    AccountCommit& cc = commit_[f.addr];
    switch (f.kind) {
      case StorageFold::Kind::kBuild:
        cc.storage_trie = std::move(f.trie);
        cc.storage_root = f.storage_root;
        cc.fresh = false;
        if (f.adopted)
          ++stats_.seeds_adopted;
        else
          ++stats_.accounts_resynced;
        if (f.published) ++stats_.seeds_built;
        break;
      case StorageFold::Kind::kApplySlots:
        cc.storage_trie = std::move(f.trie);
        cc.storage_root = f.storage_root;
        if (f.block_adopted)
          ++stats_.seeds_adopted;
        else
          stats_.slots_resynced += f.slots.size();
        break;
      case StorageFold::Kind::kBodyOnly:
      case StorageFold::Kind::kPrune:
        break;
    }
    if (f.block_published) ++stats_.seeds_built;
    if (block_seeds_ != nullptr) {
      if (f.block_adopted)
        block_seeds_->seeds_adopted.fetch_add(1, std::memory_order_relaxed);
      if (f.block_published)
        block_seeds_->seeds_built.fetch_add(1, std::memory_order_relaxed);
    }
    account_trie_.put(std::span(f.addr.bytes), std::span(f.encoded));
  }
  dirty_.clear();
  root_valid_ = false;
  block_seeds_ = nullptr;  // one-shot: consumed by this computation
  return account_trie_;  // persistent snapshot: shares nodes, O(1)
}

Hash256 WorldState::storage_root(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return trie::MerklePatriciaTrie::empty_root();
  {
    std::scoped_lock lk(commit_mu_);
    const auto cit = commit_.find(addr);
    const auto dit = dirty_.find(addr);
    const bool storage_clean = dit == dirty_.end() || dit->second.empty();
    if (cit != commit_.end() && !cit->second.fresh && storage_clean)
      return cit->second.storage_root;
  }
  // A ready seed cell is always in sync with the current slot map (writes
  // swap the cell), so it answers even before this state's first commit.
  if (const auto& seed = it->second.storage_seed;
      seed != nullptr && seed->ready.load(std::memory_order_acquire))
    return seed->storage_root;
  return storage_root_of(it->second.storage);
}

Hash256 WorldState::state_root() const {
  {
    std::scoped_lock lk(commit_mu_);
    if (root_valid_ && dirty_.empty()) {
      ++stats_.root_memo_hits;
      return root_memo_;
    }
  }
  // Serialize whole computations; copies contend only on commit_mu_ below.
  std::scoped_lock rl(root_mu_);
  std::vector<StorageFold> folds;
  {
    std::scoped_lock lk(commit_mu_);
    if (root_valid_ && dirty_.empty()) {
      ++stats_.root_memo_hits;
      return root_memo_;
    }
    folds = collect_folds_locked();
  }
  hash_folds_unlocked(folds);
  trie::SecureTrie snapshot;
  {
    std::scoped_lock lk(commit_mu_);
    snapshot = install_folds_locked(folds);
  }
  const Hash256 root = snapshot.root_hash();
  {
    std::scoped_lock lk(commit_mu_);
    ++stats_.root_recomputes;
    if (dirty_.empty()) {
      root_memo_ = root;
      root_valid_ = true;
    }
  }
  return root;
}

Hash256 WorldState::state_root_full_rebuild() const {
  trie::SecureTrie accounts_trie;
  for (const auto& [addr, acct] : accounts_) {
    if (acct.empty_account()) continue;
    const Bytes encoded = encode_account(acct, storage_root_of(acct.storage));
    accounts_trie.put(std::span(addr.bytes), std::span(encoded));
  }
  return accounts_trie.root_hash();
}

CommitStats WorldState::commit_stats() const {
  std::scoped_lock lk(commit_mu_);
  return stats_;
}

void WorldState::adopt_block_seeds(std::shared_ptr<BlockSeedSet> seeds) {
  std::scoped_lock lk(commit_mu_);
  block_seeds_ = std::move(seeds);
}

std::size_t WorldState::persist_commitment(db::NodeStore& store) const {
  const Hash256 root = state_root();  // folds dirty writes; memos current
  // Fast path: a stored root implies its whole closure is stored (persists
  // append post-order, so nothing can reference a missing descendant — see
  // persist_subtree).  Re-commits of an already-persisted state — the chain
  // layer persisting after the pipeline already did, sibling blocks sharing
  // a parent — skip the snapshot and the storage-trie walk entirely.
  if (store.contains(root)) return 0;
  // Snapshot the persistent tries under the short structural lock (O(1)
  // copies sharing the node graphs) and persist outside it, so concurrent
  // root computations never wait on store I/O.
  trie::SecureTrie account_snapshot;
  std::vector<trie::SecureTrie> storage_snapshots;
  {
    std::scoped_lock lk(commit_mu_);
    account_snapshot = account_trie_;
    storage_snapshots.reserve(commit_.size());
    for (const auto& [addr, memo] : commit_)
      if (!memo.fresh && !memo.storage_trie.empty())
        storage_snapshots.push_back(memo.storage_trie);
  }
  // Storage tries first: account leaves embed storageRoot references, so
  // the post-order invariant extends across tries — by the time an account
  // node lands in the file, every storage node it commits to is already
  // there.
  std::size_t appended = 0;
  for (const auto& storage : storage_snapshots)
    appended += storage.persist_nodes(store);
  appended += account_snapshot.persist_nodes(store);
  return appended;
}

}  // namespace blockpilot::state
