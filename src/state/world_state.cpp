#include "state/world_state.hpp"

#include "crypto/keccak.hpp"
#include "rlp/rlp.hpp"
#include "support/assert.hpp"

namespace blockpilot::state {

std::string StateKey::to_string() const {
  switch (field) {
    case Field::kBalance:
      return addr.to_hex() + "/balance";
    case Field::kNonce:
      return addr.to_hex() + "/nonce";
    case Field::kStorage:
      return addr.to_hex() + "/slot:" + slot.to_hex();
  }
  return "?";
}

// Copying shares the persistent tries (O(1) per trie) and carries the memos
// over, so a copied state answers state_root() without re-hashing anything
// the source had already committed.  The source's commit mutex is taken
// because copying is a const-read of the source by contract.
WorldState::WorldState(const WorldState& other) {
  std::scoped_lock lk(other.commit_mu_);
  accounts_ = other.accounts_;
  account_trie_ = other.account_trie_;
  commit_ = other.commit_;
  dirty_ = other.dirty_;
  root_memo_ = other.root_memo_;
  root_valid_ = other.root_valid_;
  stats_ = other.stats_;
}

WorldState& WorldState::operator=(const WorldState& other) {
  if (this == &other) return *this;
  std::scoped_lock lk(commit_mu_, other.commit_mu_);
  accounts_ = other.accounts_;
  account_trie_ = other.account_trie_;
  commit_ = other.commit_;
  dirty_ = other.dirty_;
  root_memo_ = other.root_memo_;
  root_valid_ = other.root_valid_;
  stats_ = other.stats_;
  return *this;
}

// Moving is a mutation of the source, which by contract cannot race with
// any other access — no locking needed.
WorldState::WorldState(WorldState&& other) noexcept
    : accounts_(std::move(other.accounts_)),
      account_trie_(std::move(other.account_trie_)),
      commit_(std::move(other.commit_)),
      dirty_(std::move(other.dirty_)),
      root_memo_(other.root_memo_),
      root_valid_(other.root_valid_),
      stats_(other.stats_) {
  other.root_valid_ = false;
}

WorldState& WorldState::operator=(WorldState&& other) noexcept {
  if (this == &other) return *this;
  accounts_ = std::move(other.accounts_);
  account_trie_ = std::move(other.account_trie_);
  commit_ = std::move(other.commit_);
  dirty_ = std::move(other.dirty_);
  root_memo_ = other.root_memo_;
  root_valid_ = other.root_valid_;
  stats_ = other.stats_;
  other.root_valid_ = false;
  return *this;
}

U256 WorldState::get(const StateKey& key) const {
  const auto it = accounts_.find(key.addr);
  if (it == accounts_.end()) return U256{};
  const AccountData& acct = it->second;
  switch (key.field) {
    case Field::kBalance:
      return acct.balance;
    case Field::kNonce:
      return U256{acct.nonce};
    case Field::kStorage: {
      const auto sit = acct.storage.find(key.slot);
      return sit == acct.storage.end() ? U256{} : sit->second;
    }
  }
  return U256{};
}

void WorldState::set(const StateKey& key, const U256& value) {
  AccountData& acct = account(key.addr);
  switch (key.field) {
    case Field::kBalance:
      acct.balance = value;
      mark_dirty_account(key.addr);
      break;
    case Field::kNonce:
      BP_ASSERT_MSG(value.fits64(), "nonce overflow");
      acct.nonce = value.low64();
      mark_dirty_account(key.addr);
      break;
    case Field::kStorage:
      if (value.is_zero())
        acct.storage.erase(key.slot);
      else
        acct.storage[key.slot] = value;
      mark_dirty_slot(key.addr, key.slot);
      break;
  }
}

std::shared_ptr<const Bytes> WorldState::code(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return nullptr;
  return it->second.code;
}

void WorldState::set_code(const Address& addr, Bytes code) {
  account(addr).code = std::make_shared<const Bytes>(std::move(code));
  mark_dirty_account(addr);
}

Hash256 storage_root_of(const std::unordered_map<U256, U256>& storage) {
  trie::SecureTrie st;
  for (const auto& [slot, value] : storage) {
    if (value.is_zero()) continue;
    const auto key = slot.to_be_bytes();
    const auto encoded = rlp::encode(value);
    st.put(std::span(key), std::span(encoded));
  }
  return st.root_hash();
}

Bytes encode_account(const AccountData& acct, const Hash256& storage_root) {
  // codeHash = keccak(code), keccak("") for code-less accounts.
  Hash256 code_hash;
  if (acct.code != nullptr) {
    code_hash = Hash256{crypto::keccak256(std::span(*acct.code))};
  } else {
    code_hash = Hash256{crypto::keccak256(std::span<const std::uint8_t>{})};
  }
  rlp::Encoder enc;
  enc.begin_list()
      .add(U256{acct.nonce})
      .add(acct.balance)
      .add(storage_root)
      .add(code_hash)
      .end_list();
  return enc.take();
}

void WorldState::sync_commit_locked() const {
  if (dirty_.empty()) return;
  stats_.dirty_accounts += dirty_.size();
  for (const auto& [addr, slots] : dirty_) {
    const auto ait = accounts_.find(addr);
    if (ait == accounts_.end() || ait->second.empty_account()) {
      // Pruned like post-EIP-161: drop from the commitment (and the memo,
      // so a later resurrection rebuilds from scratch).
      account_trie_.erase(std::span(addr.bytes));
      commit_.erase(addr);
      continue;
    }
    const AccountData& acct = ait->second;
    AccountCommit& cc = commit_[addr];
    if (cc.fresh) {
      // First commitment of this account: seed the storage trie from the
      // whole slot map.
      cc.storage_trie = trie::SecureTrie{};
      for (const auto& [slot, value] : acct.storage) {
        if (value.is_zero()) continue;
        const auto key = slot.to_be_bytes();
        const auto encoded = rlp::encode(value);
        cc.storage_trie.put(std::span(key), std::span(encoded));
      }
      cc.storage_root = cc.storage_trie.root_hash();
      cc.fresh = false;
      ++stats_.accounts_resynced;
    } else if (!slots.empty()) {
      // Apply only the touched slots; the untouched subtrees keep their
      // memoized hashes inside the persistent trie.
      for (const U256& slot : slots) {
        const auto key = slot.to_be_bytes();
        const auto sit = acct.storage.find(slot);
        if (sit == acct.storage.end() || sit->second.is_zero()) {
          cc.storage_trie.erase(std::span(key));
        } else {
          const auto encoded = rlp::encode(sit->second);
          cc.storage_trie.put(std::span(key), std::span(encoded));
        }
        ++stats_.slots_resynced;
      }
      cc.storage_root = cc.storage_trie.root_hash();
    }
    const Bytes encoded = encode_account(acct, cc.storage_root);
    account_trie_.put(std::span(addr.bytes), std::span(encoded));
  }
  dirty_.clear();
}

Hash256 WorldState::storage_root(const Address& addr) const {
  std::scoped_lock lk(commit_mu_);
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return trie::MerklePatriciaTrie::empty_root();
  const auto cit = commit_.find(addr);
  const auto dit = dirty_.find(addr);
  const bool storage_clean = dit == dirty_.end() || dit->second.empty();
  if (cit != commit_.end() && !cit->second.fresh && storage_clean)
    return cit->second.storage_root;
  return storage_root_of(it->second.storage);
}

Hash256 WorldState::state_root() const {
  std::scoped_lock lk(commit_mu_);
  if (root_valid_ && dirty_.empty()) {
    ++stats_.root_memo_hits;
    return root_memo_;
  }
  sync_commit_locked();
  root_memo_ = account_trie_.root_hash();
  root_valid_ = true;
  ++stats_.root_recomputes;
  return root_memo_;
}

Hash256 WorldState::state_root_full_rebuild() const {
  trie::SecureTrie accounts_trie;
  for (const auto& [addr, acct] : accounts_) {
    if (acct.empty_account()) continue;
    const Bytes encoded = encode_account(acct, storage_root_of(acct.storage));
    accounts_trie.put(std::span(addr.bytes), std::span(encoded));
  }
  return accounts_trie.root_hash();
}

CommitStats WorldState::commit_stats() const {
  std::scoped_lock lk(commit_mu_);
  return stats_;
}

}  // namespace blockpilot::state
