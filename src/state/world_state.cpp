#include "state/world_state.hpp"

#include "crypto/keccak.hpp"
#include "rlp/rlp.hpp"
#include "support/assert.hpp"

namespace blockpilot::state {

std::string StateKey::to_string() const {
  switch (field) {
    case Field::kBalance:
      return addr.to_hex() + "/balance";
    case Field::kNonce:
      return addr.to_hex() + "/nonce";
    case Field::kStorage:
      return addr.to_hex() + "/slot:" + slot.to_hex();
  }
  return "?";
}

U256 WorldState::get(const StateKey& key) const {
  const auto it = accounts_.find(key.addr);
  if (it == accounts_.end()) return U256{};
  const AccountData& acct = it->second;
  switch (key.field) {
    case Field::kBalance:
      return acct.balance;
    case Field::kNonce:
      return U256{acct.nonce};
    case Field::kStorage: {
      const auto sit = acct.storage.find(key.slot);
      return sit == acct.storage.end() ? U256{} : sit->second;
    }
  }
  return U256{};
}

void WorldState::set(const StateKey& key, const U256& value) {
  AccountData& acct = account(key.addr);
  switch (key.field) {
    case Field::kBalance:
      acct.balance = value;
      break;
    case Field::kNonce:
      BP_ASSERT_MSG(value.fits64(), "nonce overflow");
      acct.nonce = value.low64();
      break;
    case Field::kStorage:
      if (value.is_zero())
        acct.storage.erase(key.slot);
      else
        acct.storage[key.slot] = value;
      break;
  }
}

std::shared_ptr<const Bytes> WorldState::code(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return nullptr;
  return it->second.code;
}

void WorldState::set_code(const Address& addr, Bytes code) {
  account(addr).code = std::make_shared<const Bytes>(std::move(code));
}

Hash256 storage_root_of(const std::unordered_map<U256, U256>& storage) {
  trie::SecureTrie st;
  for (const auto& [slot, value] : storage) {
    if (value.is_zero()) continue;
    const auto key = slot.to_be_bytes();
    const auto encoded = rlp::encode(value);
    st.put(std::span(key), std::span(encoded));
  }
  return st.root_hash();
}

Bytes encode_account(const AccountData& acct, const Hash256& storage_root) {
  // codeHash = keccak(code), keccak("") for code-less accounts.
  Hash256 code_hash;
  if (acct.code != nullptr) {
    code_hash = Hash256{crypto::keccak256(std::span(*acct.code))};
  } else {
    code_hash = Hash256{crypto::keccak256(std::span<const std::uint8_t>{})};
  }
  rlp::Encoder enc;
  enc.begin_list()
      .add(U256{acct.nonce})
      .add(acct.balance)
      .add(storage_root)
      .add(code_hash)
      .end_list();
  return enc.take();
}

Hash256 WorldState::storage_root(const Address& addr) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return trie::MerklePatriciaTrie::empty_root();
  return storage_root_of(it->second.storage);
}

Hash256 WorldState::state_root() const {
  trie::SecureTrie accounts_trie;
  for (const auto& [addr, acct] : accounts_) {
    if (acct.empty_account()) continue;
    const Bytes encoded = encode_account(acct, storage_root_of(acct.storage));
    accounts_trie.put(std::span(addr.bytes), std::span(encoded));
  }
  return accounts_trie.root_hash();
}

}  // namespace blockpilot::state
