// WorldState: the committed account-model state with MPT commitment.
//
// Mirrors geth's StateDB surface at the granularity BlockPilot needs:
// balance / nonce / storage / code access by StateKey, plus state_root()
// which assembles the secure account trie exactly per the yellow paper —
// each account RLP-encoded as [nonce, balance, storageRoot, codeHash] under
// the keccak of its address.  Root equality is the correctness criterion of
// the whole framework (§5.2).
//
// Commitment is *incremental*: every write records the touched account (and
// storage slot) in a dirty set, and state_root() re-encodes only dirty
// accounts into a persistent account trie that is kept alive across calls.
// Per-account storage tries and their roots are memoized the same way, so a
// block touching k accounts re-hashes O(k * depth) trie nodes instead of
// rebuilding the whole trie.  state_root_full_rebuild() preserves the
// original from-scratch computation as a differential oracle.
//
// Two sharing mechanisms keep copies cheap:
//  * commit_mu_ is a short-hold structural lock: state_root() folds dirty
//    entries under it but performs every hash on persistent-trie snapshots
//    *outside* it, so a finalize-time copy taken while a commit is in
//    flight never waits for hashing (root_mu_ serializes whole root
//    computations instead);
//  * each account carries a shared StorageSeed cell identifying its slot
//    map's content-version: the first lineage to commit a fresh account
//    builds the storage trie once and publishes it through the cell, and
//    every copy still holding the same cell adopts the persistent trie in
//    O(1) instead of re-seeding it from the whole map.
//
// Thread-safety matches the trie layer: concurrent const reads (including
// state_root() and copying) are safe; writes must not race with any other
// access to the same object.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "state/state_key.hpp"
#include "trie/mpt.hpp"
#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::state {

using Bytes = std::vector<std::uint8_t>;

/// One-shot shared cell publishing a fresh account's storage commitment.
/// The cell's identity encodes a slot-map content-version: the write path
/// swaps in a new cell whenever the map changes (unless the old one is
/// still private and unfilled), so every WorldState holding the *same*
/// cell is guaranteed to hold the identical slot map.  The first committer
/// fills it; later committers adopt the persistent trie in O(1).
struct StorageSeed {
  std::mutex mu;                  // serializes the one-time fill
  std::atomic<bool> ready{false};
  trie::SecureTrie trie;          // immutable once ready
  Hash256 storage_root;
};

/// Block-level seed set: one StorageSeed cell per account touched by a
/// specific block.  Sibling validator replicas re-executing the *same* block
/// on the *same* parent state produce bit-identical post-block slot maps
/// (deterministic replay — the invariant consensus itself asserts), so the
/// first replica to commit publishes every dirty account's storage trie
/// through its cell and every later replica adopts the whole fold set in
/// O(1) per account instead of re-hashing it.  Unlike the per-account
/// lineage cells, these are keyed by content *by contract*: callers must
/// only share a set between states executing the identical block.
class BlockSeedSet {
 public:
  /// The cell for one account, created on first request.
  std::shared_ptr<StorageSeed> cell_for(const Address& addr);

  std::size_t size() const;

  /// Fold-set sharing counters (fed by WorldState::state_root()).
  std::atomic<std::uint64_t> seeds_built{0};
  std::atomic<std::uint64_t> seeds_adopted{0};

 private:
  mutable std::mutex mu_;
  std::unordered_map<Address, std::shared_ptr<StorageSeed>> cells_;
};

/// Registry of BlockSeedSets keyed by block hash, shared by every validator
/// replica of one simulated network (or one process).  for_block() is the
/// rendezvous: all replicas validating block B receive the same set.
class BlockSeedDirectory {
 public:
  std::shared_ptr<BlockSeedSet> for_block(const Hash256& block_hash);

  struct Stats {
    std::size_t blocks = 0;           // distinct blocks seen
    std::uint64_t seeds_built = 0;    // folds built + published
    std::uint64_t seeds_adopted = 0;  // folds served from a sibling replica
  };
  Stats stats() const;

  /// Drops every set (e.g. between simulation runs).
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<Hash256, std::shared_ptr<BlockSeedSet>> sets_;
};

/// Mutable per-account record.  An account is part of the state commitment
/// iff it is non-empty (nonzero nonce, balance, code, or storage) — empty
/// accounts are pruned from the trie like post-EIP-161 Ethereum.
struct AccountData {
  U256 balance;
  std::uint64_t nonce = 0;
  std::shared_ptr<const Bytes> code;  // nullptr for externally-owned accounts
  /// keccak(code), zero for code-less/empty accounts; computed once by
  /// set_code so executors can key the CodeAnalysis cache without hashing.
  Hash256 code_hash;
  std::unordered_map<U256, U256> storage;
  /// Shared storage-trie seed (see StorageSeed); copies of this state share
  /// the cell until one of them writes storage again.
  std::shared_ptr<StorageSeed> storage_seed;

  bool empty_account() const noexcept {
    return balance.is_zero() && nonce == 0 &&
           (code == nullptr || code->empty()) && storage_all_zero();
  }

  bool storage_all_zero() const noexcept {
    for (const auto& [slot, val] : storage)
      if (!val.is_zero()) return false;
    return true;
  }
};

/// Counters for the incremental-commitment machinery (bench/test hooks).
struct CommitStats {
  std::uint64_t root_recomputes = 0;    // state_root() calls that re-hashed
  std::uint64_t root_memo_hits = 0;     // state_root() calls answered by memo
  std::uint64_t accounts_resynced = 0;  // full storage-trie (re)builds
  std::uint64_t slots_resynced = 0;     // individual dirty-slot updates
  std::uint64_t dirty_accounts = 0;     // dirty accounts folded in, cumulative
  std::uint64_t seeds_built = 0;        // storage seeds built + published
  std::uint64_t seeds_adopted = 0;      // fresh accounts served from a seed
};

class WorldState {
 public:
  WorldState() = default;
  WorldState(const WorldState& other);
  WorldState& operator=(const WorldState& other);
  WorldState(WorldState&& other) noexcept;
  WorldState& operator=(WorldState&& other) noexcept;

  /// Reads a balance/nonce/storage cell; absent keys read as zero (EVM
  /// semantics for untouched accounts and slots).
  U256 get(const StateKey& key) const;

  /// Writes a balance/nonce/storage cell.
  void set(const StateKey& key, const U256& value);

  /// Deployed bytecode for an address (nullptr when none).
  std::shared_ptr<const Bytes> code(const Address& addr) const;

  /// Installs contract bytecode (workload genesis / deployment) and
  /// memoizes its keccak hash.
  void set_code(const Address& addr, Bytes code);

  /// keccak of the deployed bytecode (memoized at set_code time); the zero
  /// hash when the address has no or empty code.
  Hash256 code_hash(const Address& addr) const;

  bool account_exists(const Address& addr) const {
    return accounts_.contains(addr);
  }

  std::size_t account_count() const noexcept { return accounts_.size(); }

  /// Yellow-paper world-state commitment: secure MPT over
  /// rlp([nonce, balance, storageRoot, codeHash]) per non-empty account.
  /// Incremental: folds the dirty set into the persistent account trie and
  /// re-hashes only touched paths; answered from a memo when nothing is
  /// dirty.  Bit-identical to state_root_full_rebuild() at all times.
  /// All hashing runs outside commit_mu_ (see the protocol in the .cpp), so
  /// concurrent copies only wait for the short structural folds.
  Hash256 state_root() const;

  /// From-scratch commitment rebuilding every trie — the original (seed)
  /// implementation, kept as the differential oracle for tests and benches.
  Hash256 state_root_full_rebuild() const;

  /// Storage-trie root for one account (used in account RLP and tests).
  /// Served from the per-account memo when that account's storage is clean.
  Hash256 storage_root(const Address& addr) const;

  /// Incremental-commitment counters (cumulative for this object's life;
  /// copies start from the source's counters).
  CommitStats commit_stats() const;

  /// Arms block-level fold sharing for the *next* state_root() computation:
  /// every dirty account's storage fold is adopted from `seeds` when a
  /// sibling replica already published it, and published through `seeds`
  /// otherwise.  One-shot — the set is dropped once that root completes.
  /// Caller contract: this state must be the post state of exactly the
  /// block `seeds` is keyed by (deterministic replay makes the slot maps
  /// bit-identical across replicas; sharing between different blocks would
  /// commit wrong roots).
  void adopt_block_seeds(std::shared_ptr<BlockSeedSet> seeds);

  const std::unordered_map<Address, AccountData>& accounts() const noexcept {
    return accounts_;
  }

  /// Persists the current commitment into `store`: computes state_root()
  /// (folding any dirty writes), then writes every new node of the account
  /// trie and of each memoized storage trie.  Trie snapshots are taken
  /// under the short structural lock and persisted outside it, mirroring
  /// the state_root() hashing protocol.  Returns the number of nodes
  /// appended.  After store.commit_root(state_root(), h), a restarted
  /// process reconstructs this state's tries with trie::from_root.
  std::size_t persist_commitment(db::NodeStore& store) const;

 private:
  /// Memoized commitment pieces for one account.  `fresh` marks a memo that
  /// has never been built (storage trie must be seeded from the whole map,
  /// or adopted from the account's StorageSeed cell).
  struct AccountCommit {
    trie::SecureTrie storage_trie;
    Hash256 storage_root = trie::MerklePatriciaTrie::empty_root();
    bool fresh = true;
  };

  /// Per-account unit of work carried between state_root()'s locked
  /// structural phases and its unlocked hashing phase.
  struct StorageFold;

  AccountData& account(const Address& addr) { return accounts_[addr]; }

  /// Records a write for the incremental commitment.  An entry with an empty
  /// slot set means the account body (balance/nonce/code) changed but its
  /// storage did not.
  void mark_dirty_account(const Address& addr) { dirty_[addr]; }
  void mark_dirty_slot(const Address& addr, const U256& slot) {
    dirty_[addr].insert(slot);
  }

  // state_root() phases; see the protocol comment in the .cpp.
  std::vector<StorageFold> collect_folds_locked() const;
  void hash_folds_unlocked(std::vector<StorageFold>& folds) const;
  trie::SecureTrie install_folds_locked(std::vector<StorageFold>& folds) const;

  std::unordered_map<Address, AccountData> accounts_;

  // Incremental commitment state.  Mutable so const root queries may run
  // concurrently (e.g. on the commit pool) while still updating the memos.
  // commit_mu_ guards the structures below with *short* structural holds;
  // root_mu_ serializes whole state_root() computations so their unlocked
  // hashing phases cannot interleave.  The dirty set is only ever grown by
  // non-const writes, which by contract never race with other access.
  mutable std::mutex root_mu_;
  mutable std::mutex commit_mu_;
  mutable trie::SecureTrie account_trie_;
  mutable std::unordered_map<Address, AccountCommit> commit_;
  mutable std::unordered_map<Address, std::unordered_set<U256>> dirty_;
  mutable Hash256 root_memo_;
  mutable bool root_valid_ = false;
  mutable CommitStats stats_;
  /// One-shot block-level fold sharing (see adopt_block_seeds).  Not carried
  /// across copies: the copy is no longer the submitted post state.
  mutable std::shared_ptr<BlockSeedSet> block_seeds_;
};

/// Computes the storage-trie root of a slot map (shared by WorldState and
/// the versioned flattening path).
Hash256 storage_root_of(const std::unordered_map<U256, U256>& storage);

/// RLP account encoding [nonce, balance, storageRoot, codeHash].
Bytes encode_account(const AccountData& acct, const Hash256& storage_root);

}  // namespace blockpilot::state
