// WorldState: the committed account-model state with MPT commitment.
//
// Mirrors geth's StateDB surface at the granularity BlockPilot needs:
// balance / nonce / storage / code access by StateKey, plus state_root()
// which assembles the secure account trie exactly per the yellow paper —
// each account RLP-encoded as [nonce, balance, storageRoot, codeHash] under
// the keccak of its address.  Root equality is the correctness criterion of
// the whole framework (§5.2).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "state/state_key.hpp"
#include "trie/mpt.hpp"
#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::state {

using Bytes = std::vector<std::uint8_t>;

/// Mutable per-account record.  An account is part of the state commitment
/// iff it is non-empty (nonzero nonce, balance, code, or storage) — empty
/// accounts are pruned from the trie like post-EIP-161 Ethereum.
struct AccountData {
  U256 balance;
  std::uint64_t nonce = 0;
  std::shared_ptr<const Bytes> code;  // nullptr for externally-owned accounts
  std::unordered_map<U256, U256> storage;

  bool empty_account() const noexcept {
    return balance.is_zero() && nonce == 0 &&
           (code == nullptr || code->empty()) && storage_all_zero();
  }

  bool storage_all_zero() const noexcept {
    for (const auto& [slot, val] : storage)
      if (!val.is_zero()) return false;
    return true;
  }
};

class WorldState {
 public:
  /// Reads a balance/nonce/storage cell; absent keys read as zero (EVM
  /// semantics for untouched accounts and slots).
  U256 get(const StateKey& key) const;

  /// Writes a balance/nonce/storage cell.
  void set(const StateKey& key, const U256& value);

  /// Deployed bytecode for an address (nullptr when none).
  std::shared_ptr<const Bytes> code(const Address& addr) const;

  /// Installs contract bytecode (workload genesis / deployment).
  void set_code(const Address& addr, Bytes code);

  bool account_exists(const Address& addr) const {
    return accounts_.contains(addr);
  }

  std::size_t account_count() const noexcept { return accounts_.size(); }

  /// Yellow-paper world-state commitment: secure MPT over
  /// rlp([nonce, balance, storageRoot, codeHash]) per non-empty account.
  Hash256 state_root() const;

  /// Storage-trie root for one account (used in account RLP and tests).
  Hash256 storage_root(const Address& addr) const;

  const std::unordered_map<Address, AccountData>& accounts() const noexcept {
    return accounts_;
  }

 private:
  AccountData& account(const Address& addr) { return accounts_[addr]; }

  std::unordered_map<Address, AccountData> accounts_;
};

/// Computes the storage-trie root of a slot map (shared by WorldState and
/// the versioned flattening path).
Hash256 storage_root_of(const std::unordered_map<U256, U256>& storage);

/// RLP account encoding [nonce, balance, storageRoot, codeHash].
Bytes encode_account(const AccountData& acct, const Hash256& storage_root);

}  // namespace blockpilot::state
