// ReadView: the minimal read-only state surface an executing transaction
// sees.  Concrete views are the committed WorldState, a versioned OCC-WSI
// snapshot, and the validator's pending overlay.
#pragma once

#include <memory>
#include <vector>

#include "state/state_key.hpp"
#include "state/world_state.hpp"

namespace blockpilot::state {

class ReadView {
 public:
  virtual ~ReadView() = default;

  /// Balance / nonce / storage read; absent keys are zero.
  virtual U256 read(const StateKey& key) const = 0;

  /// Deployed bytecode (nullptr when the address has no code).  Code is
  /// immutable in this system (no CREATE in the workload), so it is not a
  /// conflict key.
  virtual std::shared_ptr<const Bytes> code(const Address& addr) const = 0;

  /// keccak256 of the deployed bytecode, zero when the address has no (or
  /// empty) code.  Keys the shared evm::CodeAnalysisCache, so it must
  /// always equal keccak(code()) — WorldState-backed views serve the hash
  /// stored at set_code time; this default recomputes for overlay views
  /// that do not carry one.
  virtual Hash256 code_hash(const Address& addr) const {
    const auto c = code(addr);
    return (c == nullptr || c->empty()) ? Hash256{}
                                        : Hash256::of(std::span(*c));
  }
};

/// Trivial adapter over a committed WorldState.
class WorldStateView final : public ReadView {
 public:
  explicit WorldStateView(const WorldState& ws) noexcept : ws_(ws) {}
  U256 read(const StateKey& key) const override { return ws_.get(key); }
  std::shared_ptr<const Bytes> code(const Address& addr) const override {
    return ws_.code(addr);
  }
  Hash256 code_hash(const Address& addr) const override {
    return ws_.code_hash(addr);
  }

 private:
  const WorldState& ws_;
};

}  // namespace blockpilot::state
