// VersionedState: the multi-version store at the heart of OCC-WSI
// (paper Algorithm 1) — and, below it, MvMemory: the Block-STM
// multi-version memory the second proposer engine speculates through.
//
// Committed state is the genesis/base WorldState (version 0) plus an
// append-only list of per-key versions.  Each transaction the proposer
// commits is assigned version = its block position + 1 and its write set is
// applied at that version.  A snapshot view at version v observes, for each
// key, the value of the largest committed version <= v.
//
// The paper's "reserve table" (Table[key] -> version) is exactly the
// latest-version index of this store, so no separate table is kept — one
// source of truth for both snapshot reads and conflict validation.
//
// Concurrency (the Fig. 6 hot path): many executor threads read snapshots
// while the (serialized) commit section appends versions.  Four layers keep
// readers off shared cache lines:
//
//  1. the version chains are sharded by StateKey hash into kStripeCount
//     stripes, each with its own shared_mutex, so concurrent readers of
//     unrelated keys never contend on one lock word;
//  2. a fixed-size table of atomic version stamps (the materialized reserve
//     table) upper-bounds each key's latest committed version.  Stamp slots
//     are shared by hash, which only ever *raises* the bound — so a stamp of
//     0 proves the key was never written (read base state, no lock), and a
//     stamp <= snapshot proves a read set entry cannot be stale (validate,
//     no lock).  Both fast paths are exact, never heuristic: a too-high
//     bound just falls back to the locked stripe lookup;
//  3. value-in-slot packing: a key whose entire committed history is ONE
//     version also has that (key, version, value) seqlocked into a packed
//     slot table, so snapshot reads of single-version keys — most written
//     keys in a typical block — are served lock-free without touching the
//     stripe.  The slot stores the full key (exact match, never by hash)
//     and is invalidated the moment the key gains a second version;
//  4. ReadCache memoizes snapshot reads per executor thread, revalidated
//     against the stamps, so re-executions of aborted transactions skip the
//     stripe locks for every key whose stamp did not advance.
//
// Commit is split into two halves so host-threads proposers can overlap
// the heavy part (paper §4.2's serialized commit section shrinks to the
// decision):
//
//  * enqueue_commit(ws, v) — called under the proposer's commit lock —
//    appends the writes to their stripes' pending queues, maintains the
//    packed slots, and raises the stamps;
//  * apply_commit(ws, v) — called OUTSIDE the lock — drains every touched
//    stripe's pending queue up to v into the version chains (stealing
//    earlier versions' stragglers, which preserves per-key version order),
//    then ticket-waits for version v-1 and release-publishes v.  Disjoint
//    write sets drain disjoint stripes concurrently.
//
// commit(ws, v) = enqueue + apply inline (the serialized-caller path; the
// virtual-time engines and validators use it unchanged).
//
// Publication order makes the lock-free fast paths sound: a write is
// appended to its stripe (pending queue, later chain) under the stripe
// lock, then its packed slot is updated, then its stamp release-stored; all
// of a version's writes are chain-resident before committed_version_
// release-stores that version.  A reader's snapshot version comes from an
// acquire-load of committed_version_, so every chain entry, packed slot and
// stamp covering a version <= its snapshot is already visible to it — and
// entries still in a pending queue are, by construction, for versions
// above every extant snapshot, so read_at never needs to look there.
// Validation (newer_than / latest_version) DOES scan the pending queue:
// an enqueued-not-yet-applied conflict is a real conflict.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "state/read_view.hpp"
#include "state/state_key.hpp"
#include "state/world_state.hpp"

namespace blockpilot::state {

/// Per-executor-thread memo of snapshot reads (value + the snapshot version
/// it was read at), revalidated against the store's version stamps.  Not
/// thread-safe: one cache per executor thread.
class ReadCache {
 public:
  void clear() { map_.clear(); }
  std::size_t size() const noexcept { return map_.size(); }

  std::uint64_t hits = 0;    // reads served without touching a stripe lock
  std::uint64_t misses = 0;  // reads that fell through to the store

 private:
  friend class VersionedState;
  struct Entry {
    U256 value;
    std::uint64_t as_of = 0;  // snapshot version the value was read at
  };
  std::unordered_map<StateKey, Entry> map_;
};

class VersionedState {
 public:
  /// Wraps a base state as version 0.  The base must outlive this object
  /// and is not mutated.
  explicit VersionedState(const WorldState& base);

  /// Value of `key` visible to a snapshot taken at `snapshot_version`.
  U256 read_at(const StateKey& key, std::uint64_t snapshot_version) const;

  /// As read_at, memoizing through `cache`: a cached value whose stamp has
  /// not advanced past its fill version is returned without touching any
  /// stripe lock.  Exact — cached hits equal what read_at would return.
  U256 read_at(const StateKey& key, std::uint64_t snapshot_version,
               ReadCache& cache) const;

  /// Version of the latest committed write to `key` (0 = base only).
  /// This is Algorithm 1's Table[rec].  Counts enqueued-not-yet-applied
  /// writes (they are committed decisions).
  std::uint64_t latest_version(const StateKey& key) const;

  /// True iff `key` has a committed version > snapshot_version — the WSI
  /// staleness test.  Lock-free whenever the key's stamp rules it out
  /// (the common case: most read sets validate clean).  Exact under the
  /// proposer's contract that validation runs inside the serialized commit
  /// section (no commit concurrently in flight); a racing commit may be
  /// missed until its stamp publishes.
  bool newer_than(const StateKey& key, std::uint64_t snapshot_version) const;

  /// Applies a transaction's write set at `version`: enqueue + apply
  /// inline.  Versions must be committed in strictly increasing order; the
  /// proposer's commit section serializes callers.
  void commit(const std::vector<std::pair<StateKey, U256>>& write_set,
              std::uint64_t version);

  /// First half of a split commit (see file comment).  Callers must be
  /// serialized (the proposer's commit lock) and versions strictly
  /// increasing.  After it returns, the version is decided: newer_than and
  /// latest_version observe it.
  void enqueue_commit(const std::vector<std::pair<StateKey, U256>>& write_set,
                      std::uint64_t version);

  /// Second half: drains the touched stripes and publishes `version`.
  /// Safe to run concurrently with other versions' apply_commit calls and
  /// with snapshot readers; blocks until version-1 is published.  Must be
  /// called exactly once per enqueue_commit, with the same arguments.
  void apply_commit(const std::vector<std::pair<StateKey, U256>>& write_set,
                    std::uint64_t version);

  /// Highest committed version (0 before the first commit).  Lock-free.
  std::uint64_t committed_version() const noexcept {
    return committed_version_.load(std::memory_order_acquire);
  }

  /// Materializes base + all committed versions into `out` (used to derive
  /// the post-block world state whose root goes into the block header).
  /// Every enqueued commit must have been applied.
  void flatten_into(WorldState& out) const;

  const WorldState& base() const noexcept { return base_; }

  static constexpr std::size_t kStripeCount = 64;       // power of two
  static constexpr std::size_t kStampSlots = 1 << 14;   // power of two
  static constexpr std::size_t kPackedSlots = 1 << 12;  // power of two

 private:
  // Per-key version chain, ascending by version (append-only).
  using Chain = std::vector<std::pair<std::uint64_t, U256>>;

  struct PendingWrite {
    StateKey key;
    U256 value;
    std::uint64_t version;
  };

  /// One shard of the version-chain map.  Cache-line aligned so reader
  /// threads spinning on neighbouring stripes don't false-share lock words.
  struct alignas(64) Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<StateKey, Chain> map;
    /// Enqueued-not-yet-applied writes, in version order (enqueuers are
    /// serialized).  Always empty outside a split commit window.
    std::vector<PendingWrite> pending;
  };

  /// Seqlocked single-version-key slot (packing layer 3).  All payload
  /// words are relaxed atomics so the torn-read window is race-free under
  /// TSan; the seq acquire/release pair orders them.  A slot is readable
  /// when seq is even and unchanged across the payload copy.
  struct alignas(64) PackedSlot {
    std::atomic<std::uint64_t> seq{0};
    // addr[0..2]: 20 address bytes little-packed; meta: Field tag;
    // slot[0..3]: storage slot limbs; value[0..3]; version.
    std::atomic<std::uint64_t> addr[3];
    std::atomic<std::uint64_t> meta;
    std::atomic<std::uint64_t> slot[4];
    std::atomic<std::uint64_t> value[4];
    std::atomic<std::uint64_t> version;
  };

  Stripe& stripe_for(std::size_t hash) const noexcept {
    return stripes_[hash & (kStripeCount - 1)];
  }
  std::atomic<std::uint64_t>& stamp_for(std::size_t hash) const noexcept {
    // Distinct bit range from the stripe index so stripe siblings don't
    // also collide on one stamp slot.
    return stamps_[(hash >> 6) & (kStampSlots - 1)];
  }
  PackedSlot& packed_for(std::size_t hash) const noexcept {
    return packed_[(hash >> 6) & (kPackedSlots - 1)];
  }

  /// Packed-slot fast read: true (and fills `out`) iff the slot coherently
  /// holds `key` at a version <= snapshot_version.
  bool packed_read(const StateKey& key, std::uint64_t snapshot_version,
                   U256& out) const;
  /// Publishes (key, value, version) into the key's packed slot.  Caller =
  /// the serialized enqueue path (single writer).
  void packed_publish(const StateKey& key, const U256& value,
                      std::uint64_t version);
  /// Invalidates the key's packed slot if it currently holds `key` (the
  /// key just gained a second version).  Serialized like packed_publish.
  void packed_invalidate(const StateKey& key);

  /// Exact latest version of `key` under the stripe lock (chain + pending).
  std::uint64_t latest_version_locked(const StateKey& key) const;

  const WorldState& base_;
  mutable std::array<Stripe, kStripeCount> stripes_;
  // The materialized reserve table: per-slot upper bound on the latest
  // committed version of every key hashing there.  Heap-allocated (128 KiB)
  // to keep VersionedState movable-sized; zero-initialized.
  std::unique_ptr<std::atomic<std::uint64_t>[]> stamps_;
  std::unique_ptr<PackedSlot[]> packed_;
  std::atomic<std::uint64_t> committed_version_{0};
  std::uint64_t enqueued_version_ = 0;  // guarded by enqueue serialization
};

/// ReadView of a VersionedState frozen at one snapshot version; what an
/// OCC-WSI executor thread hands to the EVM.  With a per-thread ReadCache
/// attached, repeated reads (and re-executions after aborts) bypass the
/// stripe locks whenever the version stamps prove the cached value current.
class SnapshotView final : public ReadView {
 public:
  SnapshotView(const VersionedState& vs, std::uint64_t version,
               ReadCache* cache = nullptr) noexcept
      : vs_(vs), version_(version), cache_(cache) {}

  U256 read(const StateKey& key) const override {
    return cache_ ? vs_.read_at(key, version_, *cache_)
                  : vs_.read_at(key, version_);
  }
  std::shared_ptr<const Bytes> code(const Address& addr) const override {
    return vs_.base().code(addr);
  }
  Hash256 code_hash(const Address& addr) const override {
    return vs_.base().code_hash(addr);
  }

  std::uint64_t version() const noexcept { return version_; }

 private:
  const VersionedState& vs_;
  std::uint64_t version_;
  ReadCache* cache_;
};

// ---------------------------------------------------------------------------
// MvMemory: Block-STM's multi-version memory (docs/blockstm.md).
//
// Where VersionedState versions keys by *commit order decided at runtime*,
// MvMemory versions them by the block's PRESET transaction order: an entry
// is (txn index, incarnation, value), and a read by transaction i returns
// the entry of the highest transaction index BELOW i — the value i would
// observe if the block ran serially in preset order, assuming the writer's
// current incarnation survives.
//
// When an incarnation is aborted, its writes are not removed (a removal
// would let higher transactions silently read older data and thrash);
// they are marked ESTIMATE — "transaction t will probably write this key
// again".  A reader that hits an ESTIMATE reports the blocking transaction
// so the scheduler can suspend it instead of speculating on data known to
// be dirty; the (stale) value is still returned so execution can complete
// structurally — the result is discarded.
//
// record() installs an incarnation's write set and removes the keys its
// previous incarnation wrote but this one did not (the write-set-shrink
// case), reporting whether any NEW location was written — the trigger for
// the scheduler's validation wave.

class MvMemory {
 public:
  struct Version {
    static constexpr std::uint32_t kBase = 0xFFFFFFFFu;  // pre-block state
    std::uint32_t txn = kBase;
    std::uint32_t incarnation = 0;

    friend bool operator==(const Version&, const Version&) = default;
  };

  enum class ReadKind : std::uint8_t {
    kOk = 0,    // value written by version
    kBase,      // no lower writer: pre-block state
    kEstimate,  // aborted lower writer's footprint: suspend on version.txn
  };

  struct ReadResult {
    ReadKind kind = ReadKind::kBase;
    U256 value;
    Version version;  // writer (kOk/kEstimate); kBase otherwise
  };

  /// `num_txns` = block size (preset order indices 0..num_txns-1).  The
  /// base must outlive this object and is not mutated.
  MvMemory(const WorldState& base, std::size_t num_txns);

  /// Value `txn` observes for `key`: highest writer with index < txn.
  ReadResult read(const StateKey& key, std::uint32_t txn) const;

  /// Pre-populates `txn`'s footprint with ESTIMATE markers before any
  /// incarnation runs — the validator-replay fast path: the block profile
  /// broadcasts each transaction's write set, so seeding it makes higher
  /// transactions SUSPEND on their true dependencies from the first
  /// incarnation instead of speculating, aborting, and re-executing.  The
  /// seeds register as incarnation 0's write set, so the first real
  /// record() replaces them exactly like a re-incarnation would: keys the
  /// replay actually writes flip to real entries, stale seeded keys are
  /// erased via the write-set-shrink path, and an unseeded actual write
  /// reports wrote_new (triggering the validation wave).  A stale seed can
  /// therefore only cost extra suspensions/waves, never corrupt a result.
  /// Must be called before `txn` executes (asserts no prior write set).
  void seed_estimates(std::uint32_t txn,
                      const std::vector<std::pair<StateKey, U256>>& writes);

  /// Installs incarnation `incarnation` of `txn`'s write set, replacing the
  /// previous incarnation's entries (and deleting the ones no longer
  /// written).  Returns true iff a key not written by the previous
  /// incarnation was written now.
  bool record(std::uint32_t txn, std::uint32_t incarnation,
              const std::vector<std::pair<StateKey, U256>>& writes);

  /// Marks every entry of `txn`'s latest incarnation ESTIMATE (abort path).
  void convert_to_estimates(std::uint32_t txn);

  /// Materializes base + every surviving write into `out`.  Must not run
  /// while writers are active; asserts no ESTIMATE survives (all
  /// transactions executed + validated).
  void flatten_into(WorldState& out) const;

  const WorldState& base() const noexcept { return base_; }

  static constexpr std::size_t kStripeCount = 64;  // power of two

 private:
  struct Entry {
    std::uint32_t incarnation = 0;
    bool estimate = false;
    U256 value;
  };
  // Per-key: writers ordered by transaction index (std::map: read needs
  // "highest index < txn" = upper_bound - 1).
  using WriterMap = std::map<std::uint32_t, Entry>;

  struct alignas(64) Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<StateKey, WriterMap> map;
  };

  /// Per-transaction bookkeeping for write-set diffing across incarnations.
  struct alignas(64) TxnWrites {
    std::mutex mu;
    std::vector<StateKey> keys;  // keys written by the latest incarnation
  };

  Stripe& stripe_for(std::size_t hash) const noexcept {
    return stripes_[hash & (kStripeCount - 1)];
  }

  const WorldState& base_;
  mutable std::array<Stripe, kStripeCount> stripes_;
  std::unique_ptr<TxnWrites[]> writes_;
};

/// ReadView a Block-STM incarnation executes through: reads resolve via
/// MvMemory at the view's transaction index, every base-level read is
/// logged with the exact version observed (the validation read set), and
/// the first ESTIMATE hit records the blocking transaction.  Reads are
/// memoized per incarnation — repeatable reads, so one incarnation's
/// execution is internally consistent even while lower transactions
/// re-execute underneath it.  Not thread-safe: one view per worker.
class MvView final : public ReadView {
 public:
  struct LogEntry {
    StateKey key;
    MvMemory::Version version;  // kBase txn == base-state read
  };

  explicit MvView(const MvMemory& mv) noexcept : mv_(mv) {}

  /// Re-arms the view for (txn, next incarnation): clears the memo, the
  /// read log and the blocked marker.
  void begin(std::uint32_t txn) {
    txn_ = txn;
    memo_.clear();
    log_.clear();
    blocked_ = false;
    blocking_ = 0;
  }

  U256 read(const StateKey& key) const override;

  std::shared_ptr<const Bytes> code(const Address& addr) const override {
    return mv_.base().code(addr);
  }
  Hash256 code_hash(const Address& addr) const override {
    return mv_.base().code_hash(addr);
  }

  /// Ordered log of (key, version observed) — one entry per first read.
  const std::vector<LogEntry>& read_log() const noexcept { return log_; }

  /// True iff any read hit an ESTIMATE (execution result must be
  /// discarded; suspend on blocking_txn()).
  bool blocked() const noexcept { return blocked_; }
  std::uint32_t blocking_txn() const noexcept { return blocking_; }

 private:
  const MvMemory& mv_;
  std::uint32_t txn_ = 0;
  mutable std::unordered_map<StateKey, U256> memo_;
  mutable std::vector<LogEntry> log_;
  mutable bool blocked_ = false;
  mutable std::uint32_t blocking_ = 0;
};

}  // namespace blockpilot::state
