// VersionedState: the multi-version store at the heart of OCC-WSI
// (paper Algorithm 1).
//
// Committed state is the genesis/base WorldState (version 0) plus an
// append-only list of per-key versions.  Each transaction the proposer
// commits is assigned version = its block position + 1 and its write set is
// applied at that version.  A snapshot view at version v observes, for each
// key, the value of the largest committed version <= v.
//
// The paper's "reserve table" (Table[key] -> version) is exactly the
// latest-version index of this store, so no separate table is kept — one
// source of truth for both snapshot reads and conflict validation.
//
// Concurrency: many executor threads read snapshots while the (serialized)
// commit section appends versions; a shared_mutex arbitrates
// (readers-shared / committer-exclusive, CP.43 short critical sections).
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "state/read_view.hpp"
#include "state/state_key.hpp"
#include "state/world_state.hpp"

namespace blockpilot::state {

class VersionedState {
 public:
  /// Wraps a base state as version 0.  The base must outlive this object
  /// and is not mutated.
  explicit VersionedState(const WorldState& base) noexcept : base_(base) {}

  /// Value of `key` visible to a snapshot taken at `snapshot_version`.
  U256 read_at(const StateKey& key, std::uint64_t snapshot_version) const;

  /// Version of the latest committed write to `key` (0 = base only).
  /// This is Algorithm 1's Table[rec].
  std::uint64_t latest_version(const StateKey& key) const;

  /// Applies a transaction's write set at `version`.  Versions must be
  /// committed in strictly increasing order; the proposer's commit section
  /// serializes callers.
  void commit(const std::vector<std::pair<StateKey, U256>>& write_set,
              std::uint64_t version);

  /// Highest committed version (0 before the first commit).
  std::uint64_t committed_version() const;

  /// Materializes base + all committed versions into `out` (used to derive
  /// the post-block world state whose root goes into the block header).
  void flatten_into(WorldState& out) const;

  const WorldState& base() const noexcept { return base_; }

 private:
  const WorldState& base_;
  mutable std::shared_mutex mu_;
  // Per-key version chain, ascending by version (append-only).
  std::unordered_map<StateKey, std::vector<std::pair<std::uint64_t, U256>>>
      versions_;
  std::uint64_t committed_version_ = 0;
};

/// ReadView of a VersionedState frozen at one snapshot version; what an
/// OCC-WSI executor thread hands to the EVM.
class SnapshotView final : public ReadView {
 public:
  SnapshotView(const VersionedState& vs, std::uint64_t version) noexcept
      : vs_(vs), version_(version) {}

  U256 read(const StateKey& key) const override {
    return vs_.read_at(key, version_);
  }
  std::shared_ptr<const Bytes> code(const Address& addr) const override {
    return vs_.base().code(addr);
  }

  std::uint64_t version() const noexcept { return version_; }

 private:
  const VersionedState& vs_;
  std::uint64_t version_;
};

}  // namespace blockpilot::state
