// VersionedState: the multi-version store at the heart of OCC-WSI
// (paper Algorithm 1).
//
// Committed state is the genesis/base WorldState (version 0) plus an
// append-only list of per-key versions.  Each transaction the proposer
// commits is assigned version = its block position + 1 and its write set is
// applied at that version.  A snapshot view at version v observes, for each
// key, the value of the largest committed version <= v.
//
// The paper's "reserve table" (Table[key] -> version) is exactly the
// latest-version index of this store, so no separate table is kept — one
// source of truth for both snapshot reads and conflict validation.
//
// Concurrency (the Fig. 6 hot path): many executor threads read snapshots
// while the (serialized) commit section appends versions.  Three layers keep
// readers off shared cache lines:
//
//  1. the version chains are sharded by StateKey hash into kStripeCount
//     stripes, each with its own shared_mutex, so concurrent readers of
//     unrelated keys never contend on one lock word;
//  2. a fixed-size table of atomic version stamps (the materialized reserve
//     table) upper-bounds each key's latest committed version.  Stamp slots
//     are shared by hash, which only ever *raises* the bound — so a stamp of
//     0 proves the key was never written (read base state, no lock), and a
//     stamp <= snapshot proves a read set entry cannot be stale (validate,
//     no lock).  Both fast paths are exact, never heuristic: a too-high
//     bound just falls back to the locked stripe lookup;
//  3. ReadCache memoizes snapshot reads per executor thread, revalidated
//     against the stamps, so re-executions of aborted transactions skip the
//     stripe locks for every key whose stamp did not advance.
//
// Publication order makes the stamp fast paths sound: commit() appends the
// chain entry under the stripe lock, then release-stores the stamp, then
// release-stores committed_version_.  A reader's snapshot version comes from
// an acquire-load of committed_version_, so every stamp covering a version
// <= its snapshot is already visible to it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "state/read_view.hpp"
#include "state/state_key.hpp"
#include "state/world_state.hpp"

namespace blockpilot::state {

/// Per-executor-thread memo of snapshot reads (value + the snapshot version
/// it was read at), revalidated against the store's version stamps.  Not
/// thread-safe: one cache per executor thread.
class ReadCache {
 public:
  void clear() { map_.clear(); }
  std::size_t size() const noexcept { return map_.size(); }

  std::uint64_t hits = 0;    // reads served without touching a stripe lock
  std::uint64_t misses = 0;  // reads that fell through to the store

 private:
  friend class VersionedState;
  struct Entry {
    U256 value;
    std::uint64_t as_of = 0;  // snapshot version the value was read at
  };
  std::unordered_map<StateKey, Entry> map_;
};

class VersionedState {
 public:
  /// Wraps a base state as version 0.  The base must outlive this object
  /// and is not mutated.
  explicit VersionedState(const WorldState& base);

  /// Value of `key` visible to a snapshot taken at `snapshot_version`.
  U256 read_at(const StateKey& key, std::uint64_t snapshot_version) const;

  /// As read_at, memoizing through `cache`: a cached value whose stamp has
  /// not advanced past its fill version is returned without touching any
  /// stripe lock.  Exact — cached hits equal what read_at would return.
  U256 read_at(const StateKey& key, std::uint64_t snapshot_version,
               ReadCache& cache) const;

  /// Version of the latest committed write to `key` (0 = base only).
  /// This is Algorithm 1's Table[rec].
  std::uint64_t latest_version(const StateKey& key) const;

  /// True iff `key` has a committed version > snapshot_version — the WSI
  /// staleness test.  Lock-free whenever the key's stamp rules it out
  /// (the common case: most read sets validate clean).  Exact under the
  /// proposer's contract that validation runs inside the serialized commit
  /// section (no commit concurrently in flight); a racing commit may be
  /// missed until its stamp publishes.
  bool newer_than(const StateKey& key, std::uint64_t snapshot_version) const;

  /// Applies a transaction's write set at `version`.  Versions must be
  /// committed in strictly increasing order; the proposer's commit section
  /// serializes callers.
  void commit(const std::vector<std::pair<StateKey, U256>>& write_set,
              std::uint64_t version);

  /// Highest committed version (0 before the first commit).  Lock-free.
  std::uint64_t committed_version() const noexcept {
    return committed_version_.load(std::memory_order_acquire);
  }

  /// Materializes base + all committed versions into `out` (used to derive
  /// the post-block world state whose root goes into the block header).
  void flatten_into(WorldState& out) const;

  const WorldState& base() const noexcept { return base_; }

  static constexpr std::size_t kStripeCount = 64;       // power of two
  static constexpr std::size_t kStampSlots = 1 << 14;   // power of two

 private:
  // Per-key version chain, ascending by version (append-only).
  using Chain = std::vector<std::pair<std::uint64_t, U256>>;

  /// One shard of the version-chain map.  Cache-line aligned so reader
  /// threads spinning on neighbouring stripes don't false-share lock words.
  struct alignas(64) Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<StateKey, Chain> map;
  };

  Stripe& stripe_for(std::size_t hash) const noexcept {
    return stripes_[hash & (kStripeCount - 1)];
  }
  std::atomic<std::uint64_t>& stamp_for(std::size_t hash) const noexcept {
    // Distinct bit range from the stripe index so stripe siblings don't
    // also collide on one stamp slot.
    return stamps_[(hash >> 6) & (kStampSlots - 1)];
  }

  /// Exact latest version of `key` under the stripe lock.
  std::uint64_t latest_version_locked(const StateKey& key) const;

  const WorldState& base_;
  mutable std::array<Stripe, kStripeCount> stripes_;
  // The materialized reserve table: per-slot upper bound on the latest
  // committed version of every key hashing there.  Heap-allocated (128 KiB)
  // to keep VersionedState movable-sized; zero-initialized.
  std::unique_ptr<std::atomic<std::uint64_t>[]> stamps_;
  std::atomic<std::uint64_t> committed_version_{0};
};

/// ReadView of a VersionedState frozen at one snapshot version; what an
/// OCC-WSI executor thread hands to the EVM.  With a per-thread ReadCache
/// attached, repeated reads (and re-executions after aborts) bypass the
/// stripe locks whenever the version stamps prove the cached value current.
class SnapshotView final : public ReadView {
 public:
  SnapshotView(const VersionedState& vs, std::uint64_t version,
               ReadCache* cache = nullptr) noexcept
      : vs_(vs), version_(version), cache_(cache) {}

  U256 read(const StateKey& key) const override {
    return cache_ ? vs_.read_at(key, version_, *cache_)
                  : vs_.read_at(key, version_);
  }
  std::shared_ptr<const Bytes> code(const Address& addr) const override {
    return vs_.base().code(addr);
  }
  Hash256 code_hash(const Address& addr) const override {
    return vs_.base().code_hash(addr);
  }

  std::uint64_t version() const noexcept { return version_; }

 private:
  const VersionedState& vs_;
  std::uint64_t version_;
  ReadCache* cache_;
};

}  // namespace blockpilot::state
