#include "state/versioned_state.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <thread>

#include "support/assert.hpp"

namespace blockpilot::state {

VersionedState::VersionedState(const WorldState& base)
    : base_(base),
      stamps_(std::make_unique<std::atomic<std::uint64_t>[]>(kStampSlots)),
      packed_(std::make_unique<PackedSlot[]>(kPackedSlots)) {
  // value-initialized by make_unique: every stamp starts at 0 (= base only)
  // and every packed slot starts with seq 0 / version 0 — version 0 never
  // matches a published write (writes start at version 1), so an untouched
  // slot can never satisfy packed_read.
}

// -- packed single-version slots (layer 3) ----------------------------------

namespace {

inline std::array<std::uint64_t, 3> pack_address(const Address& a) noexcept {
  std::array<std::uint64_t, 3> w{};
  std::memcpy(w.data(), a.bytes.data(), a.bytes.size());  // 20 bytes
  return w;
}

}  // namespace

bool VersionedState::packed_read(const StateKey& key,
                                 std::uint64_t snapshot_version,
                                 U256& out) const {
  const PackedSlot& p = packed_for(key.hash);
  const std::uint64_t s1 = p.seq.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1)) return false;  // never published / mid-write
  const std::uint64_t a0 = p.addr[0].load(std::memory_order_relaxed);
  const std::uint64_t a1 = p.addr[1].load(std::memory_order_relaxed);
  const std::uint64_t a2 = p.addr[2].load(std::memory_order_relaxed);
  const std::uint64_t meta = p.meta.load(std::memory_order_relaxed);
  const std::uint64_t sl0 = p.slot[0].load(std::memory_order_relaxed);
  const std::uint64_t sl1 = p.slot[1].load(std::memory_order_relaxed);
  const std::uint64_t sl2 = p.slot[2].load(std::memory_order_relaxed);
  const std::uint64_t sl3 = p.slot[3].load(std::memory_order_relaxed);
  const std::uint64_t v0 = p.value[0].load(std::memory_order_relaxed);
  const std::uint64_t v1 = p.value[1].load(std::memory_order_relaxed);
  const std::uint64_t v2 = p.value[2].load(std::memory_order_relaxed);
  const std::uint64_t v3 = p.value[3].load(std::memory_order_relaxed);
  const std::uint64_t ver = p.version.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (p.seq.load(std::memory_order_relaxed) != s1) return false;  // torn
  // Exact key match (full key, never hash): field + address (+ slot for
  // storage keys, mirroring StateKey::operator==).
  if (meta != static_cast<std::uint64_t>(key.field)) return false;
  const std::array<std::uint64_t, 3> ka = pack_address(key.addr);
  if (a0 != ka[0] || a1 != ka[1] || a2 != ka[2]) return false;
  if (key.field == Field::kStorage &&
      (sl0 != key.slot.limb(0) || sl1 != key.slot.limb(1) ||
       sl2 != key.slot.limb(2) || sl3 != key.slot.limb(3)))
    return false;
  if (ver == 0 || ver > snapshot_version) return false;
  out = U256{v3, v2, v1, v0};  // ctor takes big-endian limb order
  return true;
}

void VersionedState::packed_publish(const StateKey& key, const U256& value,
                                    std::uint64_t version) {
  PackedSlot& p = packed_[(key.hash >> 6) & (kPackedSlots - 1)];
  const std::uint64_t s = p.seq.load(std::memory_order_relaxed);
  p.seq.store(s + 1, std::memory_order_relaxed);  // odd: writers are
  std::atomic_thread_fence(std::memory_order_release);  // serialized
  const std::array<std::uint64_t, 3> ka = pack_address(key.addr);
  p.addr[0].store(ka[0], std::memory_order_relaxed);
  p.addr[1].store(ka[1], std::memory_order_relaxed);
  p.addr[2].store(ka[2], std::memory_order_relaxed);
  p.meta.store(static_cast<std::uint64_t>(key.field),
               std::memory_order_relaxed);
  for (std::size_t i = 0; i < 4; ++i) {
    p.slot[i].store(key.slot.limb(i), std::memory_order_relaxed);
    p.value[i].store(value.limb(i), std::memory_order_relaxed);
  }
  p.version.store(version, std::memory_order_relaxed);
  p.seq.store(s + 2, std::memory_order_release);  // even: readable
}

void VersionedState::packed_invalidate(const StateKey& key) {
  PackedSlot& p = packed_[(key.hash >> 6) & (kPackedSlots - 1)];
  const std::uint64_t s = p.seq.load(std::memory_order_relaxed);
  if (s == 0 || (s & 1)) return;  // nothing published
  // Writers are serialized, so reading the payload non-torn is safe; only
  // wipe if the slot actually holds this key (it may hold a slot sibling).
  const std::array<std::uint64_t, 3> ka = pack_address(key.addr);
  const bool holds =
      p.meta.load(std::memory_order_relaxed) ==
          static_cast<std::uint64_t>(key.field) &&
      p.addr[0].load(std::memory_order_relaxed) == ka[0] &&
      p.addr[1].load(std::memory_order_relaxed) == ka[1] &&
      p.addr[2].load(std::memory_order_relaxed) == ka[2] &&
      (key.field != Field::kStorage ||
       (p.slot[0].load(std::memory_order_relaxed) == key.slot.limb(0) &&
        p.slot[1].load(std::memory_order_relaxed) == key.slot.limb(1) &&
        p.slot[2].load(std::memory_order_relaxed) == key.slot.limb(2) &&
        p.slot[3].load(std::memory_order_relaxed) == key.slot.limb(3)));
  if (holds) p.seq.store(s + 1, std::memory_order_release);  // odd: dead
}

// -- reads ------------------------------------------------------------------

U256 VersionedState::read_at(const StateKey& key,
                             std::uint64_t snapshot_version) const {
  // Fast path 1: stamp 0 proves no version of this key (or any stamp-slot
  // sibling) has been published, and versions <= snapshot_version are always
  // fully published before the snapshot version became visible — so the
  // base value is exact.  Snapshot 0 never sees versions (they start at 1).
  if (snapshot_version == 0 ||
      stamp_for(key.hash).load(std::memory_order_acquire) == 0)
    return base_.get(key);

  // Fast path 2: single-version keys served straight from the packed slot.
  {
    U256 packed;
    if (packed_read(key, snapshot_version, packed)) return packed;
  }

  {
    const Stripe& s = stripe_for(key.hash);
    std::shared_lock lk(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      const Chain& chain = it->second;
      // Last entry with version <= snapshot_version.  Chains are short
      // (bounded by block size), so a reverse scan beats binary search
      // here.  Pending-queue entries are always above every extant
      // snapshot (see file comment), so the chain alone is exact.
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        if (rit->first <= snapshot_version) return rit->second;
      }
    }
  }
  return base_.get(key);
}

U256 VersionedState::read_at(const StateKey& key,
                             std::uint64_t snapshot_version,
                             ReadCache& cache) const {
  const auto [it, inserted] = cache.map_.try_emplace(key);
  if (!inserted && it->second.as_of <= snapshot_version &&
      stamp_for(key.hash).load(std::memory_order_acquire) <=
          it->second.as_of) {
    // No version in (as_of, snapshot_version] can exist: everything <=
    // snapshot_version is published, and the published upper bound says
    // nothing landed after as_of.  The cached value is the snapshot value.
    ++cache.hits;
    return it->second.value;
  }
  ++cache.misses;
  const U256 value = read_at(key, snapshot_version);
  it->second.value = value;
  it->second.as_of = snapshot_version;
  return value;
}

std::uint64_t VersionedState::latest_version_locked(
    const StateKey& key) const {
  const Stripe& s = stripe_for(key.hash);
  std::shared_lock lk(s.mu);
  std::uint64_t latest = 0;
  const auto it = s.map.find(key);
  if (it != s.map.end() && !it->second.empty())
    latest = it->second.back().first;
  // Enqueued-not-yet-applied writes are committed decisions: validation
  // must see them (the host-threads proposer validates under its commit
  // lock while earlier versions may still be draining).
  for (const PendingWrite& pw : s.pending) {
    if (pw.version > latest && pw.key == key) latest = pw.version;
  }
  return latest;
}

std::uint64_t VersionedState::latest_version(const StateKey& key) const {
  if (stamp_for(key.hash).load(std::memory_order_acquire) == 0) return 0;
  return latest_version_locked(key);
}

bool VersionedState::newer_than(const StateKey& key,
                                std::uint64_t snapshot_version) const {
  // The stamp upper-bounds the key's published latest version: a bound
  // <= snapshot rules staleness out without a lock.  Above the bound,
  // confirm against the exact chain — stamp slots are shared by hash, so a
  // hot sibling key must not abort this one.
  if (stamp_for(key.hash).load(std::memory_order_acquire) <= snapshot_version)
    return false;
  return latest_version_locked(key) > snapshot_version;
}

// -- commits ----------------------------------------------------------------

void VersionedState::enqueue_commit(
    const std::vector<std::pair<StateKey, U256>>& write_set,
    std::uint64_t version) {
  BP_ASSERT_MSG(version > enqueued_version_,
                "commit versions must be strictly increasing");
  enqueued_version_ = version;
  for (const auto& [key, value] : write_set) {
    Stripe& s = stripe_for(key.hash);
    std::size_t prior_versions = 0;
    {
      std::unique_lock lk(s.mu);
      const auto it = s.map.find(key);
      if (it != s.map.end()) prior_versions = it->second.size();
      for (const PendingWrite& pw : s.pending) {
        if (pw.key == key) ++prior_versions;
      }
      s.pending.push_back(PendingWrite{key, value, version});
    }
    // Maintain the packed slot (enqueuers are serialized, so these are
    // single-writer): first version of a key -> publish it; second ->
    // the key is no longer single-version, kill the slot.
    if (prior_versions == 0) {
      packed_publish(key, value, version);
    } else if (prior_versions == 1) {
      packed_invalidate(key);
    }
    // Publish the pending entry before the stamp: a validator that
    // observes the raised stamp and takes the slow path must find it.
    stamp_for(key.hash).store(version, std::memory_order_release);
  }
}

void VersionedState::apply_commit(
    const std::vector<std::pair<StateKey, U256>>& write_set,
    std::uint64_t version) {
  // Drain every touched stripe up to `version`.  Entries of EARLIER
  // versions still pending there are drained too (work stealing): pending
  // queues are version-ordered, so a forward scan preserves per-key chain
  // order, and a stripe is never drained past the version in hand.
  std::uint64_t drained_stripes = 0;  // bitmask: kStripeCount == 64
  static_assert(kStripeCount <= 64);
  for (const auto& [key, value] : write_set) {
    const std::size_t idx = key.hash & (kStripeCount - 1);
    if (drained_stripes & (1ull << idx)) continue;
    drained_stripes |= 1ull << idx;
    Stripe& s = stripes_[idx];
    std::unique_lock lk(s.mu);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < s.pending.size(); ++i) {
      PendingWrite& pw = s.pending[i];
      if (pw.version <= version) {
        Chain& chain = s.map[pw.key];
        BP_ASSERT(chain.empty() || chain.back().first < pw.version);
        chain.emplace_back(pw.version, pw.value);
      } else {
        s.pending[kept++] = std::move(pw);
      }
    }
    s.pending.resize(kept);
  }
  // Ticket publication: versions become visible in order, so a snapshot
  // version acquired by a reader always covers fully-applied chains.
  std::uint64_t expected = version - 1;
  while (committed_version_.load(std::memory_order_acquire) != expected) {
    std::this_thread::yield();
  }
  committed_version_.store(version, std::memory_order_release);
}

void VersionedState::commit(
    const std::vector<std::pair<StateKey, U256>>& write_set,
    std::uint64_t version) {
  enqueue_commit(write_set, version);
  apply_commit(write_set, version);
}

void VersionedState::flatten_into(WorldState& out) const {
  for (const Stripe& s : stripes_) {
    std::shared_lock lk(s.mu);
    BP_ASSERT_MSG(s.pending.empty(),
                  "flatten_into with an unapplied commit in flight");
    for (const auto& [key, chain] : s.map) {
      BP_ASSERT(!chain.empty());
      out.set(key, chain.back().second);
    }
  }
}

// ---------------------------------------------------------------------------
// MvMemory

MvMemory::MvMemory(const WorldState& base, std::size_t num_txns)
    : base_(base), writes_(std::make_unique<TxnWrites[]>(num_txns)) {}

MvMemory::ReadResult MvMemory::read(const StateKey& key,
                                    std::uint32_t txn) const {
  const Stripe& s = stripe_for(key.hash);
  std::shared_lock lk(s.mu);
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    const WriterMap& writers = it->second;
    // Highest writer strictly below `txn` (preset-order semantics).
    auto wit = writers.lower_bound(txn);
    if (wit != writers.begin()) {
      --wit;
      ReadResult r;
      r.kind = wit->second.estimate ? ReadKind::kEstimate : ReadKind::kOk;
      r.value = wit->second.value;
      r.version = Version{wit->first, wit->second.incarnation};
      return r;
    }
  }
  ReadResult r;
  r.kind = ReadKind::kBase;
  r.value = base_.get(key);
  return r;
}

void MvMemory::seed_estimates(
    std::uint32_t txn, const std::vector<std::pair<StateKey, U256>>& writes) {
  TxnWrites& tw = writes_[txn];
  std::scoped_lock tlk(tw.mu);
  BP_ASSERT_MSG(tw.keys.empty(), "seed_estimates after execution started");
  for (const auto& [key, value] : writes) {
    Stripe& s = stripe_for(key.hash);
    std::unique_lock lk(s.mu);
    Entry& e = s.map[key][txn];
    e.incarnation = 0;
    e.estimate = true;
    e.value = value;
  }
  // Registering the seeds as incarnation 0's write set is what makes the
  // first real record() clean them up (see header comment).
  tw.keys.reserve(writes.size());
  for (const auto& [key, value] : writes) tw.keys.push_back(key);
}

bool MvMemory::record(std::uint32_t txn, std::uint32_t incarnation,
                      const std::vector<std::pair<StateKey, U256>>& writes) {
  TxnWrites& tw = writes_[txn];
  std::scoped_lock tlk(tw.mu);
  bool wrote_new = false;
  // Install / overwrite this incarnation's entries.
  for (const auto& [key, value] : writes) {
    Stripe& s = stripe_for(key.hash);
    std::unique_lock lk(s.mu);
    Entry& e = s.map[key][txn];
    e.incarnation = incarnation;
    e.estimate = false;
    e.value = value;
  }
  // Remove keys the previous incarnation wrote but this one did not
  // (write-set shrink: leaving them would feed higher transactions values
  // from a dead incarnation).
  for (const StateKey& old_key : tw.keys) {
    const bool still_written =
        std::any_of(writes.begin(), writes.end(),
                    [&](const auto& kv) { return kv.first == old_key; });
    if (still_written) continue;
    Stripe& s = stripe_for(old_key.hash);
    std::unique_lock lk(s.mu);
    const auto it = s.map.find(old_key);
    if (it != s.map.end()) {
      it->second.erase(txn);
      if (it->second.empty()) s.map.erase(it);
    }
  }
  // Diff against the previous incarnation's write set for the validation
  // wave trigger.
  for (const auto& [key, value] : writes) {
    const bool previously_written =
        std::any_of(tw.keys.begin(), tw.keys.end(),
                    [&](const StateKey& k) { return k == key; });
    if (!previously_written) {
      wrote_new = true;
      break;
    }
  }
  tw.keys.clear();
  tw.keys.reserve(writes.size());
  for (const auto& [key, value] : writes) tw.keys.push_back(key);
  return wrote_new;
}

void MvMemory::convert_to_estimates(std::uint32_t txn) {
  TxnWrites& tw = writes_[txn];
  std::scoped_lock tlk(tw.mu);
  for (const StateKey& key : tw.keys) {
    Stripe& s = stripe_for(key.hash);
    std::unique_lock lk(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) continue;
    const auto wit = it->second.find(txn);
    if (wit != it->second.end()) wit->second.estimate = true;
  }
}

void MvMemory::flatten_into(WorldState& out) const {
  for (const Stripe& s : stripes_) {
    std::shared_lock lk(s.mu);
    for (const auto& [key, writers] : s.map) {
      BP_ASSERT(!writers.empty());
      const Entry& last = writers.rbegin()->second;
      BP_ASSERT_MSG(!last.estimate, "flatten_into with surviving ESTIMATE");
      out.set(key, last.value);
    }
  }
}

// ---------------------------------------------------------------------------
// MvView

U256 MvView::read(const StateKey& key) const {
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;  // repeatable reads
  const MvMemory::ReadResult r = mv_.read(key, txn_);
  if (r.kind == MvMemory::ReadKind::kEstimate && !blocked_) {
    blocked_ = true;
    blocking_ = r.version.txn;
  }
  log_.push_back(LogEntry{key, r.kind == MvMemory::ReadKind::kBase
                                   ? MvMemory::Version{}
                                   : r.version});
  memo_.emplace(key, r.value);
  return r.value;
}

}  // namespace blockpilot::state
