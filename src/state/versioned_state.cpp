#include "state/versioned_state.hpp"

#include <algorithm>
#include <mutex>

#include "support/assert.hpp"

namespace blockpilot::state {

U256 VersionedState::read_at(const StateKey& key,
                             std::uint64_t snapshot_version) const {
  {
    std::shared_lock lk(mu_);
    const auto it = versions_.find(key);
    if (it != versions_.end()) {
      const auto& chain = it->second;
      // Last entry with version <= snapshot_version.  Chains are short
      // (bounded by block size), so a reverse scan beats binary search here.
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        if (rit->first <= snapshot_version) return rit->second;
      }
    }
  }
  return base_.get(key);
}

std::uint64_t VersionedState::latest_version(const StateKey& key) const {
  std::shared_lock lk(mu_);
  const auto it = versions_.find(key);
  if (it == versions_.end() || it->second.empty()) return 0;
  return it->second.back().first;
}

void VersionedState::commit(
    const std::vector<std::pair<StateKey, U256>>& write_set,
    std::uint64_t version) {
  std::unique_lock lk(mu_);
  BP_ASSERT_MSG(version > committed_version_,
                "commit versions must be strictly increasing");
  for (const auto& [key, value] : write_set) {
    auto& chain = versions_[key];
    BP_ASSERT(chain.empty() || chain.back().first < version);
    chain.emplace_back(version, value);
  }
  committed_version_ = version;
}

std::uint64_t VersionedState::committed_version() const {
  std::shared_lock lk(mu_);
  return committed_version_;
}

void VersionedState::flatten_into(WorldState& out) const {
  std::shared_lock lk(mu_);
  for (const auto& [key, chain] : versions_) {
    BP_ASSERT(!chain.empty());
    out.set(key, chain.back().second);
  }
}

}  // namespace blockpilot::state
