#include "state/versioned_state.hpp"

#include <algorithm>
#include <mutex>

#include "support/assert.hpp"

namespace blockpilot::state {

VersionedState::VersionedState(const WorldState& base)
    : base_(base),
      stamps_(std::make_unique<std::atomic<std::uint64_t>[]>(kStampSlots)) {
  // value-initialized by make_unique: every stamp starts at 0 (= base only)
}

U256 VersionedState::read_at(const StateKey& key,
                             std::uint64_t snapshot_version) const {
  // Fast path: stamp 0 proves no version of this key (or any stamp-slot
  // sibling) has been published, and versions <= snapshot_version are always
  // fully published before the snapshot version became visible — so the
  // base value is exact.  Snapshot 0 never sees versions (they start at 1).
  if (snapshot_version == 0 ||
      stamp_for(key.hash).load(std::memory_order_acquire) == 0)
    return base_.get(key);

  {
    const Stripe& s = stripe_for(key.hash);
    std::shared_lock lk(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      const Chain& chain = it->second;
      // Last entry with version <= snapshot_version.  Chains are short
      // (bounded by block size), so a reverse scan beats binary search here.
      for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
        if (rit->first <= snapshot_version) return rit->second;
      }
    }
  }
  return base_.get(key);
}

U256 VersionedState::read_at(const StateKey& key,
                             std::uint64_t snapshot_version,
                             ReadCache& cache) const {
  const auto [it, inserted] = cache.map_.try_emplace(key);
  if (!inserted && it->second.as_of <= snapshot_version &&
      stamp_for(key.hash).load(std::memory_order_acquire) <=
          it->second.as_of) {
    // No version in (as_of, snapshot_version] can exist: everything <=
    // snapshot_version is published, and the published upper bound says
    // nothing landed after as_of.  The cached value is the snapshot value.
    ++cache.hits;
    return it->second.value;
  }
  ++cache.misses;
  const U256 value = read_at(key, snapshot_version);
  it->second.value = value;
  it->second.as_of = snapshot_version;
  return value;
}

std::uint64_t VersionedState::latest_version_locked(
    const StateKey& key) const {
  const Stripe& s = stripe_for(key.hash);
  std::shared_lock lk(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end() || it->second.empty()) return 0;
  return it->second.back().first;
}

std::uint64_t VersionedState::latest_version(const StateKey& key) const {
  if (stamp_for(key.hash).load(std::memory_order_acquire) == 0) return 0;
  return latest_version_locked(key);
}

bool VersionedState::newer_than(const StateKey& key,
                                std::uint64_t snapshot_version) const {
  // The stamp upper-bounds the key's published latest version: a bound
  // <= snapshot rules staleness out without a lock.  Above the bound,
  // confirm against the exact chain — stamp slots are shared by hash, so a
  // hot sibling key must not abort this one.
  if (stamp_for(key.hash).load(std::memory_order_acquire) <= snapshot_version)
    return false;
  return latest_version_locked(key) > snapshot_version;
}

void VersionedState::commit(
    const std::vector<std::pair<StateKey, U256>>& write_set,
    std::uint64_t version) {
  BP_ASSERT_MSG(version > committed_version_.load(std::memory_order_relaxed),
                "commit versions must be strictly increasing");
  for (const auto& [key, value] : write_set) {
    Stripe& s = stripe_for(key.hash);
    {
      std::unique_lock lk(s.mu);
      Chain& chain = s.map[key];
      BP_ASSERT(chain.empty() || chain.back().first < version);
      chain.emplace_back(version, value);
    }
    // Publish the chain entry before the stamp: a reader that observes the
    // raised stamp and takes the slow path must find the entry.
    stamp_for(key.hash).store(version, std::memory_order_release);
  }
  // Publish all stamps before the version: a reader whose snapshot covers
  // `version` must see every stamp at >= its covered versions.
  committed_version_.store(version, std::memory_order_release);
}

void VersionedState::flatten_into(WorldState& out) const {
  for (const Stripe& s : stripes_) {
    std::shared_lock lk(s.mu);
    for (const auto& [key, chain] : s.map) {
      BP_ASSERT(!chain.empty());
      out.set(key, chain.back().second);
    }
  }
}

}  // namespace blockpilot::state
