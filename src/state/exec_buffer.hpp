// ExecBuffer: a transaction's private write buffer over a ReadView, with
// read/write-set tracking and nested checkpoints.
//
// Both execution contexts use it:
//  * the OCC-WSI proposer executes each transaction into an ExecBuffer over
//    a SnapshotView; the recorded read set drives WSI validation and the
//    write set is what commit() applies (paper Algorithm 1's rs & ws);
//  * the validator executes each transaction into an ExecBuffer over the
//    pending block overlay; the recorded sets are checked against the
//    proposer's block profile (paper Algorithm 2 / §4.4).
//
// Checkpoints implement EVM call-frame semantics: a reverting inner call
// undoes its writes but the gas it consumed stands.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "state/read_view.hpp"
#include "state/state_key.hpp"

namespace blockpilot::state {

class ExecBuffer final : public ReadView {
 public:
  /// A default-constructed buffer has no base view: rebase() before use.
  ExecBuffer() noexcept = default;
  explicit ExecBuffer(const ReadView& base) noexcept : base_(&base) {}

  /// Discards all buffered state and reseats the base view.  The backing
  /// allocations (read/write tables, journal) are retained, so one buffer
  /// can be recycled across transactions — and across re-executions of
  /// aborted transactions — without reallocating per attempt.
  void rebase(const ReadView& base) noexcept {
    reset();
    base_ = &base;
  }

  /// Read-through: buffered write if present, else base; every base read is
  /// recorded in the read set (reads of own writes are not conflicts —
  /// WSI validates only values observed from the snapshot).
  U256 read(const StateKey& key) const override;

  std::shared_ptr<const Bytes> code(const Address& addr) const override {
    return base_->code(addr);
  }

  Hash256 code_hash(const Address& addr) const override {
    return base_->code_hash(addr);
  }

  /// Buffers a write (journaled for checkpoint rollback).
  void write(const StateKey& key, const U256& value);

  // -- call-frame checkpoints --
  /// Opens a checkpoint; returns a token for revert_to().
  std::size_t checkpoint() const noexcept { return journal_.size(); }
  /// Rolls the buffer back to a checkpoint (reverting inner-frame writes).
  /// Read sets are NOT rolled back: a reverted frame still observed those
  /// values, so they remain conflict-relevant.
  void revert_to(std::size_t token);

  // -- recorded effects --
  /// Keys read from the base view (not satisfied by own writes), with the
  /// value first observed.  WSI validation needs only the keys; the
  /// two-phase OCC baseline validates by value.
  const std::unordered_map<StateKey, U256>& read_set() const noexcept {
    return reads_;
  }

  /// Read keys in deterministic (state_key_less) order.
  std::vector<StateKey> sorted_read_keys() const;
  /// As sorted_read_keys, reusing `out`'s capacity (hot-path variant).
  void sorted_read_keys_into(std::vector<StateKey>& out) const;
  /// Final buffered writes, in deterministic (key-sorted) order so that
  /// profiles and commits are bit-stable across runs.
  std::vector<std::pair<StateKey, U256>> write_set() const;
  /// As write_set, reusing `out`'s capacity (hot-path variant).
  void write_set_into(std::vector<std::pair<StateKey, U256>>& out) const;

  /// Discards all buffered state (abort path: transaction returns to pool).
  void reset();

 private:
  struct JournalEntry {
    StateKey key;
    bool had_prior;
    U256 prior;
  };

  const ReadView* base_ = nullptr;
  mutable std::unordered_map<StateKey, U256> reads_;
  std::unordered_map<StateKey, U256> writes_;
  std::vector<JournalEntry> journal_;
};

}  // namespace blockpilot::state
