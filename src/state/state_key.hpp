// StateKey: the unit of conflict detection.
//
// The paper's OCC-WSI reserve table and block profiles are keyed by
// "<key, version>" pairs where a key is an account-level counter (balance,
// nonce) or an EVM storage cell (paper §2.3: "most data conflicts arise from
// counters (e.g., balances) and storage").  We model exactly those three
// key kinds.  The validator's dependency-graph builder can coarsen storage
// keys to their owning account (paper §4.3 detects conflicts "from the
// account level"); see sched/depgraph.hpp.
//
// The hash is computed once at construction and cached in the key: the
// sharded VersionedState derives both its stripe index and its reserve-table
// stamp slot from it, and every unordered_map probe (ExecBuffer read/write
// sets, validator overlays, dependency graphs) reuses it instead of
// re-walking 20 address bytes + 4 slot limbs per probe.  A splitmix64
// finalizer gives the avalanche quality the stripe/stamp bit-slicing needs
// (sequential account ids and storage slots must not cluster into one
// stripe; see StateKeyHash tests).
#pragma once

#include <cstdint>
#include <string>

#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::state {

enum class Field : std::uint8_t {
  kBalance = 0,
  kNonce = 1,
  kStorage = 2,
};

namespace detail {
/// FNV-1a over (addr, field[, slot]) finished with a splitmix64 avalanche.
/// The slot contributes only for storage keys so that balance/nonce keys
/// hash identically regardless of their (ignored) slot field — mirroring
/// StateKey::operator==.
constexpr std::size_t state_key_hash(const Address& a, Field f,
                                     const U256& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : a.bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  h ^= static_cast<std::uint64_t>(f);
  h *= 0x100000001b3ULL;
  if (f == Field::kStorage) {
    for (std::size_t i = 0; i < 4; ++i) {
      h ^= s.limb(i);
      h *= 0x100000001b3ULL;
    }
  }
  // splitmix64 finalizer: every input bit avalanches into every output
  // bit, so stripe (low bits) and stamp-slot (next bits) indices stay
  // uniform even for sequential ids/slots.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h);
}
}  // namespace detail

struct StateKey {
  Address addr;
  Field field = Field::kBalance;
  U256 slot;  // meaningful only when field == kStorage
  /// Cached hash; kept in sync by the constructors.  Code that mutates
  /// addr/field/slot in place (codecs, tests) must call rehash() before the
  /// key is used in any hashed container or stripe lookup.
  std::size_t hash = kEmptyHash;

  constexpr StateKey() noexcept = default;
  StateKey(const Address& a, Field f, const U256& s) noexcept
      : addr(a), field(f), slot(s), hash(compute_hash(a, f, s)) {}

  static StateKey balance(const Address& a) noexcept {
    return StateKey{a, Field::kBalance, U256{}};
  }
  static StateKey nonce(const Address& a) noexcept {
    return StateKey{a, Field::kNonce, U256{}};
  }
  static StateKey storage(const Address& a, const U256& s) noexcept {
    return StateKey{a, Field::kStorage, s};
  }

  /// Recomputes the cached hash after direct field mutation.
  void rehash() noexcept { hash = compute_hash(addr, field, slot); }

  /// See detail::state_key_hash.
  static constexpr std::size_t compute_hash(const Address& a, Field f,
                                            const U256& s) noexcept {
    return detail::state_key_hash(a, f, s);
  }

  /// Hash of the default-constructed (zero-address balance) key.
  static constexpr std::size_t kEmptyHash =
      detail::state_key_hash(Address{}, Field::kBalance, U256{});

  friend bool operator==(const StateKey& a, const StateKey& b) noexcept {
    return a.field == b.field && a.addr == b.addr &&
           (a.field != Field::kStorage || a.slot == b.slot);
  }

  std::string to_string() const;
};

/// Deterministic total order (address, field, slot) used wherever key sets
/// must serialize bit-stably (profiles, write sets).
inline bool state_key_less(const StateKey& a, const StateKey& b) noexcept {
  if (a.addr != b.addr) return a.addr < b.addr;
  if (a.field != b.field) return a.field < b.field;
  return a.slot < b.slot;
}

}  // namespace blockpilot::state

template <>
struct std::hash<blockpilot::state::StateKey> {
  std::size_t operator()(const blockpilot::state::StateKey& k) const noexcept {
    return k.hash;  // precomputed at construction
  }
};
