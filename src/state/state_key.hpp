// StateKey: the unit of conflict detection.
//
// The paper's OCC-WSI reserve table and block profiles are keyed by
// "<key, version>" pairs where a key is an account-level counter (balance,
// nonce) or an EVM storage cell (paper §2.3: "most data conflicts arise from
// counters (e.g., balances) and storage").  We model exactly those three
// key kinds.  The validator's dependency-graph builder can coarsen storage
// keys to their owning account (paper §4.3 detects conflicts "from the
// account level"); see sched/depgraph.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::state {

enum class Field : std::uint8_t {
  kBalance = 0,
  kNonce = 1,
  kStorage = 2,
};

struct StateKey {
  Address addr;
  Field field = Field::kBalance;
  U256 slot;  // meaningful only when field == kStorage

  static StateKey balance(const Address& a) noexcept {
    return {a, Field::kBalance, U256{}};
  }
  static StateKey nonce(const Address& a) noexcept {
    return {a, Field::kNonce, U256{}};
  }
  static StateKey storage(const Address& a, const U256& s) noexcept {
    return {a, Field::kStorage, s};
  }

  friend bool operator==(const StateKey& a, const StateKey& b) noexcept {
    return a.field == b.field && a.addr == b.addr &&
           (a.field != Field::kStorage || a.slot == b.slot);
  }

  std::string to_string() const;
};

/// Deterministic total order (address, field, slot) used wherever key sets
/// must serialize bit-stably (profiles, write sets).
inline bool state_key_less(const StateKey& a, const StateKey& b) noexcept {
  if (a.addr != b.addr) return a.addr < b.addr;
  if (a.field != b.field) return a.field < b.field;
  return a.slot < b.slot;
}

}  // namespace blockpilot::state

template <>
struct std::hash<blockpilot::state::StateKey> {
  std::size_t operator()(const blockpilot::state::StateKey& k) const noexcept {
    std::size_t h = std::hash<blockpilot::Address>{}(k.addr);
    h ^= static_cast<std::size_t>(k.field) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    if (k.field == blockpilot::state::Field::kStorage)
      h ^= k.slot.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};
