#include "state/exec_buffer.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace blockpilot::state {

U256 ExecBuffer::read(const StateKey& key) const {
  const auto it = writes_.find(key);
  if (it != writes_.end()) return it->second;
  const auto rit = reads_.find(key);
  if (rit != reads_.end()) return rit->second;  // repeatable reads
  BP_ASSERT_MSG(base_ != nullptr, "ExecBuffer used before rebase()");
  const U256 value = base_->read(key);
  reads_.emplace(key, value);
  return value;
}

std::vector<StateKey> ExecBuffer::sorted_read_keys() const {
  std::vector<StateKey> keys;
  sorted_read_keys_into(keys);
  return keys;
}

void ExecBuffer::sorted_read_keys_into(std::vector<StateKey>& out) const {
  out.clear();
  out.reserve(reads_.size());
  for (const auto& [key, value] : reads_) out.push_back(key);
  std::sort(out.begin(), out.end(), state_key_less);
}

void ExecBuffer::write(const StateKey& key, const U256& value) {
  const auto it = writes_.find(key);
  if (it != writes_.end()) {
    journal_.push_back({key, true, it->second});
    it->second = value;
  } else {
    journal_.push_back({key, false, U256{}});
    writes_.emplace(key, value);
  }
}

void ExecBuffer::revert_to(std::size_t token) {
  BP_ASSERT(token <= journal_.size());
  while (journal_.size() > token) {
    const JournalEntry& e = journal_.back();
    if (e.had_prior) {
      writes_[e.key] = e.prior;
    } else {
      writes_.erase(e.key);
    }
    journal_.pop_back();
  }
}

std::vector<std::pair<StateKey, U256>> ExecBuffer::write_set() const {
  std::vector<std::pair<StateKey, U256>> out;
  write_set_into(out);
  return out;
}

void ExecBuffer::write_set_into(
    std::vector<std::pair<StateKey, U256>>& out) const {
  out.clear();
  out.reserve(writes_.size());
  out.insert(out.end(), writes_.begin(), writes_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return state_key_less(a.first, b.first);
  });
}

void ExecBuffer::reset() {
  reads_.clear();
  writes_.clear();
  journal_.clear();
}

}  // namespace blockpilot::state
