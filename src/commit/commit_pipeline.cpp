#include "commit/commit_pipeline.hpp"

#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::commit {

CommitResult CommitPipeline::compute(
    std::shared_ptr<const state::WorldState> post, const AuxRootFn& aux,
    std::uint64_t sequence) {
  BP_ASSERT_MSG(post != nullptr, "commit of null state");
  Stopwatch sw;
  CommitResult out;
  out.sequence = sequence;
  out.state_root = post->state_root();
  if (aux) out.aux_root = aux();
  out.post_state = std::move(post);
  out.commit_ms = sw.elapsed_ms();
  return out;
}

CommitHandle CommitPipeline::submit(
    std::shared_ptr<const state::WorldState> post, AuxRootFn aux) {
  std::scoped_lock lk(mu_);
  const std::uint64_t seq = next_seq_++;
  ++stats_.submitted;

  if (pool_ == nullptr) {
    // Degraded/sync mode: do the work at submit time.
    std::promise<CommitResult> p;
    CommitResult r = compute(std::move(post), aux, seq);
    stats_.total_commit_ms += r.commit_ms;
    ++stats_.inline_runs;
    p.set_value(std::move(r));
    auto fut = p.get_future().share();
    tail_ = fut;
    return CommitHandle(fut);
  }

  // ThreadPool::Task is a copyable std::function, so the move-only promise
  // rides in a shared_ptr.
  auto promise = std::make_shared<std::promise<CommitResult>>();
  auto fut = promise->get_future().share();
  std::shared_future<CommitResult> prev = tail_;
  tail_ = fut;
  pool_->submit([this, promise, prev, post = std::move(post),
                 aux = std::move(aux), seq]() mutable {
    // FIFO publication: never resolve before the predecessor.  The pool's
    // queue is FIFO too, so by the time this task runs its predecessor has
    // at least started — waiting here cannot starve the pool.
    if (prev.valid()) prev.wait();
    CommitResult r = compute(std::move(post), aux, seq);
    {
      std::scoped_lock lk(mu_);
      stats_.total_commit_ms += r.commit_ms;
    }
    promise->set_value(std::move(r));
  });
  return CommitHandle(fut);
}

CommitHandle CommitPipeline::submit_writes(
    const state::WorldState& parent,
    std::vector<std::pair<state::StateKey, U256>> writes, AuxRootFn aux) {
  auto post = std::make_shared<state::WorldState>(parent);
  for (const auto& [key, value] : writes) post->set(key, value);
  return submit(std::static_pointer_cast<const state::WorldState>(post),
                std::move(aux));
}

CommitPipelineStats CommitPipeline::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

}  // namespace blockpilot::commit
