#include "commit/commit_pipeline.hpp"

#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::commit {

CommitResult CommitPipeline::compute(
    std::shared_ptr<const state::WorldState> post, const AuxRootFn& aux,
    std::uint64_t sequence, db::NodeStore* store) {
  BP_ASSERT_MSG(post != nullptr, "commit of null state");
  Stopwatch sw;
  CommitResult out;
  out.sequence = sequence;
  out.state_root = post->state_root();
  if (aux) out.aux_root = aux();
  out.commit_ms = sw.elapsed_ms();
  if (store != nullptr) {
    Stopwatch psw;
    out.nodes_appended = post->persist_commitment(*store);
    out.persist_ms = psw.elapsed_ms();
  }
  out.post_state = std::move(post);
  return out;
}

void CommitPipeline::set_settle_observer(SettleFn observer) {
  std::scoped_lock lk(mu_);
  observer_ = std::move(observer);
}

void CommitPipeline::set_node_store(db::NodeStore* store) {
  std::scoped_lock lk(mu_);
  node_store_ = store;
}

CommitHandle CommitPipeline::submit(
    std::shared_ptr<const state::WorldState> post, AuxRootFn aux,
    SettleFn on_settled) {
  std::unique_lock lk(mu_);
  const std::uint64_t seq = next_seq_++;
  ++stats_.submitted;
  SettleFn observer = observer_;  // snapshot: tasks outlive the lock
  db::NodeStore* store = node_store_;

  if (pool_ == nullptr) {
    // Degraded/sync mode: do the work at submit time.  The settlement
    // notification fires inline, before submit() returns — nothing pends.
    std::promise<CommitResult> p;
    CommitResult r = compute(std::move(post), aux, seq, store);
    stats_.total_commit_ms += r.commit_ms;
    ++stats_.inline_runs;
    ++stats_.settled;
    p.set_value(std::move(r));
    auto fut = p.get_future().share();
    tail_ = fut;
    lk.unlock();
    if (observer) observer(fut.get());
    if (on_settled) on_settled(fut.get());
    return CommitHandle(fut);
  }

  // ThreadPool::Task is a copyable std::function, so the move-only promise
  // rides in a shared_ptr.
  auto promise = std::make_shared<std::promise<CommitResult>>();
  auto fut = promise->get_future().share();
  std::shared_future<CommitResult> prev = tail_;
  tail_ = fut;
  ++pending_;
  stats_.max_pending = std::max(stats_.max_pending, pending_);
  pool_->submit([this, promise, prev, fut, post = std::move(post),
                 aux = std::move(aux), on_settled = std::move(on_settled),
                 observer = std::move(observer), seq, store]() mutable {
    // FIFO publication: never resolve before the predecessor.  The pool's
    // queue is FIFO too, so by the time this task runs its predecessor has
    // at least started — waiting here cannot starve the pool.
    if (prev.valid()) prev.wait();
    CommitResult r = compute(std::move(post), aux, seq, store);
    const double commit_ms = r.commit_ms;
    // The callbacks fire BEFORE the promise resolves: the successor task is
    // parked in prev.wait() until set_value below, so settlement
    // notifications are strictly FIFO across submissions — resolving first
    // would let the successor's callbacks race (and overtake) ours.  They
    // also fire before this task releases its pending slot, so drain() —
    // and the destructor, which drains — implies every notification has
    // finished.  The task must not touch the pipeline after the decrement
    // below: a drained pipeline may already be destroyed.  (Callbacks may
    // submit follow-ups, but must not block on this pipeline's own
    // backpressure, nor wait on their own handle.)
    if (observer) observer(r);
    if (on_settled) on_settled(r);
    promise->set_value(std::move(r));
    {
      std::scoped_lock lk(mu_);
      stats_.total_commit_ms += commit_ms;
      ++stats_.settled;
      --pending_;
      // Notify UNDER the lock: a drain()er woken by this broadcast cannot
      // re-acquire mu_ (and thus cannot return and destroy the pipeline)
      // until this task has fully left the condition variable and released
      // the mutex — the unlock below is the task's last touch of `this`.
      settled_cv_.notify_all();
    }
  });
  return CommitHandle(fut);
}

CommitHandle CommitPipeline::submit_writes(
    const state::WorldState& parent,
    std::vector<std::pair<state::StateKey, U256>> writes, AuxRootFn aux) {
  auto post = std::make_shared<state::WorldState>(parent);
  for (const auto& [key, value] : writes) post->set(key, value);
  return submit(std::static_pointer_cast<const state::WorldState>(post),
                std::move(aux));
}

CommitPipelineStats CommitPipeline::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

std::size_t CommitPipeline::pending() const {
  std::scoped_lock lk(mu_);
  return pending_;
}

void CommitPipeline::wait_pending_at_most(std::size_t max_pending) const {
  std::unique_lock lk(mu_);
  settled_cv_.wait(lk, [&] { return pending_ <= max_pending; });
}

}  // namespace blockpilot::commit
