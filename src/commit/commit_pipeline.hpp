// CommitPipeline: state commitment off the critical path.
//
// BlockPilot's proposer and validator agree on a block when their post-state
// MPT roots match (paper §5.2), but computing that root is pure hashing —
// it reads the post state and touches nothing the *next* block's execution
// needs.  This subsystem moves root computation onto the shared thread pool
// and hands back a future-style CommitHandle, so the core pipeline overlaps
// block N's commitment with block N+1's execution and compares roots only
// where the handle is awaited.
//
// Ordering: submissions complete in FIFO order (each task waits on its
// predecessor before publishing), so block N's root is always ready no
// later than block N+1's — the chain layer relies on this when it settles
// a round speculatively.
//
// Layering: bp_commit sits on bp_state/bp_support only.  Roots that need
// higher layers (the receipts root lives in bp_chain) are injected as an
// AuxRootFn closure, keeping the dependency arrow pointing downward.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "state/state_key.hpp"
#include "state/world_state.hpp"
#include "support/thread_pool.hpp"
#include "types/address.hpp"

namespace blockpilot::commit {

/// Extra root computed alongside the state root (e.g. the receipts root),
/// injected by the caller so this module stays below bp_chain.
using AuxRootFn = std::function<Hash256()>;

/// Settlement notification: invoked exactly once per submission, right after
/// the commitment's result publishes (in FIFO order).  Runs on the committing
/// pool thread in async mode and inline at submit time in degraded mode, so
/// the callback must be cheap and must not block on the pipeline itself.
struct CommitResult;
using SettleFn = std::function<void(const CommitResult&)>;

/// Result of one asynchronous commitment.
struct CommitResult {
  Hash256 state_root;
  Hash256 aux_root;  // zero when no AuxRootFn was supplied
  std::shared_ptr<const state::WorldState> post_state;
  double commit_ms = 0.0;   // time spent hashing (excludes queue wait)
  std::uint64_t sequence = 0;  // FIFO position within the pipeline
  std::size_t nodes_appended = 0;  // dirty nodes written to the node store
  double persist_ms = 0.0;         // time spent appending (0 with no store)
};

class CommitPipeline;

/// Future-style handle to a pending commitment.  Copyable (shared-future
/// semantics); a default-constructed handle is invalid and means "no async
/// commitment was requested".
class CommitHandle {
 public:
  CommitHandle() = default;

  /// True when this handle refers to a submitted commitment.
  bool valid() const noexcept { return future_.valid(); }

  /// True when the result is available without blocking.
  bool ready() const {
    return valid() && future_.wait_for(std::chrono::seconds(0)) ==
                          std::future_status::ready;
  }

  /// Blocks until the result is available and returns it.
  const CommitResult& get() const { return future_.get(); }

  void wait() const { future_.wait(); }

 private:
  friend class CommitPipeline;
  explicit CommitHandle(std::shared_future<CommitResult> f)
      : future_(std::move(f)) {}

  std::shared_future<CommitResult> future_;
};

/// Aggregate pipeline counters (bench/test hooks).
struct CommitPipelineStats {
  std::uint64_t submitted = 0;
  std::uint64_t inline_runs = 0;  // executed synchronously (no pool)
  std::uint64_t settled = 0;      // results published (== callbacks fired)
  std::size_t max_pending = 0;    // high-water mark of in-flight commitments
  double total_commit_ms = 0.0;   // sum of CommitResult::commit_ms
};

class CommitPipeline {
 public:
  /// With a pool, commitments run asynchronously on it; with nullptr they
  /// run inline at submit time (useful for tests and as a degraded mode).
  explicit CommitPipeline(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Drains before dying: in-flight tasks reference the pipeline's mutex,
  /// counters, and condition variable, so destruction must wait for every
  /// submitted commitment — including abandoned ones whose handles were
  /// dropped by a revoked speculative suffix — to publish.
  ~CommitPipeline() { drain(); }

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Queues the commitment of `post`.  The state must not be mutated after
  /// submission (the pipeline hashes it concurrently) — callers hand over a
  /// sealed post-state snapshot.  `on_settled`, when provided, fires once the
  /// result publishes (see SettleFn) — the push-style settlement
  /// notification the event-driven node loop consumes instead of polling
  /// CommitHandle::ready().
  CommitHandle submit(std::shared_ptr<const state::WorldState> post,
                      AuxRootFn aux = {}, SettleFn on_settled = {});

  /// Convenience: copies `parent` (O(1) shared-structure copy), applies
  /// `writes`, and queues the commitment of the result.
  CommitHandle submit_writes(
      const state::WorldState& parent,
      std::vector<std::pair<state::StateKey, U256>> writes, AuxRootFn aux = {});

  /// Synchronous commitment of a state (the work one task performs).  With
  /// a store, the state's dirty trie nodes are appended right after the
  /// root is known — the batch rides the commit future, off the proposer's
  /// sealing path.
  static CommitResult compute(std::shared_ptr<const state::WorldState> post,
                              const AuxRootFn& aux, std::uint64_t sequence,
                              db::NodeStore* store = nullptr);

  /// Attaches a node store: every subsequent commitment persists its post
  /// state's new trie nodes as part of the committing task (durability —
  /// the commit_root barrier — stays with the chain layer at finalization).
  /// `store` must outlive the pipeline; nullptr detaches.  Set it before
  /// the first submit — installation is not synchronized against in-flight
  /// tasks.
  void set_node_store(db::NodeStore* store);

  /// Pipeline-wide settlement observer: fires once per submission, right
  /// after its result publishes and before the per-submit SettleFn (same
  /// threading contract).  This is how the consensus loop feeds *measured*
  /// commit latency (CommitResult::commit_ms) back into its virtual settle
  /// schedule instead of the gas-derived model.  Set it before the first
  /// submit — installation is not synchronized against in-flight tasks.
  void set_settle_observer(SettleFn observer);

  CommitPipelineStats stats() const;

  bool async() const noexcept { return pool_ != nullptr; }

  /// Commitments submitted but not yet published.  Always 0 in inline mode.
  std::size_t pending() const;

  /// Speculation-depth backpressure: blocks the caller until at most
  /// `max_pending` commitments are in flight.  A node that may run only
  /// `depth` unsettled heights ahead parks here instead of spinning on
  /// await(); returns immediately in inline mode (nothing ever pends).
  void wait_pending_at_most(std::size_t max_pending) const;

  /// Blocks until every submitted commitment has published.
  void drain() const { wait_pending_at_most(0); }

 private:
  ThreadPool* pool_;
  mutable std::mutex mu_;
  mutable std::condition_variable settled_cv_;
  std::shared_future<CommitResult> tail_;  // FIFO ordering chain
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
  CommitPipelineStats stats_;
  SettleFn observer_;  // snapshot taken per submit under mu_
  db::NodeStore* node_store_ = nullptr;  // snapshot taken per submit under mu_
};

}  // namespace blockpilot::commit
