// CommitPipeline: state commitment off the critical path.
//
// BlockPilot's proposer and validator agree on a block when their post-state
// MPT roots match (paper §5.2), but computing that root is pure hashing —
// it reads the post state and touches nothing the *next* block's execution
// needs.  This subsystem moves root computation onto the shared thread pool
// and hands back a future-style CommitHandle, so the core pipeline overlaps
// block N's commitment with block N+1's execution and compares roots only
// where the handle is awaited.
//
// Ordering: submissions complete in FIFO order (each task waits on its
// predecessor before publishing), so block N's root is always ready no
// later than block N+1's — the chain layer relies on this when it settles
// a round speculatively.
//
// Layering: bp_commit sits on bp_state/bp_support only.  Roots that need
// higher layers (the receipts root lives in bp_chain) are injected as an
// AuxRootFn closure, keeping the dependency arrow pointing downward.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "state/state_key.hpp"
#include "state/world_state.hpp"
#include "support/thread_pool.hpp"
#include "types/address.hpp"

namespace blockpilot::commit {

/// Extra root computed alongside the state root (e.g. the receipts root),
/// injected by the caller so this module stays below bp_chain.
using AuxRootFn = std::function<Hash256()>;

/// Result of one asynchronous commitment.
struct CommitResult {
  Hash256 state_root;
  Hash256 aux_root;  // zero when no AuxRootFn was supplied
  std::shared_ptr<const state::WorldState> post_state;
  double commit_ms = 0.0;   // time spent hashing (excludes queue wait)
  std::uint64_t sequence = 0;  // FIFO position within the pipeline
};

class CommitPipeline;

/// Future-style handle to a pending commitment.  Copyable (shared-future
/// semantics); a default-constructed handle is invalid and means "no async
/// commitment was requested".
class CommitHandle {
 public:
  CommitHandle() = default;

  /// True when this handle refers to a submitted commitment.
  bool valid() const noexcept { return future_.valid(); }

  /// True when the result is available without blocking.
  bool ready() const {
    return valid() && future_.wait_for(std::chrono::seconds(0)) ==
                          std::future_status::ready;
  }

  /// Blocks until the result is available and returns it.
  const CommitResult& get() const { return future_.get(); }

  void wait() const { future_.wait(); }

 private:
  friend class CommitPipeline;
  explicit CommitHandle(std::shared_future<CommitResult> f)
      : future_(std::move(f)) {}

  std::shared_future<CommitResult> future_;
};

/// Aggregate pipeline counters (bench/test hooks).
struct CommitPipelineStats {
  std::uint64_t submitted = 0;
  std::uint64_t inline_runs = 0;  // executed synchronously (no pool)
  double total_commit_ms = 0.0;   // sum of CommitResult::commit_ms
};

class CommitPipeline {
 public:
  /// With a pool, commitments run asynchronously on it; with nullptr they
  /// run inline at submit time (useful for tests and as a degraded mode).
  explicit CommitPipeline(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Queues the commitment of `post`.  The state must not be mutated after
  /// submission (the pipeline hashes it concurrently) — callers hand over a
  /// sealed post-state snapshot.
  CommitHandle submit(std::shared_ptr<const state::WorldState> post,
                      AuxRootFn aux = {});

  /// Convenience: copies `parent` (O(1) shared-structure copy), applies
  /// `writes`, and queues the commitment of the result.
  CommitHandle submit_writes(
      const state::WorldState& parent,
      std::vector<std::pair<state::StateKey, U256>> writes, AuxRootFn aux = {});

  /// Synchronous commitment of a state (the work one task performs).
  static CommitResult compute(std::shared_ptr<const state::WorldState> post,
                              const AuxRootFn& aux, std::uint64_t sequence);

  CommitPipelineStats stats() const;

  bool async() const noexcept { return pool_ != nullptr; }

 private:
  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::shared_future<CommitResult> tail_;  // FIFO ordering chain
  std::uint64_t next_seq_ = 0;
  CommitPipelineStats stats_;
};

}  // namespace blockpilot::commit
