// TwoPhaseOcc: the Saraph/Herlihy-style parallel-then-serial OCC validator
// used as the paper's "OCC" comparison curve in Fig. 7a.
//
// Phase 1 executes every transaction speculatively in parallel against the
// block's *pre-state* (no inter-transaction visibility).  Phase 2 walks the
// block in order: a transaction whose recorded reads still match the
// current state commits its speculative writes as-is; any transaction that
// observed a now-stale value is re-executed serially.  Value-based
// validation makes the final state exactly equal to serial execution.
//
// Compared with BlockPilot's validator, this baseline wastes the work of
// every conflicting transaction and serializes all of their re-executions
// on one thread — which is why its speedup trails the dependency-graph
// scheduler as conflicts grow.
#pragma once

#include "chain/block.hpp"
#include "core/execution_result.hpp"
#include "core/validator.hpp"
#include "evm/state_transition.hpp"
#include "support/thread_pool.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot::core {

struct TwoPhaseOccStats {
  std::uint64_t serial_gas = 0;
  std::uint64_t vtime_makespan = 0;  // phase-1 makespan + serial phase chain
  std::size_t reexecuted = 0;        // conflicting transactions
  double wall_ms = 0.0;

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct TwoPhaseOccOutcome {
  bool valid = false;
  std::string reject_reason;
  BlockExecution exec;
  TwoPhaseOccStats stats;
};

class TwoPhaseOcc {
 public:
  explicit TwoPhaseOcc(ValidatorConfig config) : config_(config) {}

  TwoPhaseOccOutcome validate(const state::WorldState& pre,
                              const chain::Block& block,
                              ThreadPool& workers);

 private:
  ValidatorConfig config_;
};

}  // namespace blockpilot::core
