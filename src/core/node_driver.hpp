// NodeDriver: the live-ingestion node loop.
//
// Couples the layers end to end the way a running node would: a
// TrafficGenerator firehose feeds the TxPool's admission front while the
// OccWsiProposer pulls fixed-gas blocks out of it; sealing rides the
// CommitPipeline (speculative, up to `speculation_depth` unsettled heights)
// and settled blocks append to the Blockchain.  The driver measures what
// the replay benches cannot: steady-state throughput under a continuous
// arrival stream, pool occupancy over time, and per-transaction
// admission-to-settle latency.
//
// Determinism: with the proposer in kVirtualTime mode and
// `concurrent_submission` off, the entire run — every admission decision,
// block body, and block hash — is a pure function of (profile, seed).
// Wall-clock only enters the *measurements* (latency, tx/s), never the
// state evolution, so the soak tests can assert bit-stable re-runs.  With
// `concurrent_submission` on, a feeder thread races submissions against the
// proposer's pops — the TSan configuration of the ingestion soak.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/proposer.hpp"
#include "txpool/txpool.hpp"
#include "workload/traffic.hpp"

namespace blockpilot::core {

struct NodeDriverConfig {
  ProposerConfig proposer;       // commit_pipeline field is managed by run()
  txpool::TxPoolConfig pool;
  workload::TrafficProfile profile;
  std::uint64_t seed = 1;

  std::uint64_t blocks = 32;        // blocks to drive
  std::size_t ticks_per_block = 2;  // traffic ticks fed per block interval
  std::size_t speculation_depth = 2;  // unsettled heights allowed in flight

  /// Feed the pool from a separate thread while the proposer drains it
  /// (races add() against pop(); the TSan soak configuration).  State
  /// evolution is no longer deterministic in this mode.
  bool concurrent_submission = false;

  /// Re-submit capacity-evicted transactions at the next block boundary,
  /// modelling clients that watch the chain and re-broadcast dropped
  /// transactions.  Without this feedback an open-loop generator leaves a
  /// permanent nonce hole at every evicted slot (the generator's nonce
  /// counters only march forward), and under sustained overload every
  /// sender eventually strands behind such a hole.
  bool resubmit_evicted = true;

  std::uint64_t coinbase_id = 0xC0FFEE;
  std::uint64_t timestamp_base = 1'700'000'000;
};

struct LatencySummary {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::size_t samples = 0;
};

struct NodeDriverResult {
  std::uint64_t blocks = 0;
  std::uint64_t txs_committed = 0;
  std::uint64_t empty_blocks = 0;
  std::uint64_t aborts = 0;
  std::uint64_t not_ready = 0;
  std::uint64_t dropped = 0;

  double wall_ms = 0.0;
  double tx_per_s = 0.0;

  txpool::TxPoolStats pool_stats;       // final snapshot
  workload::TrafficStats traffic;
  std::vector<std::size_t> occupancy;   // pool residency after each settle
  LatencySummary admit_to_settle;

  /// Chain fingerprint for bit-stability assertions: identical runs must
  /// produce identical hash sequences (hashes cover parent, roots, body).
  std::vector<Hash256> block_hashes;
  Hash256 final_state_root;

  /// Engine that produced each block, in height order (the configured mode
  /// for fixed engines; the per-block pick under ScheduleMode::kAdaptive).
  /// Part of the bit-stability surface: identical seeded runs must choose
  /// identically at every height.
  std::vector<ScheduleMode> engine_by_height;

  /// TxPool conservation invariant at end of run: every admitted
  /// transaction is accounted committed, dropped, evicted, replaced,
  /// stale-dropped, or still resident.
  bool conserved = false;

  /// (sender, nonce) slots that appeared in more than one committed block —
  /// must be zero (the nonce ladder admits each slot to at most one block).
  std::uint64_t duplicate_commits = 0;
};

class NodeDriver {
 public:
  explicit NodeDriver(NodeDriverConfig config) : config_(std::move(config)) {}

  /// Drives the full loop for config.blocks block intervals and settles
  /// every outstanding seal before returning.
  NodeDriverResult run();

  const NodeDriverConfig& config() const noexcept { return config_; }

 private:
  NodeDriverConfig config_;
};

}  // namespace blockpilot::core
