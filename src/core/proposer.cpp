#include "core/proposer.hpp"

#include "support/assert.hpp"

namespace blockpilot::core {

std::unique_ptr<ExecutionEngine> make_execution_engine(
    const ProposerConfig& config) {
  if (is_block_stm(config.mode))
    return detail::make_blockstm_engine(config, is_host_threads(config.mode));
  return detail::make_occ_wsi_engine(config, is_host_threads(config.mode));
}

ProposedBlock BlockProposer::propose_virtual(const state::WorldState& pre,
                                             const evm::BlockContext& block_ctx,
                                             txpool::TxPool& pool) {
  if (!is_host_threads(config_.mode))
    return engine_->propose(pre, block_ctx, pool, nullptr);
  ProposerConfig cfg = config_;
  cfg.mode = is_block_stm(config_.mode) ? ScheduleMode::kBlockStm
                                        : ScheduleMode::kVirtualTime;
  return make_execution_engine(cfg)->propose(pre, block_ctx, pool, nullptr);
}

ProposedBlock BlockProposer::propose_host_threads(
    const state::WorldState& pre, const evm::BlockContext& block_ctx,
    txpool::TxPool& pool, ThreadPool& workers) {
  if (is_host_threads(config_.mode))
    return engine_->propose(pre, block_ctx, pool, &workers);
  ProposerConfig cfg = config_;
  cfg.mode = is_block_stm(config_.mode) ? ScheduleMode::kBlockStmHost
                                        : ScheduleMode::kHostThreads;
  return make_execution_engine(cfg)->propose(pre, block_ctx, pool, &workers);
}

void ExecutionEngine::seal_commitment(ProposedBlock& result) {
  if (config_.commit_pipeline == nullptr) {
    result.block.header.state_root = result.post_state->state_root();
    result.block.header.receipts_root = chain::receipts_root(result.receipts);
    return;
  }
  // Receipts root rides along as the aux root so the whole commitment —
  // not just the state root — leaves the proposer's critical path.
  result.commit = config_.commit_pipeline->submit(
      result.post_state,
      [receipts = result.receipts] { return chain::receipts_root(receipts); });
}

void ProposedBlock::await_seal() {
  if (!commit.valid()) return;
  const commit::CommitResult& r = commit.get();
  block.header.state_root = r.state_root;
  block.header.receipts_root = r.aux_root;
}

}  // namespace blockpilot::core
