#include "core/proposer.hpp"

#include "sched/depgraph.hpp"
#include "support/assert.hpp"

namespace blockpilot::core {
namespace {

/// Per-block engine selection between the two DES twins (engine_select.hpp):
/// OCC-WSI while the previous block's largest-subgraph ratio stays at or
/// below the threshold, Block-STM above it.  The ratio is derived from the
/// profile of the block this engine just proposed — a pure function of the
/// chain content, so a seeded run is bit-reproducible.  The signal lives
/// instance-local by default; drivers that construct a fresh engine per
/// proposal park it in config.adaptive_ratio_slot instead.
class AdaptiveEngine final : public ExecutionEngine {
 public:
  explicit AdaptiveEngine(const ProposerConfig& config)
      : ExecutionEngine(config) {
    ProposerConfig occ = config;
    occ.mode = ScheduleMode::kVirtualTime;
    ProposerConfig stm = config;
    stm.mode = ScheduleMode::kBlockStm;
    occ_ = detail::make_occ_wsi_engine(occ, /*host_threads=*/false);
    stm_ = detail::make_blockstm_engine(stm, /*host_threads=*/false);
  }

  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool* workers) override {
    double& ratio = config_.adaptive_ratio_slot != nullptr
                        ? *config_.adaptive_ratio_slot
                        : local_ratio_;
    const bool use_stm = ratio > config_.adaptive_threshold;
    ProposedBlock blk = (use_stm ? *stm_ : *occ_)
                            .propose(pre, block_ctx, pool, workers);
    blk.stats.engine_used =
        use_stm ? ScheduleMode::kBlockStm : ScheduleMode::kVirtualTime;
    // An empty block carries no signal; keep the previous ratio so a quiet
    // interval doesn't reset the regime.
    if (!blk.profile.txs.empty()) {
      ratio = sched::build_dependency_graph(blk.profile,
                                            sched::Granularity::kAccount)
                  .largest_subgraph_ratio();
    }
    blk.stats.largest_subgraph_ratio = ratio;
    return blk;
  }

 private:
  std::unique_ptr<ExecutionEngine> occ_;
  std::unique_ptr<ExecutionEngine> stm_;
  double local_ratio_ = 0.0;
};

}  // namespace

std::unique_ptr<ExecutionEngine> make_execution_engine(
    const ProposerConfig& config) {
  if (config.mode == ScheduleMode::kAdaptive)
    return std::make_unique<AdaptiveEngine>(config);
  if (is_block_stm(config.mode))
    return detail::make_blockstm_engine(config, is_host_threads(config.mode));
  return detail::make_occ_wsi_engine(config, is_host_threads(config.mode));
}

ProposedBlock BlockProposer::propose_virtual(const state::WorldState& pre,
                                             const evm::BlockContext& block_ctx,
                                             txpool::TxPool& pool) {
  if (!is_host_threads(config_.mode))
    return engine_->propose(pre, block_ctx, pool, nullptr);
  ProposerConfig cfg = config_;
  cfg.mode = is_block_stm(config_.mode) ? ScheduleMode::kBlockStm
                                        : ScheduleMode::kVirtualTime;
  return make_execution_engine(cfg)->propose(pre, block_ctx, pool, nullptr);
}

ProposedBlock BlockProposer::propose_host_threads(
    const state::WorldState& pre, const evm::BlockContext& block_ctx,
    txpool::TxPool& pool, ThreadPool& workers) {
  if (is_host_threads(config_.mode))
    return engine_->propose(pre, block_ctx, pool, &workers);
  ProposerConfig cfg = config_;
  cfg.mode = is_block_stm(config_.mode) ? ScheduleMode::kBlockStmHost
                                        : ScheduleMode::kHostThreads;
  return make_execution_engine(cfg)->propose(pre, block_ctx, pool, &workers);
}

void ExecutionEngine::seal_commitment(ProposedBlock& result) {
  if (config_.commit_pipeline == nullptr) {
    result.block.header.state_root = result.post_state->state_root();
    result.block.header.receipts_root = chain::receipts_root(result.receipts);
    return;
  }
  // Receipts root rides along as the aux root so the whole commitment —
  // not just the state root — leaves the proposer's critical path.
  result.commit = config_.commit_pipeline->submit(
      result.post_state,
      [receipts = result.receipts] { return chain::receipts_root(receipts); });
}

void ProposedBlock::await_seal() {
  if (!commit.valid()) return;
  const commit::CommitResult& r = commit.get();
  block.header.state_root = r.state_root;
  block.header.receipts_root = r.aux_root;
}

}  // namespace blockpilot::core
