// ExecutionEngine: the seam between "what a proposer produces" and "how the
// block gets executed".
//
// BlockPilot's proposer originally had one concurrency-control discipline
// baked in (OCC with Write-Snapshot-Isolation, paper §4.2).  This interface
// factors the discipline out: an engine consumes a pending pool and emits a
// ProposedBlock — transactions, profile, receipts, post state, stats —
// while everything around it (NodeDriver, ConsensusSim, the benches) talks
// only to the seam.  Two families ship behind it:
//
//  * OCC-WSI   (engine_occ_wsi.cpp)  — commit order decided at runtime by a
//    serialized validate-and-commit section; write-write conflicts commit.
//  * Block-STM (engine_blockstm.cpp) — PRESET order (pool pop order),
//    optimistic execution over a multi-version memory with estimate-based
//    dependencies and a collaborative scheduler; no serialized commit
//    section at all (docs/blockstm.md).
//
// Each family has two realizations of the same algorithm: a deterministic
// discrete-event simulation over virtual time (the figure-generating mode)
// and a real-thread twin (the thread-safety mode).  ScheduleMode picks the
// (family, realization) pair; make_execution_engine maps it to an engine.
#pragma once

#include <cstdint>
#include <memory>

#include "chain/block.hpp"
#include "chain/receipt.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/engine_select.hpp"
#include "core/execution_result.hpp"
#include "evm/state_transition.hpp"
#include "support/thread_pool.hpp"
#include "txpool/txpool.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot::core {

/// Which concurrency-control family realizes the proposal, and how.
enum class ScheduleMode : std::uint8_t {
  /// OCC-WSI as a discrete-event simulation of `threads` virtual workers:
  /// each worker has a virtual clock; transactions execute (real EVM
  /// execution) against the snapshot committed as of their virtual start
  /// time, and validate against commits that landed during their virtual
  /// execution window.  Deterministic and host-independent — identical OCC
  /// dynamics (aborts, commit order, lane loads) on a laptop or a 1-vCPU CI
  /// box.  This is the figure-generating mode (DESIGN.md §1).
  kVirtualTime = 0,
  /// OCC-WSI on real std::thread workers racing on the pool — genuine
  /// concurrency for thread-safety validation.  OCC dynamics depend on host
  /// scheduling (a single-core host degenerates to serial execution with no
  /// aborts).
  kHostThreads,
  /// Block-STM as a discrete-event simulation: virtual workers pull
  /// execution/validation tasks from the collaborative scheduler; task
  /// outcomes apply at virtual completion times.  Deterministic.
  kBlockStm,
  /// Block-STM on real threads hammering the scheduler and the
  /// multi-version memory concurrently (the `stm` TSan gate).  By
  /// Block-STM's determinism theorem the produced block is bit-identical
  /// to kBlockStm's; only the stats (aborts, makespan) vary with host
  /// scheduling.
  kBlockStmHost,
  /// Per-block engine selection between the two DES twins: propose with
  /// OCC-WSI (kVirtualTime) while the previous block's largest-subgraph
  /// ratio stays at or below ProposerConfig::adaptive_threshold, switch to
  /// Block-STM (kBlockStm) above it (core/engine_select.hpp).  The signal
  /// is a pure function of the chain content, so a seeded run picks the
  /// same engine at every height on every host.  ProposerStats::engine_used
  /// records the choice per block.
  kAdaptive,
};

constexpr bool is_block_stm(ScheduleMode mode) noexcept {
  return mode == ScheduleMode::kBlockStm || mode == ScheduleMode::kBlockStmHost;
}
constexpr bool is_host_threads(ScheduleMode mode) noexcept {
  return mode == ScheduleMode::kHostThreads ||
         mode == ScheduleMode::kBlockStmHost;
}

struct ProposerConfig {
  std::size_t threads = 4;
  ScheduleMode mode = ScheduleMode::kVirtualTime;
  std::uint64_t block_gas_limit = 30'000'000;
  /// Hard cap on included transactions (0 = unlimited): lets benchmarks
  /// propose fixed-size blocks.
  std::size_t max_txs = 0;
  /// Safety valve: a transaction that keeps coming back kNotReady is
  /// dropped after this many attempts.  Deferred transactions only re-enter
  /// the pool on commits (TxPool::progress), so retries are structurally
  /// bounded by committed-transaction count — a deep airdrop nonce chain
  /// can legitimately rack up hundreds of retries (one per unrelated
  /// commit), hence the generous default.  Only a transaction whose
  /// predecessor never arrives ultimately hits it.
  int max_not_ready_attempts = 100'000;
  vtime::CostModel costs;
  /// When set, header sealing (state root + receipts root) runs
  /// asynchronously on this pipeline: propose() returns a block whose
  /// state_root / receipts_root are zero until ProposedBlock::await_seal()
  /// fills them from the CommitHandle.  When null, sealing is inline
  /// (original behavior).
  commit::CommitPipeline* commit_pipeline = nullptr;
  /// CodeAnalysis cache the execution lanes resolve bytecode through
  /// (null = the process-wide evm::CodeAnalysisCache::global()).
  evm::CodeAnalysisCache* analysis_cache = nullptr;
  /// kAdaptive only: largest-subgraph ratio above which the next block is
  /// proposed with Block-STM instead of OCC-WSI (engine_select.hpp).
  double adaptive_threshold = kAdaptiveStmThreshold;
  /// kAdaptive only: where the engine keeps the previous block's
  /// largest-subgraph ratio.  Null = instance-local (drivers like
  /// NodeDriver that hold one engine across blocks).  Drivers that build a
  /// fresh engine per proposal (ConsensusSim) point this at per-node
  /// storage so the signal survives across blocks.
  double* adaptive_ratio_slot = nullptr;
};

struct ProposerStats {
  std::uint64_t committed = 0;
  std::uint64_t aborts = 0;        // discarded speculative executions
  std::uint64_t not_ready = 0;     // nonce-gap deferrals
  std::uint64_t dropped = 0;       // invalid / stuck transactions
  std::uint64_t serial_gas = 0;    // sum of committed gas (serial baseline)
  std::uint64_t vtime_makespan = 0;
  double wall_ms = 0.0;
  /// Engine that actually produced the block: the configured mode for the
  /// fixed engines, the per-block pick (kVirtualTime or kBlockStm) for
  /// kAdaptive.
  ScheduleMode engine_used = ScheduleMode::kVirtualTime;
  /// Largest-subgraph ratio of the produced block's dependency graph —
  /// the adaptive signal for the NEXT block (0 when not computed; only the
  /// adaptive engine derives it).
  double largest_subgraph_ratio = 0.0;

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct ProposedBlock {
  chain::Block block;
  chain::BlockProfile profile;
  std::vector<chain::Receipt> receipts;  // commit order (== block order)
  std::shared_ptr<state::WorldState> post_state;
  ProposerStats stats;

  /// Pending asynchronous seal (invalid handle when sealing was inline).
  commit::CommitHandle commit;

  /// Settles an asynchronous seal: blocks on the commit handle and fills
  /// header.state_root / header.receipts_root.  No-op when sealing was
  /// inline.  The block must not be broadcast before this returns.
  void await_seal();
};

/// One concurrency-control discipline's realization of block proposal.
/// The fixed engines are stateless between propose() calls: all proposal
/// state lives on the stack of one call, so a single engine may be reused
/// across blocks (and, for the virtual engines, across threads if calls
/// don't overlap).  The adaptive engine carries one double across calls —
/// the previous block's largest-subgraph ratio — either instance-local or
/// in the caller-provided adaptive_ratio_slot.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(ProposerConfig config) : config_(config) {}
  virtual ~ExecutionEngine() = default;

  /// Drains `pool` (up to the gas limit / tx cap) into a new block on top
  /// of `pre`.  `workers` is required (non-null, size >= config.threads) by
  /// the host-threads engines and ignored by the virtual-time ones.
  virtual ProposedBlock propose(const state::WorldState& pre,
                                const evm::BlockContext& block_ctx,
                                txpool::TxPool& pool,
                                ThreadPool* workers) = 0;

  const ProposerConfig& config() const noexcept { return config_; }

 protected:
  /// Fills the commitment-derived header fields (state root, receipts root)
  /// inline, or queues them on config_.commit_pipeline.  Requires
  /// result.post_state and result.receipts to be in place.
  void seal_commitment(ProposedBlock& result);

  ProposerConfig config_;
};

/// Maps config.mode to its engine.
std::unique_ptr<ExecutionEngine> make_execution_engine(
    const ProposerConfig& config);

namespace detail {
// Family factories (defined in the respective engine_*.cpp).
std::unique_ptr<ExecutionEngine> make_occ_wsi_engine(
    const ProposerConfig& config, bool host_threads);
std::unique_ptr<ExecutionEngine> make_blockstm_engine(
    const ProposerConfig& config, bool host_threads);
}  // namespace detail

}  // namespace blockpilot::core
