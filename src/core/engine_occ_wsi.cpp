// OCC-WSI execution engines (paper §4.2, Algorithm 1).
//
// Worker threads repeatedly:
//  1. pop the highest-gas-price transaction from the pending pool;
//  2. take a snapshot version (the currently committed version) of the
//     multi-version state and execute the transaction against it;
//  3. enter the serialized commit section (Algorithm 1's DetectConflit +
//     "Synchronize with all worker threads"):
//       - WSI validation: if any key in the transaction's read set has a
//         committed version newer than the snapshot, the execution observed
//         stale data -> abort, push the transaction back into the pool;
//       - otherwise commit: assign version = block position + 1, apply the
//         write set, append to the block, record the profile entry.
// Write-write conflicts do NOT abort: blind writes serialize by version
// order, which is the WSI relaxation the paper exploits.
//
// The host-threads engine splits the state commit (VersionedState
// enqueue/apply): only the commit DECISION — capacity gate, WSI validation,
// version assignment, pending-queue enqueue — holds the commit mutex; the
// heavy chain maintenance drains outside it, so transactions with disjoint
// write sets flush their stripes concurrently.  The virtual-time engine
// keeps the inline commit() (its event loop is single-threaded, and the
// deterministic expectation tables pin its exact dynamics).
#include <algorithm>
#include <queue>
#include <unordered_map>

#include "core/execution_engine.hpp"
#include "state/exec_buffer.hpp"
#include "state/versioned_state.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::core {
namespace {

/// Shared mutable proposal state; the commit mutex serializes everything
/// below it (Algorithm 1's synchronized DetectConflit section).
struct ProposalShared {
  std::mutex commit_mu;
  std::vector<chain::Transaction> included;
  chain::BlockProfile profile;
  std::vector<chain::Receipt> receipts;
  std::vector<U256> fees;            // per-included-tx coinbase fees
  std::uint64_t gas_used = 0;
  std::uint64_t commit_events = 0;   // commit-section entries (incl. aborts)
  std::atomic<bool> full{false};     // gas limit / tx cap reached
  std::unordered_map<Hash256, int> not_ready_attempts;
};

class OccWsiHostEngine final : public ExecutionEngine {
 public:
  using ExecutionEngine::ExecutionEngine;

  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool* workers) override;
};

class OccWsiVirtualEngine final : public ExecutionEngine {
 public:
  using ExecutionEngine::ExecutionEngine;

  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool* workers) override;
};

ProposedBlock OccWsiHostEngine::propose(const state::WorldState& pre,
                                        const evm::BlockContext& block_ctx,
                                        txpool::TxPool& pool,
                                        ThreadPool* workers) {
  BP_ASSERT(config_.threads >= 1);
  BP_ASSERT(workers != nullptr);
  BP_ASSERT(workers->size() >= config_.threads);

  evm::BlockContext exec_ctx = block_ctx;
  if (config_.analysis_cache) exec_ctx.analysis_cache = config_.analysis_cache;

  state::VersionedState versioned(pre);
  ProposalShared shared;
  vtime::WorkLedger ledger(config_.threads);
  ProposerStats stats{};
  std::mutex stats_mu;
  Stopwatch wall;

  auto worker_loop = [&](std::size_t lane) {
    std::uint64_t local_aborts = 0;
    std::uint64_t local_not_ready = 0;
    std::uint64_t local_dropped = 0;
    // Lane-private execution scratch, recycled across transactions and
    // across re-executions of aborted ones: the buffer keeps its table
    // allocations, and the read cache keeps memoized snapshot values that
    // the version stamps prove still current (so a retry re-reads only the
    // keys that actually changed).
    state::ReadCache read_cache;
    state::ExecBuffer buffer;

    while (!shared.full.load(std::memory_order_acquire)) {
      auto popped = pool.pop();
      if (!popped.has_value()) break;
      chain::Transaction tx = std::move(*popped);

      // Execute against a snapshot of the currently committed state
      // (Algorithm 1 lines 8-9).
      const std::uint64_t snapshot_version = versioned.committed_version();
      const state::SnapshotView snapshot(versioned, snapshot_version,
                                         &read_cache);
      buffer.rebase(snapshot);
      const evm::TxExecResult r =
          evm::execute_transaction(buffer, exec_ctx, tx);

      if (r.status == evm::TxStatus::kInvalid) {
        ++local_dropped;
        pool.dropped(tx.from, tx.nonce);
        continue;
      }
      if (r.status == evm::TxStatus::kNotReady) {
        ++local_not_ready;
        // The snapshot's sender nonce is behind: an earlier same-sender
        // transaction is pending.  Defer until a commit advances the pool,
        // dropping permanently if no predecessor ever shows up.
        bool drop = false;
        {
          std::scoped_lock lk(shared.commit_mu);
          drop = ++shared.not_ready_attempts[tx.hash()] >
                 config_.max_not_ready_attempts;
        }
        if (drop) {
          ++local_dropped;
          pool.dropped(tx.from, tx.nonce);
        } else {
          pool.defer(std::move(tx));
        }
        continue;
      }

      // The execution itself is the dominant virtual cost; aborted attempts
      // are charged too (wasted work is real work).
      ledger.add(lane, r.gas_used);

      // ---- serialized commit section (DetectConflit) ----
      // Only the decision is serialized: validation, version assignment,
      // and the pending-queue enqueue.  The chain maintenance (apply)
      // drains outside the lock, overlapping disjoint committers.
      const Address committed_sender = tx.from;
      const std::uint64_t committed_nonce = tx.nonce;
      std::vector<std::pair<state::StateKey, U256>> writes;
      std::uint64_t version = 0;
      bool committed = false;
      {
        std::scoped_lock lk(shared.commit_mu);
        ledger.add(lane, config_.costs.commit_cost);
        ++shared.commit_events;

        if (shared.full.load(std::memory_order_relaxed)) {
          pool.push_back(std::move(tx));
          break;
        }
        if (shared.gas_used + r.gas_used > config_.block_gas_limit ||
            (config_.max_txs != 0 &&
             shared.included.size() >= config_.max_txs)) {
          shared.full.store(true, std::memory_order_release);
          pool.push_back(std::move(tx));
          break;
        }

        // WSI validation: abort iff a read key was overwritten after the
        // snapshot (Algorithm 1 lines 13-16).  Write-write overlap commits.
        // newer_than is exact here: commit DECISIONS are serialized by
        // commit_mu and enqueue_commit makes them observable (stamps +
        // pending queues) before the lock is released, so no conflicting
        // version can hide in another worker's unfinished apply.
        bool stale = false;
        for (const auto& [key, observed] : buffer.read_set()) {
          if (versioned.newer_than(key, snapshot_version)) {
            stale = true;
            break;
          }
        }
        if (stale) {
          ++local_aborts;
          pool.push_back(std::move(tx));
          continue;
        }

        // Commit decision: version = block position + 1 (lines 17-22).
        version = shared.included.size() + 1;
        chain::TxProfile profile;
        profile.reads = buffer.sorted_read_keys();
        profile.writes = buffer.write_set();
        profile.gas_used = r.gas_used;
        writes = profile.writes;

        versioned.enqueue_commit(writes, version);
        shared.included.push_back(std::move(tx));
        shared.profile.txs.push_back(std::move(profile));
        shared.fees.push_back(r.fee());
        shared.gas_used += r.gas_used;

        chain::Receipt receipt;
        receipt.success = (r.vm_status == evm::Status::kSuccess);
        receipt.gas_used = r.gas_used;
        receipt.cumulative_gas = shared.gas_used;
        receipt.logs = r.logs;
        shared.receipts.push_back(std::move(receipt));
        committed = true;
      }
      BP_ASSERT(committed);
      versioned.apply_commit(writes, version);
      // Acknowledge the commit: advances the sender's base nonce and
      // releases deferred same-sender successors (supersedes progress()).
      pool.committed(committed_sender, committed_nonce);
    }

    std::scoped_lock lk(stats_mu);
    stats.aborts += local_aborts;
    stats.not_ready += local_not_ready;
    stats.dropped += local_dropped;
  };

  if (config_.threads == 1) {
    worker_loop(0);  // degenerate case: run inline (benchmark baseline)
  } else {
    for (std::size_t t = 0; t < config_.threads; ++t)
      workers->submit([&worker_loop, t] { worker_loop(t); });
    workers->wait_idle();
  }

  // ---- finalize: materialize the post state and assemble the block ----
  ProposedBlock result;
  auto post = std::make_shared<state::WorldState>(pre);
  versioned.flatten_into(*post);
  for (std::size_t i = 0; i < shared.included.size(); ++i) {
    const auto cb_key = state::StateKey::balance(block_ctx.coinbase);
    post->set(cb_key, post->get(cb_key) + shared.fees[i]);
  }

  result.block.header.number = block_ctx.number;
  result.block.header.coinbase = block_ctx.coinbase;
  result.block.header.timestamp = block_ctx.timestamp;
  result.block.header.gas_limit = config_.block_gas_limit;
  result.block.header.gas_used = shared.gas_used;
  result.block.header.tx_root = chain::transactions_root(shared.included);
  result.block.header.logs_bloom = chain::block_bloom(shared.receipts);
  result.block.transactions = std::move(shared.included);
  result.profile = std::move(shared.profile);
  result.receipts = std::move(shared.receipts);
  result.post_state = std::move(post);
  seal_commitment(result);

  stats.committed = result.block.transactions.size();
  stats.serial_gas = shared.gas_used;
  // The commit section is a serial resource: even with perfect worker
  // balance the makespan cannot beat the chained commit validations.
  stats.vtime_makespan = std::max(
      ledger.makespan(), shared.commit_events * config_.costs.commit_cost);
  stats.wall_ms = wall.elapsed_ms();
  stats.engine_used = config_.mode;
  result.stats = stats;
  return result;
}

ProposedBlock OccWsiVirtualEngine::propose(const state::WorldState& pre,
                                           const evm::BlockContext& block_ctx,
                                           txpool::TxPool& pool,
                                           ThreadPool* /*workers*/) {
  BP_ASSERT(config_.threads >= 1);
  const std::size_t W = config_.threads;
  Stopwatch wall;

  evm::BlockContext exec_ctx = block_ctx;
  if (config_.analysis_cache) exec_ctx.analysis_cache = config_.analysis_cache;

  state::VersionedState versioned(pre);
  ProposerStats stats{};
  std::vector<chain::Transaction> included;
  chain::BlockProfile block_profile;
  std::vector<chain::Receipt> receipts;
  std::vector<U256> fees;
  std::uint64_t gas_used = 0;
  std::unordered_map<Hash256, int> not_ready_attempts;

  // One in-flight execution per virtual worker.
  struct InFlight {
    chain::Transaction tx;
    evm::TxExecResult result;
    std::vector<state::StateKey> reads;  // sorted
    std::vector<std::pair<state::StateKey, U256>> writes;
    std::uint64_t snapshot_version = 0;
    bool busy = false;
  };
  std::vector<InFlight> in_flight(W);
  std::vector<std::uint64_t> clock(W, 0);  // virtual time per worker
  std::uint64_t final_makespan = 0;
  std::uint64_t commit_events = 0;
  bool block_full = false;

  // Completion-time event queue: (completion_time, worker).  Min-heap via
  // greater<> so the earliest completion pops first; worker index breaks
  // ties deterministically.
  using Event = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  // Execution scratch shared by all virtual workers (the event loop runs on
  // one real thread): the buffer's tables and the read cache are recycled
  // across every execution, including re-runs of aborted transactions.
  state::ReadCache read_cache;
  state::ExecBuffer buffer;

  // Starts the next transaction on worker w at virtual time `now`.
  // Executes immediately (real EVM run) against the snapshot committed as
  // of `now`; the completion event carries the result forward.
  auto try_start = [&](std::size_t w, std::uint64_t now) {
    while (!block_full) {
      auto popped = pool.pop();
      if (!popped.has_value()) return;  // worker idles (clock stays at now)
      InFlight& slot = in_flight[w];
      slot.tx = std::move(*popped);

      const std::uint64_t snapshot = versioned.committed_version();
      const state::SnapshotView view(versioned, snapshot, &read_cache);
      buffer.rebase(view);
      const evm::TxExecResult r =
          evm::execute_transaction(buffer, exec_ctx, slot.tx);

      if (r.status == evm::TxStatus::kInvalid) {
        ++stats.dropped;
        pool.dropped(slot.tx.from, slot.tx.nonce);
        continue;  // pop the next candidate at the same virtual time
      }
      if (r.status == evm::TxStatus::kNotReady) {
        ++stats.not_ready;
        if (++not_ready_attempts[slot.tx.hash()] >
            config_.max_not_ready_attempts) {
          ++stats.dropped;
          pool.dropped(slot.tx.from, slot.tx.nonce);
        } else {
          pool.defer(std::move(slot.tx));
        }
        continue;
      }

      slot.result = r;
      buffer.sorted_read_keys_into(slot.reads);   // reuses slot capacity
      buffer.write_set_into(slot.writes);
      slot.snapshot_version = snapshot;
      slot.busy = true;
      clock[w] = now;
      events.emplace(now + r.gas_used + config_.costs.commit_cost, w);
      return;
    }
  };

  for (std::size_t w = 0; w < W; ++w) try_start(w, 0);

  while (!events.empty()) {
    const auto [now, w] = events.top();
    events.pop();
    InFlight& slot = in_flight[w];
    BP_ASSERT(slot.busy);
    slot.busy = false;
    clock[w] = now;
    ++commit_events;

    // Block-capacity gate (Algorithm 1's GasLimit loop condition).
    if (gas_used + slot.result.gas_used > config_.block_gas_limit ||
        (config_.max_txs != 0 && included.size() >= config_.max_txs)) {
      block_full = true;
      pool.push_back(std::move(slot.tx));
      continue;  // let remaining in-flight events drain
    }

    // WSI validation: stale iff any read key gained a version committed
    // after this transaction's snapshot (== during its execution window).
    bool stale = false;
    for (const auto& key : slot.reads) {
      if (versioned.newer_than(key, slot.snapshot_version)) {
        stale = true;
        break;
      }
    }
    if (stale) {
      ++stats.aborts;
      pool.push_back(std::move(slot.tx));
      try_start(w, now);  // re-pop immediately; wasted work stays on clock
      continue;
    }

    // Commit at virtual time `now`.
    const std::uint64_t version = included.size() + 1;
    versioned.commit(slot.writes, version);
    chain::TxProfile profile;
    profile.reads = std::move(slot.reads);
    profile.writes = std::move(slot.writes);
    profile.gas_used = slot.result.gas_used;
    block_profile.txs.push_back(std::move(profile));
    const Address committed_sender = slot.tx.from;
    const std::uint64_t committed_nonce = slot.tx.nonce;
    included.push_back(std::move(slot.tx));
    fees.push_back(slot.result.fee());
    gas_used += slot.result.gas_used;

    chain::Receipt receipt;
    receipt.success = (slot.result.vm_status == evm::Status::kSuccess);
    receipt.gas_used = slot.result.gas_used;
    receipt.cumulative_gas = gas_used;
    receipt.logs = std::move(slot.result.logs);
    receipts.push_back(std::move(receipt));

    final_makespan = std::max(final_makespan, now);
    // Acknowledge the commit: advances the sender's base nonce and
    // releases deferred same-sender successors (supersedes progress()).
    pool.committed(committed_sender, committed_nonce);

    // Idle workers may now find work (deferred txs became poppable).
    try_start(w, now);
    for (std::size_t other = 0; other < W; ++other) {
      if (!in_flight[other].busy) try_start(other, std::max(clock[other], now));
    }
  }

  // ---- finalize ----
  ProposedBlock result;
  auto post = std::make_shared<state::WorldState>(pre);
  versioned.flatten_into(*post);
  const auto cb_key = state::StateKey::balance(block_ctx.coinbase);
  U256 total_fees;
  for (const U256& fee : fees) total_fees += fee;
  if (!total_fees.is_zero()) post->set(cb_key, post->get(cb_key) + total_fees);

  result.block.header.number = block_ctx.number;
  result.block.header.coinbase = block_ctx.coinbase;
  result.block.header.timestamp = block_ctx.timestamp;
  result.block.header.gas_limit = config_.block_gas_limit;
  result.block.header.gas_used = gas_used;
  result.block.header.tx_root = chain::transactions_root(included);
  result.block.header.logs_bloom = chain::block_bloom(receipts);
  result.block.transactions = std::move(included);
  result.profile = std::move(block_profile);
  result.receipts = std::move(receipts);
  result.post_state = std::move(post);
  seal_commitment(result);

  stats.committed = result.block.transactions.size();
  stats.serial_gas = gas_used;
  stats.vtime_makespan =
      std::max(final_makespan, commit_events * config_.costs.commit_cost);
  stats.wall_ms = wall.elapsed_ms();
  stats.engine_used = config_.mode;
  result.stats = stats;
  return result;
}

}  // namespace

namespace detail {

std::unique_ptr<ExecutionEngine> make_occ_wsi_engine(
    const ProposerConfig& config, bool host_threads) {
  if (host_threads) return std::make_unique<OccWsiHostEngine>(config);
  return std::make_unique<OccWsiVirtualEngine>(config);
}

}  // namespace detail
}  // namespace blockpilot::core
