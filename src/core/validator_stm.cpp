// Block-STM validator replay (docs/blockstm.md §8): preset-order
// multi-version re-execution of a received block, gated bit-identical to
// the subgraph-LPT oracle (validator.cpp) by the engine-differential
// matrix in tests/test_engine_matrix.cpp.
//
// The block fixes the preset order, so the validator's job is exactly the
// Block-STM proposer's inner loop minus candidate selection — with one
// advantage the proposer never has: the BlockProfile broadcast with the
// block already names every transaction's write set.  Pre-seeding those
// footprints as ESTIMATE markers (MvMemory::seed_estimates, the DiPETrans
// idea of shipping the leader's conflict analysis to followers) turns the
// first incarnations' discovery phase into scheduled suspension: a reader
// of a seeded key parks on its true dependency instead of speculating,
// aborting, and re-executing.  With an honest profile the replay converges
// with ZERO aborts and ZERO validation waves — every transaction executes
// once, suspensions tracking exactly the block's real dependency edges.
//
// Seeds are strictly a scheduling hint.  They register as incarnation 0's
// write set, so the first real record() replaces them the way any
// re-incarnation would: actually-written keys flip to real entries, stale
// seeded keys are erased via the write-set-shrink path, and an unseeded
// actual write triggers the ordinary validation wave.  A stale profile
// therefore degrades to extra suspensions/waves (ValidatorStats::stm_*) —
// never to a wrong result, which is what the seeding tests gate.
//
// Both validators accept exactly the blocks whose serial preset-order
// execution matches the profile (per-tx gas + read/write sets, §4.4) and
// the header; Block-STM's determinism theorem makes the converged replay
// equal that serial execution, so verdict, state root, gas and receipts
// are bit-identical to the oracle by construction.  The profile checks and
// header checks below reuse the oracle's strings and ordering verbatim.
//
// Like the proposer engine, the replay ships as two twins sharing this
// file's preparation and applier phases: kBlockStm is a discrete-event
// simulation of `threads` virtual workers (bit-reproducible virtual
// makespan, independent of host core count), kBlockStmHost races real pool
// threads through the same scheduler (the sanitizer target).
#include <algorithm>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/serial_executor.hpp"
#include "core/validator.hpp"
#include "sched/blockstm_scheduler.hpp"
#include "state/exec_buffer.hpp"
#include "state/versioned_state.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::core {
namespace {

using sched::BlockStmScheduler;
using Task = BlockStmScheduler::Task;
using state::StateKey;

/// Latest executed incarnation of one transaction (same discipline as the
/// proposer engine: the mutex covers a validation of incarnation i racing
/// the store of incarnation i+1; the incarnation field lets a stale
/// validation detect itself).
struct alignas(64) TxSlot {
  std::mutex mu;
  std::uint32_t incarnation = 0;
  evm::TxExecResult result;
  std::vector<state::MvView::LogEntry> reads;
  std::vector<std::pair<StateKey, U256>> writes;
};

/// Re-reads an incarnation's read set against the multi-version memory.
/// True = every read still observes the same version.
bool validate_reads(const state::MvMemory& mv, TxSlot& slot,
                    std::uint32_t txn, std::uint32_t incarnation) {
  std::vector<state::MvView::LogEntry> reads;
  {
    std::scoped_lock lk(slot.mu);
    if (slot.incarnation != incarnation)
      return true;  // stale task: the abort attempt would fail anyway
    reads = slot.reads;
  }
  for (const auto& e : reads) {
    const state::MvMemory::ReadResult r = mv.read(e.key, txn);
    if (e.version.txn == state::MvMemory::Version::kBase) {
      if (r.kind != state::MvMemory::ReadKind::kBase) return false;
    } else if (r.kind != state::MvMemory::ReadKind::kOk ||
               !(r.version == e.version)) {
      return false;  // changed writer/incarnation, or now an ESTIMATE
    }
  }
  return true;
}

}  // namespace

namespace detail {

ValidationOutcome validate_block_stm(const ValidatorConfig& config,
                                     const state::WorldState& pre,
                                     const chain::Block& block,
                                     const chain::BlockProfile& profile,
                                     ThreadPool& workers, bool host_threads) {
  BP_ASSERT(config.threads >= 1);
  ValidationOutcome outcome;
  Stopwatch wall;

  const std::size_t n = block.transactions.size();
  if (profile.txs.size() != n) {
    outcome.reject_reason = "profile size mismatch";
    return outcome;
  }

  // ---- Preparation phase ----
  // The dependency-graph stats stay profile-derived so the adaptive signal
  // and the figure surfaces are engine-independent.
  const sched::DependencyGraph graph =
      sched::build_dependency_graph(profile, config.granularity);
  outcome.stats.subgraphs = graph.subgraphs.size();
  outcome.stats.largest_subgraph_ratio = graph.largest_subgraph_ratio();
  outcome.stats.critical_path_gas = graph.critical_path_gas();

  evm::BlockContext block_ctx;
  block_ctx.number = block.header.number;
  block_ctx.timestamp = block.header.timestamp;
  block_ctx.coinbase = block.header.coinbase;
  block_ctx.gas_limit = block.header.gas_limit;
  block_ctx.analysis_cache = config.analysis_cache;

  state::MvMemory mv(pre, n);
  BlockStmScheduler scheduler(n);
  auto slots = std::make_unique<TxSlot[]>(n);
  vtime::WorkLedger ledger(config.threads);

  // ESTIMATE pre-seeding from the broadcast write sets (file comment).
  // The override (tests) may be stale or mis-sized; clamp to the block.
  const chain::BlockProfile& seeds = config.stm_seed_override != nullptr
                                         ? *config.stm_seed_override
                                         : profile;
  const std::size_t seedable = std::min<std::size_t>(seeds.txs.size(), n);
  for (std::size_t i = 0; i < seedable; ++i)
    mv.seed_estimates(static_cast<std::uint32_t>(i), seeds.txs[i].writes);

  // ---- Tx Execution phase: the Block-STM loop over the preset order ----
  // Two twins, mirroring the proposer engine (engine_blockstm.cpp): the
  // host twin races real pool threads through the collaborative scheduler
  // (kBlockStmHost, the thread-safety mode); the DES twin simulates
  // `threads` virtual workers on the calling thread, so the virtual
  // makespan is bit-reproducible and meaningful even where the host has
  // fewer cores than lanes.
  std::uint64_t exec_makespan = 0;

  // Publishes one finished execution attempt into its slot + the
  // multi-version memory and closes the task.  Returns the scheduler's
  // follow-up task, if any.  A transaction that cannot execute in its slot
  // records an EMPTY write set: the replay still converges (to a state the
  // profile check then rejects) instead of wedging the scheduler.
  auto publish_execution =
      [&](const Task& t, evm::TxExecResult&& r,
          std::vector<state::MvView::LogEntry> reads,
          const std::vector<std::pair<StateKey, U256>>& writes) -> Task {
    TxSlot& slot = slots[t.txn];
    {
      std::scoped_lock lk(slot.mu);
      slot.incarnation = t.incarnation;
      slot.result = std::move(r);
      slot.reads = std::move(reads);
      slot.writes = writes;
    }
    const bool wrote_new = mv.record(t.txn, t.incarnation, writes);
    return scheduler.finish_execution(t.txn, t.incarnation, wrote_new);
  };
  // Applies a validation verdict and closes the task; returns the aborted
  // transaction's re-execution, if any.
  auto apply_validation = [&](const Task& t, bool ok) -> Task {
    bool aborted = false;
    if (!ok && scheduler.try_validation_abort(t.txn, t.incarnation)) {
      mv.convert_to_estimates(t.txn);
      aborted = true;
    }
    return scheduler.finish_validation(t.txn, t.incarnation, aborted);
  };

  auto worker_fn = [&](std::size_t lane) {
    state::MvView view(mv);
    state::ExecBuffer buffer;
    // I/O model (§5.4), mirroring the oracle: without prefetching each
    // first-touch read on this lane charges io_read_cost.
    std::unordered_set<StateKey> lane_cache;
    while (!scheduler.done()) {
      Task t = scheduler.next_task();
      if (!t) {
        std::this_thread::yield();
        continue;
      }
      while (t) {
        if (t.kind == Task::Kind::kExecute) {
          view.begin(t.txn);
          buffer.rebase(view);
          evm::TxExecResult r = evm::execute_transaction(
              buffer, block_ctx, block.transactions[t.txn]);
          ledger.add(lane, r.gas_used);
          if (view.blocked()) {
            // Hit an ESTIMATE: park on the true dependency, discard the
            // attempt.  A failed park means the blocker resolved during
            // execution — re-run the same incarnation immediately.
            if (scheduler.add_dependency(t.txn, view.blocking_txn()))
              t = Task{};
            continue;
          }
          if (!config.prefetch) {
            std::size_t cold_reads = 0;
            for (const auto& e : view.read_log())
              if (lane_cache.insert(e.key).second) ++cold_reads;
            ledger.add(lane, cold_reads * config.costs.io_read_cost);
          }
          std::vector<std::pair<StateKey, U256>> writes;
          if (r.status == evm::TxStatus::kIncluded)
            buffer.write_set_into(writes);
          t = publish_execution(t, std::move(r), view.read_log(), writes);
        } else {
          const bool ok =
              validate_reads(mv, slots[t.txn], t.txn, t.incarnation);
          ledger.add(lane, config.costs.commit_cost);
          t = apply_validation(t, ok);
        }
      }
    }
  };

  // DES twin: one real thread drives `threads` virtual workers.  A task's
  // outcome is computed at dispatch time against the current multi-version
  // memory, but its effects apply only at the virtual completion time —
  // the execution window during which concurrent dispatches cannot see it,
  // exactly like the proposer's kBlockStm mode.
  auto run_virtual = [&] {
    const std::size_t W = config.threads;
    struct VWorker {
      bool busy = false;
      Task task;
      bool blocked = false;       // task.kind == kExecute
      std::uint32_t blocking = 0;
      evm::TxExecResult result;
      std::vector<state::MvView::LogEntry> reads;
      std::vector<std::pair<StateKey, U256>> writes;
      std::uint64_t cost = 0;
      bool verdict_ok = true;     // task.kind == kValidate
      std::unordered_set<StateKey> lane_cache;  // §5.4 I/O model per lane
    };
    std::vector<VWorker> vworkers(W);
    std::vector<std::uint64_t> clock(W, 0);
    std::uint64_t final_time = 0;

    // Completion events: (time, worker), earliest first, worker index
    // breaking ties deterministically.
    using Event = std::pair<std::uint64_t, std::size_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    state::MvView view(mv);
    state::ExecBuffer buffer;

    auto dispatch = [&](std::size_t w, const Task& t, std::uint64_t now) {
      VWorker& vw = vworkers[w];
      vw.busy = true;
      vw.task = t;
      clock[w] = now;
      if (t.kind == Task::Kind::kExecute) {
        view.begin(t.txn);
        buffer.rebase(view);
        evm::TxExecResult r = evm::execute_transaction(
            buffer, block_ctx, block.transactions[t.txn]);
        vw.blocked = view.blocked();
        vw.blocking = view.blocking_txn();
        vw.cost = r.gas_used;
        vw.reads.clear();
        vw.writes.clear();
        if (!vw.blocked) {
          vw.result = std::move(r);
          vw.reads = view.read_log();
          if (vw.result.status == evm::TxStatus::kIncluded)
            buffer.write_set_into(vw.writes);
          if (!config.prefetch) {
            std::size_t cold_reads = 0;
            for (const auto& e : vw.reads)
              if (vw.lane_cache.insert(e.key).second) ++cold_reads;
            vw.cost += cold_reads * config.costs.io_read_cost;
          }
        }
        events.emplace(now + vw.cost, w);
      } else {
        vw.verdict_ok = validate_reads(mv, slots[t.txn], t.txn, t.incarnation);
        events.emplace(now + config.costs.commit_cost, w);
      }
    };
    auto try_dispatch = [&](std::size_t w, std::uint64_t now) {
      if (vworkers[w].busy) return;
      // Real workers spin on next_task, so a wasted cursor claim (the
      // target was mid-flight) costs them nothing; retry in zero virtual
      // time until a task arrives or the cursors genuinely exhaust.
      do {
        const Task t = scheduler.next_task();
        if (t) {
          dispatch(w, t, now);
          return;
        }
      } while (scheduler.claimable());
    };

    for (std::size_t w = 0; w < W; ++w) try_dispatch(w, 0);

    while (!events.empty()) {
      const auto [now, w] = events.top();
      events.pop();
      VWorker& vw = vworkers[w];
      BP_ASSERT(vw.busy);
      vw.busy = false;
      clock[w] = now;
      final_time = std::max(final_time, now);

      if (vw.task.kind == Task::Kind::kExecute && vw.blocked) {
        if (!scheduler.add_dependency(vw.task.txn, vw.blocking)) {
          // The blocker resolved during the window: retry immediately with
          // the same incarnation (still this worker's task).
          dispatch(w, vw.task, now);
          continue;
        }
        // Parked; the resume path re-issues the execution.
      } else {
        Task follow =
            vw.task.kind == Task::Kind::kExecute
                ? publish_execution(vw.task, std::move(vw.result),
                                    std::move(vw.reads), vw.writes)
                : apply_validation(vw.task, vw.verdict_ok);
        if (follow) dispatch(w, follow, now);
      }
      for (std::size_t other = 0; other < W; ++other)
        try_dispatch(other, std::max(clock[other], now));
    }
    exec_makespan = final_time;
  };

  if (n > 0) {
    if (!host_threads) {
      run_virtual();
    } else if (config.threads == 1) {
      worker_fn(0);  // deterministic single-worker replay
    } else {
      for (std::size_t t = 0; t < config.threads; ++t)
        workers.submit([&worker_fn, t] { worker_fn(t); });
      workers.wait_idle();
    }
    if (host_threads) exec_makespan = ledger.makespan();
    BP_ASSERT(scheduler.done());
  }

  outcome.stats.stm_aborts = scheduler.aborts();
  outcome.stats.stm_suspensions = scheduler.suspensions();
  outcome.stats.stm_validation_waves = scheduler.validation_waves();

  // ---- Block Validation phase (preset order, on the calling thread) ----
  // The replay has quiesced: slots are stable, no locks needed.  Checks and
  // reject strings mirror the oracle's applier exactly.
  auto post = std::make_shared<state::WorldState>(pre);
  std::uint64_t applier_chain = 0;
  std::uint64_t gas_used = 0;
  std::vector<StateKey> observed_reads;
  for (std::size_t i = 0; i < n; ++i) {
    TxSlot& slot = slots[i];
    if (slot.result.status != evm::TxStatus::kIncluded) {
      outcome.reject_reason = "transaction " + std::to_string(i) +
                              " failed to execute in scheduled replay";
      outcome.stats.wall_ms = wall.elapsed_ms();
      return outcome;
    }
    applier_chain += config.costs.apply_cost;

    const chain::TxProfile& expected = profile.txs[i];
    if (slot.result.gas_used != expected.gas_used) {
      outcome.reject_reason = "gas mismatch at tx " + std::to_string(i);
      outcome.stats.wall_ms = wall.elapsed_ms();
      return outcome;
    }
    observed_reads.clear();
    observed_reads.reserve(slot.reads.size());
    for (const auto& e : slot.reads) observed_reads.push_back(e.key);
    std::sort(observed_reads.begin(), observed_reads.end(),
              state::state_key_less);  // log keys are already unique
    if (observed_reads != expected.reads) {
      outcome.reject_reason = "read-set mismatch at tx " + std::to_string(i);
      outcome.stats.wall_ms = wall.elapsed_ms();
      return outcome;
    }
    bool writes_match = slot.writes.size() == expected.writes.size();
    for (std::size_t w = 0; writes_match && w < slot.writes.size(); ++w) {
      writes_match = slot.writes[w].first == expected.writes[w].first &&
                     slot.writes[w].second == expected.writes[w].second;
    }
    if (!writes_match) {
      outcome.reject_reason = "write-set mismatch at tx " + std::to_string(i);
      outcome.stats.wall_ms = wall.elapsed_ms();
      return outcome;
    }

    apply_tx_writes(*post, slot.writes, block_ctx.coinbase,
                    slot.result.fee());
    gas_used += slot.result.gas_used;

    chain::Receipt receipt;
    receipt.success = (slot.result.vm_status == evm::Status::kSuccess);
    receipt.gas_used = slot.result.gas_used;
    receipt.cumulative_gas = gas_used;
    receipt.logs = std::move(slot.result.logs);
    outcome.exec.receipts.push_back(std::move(receipt));
  }

  if (gas_used != block.header.gas_used) {
    outcome.reject_reason = "header gas_used mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }
  if (chain::receipts_root(outcome.exec.receipts) !=
      block.header.receipts_root) {
    outcome.reject_reason = "receipts root mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }
  if (!(chain::block_bloom(outcome.exec.receipts) ==
        block.header.logs_bloom)) {
    outcome.reject_reason = "logs bloom mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }

  outcome.expected_state_root = block.header.state_root;
  if (config.seed_directory != nullptr)
    post->adopt_block_seeds(
        config.seed_directory->for_block(block.header.hash()));
  if (config.commit_pipeline != nullptr) {
    // ---- Block Commitment, asynchronous (see oracle) ----
    outcome.commit = config.commit_pipeline->submit(post);
  } else {
    const Hash256 root = post->state_root();
    if (root != block.header.state_root) {
      outcome.reject_reason = "state root mismatch";
      outcome.stats.wall_ms = wall.elapsed_ms();
      return outcome;
    }
    outcome.exec.state_root = root;
  }

  outcome.valid = true;
  outcome.exec.profile = profile;
  outcome.exec.gas_used = gas_used;
  outcome.exec.post_state = std::move(post);
  outcome.stats.serial_gas = gas_used;
  outcome.stats.vtime_makespan = std::max(exec_makespan, applier_chain);
  outcome.stats.wall_ms = wall.elapsed_ms();
  return outcome;
}

}  // namespace detail
}  // namespace blockpilot::core
