// Shared result types for block execution engines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "chain/profile.hpp"
#include "chain/receipt.hpp"
#include "evm/interpreter.hpp"
#include "state/world_state.hpp"

namespace blockpilot::core {

/// Outcome of executing a block's worth of transactions.
struct BlockExecution {
  std::vector<chain::Receipt> receipts;      // one per included transaction
  chain::BlockProfile profile;               // per-tx read/write sets + gas
  std::shared_ptr<state::WorldState> post_state;
  Hash256 state_root;
  std::uint64_t gas_used = 0;  // sum over included transactions
};

/// Applies one transaction's effects to a world state: its write set plus
/// the serial coinbase fee credit (DESIGN.md §4 — fees are credited outside
/// the tracked write sets so the coinbase is not a universal conflict key).
void apply_tx_writes(state::WorldState& ws,
                     const std::vector<std::pair<state::StateKey, U256>>& writes,
                     const Address& coinbase, const U256& fee);

/// Assembles a fully-committed block header from an execution: state root,
/// transactions root, receipts root, logs bloom and gas accounting all
/// derived from `exec` / `txs`.  What every honest proposer (serial or
/// OCC-WSI) must broadcast for validators to accept.
chain::Block seal_block(const evm::BlockContext& ctx, const BlockExecution& exec,
                        std::vector<chain::Transaction> txs);

}  // namespace blockpilot::core
