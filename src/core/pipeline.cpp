#include "core/pipeline.hpp"

#include <algorithm>
#include <thread>

#include "sched/depgraph.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::core {

std::uint64_t simulate_shared_workers(std::vector<PipelineJob> jobs,
                                      std::size_t workers,
                                      std::uint64_t switch_cost) {
  BP_ASSERT(workers > 0);
  // LPT order maximizes balance, mirroring the per-block scheduler.
  std::sort(jobs.begin(), jobs.end(),
            [](const PipelineJob& a, const PipelineJob& b) {
              if (a.cost != b.cost) return a.cost > b.cost;
              return a.block_index < b.block_index;
            });
  std::vector<std::uint64_t> load(workers, 0);
  // SIZE_MAX = "no job yet": the first job on a worker pays no switch.
  std::vector<std::size_t> last_block(workers, SIZE_MAX);
  for (const PipelineJob& job : jobs) {
    std::size_t best = 0;
    for (std::size_t w = 1; w < workers; ++w)
      if (load[w] < load[best]) best = w;
    if (last_block[best] != SIZE_MAX && last_block[best] != job.block_index)
      load[best] += switch_cost;
    load[best] += job.cost;
    last_block[best] = job.block_index;
  }
  std::uint64_t makespan = 0;
  for (const std::uint64_t l : load) makespan = std::max(makespan, l);
  return makespan;
}

PipelineResult ValidatorPipeline::process_one_height(
    const state::WorldState& pre, std::span<const BlockBundle> siblings,
    ThreadPool& workers) {
  PipelineResult result;
  result.outcomes.resize(siblings.size());
  Stopwatch wall;

  // ---- real concurrent validation (correctness path) ----
  // Per-block driver threads run preparation + applier; transaction lanes
  // execute inside each driver via BlockValidator.  Sibling blocks touch
  // only their own copies of state, so drivers are independent.
  ValidatorConfig vc;
  vc.threads = config_.workers;
  vc.granularity = config_.granularity;
  vc.costs = config_.costs;
  vc.engine = config_.engine;
  vc.adaptive_threshold = config_.adaptive_threshold;
  vc.commit_pipeline = config_.commit_pipeline;
  vc.seed_directory = config_.seed_directory;
  vc.analysis_cache = config_.analysis_cache;

  if (config_.concurrent_blocks && siblings.size() > 1) {
    // Each driver gets its own single-block worker allotment through the
    // shared pool; drivers themselves are dedicated jthreads because the
    // applier blocks (a blocked pool worker would starve execution).
    std::vector<std::jthread> drivers;
    drivers.reserve(siblings.size());
    // Dedicated single-thread validators avoid nested wait_idle() on the
    // shared pool (its idle signal is pool-global, not per-block).  Real
    // threads still contend for the host CPU exactly like shared workers.
    for (std::size_t b = 0; b < siblings.size(); ++b) {
      drivers.emplace_back([&, b] {
        ValidatorConfig solo = vc;
        solo.threads = 1;  // lanes fold into the driver thread
        BlockValidator validator(solo);
        result.outcomes[b] = validator.validate(pre, siblings[b].block,
                                                siblings[b].profile, workers);
      });
    }
    drivers.clear();  // join
  } else {
    BlockValidator validator(vc);
    for (std::size_t b = 0; b < siblings.size(); ++b) {
      result.outcomes[b] = validator.validate(pre, siblings[b].block,
                                              siblings[b].profile, workers);
    }
  }

  // ---- virtual-time pipeline model ----
  // Jobs: every block's subgraphs, scheduled together on shared workers.
  // Each in-flight block pins one worker as its applier/driver (Fig. 5's
  // per-block Block Validation stage runs concurrently with execution), so
  // execution capacity shrinks as more blocks are processed at once — one
  // of the two §5.6 contention terms, alongside context switching.
  std::vector<PipelineJob> jobs;
  std::uint64_t max_applier_chain = 0;
  for (std::size_t b = 0; b < siblings.size(); ++b) {
    const sched::DependencyGraph graph = sched::build_dependency_graph(
        siblings[b].profile, config_.granularity);
    for (const auto& sg : graph.subgraphs) {
      jobs.push_back(PipelineJob{
          b, sg.total_gas + config_.costs.dispatch_cost});
    }
    const std::uint64_t applier_chain =
        siblings[b].profile.size() * config_.costs.apply_cost +
        config_.costs.block_fixed_cost;
    max_applier_chain = std::max(max_applier_chain, applier_chain);

    result.stats.serial_gas += siblings[b].block.header.gas_used;
  }

  const std::size_t exec_workers =
      config_.workers > siblings.size() ? config_.workers - siblings.size()
                                        : 1;
  const std::uint64_t exec_makespan = simulate_shared_workers(
      std::move(jobs), exec_workers, config_.costs.block_switch_cost);
  result.stats.vtime_makespan = std::max(exec_makespan, max_applier_chain);
  result.stats.blocks = siblings.size();
  result.stats.wall_ms = wall.elapsed_ms();
  return result;
}

PipelineResult ValidatorPipeline::process_height(
    const state::WorldState& pre, std::span<const BlockBundle> siblings,
    ThreadPool& workers) {
  PipelineResult result = process_one_height(pre, siblings, workers);
  // Single-height entry point: settle every pending root before returning,
  // so callers see final validity (same contract as the inline-commit mode).
  Stopwatch settle;
  for (auto& o : result.outcomes) {
    if (o.commit.valid()) ++result.stats.async_commits;
    o.await_commit();
  }
  result.stats.commit_wait_ms = settle.elapsed_ms();
  result.stats.wall_ms += result.stats.commit_wait_ms;
  return result;
}

PipelineResult ValidatorPipeline::process_height_speculative(
    const state::WorldState& pre, std::span<const BlockBundle> siblings,
    ThreadPool& workers) {
  return process_one_height(pre, siblings, workers);
}

PipelineResult ValidatorPipeline::process_chain(
    const state::WorldState& pre,
    std::span<const std::vector<BlockBundle>> heights, ThreadPool& workers) {
  PipelineResult total;
  Stopwatch wall;
  const state::WorldState* parent_state = &pre;
  std::shared_ptr<const state::WorldState> holder;  // keeps parent alive

  // Per round: [first, first+count) in total.outcomes, and the index of the
  // speculatively-chosen canonical sibling (SIZE_MAX when the chain stalled
  // at this round).
  struct Round {
    std::size_t first = 0;
    std::size_t count = 0;
    std::size_t canonical = SIZE_MAX;
  };
  std::vector<Round> rounds;

  for (const auto& siblings : heights) {
    PipelineResult round = process_one_height(
        *parent_state, std::span(siblings.data(), siblings.size()), workers);

    // Canonical branch: first (execution-)valid sibling of this height.
    // With async commitment this selection is *speculative* — the root
    // check is still in flight on the commit pipeline while the next
    // height starts executing on top of this post state; the settle pass
    // below re-checks it once the roots land.  On honest chains the
    // speculation never fails, which is exactly the §5.2 overlap: block
    // h's commitment runs concurrently with block h+1's execution.
    Round record;
    record.first = total.outcomes.size();
    record.count = round.outcomes.size();
    std::shared_ptr<const state::WorldState> canonical_state;
    for (std::size_t i = 0; i < round.outcomes.size(); ++i) {
      if (round.outcomes[i].valid) {
        canonical_state = round.outcomes[i].exec.post_state;
        record.canonical = record.first + i;
        break;
      }
    }

    total.stats.serial_gas += round.stats.serial_gas;
    // Heights serialize in the validation phase (Fig. 5): the next height's
    // commit depends on this height's final state.
    total.stats.vtime_makespan += round.stats.vtime_makespan;
    total.stats.blocks += round.stats.blocks;
    for (auto& o : round.outcomes) total.outcomes.push_back(std::move(o));
    rounds.push_back(record);

    if (canonical_state == nullptr) break;  // no valid block: chain stalls
    holder = std::move(canonical_state);
    parent_state = holder.get();
  }

  // ---- settle: await pending roots in chain order ----
  // A late root mismatch on a canonical block invalidates everything built
  // on top of it (the speculation consumed a state that was never
  // committed), mirroring how a real client truncates to the last
  // committed block.
  Stopwatch settle;
  bool chain_ok = true;
  for (const Round& r : rounds) {
    for (std::size_t i = r.first; i < r.first + r.count; ++i) {
      ValidationOutcome& o = total.outcomes[i];
      if (o.commit.valid()) ++total.stats.async_commits;
      if (!chain_ok) {
        if (o.valid) {
          o.valid = false;
          o.reject_reason = "parent block failed commitment";
        }
        continue;
      }
      o.await_commit();
    }
    if (chain_ok &&
        (r.canonical == SIZE_MAX || !total.outcomes[r.canonical].valid))
      chain_ok = false;
  }
  total.stats.commit_wait_ms = settle.elapsed_ms();

  total.stats.wall_ms = wall.elapsed_ms();
  return total;
}

// ---- ChainSession ----

std::size_t ChainSession::push_height(std::span<const BlockBundle> siblings,
                                      ThreadPool& workers) {
  PipelineResult round =
      pipeline_.process_height_speculative(tip(), siblings, workers);
  HeightRecord rec;
  rec.block_hashes.reserve(siblings.size());
  for (const BlockBundle& b : siblings)
    rec.block_hashes.push_back(b.block.header.hash());
  for (std::size_t i = 0; i < round.outcomes.size(); ++i) {
    if (round.outcomes[i].valid) {
      rec.canonical = i;
      break;
    }
  }
  rec.outcomes = std::move(round.outcomes);
  stats_.serial_gas += round.stats.serial_gas;
  // Heights serialize in the validation phase (same rule as process_chain):
  // the next height's execution consumes this height's final state.
  stats_.vtime_makespan += round.stats.vtime_makespan;
  stats_.blocks += round.stats.blocks;
  stats_.wall_ms += round.stats.wall_ms;
  heights_.push_back(std::move(rec));
  return heights_.back().canonical;
}

void ChainSession::choose(std::size_t height, std::size_t sibling) {
  BP_ASSERT(height < heights_.size());
  HeightRecord& rec = heights_[height];
  BP_ASSERT_MSG(!rec.settled, "re-choosing a settled height");
  BP_ASSERT(sibling < rec.outcomes.size());
  rec.canonical = sibling;
}

void ChainSession::mark_quorum(std::size_t height) {
  BP_ASSERT(height < heights_.size());
  BP_ASSERT_MSG(!heights_[height].settled, "quorum after settlement");
  heights_[height].quorum = true;
}

bool ChainSession::has_quorum(std::size_t height) const {
  BP_ASSERT(height < heights_.size());
  return heights_[height].quorum;
}

void ChainSession::drop_unsettled(std::size_t from_height) {
  BP_ASSERT_MSG(from_height >= settled_, "dropping a settled height");
  if (from_height >= heights_.size()) return;
  for (std::size_t h = from_height; h < heights_.size(); ++h)
    if (on_revoke_) on_revoke_(h);
  heights_.resize(from_height);
}

bool ChainSession::settle_next() {
  BP_ASSERT_MSG(settled_ < heights_.size(), "nothing unsettled");
  HeightRecord& rec = heights_[settled_];
  Stopwatch settle;
  // Every sibling settles, not just the canonical one: fork-choice needs to
  // know which survivors' roots matched their own headers.
  for (ValidationOutcome& o : rec.outcomes) {
    if (o.commit.valid()) ++stats_.async_commits;
    o.await_commit();
  }
  stats_.commit_wait_ms += settle.elapsed_ms();
  rec.settled = true;
  rec.ok = rec.canonical != SIZE_MAX && rec.outcomes[rec.canonical].valid;
  ++settled_;
  return rec.ok;
}

std::size_t ChainSession::fork_choice(std::size_t height) const {
  BP_ASSERT(height < heights_.size());
  const HeightRecord& rec = heights_[height];
  BP_ASSERT_MSG(rec.settled, "fork-choice before settlement");
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < rec.outcomes.size(); ++i) {
    if (!rec.outcomes[i].valid) continue;
    if (best == SIZE_MAX || rec.block_hashes[i] < rec.block_hashes[best])
      best = i;
  }
  return best;
}

void ChainSession::adopt_fork(std::size_t height, std::size_t sibling) {
  BP_ASSERT(height < heights_.size());
  HeightRecord& rec = heights_[height];
  BP_ASSERT_MSG(rec.settled, "adopting before settlement");
  BP_ASSERT(sibling < rec.outcomes.size());
  BP_ASSERT_MSG(rec.outcomes[sibling].valid, "adopting a failed sibling");
  rec.canonical = sibling;
  rec.ok = true;
  for (std::size_t h = height + 1; h < heights_.size(); ++h)
    if (on_revoke_) on_revoke_(h);
  heights_.resize(height + 1);
  if (settled_ > heights_.size()) settled_ = heights_.size();
}

void ChainSession::cascade_from(std::size_t height) {
  for (std::size_t h = height; h < heights_.size(); ++h) {
    HeightRecord& rec = heights_[h];
    for (ValidationOutcome& o : rec.outcomes) {
      if (o.valid) {
        o.valid = false;
        o.reject_reason = "parent block failed commitment";
      }
    }
    rec.settled = true;
    rec.ok = false;
  }
  settled_ = heights_.size();
}

const state::WorldState& ChainSession::tip() const {
  for (std::size_t h = heights_.size(); h-- > 0;) {
    const HeightRecord& rec = heights_[h];
    if (rec.canonical != SIZE_MAX &&
        rec.outcomes[rec.canonical].exec.post_state != nullptr)
      return *rec.outcomes[rec.canonical].exec.post_state;
  }
  return *base_;
}

}  // namespace blockpilot::core
