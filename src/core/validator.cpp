#include "core/validator.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "core/serial_executor.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::core {
namespace {

using state::StateKey;

/// Parent state + a worker's accumulated writes.  Sound because conflicting
/// transactions are co-located on one thread: no transaction ever reads a
/// key another thread writes.
class ThreadOverlay final : public state::ReadView {
 public:
  explicit ThreadOverlay(const state::WorldState& base) noexcept
      : base_(base) {}

  U256 read(const StateKey& key) const override {
    const auto it = writes_.find(key);
    if (it != writes_.end()) return it->second;
    return base_.get(key);
  }
  std::shared_ptr<const state::Bytes> code(const Address& addr) const override {
    return base_.code(addr);
  }
  Hash256 code_hash(const Address& addr) const override {
    return base_.code_hash(addr);
  }

  void merge(const std::vector<std::pair<StateKey, U256>>& writes) {
    for (const auto& [key, value] : writes) writes_[key] = value;
  }

 private:
  const state::WorldState& base_;
  std::unordered_map<StateKey, U256> writes_;
};

struct TxOutcome {
  evm::TxExecResult result;
  std::vector<StateKey> reads;                        // sorted
  std::vector<std::pair<StateKey, U256>> writes;      // sorted
};

/// Slot board the applier drains in block order.
struct ResultBoard {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::optional<TxOutcome>> slots;
  std::atomic<bool> failed{false};
  std::string fail_reason;

  void post(std::size_t index, TxOutcome outcome) {
    {
      std::scoped_lock lk(mu);
      slots[index] = std::move(outcome);
    }
    cv.notify_all();
  }

  void fail(const std::string& reason) {
    {
      std::scoped_lock lk(mu);
      if (!failed.load(std::memory_order_relaxed)) fail_reason = reason;
    }
    failed.store(true, std::memory_order_release);
    cv.notify_all();
  }

  /// Blocks until slot `index` is posted or a failure is flagged; nullopt
  /// on failure.
  std::optional<TxOutcome> take(std::size_t index) {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] {
      return slots[index].has_value() ||
             failed.load(std::memory_order_acquire);
    });
    if (!slots[index].has_value()) return std::nullopt;
    auto out = std::move(*slots[index]);
    slots[index].reset();
    return out;
  }
};

bool same_reads(const std::vector<StateKey>& observed,
                const std::vector<StateKey>& expected) {
  return observed == expected;  // both sorted by state_key_less
}

bool same_writes(const std::vector<std::pair<StateKey, U256>>& observed,
                 const std::vector<std::pair<StateKey, U256>>& expected) {
  if (observed.size() != expected.size()) return false;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (!(observed[i].first == expected[i].first) ||
        observed[i].second != expected[i].second)
      return false;
  }
  return true;
}

/// The paper's Algorithm 2 (subgraph-LPT scheduled replay) — the frozen
/// oracle the Block-STM path (validator_stm.cpp) is gated against.
ValidationOutcome validate_subgraph_lpt(const ValidatorConfig& config_,
                                        const state::WorldState& pre,
                                        const chain::Block& block,
                                        const chain::BlockProfile& profile,
                                        ThreadPool& workers) {
  BP_ASSERT(config_.threads >= 1);
  ValidationOutcome outcome;
  Stopwatch wall;

  const std::size_t n = block.transactions.size();
  if (profile.txs.size() != n) {
    outcome.reject_reason = "profile size mismatch";
    return outcome;
  }

  // ---- Preparation phase ----
  const sched::DependencyGraph graph =
      sched::build_dependency_graph(profile, config_.granularity);
  const sched::ThreadPlan plan = sched::lpt_schedule(graph, config_.threads);

  outcome.stats.subgraphs = graph.subgraphs.size();
  outcome.stats.largest_subgraph_ratio = graph.largest_subgraph_ratio();
  outcome.stats.critical_path_gas = graph.critical_path_gas();

  evm::BlockContext block_ctx;
  block_ctx.number = block.header.number;
  block_ctx.timestamp = block.header.timestamp;
  block_ctx.coinbase = block.header.coinbase;
  block_ctx.gas_limit = block.header.gas_limit;
  block_ctx.analysis_cache = config_.analysis_cache;

  ResultBoard board;
  board.slots.resize(n);
  vtime::WorkLedger ledger(config_.threads);

  // ---- Tx Execution phase (worker pool) ----
  auto run_lane = [&](std::size_t lane) {
    const auto& my_txs = plan.per_thread[lane];
    ThreadOverlay overlay(pre);
    // I/O model (§5.4): without prefetching, each first-touch state read on
    // this worker stalls on the backing store; the prefetcher eliminates
    // those stalls by warming the cache from the block profile during the
    // preparation phase (off the execution critical path).
    std::unordered_set<StateKey> lane_cache;
    // Dispatch overhead: one per subgraph assigned to this lane.
    std::uint64_t lane_subgraphs = 0;
    for (const auto& sg : graph.subgraphs) {
      if (!sg.tx_indices.empty() &&
          std::binary_search(my_txs.begin(), my_txs.end(),
                             sg.tx_indices.front()))
        ++lane_subgraphs;
    }
    ledger.add(lane, lane_subgraphs * config_.costs.dispatch_cost);

    // One buffer per lane, reset per transaction: keeps the read/write
    // table allocations hot instead of reallocating for every replay.
    state::ExecBuffer buffer(overlay);
    for (const std::size_t i : my_txs) {
      if (board.failed.load(std::memory_order_acquire)) return;
      buffer.reset();
      const evm::TxExecResult r = evm::execute_transaction(
          buffer, block_ctx, block.transactions[i]);
      if (r.status != evm::TxStatus::kIncluded) {
        board.fail("transaction " + std::to_string(i) +
                   " failed to execute in scheduled replay");
        return;
      }
      ledger.add(lane, r.gas_used);

      TxOutcome out;
      out.result = r;
      buffer.sorted_read_keys_into(out.reads);
      buffer.write_set_into(out.writes);

      if (!config_.prefetch) {
        std::size_t cold_reads = 0;
        for (const auto& key : out.reads)
          if (lane_cache.insert(key).second) ++cold_reads;
        ledger.add(lane, cold_reads * config_.costs.io_read_cost);
      }

      overlay.merge(out.writes);
      board.post(i, std::move(out));
    }
  };

  if (config_.threads == 1) {
    run_lane(0);
  } else {
    for (std::size_t t = 0; t < config_.threads; ++t)
      workers.submit([&run_lane, t] { run_lane(t); });
  }

  // ---- Block Validation phase (applier, on the calling thread) ----
  auto post = std::make_shared<state::WorldState>(pre);
  std::uint64_t applier_chain = 0;
  std::uint64_t gas_used = 0;
  for (std::size_t i = 0; i < n && !board.failed; ++i) {
    auto out = board.take(i);
    if (!out.has_value()) break;
    applier_chain += config_.costs.apply_cost;

    const chain::TxProfile& expected = profile.txs[i];
    if (out->result.gas_used != expected.gas_used) {
      board.fail("gas mismatch at tx " + std::to_string(i));
      break;
    }
    if (!same_reads(out->reads, expected.reads)) {
      board.fail("read-set mismatch at tx " + std::to_string(i));
      break;
    }
    if (!same_writes(out->writes, expected.writes)) {
      board.fail("write-set mismatch at tx " + std::to_string(i));
      break;
    }

    apply_tx_writes(*post, out->writes, block_ctx.coinbase,
                    out->result.fee());
    gas_used += out->result.gas_used;

    chain::Receipt receipt;
    receipt.success = (out->result.vm_status == evm::Status::kSuccess);
    receipt.gas_used = out->result.gas_used;
    receipt.cumulative_gas = gas_used;
    receipt.logs = std::move(out->result.logs);
    outcome.exec.receipts.push_back(std::move(receipt));
  }

  if (config_.threads > 1) workers.wait_idle();

  if (board.failed.load(std::memory_order_acquire)) {
    outcome.valid = false;
    outcome.reject_reason = board.fail_reason;
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }

  if (gas_used != block.header.gas_used) {
    outcome.reject_reason = "header gas_used mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }

  if (chain::receipts_root(outcome.exec.receipts) !=
      block.header.receipts_root) {
    outcome.reject_reason = "receipts root mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }
  if (!(chain::block_bloom(outcome.exec.receipts) ==
        block.header.logs_bloom)) {
    outcome.reject_reason = "logs bloom mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }

  outcome.expected_state_root = block.header.state_root;
  if (config_.seed_directory != nullptr)
    post->adopt_block_seeds(config_.seed_directory->for_block(
        block.header.hash()));
  if (config_.commit_pipeline != nullptr) {
    // ---- Block Commitment, asynchronous ----
    // The root computation moves onto the commit pipeline; `valid` is
    // provisional (execution-level) until await_commit() compares the root
    // against the header.  The post state is sealed — nothing mutates it
    // after submission.
    outcome.commit = config_.commit_pipeline->submit(post);
  } else {
    const Hash256 root = post->state_root();
    if (root != block.header.state_root) {
      outcome.reject_reason = "state root mismatch";
      outcome.stats.wall_ms = wall.elapsed_ms();
      return outcome;
    }
    outcome.exec.state_root = root;
  }

  // ---- ready for Block Commitment (caller appends to the ledger) ----
  outcome.valid = true;
  outcome.exec.profile = profile;
  outcome.exec.gas_used = gas_used;
  outcome.exec.post_state = std::move(post);
  outcome.stats.serial_gas = gas_used;
  outcome.stats.vtime_makespan = std::max(ledger.makespan(), applier_chain);
  outcome.stats.wall_ms = wall.elapsed_ms();
  return outcome;
}

}  // namespace

ValidationOutcome BlockValidator::validate(const state::WorldState& pre,
                                           const chain::Block& block,
                                           const chain::BlockProfile& profile,
                                           ThreadPool& workers) {
  ValidatorEngine engine = config_.engine;
  if (engine == ValidatorEngine::kAdaptive) {
    // The block's own profile carries the signal (it ships with the block,
    // so it is available before execution starts).  A malformed profile
    // resolves to the oracle, which rejects it the same way either engine
    // would.
    double ratio = 0.0;
    if (!profile.txs.empty() &&
        profile.txs.size() == block.transactions.size()) {
      ratio = sched::build_dependency_graph(profile, config_.granularity)
                  .largest_subgraph_ratio();
    }
    engine = ratio > config_.adaptive_threshold ? ValidatorEngine::kBlockStm
                                                : ValidatorEngine::kSubgraphLpt;
  }
  ValidationOutcome outcome =
      engine == ValidatorEngine::kSubgraphLpt
          ? validate_subgraph_lpt(config_, pre, block, profile, workers)
          : detail::validate_block_stm(
                config_, pre, block, profile, workers,
                engine == ValidatorEngine::kBlockStmHost);
  outcome.stats.engine_used = engine;
  return outcome;
}

bool ValidationOutcome::await_commit() {
  if (!commit.valid()) return valid;  // inline-committed (or rejected early)
  if (!valid) return false;           // execution already failed
  const commit::CommitResult& r = commit.get();
  exec.state_root = r.state_root;
  if (r.state_root != expected_state_root) {
    valid = false;
    reject_reason = "state root mismatch";
  }
  return valid;
}

}  // namespace blockpilot::core
