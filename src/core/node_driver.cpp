#include "core/node_driver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "evm/code_analysis.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace blockpilot::core {
namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

NodeDriverResult NodeDriver::run() {
  workload::TrafficGenerator traffic(config_.profile, config_.seed);
  chain::Blockchain chain(traffic.genesis());
  txpool::TxPoolConfig pool_cfg = config_.pool;
  pool_cfg.collect_evicted = config_.resubmit_evicted;
  txpool::TxPool pool(pool_cfg);

  // +1 thread so commitment tasks can't starve behind a full complement of
  // host-mode proposer workers sharing the pool.
  ThreadPool workers(std::max<std::size_t>(config_.proposer.threads, 1) + 1);
  commit::CommitPipeline pipeline(&workers);
  // One CodeAnalysis cache per node: every proposer lane resolves bytecode
  // through it, so a driver models a node's warm cache instead of leaking
  // state through the process-wide global (callers may still inject one).
  evm::CodeAnalysisCache analysis_cache;
  ProposerConfig pcfg = config_.proposer;
  pcfg.commit_pipeline = &pipeline;
  if (pcfg.analysis_cache == nullptr) pcfg.analysis_cache = &analysis_cache;
  BlockProposer proposer(pcfg);

  // Seed authoritative base nonces: every traffic sender starts at nonce 0,
  // so the pool can reject genuinely stale retries instead of inferring.
  for (std::size_t i = 0; i < traffic.num_senders(); ++i)
    pool.note_sender_nonce(traffic.sender(i), 0);

  NodeDriverResult result;
  Stopwatch wall;

  // Admission timestamps keyed by (sender, nonce): a slot's clock restarts
  // when a replacement is admitted, and stops at settle of the block that
  // committed it.
  using Slot = std::pair<Address, std::uint64_t>;
  std::map<Slot, std::uint64_t> admit_ns;
  std::mutex admit_mu;  // feeder thread races settle in concurrent mode
  std::vector<double> latencies_us;
  std::set<Slot> committed_seen;

  auto submit = [&](chain::Transaction tx) {
    const Slot slot{tx.from, tx.nonce};
    const txpool::AdmissionResult res = pool.add(std::move(tx));
    if (res.admitted()) {
      std::scoped_lock lk(admit_mu);
      admit_ns[slot] = wall.elapsed_ns();
    }
  };
  auto feed_tick = [&] {
    for (chain::Transaction& tx : traffic.tick()) submit(std::move(tx));
  };
  // Client re-broadcast of capacity-evicted transactions (see the
  // resubmit_evicted config comment).  A re-submission the full pool turns
  // away stays in the retry backlog — clients keep re-broadcasting until
  // the transaction lands or its nonce is consumed — because a discarded
  // hole-filler would strand its sender's queued successors forever.  Any
  // other rejection (nonce too low, duplicate, underpriced) retires it.
  // Evictions triggered by re-adds land in a fresh pool buffer drained at
  // the next boundary, so the loop terminates within a block.
  std::deque<chain::Transaction> retry_backlog;
  auto resubmit_evicted = [&] {
    for (chain::Transaction& tx : pool.take_evicted())
      retry_backlog.push_back(std::move(tx));
    for (std::size_t n = retry_backlog.size(); n > 0; --n) {
      chain::Transaction tx = std::move(retry_backlog.front());
      retry_backlog.pop_front();
      const Slot slot{tx.from, tx.nonce};
      const txpool::AdmissionResult res = pool.add(tx);
      if (res.admitted()) {
        std::scoped_lock lk(admit_mu);
        admit_ns[slot] = wall.elapsed_ns();
      } else if (res.outcome == txpool::AdmissionOutcome::kRejectedPoolFull) {
        retry_backlog.push_back(std::move(tx));
      }
    }
  };

  std::deque<ProposedBlock> pending;
  auto settle_front = [&] {
    ProposedBlock blk = std::move(pending.front());
    pending.pop_front();
    blk.await_seal();
    // FIFO settle order means the parent is always the current head.
    blk.block.header.parent_hash = chain.head().header.hash();
    const Hash256 h = blk.block.header.hash();
    result.block_hashes.push_back(h);
    if (blk.block.transactions.empty()) ++result.empty_blocks;

    std::vector<Slot> committed_slots;
    committed_slots.reserve(blk.block.transactions.size());
    for (const chain::Transaction& tx : blk.block.transactions) {
      committed_slots.emplace_back(tx.from, tx.nonce);
      if (!committed_seen.insert(committed_slots.back()).second)
        ++result.duplicate_commits;
    }
    result.txs_committed += blk.block.transactions.size();

    chain.commit_block(std::move(blk.block), blk.post_state,
                       std::move(blk.receipts));

    const std::uint64_t now_ns = wall.elapsed_ns();
    {
      std::scoped_lock lk(admit_mu);
      for (const Slot& slot : committed_slots) {
        const auto it = admit_ns.find(slot);
        if (it == admit_ns.end()) continue;  // replaced after inclusion etc.
        latencies_us.push_back(static_cast<double>(now_ns - it->second) *
                               1e-3);
        admit_ns.erase(it);
      }
    }
  };

  auto tip = chain.head_state();
  std::uint64_t next_number = chain.height() + 1;

  for (std::uint64_t b = 0; b < config_.blocks; ++b) {
    // Wake deferred entries parked since the previous interval (their
    // predecessors may have committed in the last block).
    pool.progress();
    if (config_.resubmit_evicted) resubmit_evicted();

    std::thread feeder;
    if (config_.concurrent_submission) {
      feeder = std::thread([&] {
        for (std::size_t t = 0; t < config_.ticks_per_block; ++t) feed_tick();
      });
    } else {
      for (std::size_t t = 0; t < config_.ticks_per_block; ++t) feed_tick();
    }

    evm::BlockContext ctx;
    ctx.number = next_number++;
    ctx.timestamp = config_.timestamp_base + ctx.number;
    ctx.coinbase = Address::from_id(config_.coinbase_id);
    ctx.gas_limit = pcfg.block_gas_limit;

    ProposedBlock blk = proposer.propose(*tip, ctx, pool, workers);
    if (feeder.joinable()) feeder.join();

    result.aborts += blk.stats.aborts;
    result.not_ready += blk.stats.not_ready;
    result.dropped += blk.stats.dropped;
    result.engine_by_height.push_back(blk.stats.engine_used);
    ++result.blocks;
    // Sampled at the block boundary: deterministic in virtual-time mode
    // (settle timing is wall-clock dependent and must not influence this).
    result.occupancy.push_back(pool.size());
    if (std::getenv("BP_NODE_DEBUG") && b % 25 == 0) {
      const auto st = pool.stats();
      std::fprintf(stderr,
                   "blk %llu: txs=%zu acc=%llu com=%llu evi=%llu stale=%llu "
                   "drop=%llu pend=%zu queued=%zu defer=%zu infl=%zu "
                   "nr=%llu ab=%llu\n",
                   (unsigned long long)b, blk.block.transactions.size(),
                   (unsigned long long)st.accepted,
                   (unsigned long long)st.committed,
                   (unsigned long long)st.evicted,
                   (unsigned long long)st.stale_dropped,
                   (unsigned long long)st.dropped, st.pending, st.queued,
                   st.deferred, st.in_flight,
                   (unsigned long long)blk.stats.not_ready,
                   (unsigned long long)blk.stats.aborts);
    }

    // Speculate on the unsealed post state (the pipelining the commit
    // subsystem exists for), bounded by the speculation depth.
    tip = blk.post_state;
    pending.push_back(std::move(blk));
    pipeline.wait_pending_at_most(config_.speculation_depth);
    while (pending.size() > config_.speculation_depth ||
           (!pending.empty() && pending.front().commit.valid() &&
            pending.front().commit.ready())) {
      settle_front();
    }
  }
  while (!pending.empty()) settle_front();

  result.wall_ms = wall.elapsed_ms();
  result.tx_per_s = result.wall_ms > 0.0
                        ? static_cast<double>(result.txs_committed) * 1e3 /
                              result.wall_ms
                        : 0.0;
  result.pool_stats = pool.stats();
  result.conserved = result.pool_stats.conserved();
  result.traffic = traffic.stats();
  result.final_state_root = chain.head().header.state_root;

  std::sort(latencies_us.begin(), latencies_us.end());
  result.admit_to_settle.samples = latencies_us.size();
  result.admit_to_settle.p50_us = percentile(latencies_us, 0.50);
  result.admit_to_settle.p90_us = percentile(latencies_us, 0.90);
  result.admit_to_settle.p99_us = percentile(latencies_us, 0.99);
  result.admit_to_settle.max_us =
      latencies_us.empty() ? 0.0 : latencies_us.back();
  return result;
}

}  // namespace blockpilot::core
