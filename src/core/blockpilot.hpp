// BlockPilot public API facade.
//
// #include "core/blockpilot.hpp" pulls in the full framework:
//  * OccWsiProposer  — parallel block production (OCC-WSI, Algorithm 1)
//  * BlockValidator  — scheduled deterministic parallel replay (Algorithm 2)
//  * ValidatorPipeline — multi-block pipelined validation (Fig. 5)
//  * execute_serial  — the Geth-style serial reference / oracle
//  * TwoPhaseOcc     — the parallel-then-serial OCC comparison baseline
// plus the substrate types they exchange (blocks, profiles, world state,
// transaction pool, workload generation).
#pragma once

#include "chain/block.hpp"
#include "chain/blockchain.hpp"
#include "chain/profile.hpp"
#include "chain/receipt.hpp"
#include "chain/transaction.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/node_driver.hpp"
#include "core/occ_baseline.hpp"
#include "core/pipeline.hpp"
#include "core/proposer.hpp"
#include "core/serial_executor.hpp"
#include "core/validator.hpp"
#include "evm/state_transition.hpp"
#include "sched/depgraph.hpp"
#include "state/world_state.hpp"
#include "support/thread_pool.hpp"
#include "txpool/txpool.hpp"
#include "vtime/vtime.hpp"
#include "workload/generator.hpp"
