#include "core/occ_baseline.hpp"

#include <atomic>

#include "core/serial_executor.hpp"
#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::core {
namespace {

struct Speculative {
  evm::TxExecResult result;
  std::unordered_map<state::StateKey, U256> reads;  // key -> observed value
  std::vector<std::pair<state::StateKey, U256>> writes;
  bool executable = false;
};

}  // namespace

TwoPhaseOccOutcome TwoPhaseOcc::validate(const state::WorldState& pre,
                                         const chain::Block& block,
                                         ThreadPool& workers) {
  TwoPhaseOccOutcome outcome;
  Stopwatch wall;
  const std::size_t n = block.transactions.size();

  evm::BlockContext block_ctx;
  block_ctx.number = block.header.number;
  block_ctx.timestamp = block.header.timestamp;
  block_ctx.coinbase = block.header.coinbase;
  block_ctx.gas_limit = block.header.gas_limit;

  // ---- Phase 1: fully parallel speculative execution over pre-state ----
  std::vector<Speculative> spec(n);
  vtime::WorkLedger ledger(config_.threads);
  const state::WorldStateView pre_view(pre);

  auto run_lane = [&](std::size_t lane) {
    // Static round-robin partition: tx i belongs to lane (i % threads).
    for (std::size_t i = lane; i < n; i += config_.threads) {
      state::ExecBuffer buffer(pre_view);
      const evm::TxExecResult r =
          evm::execute_transaction(buffer, block_ctx, block.transactions[i]);
      spec[i].result = r;
      spec[i].executable = (r.status == evm::TxStatus::kIncluded);
      spec[i].reads = buffer.read_set();
      spec[i].writes = buffer.write_set();
      if (spec[i].executable) ledger.add(lane, r.gas_used);
    }
  };

  if (config_.threads == 1) {
    run_lane(0);
  } else {
    for (std::size_t t = 0; t < config_.threads; ++t)
      workers.submit([&run_lane, t] { run_lane(t); });
    workers.wait_idle();
  }

  // ---- Phase 2: in-order commit with value validation; stale or
  // non-executable speculations re-execute serially ----
  auto post = std::make_shared<state::WorldState>(pre);
  std::uint64_t serial_chain = 0;  // the serial phase's virtual time
  std::uint64_t gas_used = 0;

  for (std::size_t i = 0; i < n; ++i) {
    bool fresh = spec[i].executable;
    if (fresh) {
      for (const auto& [key, observed] : spec[i].reads) {
        if (post->get(key) != observed) {
          fresh = false;
          break;
        }
      }
    }

    const evm::TxExecResult* result = &spec[i].result;
    const std::vector<std::pair<state::StateKey, U256>>* writes =
        &spec[i].writes;
    evm::TxExecResult reexec_result;
    std::vector<std::pair<state::StateKey, U256>> reexec_writes;

    if (!fresh) {
      ++outcome.stats.reexecuted;
      const state::WorldStateView view(*post);
      state::ExecBuffer buffer(view);
      reexec_result =
          evm::execute_transaction(buffer, block_ctx, block.transactions[i]);
      if (reexec_result.status != evm::TxStatus::kIncluded) {
        outcome.reject_reason =
            "transaction " + std::to_string(i) + " unexecutable";
        outcome.stats.wall_ms = wall.elapsed_ms();
        return outcome;
      }
      reexec_writes = buffer.write_set();
      result = &reexec_result;
      writes = &reexec_writes;
      serial_chain += reexec_result.gas_used;
    }
    serial_chain += config_.costs.apply_cost;

    apply_tx_writes(*post, *writes, block_ctx.coinbase, result->fee());
    gas_used += result->gas_used;

    chain::Receipt receipt;
    receipt.success = (result->vm_status == evm::Status::kSuccess);
    receipt.gas_used = result->gas_used;
    receipt.cumulative_gas = gas_used;
    receipt.logs = result->logs;
    outcome.exec.receipts.push_back(std::move(receipt));
  }

  if (gas_used != block.header.gas_used) {
    outcome.reject_reason = "header gas_used mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }
  if (chain::receipts_root(outcome.exec.receipts) !=
      block.header.receipts_root) {
    outcome.reject_reason = "receipts root mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }
  const Hash256 root = post->state_root();
  if (root != block.header.state_root) {
    outcome.reject_reason = "state root mismatch";
    outcome.stats.wall_ms = wall.elapsed_ms();
    return outcome;
  }

  outcome.valid = true;
  outcome.exec.gas_used = gas_used;
  outcome.exec.state_root = root;
  outcome.exec.post_state = std::move(post);
  outcome.stats.serial_gas = gas_used;
  outcome.stats.vtime_makespan = ledger.makespan() + serial_chain;
  outcome.stats.wall_ms = wall.elapsed_ms();
  return outcome;
}

}  // namespace blockpilot::core
