// BlockValidator: scheduled deterministic parallel re-execution
// (paper §4.3 + Algorithm 2).
//
// Four phases per block:
//  * Preparation — build the dependency graph from the proposer's block
//    profile (account-level conflicts by default), split into subgraphs,
//    gas-weighted LPT assignment of subgraphs onto worker threads;
//  * Tx Execution — each worker executes its transactions serially (its
//    subgraphs are internally ordered by block position) over the parent
//    state plus its own accumulated writes; cross-thread reads cannot occur
//    because conflicting transactions share a thread by construction;
//  * Block Validation — the applier consumes results in strict block order,
//    verifies each transaction's observed read/write sets against the
//    profile (honest-proposer check, §4.4), applies writes + the serial
//    coinbase fee, and finally compares the world-state root with the
//    proposed header;
//  * Block Commitment — the caller commits the returned post state.
#pragma once

#include <memory>
#include <string>

#include "chain/block.hpp"
#include "chain/profile.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/execution_result.hpp"
#include "evm/state_transition.hpp"
#include "sched/depgraph.hpp"
#include "support/thread_pool.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot::core {

struct ValidatorConfig {
  std::size_t threads = 4;
  sched::Granularity granularity = sched::Granularity::kAccount;
  vtime::CostModel costs;
  /// Warm the state cache from the block profile's key sets before
  /// execution (the geth prefetching technique the paper's evaluation
  /// enables, §5.4).  When false, every first-touch read charges
  /// costs.io_read_cost on its worker's virtual clock.
  bool prefetch = true;
  /// When set, the Block Commitment phase (state-root computation + header
  /// comparison) runs asynchronously on this pipeline: validate() returns a
  /// provisionally-valid outcome carrying a CommitHandle, and the root check
  /// happens in ValidationOutcome::await_commit().  When null, the root is
  /// checked inline (original behavior).
  commit::CommitPipeline* commit_pipeline = nullptr;
  /// When set, the post state adopts the block-hash-keyed seed set before
  /// commitment, so sibling validators of the same block build each dirty
  /// account's storage fold once and share it (see state::BlockSeedSet).
  state::BlockSeedDirectory* seed_directory = nullptr;
  /// CodeAnalysis cache the workers' interpreters resolve bytecode through
  /// (null = the process-wide evm::CodeAnalysisCache::global()).  Tests and
  /// benches point this at a private cache to isolate hit-rate accounting.
  evm::CodeAnalysisCache* analysis_cache = nullptr;
};

struct ValidatorStats {
  std::uint64_t serial_gas = 0;      // geth-equivalent serial cost
  std::uint64_t vtime_makespan = 0;  // max(worker lanes, applier chain)
  double wall_ms = 0.0;
  std::size_t subgraphs = 0;
  double largest_subgraph_ratio = 0.0;
  std::uint64_t critical_path_gas = 0;

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct ValidationOutcome {
  bool valid = false;
  std::string reject_reason;  // empty when valid
  BlockExecution exec;        // meaningful when valid
  ValidatorStats stats;

  /// Pending asynchronous Block Commitment (invalid handle when the root
  /// was checked inline).  While the handle is pending, `valid` reflects
  /// execution-level validity only.
  commit::CommitHandle commit;
  Hash256 expected_state_root;  // header root to compare against

  /// Settles the asynchronous root check: blocks on the commit handle,
  /// fills exec.state_root, and downgrades `valid` on mismatch.  Idempotent;
  /// a no-op for inline-committed outcomes.  Returns the final validity.
  bool await_commit();
};

class BlockValidator {
 public:
  explicit BlockValidator(ValidatorConfig config) : config_(config) {}

  /// Re-executes `block` on top of `pre` and checks it against `profile`
  /// and the block header's state root.
  ValidationOutcome validate(const state::WorldState& pre,
                             const chain::Block& block,
                             const chain::BlockProfile& profile,
                             ThreadPool& workers);

  const ValidatorConfig& config() const noexcept { return config_; }

 private:
  ValidatorConfig config_;
};

}  // namespace blockpilot::core
