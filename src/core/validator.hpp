// BlockValidator: scheduled deterministic parallel re-execution
// (paper §4.3 + Algorithm 2).
//
// Four phases per block:
//  * Preparation — build the dependency graph from the proposer's block
//    profile (account-level conflicts by default), split into subgraphs,
//    gas-weighted LPT assignment of subgraphs onto worker threads;
//  * Tx Execution — each worker executes its transactions serially (its
//    subgraphs are internally ordered by block position) over the parent
//    state plus its own accumulated writes; cross-thread reads cannot occur
//    because conflicting transactions share a thread by construction;
//  * Block Validation — the applier consumes results in strict block order,
//    verifies each transaction's observed read/write sets against the
//    profile (honest-proposer check, §4.4), applies writes + the serial
//    coinbase fee, and finally compares the world-state root with the
//    proposed header;
//  * Block Commitment — the caller commits the returned post state.
#pragma once

#include <memory>
#include <string>

#include "chain/block.hpp"
#include "chain/profile.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/engine_select.hpp"
#include "core/execution_result.hpp"
#include "evm/state_transition.hpp"
#include "sched/depgraph.hpp"
#include "support/thread_pool.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot::core {

/// Which replay discipline re-executes the block (docs/blockstm.md §8).
enum class ValidatorEngine : std::uint8_t {
  /// Subgraph-LPT scheduled replay — the paper's Algorithm 2, kept
  /// verbatim as the frozen oracle the Block-STM path is gated against.
  kSubgraphLpt = 0,
  /// Preset-order multi-version replay (Block-STM over MvMemory, driven by
  /// the collaborative scheduler), seeded from the block profile's
  /// broadcast write sets: each transaction's footprint is pre-populated
  /// as ESTIMATE markers, so first incarnations SUSPEND on their true
  /// dependencies instead of aborting.  With an honest profile the replay
  /// converges with zero aborts and zero validation waves.
  ///
  /// Like the proposer's kBlockStm mode this is the discrete-event twin:
  /// `threads` virtual workers driven by one real thread, so the virtual
  /// makespan is bit-reproducible and independent of host scheduling (a
  /// single-core host would otherwise collapse every replay onto the first
  /// worker the pool happens to wake).
  kBlockStm,
  /// Same algorithm on real pool threads (the thread-safety twin, mirror
  /// of the proposer's kBlockStmHost).  The produced verdict/roots are
  /// bit-identical to kBlockStm by Block-STM's determinism theorem; only
  /// the stats (suspensions, lane makespan) vary with host scheduling.
  kBlockStmHost,
  /// Per-block pick between kSubgraphLpt and kBlockStm from the profile's
  /// largest-subgraph ratio vs adaptive_threshold (engine_select.hpp).
  /// Stateless — the profile ships with the block, so the signal is
  /// available in the Preparation phase and concurrent sibling
  /// validations stay race-free.
  kAdaptive,
};

struct ValidatorConfig {
  std::size_t threads = 4;
  sched::Granularity granularity = sched::Granularity::kAccount;
  vtime::CostModel costs;
  /// Replay discipline (see ValidatorEngine).  Both engines accept exactly
  /// the blocks whose serial preset-order execution matches the profile
  /// and the header — the engine-differential matrix gates that verdicts,
  /// roots, gas and receipts are bit-identical.
  ValidatorEngine engine = ValidatorEngine::kSubgraphLpt;
  /// kAdaptive only: largest-subgraph ratio above which the block is
  /// replayed with Block-STM instead of subgraph-LPT.
  double adaptive_threshold = kAdaptiveStmThreshold;
  /// Test knob: when set, Block-STM ESTIMATE pre-seeding reads its write
  /// sets from this profile instead of the validated one.  Seeds are
  /// strictly a scheduling hint — a stale seed set degrades to extra
  /// suspensions/validation waves, never to a wrong result — and the
  /// seeding tests gate exactly that by validating honest blocks with
  /// deliberately stale seeds.  Null = seed from the block's own profile.
  const chain::BlockProfile* stm_seed_override = nullptr;
  /// Warm the state cache from the block profile's key sets before
  /// execution (the geth prefetching technique the paper's evaluation
  /// enables, §5.4).  When false, every first-touch read charges
  /// costs.io_read_cost on its worker's virtual clock.
  bool prefetch = true;
  /// When set, the Block Commitment phase (state-root computation + header
  /// comparison) runs asynchronously on this pipeline: validate() returns a
  /// provisionally-valid outcome carrying a CommitHandle, and the root check
  /// happens in ValidationOutcome::await_commit().  When null, the root is
  /// checked inline (original behavior).
  commit::CommitPipeline* commit_pipeline = nullptr;
  /// When set, the post state adopts the block-hash-keyed seed set before
  /// commitment, so sibling validators of the same block build each dirty
  /// account's storage fold once and share it (see state::BlockSeedSet).
  state::BlockSeedDirectory* seed_directory = nullptr;
  /// CodeAnalysis cache the workers' interpreters resolve bytecode through
  /// (null = the process-wide evm::CodeAnalysisCache::global()).  Tests and
  /// benches point this at a private cache to isolate hit-rate accounting.
  evm::CodeAnalysisCache* analysis_cache = nullptr;
};

struct ValidatorStats {
  std::uint64_t serial_gas = 0;      // geth-equivalent serial cost
  std::uint64_t vtime_makespan = 0;  // max(worker lanes, applier chain)
  double wall_ms = 0.0;
  std::size_t subgraphs = 0;
  double largest_subgraph_ratio = 0.0;
  std::uint64_t critical_path_gas = 0;
  /// Engine that actually replayed the block (kAdaptive resolves to one of
  /// the fixed engines per block).
  ValidatorEngine engine_used = ValidatorEngine::kSubgraphLpt;
  /// Block-STM replay dynamics (untouched by the subgraph-LPT path).
  /// With an honest profile the pre-seeded estimates keep aborts and
  /// validation waves at zero (suspensions track the block's real
  /// dependencies); stale seeds show up in these counters, never in the
  /// verdict.
  std::uint64_t stm_aborts = 0;
  std::uint64_t stm_suspensions = 0;
  std::uint64_t stm_validation_waves = 0;

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct ValidationOutcome {
  bool valid = false;
  std::string reject_reason;  // empty when valid
  BlockExecution exec;        // meaningful when valid
  ValidatorStats stats;

  /// Pending asynchronous Block Commitment (invalid handle when the root
  /// was checked inline).  While the handle is pending, `valid` reflects
  /// execution-level validity only.
  commit::CommitHandle commit;
  Hash256 expected_state_root;  // header root to compare against

  /// Settles the asynchronous root check: blocks on the commit handle,
  /// fills exec.state_root, and downgrades `valid` on mismatch.  Idempotent;
  /// a no-op for inline-committed outcomes.  Returns the final validity.
  bool await_commit();
};

class BlockValidator {
 public:
  explicit BlockValidator(ValidatorConfig config) : config_(config) {}

  /// Re-executes `block` on top of `pre` and checks it against `profile`
  /// and the block header's state root.
  ValidationOutcome validate(const state::WorldState& pre,
                             const chain::Block& block,
                             const chain::BlockProfile& profile,
                             ThreadPool& workers);

  const ValidatorConfig& config() const noexcept { return config_; }

 private:
  ValidatorConfig config_;
};

namespace detail {
/// Block-STM replay path (validator_stm.cpp).  `config.engine` is ignored
/// here — BlockValidator::validate resolves kAdaptive before dispatching
/// and picks the twin via `host_threads` (false = DES virtual workers,
/// true = real pool threads).
ValidationOutcome validate_block_stm(const ValidatorConfig& config,
                                     const state::WorldState& pre,
                                     const chain::Block& block,
                                     const chain::BlockProfile& profile,
                                     ThreadPool& workers, bool host_threads);
}  // namespace detail

}  // namespace blockpilot::core
