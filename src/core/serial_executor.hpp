// SerialExecutor: the Geth-style reference engine.
//
// Executes transactions strictly in order against a single world state.
// Three roles in this repository:
//  * the baseline every speedup in §5 is measured against;
//  * the correctness oracle — every parallel engine must reproduce its
//    state root bit-for-bit (§5.2);
//  * a convenience block builder for tests (serial proposer).
#pragma once

#include <span>

#include "chain/transaction.hpp"
#include "core/execution_result.hpp"
#include "evm/state_transition.hpp"

namespace blockpilot::core {

struct SerialOptions {
  /// Stop adding transactions once this much gas is consumed (proposer
  /// role).  Transactions that would exceed it are skipped.
  std::uint64_t block_gas_limit = 30'000'000;
  /// When true, kInvalid / kNotReady transactions are silently dropped
  /// (proposer role).  When false, any non-included transaction makes the
  /// execution fail (validator role — a proposed block must execute fully).
  bool drop_unincludable = true;
  /// CodeAnalysis cache the interpreter resolves bytecode through
  /// (null = the process-wide evm::CodeAnalysisCache::global()).
  evm::CodeAnalysisCache* analysis_cache = nullptr;
};

struct SerialResult {
  BlockExecution exec;
  /// Transactions actually included, in execution order.
  std::vector<chain::Transaction> included;
  bool ok = true;  // false only when drop_unincludable == false and a
                   // transaction failed to execute
};

/// Executes `txs` serially on a copy of `pre`.
SerialResult execute_serial(const state::WorldState& pre,
                            const evm::BlockContext& block_ctx,
                            std::span<const chain::Transaction> txs,
                            const SerialOptions& options = {});

}  // namespace blockpilot::core
