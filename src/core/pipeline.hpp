// ValidatorPipeline: multi-block processing (paper §4.3 Fig. 5, §5.6).
//
// Validators in a Byzantine network receive several blocks per height
// (forks / uncles) and must validate all of them.  The pipeline overlaps
// their four phases:
//  * blocks at the SAME height share the parent state and execute fully
//    concurrently on one worker pool ("free workers will execute
//    transactions regardless of the block information");
//  * a block at height h+1 must wait for its parent's block-validation
//    phase before its own validation can complete (the world state it
//    builds on has to be final).
//
// Timing model (DESIGN.md §1/§4): the subgraphs of all in-flight blocks are
// list-scheduled onto `workers` virtual workers; a worker that executes
// consecutive jobs from *different* blocks pays block_switch_cost (§5.6:
// "workers shift between different contexts to handle distinct blocks and
// send out relevant information") — this contention term is what caps and
// then slightly degrades throughput past ~4 concurrent blocks with 16
// workers, reproducing Fig. 9's shape.  Real execution runs concurrently on
// the actual pool for correctness; the virtual makespan is derived from the
// measured per-block schedules.
#pragma once

#include <span>
#include <vector>

#include "core/validator.hpp"

namespace blockpilot::core {

struct BlockBundle {
  chain::Block block;
  chain::BlockProfile profile;
};

struct PipelineConfig {
  std::size_t workers = 16;
  sched::Granularity granularity = sched::Granularity::kAccount;
  vtime::CostModel costs;
  /// Validate sibling blocks on concurrent driver threads (true) or
  /// sequentially (false; virtual-time result is identical — useful for
  /// deterministic debugging).
  bool concurrent_blocks = true;
  /// When set, per-block state-root computation runs asynchronously on
  /// this pipeline.  process_height() settles roots before returning;
  /// process_chain() overlaps height h's commitment with height h+1's
  /// execution, selecting the canonical branch speculatively and cascading
  /// invalidation if a root check later fails ("parent block failed
  /// commitment").
  commit::CommitPipeline* commit_pipeline = nullptr;
};

struct PipelineStats {
  std::uint64_t serial_gas = 0;      // Σ gas over all processed blocks
  std::uint64_t vtime_makespan = 0;  // pipeline virtual completion time
  double wall_ms = 0.0;
  std::size_t blocks = 0;
  std::uint64_t async_commits = 0;   // outcomes settled via CommitHandle
  double commit_wait_ms = 0.0;       // wall time blocked awaiting roots

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct PipelineResult {
  std::vector<ValidationOutcome> outcomes;  // one per block, input order
  PipelineStats stats;

  bool all_valid() const noexcept {
    for (const auto& o : outcomes)
      if (!o.valid) return false;
    return !outcomes.empty();
  }
};

class ValidatorPipeline {
 public:
  explicit ValidatorPipeline(PipelineConfig config) : config_(config) {}

  /// Validates sibling blocks (all at the same height, all children of
  /// `pre`) concurrently.  This is the Fig. 9 experiment surface.
  PipelineResult process_height(const state::WorldState& pre,
                                std::span<const BlockBundle> siblings,
                                ThreadPool& workers);

  /// Speculative variant of process_height(): returns as soon as execution
  /// finishes, leaving each outcome's asynchronous root check pending on its
  /// CommitHandle.  `valid` then reflects execution-level validity only —
  /// callers may vote on and build on the speculative tip, but must settle
  /// every outcome (ValidationOutcome::await_commit()) before treating it
  /// as final.  Behaves exactly like process_height() when no commit
  /// pipeline is configured (roots are then checked inline).
  PipelineResult process_height_speculative(
      const state::WorldState& pre, std::span<const BlockBundle> siblings,
      ThreadPool& workers);

  /// Validates a chain of heights; heights[i] holds the sibling blocks of
  /// height i.  The canonical branch follows the first valid block of each
  /// height.  Virtual time charges same-height overlap but serializes
  /// across heights (a child's validation needs its parent's final state).
  PipelineResult process_chain(
      const state::WorldState& pre,
      std::span<const std::vector<BlockBundle>> heights, ThreadPool& workers);

  const PipelineConfig& config() const noexcept { return config_; }

 private:
  PipelineResult process_one_height(const state::WorldState& pre,
                                    std::span<const BlockBundle> siblings,
                                    ThreadPool& workers);

  PipelineConfig config_;
};

/// Virtual-time list-scheduling model for one pipeline round: `jobs` are
/// subgraph costs tagged by owning block, scheduled heaviest-first onto
/// `workers` virtual workers with a context-switch charge when a worker's
/// consecutive jobs belong to different blocks.  Returns the execution
/// makespan.  Exposed for unit tests and ablation benches.
struct PipelineJob {
  std::size_t block_index = 0;
  std::uint64_t cost = 0;
};
std::uint64_t simulate_shared_workers(std::vector<PipelineJob> jobs,
                                      std::size_t workers,
                                      std::uint64_t switch_cost);

}  // namespace blockpilot::core
