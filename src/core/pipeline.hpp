// ValidatorPipeline: multi-block processing (paper §4.3 Fig. 5, §5.6).
//
// Validators in a Byzantine network receive several blocks per height
// (forks / uncles) and must validate all of them.  The pipeline overlaps
// their four phases:
//  * blocks at the SAME height share the parent state and execute fully
//    concurrently on one worker pool ("free workers will execute
//    transactions regardless of the block information");
//  * a block at height h+1 must wait for its parent's block-validation
//    phase before its own validation can complete (the world state it
//    builds on has to be final).
//
// Timing model (DESIGN.md §1/§4): the subgraphs of all in-flight blocks are
// list-scheduled onto `workers` virtual workers; a worker that executes
// consecutive jobs from *different* blocks pays block_switch_cost (§5.6:
// "workers shift between different contexts to handle distinct blocks and
// send out relevant information") — this contention term is what caps and
// then slightly degrades throughput past ~4 concurrent blocks with 16
// workers, reproducing Fig. 9's shape.  Real execution runs concurrently on
// the actual pool for correctness; the virtual makespan is derived from the
// measured per-block schedules.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/validator.hpp"

namespace blockpilot::core {

struct BlockBundle {
  chain::Block block;
  chain::BlockProfile profile;
};

struct PipelineConfig {
  std::size_t workers = 16;
  sched::Granularity granularity = sched::Granularity::kAccount;
  vtime::CostModel costs;
  /// Replay discipline forwarded to every BlockValidator (subgraph-LPT,
  /// Block-STM, or per-block adaptive — see core::ValidatorEngine).
  ValidatorEngine engine = ValidatorEngine::kSubgraphLpt;
  /// kAdaptive only: largest-subgraph ratio above which a block is
  /// replayed with Block-STM (engine_select.hpp).
  double adaptive_threshold = kAdaptiveStmThreshold;
  /// Validate sibling blocks on concurrent driver threads (true) or
  /// sequentially (false; virtual-time result is identical — useful for
  /// deterministic debugging).
  bool concurrent_blocks = true;
  /// When set, per-block state-root computation runs asynchronously on
  /// this pipeline.  process_height() settles roots before returning;
  /// process_chain() overlaps height h's commitment with height h+1's
  /// execution, selecting the canonical branch speculatively and cascading
  /// invalidation if a root check later fails ("parent block failed
  /// commitment").
  commit::CommitPipeline* commit_pipeline = nullptr;
  /// Block-hash-keyed storage-seed sharing across sibling validators (see
  /// ValidatorConfig::seed_directory); forwarded to every BlockValidator.
  state::BlockSeedDirectory* seed_directory = nullptr;
  /// CodeAnalysis cache forwarded to every BlockValidator: one per node
  /// models a validator's warm bytecode cache (null = process-wide global).
  evm::CodeAnalysisCache* analysis_cache = nullptr;
};

struct PipelineStats {
  std::uint64_t serial_gas = 0;      // Σ gas over all processed blocks
  std::uint64_t vtime_makespan = 0;  // pipeline virtual completion time
  double wall_ms = 0.0;
  std::size_t blocks = 0;
  std::uint64_t async_commits = 0;   // outcomes settled via CommitHandle
  double commit_wait_ms = 0.0;       // wall time blocked awaiting roots

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct PipelineResult {
  std::vector<ValidationOutcome> outcomes;  // one per block, input order
  PipelineStats stats;

  bool all_valid() const noexcept {
    for (const auto& o : outcomes)
      if (!o.valid) return false;
    return !outcomes.empty();
  }
};

class ValidatorPipeline {
 public:
  explicit ValidatorPipeline(PipelineConfig config) : config_(config) {}

  /// Validates sibling blocks (all at the same height, all children of
  /// `pre`) concurrently.  This is the Fig. 9 experiment surface.
  PipelineResult process_height(const state::WorldState& pre,
                                std::span<const BlockBundle> siblings,
                                ThreadPool& workers);

  /// Speculative variant of process_height(): returns as soon as execution
  /// finishes, leaving each outcome's asynchronous root check pending on its
  /// CommitHandle.  `valid` then reflects execution-level validity only —
  /// callers may vote on and build on the speculative tip, but must settle
  /// every outcome (ValidationOutcome::await_commit()) before treating it
  /// as final.  Behaves exactly like process_height() when no commit
  /// pipeline is configured (roots are then checked inline).
  PipelineResult process_height_speculative(
      const state::WorldState& pre, std::span<const BlockBundle> siblings,
      ThreadPool& workers);

  /// Validates a chain of heights; heights[i] holds the sibling blocks of
  /// height i.  The canonical branch follows the first valid block of each
  /// height.  Virtual time charges same-height overlap but serializes
  /// across heights (a child's validation needs its parent's final state).
  PipelineResult process_chain(
      const state::WorldState& pre,
      std::span<const std::vector<BlockBundle>> heights, ThreadPool& workers);

  const PipelineConfig& config() const noexcept { return config_; }

 private:
  PipelineResult process_one_height(const state::WorldState& pre,
                                    std::span<const BlockBundle> siblings,
                                    ThreadPool& workers);

  PipelineConfig config_;
};

/// ChainSession: height-granular chain validation for an event-driven node.
///
/// process_chain() consumes a whole fork tree at once and settles in a
/// post-hoc pass; a live node instead receives one height's siblings at a
/// time, votes, keeps executing ahead while commitments are still in
/// flight, and must be able to *revoke* a speculative suffix when a
/// settlement fails.  ChainSession is that incremental surface:
///
///   push_height()  speculatively validates the next height's siblings on
///                  the current tip (roots pending on the commit pipeline);
///   choose()       overrides the canonical sibling (the node's vote);
///   settle_next()  awaits the oldest unsettled height's roots and reports
///                  whether its canonical block survived;
///   fork_choice()  after a failed settlement, picks the survivor with the
///                  smallest block hash among siblings whose settled root
///                  matched their own header;
///   adopt_fork()   re-roots the chain on that survivor and truncates every
///                  height built on the revoked block, invoking the
///                  revocation callback per dropped height so the node can
///                  retract votes and re-propose.
///
/// Speculation safety mirrors process_chain(): heights build on the first
/// execution-valid sibling (or the explicitly chosen one) before its root
/// is known, which is exactly the paper's §5.2 overlap of commitment with
/// the next block's execution.
class ChainSession {
 public:
  /// Invoked by adopt_fork() once per truncated height index (ascending),
  /// before the records are dropped.
  using RevokeFn = std::function<void(std::size_t height)>;

  ChainSession(PipelineConfig config, const state::WorldState& genesis)
      : pipeline_(config),
        base_(std::make_shared<state::WorldState>(genesis)) {}

  void set_revocation_callback(RevokeFn fn) { on_revoke_ = std::move(fn); }

  /// Validates the next height's siblings on the current tip; returns the
  /// default canonical sibling (first execution-valid, SIZE_MAX when none).
  /// With an async commit pipeline the outcomes' root checks stay pending.
  std::size_t push_height(std::span<const BlockBundle> siblings,
                          ThreadPool& workers);

  /// Overrides the canonical sibling of an unsettled height (the node's
  /// vote).  The next push_height() builds on this sibling's post state.
  void choose(std::size_t height, std::size_t sibling);

  /// Records that the height's vote reached its consensus quorum — the
  /// network layer's promise that settling it cannot produce a second
  /// settled root at this height.  A height may sit here with partial
  /// votes indefinitely: its speculative commitments stay pending on the
  /// commit pipeline without blocking deeper pushes; only settlement is
  /// gated on the flag (by the caller — see the consensus loop).
  void mark_quorum(std::size_t height);
  bool has_quorum(std::size_t height) const;

  /// Awaits every sibling root of the oldest unsettled height; returns
  /// whether the canonical sibling settled clean.  On false, the caller
  /// runs fork_choice()/adopt_fork() (or abandons the chain).
  ///
  /// Asserts when nothing is unsettled: a caller whose votes were lost by
  /// the network must check can_settle() (or unsettled_count()) instead of
  /// blocking here — quorum loss parks the height, it must not deadlock or
  /// double-settle the session.
  bool settle_next();

  /// True when an unsettled height exists (settle_next() is callable).
  bool can_settle() const noexcept { return settled_ < heights_.size(); }
  std::size_t unsettled_count() const noexcept {
    return heights_.size() - settled_;
  }

  /// Drops every *unsettled* height record from `from_height` on (the
  /// revocation callback fires per dropped height, ascending) and rewinds
  /// the tip to the last surviving height.  This is the quorum-miss
  /// re-proposal path: a height whose votes never formed a quorum is
  /// discarded — outcomes with pending CommitHandles are simply dropped;
  /// the CommitPipeline publishes abandoned submissions on its own and its
  /// destructor drains them, so lost votes cannot wedge the pipeline.
  /// `from_height` must not cut into settled heights.
  void drop_unsettled(std::size_t from_height);

  /// Survivor with the smallest block hash among this settled height's
  /// siblings whose root matched their own header; SIZE_MAX when none.
  std::size_t fork_choice(std::size_t height) const;

  /// Re-roots the chain on `sibling` at `height` and truncates every height
  /// above it (revocation callback fires per dropped height).  The next
  /// push_height() resumes from the survivor's post state.
  void adopt_fork(std::size_t height, std::size_t sibling);

  /// Marks every outcome from `height` on invalid ("parent block failed
  /// commitment") — the no-survivor terminal path, matching the batch
  /// cascade's bookkeeping.
  void cascade_from(std::size_t height);

  std::size_t height_count() const noexcept { return heights_.size(); }
  std::size_t settled_count() const noexcept { return settled_; }

  /// Post state of the deepest canonical block (the speculative tip);
  /// genesis before any push.
  const state::WorldState& tip() const;

  std::size_t sibling_count(std::size_t height) const {
    return heights_[height].outcomes.size();
  }
  std::size_t canonical(std::size_t height) const {
    return heights_[height].canonical;
  }
  ValidationOutcome& outcome(std::size_t height, std::size_t sibling) {
    return heights_[height].outcomes[sibling];
  }
  const ValidationOutcome& outcome(std::size_t height,
                                   std::size_t sibling) const {
    return heights_[height].outcomes[sibling];
  }
  const Hash256& block_hash(std::size_t height, std::size_t sibling) const {
    return heights_[height].block_hashes[sibling];
  }

  /// Accumulated pipeline stats over every push/settle so far.
  const PipelineStats& stats() const noexcept { return stats_; }

 private:
  struct HeightRecord {
    std::vector<ValidationOutcome> outcomes;
    std::vector<Hash256> block_hashes;
    std::size_t canonical = SIZE_MAX;
    bool settled = false;
    bool ok = false;      // canonical survived settlement
    bool quorum = false;  // consensus quorum recorded for this height
  };

  ValidatorPipeline pipeline_;
  std::shared_ptr<const state::WorldState> base_;
  std::vector<HeightRecord> heights_;
  std::size_t settled_ = 0;
  PipelineStats stats_;
  RevokeFn on_revoke_;
};

/// Virtual-time list-scheduling model for one pipeline round: `jobs` are
/// subgraph costs tagged by owning block, scheduled heaviest-first onto
/// `workers` virtual workers with a context-switch charge when a worker's
/// consecutive jobs belong to different blocks.  Returns the execution
/// makespan.  Exposed for unit tests and ablation benches.
struct PipelineJob {
  std::size_t block_index = 0;
  std::uint64_t cost = 0;
};
std::uint64_t simulate_shared_workers(std::vector<PipelineJob> jobs,
                                      std::size_t workers,
                                      std::uint64_t switch_cost);

}  // namespace blockpilot::core
