#include "core/serial_executor.hpp"

#include <algorithm>

#include "state/exec_buffer.hpp"
#include "state/read_view.hpp"
#include "support/assert.hpp"

namespace blockpilot::core {

chain::Block seal_block(const evm::BlockContext& ctx,
                        const BlockExecution& exec,
                        std::vector<chain::Transaction> txs) {
  chain::Block block;
  block.header.number = ctx.number;
  block.header.timestamp = ctx.timestamp;
  block.header.coinbase = ctx.coinbase;
  block.header.gas_limit = ctx.gas_limit;
  block.header.gas_used = exec.gas_used;
  block.header.state_root = exec.state_root;
  block.header.tx_root = chain::transactions_root(txs);
  block.header.receipts_root = chain::receipts_root(exec.receipts);
  block.header.logs_bloom = chain::block_bloom(exec.receipts);
  block.transactions = std::move(txs);
  return block;
}

void apply_tx_writes(
    state::WorldState& ws,
    const std::vector<std::pair<state::StateKey, U256>>& writes,
    const Address& coinbase, const U256& fee) {
  for (const auto& [key, value] : writes) ws.set(key, value);
  if (!fee.is_zero()) {
    const auto cb_key = state::StateKey::balance(coinbase);
    ws.set(cb_key, ws.get(cb_key) + fee);
  }
}

SerialResult execute_serial(const state::WorldState& pre,
                            const evm::BlockContext& block_ctx,
                            std::span<const chain::Transaction> txs,
                            const SerialOptions& options) {
  SerialResult result;
  auto post = std::make_shared<state::WorldState>(pre);

  evm::BlockContext exec_ctx = block_ctx;
  if (options.analysis_cache) exec_ctx.analysis_cache = options.analysis_cache;

  for (const auto& tx : txs) {
    const state::WorldStateView view(*post);
    state::ExecBuffer buffer(view);
    const evm::TxExecResult r =
        evm::execute_transaction(buffer, exec_ctx, tx);

    if (r.status != evm::TxStatus::kIncluded) {
      if (options.drop_unincludable) continue;
      result.ok = false;
      return result;
    }
    if (result.exec.gas_used + r.gas_used > options.block_gas_limit) {
      if (options.drop_unincludable) continue;  // skip, try later txs
      result.ok = false;
      return result;
    }

    chain::TxProfile profile;
    profile.reads = buffer.sorted_read_keys();
    profile.writes = buffer.write_set();
    profile.gas_used = r.gas_used;

    apply_tx_writes(*post, profile.writes, block_ctx.coinbase, r.fee());

    chain::Receipt receipt;
    receipt.success = (r.vm_status == evm::Status::kSuccess);
    receipt.gas_used = r.gas_used;
    result.exec.gas_used += r.gas_used;
    receipt.cumulative_gas = result.exec.gas_used;
    receipt.logs = r.logs;

    result.exec.receipts.push_back(std::move(receipt));
    result.exec.profile.txs.push_back(std::move(profile));
    result.included.push_back(tx);
  }

  result.exec.state_root = post->state_root();
  result.exec.post_state = std::move(post);
  return result;
}

}  // namespace blockpilot::core
