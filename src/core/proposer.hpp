// OccWsiProposer: parallel block production with Write-Snapshot-Isolation
// OCC (paper §4.2, Algorithm 1).
//
// Worker threads repeatedly:
//  1. pop the highest-gas-price transaction from the pending pool;
//  2. take a snapshot version (the currently committed version) of the
//     multi-version state and execute the transaction against it;
//  3. enter the serialized commit section (Algorithm 1's DetectConflit +
//     "Synchronize with all worker threads"):
//       - WSI validation: if any key in the transaction's read set has a
//         committed version newer than the snapshot, the execution observed
//         stale data -> abort, push the transaction back into the pool;
//       - otherwise commit: assign version = block position + 1, apply the
//         write set, append to the block, record the profile entry.
// Write-write conflicts do NOT abort: blind writes serialize by version
// order, which is the WSI relaxation the paper exploits ("transactions with
// conflicting writes can be committed to the same block").
//
// The produced block carries its profile (read/write sets + per-tx gas) for
// broadcast, enabling validators' dependency-graph scheduling (§4.2 end).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "chain/block.hpp"
#include "chain/receipt.hpp"
#include "commit/commit_pipeline.hpp"
#include "core/execution_result.hpp"
#include "evm/state_transition.hpp"
#include "support/thread_pool.hpp"
#include "txpool/txpool.hpp"
#include "vtime/vtime.hpp"

namespace blockpilot::core {

/// How the proposer realizes its parallelism.
enum class ScheduleMode : std::uint8_t {
  /// Discrete-event simulation of `threads` virtual workers: each worker
  /// has a virtual clock; transactions execute (real EVM execution) against
  /// the snapshot committed as of their virtual start time, and validate
  /// against commits that landed during their virtual execution window.
  /// Deterministic and host-independent — identical OCC dynamics (aborts,
  /// commit order, lane loads) on a laptop or a 1-vCPU CI box.  This is the
  /// figure-generating mode (DESIGN.md §1, hardware substitution).
  kVirtualTime = 0,
  /// Real std::thread workers racing on the pool — genuine concurrency for
  /// thread-safety validation.  OCC dynamics depend on host scheduling (a
  /// single-core host degenerates to serial execution with no aborts).
  kHostThreads,
};

struct ProposerConfig {
  std::size_t threads = 4;
  ScheduleMode mode = ScheduleMode::kVirtualTime;
  std::uint64_t block_gas_limit = 30'000'000;
  /// Hard cap on included transactions (0 = unlimited): lets benchmarks
  /// propose fixed-size blocks.
  std::size_t max_txs = 0;
  /// Safety valve: a transaction that keeps coming back kNotReady is
  /// dropped after this many attempts.  Deferred transactions only re-enter
  /// the pool on commits (TxPool::progress), so retries are structurally
  /// bounded by committed-transaction count — a deep airdrop nonce chain
  /// can legitimately rack up hundreds of retries (one per unrelated
  /// commit), hence the generous default.  Only a transaction whose
  /// predecessor never arrives ultimately hits it.
  int max_not_ready_attempts = 100'000;
  vtime::CostModel costs;
  /// When set, header sealing (state root + receipts root) runs
  /// asynchronously on this pipeline: propose() returns a block whose
  /// state_root / receipts_root are zero until ProposedBlock::await_seal()
  /// fills them from the CommitHandle.  When null, sealing is inline
  /// (original behavior).
  commit::CommitPipeline* commit_pipeline = nullptr;
  /// CodeAnalysis cache the execution lanes resolve bytecode through
  /// (null = the process-wide evm::CodeAnalysisCache::global()).
  evm::CodeAnalysisCache* analysis_cache = nullptr;
};

struct ProposerStats {
  std::uint64_t committed = 0;
  std::uint64_t aborts = 0;        // WSI read-stale aborts (re-queued)
  std::uint64_t not_ready = 0;     // nonce-gap deferrals
  std::uint64_t dropped = 0;       // invalid / stuck transactions
  std::uint64_t serial_gas = 0;    // sum of committed gas (serial baseline)
  std::uint64_t vtime_makespan = 0;
  double wall_ms = 0.0;

  double virtual_speedup() const noexcept {
    return vtime::speedup(serial_gas, vtime_makespan);
  }
};

struct ProposedBlock {
  chain::Block block;
  chain::BlockProfile profile;
  std::vector<chain::Receipt> receipts;  // commit order (== block order)
  std::shared_ptr<state::WorldState> post_state;
  ProposerStats stats;

  /// Pending asynchronous seal (invalid handle when sealing was inline).
  commit::CommitHandle commit;

  /// Settles an asynchronous seal: blocks on the commit handle and fills
  /// header.state_root / header.receipts_root.  No-op when sealing was
  /// inline.  The block must not be broadcast before this returns.
  void await_seal();
};

class OccWsiProposer {
 public:
  explicit OccWsiProposer(ProposerConfig config) : config_(config) {}

  /// Drains `pool` (up to the gas limit / tx cap) into a new block on top
  /// of `pre`.  Dispatches on config.mode; `workers` is used only by the
  /// kHostThreads mode (which needs at least config.threads pool threads).
  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool& workers);

  /// Deterministic discrete-event realization (see ScheduleMode).
  ProposedBlock propose_virtual(const state::WorldState& pre,
                                const evm::BlockContext& block_ctx,
                                txpool::TxPool& pool);

  /// Real-thread realization (see ScheduleMode).
  ProposedBlock propose_host_threads(const state::WorldState& pre,
                                     const evm::BlockContext& block_ctx,
                                     txpool::TxPool& pool,
                                     ThreadPool& workers);

  const ProposerConfig& config() const noexcept { return config_; }

 private:
  /// Fills the commitment-derived header fields (state root, receipts root)
  /// inline, or queues them on config_.commit_pipeline.  Requires
  /// result.post_state and result.receipts to be in place.
  void seal_commitment(ProposedBlock& result);

  ProposerConfig config_;
};

}  // namespace blockpilot::core
