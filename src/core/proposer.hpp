// BlockProposer: parallel block production behind the ExecutionEngine seam.
//
// The facade owns a ProposerConfig and dispatches propose() to the engine
// selected by config.mode (core/execution_engine.hpp):
//
//  * kVirtualTime / kHostThreads — OCC with Write-Snapshot-Isolation
//    (paper §4.2, Algorithm 1): workers execute against committed
//    snapshots and pass through a serialized commit section that aborts
//    read-stale transactions; write-write conflicts commit ("transactions
//    with conflicting writes can be committed to the same block").
//  * kBlockStm / kBlockStmHost — Block-STM (PPoPP 2022): the pool pop
//    order becomes the block's preset order, incarnations speculate over a
//    multi-version memory, a collaborative scheduler validates and aborts;
//    no serialized commit section (docs/blockstm.md).
//
// Either way the produced block carries its profile (read/write sets +
// per-tx gas) for broadcast, enabling validators' dependency-graph
// scheduling (§4.2 end).
//
// propose_virtual() / propose_host_threads() pin the realization while
// keeping the configured family — callers that want "this block, but
// deterministic" (tests, benches) use them regardless of config.mode.
#pragma once

#include <memory>

#include "core/execution_engine.hpp"

namespace blockpilot::core {

class BlockProposer {
 public:
  explicit BlockProposer(ProposerConfig config)
      : config_(config), engine_(make_execution_engine(config)) {}

  /// Drains `pool` (up to the gas limit / tx cap) into a new block on top
  /// of `pre`.  Dispatches on config.mode; `workers` is used only by the
  /// host-threads modes (which need at least config.threads pool threads).
  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool& workers) {
    return engine_->propose(pre, block_ctx, pool, &workers);
  }

  /// Deterministic discrete-event realization of the configured family
  /// (kVirtualTime for the OCC modes, kBlockStm for the Block-STM modes).
  ProposedBlock propose_virtual(const state::WorldState& pre,
                                const evm::BlockContext& block_ctx,
                                txpool::TxPool& pool);

  /// Real-thread realization of the configured family.
  ProposedBlock propose_host_threads(const state::WorldState& pre,
                                     const evm::BlockContext& block_ctx,
                                     txpool::TxPool& pool,
                                     ThreadPool& workers);

  const ProposerConfig& config() const noexcept { return config_; }

 private:
  ProposerConfig config_;
  std::unique_ptr<ExecutionEngine> engine_;
};

/// Historical name, kept for the OCC-centric call sites; the class has been
/// the engine-dispatching facade since the Block-STM engine landed.
using OccWsiProposer = BlockProposer;

}  // namespace blockpilot::core
