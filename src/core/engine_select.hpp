// Adaptive engine selection: the one constant shared by proposer and
// validator.
//
// The regime map in BENCH_versioned_state.json (bench_versioned_state
// phase 6, docs/blockstm.md §6) measures OCC-WSI vs Block-STM virtual
// speedup over the largest-subgraph ratio of the block's dependency graph.
// OCC-WSI wins while conflicts are rare (mainnet ratio ~0.29: OCC 3.76x vs
// STM 3.58x); Block-STM overtakes as the largest subgraph grows (dex-heavy
// ratio ~0.36: STM 2.60x vs OCC 2.52x).  The crossover sits between those
// two measured points, so the adaptive engines switch to Block-STM when
// the observed ratio exceeds 0.33.
//
// Both sides key the decision off a block profile's largest-subgraph ratio
// (sched::build_dependency_graph) so a run's engine choices are a pure
// function of the chain content — bit-reproducible per seed:
//  * the proposer (ScheduleMode::kAdaptive) uses the ratio of the block it
//    proposed PREVIOUSLY (the signal available before execution starts);
//  * the validator (ValidatorEngine::kAdaptive) uses the ratio of the
//    block being validated — its profile ships with the block, so the
//    signal is available in the Preparation phase, and statelessness keeps
//    concurrent sibling validations race-free.
#pragma once

namespace blockpilot::core {

/// Largest-subgraph ratio above which the adaptive engines pick Block-STM.
inline constexpr double kAdaptiveStmThreshold = 0.33;

}  // namespace blockpilot::core
