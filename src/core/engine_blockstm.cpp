// Block-STM execution engines (Gelashvili et al., PPoPP 2022; see
// docs/blockstm.md for the mapping onto BlockPilot).
//
// Where OCC-WSI decides the block order at runtime inside a serialized
// commit section, Block-STM FIXES the order up front — here, the pool's pop
// order — and makes speculation converge to the serial execution of that
// preset order:
//
//  1. candidate selection pops transactions (highest gas price first) until
//     the reserved gas (sum of gas limits) would exceed the block limit or
//     the tx cap is reached;
//  2. worker threads pull execution / validation tasks from the
//     collaborative scheduler (sched::BlockStmScheduler); incarnations
//     execute against the multi-version memory (state::MvMemory), where a
//     read observes the highest-indexed lower writer;
//  3. an execution that reads an aborted transaction's ESTIMATE footprint
//     suspends on it instead of speculating on known-dirty data; a
//     validation that observes a changed read set aborts the incarnation
//     and re-covers the validation wave behind it;
//  4. receipts materialize lazily, in preset order, as the scheduler's
//     stable prefix advances — there is no serialized commit section, which
//     is exactly the structural contrast the regime map in
//     bench_versioned_state measures against OCC-WSI.
//
// A transaction that cannot execute in its slot (nonce gap = kNotReady,
// invalid = kInvalid) records an EMPTY write set: it occupies its preset
// position but contributes nothing, mirroring the serial executor's
// drop_unincludable skip — which is what keeps the produced block
// bit-identical to a serial execution of the candidates in pop order (the
// cross-engine differential gate).
//
// Both realizations share every algorithmic step; they differ only in who
// runs the tasks:
//  * kBlockStm      — a discrete-event simulation over virtual time: task
//    outcomes are computed at dispatch (real EVM execution) and applied at
//    virtual completion, so writes become visible only after their virtual
//    execution window — deterministic abort dynamics, host-independent.
//  * kBlockStmHost  — real threads hammering scheduler + MvMemory (the
//    `stm` TSan gate).  By determinism of the final outcome the block is
//    bit-identical to kBlockStm's; stats (aborts, makespan) vary with host
//    scheduling.
#include <algorithm>
#include <queue>
#include <thread>

#include "core/execution_engine.hpp"
#include "sched/blockstm_scheduler.hpp"
#include "state/exec_buffer.hpp"
#include "state/versioned_state.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace blockpilot::core {
namespace {

using sched::BlockStmScheduler;
using Task = BlockStmScheduler::Task;

/// Final data of a transaction's latest executed incarnation.  The mutex
/// makes the host twin safe against a validation of incarnation i racing
/// the store of incarnation i+1; the incarnation field lets such a stale
/// validation detect itself.
struct alignas(64) TxSlot {
  std::mutex mu;
  std::uint32_t incarnation = 0;
  evm::TxExecResult result;
  std::vector<state::MvView::LogEntry> reads;
  std::vector<std::pair<state::StateKey, U256>> writes;
};

/// Everything one Block-STM proposal shares between workers.
struct StmProposal {
  StmProposal(const state::WorldState& pre, const evm::BlockContext& ctx,
              std::vector<chain::Transaction> candidates)
      : exec_ctx(ctx),
        txs(std::move(candidates)),
        mv(pre, txs.size()),
        scheduler(txs.size()),
        slots(std::make_unique<TxSlot[]>(txs.size())) {}

  evm::BlockContext exec_ctx;
  std::vector<chain::Transaction> txs;  // preset order (pool pop order)
  state::MvMemory mv;
  BlockStmScheduler scheduler;
  std::unique_ptr<TxSlot[]> slots;

  // Lazy commit: receipts/profile materialized in preset order as the
  // stable prefix advances (guarded by commit_mu; try-locked so workers
  // never convoy on it).
  std::mutex commit_mu;
  std::uint32_t committed_upto = 0;
  std::vector<chain::Transaction> included;
  chain::BlockProfile profile;
  std::vector<chain::Receipt> receipts;
  std::vector<U256> fees;
  std::uint64_t gas_used = 0;
};

/// Pops the block's candidates: highest price first, until the reserved gas
/// (sum of gas LIMITS — the pre-execution upper bound) would exceed the
/// block limit.  Every included transaction's gas_used <= gas_limit, so the
/// assembled block can never exceed the limit — the capacity gate runs
/// before execution, unlike OCC's post-execution gate.
std::vector<chain::Transaction> select_candidates(txpool::TxPool& pool,
                                                  const ProposerConfig& cfg) {
  std::vector<chain::Transaction> txs;
  std::uint64_t reserved = 0;
  while (cfg.max_txs == 0 || txs.size() < cfg.max_txs) {
    auto popped = pool.pop();
    if (!popped.has_value()) break;
    if (reserved + popped->gas_limit > cfg.block_gas_limit) {
      pool.push_back(std::move(*popped));
      break;
    }
    reserved += popped->gas_limit;
    txs.push_back(std::move(*popped));
  }
  return txs;
}

/// A finished-but-not-yet-applied execution: the DES twin computes this at
/// dispatch time and applies it at virtual completion time; the host twin
/// applies it immediately.
struct PendingExec {
  std::uint32_t txn = 0;
  std::uint32_t incarnation = 0;
  bool blocked = false;       // hit an ESTIMATE: suspend, discard result
  std::uint32_t blocking = 0;
  evm::TxExecResult result;
  std::vector<state::MvView::LogEntry> reads;
  std::vector<std::pair<state::StateKey, U256>> writes;
  std::uint64_t cost = 0;  // virtual cost of the attempt
};

PendingExec run_execution(StmProposal& p, const Task& t, state::MvView& view,
                          state::ExecBuffer& buffer) {
  view.begin(t.txn);
  buffer.rebase(view);
  const evm::TxExecResult r =
      evm::execute_transaction(buffer, p.exec_ctx, p.txs[t.txn]);
  PendingExec pe;
  pe.txn = t.txn;
  pe.incarnation = t.incarnation;
  pe.blocked = view.blocked();
  pe.blocking = view.blocking_txn();
  pe.cost = r.gas_used;
  if (!pe.blocked) {
    pe.result = r;
    pe.reads = view.read_log();
    // Excluded transactions (nonce gap / invalid) install an EMPTY write
    // set: they hold their preset slot but contribute nothing (see file
    // comment).
    if (r.status == evm::TxStatus::kIncluded) buffer.write_set_into(pe.writes);
  }
  return pe;
}

/// Publishes an execution's outcome (slot + multi-version memory) and
/// closes its task.  Returns the scheduler's follow-up task, if any.
Task apply_execution(StmProposal& p, PendingExec& pe) {
  TxSlot& slot = p.slots[pe.txn];
  {
    std::scoped_lock lk(slot.mu);
    slot.incarnation = pe.incarnation;
    slot.result = std::move(pe.result);
    slot.reads = std::move(pe.reads);
    slot.writes = pe.writes;
  }
  const bool wrote_new = p.mv.record(pe.txn, pe.incarnation, pe.writes);
  return p.scheduler.finish_execution(pe.txn, pe.incarnation, wrote_new);
}

/// Re-reads an incarnation's read set against the current multi-version
/// memory.  True = every read still observes the same version (valid).
bool validate_reads(StmProposal& p, std::uint32_t txn,
                    std::uint32_t incarnation) {
  std::vector<state::MvView::LogEntry> reads;
  {
    TxSlot& slot = p.slots[txn];
    std::scoped_lock lk(slot.mu);
    if (slot.incarnation != incarnation)
      return true;  // stale task: the abort attempt would fail anyway
    reads = slot.reads;
  }
  for (const auto& e : reads) {
    const state::MvMemory::ReadResult r = p.mv.read(e.key, txn);
    if (e.version.txn == state::MvMemory::Version::kBase) {
      if (r.kind != state::MvMemory::ReadKind::kBase) return false;
    } else if (r.kind != state::MvMemory::ReadKind::kOk ||
               !(r.version == e.version)) {
      return false;  // changed writer/incarnation, or now an ESTIMATE
    }
  }
  return true;
}

/// Applies a validation verdict and closes its task.  Returns the
/// follow-up task (the aborted transaction's re-execution), if any.
Task apply_validation(StmProposal& p, const Task& t, bool ok) {
  bool aborted = false;
  if (!ok && p.scheduler.try_validation_abort(t.txn, t.incarnation)) {
    // Leave the footprint as ESTIMATE markers so higher transactions
    // suspend instead of speculating through known-dirty data.
    p.mv.convert_to_estimates(t.txn);
    aborted = true;
  }
  return p.scheduler.finish_validation(t.txn, t.incarnation, aborted);
}

/// Lazily materializes receipts/profile for the stable prefix, in preset
/// order.  Any worker may call it at any time; try-lock keeps it off the
/// hot path when another worker is already committing.
void advance_stable(StmProposal& p) {
  const std::uint32_t target = p.scheduler.stable_prefix();
  std::unique_lock lk(p.commit_mu, std::try_to_lock);
  if (!lk.owns_lock()) return;
  while (p.committed_upto < target) {
    const std::uint32_t i = p.committed_upto;
    TxSlot& slot = p.slots[i];
    std::scoped_lock slk(slot.mu);
    if (slot.result.status == evm::TxStatus::kIncluded) {
      chain::TxProfile profile;
      profile.reads.reserve(slot.reads.size());
      for (const auto& e : slot.reads) profile.reads.push_back(e.key);
      std::sort(profile.reads.begin(), profile.reads.end(),
                state::state_key_less);  // log keys are already unique
      profile.writes = slot.writes;
      profile.gas_used = slot.result.gas_used;
      p.gas_used += slot.result.gas_used;

      chain::Receipt receipt;
      receipt.success = (slot.result.vm_status == evm::Status::kSuccess);
      receipt.gas_used = slot.result.gas_used;
      receipt.cumulative_gas = p.gas_used;
      receipt.logs = slot.result.logs;

      p.profile.txs.push_back(std::move(profile));
      p.receipts.push_back(std::move(receipt));
      p.included.push_back(p.txs[i]);
      p.fees.push_back(slot.result.fee());
    }
    ++p.committed_upto;
  }
}

/// Shared epilogue of both twins: pool acknowledgments, post-state
/// flattening, header assembly, sealing.
class BlockStmEngineBase : public ExecutionEngine {
 public:
  using ExecutionEngine::ExecutionEngine;

 protected:
  ProposedBlock finalize(StmProposal& p, const state::WorldState& pre,
                         const evm::BlockContext& block_ctx,
                         txpool::TxPool& pool, ProposerStats& stats) {
    advance_stable(p);
    BP_ASSERT(p.committed_upto == p.txs.size());

    // Acknowledge outcomes in preset order: commits first advance the
    // senders' base nonces, so a price-inverted successor deferred at a
    // lower index becomes poppable again for the next block.
    for (std::uint32_t i = 0; i < p.txs.size(); ++i) {
      chain::Transaction& tx = p.txs[i];
      switch (p.slots[i].result.status) {
        case evm::TxStatus::kIncluded:
          pool.committed(tx.from, tx.nonce);
          break;
        case evm::TxStatus::kNotReady:
          ++stats.not_ready;
          pool.defer(std::move(tx));
          break;
        case evm::TxStatus::kInvalid:
          ++stats.dropped;
          pool.dropped(tx.from, tx.nonce);
          break;
      }
    }

    ProposedBlock result;
    auto post = std::make_shared<state::WorldState>(pre);
    p.mv.flatten_into(*post);
    const auto cb_key = state::StateKey::balance(block_ctx.coinbase);
    U256 total_fees;
    for (const U256& fee : p.fees) total_fees += fee;
    if (!total_fees.is_zero())
      post->set(cb_key, post->get(cb_key) + total_fees);

    result.block.header.number = block_ctx.number;
    result.block.header.coinbase = block_ctx.coinbase;
    result.block.header.timestamp = block_ctx.timestamp;
    result.block.header.gas_limit = config_.block_gas_limit;
    result.block.header.gas_used = p.gas_used;
    result.block.header.tx_root = chain::transactions_root(p.included);
    result.block.header.logs_bloom = chain::block_bloom(p.receipts);
    result.block.transactions = std::move(p.included);
    result.profile = std::move(p.profile);
    result.receipts = std::move(p.receipts);
    result.post_state = std::move(post);
    seal_commitment(result);

    stats.committed = result.block.transactions.size();
    stats.aborts = p.scheduler.aborts();
    stats.serial_gas = p.gas_used;
    stats.engine_used = config_.mode;
    result.stats = stats;
    return result;
  }
};

// ---------------------------------------------------------------------------
// Virtual-time twin: discrete-event simulation of `threads` workers.

class BlockStmVirtualEngine final : public BlockStmEngineBase {
 public:
  using BlockStmEngineBase::BlockStmEngineBase;

  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool* /*workers*/) override {
    BP_ASSERT(config_.threads >= 1);
    Stopwatch wall;
    evm::BlockContext exec_ctx = block_ctx;
    if (config_.analysis_cache)
      exec_ctx.analysis_cache = config_.analysis_cache;

    StmProposal p(pre, exec_ctx, select_candidates(pool, config_));
    ProposerStats stats{};
    const std::size_t W = config_.threads;

    if (!p.txs.empty()) {
      /// Per-virtual-worker in-flight task + its precomputed outcome.
      struct VWorker {
        bool busy = false;
        Task task;
        PendingExec exec;        // task.kind == kExecute
        bool verdict_ok = true;  // task.kind == kValidate
      };
      std::vector<VWorker> vworkers(W);
      std::vector<std::uint64_t> clock(W, 0);
      std::uint64_t final_time = 0;

      // Completion events: (time, worker), earliest first, worker index
      // breaking ties deterministically.
      using Event = std::pair<std::uint64_t, std::size_t>;
      std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

      // The event loop runs on one real thread: scratch is shared.
      state::MvView view(p.mv);
      state::ExecBuffer buffer;

      // Computes the task's outcome NOW (dispatch) and schedules its
      // application at the virtual completion time, so writes/aborts
      // become visible only after their execution window elapsed.
      auto dispatch = [&](std::size_t w, const Task& t, std::uint64_t now) {
        VWorker& vw = vworkers[w];
        vw.busy = true;
        vw.task = t;
        clock[w] = now;
        if (t.kind == Task::Kind::kExecute) {
          vw.exec = run_execution(p, t, view, buffer);
          events.emplace(now + vw.exec.cost, w);
        } else {
          vw.verdict_ok = validate_reads(p, t.txn, t.incarnation);
          events.emplace(now + config_.costs.commit_cost, w);
        }
      };
      auto try_dispatch = [&](std::size_t w, std::uint64_t now) {
        if (vworkers[w].busy) return;
        const Task t = p.scheduler.next_task();
        if (t) dispatch(w, t, now);
      };

      for (std::size_t w = 0; w < W; ++w) try_dispatch(w, 0);

      while (!events.empty()) {
        const auto [now, w] = events.top();
        events.pop();
        VWorker& vw = vworkers[w];
        BP_ASSERT(vw.busy);
        vw.busy = false;
        clock[w] = now;
        final_time = std::max(final_time, now);

        if (vw.task.kind == Task::Kind::kExecute && vw.exec.blocked) {
          if (!p.scheduler.add_dependency(vw.task.txn, vw.exec.blocking)) {
            // The blocker resolved during the window: retry immediately
            // with the same incarnation (still this worker's task).
            dispatch(w, vw.task, now);
            continue;
          }
          // Parked; the resume path re-issues the execution.
        } else {
          Task follow = vw.task.kind == Task::Kind::kExecute
                            ? apply_execution(p, vw.exec)
                            : apply_validation(p, vw.task, vw.verdict_ok);
          if (follow) dispatch(w, follow, now);
        }
        advance_stable(p);
        for (std::size_t other = 0; other < W; ++other)
          try_dispatch(other, std::max(clock[other], now));
      }
      BP_ASSERT(p.scheduler.done());
      stats.vtime_makespan = final_time;
    }

    stats.wall_ms = wall.elapsed_ms();
    return finalize(p, pre, block_ctx, pool, stats);
  }
};

// ---------------------------------------------------------------------------
// Host-threads twin: real workers, same algorithm.

class BlockStmHostEngine final : public BlockStmEngineBase {
 public:
  using BlockStmEngineBase::BlockStmEngineBase;

  ProposedBlock propose(const state::WorldState& pre,
                        const evm::BlockContext& block_ctx,
                        txpool::TxPool& pool, ThreadPool* workers) override {
    BP_ASSERT(config_.threads >= 1);
    BP_ASSERT(workers != nullptr);
    BP_ASSERT(workers->size() >= config_.threads);
    Stopwatch wall;
    evm::BlockContext exec_ctx = block_ctx;
    if (config_.analysis_cache)
      exec_ctx.analysis_cache = config_.analysis_cache;

    StmProposal p(pre, exec_ctx, select_candidates(pool, config_));
    ProposerStats stats{};
    vtime::WorkLedger ledger(config_.threads);

    auto worker_fn = [&](std::size_t lane) {
      state::MvView view(p.mv);
      state::ExecBuffer buffer;
      while (!p.scheduler.done()) {
        Task t = p.scheduler.next_task();
        if (!t) {
          advance_stable(p);
          std::this_thread::yield();
          continue;
        }
        while (t) {
          if (t.kind == Task::Kind::kExecute) {
            PendingExec pe = run_execution(p, t, view, buffer);
            ledger.add(lane, pe.cost);
            if (pe.blocked) {
              if (p.scheduler.add_dependency(t.txn, pe.blocking)) t = Task{};
              // else: the blocker resolved — re-run the same task.
            } else {
              t = apply_execution(p, pe);
            }
          } else {
            const bool ok = validate_reads(p, t.txn, t.incarnation);
            ledger.add(lane, config_.costs.commit_cost);
            t = apply_validation(p, t, ok);
          }
        }
        advance_stable(p);
      }
    };

    if (!p.txs.empty()) {
      if (config_.threads == 1) {
        worker_fn(0);
      } else {
        for (std::size_t t = 0; t < config_.threads; ++t)
          workers->submit([&worker_fn, t] { worker_fn(t); });
        workers->wait_idle();
      }
      stats.vtime_makespan = ledger.makespan();
    }

    stats.wall_ms = wall.elapsed_ms();
    return finalize(p, pre, block_ctx, pool, stats);
  }
};

}  // namespace

namespace detail {

std::unique_ptr<ExecutionEngine> make_blockstm_engine(
    const ProposerConfig& config, bool host_threads) {
  if (host_threads) return std::make_unique<BlockStmHostEngine>(config);
  return std::make_unique<BlockStmVirtualEngine>(config);
}

}  // namespace detail
}  // namespace blockpilot::core
