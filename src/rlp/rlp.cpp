#include "rlp/rlp.hpp"

#include <cstring>

#include "support/assert.hpp"

namespace blockpilot::rlp {
namespace {

void append_length(Bytes& out, std::size_t len, std::uint8_t short_base,
                   std::uint8_t long_base) {
  if (len <= 55) {
    out.push_back(static_cast<std::uint8_t>(short_base + len));
    return;
  }
  std::uint8_t be[8];
  int n = 0;
  for (std::size_t v = len; v != 0; v >>= 8) ++n;
  for (int i = 0; i < n; ++i)
    be[n - 1 - i] = static_cast<std::uint8_t>(len >> (8 * i));
  out.push_back(static_cast<std::uint8_t>(long_base + n));
  out.insert(out.end(), be, be + n);
}

Bytes minimal_be(const U256& value) {
  const auto full = value.to_be_bytes();
  std::size_t first = 0;
  while (first < 32 && full[first] == 0) ++first;
  return Bytes(full.begin() + static_cast<std::ptrdiff_t>(first), full.end());
}

}  // namespace

void Encoder::append_string(std::span<const std::uint8_t> str) {
  Bytes& dst = out();
  if (str.size() == 1 && str[0] < 0x80) {
    dst.push_back(str[0]);
    return;
  }
  append_length(dst, str.size(), 0x80, 0xb7);
  dst.insert(dst.end(), str.begin(), str.end());
}

Encoder& Encoder::add(std::span<const std::uint8_t> str) {
  append_string(str);
  return *this;
}

Encoder& Encoder::add(std::string_view str) {
  append_string(std::span(reinterpret_cast<const std::uint8_t*>(str.data()),
                          str.size()));
  return *this;
}

Encoder& Encoder::add(std::uint64_t value) { return add(U256{value}); }

Encoder& Encoder::add(const U256& value) {
  const Bytes be = minimal_be(value);
  append_string(std::span(be));
  return *this;
}

Encoder& Encoder::add(const Address& addr) {
  append_string(std::span(addr.bytes));
  return *this;
}

Encoder& Encoder::add(const Hash256& hash) {
  append_string(std::span(hash.bytes));
  return *this;
}

Encoder& Encoder::add_raw(std::span<const std::uint8_t> encoded) {
  Bytes& dst = out();
  dst.insert(dst.end(), encoded.begin(), encoded.end());
  return *this;
}

Encoder& Encoder::begin_list() {
  stack_.emplace_back();
  return *this;
}

Encoder& Encoder::end_list() {
  BP_ASSERT_MSG(!stack_.empty(), "end_list without begin_list");
  Bytes payload = std::move(stack_.back());
  stack_.pop_back();
  Bytes& dst = out();
  append_length(dst, payload.size(), 0xc0, 0xf7);
  dst.insert(dst.end(), payload.begin(), payload.end());
  return *this;
}

Bytes Encoder::take() {
  BP_ASSERT_MSG(stack_.empty(), "take() with unclosed list");
  return std::move(buffer_);
}

Bytes encode(std::span<const std::uint8_t> str) {
  Encoder e;
  e.add(str);
  return e.take();
}

Bytes encode(std::uint64_t value) { return encode(U256{value}); }

Bytes encode(const U256& value) {
  Encoder e;
  e.add(value);
  return e.take();
}

namespace {

// Parses one item starting at data[pos]; advances pos past it.
Item parse(std::span<const std::uint8_t> data, std::size_t& pos) {
  BP_ASSERT_MSG(pos < data.size(), "truncated RLP");
  const std::uint8_t tag = data[pos];

  auto read_len = [&](std::size_t n_bytes) {
    BP_ASSERT_MSG(pos + n_bytes <= data.size(), "truncated RLP length");
    std::size_t len = 0;
    for (std::size_t i = 0; i < n_bytes; ++i) len = (len << 8) | data[pos++];
    return len;
  };
  auto read_str = [&](std::size_t len) {
    BP_ASSERT_MSG(pos + len <= data.size(), "truncated RLP string");
    Bytes s(data.begin() + static_cast<std::ptrdiff_t>(pos),
            data.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return s;
  };
  auto read_list = [&](std::size_t len) {
    BP_ASSERT_MSG(pos + len <= data.size(), "truncated RLP list");
    const std::size_t end = pos + len;
    Item item;
    item.is_list = true;
    while (pos < end) item.list.push_back(parse(data, pos));
    BP_ASSERT_MSG(pos == end, "RLP list payload overrun");
    return item;
  };

  if (tag < 0x80) {  // single byte
    ++pos;
    Item item;
    item.str.push_back(tag);
    return item;
  }
  if (tag <= 0xb7) {  // short string
    ++pos;
    Item item;
    item.str = read_str(tag - 0x80);
    return item;
  }
  if (tag <= 0xbf) {  // long string
    ++pos;
    const std::size_t len = read_len(tag - 0xb7);
    Item item;
    item.str = read_str(len);
    return item;
  }
  if (tag <= 0xf7) {  // short list
    ++pos;
    return read_list(tag - 0xc0);
  }
  ++pos;  // long list
  const std::size_t len = read_len(tag - 0xf7);
  return read_list(len);
}

}  // namespace

Item decode(std::span<const std::uint8_t> data) {
  std::size_t pos = 0;
  Item item = parse(data, pos);
  BP_ASSERT_MSG(pos == data.size(), "trailing bytes after RLP item");
  return item;
}

namespace {

void encode_item_into(Encoder& enc, const Item& item) {
  if (!item.is_list) {
    enc.add(std::span(item.str));
    return;
  }
  enc.begin_list();
  for (const Item& child : item.list) encode_item_into(enc, child);
  enc.end_list();
}

}  // namespace

Bytes encode_item(const Item& item) {
  Encoder enc;
  encode_item_into(enc, item);
  return enc.take();
}

std::uint64_t Item::as_u64() const {
  BP_ASSERT(!is_list);
  BP_ASSERT_MSG(str.size() <= 8, "integer wider than 64 bits");
  std::uint64_t v = 0;
  for (auto b : str) v = (v << 8) | b;
  return v;
}

U256 Item::as_u256() const {
  BP_ASSERT(!is_list);
  return U256::from_be_bytes(std::span(str));
}

Address Item::as_address() const {
  BP_ASSERT(!is_list);
  BP_ASSERT_MSG(str.size() == 20, "address item must be 20 bytes");
  Address a;
  std::memcpy(a.bytes.data(), str.data(), 20);
  return a;
}

Hash256 Item::as_hash() const {
  BP_ASSERT(!is_list);
  BP_ASSERT_MSG(str.size() == 32, "hash item must be 32 bytes");
  Hash256 h;
  std::memcpy(h.bytes.data(), str.data(), 32);
  return h;
}

}  // namespace blockpilot::rlp
