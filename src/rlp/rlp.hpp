// Recursive Length Prefix (RLP) serialization, Ethereum's canonical wire
// and trie-node encoding.
//
// Encoding rules (yellow paper, appendix B):
//   * single byte < 0x80 encodes itself;
//   * a string of 0-55 bytes: 0x80+len prefix;
//   * longer strings: 0xb7+len-of-len prefix, then big-endian length;
//   * a list whose payload is 0-55 bytes: 0xc0+len prefix;
//   * longer lists: 0xf7+len-of-len prefix, then big-endian length.
// Integers are encoded as minimal big-endian strings (zero = empty string).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "types/address.hpp"
#include "types/u256.hpp"

namespace blockpilot::rlp {

using Bytes = std::vector<std::uint8_t>;

/// Streaming encoder.  Items appended at the top level concatenate; use
/// begin_list()/end_list() to nest.
class Encoder {
 public:
  Encoder& add(std::span<const std::uint8_t> str);
  Encoder& add(std::string_view str);
  Encoder& add(std::uint64_t value);        // minimal big-endian integer
  Encoder& add(const U256& value);          // minimal big-endian integer
  Encoder& add(const Address& addr);        // 20-byte string
  Encoder& add(const Hash256& hash);        // 32-byte string

  /// Appends a pre-encoded RLP item verbatim (for nested structures whose
  /// encoding was computed elsewhere, e.g. trie child references).
  Encoder& add_raw(std::span<const std::uint8_t> encoded);

  /// Opens a list; every item added until the matching end_list() belongs to
  /// it.  Lists may nest arbitrarily.
  Encoder& begin_list();
  Encoder& end_list();

  /// Finishes encoding and returns the buffer.  All lists must be closed.
  Bytes take();

 private:
  void append_string(std::span<const std::uint8_t> str);
  Bytes& out() { return stack_.empty() ? buffer_ : stack_.back(); }

  Bytes buffer_;
  std::vector<Bytes> stack_;  // one pending payload per open list
};

/// Encodes a single byte-string item.
Bytes encode(std::span<const std::uint8_t> str);
Bytes encode(std::uint64_t value);
Bytes encode(const U256& value);

/// A decoded RLP item: either a byte string or a list of items.
struct Item {
  bool is_list = false;
  Bytes str;                // valid when !is_list
  std::vector<Item> list;   // valid when is_list

  std::uint64_t as_u64() const;
  U256 as_u256() const;
  Address as_address() const;
  Hash256 as_hash() const;
};

/// Parses exactly one item spanning the whole input; asserts on malformed
/// or trailing data.
Item decode(std::span<const std::uint8_t> data);

/// Re-serializes a decoded item to its canonical encoding
/// (encode_item(decode(x)) == x for any valid x).
Bytes encode_item(const Item& item);

}  // namespace blockpilot::rlp
