// Virtual-time accounting for deterministic speedup measurement.
//
// The paper evaluates on a 14-core machine; this reproduction's CI host has
// a single vCPU, so wall-clock speedups of CPU-bound threads are physically
// capped near 1x.  Gas is the paper's own execution-time proxy (§4.3), so
// every executor here *also* accounts the work it performs — per worker, in
// gas units plus calibrated per-event overheads — and benchmarks report
//     speedup = serial_cost / parallel_makespan
// computed from the genuinely concurrent run's actual schedule (including
// aborted OCC attempts and serialized commit sections).  Wall-clock numbers
// are printed alongside.  See DESIGN.md §1 (substitution table).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace blockpilot::vtime {

/// Calibrated per-event overheads, in gas-equivalent units.  The absolute
/// scale is arbitrary; what matters is the ratio to typical transaction gas
/// (a plain transfer is 21000).
struct CostModel {
  /// Serialized commit-section validation/apply per transaction
  /// (Algorithm 1's DetectConflict runs under the commit lock).
  std::uint64_t commit_cost = 1500;
  /// Applier-side validation of one transaction's read/write sets against
  /// the block profile (validator Block Validation phase, serialized).
  std::uint64_t apply_cost = 1200;
  /// Handing one subgraph/job to a worker (scheduler dispatch).
  std::uint64_t dispatch_cost = 400;
  /// A worker switching between different blocks' execution contexts in the
  /// multi-block pipeline (§5.6: "workers shift between different contexts
  /// to handle distinct blocks and send out relevant information").
  /// Calibrated so the Fig. 9 curve peaks near 4 concurrent blocks with 16
  /// workers and dips slightly beyond, as measured in the paper.
  std::uint64_t block_switch_cost = 80000;
  /// Fixed per-block pipeline overhead (preparation + commitment phases).
  std::uint64_t block_fixed_cost = 60000;
  /// Cold state read served from the backing trie/disk instead of memory.
  /// The paper's evaluation enables geth's prefetcher to "prefetch all
  /// required storage slots to memory" (§5.4); with prefetching on, this
  /// cost vanishes from the execution critical path.  The value mirrors
  /// the cold-access gas surcharge (EIP-2929's 2100/2600 tier), which is
  /// itself a calibrated proxy for a trie-node disk read.
  std::uint64_t io_read_cost = 2500;
};

/// Per-worker virtual clocks.  Cache-line padded: workers bump their own
/// clock on every transaction, so sharing a line would serialize them.
class WorkLedger {
 public:
  explicit WorkLedger(std::size_t workers) : clocks_(workers) {}

  void add(std::size_t worker, std::uint64_t cost) noexcept {
    BP_ASSERT(worker < clocks_.size());
    clocks_[worker].value.fetch_add(cost, std::memory_order_relaxed);
  }

  std::uint64_t clock(std::size_t worker) const noexcept {
    return clocks_[worker].value.load(std::memory_order_relaxed);
  }

  /// Longest per-worker clock: the parallel phase's virtual duration.
  std::uint64_t makespan() const noexcept {
    std::uint64_t best = 0;
    for (const auto& c : clocks_) {
      const std::uint64_t v = c.value.load(std::memory_order_relaxed);
      if (v > best) best = v;
    }
    return best;
  }

  /// Sum over workers (total work performed, incl. wasted aborts).
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : clocks_) sum += c.value.load(std::memory_order_relaxed);
    return sum;
  }

  std::size_t workers() const noexcept { return clocks_.size(); }

  void reset() noexcept {
    for (auto& c : clocks_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<PaddedCounter> clocks_;
};

/// speedup = serial / parallel, guarding the zero cases.
inline double speedup(std::uint64_t serial_cost,
                      std::uint64_t parallel_cost) noexcept {
  if (parallel_cost == 0) return 1.0;
  return static_cast<double>(serial_cost) /
         static_cast<double>(parallel_cost);
}

}  // namespace blockpilot::vtime
