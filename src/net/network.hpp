// Simulated gossip network (the Dissemination stage of the paper's DiCE
// model, §3.2).
//
// Deterministic virtual-time message passing: every message carries a
// delivery time = send time + link latency + size/bandwidth.  Messages are
// drained in delivery order, so a whole multi-node scenario is bit-stable
// across runs and hosts.  Payloads are opaque byte strings — nodes exchange
// the RLP wire format from chain/codec.hpp, exactly what a real deployment
// would gossip.
//
// On top of the latency model sits a seeded *fault plan* (FaultPlan):
// per-link message loss, duplication, reordering bursts, and timed
// partitions with split/heal schedules.  Every fault decision is one draw
// from a single splitmix64 stream, so the complete fault sequence — which
// message is lost, which is duplicated, when the partition bites — is
// reproducible from (seed, send order) alone.  This is the adversarial
// substrate the quorum/timeout consensus layer is tested against.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace blockpilot::net {

using NodeId = std::size_t;
using Bytes = std::vector<std::uint8_t>;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t send_time_us = 0;
  std::uint64_t deliver_time_us = 0;
  Bytes payload;
};

/// One timed network split: while `start_us <= send_time < heal_us`, any
/// message whose endpoints straddle the boundary between group A (node's
/// bit set in `group_mask`) and group B is filtered out — gossip cannot
/// cross a partition, and nothing is queued for later: recovery after the
/// heal is the retransmission layer's job.  Node ids must be < 64.
struct PartitionWindow {
  std::uint64_t start_us = 0;
  std::uint64_t heal_us = 0;  // exclusive; UINT64_MAX = never heals
  std::uint64_t group_mask = 0;

  bool splits(NodeId from, NodeId to, std::uint64_t send_us) const noexcept {
    if (send_us < start_us || send_us >= heal_us) return false;
    return (((group_mask >> from) ^ (group_mask >> to)) & 1u) != 0;
  }
};

/// Seeded per-send fault injection layered under the jitter model.  Rates
/// are per-mille (0..1000); a draw is consumed from the fault stream only
/// for knobs that are enabled, so enabling one fault class does not
/// reshuffle another's decisions.
struct FaultPlan {
  std::uint32_t drop_per_mille = 0;       // P(message silently lost)
  std::uint32_t duplicate_per_mille = 0;  // P(a second copy is delivered)
  std::uint32_t reorder_per_mille = 0;    // P(delivery delayed by a burst)
  /// Extra delay added to a reordered message — long enough to leapfrog
  /// later traffic, producing genuine out-of-order delivery.
  std::uint64_t reorder_burst_us = 0;
  std::uint64_t seed = 0;
  std::vector<PartitionWindow> partitions;

  bool active() const noexcept {
    return drop_per_mille > 0 || duplicate_per_mille > 0 ||
           reorder_per_mille > 0 || !partitions.empty();
  }
};

struct LinkModel {
  /// Fixed propagation delay per hop.
  std::uint64_t base_latency_us = 50'000;  // 50 ms, mainnet-ish gossip hop
  /// Serialization throughput (bytes per microsecond ~= MB/s).
  std::uint64_t bytes_per_us = 12;  // ~12 MB/s effective gossip bandwidth
  /// Per-message delivery jitter bound: each send adds a deterministic
  /// pseudo-random delay in [0, jitter_us] drawn from jitter_seed, so one
  /// scenario exercises a randomized-but-reproducible delivery order (the
  /// fork-choice fuzz shuffles arrival order this way).  0 disables jitter.
  std::uint64_t jitter_us = 0;
  std::uint64_t jitter_seed = 0;
  /// Adversarial delivery: loss, duplication, reordering, partitions.
  FaultPlan faults;

  std::uint64_t transit_time(std::size_t payload_bytes) const noexcept {
    return base_latency_us +
           static_cast<std::uint64_t>(payload_bytes) /
               std::max<std::uint64_t>(1, bytes_per_us);
  }
};

/// Per-class fault counters (what the plan actually did to the traffic).
struct FaultStats {
  std::uint64_t dropped = 0;      // lost to drop_per_mille
  std::uint64_t duplicated = 0;   // extra copies enqueued
  std::uint64_t reordered = 0;    // deliveries delayed by a burst
  std::uint64_t partitioned = 0;  // filtered by a partition window
};

/// A broadcast-capable virtual network between `node_count` nodes.
class SimNetwork {
 public:
  explicit SimNetwork(std::size_t node_count, LinkModel link = {})
      : node_count_(node_count),
        link_(link),
        jitter_state_(link.jitter_seed * 0x9e3779b97f4a7c15ULL +
                      0x2545f4914f6cdd1dULL),
        fault_state_(link.faults.seed * 0x9e3779b97f4a7c15ULL +
                     0x6a09e667f3bcc909ULL) {
    BP_ASSERT(node_count >= 1);
    // Partition membership is a 64-bit mask, one bit per node.
    BP_ASSERT(link.faults.partitions.empty() || node_count <= 64);
  }

  std::size_t node_count() const noexcept { return node_count_; }

  /// Sends `payload` from `from` to every other node at virtual time
  /// `send_time_us`.
  void broadcast(NodeId from, std::uint64_t send_time_us, Bytes payload);

  /// Point-to-point send.  The fault plan is applied per link: the message
  /// may be filtered (partition), lost, duplicated, or delayed here.
  void send(NodeId from, NodeId to, std::uint64_t send_time_us,
            Bytes payload);

  /// Pops the earliest-delivery message, or nullopt when the network is
  /// quiet.  Ties break on (deliver_time, from, to) for determinism.
  std::optional<Message> next_delivery();

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t in_flight() const noexcept { return queue_.size(); }

  /// Total bytes ever handed to send() (bandwidth accounting).  Messages
  /// the fault plan eats still spent their wire bytes.
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

 private:
  struct Later {
    bool operator()(const Message& a, const Message& b) const noexcept {
      if (a.deliver_time_us != b.deliver_time_us)
        return a.deliver_time_us > b.deliver_time_us;
      if (a.from != b.from) return a.from > b.from;
      return a.to > b.to;
    }
  };

  std::size_t node_count_;
  LinkModel link_;
  std::priority_queue<Message, std::vector<Message>, Later> queue_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t jitter_state_;  // splitmix64 stream for delivery jitter
  std::uint64_t fault_state_;   // splitmix64 stream for fault decisions
  FaultStats fault_stats_;
};

}  // namespace blockpilot::net
