// Simulated gossip network (the Dissemination stage of the paper's DiCE
// model, §3.2).
//
// Deterministic virtual-time message passing: every message carries a
// delivery time = send time + link latency + size/bandwidth.  Messages are
// drained in delivery order, so a whole multi-node scenario is bit-stable
// across runs and hosts.  Payloads are opaque byte strings — nodes exchange
// the RLP wire format from chain/codec.hpp, exactly what a real deployment
// would gossip.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace blockpilot::net {

using NodeId = std::size_t;
using Bytes = std::vector<std::uint8_t>;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t send_time_us = 0;
  std::uint64_t deliver_time_us = 0;
  Bytes payload;
};

struct LinkModel {
  /// Fixed propagation delay per hop.
  std::uint64_t base_latency_us = 50'000;  // 50 ms, mainnet-ish gossip hop
  /// Serialization throughput (bytes per microsecond ~= MB/s).
  std::uint64_t bytes_per_us = 12;  // ~12 MB/s effective gossip bandwidth
  /// Per-message delivery jitter bound: each send adds a deterministic
  /// pseudo-random delay in [0, jitter_us] drawn from jitter_seed, so one
  /// scenario exercises a randomized-but-reproducible delivery order (the
  /// fork-choice fuzz shuffles arrival order this way).  0 disables jitter.
  std::uint64_t jitter_us = 0;
  std::uint64_t jitter_seed = 0;

  std::uint64_t transit_time(std::size_t payload_bytes) const noexcept {
    return base_latency_us +
           static_cast<std::uint64_t>(payload_bytes) /
               std::max<std::uint64_t>(1, bytes_per_us);
  }
};

/// A broadcast-capable virtual network between `node_count` nodes.
class SimNetwork {
 public:
  explicit SimNetwork(std::size_t node_count, LinkModel link = {})
      : node_count_(node_count),
        link_(link),
        jitter_state_(link.jitter_seed * 0x9e3779b97f4a7c15ULL +
                      0x2545f4914f6cdd1dULL) {
    BP_ASSERT(node_count >= 1);
  }

  std::size_t node_count() const noexcept { return node_count_; }

  /// Sends `payload` from `from` to every other node at virtual time
  /// `send_time_us`.
  void broadcast(NodeId from, std::uint64_t send_time_us, Bytes payload);

  /// Point-to-point send.
  void send(NodeId from, NodeId to, std::uint64_t send_time_us,
            Bytes payload);

  /// Pops the earliest-delivery message, or nullopt when the network is
  /// quiet.  Ties break on (deliver_time, from, to) for determinism.
  std::optional<Message> next_delivery();

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t in_flight() const noexcept { return queue_.size(); }

  /// Total bytes ever enqueued (bandwidth accounting).
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  struct Later {
    bool operator()(const Message& a, const Message& b) const noexcept {
      if (a.deliver_time_us != b.deliver_time_us)
        return a.deliver_time_us > b.deliver_time_us;
      if (a.from != b.from) return a.from > b.from;
      return a.to > b.to;
    }
  };

  std::size_t node_count_;
  LinkModel link_;
  std::priority_queue<Message, std::vector<Message>, Later> queue_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t jitter_state_;  // splitmix64 stream for delivery jitter
};

}  // namespace blockpilot::net
